#include "temporal/freeze.h"

#include <gtest/gtest.h>

namespace lmerge {
namespace {

TEST(FreezeTest, Boundaries) {
  // Event [5, 10) against various stable points.
  EXPECT_EQ(ClassifyFreeze(5, 10, 4), FreezeStatus::kUnfrozen);
  EXPECT_EQ(ClassifyFreeze(5, 10, 5), FreezeStatus::kUnfrozen);   // L <= Vs
  EXPECT_EQ(ClassifyFreeze(5, 10, 6), FreezeStatus::kHalfFrozen);  // Vs < L
  EXPECT_EQ(ClassifyFreeze(5, 10, 10), FreezeStatus::kHalfFrozen);  // L <= Ve
  EXPECT_EQ(ClassifyFreeze(5, 10, 11), FreezeStatus::kFullyFrozen);  // Ve < L
}

TEST(FreezeTest, InfiniteEndNeverFullyFreezes) {
  EXPECT_EQ(ClassifyFreeze(5, kInfinity, kInfinity),
            FreezeStatus::kHalfFrozen);
  EXPECT_EQ(ClassifyFreeze(5, kInfinity, 1000), FreezeStatus::kHalfFrozen);
}

TEST(FreezeTest, MinWatermarkFreezesNothing) {
  EXPECT_EQ(ClassifyFreeze(0, 10, kMinTimestamp), FreezeStatus::kUnfrozen);
}

TEST(FreezeTest, Names) {
  EXPECT_STREQ(FreezeStatusName(FreezeStatus::kUnfrozen), "UF");
  EXPECT_STREQ(FreezeStatusName(FreezeStatus::kHalfFrozen), "HF");
  EXPECT_STREQ(FreezeStatusName(FreezeStatus::kFullyFrozen), "FF");
}

}  // namespace
}  // namespace lmerge
