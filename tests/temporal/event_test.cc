#include "temporal/event.h"

#include <gtest/gtest.h>

namespace lmerge {
namespace {

TEST(EventTest, Equality) {
  EXPECT_EQ(Event(Row::OfString("A"), 1, 5), Event(Row::OfString("A"), 1, 5));
  EXPECT_FALSE(Event(Row::OfString("A"), 1, 5) ==
               Event(Row::OfString("A"), 1, 6));
  EXPECT_FALSE(Event(Row::OfString("A"), 1, 5) ==
               Event(Row::OfString("B"), 1, 5));
}

TEST(EventTest, EventLessOrdersByVsPayloadVe) {
  const Event a(Row::OfString("A"), 1, 5);
  const Event b(Row::OfString("B"), 1, 5);
  const Event a2(Row::OfString("A"), 2, 3);
  const Event a_long(Row::OfString("A"), 1, 9);
  EventLess less;
  EXPECT_TRUE(less(a, b));        // payload tie-break
  EXPECT_TRUE(less(a, a2));       // Vs dominates
  EXPECT_TRUE(less(b, a2));
  EXPECT_TRUE(less(a, a_long));   // Ve last
  EXPECT_FALSE(less(a, a));
}

TEST(EventTest, VsPayloadLessConsistentWithRefProbe) {
  const VsPayload key(5, Row::OfString("M"));
  const Row probe_row = Row::OfString("M");
  VsPayloadLess less;
  EXPECT_FALSE(less(key, VsPayloadRef(5, probe_row)));
  EXPECT_FALSE(less(VsPayloadRef(5, probe_row), key));
  const Row smaller = Row::OfString("A");
  EXPECT_TRUE(less(VsPayloadRef(5, smaller), key));
  EXPECT_TRUE(less(VsPayloadRef(4, probe_row), key));
  EXPECT_FALSE(less(VsPayloadRef(6, probe_row), key));
}

TEST(EventTest, ToStringShowsIntervalNotation) {
  const Event e(Row::OfString("A"), 6, kInfinity);
  EXPECT_EQ(e.ToString(), "<(\"A\"), [6, inf)>");
}

TEST(EventTest, VsPayloadEquality) {
  EXPECT_EQ(VsPayload(1, Row::OfInt(2)), VsPayload(1, Row::OfInt(2)));
  EXPECT_FALSE(VsPayload(1, Row::OfInt(2)) == VsPayload(2, Row::OfInt(2)));
}

}  // namespace
}  // namespace lmerge
