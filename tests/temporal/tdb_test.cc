// TDB reconstitution and equivalence, including the paper's Table I example:
// two physically different streams (Phy1 and Phy2) whose prefixes
// reconstitute to the same logical TDB {A [6,12), B [8,10)}.

#include "temporal/tdb.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::P;
using ::lmerge::testing_util::Stb;

TEST(TdbTest, TableOneExampleEquivalence) {
  // Phy1 (Table I left column), translated into the interval element model:
  //   a(B, 8, inf); m(A, 6, 12) arrives before A exists in Phy1?  Table I's
  //   Phy1 column is: a(B,8,inf), m(A,6,12)... — in the a/m/f model of
  //   Example 1, m can only modify an existing event, so Phy1's m(A,6,12)
  //   presumes a(A,...) arrived on Phy1 earlier than shown... Table I shows
  //   rows as instants of *system* time shared by both streams; Phy1's own
  //   elements are: a(B,8,inf), a(A,6,12), m(B,8,10), f(11), f(inf) —
  //   we reproduce the logical content with a valid element ordering.
  const ElementSequence phy1 = {
      Ins("B", 8, kInfinity), Ins("A", 6, 12),  Adj("B", 8, kInfinity, 10),
      Stb(11),                Stb(kInfinity),
  };
  // Phy2: a(A,6,7), a(B,8,15), m(A,6,7->12), m(B,8,15->10), f(inf).
  const ElementSequence phy2 = {
      Ins("A", 6, 7),   Ins("B", 8, 15),      Adj("A", 6, 7, 12),
      Adj("B", 8, 15, 10), Stb(kInfinity),
  };
  const Tdb tdb1 = Tdb::Reconstitute(phy1);
  const Tdb tdb2 = Tdb::Reconstitute(phy2);
  EXPECT_TRUE(tdb1.Equals(tdb2));
  EXPECT_EQ(tdb1.EventCount(), 2);
  EXPECT_EQ(tdb1.CountOf(Event(P("A"), 6, 12)), 1);
  EXPECT_EQ(tdb1.CountOf(Event(P("B"), 8, 10)), 1);
}

TEST(TdbTest, PrefixesDivergeThenConverge) {
  // Prefixes of equivalent streams need not be equivalent (Sec. I) — but
  // the full streams are.
  const ElementSequence phy1 = {Ins("A", 6, 12)};
  const ElementSequence phy2 = {Ins("A", 6, 7)};
  EXPECT_FALSE(
      Tdb::Reconstitute(phy1).Equals(Tdb::Reconstitute(phy2)));
  ElementSequence phy2_full = phy2;
  phy2_full.push_back(Adj("A", 6, 7, 12));
  EXPECT_TRUE(
      Tdb::Reconstitute(phy1).Equals(Tdb::Reconstitute(phy2_full)));
}

TEST(TdbTest, AdjustSequenceCollapses) {
  // Sec. III-E: insert(A,6,20), adjust(A,6,20,30), adjust(A,6,30,25)
  // is equivalent to insert(A,6,25).
  const ElementSequence long_form = {Ins("A", 6, 20), Adj("A", 6, 20, 30),
                                     Adj("A", 6, 30, 25)};
  const ElementSequence short_form = {Ins("A", 6, 25)};
  EXPECT_TRUE(Tdb::Reconstitute(long_form)
                  .Equals(Tdb::Reconstitute(short_form)));
}

TEST(TdbTest, AdjustToVsRemovesEvent) {
  Tdb tdb;
  ASSERT_TRUE(tdb.Apply(Ins("A", 5, 10)).ok());
  ASSERT_TRUE(tdb.Apply(Adj("A", 5, 10, 5)).ok());
  EXPECT_EQ(tdb.EventCount(), 0);
}

TEST(TdbTest, AdjustMissingTargetFails) {
  Tdb tdb;
  const Status status = tdb.Apply(Adj("A", 5, 10, 12));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(TdbTest, InsertBehindStableFails) {
  Tdb tdb;
  ASSERT_TRUE(tdb.Apply(Stb(100)).ok());
  EXPECT_FALSE(tdb.Apply(Ins("A", 50, 200)).ok());
  EXPECT_TRUE(tdb.Apply(Ins("A", 100, 200)).ok());
}

TEST(TdbTest, AdjustBehindStableFails) {
  Tdb tdb;
  ASSERT_TRUE(tdb.Apply(Ins("A", 5, 300)).ok());
  ASSERT_TRUE(tdb.Apply(Stb(100)).ok());
  // Vold >= stable, Ve >= stable: fine.
  EXPECT_TRUE(tdb.Apply(Adj("A", 5, 300, 250)).ok());
  // New end below the stable point: illegal.
  EXPECT_FALSE(tdb.Apply(Adj("A", 5, 250, 80)).ok());
  // Removing a half-frozen event: illegal.
  EXPECT_FALSE(tdb.Apply(Adj("A", 5, 250, 5)).ok());
}

TEST(TdbTest, StableNeverRegresses) {
  Tdb tdb;
  ASSERT_TRUE(tdb.Apply(Stb(100)).ok());
  ASSERT_TRUE(tdb.Apply(Stb(50)).ok());  // ignored, not an error
  EXPECT_EQ(tdb.stable_point(), 100);
}

TEST(TdbTest, MultisetSemantics) {
  Tdb tdb;
  ASSERT_TRUE(tdb.Apply(Ins("A", 5, 10)).ok());
  ASSERT_TRUE(tdb.Apply(Ins("A", 5, 10)).ok());
  EXPECT_EQ(tdb.EventCount(), 2);
  EXPECT_EQ(tdb.DistinctEventCount(), 1);
  EXPECT_EQ(tdb.CountOf(Event(P("A"), 5, 10)), 2);
  EXPECT_FALSE(tdb.VsPayloadIsKey());
  ASSERT_TRUE(tdb.Apply(Adj("A", 5, 10, 12)).ok());
  EXPECT_EQ(tdb.CountOf(Event(P("A"), 5, 10)), 1);
  EXPECT_EQ(tdb.CountOf(Event(P("A"), 5, 12)), 1);
}

TEST(TdbTest, EndTimesForKey) {
  Tdb tdb;
  ASSERT_TRUE(tdb.Apply(Ins("A", 5, 10)).ok());
  ASSERT_TRUE(tdb.Apply(Ins("A", 5, 20)).ok());
  ASSERT_TRUE(tdb.Apply(Ins("A", 6, 30)).ok());
  const auto ends = tdb.EndTimesFor(VsPayload(5, P("A")));
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0].first, 10);
  EXPECT_EQ(ends[1].first, 20);
}

TEST(TdbTest, FreezeClassification) {
  Tdb tdb;
  ASSERT_TRUE(tdb.Apply(Ins("FF", 1, 5)).ok());
  ASSERT_TRUE(tdb.Apply(Ins("HF", 2, 50)).ok());
  ASSERT_TRUE(tdb.Apply(Ins("UF", 30, 60)).ok());
  ASSERT_TRUE(tdb.Apply(Stb(10)).ok());
  EXPECT_EQ(tdb.Classify(Event(P("FF"), 1, 5)), FreezeStatus::kFullyFrozen);
  EXPECT_EQ(tdb.Classify(Event(P("HF"), 2, 50)), FreezeStatus::kHalfFrozen);
  EXPECT_EQ(tdb.Classify(Event(P("UF"), 30, 60)), FreezeStatus::kUnfrozen);
}

TEST(TdbTest, ZeroLengthInsertIsNoOp) {
  Tdb tdb;
  ASSERT_TRUE(tdb.Apply(Ins("A", 5, 5)).ok());
  EXPECT_EQ(tdb.EventCount(), 0);
}

TEST(TdbTest, ToVectorExpandsMultiplicity) {
  Tdb tdb;
  ASSERT_TRUE(tdb.Apply(Ins("A", 5, 10)).ok());
  ASSERT_TRUE(tdb.Apply(Ins("A", 5, 10)).ok());
  ASSERT_TRUE(tdb.Apply(Ins("B", 6, 12)).ok());
  EXPECT_EQ(tdb.ToVector().size(), 3u);
}

}  // namespace
}  // namespace lmerge
