// Compatibility checkers, exercised on the worked example of Sec. III-D:
// inputs I1 (last:14) and I2 (last:11); O1 and O2 are compatible outputs,
// O3 is not (for two independent reasons).

#include "temporal/compat.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::P;
using ::lmerge::testing_util::Stb;

Tdb MakeTdb(const ElementSequence& events_then_stable) {
  return Tdb::Reconstitute(events_then_stable);
}

class SectionThreeDExample : public ::testing::Test {
 protected:
  // I1 (last:14): A[2,16) HF, B[3,10) FF, C[4,18) HF, D[15,20) UF.
  Tdb i1_ = MakeTdb({Ins("A", 2, 16), Ins("B", 3, 10), Ins("C", 4, 18),
                     Ins("D", 15, 20), Stb(14)});
  // I2 (last:11): A[2,12) HF, B[3,10) FF, C[4,18) HF, E[17,21) UF.
  Tdb i2_ = MakeTdb({Ins("A", 2, 12), Ins("B", 3, 10), Ins("C", 4, 18),
                     Ins("E", 17, 21), Stb(11)});

  std::vector<const Tdb*> Inputs() { return {&i1_, &i2_}; }
};

TEST_F(SectionThreeDExample, ConservativeOutputO1IsCompatible) {
  // O1 (last:11): A[2,inf) HF, B[3,10) FF, C[4,inf) HF.
  const Tdb o1 = MakeTdb({Ins("A", 2, kInfinity), Ins("B", 3, 10),
                          Ins("C", 4, kInfinity), Stb(11)});
  const Status status = CheckR3Compatibility(Inputs(), o1);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_F(SectionThreeDExample, AggressiveOutputO2IsCompatible) {
  // O2 (last:14): everything seen, including unfrozen D and E.
  const Tdb o2 = MakeTdb({Ins("A", 2, 16), Ins("B", 3, 10), Ins("C", 4, 18),
                          Ins("D", 15, 20), Ins("E", 17, 21), Stb(14)});
  const Status status = CheckR3Compatibility(Inputs(), o2);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_F(SectionThreeDExample, OutputO3IsIncompatible) {
  // O3 (last:13): A[2,12) fully frozen — contradicts I1 (end will be >= 14);
  // and B[3,10) is missing even though it is fully frozen in the inputs.
  const Tdb o3 =
      MakeTdb({Ins("A", 2, 12), Ins("C", 4, 18), Ins("D", 15, 20), Stb(13)});
  EXPECT_FALSE(CheckR3Compatibility(Inputs(), o3).ok());
}

TEST_F(SectionThreeDExample, MissingFrozenBViolatesC3Alone) {
  // Even with A corrected, omitting B keeps the output incompatible.
  const Tdb bad = MakeTdb({Ins("A", 2, kInfinity), Ins("C", 4, 18), Stb(13)});
  const Status status = CheckR3Compatibility(Inputs(), bad);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("C3"), std::string::npos);
}

TEST(CompatTest, C1OutputStableMayNotExceedInputs) {
  const Tdb input = Tdb::Reconstitute({Ins("A", 2, 5), Stb(10)});
  const Tdb output = Tdb::Reconstitute({Ins("A", 2, 5), Stb(20)});
  const Status status = CheckR3Compatibility({&input}, output);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("C1"), std::string::npos);
}

TEST(CompatTest, UnfrozenOutputEventIsUnconstrained) {
  const Tdb input = Tdb::Reconstitute({Stb(5)});
  // An unfrozen speculative event (Vs >= L) violates nothing.
  const Tdb output = Tdb::Reconstitute({Ins("X", 7, 9), Stb(5)});
  EXPECT_TRUE(CheckR3Compatibility({&input}, output).ok());
}

TEST(CompatTest, FullyFrozenOutputNeedsExactInputSupport) {
  const Tdb input = Tdb::Reconstitute({Ins("A", 1, 3), Stb(10)});
  const Tdb bad = Tdb::Reconstitute({Ins("A", 1, 4), Stb(10)});
  EXPECT_FALSE(CheckR3Compatibility({&input}, bad).ok());
  const Tdb good = Tdb::Reconstitute({Ins("A", 1, 3), Stb(10)});
  EXPECT_TRUE(CheckR3Compatibility({&input}, good).ok());
}

TEST(CompatTest, TrackedR3LeaderMatch) {
  const Tdb leader =
      Tdb::Reconstitute({Ins("A", 1, 3), Ins("B", 2, 50), Stb(10)});
  const Tdb good =
      Tdb::Reconstitute({Ins("A", 1, 3), Ins("B", 2, 60), Stb(10)});
  EXPECT_TRUE(CheckR3TrackedCompatibility(leader, good).ok());
  // Missing the half-frozen B while claiming stable(10) is a violation.
  const Tdb missing_hf = Tdb::Reconstitute({Ins("A", 1, 3), Stb(10)});
  EXPECT_FALSE(CheckR3TrackedCompatibility(leader, missing_hf).ok());
  // FF event with the wrong end is a violation.
  const Tdb wrong_ff =
      Tdb::Reconstitute({Ins("A", 1, 4), Ins("B", 2, 50), Stb(10)});
  EXPECT_FALSE(CheckR3TrackedCompatibility(leader, wrong_ff).ok());
}

TEST(CompatTest, TrackedR4CountsPerKey) {
  // Leader: two events for (A,1) — one FF end 3, one HF end 50.
  const Tdb leader = Tdb::Reconstitute(
      {Ins("A", 1, 3), Ins("A", 1, 50), Stb(10)});
  const Tdb good = Tdb::Reconstitute(
      {Ins("A", 1, 3), Ins("A", 1, 70), Stb(10)});
  EXPECT_TRUE(CheckR4TrackedCompatibility(leader, good).ok())
      << CheckR4TrackedCompatibility(leader, good).ToString();
  // Wrong FF multiplicity.
  const Tdb missing_ff =
      Tdb::Reconstitute({Ins("A", 1, 70), Stb(10)});
  EXPECT_FALSE(CheckR4TrackedCompatibility(leader, missing_ff).ok());
  // Wrong total population for the half-frozen key.
  const Tdb extra = Tdb::Reconstitute(
      {Ins("A", 1, 3), Ins("A", 1, 70), Ins("A", 1, 80), Stb(10)});
  EXPECT_FALSE(CheckR4TrackedCompatibility(leader, extra).ok());
}

TEST(CompatTest, TrackedR4UnfrozenKeysUnconstrained) {
  const Tdb leader = Tdb::Reconstitute({Ins("A", 20, 30), Stb(10)});
  const Tdb output = Tdb::Reconstitute({Stb(10)});
  EXPECT_TRUE(CheckR4TrackedCompatibility(leader, output).ok());
}

}  // namespace
}  // namespace lmerge
