// Concurrency stress: replicas delivered from independent threads with
// genuinely nondeterministic interleaving must still merge to the reference
// TDB — across algorithms and repeated runs.

#include "engine/concurrent.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <thread>

#include "core/factory.h"
#include "stream/sink.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using workload::GeneratorConfig;
using workload::GeneratePhysicalVariant;
using workload::GenerateHistory;
using workload::LogicalHistory;
using workload::RenderInOrder;
using workload::VariantOptions;

LogicalHistory ClosedHistory(uint64_t seed) {
  GeneratorConfig config;
  config.num_inserts = 400;
  config.stable_freq = 0.05;
  config.event_duration = 600;
  config.max_gap = 12;
  config.payload_string_bytes = 8;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);
  return history;
}

class ConcurrentMergeTest
    : public ::testing::TestWithParam<std::tuple<MergeVariant, uint64_t>> {};

TEST_P(ConcurrentMergeTest, ThreadedReplicasConverge) {
  const auto [variant, seed] = GetParam();
  const LogicalHistory history = ClosedHistory(seed);
  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < 4; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.25;
    options.split_probability = 0.3;
    options.seed = seed * 11 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));

  // Several runs: each has a different OS-scheduled interleaving.
  for (int run = 0; run < 3; ++run) {
    CollectingSink merged;
    auto algo = CreateMergeAlgorithm(variant, 4, &merged);
    ConcurrentMerger merger(algo.get());
    merger.Run(replicas);
    EXPECT_EQ(merger.delivered_count(),
              static_cast<int64_t>(replicas[0].size() + replicas[1].size() +
                                   replicas[2].size() + replicas[3].size()));
    EXPECT_TRUE(Tdb::Reconstitute(merged.elements()).Equals(reference))
        << MergeVariantName(variant) << " seed " << seed << " run " << run;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, ConcurrentMergeTest,
    ::testing::Combine(::testing::Values(MergeVariant::kLMR3Plus,
                                         MergeVariant::kLMR3Minus,
                                         MergeVariant::kLMR4),
                       ::testing::Values(1u, 2u, 3u)));

TEST(ConcurrentMergeTest, OrderedReplicasUnderR0) {
  const LogicalHistory history = ClosedHistory(9);
  const ElementSequence stream = RenderInOrder(history);
  const std::vector<ElementSequence> replicas(3, stream);
  CollectingSink merged;
  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR0, 3, &merged);
  ConcurrentMerger merger(algo.get());
  merger.Run(replicas);
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(stream)));
}

TEST(ConcurrentMergeTest, ManualDeliverIsThreadSafeEntryPoint) {
  CollectingSink merged;
  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 2, &merged);
  ConcurrentMerger merger(algo.get());
  merger.Deliver(0, StreamElement::Insert(Row::OfString("A"), 1, 10));
  merger.Deliver(1, StreamElement::Insert(Row::OfString("A"), 1, 10));
  merger.Deliver(0, StreamElement::Stable(20));
  merger.WaitIdle();  // delivery is enqueue-only; quiesce before reading
  EXPECT_EQ(merger.delivered_count(), 3);
  EXPECT_EQ(merger.max_stable(), 20);
  EXPECT_EQ(Tdb::Reconstitute(merged.elements()).EventCount(), 1);
}

TEST(ConcurrentMergeTest, TryDeliverRejectsInvalidAndInactive) {
  CollectingSink merged;
  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 1, &merged);
  ConcurrentMerger merger(algo.get());
  EXPECT_TRUE(
      merger.TryDeliver(0, StreamElement::Insert(Row::OfString("A"), 1, 10))
          .ok());
  // Ve < Vs is caught at the door, before it reaches the merge thread.
  EXPECT_FALSE(
      merger.TryDeliver(0, StreamElement::Insert(Row::OfString("B"), 10, 1))
          .ok());
  EXPECT_FALSE(
      merger.TryDeliver(7, StreamElement::Stable(5)).ok());  // out of range
  merger.RemoveStream(0);
  EXPECT_FALSE(merger.TryDeliver(0, StreamElement::Stable(5)).ok());
  merger.WaitIdle();
  EXPECT_TRUE(merger.error().ok());
}

TEST(ConcurrentMergeTest, BatchDeliveryMatchesElementWise) {
  const LogicalHistory history = ClosedHistory(17);
  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < 3; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.3;
    options.split_probability = 0.3;
    options.seed = 101 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));

  CollectingSink merged;
  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 3, &merged);
  ConcurrentMerger merger(algo.get());
  std::vector<std::thread> threads;
  for (size_t s = 0; s < replicas.size(); ++s) {
    threads.emplace_back([&, s] {
      ElementSequence batch = replicas[s];  // TryDeliverBatch moves out
      for (size_t i = 0; i < batch.size(); i += 64) {
        const size_t n = std::min<size_t>(64, batch.size() - i);
        ASSERT_TRUE(merger
                        .TryDeliverBatch(static_cast<int>(s),
                                         std::span(batch.data() + i, n))
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  merger.WaitIdle();
  EXPECT_TRUE(merger.error().ok());
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements()).Equals(reference));
}

// Satellite (c): concurrent AddStream/RemoveStream churn against live
// deliveries.  Late joiners replay the full replica (the algorithm dedups
// against merged output); leavers must have their enqueued tail merged
// before detach.  The merged output must still reconstitute to the
// reference TDB and max_stable must reach the closing stable time.
TEST(ConcurrentMergeTest, StreamChurnUnderLoadConverges) {
  const LogicalHistory history = ClosedHistory(23);
  const Timestamp closing_stable = history.stable_times.back();
  constexpr int kInitial = 2;
  constexpr int kJoiners = 3;
  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < kInitial + kJoiners; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.25;
    options.split_probability = 0.3;
    options.seed = 7000 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));

  for (int run = 0; run < 2; ++run) {
    CollectingSink merged;
    auto algo = CreateMergeAlgorithm(MergeVariant::kLMR4, kInitial, &merged);
    ConcurrentMerger merger(algo.get());

    std::vector<std::thread> threads;
    // Initial streams deliver fully; stream 1 detaches mid-way through and
    // stream 0 carries the run to completion.
    threads.emplace_back([&] {
      for (const StreamElement& e : replicas[0]) merger.Deliver(0, e);
    });
    threads.emplace_back([&] {
      const size_t half = replicas[1].size() / 2;
      for (size_t i = 0; i < half; ++i) merger.Deliver(1, replicas[1][i]);
      merger.RemoveStream(1);
    });
    // Joiners register at racing times, then replay their replica in full.
    for (int j = 0; j < kJoiners; ++j) {
      threads.emplace_back([&, j] {
        const int stream = merger.AddStream();
        ASSERT_GE(stream, kInitial);
        const ElementSequence& replica = replicas[kInitial + j];
        for (const StreamElement& e : replica) {
          ASSERT_TRUE(merger.TryDeliver(stream, e).ok());
        }
        if (j == 0) merger.RemoveStream(stream);  // join then leave again
      });
    }
    for (auto& t : threads) t.join();
    merger.WaitIdle();
    EXPECT_TRUE(merger.error().ok());
    EXPECT_EQ(merger.max_stable(), closing_stable);
    EXPECT_TRUE(Tdb::Reconstitute(merged.elements()).Equals(reference))
        << "churn run " << run;
  }
}

}  // namespace
}  // namespace lmerge
