// Concurrency stress: replicas delivered from independent threads with
// genuinely nondeterministic interleaving must still merge to the reference
// TDB — across algorithms and repeated runs.

#include "engine/concurrent.h"

#include <gtest/gtest.h>

#include "core/factory.h"
#include "stream/sink.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using workload::GeneratorConfig;
using workload::GeneratePhysicalVariant;
using workload::GenerateHistory;
using workload::LogicalHistory;
using workload::RenderInOrder;
using workload::VariantOptions;

LogicalHistory ClosedHistory(uint64_t seed) {
  GeneratorConfig config;
  config.num_inserts = 400;
  config.stable_freq = 0.05;
  config.event_duration = 600;
  config.max_gap = 12;
  config.payload_string_bytes = 8;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);
  return history;
}

class ConcurrentMergeTest
    : public ::testing::TestWithParam<std::tuple<MergeVariant, uint64_t>> {};

TEST_P(ConcurrentMergeTest, ThreadedReplicasConverge) {
  const auto [variant, seed] = GetParam();
  const LogicalHistory history = ClosedHistory(seed);
  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < 4; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.25;
    options.split_probability = 0.3;
    options.seed = seed * 11 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));

  // Several runs: each has a different OS-scheduled interleaving.
  for (int run = 0; run < 3; ++run) {
    CollectingSink merged;
    auto algo = CreateMergeAlgorithm(variant, 4, &merged);
    ConcurrentMerger merger(algo.get());
    merger.Run(replicas);
    EXPECT_EQ(merger.delivered_count(),
              static_cast<int64_t>(replicas[0].size() + replicas[1].size() +
                                   replicas[2].size() + replicas[3].size()));
    EXPECT_TRUE(Tdb::Reconstitute(merged.elements()).Equals(reference))
        << MergeVariantName(variant) << " seed " << seed << " run " << run;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, ConcurrentMergeTest,
    ::testing::Combine(::testing::Values(MergeVariant::kLMR3Plus,
                                         MergeVariant::kLMR3Minus,
                                         MergeVariant::kLMR4),
                       ::testing::Values(1u, 2u, 3u)));

TEST(ConcurrentMergeTest, OrderedReplicasUnderR0) {
  const LogicalHistory history = ClosedHistory(9);
  const ElementSequence stream = RenderInOrder(history);
  const std::vector<ElementSequence> replicas(3, stream);
  CollectingSink merged;
  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR0, 3, &merged);
  ConcurrentMerger merger(algo.get());
  merger.Run(replicas);
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(stream)));
}

TEST(ConcurrentMergeTest, ManualDeliverIsThreadSafeEntryPoint) {
  CollectingSink merged;
  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 2, &merged);
  ConcurrentMerger merger(algo.get());
  merger.Deliver(0, StreamElement::Insert(Row::OfString("A"), 1, 10));
  merger.Deliver(1, StreamElement::Insert(Row::OfString("A"), 1, 10));
  merger.Deliver(0, StreamElement::Stable(20));
  EXPECT_EQ(merger.delivered_count(), 3);
  EXPECT_EQ(Tdb::Reconstitute(merged.elements()).EventCount(), 1);
}

}  // namespace
}  // namespace lmerge
