#include "engine/delay.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Ins;

ElementSequence SomeElements(int n) {
  ElementSequence out;
  for (int i = 0; i < n; ++i) out.push_back(Ins("x", i + 1, i + 100));
  return out;
}

TEST(DelayTest, ConstantRateSpacing) {
  const TimedStream stream =
      ScheduleConstantRate(SomeElements(10), /*rate=*/100.0, /*start=*/2.0);
  ASSERT_EQ(stream.size(), 10u);
  EXPECT_DOUBLE_EQ(stream[0].arrival_seconds, 2.0);
  EXPECT_NEAR(stream[1].arrival_seconds - stream[0].arrival_seconds, 0.01,
              1e-12);
  EXPECT_NEAR(stream[9].arrival_seconds, 2.09, 1e-9);
}

TEST(DelayTest, LagShiftsEverything) {
  TimedStream stream = ScheduleConstantRate(SomeElements(5), 10.0);
  const double first = stream[0].arrival_seconds;
  stream = ScheduleWithLag(std::move(stream), 3.0);
  EXPECT_DOUBLE_EQ(stream[0].arrival_seconds, first + 3.0);
}

TEST(DelayTest, BurstyIsMonotoneAndStalls) {
  BurstConfig config;
  config.rate = 1000.0;
  config.stall_probability = 0.01;
  config.seed = 5;
  const TimedStream stream = ScheduleBursty(SomeElements(5000), config);
  double max_gap = 0;
  for (size_t i = 1; i < stream.size(); ++i) {
    ASSERT_GE(stream[i].arrival_seconds, stream[i - 1].arrival_seconds);
    max_gap = std::max(max_gap, stream[i].arrival_seconds -
                                    stream[i - 1].arrival_seconds);
  }
  // At least one stall on the order of the configured 20 ms.
  EXPECT_GT(max_gap, 0.005);
  // Deliveries catch up: total duration is close to generation time plus a
  // few stalls, not unbounded.
  EXPECT_LT(stream.back().arrival_seconds, 5.0 + 60 * 0.04);
}

TEST(DelayTest, BurstyFlushesQueueAfterStall) {
  BurstConfig config;
  config.rate = 1000.0;
  config.stall_probability = 0.01;
  config.stall_mean_seconds = 0.05;
  config.seed = 9;
  const TimedStream stream = ScheduleBursty(SomeElements(5000), config);
  // Find a stall, then verify a burst of simultaneous deliveries follows.
  bool found_burst = false;
  for (size_t i = 1; i + 5 < stream.size(); ++i) {
    const double gap =
        stream[i].arrival_seconds - stream[i - 1].arrival_seconds;
    if (gap > 0.02) {
      // Elements generated during the stall flush at (nearly) one instant.
      if (stream[i + 5].arrival_seconds - stream[i].arrival_seconds < 0.001) {
        found_burst = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_burst);
}

TEST(DelayTest, CongestionSlowsWindowThenRecovers) {
  CongestionConfig config;
  config.rate = 1000.0;
  config.windows = {{1.0, 1.5, 0.002, 0.0005}};
  config.seed = 3;
  const TimedStream stream = ScheduleCongestion(SomeElements(4000), config);
  // Count deliveries per 0.5 s bucket.
  std::vector<int> buckets(20, 0);
  for (const TimedElement& t : stream) {
    const auto b = static_cast<size_t>(t.arrival_seconds / 0.5);
    if (b < buckets.size()) ++buckets[static_cast<size_t>(b)];
  }
  // Bucket [1.0, 1.5) is congested: far fewer deliveries than nominal 500.
  EXPECT_LT(buckets[2], 400);
  // Monotone arrivals.
  for (size_t i = 1; i < stream.size(); ++i) {
    ASSERT_GE(stream[i].arrival_seconds, stream[i - 1].arrival_seconds);
  }
  // All elements eventually delivered (catch-up after the window).
  EXPECT_EQ(stream.size(), 4000u);
}

TEST(DelayTest, DeterministicInSeed) {
  BurstConfig config;
  config.seed = 11;
  const TimedStream a = ScheduleBursty(SomeElements(500), config);
  const TimedStream b = ScheduleBursty(SomeElements(500), config);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
  }
}

}  // namespace
}  // namespace lmerge
