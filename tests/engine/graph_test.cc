// Property derivation across query plans and end-to-end algorithm selection
// (the Sec. IV-G examples as whole-plan tests).

#include "engine/graph.h"

#include <gtest/gtest.h>

#include "core/lmerge_operator.h"
#include "operators/aggregate.h"
#include "operators/cleanse.h"
#include "operators/select.h"
#include "operators/topk.h"
#include "operators/union_op.h"

namespace lmerge {
namespace {

StreamProperties OrderedSource() {
  StreamProperties p;
  p.insert_only = true;
  p.ordered = true;
  p.strictly_increasing = true;
  p.vs_payload_key = true;
  return p.Normalized();
}

StreamProperties DisorderedSource() {
  StreamProperties p;
  p.insert_only = true;
  p.vs_payload_key = true;
  return p;
}

AggregateConfig Grouped(AggregateMode mode) {
  AggregateConfig config;
  config.window_size = 100;
  config.group_column = 0;
  config.mode = mode;
  return config;
}

TEST(GraphTest, GlobalAggregateOverOrderedStreamIsR0) {
  // Sec. IV-G example 3: in-order stream into windowed count -> R0.
  QueryGraph graph;
  AggregateConfig config;
  config.window_size = 100;
  config.mode = AggregateMode::kConservative;
  auto* agg = graph.Add<GroupedAggregate>("count", config);
  graph.DeclareEntry(agg, 0, OrderedSource());
  StreamProperties out;
  ASSERT_TRUE(graph.DeriveFor(agg, &out).ok());
  EXPECT_EQ(ChooseAlgorithm(out), AlgorithmCase::kR0);
}

TEST(GraphTest, TopKOverOrderedStreamIsR1) {
  // Example 4: sliding-window multi-valued aggregate -> R1.
  QueryGraph graph;
  auto* topk = graph.Add<TopK>("topk", 100, 3, 0);
  graph.DeclareEntry(topk, 0, OrderedSource());
  StreamProperties out;
  ASSERT_TRUE(graph.DeriveFor(topk, &out).ok());
  EXPECT_EQ(ChooseAlgorithm(out), AlgorithmCase::kR1);
}

TEST(GraphTest, GroupedAggregateOverOrderedStreamIsR2) {
  // Example 5: grouped aggregation over an ordered stream -> R2.
  QueryGraph graph;
  auto* agg = graph.Add<GroupedAggregate>(
      "grouped", Grouped(AggregateMode::kConservative));
  graph.DeclareEntry(agg, 0, OrderedSource());
  StreamProperties out;
  ASSERT_TRUE(graph.DeriveFor(agg, &out).ok());
  EXPECT_EQ(ChooseAlgorithm(out), AlgorithmCase::kR2);
}

TEST(GraphTest, AggressiveGroupedAggregateOverDisorderIsR3) {
  // Example 6: grouped aggregation over a disordered stream -> R3.
  QueryGraph graph;
  auto* agg = graph.Add<GroupedAggregate>(
      "grouped", Grouped(AggregateMode::kAggressive));
  graph.DeclareEntry(agg, 0, DisorderedSource());
  StreamProperties out;
  ASSERT_TRUE(graph.DeriveFor(agg, &out).ok());
  EXPECT_EQ(ChooseAlgorithm(out), AlgorithmCase::kR3);
}

TEST(GraphTest, CleanseRestoresOrderForR1) {
  // The C+LM strategy of Sec. VI-D: Cleanse in front of the merge lets the
  // simple R1 algorithm run on disordered inputs.
  QueryGraph graph;
  auto* cleanse = graph.Add<Cleanse>("cleanse");
  graph.DeclareEntry(cleanse, 0, StreamProperties::None());
  StreamProperties out;
  ASSERT_TRUE(graph.DeriveFor(cleanse, &out).ok());
  EXPECT_EQ(ChooseAlgorithm(out), AlgorithmCase::kR1);
}

TEST(GraphTest, PropertiesChainThroughOperators) {
  QueryGraph graph;
  auto* select = graph.Add<Select>("sel", [](const Row&) { return true; });
  auto* agg = graph.Add<GroupedAggregate>(
      "grouped", Grouped(AggregateMode::kConservative));
  graph.Connect(select, agg, 0);
  graph.DeclareEntry(select, 0, OrderedSource());
  StreamProperties out;
  ASSERT_TRUE(graph.DeriveFor(agg, &out).ok());
  EXPECT_EQ(ChooseAlgorithm(out), AlgorithmCase::kR2);
}

TEST(GraphTest, UnionDegradesToR4WithoutKey) {
  QueryGraph graph;
  auto* u = graph.Add<UnionOp>("union", 2);
  graph.DeclareEntry(u, 0, OrderedSource());
  graph.DeclareEntry(u, 1, OrderedSource());
  StreamProperties out;
  ASSERT_TRUE(graph.DeriveFor(u, &out).ok());
  EXPECT_EQ(ChooseAlgorithm(out), AlgorithmCase::kR4);
}

TEST(GraphTest, LMergeOutputKeepsJointProperties) {
  QueryGraph graph;
  auto* lmerge = graph.Add<LMergeOperator>("lm", 2, MergeVariant::kLMR2);
  graph.DeclareEntry(lmerge, 0, OrderedSource());
  graph.DeclareEntry(lmerge, 1, OrderedSource());
  StreamProperties out;
  ASSERT_TRUE(graph.DeriveFor(lmerge, &out).ok());
  EXPECT_TRUE(out.insert_only);
  EXPECT_TRUE(out.ordered);
}

TEST(GraphTest, UndeclaredInputIsAnError) {
  QueryGraph graph;
  auto* u = graph.Add<UnionOp>("union", 2);
  graph.DeclareEntry(u, 0, OrderedSource());  // port 1 missing
  std::map<const Operator*, StreamProperties> all;
  EXPECT_FALSE(graph.DeriveAll(&all).ok());
}

TEST(GraphTest, TotalStateBytesSums) {
  QueryGraph graph;
  auto* cleanse = graph.Add<Cleanse>("cleanse");
  graph.DeclareEntry(cleanse, 0, StreamProperties::None());
  cleanse->Consume(0, StreamElement::Insert(Row::OfInt(1), 10, 1000));
  EXPECT_EQ(graph.TotalStateBytes(), cleanse->StateBytes());
  EXPECT_GT(graph.TotalStateBytes(), 0);
}

}  // namespace
}  // namespace lmerge
