// PartitionedMerger: sharded merge behind the min-frontier stable-point
// aggregator.  Covers key-stable routing, convergence to the reference TDB
// under threaded delivery across variants/seeds/shard counts, the physical
// validity of the recombined output stream, stream churn at 4 shards,
// consistent-cut barriers, error handling, skew backpressure, and the
// per-shard metrics surface.

#include "engine/partitioned.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <span>
#include <thread>

#include "core/factory.h"
#include "obs/metrics.h"
#include "stream/sink.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using workload::GeneratorConfig;
using workload::GeneratePhysicalVariant;
using workload::GenerateHistory;
using workload::LogicalHistory;
using workload::RenderInOrder;
using workload::VariantOptions;

LogicalHistory ClosedHistory(uint64_t seed) {
  GeneratorConfig config;
  config.num_inserts = 400;
  config.stable_freq = 0.05;
  config.event_duration = 600;
  config.max_gap = 12;
  config.payload_string_bytes = 8;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);
  return history;
}

std::vector<ElementSequence> DisorderedReplicas(const LogicalHistory& history,
                                                int count, uint64_t seed) {
  std::vector<ElementSequence> replicas;
  for (int v = 0; v < count; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.25;
    options.split_probability = 0.3;
    options.seed = seed * 11 + static_cast<uint64_t>(v);
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }
  return replicas;
}

ShardAlgorithmFactory MakeFactory(MergeVariant variant, int num_streams) {
  return [variant, num_streams](int /*shard*/, ElementSink* sink) {
    return CreateMergeAlgorithm(variant, num_streams, sink);
  };
}

// The stable() contract of element.h, checked over the recombined output:
// after stable(Vc) there is no insert with Vs < Vc and no adjust with
// Vold < Vc or Ve < Vc, and stables strictly increase.  This is the
// property the min-frontier aggregator must not break.
void ExpectValidPhysicalStream(const ElementSequence& out) {
  Timestamp stable = kMinTimestamp;
  for (const StreamElement& e : out) {
    switch (e.kind()) {
      case ElementKind::kInsert:
        EXPECT_GE(e.vs(), stable) << e.ToString();
        break;
      case ElementKind::kAdjust:
        EXPECT_GE(e.v_old(), stable) << e.ToString();
        EXPECT_GE(e.ve(), stable) << e.ToString();
        break;
      case ElementKind::kStable:
        EXPECT_GT(e.stable_time(), stable) << e.ToString();
        stable = e.stable_time();
        break;
    }
  }
}

TEST(PartitionedRoutingTest, EventAndItsRevisionsShareAShard) {
  const Row a = Row::OfString("event-a");
  const StreamElement insert = StreamElement::Insert(a, 10, 100);
  const StreamElement revise = StreamElement::Adjust(a, 10, 100, 50);
  const StreamElement retract = StreamElement::Adjust(a, 10, 50, 10);
  for (int shards : {2, 3, 4, 8}) {
    const int home = PartitionedMerger::RouteShard(insert, shards);
    EXPECT_GE(home, 0);
    EXPECT_LT(home, shards);
    // Adjusts carry the insert's (payload, Vs) key and must follow it.
    EXPECT_EQ(PartitionedMerger::RouteShard(revise, shards), home);
    EXPECT_EQ(PartitionedMerger::RouteShard(retract, shards), home);
  }
  // Same payload at a different Vs is a different event and may go
  // elsewhere; over many keys every shard must get work.
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 256; ++i) {
    const StreamElement e = StreamElement::Insert(
        Row::OfString("k" + std::to_string(i)), i, i + 10);
    ++hits[static_cast<size_t>(PartitionedMerger::RouteShard(e, 4))];
  }
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_GT(hits[static_cast<size_t>(shard)], 0) << "shard " << shard;
  }
}

class PartitionedMergeTest
    : public ::testing::TestWithParam<
          std::tuple<MergeVariant, uint64_t, int>> {};

TEST_P(PartitionedMergeTest, ThreadedReplicasConverge) {
  const auto [variant, seed, shards] = GetParam();
  const LogicalHistory history = ClosedHistory(seed);
  const Timestamp closing_stable = history.stable_times.back();
  const std::vector<ElementSequence> replicas =
      DisorderedReplicas(history, 4, seed);
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));

  CollectingSink merged;
  PartitionedMergerOptions options;
  options.shards = shards;
  PartitionedMerger merger(MakeFactory(variant, 4), &merged, options);
  EXPECT_EQ(merger.shard_count(), shards);
  merger.Run(replicas);
  EXPECT_TRUE(merger.error().ok());
  EXPECT_EQ(merger.max_stable(), closing_stable);
  ExpectValidPhysicalStream(merged.elements());
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements()).Equals(reference))
      << MergeVariantName(variant) << " seed " << seed << " shards "
      << shards;

  // Aggregated stats match what was delivered: every insert/adjust routes
  // to exactly one shard, every stable reaches all of them.
  int64_t inserts = 0;
  int64_t adjusts = 0;
  int64_t stables = 0;
  for (const ElementSequence& replica : replicas) {
    for (const StreamElement& e : replica) {
      inserts += e.is_insert();
      adjusts += e.is_adjust();
      stables += e.is_stable();
    }
  }
  const MergeOutputStats stats = merger.StatsSnapshot();
  EXPECT_EQ(stats.inserts_in, inserts);
  EXPECT_EQ(stats.adjusts_in, adjusts);
  EXPECT_EQ(stats.stables_in, stables);
  EXPECT_EQ(stats.stables_out, merger.stables_out());
  EXPECT_EQ(merger.delivered_count(), inserts + adjusts + stables);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsSeedsShards, PartitionedMergeTest,
    ::testing::Combine(::testing::Values(MergeVariant::kLMR3Plus,
                                         MergeVariant::kLMR4),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(2, 4)));

// A single shard still goes through the aggregator (MergeServer uses a
// plain ConcurrentMerger for --merge-threads=1; this covers the engine's
// own degenerate case).
TEST(PartitionedMergeTest, SingleShardConverges) {
  const LogicalHistory history = ClosedHistory(31);
  const std::vector<ElementSequence> replicas =
      DisorderedReplicas(history, 3, 31);
  CollectingSink merged;
  PartitionedMergerOptions options;
  options.shards = 1;
  PartitionedMerger merger(MakeFactory(MergeVariant::kLMR3Plus, 3), &merged,
                           options);
  merger.Run(replicas);
  EXPECT_TRUE(merger.error().ok());
  EXPECT_TRUE(
      Tdb::Reconstitute(merged.elements())
          .Equals(Tdb::Reconstitute(RenderInOrder(history))));
}

TEST(PartitionedMergeTest, TryDeliverRejectsInvalidAndInactive) {
  CollectingSink merged;
  PartitionedMergerOptions options;
  options.shards = 2;
  PartitionedMerger merger(MakeFactory(MergeVariant::kLMR3Plus, 1), &merged,
                           options);
  EXPECT_TRUE(
      merger.TryDeliver(0, StreamElement::Insert(Row::OfString("A"), 1, 10))
          .ok());
  // Ve < Vs is caught at the door on the routing thread.
  EXPECT_FALSE(
      merger.TryDeliver(0, StreamElement::Insert(Row::OfString("B"), 10, 1))
          .ok());
  EXPECT_FALSE(
      merger.TryDeliver(7, StreamElement::Stable(5)).ok());  // out of range
  merger.RemoveStream(0);
  EXPECT_FALSE(merger.TryDeliver(0, StreamElement::Stable(5)).ok());
  merger.WaitIdle();
  EXPECT_TRUE(merger.error().ok());
}

TEST(PartitionedMergeTest, BatchDeliveryKeepsPrefixOnError) {
  CollectingSink merged;
  PartitionedMergerOptions options;
  options.shards = 2;
  PartitionedMerger merger(MakeFactory(MergeVariant::kLMR3Plus, 1), &merged,
                           options);
  ElementSequence batch;
  batch.push_back(StreamElement::Insert(Row::OfString("A"), 1, 10));
  batch.push_back(StreamElement::Insert(Row::OfString("B"), 2, 12));
  batch.push_back(StreamElement::Insert(Row::OfString("C"), 12, 2));  // bad
  batch.push_back(StreamElement::Insert(Row::OfString("D"), 3, 13));
  EXPECT_FALSE(
      merger.TryDeliverBatch(0, std::span(batch.data(), batch.size())).ok());
  merger.WaitIdle();
  // The prefix before the invalid element was delivered; the suffix wasn't.
  EXPECT_EQ(merger.StatsSnapshot().inserts_in, 2);
  EXPECT_EQ(merger.delivered_count(), 2);
}

// Satellite: churn test at 4 shard threads — concurrent AddStream /
// RemoveStream against live deliveries, fan-out barriers racing the data
// path (this is the TSan matrix workload).
TEST(PartitionedMergeTest, StreamChurnUnderLoadConverges) {
  const LogicalHistory history = ClosedHistory(23);
  const Timestamp closing_stable = history.stable_times.back();
  constexpr int kInitial = 2;
  constexpr int kJoiners = 3;
  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < kInitial + kJoiners; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.25;
    options.split_probability = 0.3;
    options.seed = 7000 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));

  for (int run = 0; run < 2; ++run) {
    CollectingSink merged;
    PartitionedMergerOptions options;
    options.shards = 4;
    PartitionedMerger merger(MakeFactory(MergeVariant::kLMR4, kInitial),
                             &merged, options);

    std::vector<std::thread> threads;
    threads.emplace_back([&] {
      for (const StreamElement& e : replicas[0]) merger.Deliver(0, e);
    });
    threads.emplace_back([&] {
      const size_t half = replicas[1].size() / 2;
      for (size_t i = 0; i < half; ++i) merger.Deliver(1, replicas[1][i]);
      merger.RemoveStream(1);
    });
    for (int j = 0; j < kJoiners; ++j) {
      threads.emplace_back([&, j] {
        const int stream = merger.AddStream();
        ASSERT_GE(stream, kInitial);
        const ElementSequence& replica = replicas[kInitial + j];
        for (const StreamElement& e : replica) {
          ASSERT_TRUE(merger.TryDeliver(stream, e).ok());
        }
        if (j == 0) merger.RemoveStream(stream);  // join then leave again
      });
    }
    // Barriers racing the churn: snapshots must stay internally coherent.
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        const MergerInputSnapshot snapshot = merger.InputSnapshot();
        EXPECT_EQ(snapshot.per_input.size(), snapshot.active.size());
        int64_t inserts = 0;
        for (const PerInputStats& in : snapshot.per_input) {
          inserts += in.inserts_in;
        }
        EXPECT_EQ(inserts, snapshot.totals.inserts_in);
      }
    });
    for (auto& t : threads) t.join();
    merger.WaitIdle();
    EXPECT_TRUE(merger.error().ok());
    EXPECT_EQ(merger.max_stable(), closing_stable);
    ExpectValidPhysicalStream(merged.elements());
    EXPECT_TRUE(Tdb::Reconstitute(merged.elements()).Equals(reference))
        << "churn run " << run;
  }
}

TEST(PartitionedMergeTest, BarrierSpansEveryShardAtOneCut) {
  CollectingSink merged;
  PartitionedMergerOptions options;
  options.shards = 3;
  PartitionedMerger merger(MakeFactory(MergeVariant::kLMR3Plus, 1), &merged,
                           options);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    for (int i = 0; !stop.load(); ++i) {
      merger.Deliver(0, StreamElement::Insert(
                            Row::OfString("p" + std::to_string(i % 97)),
                            i, i + 50));
    }
  });
  for (int round = 0; round < 10; ++round) {
    merger.CallAtBarrier([&](std::span<MergeAlgorithm* const> shards) {
      ASSERT_EQ(shards.size(), 3u);
      for (MergeAlgorithm* algorithm : shards) {
        ASSERT_NE(algorithm, nullptr);
        EXPECT_EQ(algorithm->stream_count(), 1);
      }
      // With the aggregator drained, every emitted element has been
      // forwarded: what the shards emitted equals what the sink holds.
      int64_t emitted = 0;
      for (MergeAlgorithm* algorithm : shards) {
        emitted += algorithm->stats().inserts_out +
                   algorithm->stats().adjusts_out;
      }
      int64_t forwarded = 0;
      for (const StreamElement& e : merged.elements()) {
        forwarded += !e.is_stable();
      }
      EXPECT_EQ(emitted, forwarded);
    });
  }
  stop.store(true);
  producer.join();
  merger.WaitIdle();
  EXPECT_TRUE(merger.error().ok());
}

// Satellite: skew stress — every element routed to one shard.  Per-shard
// backpressure must engage (bounded rings, visible stalls) and the
// aggregator must still produce the correct merged stream.
TEST(PartitionedMergeTest, SkewedRoutingBackpressuresAndStaysCorrect) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::MetricsRegistry::set_enabled(true);
  const int64_t stalls_before =
      registry.GetCounter("merge.shard.0.backpressure_stalls")->Sum();
  const int64_t routed_before =
      registry.GetCounter("merge.shard.0.elements")->Sum();

  const LogicalHistory history = ClosedHistory(41);
  const std::vector<ElementSequence> replicas =
      DisorderedReplicas(history, 3, 41);
  CollectingSink merged;
  PartitionedMergerOptions options;
  options.shards = 4;
  options.ring_capacity = 16;  // tiny rings so the hot shard pushes back
  options.out_ring_capacity = 16;
  options.route_override = [](const StreamElement&, int) { return 0; };
  PartitionedMerger merger(MakeFactory(MergeVariant::kLMR3Plus, 3), &merged,
                           options);
  merger.Run(replicas);
  EXPECT_TRUE(merger.error().ok());
  EXPECT_EQ(merger.max_stable(), history.stable_times.back());
  ExpectValidPhysicalStream(merged.elements());
  EXPECT_TRUE(
      Tdb::Reconstitute(merged.elements())
          .Equals(Tdb::Reconstitute(RenderInOrder(history))));

  int64_t delivered = 0;
  for (const ElementSequence& replica : replicas) {
    delivered += static_cast<int64_t>(replica.size());
  }
  // All routed traffic (and every broadcast stable) hit shard 0...
  EXPECT_EQ(registry.GetCounter("merge.shard.0.elements")->Sum() -
                routed_before,
            delivered);
  // ...which had to stall producers against its 16-element rings.
  EXPECT_GT(registry.GetCounter("merge.shard.0.backpressure_stalls")->Sum(),
            stalls_before);
  obs::MetricsRegistry::set_enabled(false);
}

// Satellite: the per-shard metrics surface is populated and the aggregated
// merge.* gauges describe the combined state.
TEST(PartitionedMergeTest, MetricsExposeShardSkewAndAggregates) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  // Counters are process-wide and cumulative (earlier tests in this binary
  // touch the same instruments); assert on deltas.
  int64_t routed_before = 0;
  for (int shard = 0; shard < 2; ++shard) {
    routed_before += registry
                         .GetCounter("merge.shard." + std::to_string(shard) +
                                     ".elements")
                         ->Sum();
  }
  obs::MetricsRegistry::set_enabled(true);
  const LogicalHistory history = ClosedHistory(43);
  const std::vector<ElementSequence> replicas =
      DisorderedReplicas(history, 2, 43);
  CollectingSink merged;
  PartitionedMergerOptions options;
  options.shards = 2;
  PartitionedMerger merger(MakeFactory(MergeVariant::kLMR3Plus, 2), &merged,
                           options);
  merger.Run(replicas);
  const obs::MetricsSnapshot snapshot = merger.MetricsSnapshot();
  obs::MetricsRegistry::set_enabled(false);

  EXPECT_EQ(snapshot.Value("merge.shards"), 2);
  EXPECT_EQ(snapshot.Value("merge.stable"), history.stable_times.back());
  EXPECT_EQ(snapshot.Value("engine.pending"), 0);
  int64_t routed = 0;
  for (int shard = 0; shard < 2; ++shard) {
    const std::string scope = "merge.shard." + std::to_string(shard);
    EXPECT_GT(snapshot.Value(scope + ".elements"), 0) << scope;
    const obs::MetricValue* batches = snapshot.Find(scope + ".routed_batch");
    ASSERT_NE(batches, nullptr) << scope;
    EXPECT_GT(batches->histogram.count, 0) << scope;
    routed += snapshot.Value(scope + ".elements");
  }
  // Inserts/adjusts route once, stables are broadcast to both shards.
  int64_t inserts_adjusts = 0;
  int64_t stables = 0;
  for (const ElementSequence& replica : replicas) {
    for (const StreamElement& e : replica) {
      if (e.is_stable()) {
        ++stables;
      } else {
        ++inserts_adjusts;
      }
    }
  }
  EXPECT_EQ(routed - routed_before, inserts_adjusts + 2 * stables);
  EXPECT_EQ(snapshot.Value("merge.in.inserts") +
                snapshot.Value("merge.in.adjusts"),
            inserts_adjusts);
  EXPECT_EQ(snapshot.Value("merge.in.stables"), stables);
}

}  // namespace
}  // namespace lmerge
