#include "engine/simulator.h"

#include <gtest/gtest.h>

#include "operators/select.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Ins;

TEST(SimulatorTest, DeliversInGlobalArrivalOrder) {
  Select identity("id", [](const Row&) { return true; });
  CollectingSink sink;
  identity.AddSink(&sink);
  Simulator sim;
  sim.AddInput(&identity, 0,
               {{0.1, Ins("a", 1, 5)}, {0.3, Ins("c", 3, 5)}});
  sim.AddInput(&identity, 0, {{0.2, Ins("b", 2, 5)}});
  sim.Run();
  ASSERT_EQ(sink.elements().size(), 3u);
  EXPECT_EQ(sink.elements()[0].vs(), 1);
  EXPECT_EQ(sink.elements()[1].vs(), 2);
  EXPECT_EQ(sink.elements()[2].vs(), 3);
  EXPECT_EQ(sim.delivered_count(), 3);
  EXPECT_DOUBLE_EQ(sim.now(), 0.3);
}

TEST(SimulatorTest, ThroughputRecorderBucketsBySimTime) {
  Select identity("id", [](const Row&) { return true; });
  Simulator sim;
  ThroughputRecorder recorder(&sim, 1.0);
  identity.AddSink(&recorder);
  TimedStream stream;
  for (int i = 0; i < 10; ++i) {
    stream.push_back({static_cast<double>(i) * 0.25, Ins("x", i + 1, 100)});
  }
  sim.AddInput(&identity, 0, stream);
  sim.Run();
  const auto& buckets = recorder.buckets();
  ASSERT_EQ(buckets.size(), 3u);  // arrivals span [0, 2.25]
  EXPECT_EQ(buckets[0], 4);
  EXPECT_EQ(buckets[1], 4);
  EXPECT_EQ(buckets[2], 2);
  EXPECT_DOUBLE_EQ(recorder.RatePerSecond()[0], 4.0);
}

TEST(SimulatorTest, LatencyRecorderMeasuresArrivalMinusAppTime) {
  Select identity("id", [](const Row&) { return true; });
  Simulator sim;
  LatencyRecorder latency(&sim);
  identity.AddSink(&latency);
  // App time 1s (1e6 ticks), arrives at 1.5s -> latency 0.5s.
  sim.AddInput(&identity, 0,
               {{1.5, StreamElement::Insert(Row::OfInt(1), 1000000, 2000000)}});
  sim.Run();
  EXPECT_EQ(latency.count(), 1);
  EXPECT_NEAR(latency.MeanSeconds(), 0.5, 1e-9);
}

TEST(SimulatorTest, StablesDoNotCountTowardThroughput) {
  Select identity("id", [](const Row&) { return true; });
  Simulator sim;
  ThroughputRecorder recorder(&sim, 1.0);
  identity.AddSink(&recorder);
  sim.AddInput(&identity, 0,
               {{0.1, Ins("a", 1, 5)}, {0.2, StreamElement::Stable(3)}});
  sim.Run();
  EXPECT_EQ(recorder.buckets()[0], 1);
}

TEST(SimulatorTest, RunReturnsWallSeconds) {
  Select identity("id", [](const Row&) { return true; });
  Simulator sim;
  TimedStream stream;
  for (int i = 0; i < 1000; ++i) {
    stream.push_back({static_cast<double>(i), Ins("x", i + 1, 1u << 20)});
  }
  sim.AddInput(&identity, 0, stream);
  const double wall = sim.Run();
  EXPECT_GE(wall, 0.0);
  EXPECT_LT(wall, 10.0);
}

}  // namespace
}  // namespace lmerge
