#include "container/hash_table.h"

#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/row.h"

namespace lmerge {
namespace {

TEST(HashTableTest, InsertFindBasic) {
  HashTable<int64_t, int64_t, IntHash> table;
  EXPECT_TRUE(table.empty());
  EXPECT_TRUE(table.Insert(1, 10).second);
  EXPECT_FALSE(table.Insert(1, 99).second);  // duplicate keeps old value
  ASSERT_NE(table.Find(1), nullptr);
  EXPECT_EQ(*table.Find(1), 10);
  EXPECT_EQ(table.Find(2), nullptr);
  EXPECT_EQ(table.size(), 1);
}

TEST(HashTableTest, InsertReturnsPointerToStoredValue) {
  HashTable<int64_t, int64_t, IntHash> table;
  auto [ptr, inserted] = table.Insert(7, 70);
  ASSERT_TRUE(inserted);
  *ptr = 71;
  EXPECT_EQ(*table.Find(7), 71);
}

TEST(HashTableTest, SubscriptDefaultInserts) {
  HashTable<int64_t, int64_t, IntHash> table;
  EXPECT_EQ(table[5], 0);
  table[5] = 55;
  EXPECT_EQ(*table.Find(5), 55);
}

TEST(HashTableTest, EraseBackwardShiftKeepsOthersFindable) {
  HashTable<int64_t, int64_t, IntHash> table;
  for (int64_t k = 0; k < 64; ++k) table.Insert(k, k * 2);
  for (int64_t k = 0; k < 64; k += 2) EXPECT_TRUE(table.Erase(k));
  EXPECT_FALSE(table.Erase(0));
  EXPECT_EQ(table.size(), 32);
  for (int64_t k = 1; k < 64; k += 2) {
    ASSERT_NE(table.Find(k), nullptr) << k;
    EXPECT_EQ(*table.Find(k), k * 2);
  }
  for (int64_t k = 0; k < 64; k += 2) EXPECT_EQ(table.Find(k), nullptr);
}

TEST(HashTableTest, GrowsPastInitialCapacity) {
  HashTable<int64_t, int64_t, IntHash> table(8);
  for (int64_t k = 0; k < 1000; ++k) table.Insert(k, k);
  EXPECT_EQ(table.size(), 1000);
  EXPECT_GE(table.capacity(), 1024);
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(table.Find(k), nullptr);
    EXPECT_EQ(*table.Find(k), k);
  }
}

TEST(HashTableTest, ForEachVisitsEveryEntry) {
  HashTable<int64_t, int64_t, IntHash> table;
  for (int64_t k = 0; k < 20; ++k) table.Insert(k, k);
  int64_t sum = 0;
  int64_t count = 0;
  table.ForEach([&](int64_t key, int64_t value) {
    EXPECT_EQ(key, value);
    sum += value;
    ++count;
  });
  EXPECT_EQ(count, 20);
  EXPECT_EQ(sum, 190);
}

TEST(HashTableTest, ClearResets) {
  HashTable<int64_t, int64_t, IntHash> table;
  for (int64_t k = 0; k < 20; ++k) table.Insert(k, k);
  table.Clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.Find(3), nullptr);
  table.Insert(3, 33);
  EXPECT_EQ(*table.Find(3), 33);
}

TEST(HashTableTest, RowKeys) {
  HashTable<Row, int64_t, RowHash> table;
  table.Insert(Row::OfIntAndString(1, "a"), 1);
  table.Insert(Row::OfIntAndString(2, "b"), 2);
  ASSERT_NE(table.Find(Row::OfIntAndString(1, "a")), nullptr);
  EXPECT_EQ(*table.Find(Row::OfIntAndString(1, "a")), 1);
  EXPECT_EQ(table.Find(Row::OfIntAndString(1, "b")), nullptr);
}

TEST(HashTableTest, SlotBytesTracksCapacity) {
  HashTable<int64_t, int64_t, IntHash> table(8);
  const int64_t before = table.SlotBytes();
  for (int64_t k = 0; k < 100; ++k) table.Insert(k, k);
  EXPECT_GT(table.SlotBytes(), before);
}

class HashTableRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashTableRandomizedTest, MatchesUnorderedMap) {
  Rng rng(GetParam());
  HashTable<int64_t, int64_t, IntHash> table;
  std::unordered_map<int64_t, int64_t> reference;
  for (int step = 0; step < 20000; ++step) {
    const int64_t key = rng.UniformInt(0, 700);
    switch (rng.UniformInt(0, 3)) {
      case 0:
      case 1: {
        const bool inserted = table.Insert(key, step).second;
        EXPECT_EQ(inserted, reference.emplace(key, step).second);
        break;
      }
      case 2: {
        EXPECT_EQ(table.Erase(key), reference.erase(key) > 0);
        break;
      }
      default: {
        const int64_t* mine = table.Find(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(mine, nullptr);
        } else {
          ASSERT_NE(mine, nullptr);
          EXPECT_EQ(*mine, it->second);
        }
      }
    }
  }
  EXPECT_EQ(table.size(), static_cast<int64_t>(reference.size()));
  int64_t visited = 0;
  table.ForEach([&](int64_t key, int64_t value) {
    auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(value, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, table.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashTableRandomizedTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace lmerge
