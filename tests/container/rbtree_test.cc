#include "container/rbtree.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace lmerge {
namespace {

TEST(RbTreeTest, InsertFindBasic) {
  RbTree<int, int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Insert(5, 50).second);
  EXPECT_TRUE(tree.Insert(3, 30).second);
  EXPECT_TRUE(tree.Insert(8, 80).second);
  EXPECT_FALSE(tree.Insert(5, 99).second);  // duplicate key
  EXPECT_EQ(tree.size(), 3);
  EXPECT_EQ(tree.Find(5).value(), 50);  // value unchanged by dup insert
  EXPECT_EQ(tree.Find(9), tree.end());
}

TEST(RbTreeTest, InOrderIteration) {
  RbTree<int, int> tree;
  for (const int k : {9, 1, 7, 3, 5}) tree.Insert(k, k * 10);
  std::vector<int> keys;
  for (auto it = tree.begin(); it != tree.end(); ++it) {
    keys.push_back(it.key());
  }
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(RbTreeTest, LowerBound) {
  RbTree<int, int> tree;
  for (const int k : {10, 20, 30}) tree.Insert(k, k);
  EXPECT_EQ(tree.LowerBound(5).key(), 10);
  EXPECT_EQ(tree.LowerBound(10).key(), 10);
  EXPECT_EQ(tree.LowerBound(11).key(), 20);
  EXPECT_EQ(tree.LowerBound(31), tree.end());
}

TEST(RbTreeTest, Last) {
  RbTree<int, int> tree;
  EXPECT_EQ(tree.Last(), tree.end());
  for (const int k : {4, 2, 9, 6}) tree.Insert(k, k);
  EXPECT_EQ(tree.Last().key(), 9);
}

TEST(RbTreeTest, EraseByKey) {
  RbTree<int, int> tree;
  for (int k = 0; k < 10; ++k) tree.Insert(k, k);
  EXPECT_TRUE(tree.Erase(4));
  EXPECT_FALSE(tree.Erase(4));
  EXPECT_EQ(tree.size(), 9);
  EXPECT_EQ(tree.Find(4), tree.end());
  tree.ValidateInvariants();
}

TEST(RbTreeTest, EraseByIteratorReturnsSuccessor) {
  RbTree<int, int> tree;
  for (const int k : {1, 2, 3}) tree.Insert(k, k);
  auto it = tree.Find(2);
  it = tree.Erase(it);
  EXPECT_EQ(it.key(), 3);
  it = tree.Erase(it);
  EXPECT_EQ(it, tree.end());
  EXPECT_EQ(tree.size(), 1);
}

TEST(RbTreeTest, EraseWhileIterating) {
  RbTree<int, int> tree;
  for (int k = 0; k < 100; ++k) tree.Insert(k, k);
  // Delete every even key during a forward scan.
  auto it = tree.begin();
  while (it != tree.end()) {
    if (it.key() % 2 == 0) {
      it = tree.Erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(tree.size(), 50);
  for (auto i = tree.begin(); i != tree.end(); ++i) {
    EXPECT_EQ(i.key() % 2, 1);
  }
  tree.ValidateInvariants();
}

TEST(RbTreeTest, MoveTransfersOwnership) {
  RbTree<int, int> a;
  a.Insert(1, 10);
  RbTree<int, int> b(std::move(a));
  EXPECT_EQ(b.size(), 1);
  EXPECT_EQ(a.size(), 0);
  RbTree<int, int> c;
  c = std::move(b);
  EXPECT_EQ(c.Find(1).value(), 10);
}

TEST(RbTreeTest, NodeBytesScalesWithSize) {
  RbTree<int, int> tree;
  EXPECT_EQ(tree.NodeBytes(), 0);
  for (int k = 0; k < 10; ++k) tree.Insert(k, k);
  const int64_t ten = tree.NodeBytes();
  EXPECT_GT(ten, 0);
  for (int k = 10; k < 20; ++k) tree.Insert(k, k);
  EXPECT_EQ(tree.NodeBytes(), 2 * ten);
}

class RbTreeRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbTreeRandomizedTest, MatchesStdMapUnderRandomOps) {
  Rng rng(GetParam());
  RbTree<int64_t, int64_t> tree;
  std::map<int64_t, int64_t> reference;
  for (int step = 0; step < 5000; ++step) {
    const int64_t key = rng.UniformInt(0, 500);
    const int op = static_cast<int>(rng.UniformInt(0, 2));
    if (op <= 1) {  // insert biased 2:1
      const bool inserted = tree.Insert(key, step).second;
      const bool ref_inserted = reference.emplace(key, step).second;
      ASSERT_EQ(inserted, ref_inserted);
    } else {
      ASSERT_EQ(tree.Erase(key), reference.erase(key) > 0);
    }
    if (step % 512 == 0) tree.ValidateInvariants();
  }
  tree.ValidateInvariants();
  ASSERT_EQ(tree.size(), static_cast<int64_t>(reference.size()));
  auto it = tree.begin();
  for (const auto& [key, value] : reference) {
    ASSERT_NE(it, tree.end());
    EXPECT_EQ(it.key(), key);
    EXPECT_EQ(it.value(), value);
    ++it;
  }
  EXPECT_EQ(it, tree.end());
  // Spot-check LowerBound against the reference.
  for (int probe = 0; probe < 100; ++probe) {
    const int64_t key = rng.UniformInt(0, 520);
    auto mine = tree.LowerBound(key);
    auto ref = reference.lower_bound(key);
    if (ref == reference.end()) {
      EXPECT_EQ(mine, tree.end());
    } else {
      ASSERT_NE(mine, tree.end());
      EXPECT_EQ(mine.key(), ref->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeRandomizedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace lmerge
