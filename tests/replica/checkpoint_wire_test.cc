// v4 standby session behaviour on the MergeServer, driven byte-by-byte
// over loopback pairs: role gating, checkpoint serving, chunked transfer
// under live traffic, and the cut certificate's dedup horizon.

#include "net/server.h"

#include <gtest/gtest.h>

#include "common/checkpoint.h"
#include "core/lmerge_r4.h"
#include "net/loopback.h"
#include "net/protocol.h"
#include "replica/cut_certificate.h"
#include "test_util.h"

namespace lmerge::net {
namespace {

using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

struct TestPeer {
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;
  int session_id = -1;
  FrameAssembler assembler;

  std::vector<Frame> DrainFrames() {
    std::string bytes;
    EXPECT_TRUE(client->TryReceive(&bytes).ok());
    EXPECT_TRUE(assembler.Feed(bytes).ok());
    std::vector<Frame> frames;
    Frame frame;
    while (assembler.Next(&frame)) frames.push_back(frame);
    return frames;
  }
};

TestPeer ConnectPeer(MergeServer* server, const std::string& name) {
  TestPeer peer;
  auto [client, server_end] =
      CreateLoopbackPair("client:" + name, "server:" + name);
  peer.client = std::move(client);
  peer.server = std::move(server_end);
  peer.session_id = server->OnConnect(peer.server.get());
  return peer;
}

HelloMessage StandbyHello(const std::string& name,
                          uint32_t version = kProtocolVersion) {
  HelloMessage hello;
  hello.version = version;
  hello.role = PeerRole::kStandby;
  hello.peer_name = name;
  return hello;
}

HelloMessage PublisherHello(const std::string& name) {
  HelloMessage hello;
  hello.role = PeerRole::kPublisher;
  hello.peer_name = name;
  return hello;
}

// Decodes the element-bearing frames in `frames` (maintaining `dict` from
// PAYLOAD_DEF frames) and returns the element count.
int64_t CountElements(const std::vector<Frame>& frames,
                      PayloadDictDecoder* dict) {
  int64_t count = 0;
  for (const Frame& frame : frames) {
    switch (frame.type) {
      case FrameType::kElement: {
        StreamElement element;
        EXPECT_TRUE(DecodeElementPayload(frame.payload, &element).ok());
        ++count;
        break;
      }
      case FrameType::kElements: {
        ElementSequence elements;
        EXPECT_TRUE(DecodeElementsPayload(frame.payload, &elements).ok());
        count += static_cast<int64_t>(elements.size());
        break;
      }
      case FrameType::kPayloadDef: {
        PayloadDefMessage def;
        EXPECT_TRUE(DecodePayloadDefPayload(frame.payload, &def).ok());
        EXPECT_TRUE(dict->Define(def.id, std::move(def.payload)).ok());
        break;
      }
      case FrameType::kElementsDict: {
        ElementSequence elements;
        int64_t origin_us = 0;
        EXPECT_TRUE(DecodeElementsDictPayload(frame.payload, *dict,
                                              &elements, &origin_us)
                        .ok());
        count += static_cast<int64_t>(elements.size());
        break;
      }
      default:
        break;
    }
  }
  return count;
}

TEST(CheckpointWireTest, StandbyRoleRequiresV4) {
  MergeServer server;
  TestPeer standby = ConnectPeer(&server, "old-standby");
  const Status status = server.OnBytes(
      standby.session_id,
      EncodeHelloFrame(StandbyHello("old-standby", /*version=*/3)));
  EXPECT_FALSE(status.ok());
  const std::vector<Frame> frames = standby.DrainFrames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kBye);
  ByeMessage bye;
  ASSERT_TRUE(DecodeBye(frames[0].payload, &bye).ok());
  EXPECT_NE(bye.reason.find("v4"), std::string::npos);
}

TEST(CheckpointWireTest, CheckpointRequestFromNonStandbyRejected) {
  MergeServer server;
  TestPeer sub = ConnectPeer(&server, "sub");
  HelloMessage hello;
  hello.role = PeerRole::kSubscriber;
  hello.peer_name = "sub";
  ASSERT_TRUE(
      server.OnBytes(sub.session_id, EncodeHelloFrame(hello)).ok());
  (void)sub.DrainFrames();  // WELCOME
  const Status status =
      server.OnBytes(sub.session_id, EncodeCheckpointRequestFrame());
  EXPECT_FALSE(status.ok());
  const std::vector<Frame> frames = sub.DrainFrames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kBye);
}

TEST(CheckpointWireTest, NoStateYieldsEmptyCutCert) {
  // A standby asking before any publisher exists gets has_state=false and
  // no chunks — it simply subscribes from scratch.
  MergeServer server;
  TestPeer standby = ConnectPeer(&server, "standby");
  ASSERT_TRUE(server
                  .OnBytes(standby.session_id,
                           EncodeHelloFrame(StandbyHello("standby")))
                  .ok());
  std::vector<Frame> frames = standby.DrainFrames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kWelcome);

  ASSERT_TRUE(
      server.OnBytes(standby.session_id, EncodeCheckpointRequestFrame())
          .ok());
  frames = standby.DrainFrames();
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, FrameType::kCutCert);
  CutCertMessage cut;
  ASSERT_TRUE(DecodeCutCert(frames[0].payload, &cut).ok());
  EXPECT_FALSE(cut.has_state);
  EXPECT_EQ(cut.chunk_count, 0u);
  EXPECT_EQ(cut.checkpoint_bytes, 0u);
}

TEST(CheckpointWireTest, ServedCheckpointRestoresAndCertifiesTheCut) {
  // Publisher state flows in; the standby's transfer must reassemble into a
  // loadable v2 blob whose certificate matches the server's state and the
  // standby's own subscription ("elements sent at cut" == what the standby
  // had received before the CUT_CERT frame).
  MergeServerOptions options;
  options.variant = MergeVariant::kLMR4;
  MergeServer server(options);

  TestPeer standby = ConnectPeer(&server, "standby");
  ASSERT_TRUE(server
                  .OnBytes(standby.session_id,
                           EncodeHelloFrame(StandbyHello("standby")))
                  .ok());
  (void)standby.DrainFrames();  // WELCOME

  TestPeer pub = ConnectPeer(&server, "pub");
  ASSERT_TRUE(server
                  .OnBytes(pub.session_id,
                           EncodeHelloFrame(PublisherHello("pub")))
                  .ok());
  (void)pub.DrainFrames();  // WELCOME

  // Enough distinct payloads that the blob spans several chunks.
  constexpr int kBatch = 500;
  constexpr int kBatches = 12;
  int64_t sent = 0;
  for (int b = 0; b < kBatches; ++b) {
    ElementSequence batch;
    for (int i = 0; i < kBatch; ++i) {
      const int64_t vs = b * kBatch + i + 1;
      batch.push_back(Ins("payload-" + std::to_string(vs) +
                              std::string(64, 'x'),
                          vs, vs + 1000000));
    }
    sent += kBatch;
    ASSERT_TRUE(
        server
            .OnBytes(pub.session_id,
                     EncodeElementsFrame(batch, /*origin_us=*/1000))
            .ok());
  }
  server.Flush();

  ASSERT_TRUE(
      server.OnBytes(standby.session_id, EncodeCheckpointRequestFrame())
          .ok());
  const std::vector<Frame> frames = standby.DrainFrames();

  // Split the drained frames at the CUT_CERT: everything before is live
  // fan-out the certificate must account for.
  PayloadDictDecoder dict;
  std::vector<Frame> before_cut;
  CutCertMessage cut;
  bool have_cert = false;
  std::string blob;
  uint32_t chunks = 0;
  for (const Frame& frame : frames) {
    if (frame.type == FrameType::kCutCert) {
      ASSERT_FALSE(have_cert);
      ASSERT_TRUE(DecodeCutCert(frame.payload, &cut).ok());
      have_cert = true;
      continue;
    }
    if (frame.type == FrameType::kCheckpointChunk) {
      ASSERT_TRUE(have_cert);
      CheckpointChunkMessage chunk;
      ASSERT_TRUE(DecodeCheckpointChunk(frame.payload, &chunk).ok());
      ASSERT_EQ(chunk.index, chunks);
      blob.append(chunk.bytes);
      ++chunks;
      continue;
    }
    ASSERT_FALSE(have_cert) << "element frames after the last chunk";
    before_cut.push_back(frame);
  }
  ASSERT_TRUE(have_cert);
  EXPECT_TRUE(cut.has_state);
  EXPECT_GE(cut.chunk_count, 2u) << "blob too small to test chunking";
  EXPECT_EQ(chunks, cut.chunk_count);
  EXPECT_EQ(blob.size(), cut.checkpoint_bytes);

  // The dedup horizon is exactly what this subscription saw pre-cut.
  const int64_t received_before_cut = CountElements(before_cut, &dict);
  EXPECT_EQ(cut.cert.elements_sent_at_cut, received_before_cut);
  EXPECT_EQ(received_before_cut, sent);  // R4 forwards all distinct inserts

  EXPECT_EQ(cut.cert.variant, MergeVariant::kLMR4);
  ASSERT_EQ(cut.cert.inputs.size(), 1u);
  EXPECT_TRUE(cut.cert.inputs[0].active);
  EXPECT_EQ(cut.cert.inputs[0].elements_in, sent);

  // The reassembled blob is a loadable v2 checkpoint with the same
  // certificate embedded.
  CheckpointInfo info;
  ASSERT_TRUE(InspectCheckpoint(blob, &info).ok());
  EXPECT_EQ(info.version, kCheckpointVersion);
  EXPECT_EQ(info.flags, kCheckpointFlagCutCertificate);
  replica::CutCertificate embedded;
  ASSERT_TRUE(
      replica::ParseCutCertificate(info.cut_certificate, &embedded).ok());
  EXPECT_EQ(embedded.elements_sent_at_cut, cut.cert.elements_sent_at_cut);
  EXPECT_EQ(embedded.output_stable, cut.cert.output_stable);

  CollectingSink sink;
  LMergeR4 restored(1, &sink);
  ASSERT_TRUE(LoadCheckpoint(blob, &restored).ok());
  EXPECT_EQ(restored.max_stable(), cut.cert.output_stable);
}

TEST(CheckpointWireTest, AdoptCheckpointRefusedAfterPublishers) {
  // AdoptCheckpoint is a pre-flight operation: once a publisher shaped the
  // algorithm, adopting someone else's state would corrupt the merge.
  MergeServer server;
  TestPeer pub = ConnectPeer(&server, "pub");
  ASSERT_TRUE(server
                  .OnBytes(pub.session_id,
                           EncodeHelloFrame(PublisherHello("pub")))
                  .ok());
  replica::CutCertificate cert;
  cert.variant = MergeVariant::kLMR4;
  CollectingSink sink;
  LMergeR4 donor(1, &sink);
  const std::string blob =
      SaveCheckpoint(donor, kCheckpointVersion,
                     replica::SerializeCutCertificate(cert));
  EXPECT_FALSE(server.AdoptCheckpoint(blob, cert).ok());
}

}  // namespace
}  // namespace lmerge::net
