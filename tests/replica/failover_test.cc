// End-to-end failover: a StandbyReplica jumpstarts from a live primary's
// checkpoint (Sec. II-4 applied to the merge operator itself), shadows it
// through the feed stream, survives the primary's death, and — joined by
// the surviving publishers — produces an output whose reconstitution
// equals the uninterrupted reference.  Exercised across algorithm
// variants and generator seeds (docs/REPLICATION.md).

#include "replica/standby.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/loopback.h"
#include "net/protocol.h"
#include "net/server.h"
#include "stream/validate.h"
#include "temporal/tdb.h"
#include "workload/generator.h"

namespace lmerge::replica {
namespace {

using workload::GeneratePhysicalVariant;
using workload::GenerateHistory;
using workload::GeneratorConfig;
using workload::LogicalHistory;
using workload::RenderInOrder;
using workload::VariantOptions;

LogicalHistory ClosedHistory(uint64_t seed, int64_t n = 400) {
  GeneratorConfig config;
  config.num_inserts = n;
  config.stable_freq = 0.05;
  config.event_duration = 500;
  config.max_gap = 10;
  config.payload_string_bytes = 12;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);
  return history;
}

// Shuttles bytes from a server-side connection end into MergeServer::OnBytes
// — the one transport direction the in-process tests need a thread for,
// because StandbyReplica blocks in Receive on the other end.
class SessionPump {
 public:
  SessionPump(net::MergeServer* server, net::Connection* connection,
              int session_id)
      : connection_(connection),
        thread_([server, connection, session_id] {
          char buffer[16 * 1024];
          size_t received = 0;
          while (connection->Receive(buffer, sizeof(buffer), &received).ok() &&
                 received > 0) {
            if (!server->OnBytes(session_id, std::string(buffer, received))
                     .ok()) {
              break;
            }
          }
        }) {}
  // Close-before-join so an early (failing) test exit cannot wedge on a
  // pump blocked in Receive.
  ~SessionPump() {
    connection_->Close();
    thread_.join();
  }

 private:
  net::Connection* connection_;
  std::thread thread_;
};

// A publisher session driven synchronously via OnBytes.
struct Publisher {
  std::unique_ptr<net::Connection> client;
  std::unique_ptr<net::Connection> server_end;
  int session_id = -1;
};

Publisher ConnectPublisher(net::MergeServer* server, const std::string& name,
                           Timestamp join_time = kMinTimestamp) {
  Publisher pub;
  auto [client, server_end] =
      net::CreateLoopbackPair("client:" + name, "server:" + name);
  pub.client = std::move(client);
  pub.server_end = std::move(server_end);
  pub.session_id = server->OnConnect(pub.server_end.get());
  net::HelloMessage hello;
  hello.role = net::PeerRole::kPublisher;
  hello.peer_name = name;
  hello.join_time = join_time;
  EXPECT_TRUE(
      server->OnBytes(pub.session_id, net::EncodeHelloFrame(hello)).ok());
  std::string drained;
  EXPECT_TRUE(pub.client->TryReceive(&drained).ok());  // WELCOME (+feedback)
  return pub;
}

void Publish(net::MergeServer* server, Publisher* pub,
             const ElementSequence& elements, size_t begin, size_t end) {
  constexpr size_t kBatch = 256;
  for (size_t i = begin; i < end; i += kBatch) {
    ElementSequence batch(elements.begin() + i,
                          elements.begin() + std::min(end, i + kBatch));
    ASSERT_TRUE(
        server->OnBytes(pub->session_id,
                        net::EncodeElementsFrame(batch, /*origin_us=*/1000))
            .ok());
    std::string drained;
    ASSERT_TRUE(pub->client->TryReceive(&drained).ok());  // feedback
  }
}

// One full failover scenario: primary serves two divergent presentations,
// the standby jumpstarts at ~half the stream, the primary dies at ~80%,
// and the surviving publishers replay their full streams to the promoted
// standby (the Sec. V-B join protocol dedups everything pre-delivered).
void RunFailover(MergeVariant variant, uint64_t seed, int merge_threads = 1) {
  SCOPED_TRACE(::testing::Message()
               << "variant=" << static_cast<int>(variant) << " seed=" << seed
               << " merge_threads=" << merge_threads);
  const LogicalHistory history = ClosedHistory(seed);
  std::vector<ElementSequence> inputs;
  for (uint64_t v = 0; v < 2; ++v) {
    VariantOptions options;
    options.seed = 100 * seed + v;
    if (variant == MergeVariant::kLMR2) {
      // R2 takes in-order insert-only inputs; the presentations may still
      // differ in their stable schedules.
      options.disorder_fraction = 0.0;
      options.split_probability = 0.0;
      options.stable_thinning = static_cast<int64_t>(v + 1);
    } else {
      options.disorder_fraction = 0.2;
      options.split_probability = 0.25;
    }
    inputs.push_back(GeneratePhysicalVariant(history, options));
  }

  net::MergeServerOptions primary_options;
  primary_options.variant = variant;
  primary_options.merge_threads = merge_threads;
  net::MergeServer primary(primary_options);

  // Standby attaches to the primary over a loopback connection.
  StandbyOptions standby_options;
  standby_options.name = "standby";
  StandbyReplica standby(standby_options);
  CollectingSink standby_out;
  standby.server().AddOutputSink(&standby_out);

  auto [standby_client, standby_server_end] =
      net::CreateLoopbackPair("standby", "primary:standby");
  const int standby_session = primary.OnConnect(standby_server_end.get());
  {
    SessionPump pump(&primary, standby_server_end.get(), standby_session);
    ASSERT_TRUE(standby.Connect(std::move(standby_client)).ok());

    Publisher pub_a = ConnectPublisher(&primary, "pub-a");
    Publisher pub_b = ConnectPublisher(&primary, "pub-b");
    const size_t half_a = inputs[0].size() / 2;
    const size_t half_b = inputs[1].size() / 2;
    Publish(&primary, &pub_a, inputs[0], 0, half_a);
    Publish(&primary, &pub_b, inputs[1], 0, half_b);
    primary.Flush();

    // Jumpstart mid-stream: snapshot + cut certificate arrive interleaved
    // with live fan-out; the certificate's horizon dedups the overlap.
    const Status jumpstart = standby.Jumpstart();
    ASSERT_TRUE(jumpstart.ok()) << jumpstart.ToString();
    EXPECT_TRUE(standby.has_state());
    EXPECT_EQ(standby.cut().variant, variant);

    std::thread live([&standby] { EXPECT_TRUE(standby.PumpLive().ok()); });

    const size_t dead_a = inputs[0].size() * 8 / 10;
    const size_t dead_b = inputs[1].size() * 8 / 10;
    Publish(&primary, &pub_a, inputs[0], half_a, dead_a);
    Publish(&primary, &pub_b, inputs[1], half_b, dead_b);
    primary.Flush();

    // Primary dies: its end of the standby connection closes, PumpLive
    // sees EOF, and the standby promotes itself.
    primary.OnDisconnect(standby_session);
    standby_server_end->Close();
    live.join();
    primary.OnDisconnect(pub_a.session_id);
    primary.OnDisconnect(pub_b.session_id);
  }
  EXPECT_GT(standby.feed_elements(), 0);
  EXPECT_GE(standby.deduped_elements(),
            standby.cut().elements_sent_at_cut);
  ASSERT_TRUE(standby.Promote("primary gone").ok());

  // The surviving publishers reconnect to the standby and replay their
  // entire streams; the restored state absorbs everything already merged.
  Publisher pub_a2 = ConnectPublisher(&standby.server(), "pub-a2");
  Publisher pub_b2 = ConnectPublisher(&standby.server(), "pub-b2");
  Publish(&standby.server(), &pub_a2, inputs[0], 0, inputs[0].size());
  Publish(&standby.server(), &pub_b2, inputs[1], 0, inputs[1].size());
  standby.server().Flush();

  // The standby's view of the whole logical stream: the primary's output
  // up to the certified cut, then its own output.
  ElementSequence full = standby.pre_cut();
  full.insert(full.end(), standby_out.elements().begin(),
              standby_out.elements().end());
  StreamValidator validator;
  ASSERT_TRUE(validator.ConsumeAll(full).ok());
  EXPECT_TRUE(Tdb::Reconstitute(full).Equals(
      Tdb::Reconstitute(RenderInOrder(history))))
      << "failover output diverged from the uninterrupted reference";
}

TEST(FailoverTest, R3PlusSeed1) { RunFailover(MergeVariant::kLMR3Plus, 1); }
TEST(FailoverTest, R3PlusSeed2) { RunFailover(MergeVariant::kLMR3Plus, 2); }
TEST(FailoverTest, R2Seed1) { RunFailover(MergeVariant::kLMR2, 1); }
TEST(FailoverTest, R2Seed2) { RunFailover(MergeVariant::kLMR2, 2); }
TEST(FailoverTest, R4Seed1) { RunFailover(MergeVariant::kLMR4, 1); }
TEST(FailoverTest, R4Seed2) { RunFailover(MergeVariant::kLMR4, 2); }

// Partitioned primary: the cut snapshots every shard at one barrier, the
// LMPC blob carries the shard count, and the promoted standby reconstructs
// the same partitioned topology — all through the unchanged standby path.
TEST(FailoverTest, PartitionedR4Seed1) {
  RunFailover(MergeVariant::kLMR4, 1, /*merge_threads=*/4);
}
TEST(FailoverTest, PartitionedR3PlusSeed2) {
  RunFailover(MergeVariant::kLMR3Plus, 2, /*merge_threads=*/3);
}

TEST(FailoverTest, JumpstartBeforeFirstPublisher) {
  // A standby that attaches before the primary has any state simply
  // subscribes from scratch: has_state=false, nothing deduped, and the
  // feed alone reproduces the whole stream.
  const LogicalHistory history = ClosedHistory(9, /*n=*/200);
  VariantOptions options;
  options.seed = 5;
  const ElementSequence input = GeneratePhysicalVariant(history, options);

  net::MergeServer primary;
  StandbyReplica standby(StandbyOptions{});
  CollectingSink standby_out;
  standby.server().AddOutputSink(&standby_out);

  auto [standby_client, standby_server_end] =
      net::CreateLoopbackPair("standby", "primary:standby");
  const int standby_session = primary.OnConnect(standby_server_end.get());
  {
    SessionPump pump(&primary, standby_server_end.get(), standby_session);
    ASSERT_TRUE(standby.Connect(std::move(standby_client)).ok());
    ASSERT_TRUE(standby.Jumpstart().ok());
    EXPECT_FALSE(standby.has_state());
    EXPECT_EQ(standby.deduped_elements(), 0);
    EXPECT_TRUE(standby.pre_cut().empty());

    std::thread live([&standby] { EXPECT_TRUE(standby.PumpLive().ok()); });
    Publisher pub = ConnectPublisher(&primary, "pub");
    Publish(&primary, &pub, input, 0, input.size());
    primary.Flush();
    primary.OnDisconnect(standby_session);
    standby_server_end->Close();
    live.join();
    primary.OnDisconnect(pub.session_id);
  }
  ASSERT_TRUE(standby.Promote("primary done").ok());

  EXPECT_TRUE(Tdb::Reconstitute(standby_out.elements())
                  .Equals(Tdb::Reconstitute(RenderInOrder(history))));
}

}  // namespace
}  // namespace lmerge::replica
