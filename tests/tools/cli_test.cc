#include "tools/cli.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge::tools {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--inserts=100", "--open", "file.lmst",
                        "--rate=2.5", "other.lmst"};
  const Flags flags(6, argv);
  EXPECT_EQ(flags.GetInt("inserts", 0), 100);
  EXPECT_TRUE(flags.Has("open"));
  EXPECT_FALSE(flags.Has("closed"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 2.5);
  EXPECT_EQ(flags.GetString("open", ""), "true");
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "file.lmst");
  EXPECT_EQ(flags.positional()[1], "other.lmst");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags flags(1, argv);
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_EQ(flags.GetString("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 1.5), 1.5);
  EXPECT_TRUE(flags.positional().empty());
}

TEST(StreamFileTest, RoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/lmerge_cli_test_roundtrip.lmst";
  const ElementSequence elements = {Ins("A", 1, 10), Adj("A", 1, 10, 20),
                                    Stb(5)};
  ASSERT_TRUE(WriteStreamFile(path, elements).ok());
  ElementSequence got;
  ASSERT_TRUE(ReadStreamFile(path, &got).ok());
  EXPECT_EQ(got, elements);
  std::remove(path.c_str());
}

TEST(StreamFileTest, MissingFileIsNotFound) {
  ElementSequence got;
  const Status status =
      ReadStreamFile("/nonexistent/definitely/missing.lmst", &got);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(StreamFileTest, BadMagicRejected) {
  const std::string path = ::testing::TempDir() + "/lmerge_cli_badmagic.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a stream file at all", f);
  std::fclose(f);
  ElementSequence got;
  EXPECT_FALSE(ReadStreamFile(path, &got).ok());
  std::remove(path.c_str());
}

TEST(StreamFileTest, TruncatedBodyRejected) {
  const std::string path = ::testing::TempDir() + "/lmerge_cli_trunc.lmst";
  ASSERT_TRUE(WriteStreamFile(path, {Ins("A", 1, 10)}).ok());
  // Truncate the last bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 4), 0);
  ElementSequence got;
  EXPECT_FALSE(ReadStreamFile(path, &got).ok());
  std::remove(path.c_str());
}

TEST(StreamFileTest, EmptySequenceIsFine) {
  const std::string path = ::testing::TempDir() + "/lmerge_cli_empty.lmst";
  ASSERT_TRUE(WriteStreamFile(path, {}).ok());
  ElementSequence got = {Stb(1)};
  ASSERT_TRUE(ReadStreamFile(path, &got).ok());
  EXPECT_TRUE(got.empty());
  std::remove(path.c_str());
}

TEST(PayloadStatsTest, CountsDistinctRepsAndSharedBytes) {
  // Three references to "dup" (which all intern to one rep), one to "uniq",
  // and a stable element that carries no payload.
  const ElementSequence elements = {Ins("dup", 1, 10), Adj("dup", 1, 10, 20),
                                    Ins("dup", 2, 10), Ins("uniq", 3, 10),
                                    Stb(5)};
  const PayloadStatsReport report = ComputePayloadStats(elements);
  EXPECT_EQ(report.payload_refs, 4);
  EXPECT_EQ(report.distinct_payloads, 2);
  EXPECT_DOUBLE_EQ(report.DedupRatio(), 2.0);
  // Four deep copies cost more than two shared reps plus four handles.
  EXPECT_GT(report.deep_bytes, report.shared_bytes);
  const Row dup = Row::OfString("dup");
  const Row uniq = Row::OfString("uniq");
  EXPECT_EQ(report.shared_bytes,
            dup.SharedSizeBytes() + uniq.SharedSizeBytes());
  EXPECT_EQ(report.deep_bytes,
            3 * dup.DeepSizeBytes() + uniq.DeepSizeBytes());
}

TEST(PayloadStatsTest, EmptyTapeReportsNoPayloads) {
  const PayloadStatsReport report = ComputePayloadStats({Stb(1), Stb(2)});
  EXPECT_EQ(report.payload_refs, 0);
  EXPECT_EQ(report.distinct_payloads, 0);
  EXPECT_DOUBLE_EQ(report.DedupRatio(), 1.0);
  EXPECT_EQ(report.BytesSaved(), 0);
}

TEST(PayloadStatsTest, FormatMentionsEveryCounter) {
  PayloadStatsReport report;
  report.payload_refs = 40;
  report.distinct_payloads = 10;
  report.deep_bytes = 4000;
  report.shared_bytes = 1000;
  PayloadStore::Stats store;
  store.entries = 10;
  store.live_refs = 40;
  store.payload_bytes = 1000;
  store.intern_calls = 40;
  store.hits = 30;
  store.bytes_saved = 3000;
  store.shard_count = 16;
  const std::string text = FormatPayloadStats(report, store);
  EXPECT_NE(text.find("40 references -> 10 distinct"), std::string::npos);
  EXPECT_NE(text.find("dedup 4.00x"), std::string::npos);
  EXPECT_NE(text.find("1000 shared vs 4000 copied (3000 saved)"),
            std::string::npos);
  EXPECT_NE(text.find("10 entries"), std::string::npos);
  EXPECT_NE(text.find("40 interns, 30 hits"), std::string::npos);
  EXPECT_NE(text.find("16 shards"), std::string::npos);
}

}  // namespace
}  // namespace lmerge::tools
