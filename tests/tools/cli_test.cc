#include "tools/cli.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge::tools {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--inserts=100", "--open", "file.lmst",
                        "--rate=2.5", "other.lmst"};
  const Flags flags(6, argv);
  EXPECT_EQ(flags.GetInt("inserts", 0), 100);
  EXPECT_TRUE(flags.Has("open"));
  EXPECT_FALSE(flags.Has("closed"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 2.5);
  EXPECT_EQ(flags.GetString("open", ""), "true");
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "file.lmst");
  EXPECT_EQ(flags.positional()[1], "other.lmst");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags flags(1, argv);
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_EQ(flags.GetString("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 1.5), 1.5);
  EXPECT_TRUE(flags.positional().empty());
}

TEST(StreamFileTest, RoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/lmerge_cli_test_roundtrip.lmst";
  const ElementSequence elements = {Ins("A", 1, 10), Adj("A", 1, 10, 20),
                                    Stb(5)};
  ASSERT_TRUE(WriteStreamFile(path, elements).ok());
  ElementSequence got;
  ASSERT_TRUE(ReadStreamFile(path, &got).ok());
  EXPECT_EQ(got, elements);
  std::remove(path.c_str());
}

TEST(StreamFileTest, MissingFileIsNotFound) {
  ElementSequence got;
  const Status status =
      ReadStreamFile("/nonexistent/definitely/missing.lmst", &got);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(StreamFileTest, BadMagicRejected) {
  const std::string path = ::testing::TempDir() + "/lmerge_cli_badmagic.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a stream file at all", f);
  std::fclose(f);
  ElementSequence got;
  EXPECT_FALSE(ReadStreamFile(path, &got).ok());
  std::remove(path.c_str());
}

TEST(StreamFileTest, TruncatedBodyRejected) {
  const std::string path = ::testing::TempDir() + "/lmerge_cli_trunc.lmst";
  ASSERT_TRUE(WriteStreamFile(path, {Ins("A", 1, 10)}).ok());
  // Truncate the last bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 4), 0);
  ElementSequence got;
  EXPECT_FALSE(ReadStreamFile(path, &got).ok());
  std::remove(path.c_str());
}

TEST(StreamFileTest, EmptySequenceIsFine) {
  const std::string path = ::testing::TempDir() + "/lmerge_cli_empty.lmst";
  ASSERT_TRUE(WriteStreamFile(path, {}).ok());
  ElementSequence got = {Stb(1)};
  ASSERT_TRUE(ReadStreamFile(path, &got).ok());
  EXPECT_TRUE(got.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lmerge::tools
