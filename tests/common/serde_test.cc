#include "common/serde.h"

#include <gtest/gtest.h>

#include "stream/element_serde.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(SerdeTest, PrimitivesRoundTrip) {
  Encoder encoder;
  encoder.WriteU8(7);
  encoder.WriteU32(123456);
  encoder.WriteU64(0xdeadbeefcafef00dULL);
  encoder.WriteI64(-42);
  encoder.WriteDouble(3.25);
  encoder.WriteString("hello");

  Decoder decoder(encoder.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(decoder.ReadU8(&u8).ok());
  ASSERT_TRUE(decoder.ReadU32(&u32).ok());
  ASSERT_TRUE(decoder.ReadU64(&u64).ok());
  ASSERT_TRUE(decoder.ReadI64(&i64).ok());
  ASSERT_TRUE(decoder.ReadDouble(&d).ok());
  ASSERT_TRUE(decoder.ReadString(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(decoder.AtEnd());
}

TEST(SerdeTest, ValuesRoundTrip) {
  const std::vector<Value> values = {
      Value::Null(),          Value(true),
      Value(int64_t{-77}),    Value(2.5),
      Value(std::string(1000, 'z')),
  };
  Encoder encoder;
  for (const Value& v : values) encoder.WriteValue(v);
  Decoder decoder(encoder.bytes());
  for (const Value& expected : values) {
    Value got;
    ASSERT_TRUE(decoder.ReadValue(&got).ok());
    EXPECT_EQ(got, expected);
  }
}

TEST(SerdeTest, RowRoundTripPreservesHash) {
  const Row row = Row::OfIntAndString(42, "payload");
  Encoder encoder;
  encoder.WriteRow(row);
  Decoder decoder(encoder.bytes());
  Row got;
  ASSERT_TRUE(decoder.ReadRow(&got).ok());
  EXPECT_EQ(got, row);
  EXPECT_EQ(got.hash(), row.hash());
}

TEST(SerdeTest, TruncatedBufferRejected) {
  Encoder encoder;
  encoder.WriteRow(Row::OfIntAndString(1, "abcdef"));
  const std::string full = encoder.bytes();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    const std::string truncated = full.substr(0, cut);
    Decoder decoder_input(truncated);
    Row row;
    EXPECT_FALSE(decoder_input.ReadRow(&row).ok()) << "cut at " << cut;
  }
}

TEST(SerdeTest, CorruptTagsRejected) {
  Encoder encoder;
  encoder.WriteU8(250);  // not a ValueType
  Decoder decoder(encoder.bytes());
  Value value;
  EXPECT_FALSE(decoder.ReadValue(&value).ok());
}

TEST(ElementSerdeTest, ElementsRoundTrip) {
  const ElementSequence elements = {
      Ins("A", 5, kInfinity),
      Adj("A", 5, kInfinity, 12),
      Stb(11),
      StreamElement::Insert(Row::OfIntAndString(7, "blob"), -3, 99),
  };
  const std::string bytes = SerializeSequence(elements);
  ElementSequence got;
  ASSERT_TRUE(DeserializeSequence(bytes, &got).ok());
  EXPECT_EQ(got, elements);
}

TEST(ElementSerdeTest, TrailingBytesRejected) {
  std::string bytes = SerializeSequence({Stb(1)});
  bytes.push_back('x');
  ElementSequence got;
  EXPECT_FALSE(DeserializeSequence(bytes, &got).ok());
}

TEST(ElementSerdeTest, HugeCountRejected) {
  Encoder encoder;
  encoder.WriteU32(0xffffffff);  // absurd element count
  ElementSequence got;
  Decoder decoder(encoder.bytes());
  EXPECT_FALSE(DecodeSequence(&decoder, &got).ok());
}

TEST(ElementSerdeTest, StreamSurvivesWireFormat) {
  // A reconstituted TDB is identical after a serialize/parse hop.
  const ElementSequence original = {Ins("A", 1, 10), Adj("A", 1, 10, 20),
                                    Ins("B", 5, kInfinity), Stb(6)};
  ElementSequence shipped;
  ASSERT_TRUE(
      DeserializeSequence(SerializeSequence(original), &shipped).ok());
  EXPECT_TRUE(Tdb::Reconstitute(shipped).Equals(Tdb::Reconstitute(original)));
}

}  // namespace
}  // namespace lmerge
