#include "common/schema.h"

#include <gtest/gtest.h>

namespace lmerge {
namespace {

Schema TestSchema() {
  return Schema({{"machine", ValueType::kInt64},
                 {"metric", ValueType::kString},
                 {"load", ValueType::kDouble}});
}

TEST(SchemaTest, IndexOf) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.IndexOf("machine"), 0);
  EXPECT_EQ(s.IndexOf("load"), 2);
  EXPECT_EQ(s.IndexOf("missing"), -1);
}

TEST(SchemaTest, ValidateRowAccepts) {
  const Schema s = TestSchema();
  EXPECT_TRUE(
      s.ValidateRow(Row({Value(int64_t{1}), Value("cpu"), Value(0.5)})).ok());
}

TEST(SchemaTest, ValidateRowAcceptsNulls) {
  const Schema s = TestSchema();
  EXPECT_TRUE(
      s.ValidateRow(Row({Value::Null(), Value("cpu"), Value::Null()})).ok());
}

TEST(SchemaTest, ValidateRowRejectsArity) {
  const Schema s = TestSchema();
  const Status status = s.ValidateRow(Row({Value(int64_t{1})}));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateRowRejectsWrongType) {
  const Schema s = TestSchema();
  const Status status =
      s.ValidateRow(Row({Value("oops"), Value("cpu"), Value(0.5)}));
  EXPECT_FALSE(status.ok());
}

TEST(SchemaTest, ConcatForJoins) {
  const Schema left({{"a", ValueType::kInt64}});
  const Schema right({{"b", ValueType::kString}});
  const Schema joined = left.Concat(right);
  ASSERT_EQ(joined.column_count(), 2);
  EXPECT_EQ(joined.column(0).name, "a");
  EXPECT_EQ(joined.column(1).name, "b");
}

TEST(SchemaTest, EqualsAndToString) {
  EXPECT_TRUE(TestSchema().Equals(TestSchema()));
  EXPECT_FALSE(TestSchema().Equals(Schema({{"x", ValueType::kInt64}})));
  EXPECT_EQ(Schema({{"x", ValueType::kInt64}}).ToString(), "[x:int64]");
}

}  // namespace
}  // namespace lmerge
