// Compile-fail-style coverage for common/thread_annotations.h and
// common/mutex.h.
//
// The annotations are only useful if they expand to *real* attributes under
// Clang (so -Werror=thread-safety can reject violations) and to *nothing*
// under GCC (so the portable build never chokes on them).  This test pins
// both halves:
//
//   * LMERGE_THREAD_SAFETY_ENABLED must track the compiler — a toolchain
//     change that silently disabled the analysis would flip it to 0 under
//     Clang and fail here.
//
//   * The GuardedCounter fixture below is a fully annotated class
//     (LM_CAPABILITY mutex, LM_GUARDED_BY member, LM_REQUIRES /
//     LM_ACQUIRE / LM_RELEASE / LM_EXCLUDES methods).  Merely compiling
//     this file under `clang++ -Wthread-safety -Werror=thread-safety`
//     proves the macro expansions are attributes Clang accepts in every
//     position we use, and that correctly locked code passes the analysis.
//     The negative direction (a seeded violation must FAIL the build) is
//     exercised by reverting any annotation, per docs/STATIC_ANALYSIS.md.

#include "common/thread_annotations.h"

#include <chrono>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "gtest/gtest.h"

namespace lmerge {
namespace {

// The macro must mirror the compiler: attributes under Clang, no-ops
// elsewhere.  (A static_assert so a mismatch cannot even link.)
#if defined(__clang__)
static_assert(LMERGE_THREAD_SAFETY_ENABLED == 1,
              "Clang must compile the thread-safety annotations as real "
              "attributes");
#else
static_assert(LMERGE_THREAD_SAFETY_ENABLED == 0,
              "non-Clang compilers must see the annotations as no-ops");
#endif

// Exercises every macro position used in the codebase: capability class,
// guarded member, REQUIRES / ACQUIRE / RELEASE / TRY_ACQUIRE / EXCLUDES
// functions, and the scoped MutexLock guard.
class GuardedCounter {
 public:
  void Increment() LM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    IncrementLocked();
  }

  bool TryIncrement() LM_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    IncrementLocked();
    mu_.Unlock();
    return true;
  }

  void Lock() LM_ACQUIRE(mu_) { mu_.Lock(); }
  void Unlock() LM_RELEASE(mu_) { mu_.Unlock(); }
  void IncrementLocked() LM_REQUIRES(mu_) { ++count_; }

  int count() const LM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable Mutex mu_;
  int count_ LM_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotationsTest, AnnotatedMutexIsARealLock) {
  GuardedCounter counter;
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 2500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.count(), kThreads * kIncrementsPerThread);
}

TEST(ThreadAnnotationsTest, ManualAcquireReleaseAndTryLock) {
  GuardedCounter counter;
  counter.Lock();
  counter.IncrementLocked();
  counter.Unlock();
  EXPECT_TRUE(counter.TryIncrement());
  EXPECT_EQ(counter.count(), 2);
}

TEST(ThreadAnnotationsTest, MutexLockEarlyReleaseAndReacquire) {
  Mutex mu;
  int guarded = 0;
  {
    MutexLock lock(mu);
    ++guarded;
    lock.Unlock();  // the annotated early-release idiom (PayloadStore)
    lock.Lock();
    ++guarded;
  }
  // Scope exit released; the mutex must be immediately reacquirable.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
  EXPECT_EQ(guarded, 2);
}

TEST(ThreadAnnotationsTest, CondVarWaitLoopsSeeNotifications) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();

  // Timed variant: no notifier, must return (timeout) without deadlock.
  MutexLock lock(mu);
  (void)cv.WaitFor(lock, std::chrono::milliseconds(1));
}

}  // namespace
}  // namespace lmerge
