// Decoder robustness: random and mutated byte buffers must never crash the
// decoders — every malformed input yields a Status error.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/serde.h"
#include "stream/element_serde.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

class SerdeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeFuzzTest, RandomBytesNeverCrashRowDecoder) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string bytes;
    const int64_t len = rng.UniformInt(0, 64);
    for (int64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    Decoder decoder(bytes);
    Row row;
    // May succeed or fail; must not crash or read out of bounds.
    (void)decoder.ReadRow(&row);
  }
}

TEST_P(SerdeFuzzTest, RandomBytesNeverCrashSequenceDecoder) {
  Rng rng(GetParam() * 31 + 1);
  for (int round = 0; round < 200; ++round) {
    std::string bytes;
    const int64_t len = rng.UniformInt(0, 128);
    for (int64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    ElementSequence elements;
    (void)DeserializeSequence(bytes, &elements);
  }
}

TEST_P(SerdeFuzzTest, MutatedValidBuffersFailCleanly) {
  Rng rng(GetParam() * 7 + 3);
  const ElementSequence original = {
      Ins("payload-string", 10, 500),
      Adj("payload-string", 10, 500, 700),
      StreamElement::Insert(Row::OfIntAndString(42, "x"), 20, kInfinity),
      Stb(30),
  };
  const std::string valid = SerializeSequence(original);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    ElementSequence elements;
    const Status status = DeserializeSequence(mutated, &elements);
    if (status.ok()) {
      // A mutation that keeps the buffer well-formed must still produce
      // elements the library can at least print.
      for (const StreamElement& e : elements) (void)e.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace lmerge
