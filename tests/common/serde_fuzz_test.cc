// Decoder robustness: random and mutated byte buffers must never crash the
// decoders — every malformed input yields a Status error.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/serde.h"
#include "net/protocol.h"
#include "replica/cut_certificate.h"
#include "stream/element_serde.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

class SerdeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeFuzzTest, RandomBytesNeverCrashRowDecoder) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string bytes;
    const int64_t len = rng.UniformInt(0, 64);
    for (int64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    Decoder decoder(bytes);
    Row row;
    // May succeed or fail; must not crash or read out of bounds.
    (void)decoder.ReadRow(&row);
  }
}

TEST_P(SerdeFuzzTest, RandomBytesNeverCrashSequenceDecoder) {
  Rng rng(GetParam() * 31 + 1);
  for (int round = 0; round < 200; ++round) {
    std::string bytes;
    const int64_t len = rng.UniformInt(0, 128);
    for (int64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    ElementSequence elements;
    (void)DeserializeSequence(bytes, &elements);
  }
}

TEST_P(SerdeFuzzTest, MutatedValidBuffersFailCleanly) {
  Rng rng(GetParam() * 7 + 3);
  const ElementSequence original = {
      Ins("payload-string", 10, 500),
      Adj("payload-string", 10, 500, 700),
      StreamElement::Insert(Row::OfIntAndString(42, "x"), 20, kInfinity),
      Stb(30),
  };
  const std::string valid = SerializeSequence(original);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    ElementSequence elements;
    const Status status = DeserializeSequence(mutated, &elements);
    if (status.ok()) {
      // A mutation that keeps the buffer well-formed must still produce
      // elements the library can at least print.
      for (const StreamElement& e : elements) (void)e.ToString();
    }
  }
}

TEST_P(SerdeFuzzTest, RandomBytesNeverCrashDictDecoders) {
  Rng rng(GetParam() * 131 + 17);
  PayloadDictDecoder dict;
  // Pre-define a few ids so some random buffers can resolve references.
  ASSERT_TRUE(dict.Define(0, Row::OfString("zero")).ok());
  ASSERT_TRUE(dict.Define(1, Row::OfInt(1)).ok());
  for (int round = 0; round < 200; ++round) {
    std::string bytes;
    const int64_t len = rng.UniformInt(0, 128);
    for (int64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    {
      Decoder decoder(bytes);
      uint32_t id = 0;
      Row payload;
      (void)DecodePayloadDef(&decoder, &id, &payload);
    }
    {
      Decoder decoder(bytes);
      ElementSequence elements;
      (void)DecodeSequenceDict(&decoder, dict, &elements);
    }
  }
}

TEST_P(SerdeFuzzTest, MutatedDictBuffersFailCleanly) {
  Rng rng(GetParam() * 1009 + 7);
  // Build a valid dictionary-coded buffer with repeats (so it actually
  // carries ids) plus an inline escape (the empty payload of Stb).
  PayloadDictEncoder encoder;
  std::vector<std::pair<uint32_t, Row>> defs;
  const ElementSequence original = {
      Ins("dict-payload", 10, 500),   Adj("dict-payload", 10, 500, 700),
      Ins("dict-payload", 20, 600),   Ins("other", 30, 700),
      Stb(40),
  };
  Encoder body;
  EncodeSequenceDict(original, &encoder, &defs, &body);
  const std::string valid = body.TakeBytes();

  // The matching decoder state: apply the defs the encoder emitted.
  PayloadDictDecoder dict;
  for (const auto& [id, payload] : defs) {
    ASSERT_TRUE(dict.Define(id, payload).ok());
  }
  {
    // Sanity: the unmutated buffer round-trips.
    Decoder decoder(valid);
    ElementSequence elements;
    ASSERT_TRUE(DecodeSequenceDict(&decoder, dict, &elements).ok());
    EXPECT_EQ(elements, original);
  }

  for (int round = 0; round < 300; ++round) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    Decoder decoder(mutated);
    ElementSequence elements;
    const Status status = DecodeSequenceDict(&decoder, dict, &elements);
    if (status.ok()) {
      for (const StreamElement& e : elements) (void)e.ToString();
    }
  }
}

TEST_P(SerdeFuzzTest, TruncatedDictBuffersReturnStatus) {
  PayloadDictEncoder encoder;
  std::vector<std::pair<uint32_t, Row>> defs;
  const ElementSequence original = {Ins("trunc-me", 1, 10),
                                    Ins("trunc-me", 2, 20), Stb(3)};
  Encoder body;
  EncodeSequenceDict(original, &encoder, &defs, &body);
  const std::string valid = body.TakeBytes();
  PayloadDictDecoder dict;
  for (const auto& [id, payload] : defs) {
    ASSERT_TRUE(dict.Define(id, payload).ok());
  }
  // Every strict prefix must fail with a Status (count mismatch or short
  // read), never crash and never succeed.
  for (size_t len = 0; len < valid.size(); ++len) {
    const std::string prefix = valid.substr(0, len);
    Decoder decoder(prefix);
    ElementSequence elements;
    Status status = DecodeSequenceDict(&decoder, dict, &elements);
    // A prefix may decode fewer elements without error only if the decoder
    // cannot tell (it can: the count is explicit), so require failure.
    EXPECT_FALSE(status.ok()) << "prefix length " << len;
  }
  // Same for PAYLOAD_DEF payloads.
  Encoder def_encoder;
  EncodePayloadDef(7, Row::OfIntAndString(9, "def"), &def_encoder);
  const std::string def_bytes = def_encoder.TakeBytes();
  for (size_t len = 0; len < def_bytes.size(); ++len) {
    const std::string prefix = def_bytes.substr(0, len);
    Decoder decoder(prefix);
    uint32_t id = 0;
    Row payload;
    EXPECT_FALSE(DecodePayloadDef(&decoder, &id, &payload).ok())
        << "prefix length " << len;
  }
}

TEST(PayloadDictTest, UnknownIdIsAnErrorNotACrash) {
  PayloadDictDecoder dict;
  Row out;
  const Status status = dict.Resolve(12345, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("12345"), std::string::npos);
}

TEST(PayloadDictTest, DuplicateAndReservedDefsRejected) {
  PayloadDictDecoder dict;
  ASSERT_TRUE(dict.Define(3, Row::OfString("first")).ok());
  EXPECT_FALSE(dict.Define(3, Row::OfString("second")).ok());
  EXPECT_FALSE(dict.Define(kInlinePayloadId, Row::OfString("nope")).ok());
  // The original binding survives the rejected redefinition.
  Row out;
  ASSERT_TRUE(dict.Resolve(3, &out).ok());
  EXPECT_EQ(out, Row::OfString("first"));
}

TEST(PayloadDictTest, CapacityOverflowFallsBackToInline) {
  // A capacity-2 encoder interns two payloads, then escapes the third
  // inline; the decoder side needs no entry for inline payloads.
  PayloadDictEncoder encoder(/*capacity=*/2);
  std::vector<std::pair<uint32_t, Row>> defs;
  const ElementSequence elements = {Ins("a", 1, 10), Ins("b", 2, 20),
                                    Ins("c", 3, 30), Ins("a", 4, 40)};
  Encoder body;
  EncodeSequenceDict(elements, &encoder, &defs, &body);
  EXPECT_EQ(defs.size(), 2u);  // "c" overflowed to inline
  PayloadDictDecoder dict(/*capacity=*/2);
  for (const auto& [id, payload] : defs) {
    ASSERT_TRUE(dict.Define(id, payload).ok());
  }
  const std::string bytes = body.TakeBytes();
  Decoder decoder(bytes);
  ElementSequence got;
  ASSERT_TRUE(DecodeSequenceDict(&decoder, dict, &got).ok());
  EXPECT_EQ(got, elements);
}

TEST_P(SerdeFuzzTest, RandomBytesNeverCrashReplicationDecoders) {
  // v4 replication payloads (CHECKPOINT_CHUNK, CUT_CERT) and the bare cut
  // certificate: random buffers must yield a Status, never a crash.
  Rng rng(GetParam() * 257 + 11);
  for (int round = 0; round < 200; ++round) {
    std::string bytes;
    const int64_t len = rng.UniformInt(0, 128);
    for (int64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    net::CheckpointChunkMessage chunk;
    (void)net::DecodeCheckpointChunk(bytes, &chunk);
    net::CutCertMessage cut;
    (void)net::DecodeCutCert(bytes, &cut);
    replica::CutCertificate cert;
    (void)replica::ParseCutCertificate(bytes, &cert);
  }
}

TEST_P(SerdeFuzzTest, MutatedReplicationBuffersFailCleanly) {
  Rng rng(GetParam() * 8191 + 5);
  net::CutCertMessage cut;
  cut.has_state = true;
  cut.checkpoint_bytes = 96;
  cut.chunk_count = 1;
  cut.cert.variant = MergeVariant::kLMR3Plus;
  cut.cert.output_stable = 55;
  cut.cert.elements_sent_at_cut = 9;
  cut.cert.inputs.push_back({0, true, 50, 40});
  cut.cert.inputs.push_back({1, true, 45, 38});
  // Strip the frame header to get the payload the decoder sees.
  const std::string framed = net::EncodeCutCertFrame(cut);
  net::FrameAssembler assembler;
  ASSERT_TRUE(assembler.Feed(framed).ok());
  net::Frame frame;
  ASSERT_TRUE(assembler.Next(&frame));
  const std::string valid = frame.payload;
  {
    net::CutCertMessage decoded;
    ASSERT_TRUE(net::DecodeCutCert(valid, &decoded).ok());
  }
  for (int round = 0; round < 300; ++round) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    net::CutCertMessage decoded;
    // May succeed (benign mutation) or fail; must never crash.  A success
    // must still satisfy the framing invariants the decoder enforces.
    const Status status = net::DecodeCutCert(mutated, &decoded);
    if (status.ok() && decoded.has_state) {
      EXPECT_LE(decoded.checkpoint_bytes,
                static_cast<uint64_t>(decoded.chunk_count) *
                    net::kMaxFramePayload);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace lmerge
