#include "common/value.h"

#include <gtest/gtest.h>

namespace lmerge {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hello").AsString(), "hello");
}

TEST(ValueTest, CompareWithinType) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value(1.0), Value(1.5));
  EXPECT_LT(Value(false), Value(true));
}

TEST(ValueTest, CompareAcrossTypesUsesTypeTag) {
  // null < bool < int64 < double < string by tag.
  EXPECT_LT(Value::Null(), Value(true));
  EXPECT_LT(Value(true), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{99}), Value(0.0));
  EXPECT_LT(Value(1e300), Value(""));
}

TEST(ValueTest, EqualValuesHashEqually) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_EQ(Value(0.0).Hash(), Value(-0.0).Hash());  // -0.0 == 0.0
}

TEST(ValueTest, DistinctValuesUsuallyHashDifferently) {
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
  EXPECT_NE(Value("a").Hash(), Value("b").Hash());
  // Same content, different type: must not collide by construction.
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(true).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{5}).ToString(), "5");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
}

TEST(ValueTest, DeepSizeCountsStringHeap) {
  const Value small("ab");  // fits SSO
  const Value large(std::string(1000, 'x'));
  EXPECT_GE(large.DeepSizeBytes(),
            small.DeepSizeBytes() + 900);  // heap blob counted
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace lmerge
