#include "common/random.h"

#include <gtest/gtest.h>

namespace lmerge {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(77);
  bool seen[4] = {false, false, false, false};
  for (int i = 0; i < 1000; ++i) seen[rng.UniformInt(0, 3)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(8);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(20.0, 5.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 20.0, 0.2);
  EXPECT_NEAR(var, 25.0, 1.5);
}

TEST(RngTest, TruncatedNormalRespectsBounds) {
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.TruncatedNormal(20.0, 5.0, 10.0, 25.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 25.0);
  }
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(&state);
  const uint64_t b = SplitMix64(&state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace lmerge
