#include "common/payload_store.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/payload_ledger.h"
#include "common/row.h"
#include "core/in2t.h"
#include "core/in3t.h"

namespace lmerge {
namespace {

TEST(PayloadStoreTest, EqualContentSharesOneRep) {
  const Row a = Row::OfIntAndString(7, "shared-blob");
  const Row b = Row::OfIntAndString(7, "shared-blob");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.identity(), b.identity());
  EXPECT_TRUE(a.interned());
}

TEST(PayloadStoreTest, DifferentContentDifferentReps) {
  const Row a = Row::OfString("one");
  const Row b = Row::OfString("two");
  EXPECT_NE(a, b);
  EXPECT_NE(a.identity(), b.identity());
}

TEST(PayloadStoreTest, EmptyRowIsNullHandle) {
  const Row empty;
  EXPECT_EQ(empty.identity(), nullptr);
  EXPECT_FALSE(empty.interned());
  EXPECT_EQ(empty.SharedSizeBytes(), 0);
  EXPECT_EQ(empty.field_count(), 0);
  EXPECT_EQ(empty, Row(std::vector<Value>{}));
}

TEST(PayloadStoreTest, CopyAndMoveShareTheRep) {
  const Row a = Row::OfString("move-me");
  Row copy = a;
  EXPECT_EQ(copy.identity(), a.identity());
  Row moved = std::move(copy);
  EXPECT_EQ(moved.identity(), a.identity());
  EXPECT_EQ(copy.identity(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(PayloadStoreTest, LastReleaseEvictsFromStore) {
  PayloadStore store;
  std::vector<Value> fields = {Value(std::string("transient"))};
  RowRep* rep = store.Intern(std::move(fields), 123);
  EXPECT_EQ(store.GetStats().entries, 1);
  PayloadStore::Release(rep);
  const PayloadStore::Stats stats = store.GetStats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.payload_bytes, 0);
}

TEST(PayloadStoreTest, ReinternAfterEvictionWorks) {
  PayloadStore store;
  RowRep* rep = store.Intern({Value(int64_t{5})}, 99);
  PayloadStore::Release(rep);
  RowRep* again = store.Intern({Value(int64_t{5})}, 99);
  EXPECT_EQ(store.GetStats().entries, 1);
  // The first rep was evicted, so this was a fresh intern, not a hit.
  EXPECT_EQ(store.GetStats().hits, 0);
  PayloadStore::Release(again);
}

TEST(PayloadStoreTest, HitCountersAndBytesSaved) {
  PayloadStore store;
  RowRep* first = store.Intern({Value(std::string("popular"))}, 7);
  RowRep* second = store.Intern({Value(std::string("popular"))}, 7);
  EXPECT_EQ(first, second);
  const PayloadStore::Stats stats = store.GetStats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.live_refs, 2);
  EXPECT_EQ(stats.intern_calls, 2);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.bytes_saved, first->deep_bytes);
  EXPECT_DOUBLE_EQ(stats.DedupRatio(), 2.0);
  PayloadStore::Release(first);
  PayloadStore::Release(second);
}

TEST(PayloadStoreTest, DeepCopyIsPrivateButEqual) {
  const Row original = Row::OfIntAndString(1, "copied");
  const Row copy = original.DeepCopy();
  EXPECT_EQ(copy, original);
  EXPECT_NE(copy.identity(), original.identity());
  EXPECT_FALSE(copy.interned());
  EXPECT_TRUE(original.interned());
  EXPECT_EQ(copy.hash(), original.hash());
}

TEST(PayloadStoreTest, HashMatchesAcrossPrivateAndInterned) {
  // RowHash drives the (Vs, payload) indexes; private copies must land in
  // the same buckets as their interned twins.
  const Row interned = Row::OfString("hash-me");
  const Row copied = interned.DeepCopy();
  EXPECT_EQ(RowHash()(interned), RowHash()(copied));
}

TEST(PayloadStoreTest, ConcurrentInternAndReleaseChurn) {
  // TSan target: many threads interning/releasing the same small key space
  // exercises the revive-vs-evict protocol under the shard locks.
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  PayloadStore store;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &start, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kIters; ++i) {
        const int64_t key = (t + i) % 5;
        RowRep* rep = store.Intern({Value(key)}, static_cast<uint64_t>(key));
        if (i % 3 == 0) PayloadStore::AddRef(rep), PayloadStore::Release(rep);
        PayloadStore::Release(rep);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  const PayloadStore::Stats stats = store.GetStats();
  EXPECT_EQ(stats.live_refs, 0);
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.payload_bytes, 0);
}

TEST(SharedPayloadLedgerTest, ChargesOncePerDistinctRep) {
  SharedPayloadLedger ledger;
  const Row shared = Row::OfString("ledger-shared");
  const Row other = Row::OfString("ledger-other");
  EXPECT_EQ(ledger.AddRef(shared), shared.SharedSizeBytes());
  EXPECT_EQ(ledger.AddRef(shared), 0);  // second ref: already charged
  EXPECT_EQ(ledger.AddRef(other), other.SharedSizeBytes());
  EXPECT_EQ(ledger.bytes(), shared.SharedSizeBytes() + other.SharedSizeBytes());
  EXPECT_EQ(ledger.distinct(), 2);
  EXPECT_EQ(ledger.Release(shared), 0);  // one ref remains
  EXPECT_EQ(ledger.Release(shared), shared.SharedSizeBytes());
  EXPECT_EQ(ledger.Release(other), other.SharedSizeBytes());
  EXPECT_EQ(ledger.bytes(), 0);
  EXPECT_EQ(ledger.distinct(), 0);
  EXPECT_EQ(ledger.OverheadBytes(), 0);
}

TEST(SharedPayloadLedgerTest, EmptyRowIsFree) {
  SharedPayloadLedger ledger;
  EXPECT_EQ(ledger.AddRef(Row()), 0);
  EXPECT_EQ(ledger.Release(Row()), 0);
  EXPECT_EQ(ledger.bytes(), 0);
}

// The satellite regression: with interned payloads, an index referencing
// one rep from many nodes must charge its bytes once per store entry — not
// once per node, as the pre-interning per-node model did.
TEST(In2tAccountingTest, SharedPayloadChargedOncePerEntry) {
  In2t index;
  const Row shared = Row::OfIntAndString(3, std::string(1000, 'x'));
  constexpr int kNodes = 8;
  for (int i = 0; i < kNodes; ++i) index.AddNode(i, shared);

  EXPECT_EQ(index.distinct_payloads(), 1);
  // Unshared (per-node) accounting grows linearly with nodes; the real
  // StateBytes holds one payload charge no matter how many nodes share it.
  const int64_t shared_term = shared.SharedSizeBytes();
  const int64_t unshared_term = kNodes * shared.DeepSizeBytes();
  EXPECT_GE(index.StateBytesUnshared() - index.StateBytes(),
            unshared_term - shared_term -
                1024);  // slack for ledger overhead bytes
  // Deleting all but one node keeps the single charge...
  for (int i = 0; i < kNodes - 1; ++i) index.DeleteNode(index.begin());
  EXPECT_EQ(index.distinct_payloads(), 1);
  // ...and deleting the last releases it.
  index.DeleteNode(index.begin());
  EXPECT_EQ(index.distinct_payloads(), 0);
  EXPECT_EQ(index.StateBytes(), 0);
  EXPECT_EQ(index.StateBytesUnshared(), 0);
}

TEST(In3tAccountingTest, SharedPayloadChargedOncePerEntry) {
  In3t index;
  const Row shared = Row::OfIntAndString(4, std::string(1000, 'y'));
  constexpr int kNodes = 8;
  for (int i = 0; i < kNodes; ++i) index.AddNode(i, shared);

  EXPECT_EQ(index.distinct_payloads(), 1);
  EXPECT_LT(index.StateBytes(),
            index.StateBytesUnshared());  // sharing must be cheaper
  for (int i = 0; i < kNodes; ++i) index.DeleteNode(index.begin());
  EXPECT_EQ(index.distinct_payloads(), 0);
  EXPECT_EQ(index.StateBytes(), 0);
}

}  // namespace
}  // namespace lmerge
