#include "common/row.h"

#include <gtest/gtest.h>

namespace lmerge {
namespace {

TEST(RowTest, FieldAccess) {
  const Row row = Row::OfIntAndString(7, "blob");
  ASSERT_EQ(row.field_count(), 2);
  EXPECT_EQ(row.field(0).AsInt64(), 7);
  EXPECT_EQ(row.field(1).AsString(), "blob");
}

TEST(RowTest, EqualityAndHash) {
  const Row a = Row::OfIntAndString(1, "x");
  const Row b = Row::OfIntAndString(1, "x");
  const Row c = Row::OfIntAndString(2, "x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);
}

TEST(RowTest, LexicographicCompare) {
  EXPECT_LT(Row({Value(int64_t{1}), Value(int64_t{9})}),
            Row({Value(int64_t{2}), Value(int64_t{0})}));
  EXPECT_LT(Row({Value(int64_t{1})}),
            Row({Value(int64_t{1}), Value(int64_t{0})}));  // prefix shorter
  EXPECT_EQ(Row().Compare(Row()), 0);
}

TEST(RowTest, WithFieldReplacesAndRehashes) {
  const Row a = Row::OfIntAndString(1, "x");
  const Row b = a.WithField(0, Value(int64_t{5}));
  EXPECT_EQ(b.field(0).AsInt64(), 5);
  EXPECT_EQ(b.field(1).AsString(), "x");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.field(0).AsInt64(), 1);  // original untouched
}

TEST(RowTest, DeepSizeGrowsWithPayload) {
  const Row small = Row::OfInt(1);
  const Row big = Row::OfIntAndString(1, std::string(1000, 'p'));
  EXPECT_GE(big.DeepSizeBytes(), small.DeepSizeBytes() + 1000);
}

TEST(RowTest, ToString) {
  EXPECT_EQ(Row::OfIntAndString(3, "a").ToString(), "(3, \"a\")");
  EXPECT_EQ(Row().ToString(), "()");
}

TEST(RowTest, RowHashFunctor) {
  const Row a = Row::OfInt(11);
  EXPECT_EQ(RowHash()(a), a.hash());
}

}  // namespace
}  // namespace lmerge
