#include "workload/generator.h"

#include <gtest/gtest.h>

#include "stream/validate.h"
#include "temporal/tdb.h"
#include "workload/subquery.h"

namespace lmerge::workload {
namespace {

GeneratorConfig SmallConfig(uint64_t seed) {
  GeneratorConfig config;
  config.num_inserts = 400;
  config.stable_freq = 0.05;
  config.event_duration = 500;
  config.duration_jitter = 200;
  config.max_gap = 20;
  config.key_range = 50;
  config.payload_string_bytes = 16;
  config.seed = seed;
  return config;
}

TEST(GeneratorTest, HistoryShape) {
  const LogicalHistory history = GenerateHistory(SmallConfig(1));
  EXPECT_EQ(history.events.size(), 400u);
  EXPECT_GT(history.stable_times.size(), 5u);
  // Events ordered by Vs, strictly increasing (unique timestamps).
  for (size_t i = 1; i < history.events.size(); ++i) {
    EXPECT_GT(history.events[i].vs, history.events[i - 1].vs);
    EXPECT_GT(history.events[i].ve, history.events[i].vs);
  }
  // Stables ascending.
  for (size_t i = 1; i < history.stable_times.size(); ++i) {
    EXPECT_GT(history.stable_times[i], history.stable_times[i - 1]);
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  const LogicalHistory a = GenerateHistory(SmallConfig(7));
  const LogicalHistory b = GenerateHistory(SmallConfig(7));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]);
  }
}

TEST(GeneratorTest, PayloadShapeMatchesPaper) {
  const LogicalHistory history = GenerateHistory(SmallConfig(2));
  for (const Event& e : history.events) {
    ASSERT_EQ(e.payload.field_count(), 2);
    const int64_t key = e.payload.field(0).AsInt64();
    EXPECT_GE(key, 0);
    EXPECT_LE(key, 50);
    EXPECT_EQ(e.payload.field(1).AsString().size(), 16u);
  }
}

TEST(GeneratorTest, InOrderRenderingIsValidOrderedStream) {
  const LogicalHistory history = GenerateHistory(SmallConfig(3));
  const ElementSequence stream = RenderInOrder(history);
  StreamProperties props;
  props.insert_only = true;
  props.ordered = true;
  props.strictly_increasing = true;
  props.vs_payload_key = true;
  StreamValidator validator(props.Normalized());
  EXPECT_TRUE(validator.ConsumeAll(stream).ok());
}

TEST(GeneratorTest, VariantsAreValidStreams) {
  const LogicalHistory history = GenerateHistory(SmallConfig(4));
  for (uint64_t v = 0; v < 4; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.3;
    options.split_probability = 0.4;
    options.provisional_open = (v % 2 == 1);
    options.seed = 100 + v;
    const ElementSequence variant =
        GeneratePhysicalVariant(history, options);
    StreamValidator validator;
    const Status status = validator.ConsumeAll(variant);
    EXPECT_TRUE(status.ok()) << "variant " << v << ": " << status.ToString();
  }
}

TEST(GeneratorTest, VariantsAreLogicallyEquivalent) {
  const LogicalHistory history = GenerateHistory(SmallConfig(5));
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));
  for (uint64_t v = 0; v < 4; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.2 + 0.1 * static_cast<double>(v);
    options.split_probability = 0.25 * static_cast<double>(v);
    options.seed = 200 + v;
    const ElementSequence variant =
        GeneratePhysicalVariant(history, options);
    EXPECT_TRUE(Tdb::Reconstitute(variant).Equals(reference))
        << "variant " << v;
  }
}

TEST(GeneratorTest, VariantsArePhysicallyDifferent) {
  const LogicalHistory history = GenerateHistory(SmallConfig(6));
  VariantOptions a;
  a.seed = 1;
  a.disorder_fraction = 0.4;
  VariantOptions b = a;
  b.seed = 2;
  EXPECT_NE(GeneratePhysicalVariant(history, a),
            GeneratePhysicalVariant(history, b));
}

TEST(GeneratorTest, DisorderFractionControlsDisorder) {
  const LogicalHistory history = GenerateHistory(SmallConfig(8));
  auto count_regressions = [](const ElementSequence& stream) {
    int64_t regressions = 0;
    Timestamp max_vs = kMinTimestamp;
    for (const StreamElement& e : stream) {
      if (!e.is_insert()) continue;
      if (e.vs() < max_vs) ++regressions;
      max_vs = std::max(max_vs, e.vs());
    }
    return regressions;
  };
  VariantOptions ordered;
  ordered.disorder_fraction = 0.0;
  ordered.split_probability = 0.0;
  ordered.seed = 1;
  VariantOptions messy = ordered;
  messy.disorder_fraction = 0.5;
  EXPECT_EQ(count_regressions(GeneratePhysicalVariant(history, ordered)), 0);
  EXPECT_GT(count_regressions(GeneratePhysicalVariant(history, messy)), 50);
}

TEST(GeneratorTest, StableThinningKeepsSubset) {
  const LogicalHistory history = GenerateHistory(SmallConfig(9));
  VariantOptions all;
  all.stable_thinning = 1;
  all.seed = 3;
  VariantOptions thinned = all;
  thinned.stable_thinning = 3;
  auto count_stables = [](const ElementSequence& s) {
    int64_t n = 0;
    for (const auto& e : s) n += e.is_stable() ? 1 : 0;
    return n;
  };
  const int64_t full = count_stables(GeneratePhysicalVariant(history, all));
  const int64_t thin =
      count_stables(GeneratePhysicalVariant(history, thinned));
  EXPECT_LT(thin, full);
  EXPECT_GT(thin, 0);
}

TEST(GeneratorTest, OpenLifetimesProduceAdjusts) {
  GeneratorConfig config = SmallConfig(10);
  config.open_lifetimes = true;
  const ElementSequence stream = GenerateStream(config);
  EXPECT_GT(AdjustFraction(stream), 0.3);
  StreamValidator validator;
  EXPECT_TRUE(validator.ConsumeAll(stream).ok());
}

TEST(SubqueryTest, AggregateFragmentProducesAdjustTraffic) {
  // Sec. VI-D: ~36% adjusts from a 50% disordered stream through an
  // aggressive aggregate.  Verify the fragment produces substantial adjust
  // traffic and a valid stream.
  GeneratorConfig config = SmallConfig(11);
  config.disorder_fraction = 0.5;
  config.max_disorder_elements = 120;
  config.key_range = 10;  // several events per (window, group) slot
  const ElementSequence raw = GenerateStream(config);
  const ElementSequence out =
      MakeAdjustHeavyStream(raw, /*window_size=*/600, /*max_lifetime=*/5000);
  EXPECT_GT(out.size(), 100u);
  EXPECT_GT(AdjustFraction(out), 0.2);
  StreamValidator validator;
  const Status status = validator.ConsumeAll(out);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(SubqueryTest, RunThroughCollectsTailOutput) {
  GeneratorConfig config = SmallConfig(12);
  const ElementSequence raw = GenerateStream(config);
  // Identity check via a single pass-through operator chain is covered by
  // MakeAdjustHeavyStream; here just validate AdjustFraction arithmetic.
  EXPECT_DOUBLE_EQ(AdjustFraction({}), 0.0);
  EXPECT_DOUBLE_EQ(
      AdjustFraction({StreamElement::Adjust(Row::OfInt(1), 1, 5, 6),
                      StreamElement::Stable(2)}),
      0.5);
}

}  // namespace
}  // namespace lmerge::workload
