#include "workload/ticker.h"

#include <gtest/gtest.h>

#include "core/factory.h"
#include "stream/sink.h"
#include "stream/validate.h"
#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge::workload {
namespace {

TickerConfig SmallTicker(uint64_t seed) {
  TickerConfig config;
  config.num_symbols = 4;
  config.quotes_per_symbol = 50;
  config.max_gap = 100;
  config.stable_freq = 0.05;
  config.seed = seed;
  return config;
}

TEST(TickerTest, HistoryShape) {
  const LogicalHistory history = GenerateTickerHistory(SmallTicker(1));
  EXPECT_EQ(history.events.size(), 200u);
  // Per symbol: lifetimes tile the timeline without overlap, final open.
  for (int64_t s = 0; s < 4; ++s) {
    const std::string symbol = TickerSymbol(s);
    std::vector<const Event*> quotes;
    for (const Event& e : history.events) {
      if (e.payload.field(0).AsString() == symbol) quotes.push_back(&e);
    }
    ASSERT_EQ(quotes.size(), 50u);
    for (size_t i = 0; i + 1 < quotes.size(); ++i) {
      EXPECT_EQ(quotes[i]->ve, quotes[i + 1]->vs)
          << symbol << " quote " << i;
    }
    EXPECT_EQ(quotes.back()->ve, kInfinity);
  }
}

TEST(TickerTest, PricesPositiveAndBounded) {
  const TickerConfig config = SmallTicker(2);
  const LogicalHistory history = GenerateTickerHistory(config);
  for (const Event& e : history.events) {
    const int64_t price = e.payload.field(1).AsInt64();
    EXPECT_GE(price, 1);
    EXPECT_LE(price, config.start_price_cents +
                         config.max_move_cents *
                             static_cast<int64_t>(history.events.size()));
  }
}

TEST(TickerTest, DivergentFeedsAreValidAndEquivalent) {
  const LogicalHistory history = GenerateTickerHistory(SmallTicker(3));
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));
  for (uint64_t v = 0; v < 3; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.2;
    options.split_probability = 0.8;
    options.provisional_open = true;  // the natural ticker presentation
    options.seed = 30 + v;
    const ElementSequence feed = GeneratePhysicalVariant(history, options);
    StreamValidator validator;
    const Status status = validator.ConsumeAll(feed);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_TRUE(Tdb::Reconstitute(feed).Equals(reference)) << "feed " << v;
  }
}

TEST(TickerTest, TwoExchangeFeedsMergeToOneConsolidatedTape) {
  LogicalHistory history = GenerateTickerHistory(SmallTicker(4));
  // Market close: end every open quote at a common close time and stabilize
  // past it, so the consolidated tape converges exactly (quotes left open
  // would stay half frozen with provisional ends — compatible but not yet
  // equal).
  Timestamp close = 0;
  for (const Event& e : history.events) {
    if (e.ve != kInfinity) close = std::max(close, e.ve);
  }
  close += 100;
  for (Event& e : history.events) {
    if (e.ve == kInfinity) e.ve = close;
  }
  history.stable_times.push_back(close + 1);
  std::vector<ElementSequence> feeds;
  for (uint64_t v = 0; v < 2; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.25;
    options.split_probability = 0.7;
    options.provisional_open = true;
    options.seed = 90 + v;
    feeds.push_back(GeneratePhysicalVariant(history, options));
  }
  CollectingSink merged;
  auto lmerge = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 2, &merged);
  testing_util::InterleaveInto(lmerge.get(), feeds, 17);
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(RenderInOrder(history))));
}

TEST(TickerTest, DeterministicInSeed) {
  const LogicalHistory a = GenerateTickerHistory(SmallTicker(5));
  const LogicalHistory b = GenerateTickerHistory(SmallTicker(5));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]);
  }
}

TEST(TickerTest, SymbolNames) {
  EXPECT_EQ(TickerSymbol(0), "SYM0");
  EXPECT_EQ(TickerSymbol(12), "SYM12");
}

}  // namespace
}  // namespace lmerge::workload
