// Framing robustness: partial feeds, batched feeds, oversize and unknown
// headers — complete frames come out intact, malformed streams poison the
// assembler with a Status error, never a crash.

#include "net/frame.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace lmerge::net {
namespace {

TEST(FrameTest, RoundTripSingleFrame) {
  const std::string encoded = EncodeFrame(FrameType::kElement, "payload!");
  EXPECT_EQ(encoded.size(), kFrameHeaderBytes + 8);
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.Feed(encoded).ok());
  Frame frame;
  ASSERT_TRUE(assembler.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kElement);
  EXPECT_EQ(frame.payload, "payload!");
  EXPECT_FALSE(assembler.Next(&frame));
  EXPECT_EQ(assembler.pending_bytes(), 0u);
}

TEST(FrameTest, EmptyPayloadFrame) {
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.Feed(EncodeFrame(FrameType::kBye, "")).ok());
  Frame frame;
  ASSERT_TRUE(assembler.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kBye);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, ByteAtATimeDelivery) {
  std::string wire;
  AppendFrame(FrameType::kHello, "hello-payload", &wire);
  AppendFrame(FrameType::kFeedback, "fb", &wire);
  FrameAssembler assembler;
  std::vector<Frame> frames;
  for (const char c : wire) {
    ASSERT_TRUE(assembler.Feed(&c, 1).ok());
    Frame frame;
    while (assembler.Next(&frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[0].payload, "hello-payload");
  EXPECT_EQ(frames[1].type, FrameType::kFeedback);
  EXPECT_EQ(frames[1].payload, "fb");
}

TEST(FrameTest, ManyFramesInOneChunk) {
  std::string wire;
  for (int i = 0; i < 100; ++i) {
    AppendFrame(FrameType::kElement, std::string(static_cast<size_t>(i), 'x'),
                &wire);
  }
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.Feed(wire).ok());
  Frame frame;
  int count = 0;
  while (assembler.Next(&frame)) {
    EXPECT_EQ(frame.payload.size(), static_cast<size_t>(count));
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(FrameTest, OversizeLengthPrefixRejectedEagerly) {
  // 0xffffffff length: a hostile prefix must fail at Feed time, not leave
  // the reader waiting for 4 GiB.
  const std::string bytes = "\xff\xff\xff\xff\x03";
  FrameAssembler assembler;
  const Status status = assembler.Feed(bytes);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(assembler.poisoned());
  Frame frame;
  EXPECT_FALSE(assembler.Next(&frame));
}

TEST(FrameTest, ConfigurableLimitEnforced) {
  FrameAssembler assembler(/*max_payload=*/16);
  EXPECT_TRUE(
      assembler.Feed(EncodeFrame(FrameType::kElement, std::string(16, 'a')))
          .ok());
  Frame frame;
  EXPECT_TRUE(assembler.Next(&frame));
  EXPECT_FALSE(
      assembler.Feed(EncodeFrame(FrameType::kElement, std::string(17, 'a')))
          .ok());
}

TEST(FrameTest, UnknownFrameTypeRejected) {
  FrameAssembler assembler;
  const std::string bytes = std::string("\x00\x00\x00\x00", 4) + "\x63";
  EXPECT_FALSE(assembler.Feed(bytes).ok());
  EXPECT_TRUE(assembler.poisoned());
}

TEST(FrameTest, GarbageAfterValidFramePoisonsOnConsumption) {
  std::string wire = EncodeFrame(FrameType::kBye, "ok");
  wire += std::string("\xff\xff\xff\x7f\x01", 5);  // oversize second header
  FrameAssembler assembler;
  // The bad header is not at the front yet, so the feed may succeed...
  (void)assembler.Feed(wire);
  Frame frame;
  // ...but consuming the good frame must expose the poison.
  if (assembler.Next(&frame)) {
    EXPECT_EQ(frame.payload, "ok");
    EXPECT_TRUE(assembler.poisoned());
    EXPECT_FALSE(assembler.Next(&frame));
  } else {
    EXPECT_TRUE(assembler.poisoned());
  }
}

TEST(FrameTest, PoisonedAssemblerRefusesFurtherFeeds) {
  FrameAssembler assembler;
  ASSERT_FALSE(assembler.Feed("\xff\xff\xff\xff\x03").ok());
  EXPECT_FALSE(assembler.Feed(EncodeFrame(FrameType::kBye, "")).ok());
}

TEST(FrameTest, RandomGarbageNeverCrashes) {
  Rng rng(2012);
  for (int round = 0; round < 200; ++round) {
    FrameAssembler assembler;
    std::string bytes;
    const int64_t len = rng.UniformInt(0, 256);
    for (int64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    if (!assembler.Feed(bytes).ok()) continue;
    Frame frame;
    while (assembler.Next(&frame)) {
      // Frames that happen to parse must be well-formed.
      EXPECT_TRUE(IsKnownFrameType(static_cast<uint8_t>(frame.type)));
      EXPECT_LE(frame.payload.size(), kMaxFramePayload);
    }
  }
}

}  // namespace
}  // namespace lmerge::net
