// End-to-end latency pipeline over the loopback transport: the v5 origin
// stamp rides publisher frame -> ingest ring -> merge thread -> fan-out,
// feeding every per-stage histogram; the fan-out republishes the stamp to
// v5 subscribers and strips it for v4 ones; the merge responsiveness and
// IO-loop probes behind /readyz answer within their deadlines.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/loopback.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace lmerge::net {
namespace {

using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

struct TestPeer {
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;
  int session_id = -1;
  FrameAssembler assembler;

  std::vector<Frame> DrainFrames() {
    std::string bytes;
    EXPECT_TRUE(client->TryReceive(&bytes).ok());
    EXPECT_TRUE(assembler.Feed(bytes).ok());
    std::vector<Frame> frames;
    Frame frame;
    while (assembler.Next(&frame)) frames.push_back(frame);
    return frames;
  }
};

TestPeer ConnectPeer(MergeServer* server, const std::string& name) {
  TestPeer peer;
  auto [client, server_end] =
      CreateLoopbackPair("client:" + name, "server:" + name);
  peer.client = std::move(client);
  peer.server = std::move(server_end);
  peer.session_id = server->OnConnect(peer.server.get());
  return peer;
}

WelcomeMessage Handshake(MergeServer* server, TestPeer* peer,
                         PeerRole role, const std::string& name,
                         uint32_t version = kProtocolVersion) {
  HelloMessage hello;
  hello.version = version;
  hello.role = role;
  hello.peer_name = name;
  EXPECT_TRUE(
      server->OnBytes(peer->session_id, EncodeHelloFrame(hello)).ok());
  const std::vector<Frame> frames = peer->DrainFrames();
  EXPECT_EQ(frames.size(), 1u);
  WelcomeMessage welcome;
  EXPECT_EQ(frames[0].type, FrameType::kWelcome);
  EXPECT_TRUE(DecodeWelcome(frames[0].payload, &welcome).ok());
  return welcome;
}

int64_t HistogramCount(const obs::MetricsSnapshot& snapshot,
                       const std::string& name) {
  const obs::MetricValue* value = snapshot.Find(name);
  return value == nullptr ? 0 : value->histogram.count;
}

// The latency instruments live in the global registry (they are recorded
// on merge/fan-out threads owned by the server); tests read deltas against
// a baseline so they compose with the rest of the binary.
class LatencyPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::MetricsRegistry::set_enabled(true); }
  void TearDown() override { obs::MetricsRegistry::set_enabled(false); }
};

TEST_F(LatencyPipelineTest, StampFoldsTowardOldestAndZeroNeverWins) {
  obs::IngestStamp stamp;
  EXPECT_TRUE(stamp.empty());
  stamp.FoldOldest({.origin_us = 0, .rx_us = 0});
  EXPECT_TRUE(stamp.empty()) << "unknown must not overwrite unknown";
  stamp.FoldOldest({.origin_us = 500, .rx_us = 900});
  stamp.FoldOldest({.origin_us = 700, .rx_us = 400});
  EXPECT_EQ(stamp.origin_us, 500) << "newer origin must not win";
  EXPECT_EQ(stamp.rx_us, 400);
  stamp.FoldOldest({.origin_us = 0, .rx_us = 0});
  EXPECT_EQ(stamp.origin_us, 500) << "unknown must not erase a known stamp";
  EXPECT_EQ(stamp.rx_us, 400);
}

TEST_F(LatencyPipelineTest, ThreadLocalStampIsPerThread) {
  const obs::IngestStamp mine{.origin_us = 11, .rx_us = 22};
  obs::SetCurrentIngestStamp(mine);
  EXPECT_EQ(obs::CurrentIngestStamp(), mine);
  std::thread other([] {
    EXPECT_TRUE(obs::CurrentIngestStamp().empty())
        << "another thread's stamp leaked across threads";
    obs::SetCurrentIngestStamp({.origin_us = 33, .rx_us = 44});
  });
  other.join();
  EXPECT_EQ(obs::CurrentIngestStamp(), mine);
  obs::SetCurrentIngestStamp(obs::IngestStamp());
}

TEST_F(LatencyPipelineTest, StampedPublishFeedsEveryStageHistogram) {
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();

  MergeServer server;
  TestPeer sub = ConnectPeer(&server, "sub");
  Handshake(&server, &sub, PeerRole::kSubscriber, "sub");
  TestPeer pub = ConnectPeer(&server, "pub");
  Handshake(&server, &pub, PeerRole::kPublisher, "pub");

  constexpr int kBatches = 4;
  constexpr int kBatchSize = 32;
  for (int b = 0; b < kBatches; ++b) {
    ElementSequence batch;
    for (int i = 0; i < kBatchSize; ++i) {
      const int64_t vs = b * kBatchSize + i + 1;
      batch.push_back(Ins("pay-" + std::to_string(vs), vs, vs + 1000));
    }
    batch.push_back(Stb(b * kBatchSize + kBatchSize / 2));
    ASSERT_TRUE(server
                    .OnBytes(pub.session_id,
                             EncodeElementsFrame(
                                 batch, obs::MonotonicMicros()))
                    .ok());
  }
  server.Flush();

  const obs::MetricsSnapshot after = server.MetricsSnapshot();
  for (const char* stage :
       {"latency.rx_to_merge_us", "latency.merge_us",
        "latency.merge_to_fanout_us", "latency.fanout_us",
        "latency.publish_to_fanout_us"}) {
    EXPECT_GT(HistogramCount(after, stage), HistogramCount(before, stage))
        << stage << " recorded nothing for stamped traffic";
  }
  // The stable-lag gauge exists and is sane once a merger is live.
  EXPECT_GE(after.Value("merge.stable_lag_ms", -1), 0);

  // The origin stamp is republished on the v5 fan-out frames.
  PayloadDictDecoder dict;
  int64_t delivered = 0;
  int64_t oldest_origin = 0;
  for (const Frame& frame : sub.DrainFrames()) {
    switch (frame.type) {
      case FrameType::kPayloadDef: {
        PayloadDefMessage def;
        ASSERT_TRUE(DecodePayloadDefPayload(frame.payload, &def).ok());
        ASSERT_TRUE(dict.Define(def.id, std::move(def.payload)).ok());
        break;
      }
      case FrameType::kElementsDict: {
        ElementSequence elements;
        int64_t origin_us = 0;
        ASSERT_TRUE(DecodeElementsDictPayload(frame.payload, dict,
                                              &elements, &origin_us)
                        .ok());
        EXPECT_GT(origin_us, 0)
            << "v5 fan-out lost the publisher's origin stamp";
        if (oldest_origin == 0 || origin_us < oldest_origin) {
          oldest_origin = origin_us;
        }
        delivered += static_cast<int64_t>(elements.size());
        break;
      }
      case FrameType::kElement:
      case FrameType::kElements:
        FAIL() << "v5 subscriber should receive dictionary batches";
      default:
        break;
    }
  }
  EXPECT_GT(delivered, 0);
  EXPECT_LE(oldest_origin, obs::MonotonicMicros());
}

TEST_F(LatencyPipelineTest, V4SubscriberGetsUnstampedFrames) {
  MergeServer server;
  TestPeer sub_v4 = ConnectPeer(&server, "sub4");
  const WelcomeMessage welcome =
      Handshake(&server, &sub_v4, PeerRole::kSubscriber, "sub4",
                /*version=*/4);
  EXPECT_EQ(welcome.version, 4u);
  TestPeer sub_v5 = ConnectPeer(&server, "sub5");
  Handshake(&server, &sub_v5, PeerRole::kSubscriber, "sub5");
  TestPeer pub = ConnectPeer(&server, "pub");
  Handshake(&server, &pub, PeerRole::kPublisher, "pub");

  ElementSequence batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(Ins("v4-interop-" + std::to_string(i), i + 1, i + 50));
  }
  ASSERT_TRUE(
      server
          .OnBytes(pub.session_id,
                   EncodeElementsFrame(batch, obs::MonotonicMicros()))
          .ok());
  server.Flush();

  // The v4 session's dict batches must decode with the *unstamped* decoder
  // — the stamp is negotiated away, not silently appended.
  PayloadDictDecoder dict_v4;
  int64_t v4_elements = 0;
  for (const Frame& frame : sub_v4.DrainFrames()) {
    if (frame.type == FrameType::kPayloadDef) {
      PayloadDefMessage def;
      ASSERT_TRUE(DecodePayloadDefPayload(frame.payload, &def).ok());
      ASSERT_TRUE(dict_v4.Define(def.id, std::move(def.payload)).ok());
    } else if (frame.type == FrameType::kElementsDict) {
      ElementSequence elements;
      ASSERT_TRUE(
          DecodeElementsDictPayload(frame.payload, dict_v4, &elements)
              .ok());
      v4_elements += static_cast<int64_t>(elements.size());
    }
  }

  PayloadDictDecoder dict_v5;
  int64_t v5_elements = 0;
  for (const Frame& frame : sub_v5.DrainFrames()) {
    if (frame.type == FrameType::kPayloadDef) {
      PayloadDefMessage def;
      ASSERT_TRUE(DecodePayloadDefPayload(frame.payload, &def).ok());
      ASSERT_TRUE(dict_v5.Define(def.id, std::move(def.payload)).ok());
    } else if (frame.type == FrameType::kElementsDict) {
      ElementSequence elements;
      int64_t origin_us = 0;
      ASSERT_TRUE(DecodeElementsDictPayload(frame.payload, dict_v5,
                                            &elements, &origin_us)
                      .ok());
      EXPECT_GT(origin_us, 0);
      v5_elements += static_cast<int64_t>(elements.size());
    }
  }
  EXPECT_GT(v4_elements, 0);
  EXPECT_EQ(v4_elements, v5_elements)
      << "both generations must see the same merged stream";
}

TEST_F(LatencyPipelineTest, ReadyProbesBothEngines) {
  // No merger yet: trivially ready.
  MergeServer idle;
  EXPECT_TRUE(idle.Ready(std::chrono::milliseconds(100)));

  // Single-threaded engine.
  {
    MergeServer server;
    TestPeer pub = ConnectPeer(&server, "pub");
    Handshake(&server, &pub, PeerRole::kPublisher, "pub");
    EXPECT_TRUE(server.Ready(std::chrono::milliseconds(1000)));
  }

  // Partitioned engine: the probe pings every shard and the aggregator.
  {
    MergeServerOptions options;
    options.variant = MergeVariant::kLMR4;
    options.merge_threads = 3;
    MergeServer server(options);
    TestPeer pub = ConnectPeer(&server, "pub");
    Handshake(&server, &pub, PeerRole::kPublisher, "pub");
    EXPECT_TRUE(server.Ready(std::chrono::milliseconds(1000)));
  }
}

TEST_F(LatencyPipelineTest, LoopPingRegistryDetectsWedgedLoops) {
  LoopPingRegistry pings;
  EXPECT_TRUE(pings.Ping(std::chrono::milliseconds(50)))
      << "no registered loops means nothing can be wedged";

  EventLoop running;
  std::thread runner([&running] { running.Run(); });
  pings.Set({&running});
  EXPECT_TRUE(pings.Ping(std::chrono::milliseconds(1000)));

  // A loop nobody runs never services its queue: the probe must time out
  // unready instead of hanging.
  EventLoop wedged;
  pings.Set({&running, &wedged});
  EXPECT_FALSE(pings.Ping(std::chrono::milliseconds(50)));

  pings.Clear();
  EXPECT_TRUE(pings.Ping(std::chrono::milliseconds(50)));
  running.Stop();
  runner.join();
}

}  // namespace
}  // namespace lmerge::net
