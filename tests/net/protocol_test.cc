// Wire-protocol messages: every frame type round-trips; truncated and
// mutated payloads fail with a Status error, never a crash (the style of
// tests/common/serde_fuzz_test.cc applied to the network layer).

#include "net/protocol.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace lmerge::net {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

// Strips the frame header, returning the payload for the Decode* helpers.
std::string PayloadOf(const std::string& frame_bytes) {
  FrameAssembler assembler;
  EXPECT_TRUE(assembler.Feed(frame_bytes).ok());
  Frame frame;
  EXPECT_TRUE(assembler.Next(&frame));
  return frame.payload;
}

TEST(ProtocolTest, PropertiesBitsRoundTrip) {
  const StreamProperties cases[] = {
      StreamProperties::None(), StreamProperties::Strongest(),
      [] {
        StreamProperties p;
        p.insert_only = true;
        p.ordered = true;
        return p.Normalized();
      }(),
  };
  for (const StreamProperties& p : cases) {
    EXPECT_TRUE(PropertiesFromBits(PropertiesToBits(p)).Equals(p))
        << p.ToString();
  }
}

TEST(ProtocolTest, HelloRoundTrip) {
  HelloMessage hello;
  hello.role = PeerRole::kPublisher;
  hello.properties = StreamProperties::Strongest();
  hello.join_time = 12345;
  hello.peer_name = "replica-a";
  HelloMessage decoded;
  ASSERT_TRUE(
      DecodeHello(PayloadOf(EncodeHelloFrame(hello)), &decoded).ok());
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.role, PeerRole::kPublisher);
  EXPECT_TRUE(decoded.properties.Equals(hello.properties));
  EXPECT_EQ(decoded.join_time, 12345);
  EXPECT_EQ(decoded.peer_name, "replica-a");
}

TEST(ProtocolTest, WelcomeRoundTrip) {
  WelcomeMessage welcome;
  welcome.stream_id = 7;
  welcome.algorithm_case = 3;
  welcome.output_stable = -42;
  WelcomeMessage decoded;
  ASSERT_TRUE(
      DecodeWelcome(PayloadOf(EncodeWelcomeFrame(welcome)), &decoded).ok());
  EXPECT_EQ(decoded.stream_id, 7);
  EXPECT_EQ(decoded.algorithm_case, 3);
  EXPECT_EQ(decoded.output_stable, -42);
}

TEST(ProtocolTest, SubscriberWelcomeCarriesMinusOne) {
  WelcomeMessage welcome;
  welcome.stream_id = -1;
  WelcomeMessage decoded;
  ASSERT_TRUE(
      DecodeWelcome(PayloadOf(EncodeWelcomeFrame(welcome)), &decoded).ok());
  EXPECT_EQ(decoded.stream_id, -1);
}

TEST(ProtocolTest, ElementFramesRoundTrip) {
  const StreamElement cases[] = {
      Ins("payload", 10, 500),
      Adj("payload", 10, 500, 700),
      StreamElement::Insert(Row::OfIntAndString(9, "x"), 3, kInfinity),
      Stb(30),
  };
  for (const StreamElement& element : cases) {
    StreamElement decoded;
    ASSERT_TRUE(DecodeElementPayload(PayloadOf(EncodeElementFrame(element)),
                                     &decoded)
                    .ok());
    EXPECT_EQ(decoded, element);
  }
}

TEST(ProtocolTest, ElementsBatchRoundTrip) {
  const ElementSequence batch = {Ins("a", 1, 5), Ins("b", 2, 6),
                                 Adj("a", 1, 5, 9), Stb(3)};
  ElementSequence decoded;
  ASSERT_TRUE(
      DecodeElementsPayload(PayloadOf(EncodeElementsFrame(batch)), &decoded)
          .ok());
  EXPECT_EQ(decoded, batch);
}

TEST(ProtocolTest, FeedbackAndByeRoundTrip) {
  FeedbackMessage feedback;
  feedback.horizon = 777;
  FeedbackMessage feedback_decoded;
  ASSERT_TRUE(DecodeFeedback(PayloadOf(EncodeFeedbackFrame(feedback)),
                             &feedback_decoded)
                  .ok());
  EXPECT_EQ(feedback_decoded.horizon, 777);

  ByeMessage bye;
  bye.reason = "tape complete";
  ByeMessage bye_decoded;
  ASSERT_TRUE(DecodeBye(PayloadOf(EncodeByeFrame(bye)), &bye_decoded).ok());
  EXPECT_EQ(bye_decoded.reason, "tape complete");
}

TEST(ProtocolTest, TrailingBytesRejectedOnEveryMessage) {
  HelloMessage hello;
  EXPECT_FALSE(
      DecodeHello(PayloadOf(EncodeHelloFrame(hello)) + "x", &hello).ok());
  WelcomeMessage welcome;
  EXPECT_FALSE(
      DecodeWelcome(PayloadOf(EncodeWelcomeFrame(welcome)) + "x", &welcome)
          .ok());
  StreamElement element;
  EXPECT_FALSE(
      DecodeElementPayload(PayloadOf(EncodeElementFrame(Stb(1))) + "x",
                           &element)
          .ok());
  FeedbackMessage feedback;
  EXPECT_FALSE(
      DecodeFeedback(PayloadOf(EncodeFeedbackFrame(feedback)) + "x",
                     &feedback)
          .ok());
  ByeMessage bye;
  EXPECT_FALSE(DecodeBye(PayloadOf(EncodeByeFrame(bye)) + "x", &bye).ok());
}

TEST(ProtocolTest, BadRoleRejected) {
  HelloMessage hello;
  std::string payload = PayloadOf(EncodeHelloFrame(hello));
  payload[4] = '\x07';  // role byte (after u32 version)
  EXPECT_FALSE(DecodeHello(payload, &hello).ok());
}

// Every strict prefix of a valid payload must fail cleanly.
TEST(ProtocolTest, TruncationsFailCleanly) {
  HelloMessage hello;
  hello.peer_name = "truncation-victim";
  const std::string payloads[] = {
      PayloadOf(EncodeHelloFrame(hello)),
      PayloadOf(EncodeWelcomeFrame(WelcomeMessage())),
      PayloadOf(EncodeElementFrame(Ins("abc", 1, 99))),
      PayloadOf(EncodeElementsFrame({Ins("a", 1, 5), Stb(2)})),
      PayloadOf(EncodeFeedbackFrame(FeedbackMessage())),
      PayloadOf(EncodeByeFrame(ByeMessage{"reason"})),
  };
  for (const std::string& payload : payloads) {
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      const std::string prefix = payload.substr(0, cut);
      HelloMessage h;
      WelcomeMessage w;
      StreamElement e;
      ElementSequence es;
      FeedbackMessage f;
      ByeMessage b;
      (void)DecodeHello(prefix, &h);
      (void)DecodeWelcome(prefix, &w);
      (void)DecodeElementPayload(prefix, &e);
      (void)DecodeElementsPayload(prefix, &es);
      (void)DecodeFeedback(prefix, &f);
      (void)DecodeBye(prefix, &b);
    }
  }
}

TEST(ProtocolTest, PayloadDefFrameRoundTrip) {
  PayloadDefMessage def;
  def.id = 42;
  def.payload = Row::OfIntAndString(7, "defined-once");
  PayloadDefMessage decoded;
  ASSERT_TRUE(
      DecodePayloadDefPayload(PayloadOf(EncodePayloadDefFrame(def)), &decoded)
          .ok());
  EXPECT_EQ(decoded.id, 42u);
  EXPECT_EQ(decoded.payload, def.payload);
  // Trailing bytes rejected, like every other message.
  EXPECT_FALSE(DecodePayloadDefPayload(
                   PayloadOf(EncodePayloadDefFrame(def)) + "x", &decoded)
                   .ok());
}

// The dictionary path must be byte-equivalent to the inline path after one
// full encode -> frame -> assemble -> decode cycle, including the defs the
// encoder emits ahead of the first referencing batch.
TEST(ProtocolTest, ElementsDictFrameRoundTripMatchesInline) {
  const ElementSequence batch1 = {Ins("hot", 1, 10), Ins("cold", 2, 20),
                                  Adj("hot", 1, 10, 30), Stb(3)};
  const ElementSequence batch2 = {Ins("hot", 4, 40), Ins("hot", 5, 50)};

  PayloadDictEncoder encoder;
  PayloadDictDecoder decoder_dict;
  FrameAssembler assembler;
  ElementSequence got;
  int def_frames = 0;
  int dict_frames = 0;
  for (const ElementSequence* batch : {&batch1, &batch2}) {
    ASSERT_TRUE(
        assembler.Feed(EncodeElementsDictFrame(*batch, &encoder)).ok());
    Frame frame;
    while (assembler.Next(&frame)) {
      if (frame.type == FrameType::kPayloadDef) {
        ++def_frames;
        PayloadDefMessage def;
        ASSERT_TRUE(DecodePayloadDefPayload(frame.payload, &def).ok());
        ASSERT_TRUE(decoder_dict.Define(def.id, def.payload).ok());
      } else {
        ASSERT_EQ(frame.type, FrameType::kElementsDict);
        ++dict_frames;
        ElementSequence decoded;
        ASSERT_TRUE(
            DecodeElementsDictPayload(frame.payload, decoder_dict, &decoded)
                .ok());
        got.insert(got.end(), decoded.begin(), decoded.end());
      }
    }
  }
  // Two distinct payloads -> two defs, emitted exactly once despite "hot"
  // recurring in both batches; one ELEMENTS_DICT frame per Send.
  EXPECT_EQ(def_frames, 2);
  EXPECT_EQ(dict_frames, 2);
  ElementSequence expected = batch1;
  expected.insert(expected.end(), batch2.begin(), batch2.end());
  EXPECT_EQ(got, expected);
  // Interned payloads mean the decoded handles share reps with the
  // originals — the whole point of the end-to-end refactor.
  EXPECT_EQ(got[0].payload().identity(), batch1[0].payload().identity());
}

TEST(ProtocolTest, ElementsDictPayloadWithUnknownIdFails) {
  // Encode against one dictionary, decode against an empty one: the ids in
  // the body are undefined on the receiving side.
  PayloadDictEncoder encoder;
  const ElementSequence batch = {Ins("known-only-to-sender", 1, 10),
                                 Ins("known-only-to-sender", 2, 20)};
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.Feed(EncodeElementsDictFrame(batch, &encoder)).ok());
  Frame frame;
  std::string dict_payload;
  while (assembler.Next(&frame)) {
    if (frame.type == FrameType::kElementsDict) dict_payload = frame.payload;
  }
  ASSERT_FALSE(dict_payload.empty());
  const PayloadDictDecoder empty_dict;
  ElementSequence decoded;
  const Status status =
      DecodeElementsDictPayload(dict_payload, empty_dict, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("undefined payload id"),
            std::string::npos);
}

TEST(ProtocolTest, VersionNegotiationBounds) {
  // The wire preserves whatever version the sender claims — negotiation is
  // the server's min() against its own version, so decode must not clamp.
  HelloMessage hello;
  hello.version = 99;
  HelloMessage decoded;
  ASSERT_TRUE(
      DecodeHello(PayloadOf(EncodeHelloFrame(hello)), &decoded).ok());
  EXPECT_EQ(decoded.version, 99u);
  // A default-constructed HELLO advertises the compiled-in version.
  EXPECT_EQ(HelloMessage().version, kProtocolVersion);
  static_assert(kMinProtocolVersion <= kProtocolVersion);
  static_assert(kPayloadDictVersion <= kProtocolVersion,
                "dictionary frames must be within the advertised version");
}

TEST(ProtocolTest, StatsRequestIsEmptyAndStrict) {
  ASSERT_TRUE(DecodeStatsRequest(PayloadOf(EncodeStatsRequestFrame())).ok());
  EXPECT_FALSE(DecodeStatsRequest("x").ok());
}

StatsResponseMessage SampleStats() {
  StatsResponseMessage stats;
  stats.algorithm_case = 3;
  stats.output_stable = 777;
  stats.output_inserts = 1000;
  stats.output_adjusts = 12;
  stats.publishers = 3;
  stats.subscribers = 2;
  for (int s = 0; s < 3; ++s) {
    StatsInputRow row;
    row.stream_id = s;
    row.peer_name = s == 2 ? "" : "replica-" + std::to_string(s);
    row.connected = s != 2;
    row.active = true;
    row.inserts_in = 400 + s;
    row.adjusts_in = 5 * s;
    row.stables_in = 40;
    row.dropped = s;
    row.contributed = 333 + s;
    row.stable_point = 700 + s;
    stats.inputs.push_back(std::move(row));
  }
  obs::MetricValue metric;
  metric.name = "net.rx.frames";
  metric.kind = obs::InstrumentKind::kCounter;
  metric.value = 9001;
  stats.metrics.entries.push_back(std::move(metric));
  return stats;
}

TEST(ProtocolTest, StatsResponseRoundTrip) {
  const StatsResponseMessage stats = SampleStats();
  StatsResponseMessage decoded;
  ASSERT_TRUE(DecodeStatsResponse(PayloadOf(EncodeStatsResponseFrame(stats)),
                                  &decoded)
                  .ok());
  EXPECT_EQ(decoded.algorithm_case, 3);
  EXPECT_EQ(decoded.output_stable, 777);
  EXPECT_EQ(decoded.output_inserts, 1000);
  EXPECT_EQ(decoded.output_adjusts, 12);
  EXPECT_EQ(decoded.publishers, 3);
  EXPECT_EQ(decoded.subscribers, 2);
  ASSERT_EQ(decoded.inputs.size(), 3u);
  EXPECT_EQ(decoded.inputs[0].peer_name, "replica-0");
  EXPECT_TRUE(decoded.inputs[0].connected);
  EXPECT_FALSE(decoded.inputs[2].connected);
  EXPECT_TRUE(decoded.inputs[2].active);
  EXPECT_EQ(decoded.inputs[1].inserts_in, 401);
  EXPECT_EQ(decoded.inputs[1].contributed, 334);
  EXPECT_EQ(decoded.inputs[2].stable_point, 702);
  EXPECT_EQ(decoded.metrics.Value("net.rx.frames"), 9001);
}

TEST(ProtocolTest, StatsResponseTruncationsFailCleanly) {
  const std::string payload =
      PayloadOf(EncodeStatsResponseFrame(SampleStats()));
  // The v5 payload is a v4 payload plus a 16-byte capture-timestamp
  // trailer; truncating exactly the trailer yields a well-formed v4
  // payload, which MUST keep decoding (that is the interop contract).
  const size_t v4_len = payload.size() - 16;
  for (size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    StatsResponseMessage decoded;
    if (len == v4_len) {
      EXPECT_TRUE(DecodeStatsResponse(prefix, &decoded).ok());
      EXPECT_EQ(decoded.metrics.captured_wall_ms, 0);
      EXPECT_EQ(decoded.metrics.captured_mono_us, 0);
      continue;
    }
    EXPECT_FALSE(DecodeStatsResponse(prefix, &decoded).ok())
        << "truncated to " << len;
  }
}

TEST(ProtocolTest, StatsResponseHostileRowCountRejected) {
  // A count the buffer cannot possibly hold must fail before any
  // allocation, not OOM (same bound style as the serde decoders).
  Encoder encoder;
  encoder.WriteU8(0);
  encoder.WriteI64(0);
  encoder.WriteI64(0);
  encoder.WriteI64(0);
  encoder.WriteU32(0);
  encoder.WriteU32(0);
  encoder.WriteU32(0x7fffffff);  // claimed input rows
  StatsResponseMessage decoded;
  const Status status = DecodeStatsResponse(encoder.bytes(), &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("row count"), std::string::npos);
}

TEST(ProtocolTest, StatsConstantsGateTheFeature) {
  // STATS frames are a v3 feature: a v2-negotiated session must never carry
  // them, which the server enforces against kStatsVersion.
  static_assert(kStatsVersion <= kProtocolVersion);
  static_assert(kPayloadDictVersion < kStatsVersion,
                "dictionary support predates stats");
  EXPECT_STREQ(FrameTypeName(FrameType::kStatsRequest), "STATS_REQUEST");
  EXPECT_STREQ(FrameTypeName(FrameType::kStatsResponse), "STATS_RESPONSE");
  EXPECT_STREQ(PeerRoleName(PeerRole::kMonitor), "monitor");
}

class ProtocolFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolFuzzTest, MutatedPayloadsNeverCrashDecoders) {
  Rng rng(GetParam() * 17 + 5);
  HelloMessage hello;
  hello.peer_name = "fuzz-me";
  const std::string valid_payloads[] = {
      PayloadOf(EncodeHelloFrame(hello)),
      PayloadOf(EncodeWelcomeFrame(WelcomeMessage())),
      PayloadOf(EncodeElementFrame(Ins("payload-string", 10, 500))),
      PayloadOf(EncodeElementsFrame({Ins("a", 1, 5), Adj("a", 1, 5, 9)})),
      PayloadOf(EncodeByeFrame(ByeMessage{"bye-bye"})),
      PayloadOf(EncodeStatsResponseFrame(SampleStats())),
  };
  for (int round = 0; round < 200; ++round) {
    for (const std::string& valid : valid_payloads) {
      std::string mutated = valid;
      if (mutated.empty()) continue;
      const int mutations = static_cast<int>(rng.UniformInt(1, 4));
      for (int m = 0; m < mutations; ++m) {
        const size_t pos = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(mutated.size()) - 1));
        mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
      }
      HelloMessage h;
      WelcomeMessage w;
      StreamElement e;
      ElementSequence es;
      FeedbackMessage f;
      ByeMessage b;
      StatsResponseMessage sr;
      (void)DecodeHello(mutated, &h);
      (void)DecodeWelcome(mutated, &w);
      (void)DecodeElementPayload(mutated, &e);
      (void)DecodeElementsPayload(mutated, &es);
      (void)DecodeFeedback(mutated, &f);
      (void)DecodeBye(mutated, &b);
      (void)DecodeStatsResponse(mutated, &sr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

// --- v4 replication frames (CHECKPOINT_REQUEST / CHECKPOINT_CHUNK /
// CUT_CERT) ---

replica::CutCertificate SampleCert() {
  replica::CutCertificate cert;
  cert.variant = MergeVariant::kLMR4;
  cert.policy = MergePolicy::Conservative();
  cert.output_stable = 777;
  cert.elements_sent_at_cut = 31;
  cert.inputs.push_back({0, true, 700, 120});
  cert.inputs.push_back({2, false, kMinTimestamp, 5});
  return cert;
}

TEST(ProtocolTest, CheckpointRequestIsEmptyAndStrict) {
  EXPECT_TRUE(
      DecodeCheckpointRequest(PayloadOf(EncodeCheckpointRequestFrame()))
          .ok());
  EXPECT_FALSE(DecodeCheckpointRequest("x").ok());
}

TEST(ProtocolTest, CheckpointChunkRoundTrip) {
  CheckpointChunkMessage chunk;
  chunk.index = 3;
  chunk.bytes = std::string("blob-bytes\x00with-nul", 19);
  CheckpointChunkMessage decoded;
  ASSERT_TRUE(DecodeCheckpointChunk(
                  PayloadOf(EncodeCheckpointChunkFrame(chunk)), &decoded)
                  .ok());
  EXPECT_EQ(decoded.index, 3u);
  EXPECT_EQ(decoded.bytes, chunk.bytes);
  EXPECT_FALSE(DecodeCheckpointChunk(
                   PayloadOf(EncodeCheckpointChunkFrame(chunk)) + "x",
                   &decoded)
                   .ok());
}

TEST(ProtocolTest, CutCertFrameRoundTrip) {
  CutCertMessage cut;
  cut.has_state = true;
  cut.checkpoint_bytes = 1000;
  cut.chunk_count = 4;
  cut.cert = SampleCert();
  CutCertMessage decoded;
  ASSERT_TRUE(
      DecodeCutCert(PayloadOf(EncodeCutCertFrame(cut)), &decoded).ok());
  EXPECT_TRUE(decoded.has_state);
  EXPECT_EQ(decoded.checkpoint_bytes, 1000u);
  EXPECT_EQ(decoded.chunk_count, 4u);
  EXPECT_EQ(decoded.cert.variant, MergeVariant::kLMR4);
  EXPECT_EQ(decoded.cert.output_stable, 777);
  EXPECT_EQ(decoded.cert.elements_sent_at_cut, 31);
  ASSERT_EQ(decoded.cert.inputs.size(), 2u);
  EXPECT_EQ(decoded.cert.inputs[0].elements_in, 120);
  EXPECT_EQ(decoded.cert.inputs[1].stream_id, 2);
  EXPECT_FALSE(decoded.cert.inputs[1].active);
  EXPECT_FALSE(
      DecodeCutCert(PayloadOf(EncodeCutCertFrame(cut)) + "x", &decoded)
          .ok());
}

TEST(ProtocolTest, CutCertFramingValidated) {
  // No state but chunks announced: inconsistent.
  CutCertMessage cut;
  cut.has_state = false;
  cut.chunk_count = 2;
  CutCertMessage decoded;
  EXPECT_FALSE(
      DecodeCutCert(PayloadOf(EncodeCutCertFrame(cut)), &decoded).ok());
  // More bytes than the chunks could possibly carry: inconsistent.
  cut.has_state = true;
  cut.chunk_count = 1;
  cut.checkpoint_bytes = static_cast<uint64_t>(kMaxFramePayload) + 1;
  EXPECT_FALSE(
      DecodeCutCert(PayloadOf(EncodeCutCertFrame(cut)), &decoded).ok());
}

TEST(ProtocolTest, ReplicationTruncationsFailCleanly) {
  CheckpointChunkMessage chunk;
  chunk.index = 1;
  chunk.bytes = "chunk-payload-bytes";
  CutCertMessage cut;
  cut.has_state = true;
  cut.checkpoint_bytes = 64;
  cut.chunk_count = 1;
  cut.cert = SampleCert();
  const std::string chunk_payload =
      PayloadOf(EncodeCheckpointChunkFrame(chunk));
  for (size_t len = 0; len < chunk_payload.size(); ++len) {
    CheckpointChunkMessage c;
    EXPECT_FALSE(DecodeCheckpointChunk(chunk_payload.substr(0, len), &c).ok())
        << "prefix length " << len;
  }
  const std::string cut_payload = PayloadOf(EncodeCutCertFrame(cut));
  for (size_t len = 0; len < cut_payload.size(); ++len) {
    CutCertMessage m;
    EXPECT_FALSE(DecodeCutCert(cut_payload.substr(0, len), &m).ok())
        << "prefix length " << len;
  }
}

TEST(ProtocolTest, ReplicationConstantsGateTheFeature) {
  EXPECT_EQ(kReplicationVersion, 4u);
  EXPECT_GE(kProtocolVersion, kReplicationVersion);
  EXPECT_TRUE(IsKnownFrameType(
      static_cast<uint8_t>(FrameType::kCheckpointRequest)));
  EXPECT_TRUE(
      IsKnownFrameType(static_cast<uint8_t>(FrameType::kCheckpointChunk)));
  EXPECT_TRUE(IsKnownFrameType(static_cast<uint8_t>(FrameType::kCutCert)));
  EXPECT_STREQ(FrameTypeName(FrameType::kCutCert), "CUT_CERT");
  EXPECT_STREQ(FrameTypeName(FrameType::kCheckpointRequest),
               "CHECKPOINT_REQUEST");
  EXPECT_STREQ(FrameTypeName(FrameType::kCheckpointChunk),
               "CHECKPOINT_CHUNK");
  EXPECT_STREQ(PeerRoleName(PeerRole::kStandby), "standby");
}

TEST(ProtocolTest, LatencyConstantsGateTheFeature) {
  EXPECT_EQ(kLatencyVersion, 5u);
  EXPECT_GE(kProtocolVersion, kLatencyVersion);
}

TEST(ProtocolTest, StampedElementsRoundTrip) {
  const ElementSequence batch = {Ins("a", 1, 5), Adj("a", 1, 5, 9), Stb(3)};
  ElementSequence decoded;
  int64_t origin_us = 0;
  ASSERT_TRUE(DecodeElementsPayload(
                  PayloadOf(EncodeElementsFrame(batch, /*origin_us=*/123456)),
                  &decoded, &origin_us)
                  .ok());
  EXPECT_EQ(decoded, batch);
  EXPECT_EQ(origin_us, 123456);
}

TEST(ProtocolTest, StampedElementsDictRoundTrip) {
  const ElementSequence batch = {Ins("hot", 1, 10), Ins("hot", 2, 20)};
  PayloadDictEncoder encoder;
  PayloadDictDecoder decoder_dict;
  FrameAssembler assembler;
  ASSERT_TRUE(assembler
                  .Feed(EncodeElementsDictFrame(batch, &encoder,
                                                /*origin_us=*/987654))
                  .ok());
  Frame frame;
  ElementSequence decoded;
  int64_t origin_us = 0;
  while (assembler.Next(&frame)) {
    if (frame.type == FrameType::kPayloadDef) {
      PayloadDefMessage def;
      ASSERT_TRUE(DecodePayloadDefPayload(frame.payload, &def).ok());
      ASSERT_TRUE(decoder_dict.Define(def.id, def.payload).ok());
      continue;
    }
    ASSERT_EQ(frame.type, FrameType::kElementsDict);
    ASSERT_TRUE(DecodeElementsDictPayload(frame.payload, decoder_dict,
                                          &decoded, &origin_us)
                    .ok());
  }
  EXPECT_EQ(decoded, batch);
  EXPECT_EQ(origin_us, 987654);
}

TEST(ProtocolTest, StampedDecodersRejectUnstampedPayloads) {
  // On a v5 wire the trailing stamp is mandatory: the session version picks
  // the decoder, the decoder never sniffs.  A v4-shaped (unstamped) payload
  // handed to the stamped decoder must fail cleanly, and vice versa the
  // unstamped decoder must reject the 8 trailing stamp bytes.
  const ElementSequence batch = {Ins("a", 1, 5), Stb(3)};
  ElementSequence decoded;
  int64_t origin_us = 0;
  EXPECT_FALSE(DecodeElementsPayload(PayloadOf(EncodeElementsFrame(batch)),
                                     &decoded, &origin_us)
                   .ok());
  EXPECT_FALSE(DecodeElementsPayload(
                   PayloadOf(EncodeElementsFrame(batch, /*origin_us=*/7)),
                   &decoded)
                   .ok());
}

TEST(ProtocolTest, StampedElementsTruncationsFailCleanly) {
  const std::string payload = PayloadOf(
      EncodeElementsFrame({Ins("a", 1, 5), Stb(3)}, /*origin_us=*/4242));
  // Dropping exactly the 8-byte stamp yields the valid v4 payload; every
  // other prefix must fail.
  const size_t v4_len = payload.size() - 8;
  for (size_t len = 0; len < payload.size(); ++len) {
    ElementSequence decoded;
    int64_t origin_us = 0;
    EXPECT_FALSE(DecodeElementsPayload(payload.substr(0, len), &decoded,
                                       &origin_us)
                     .ok())
        << "truncated to " << len;
    if (len != v4_len) {
      EXPECT_FALSE(
          DecodeElementsPayload(payload.substr(0, len), &decoded).ok())
          << "truncated to " << len;
    }
  }
}

TEST(ProtocolTest, StatsResponseCarriesCaptureTimestamps) {
  StatsResponseMessage stats = SampleStats();
  stats.metrics.captured_wall_ms = 1700000000123;
  stats.metrics.captured_mono_us = 55667788;
  StatsResponseMessage decoded;
  ASSERT_TRUE(DecodeStatsResponse(PayloadOf(EncodeStatsResponseFrame(stats)),
                                  &decoded)
                  .ok());
  EXPECT_EQ(decoded.metrics.captured_wall_ms, 1700000000123);
  EXPECT_EQ(decoded.metrics.captured_mono_us, 55667788);

  // A v4-negotiated session gets the v4 encoding: no trailer, and the
  // decoder reports the timestamps as unknown.
  StatsResponseMessage v4_decoded;
  ASSERT_TRUE(
      DecodeStatsResponse(
          PayloadOf(EncodeStatsResponseFrame(stats, /*version=*/4)),
          &v4_decoded)
          .ok());
  EXPECT_EQ(v4_decoded.metrics.captured_wall_ms, 0);
  EXPECT_EQ(v4_decoded.metrics.captured_mono_us, 0);
  EXPECT_EQ(v4_decoded.publishers, decoded.publishers);
}

}  // namespace
}  // namespace lmerge::net
