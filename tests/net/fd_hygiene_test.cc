// FD and thread hygiene under session churn: the event-loop ServeLoop owns
// every connection on a fixed pool of IO threads, so serving hundreds of
// short-lived sessions must leave the process with exactly the file
// descriptors and threads it started with.  A leak of even one fd per
// session turns a long-lived daemon into an EMFILE outage; this is the
// regression net for that whole class of bug.

#include <dirent.h>

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "net/client.h"
#include "net/loopback.h"
#include "net/server.h"
#include "net/tcp.h"
#include "stream/sink.h"
#include "test_util.h"

namespace lmerge::net {
namespace {

using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

// Counts entries in a /proc/self directory (fd or task).  Counting fds
// opens one fd for the directory stream itself, but that bias is identical
// in the before and after measurements.
int CountProcEntries(const char* path) {
  DIR* dir = opendir(path);
  if (dir == nullptr) return -1;
  int count = 0;
  while (struct dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    ++count;
  }
  closedir(dir);
  return count;
}

int OpenFds() { return CountProcEntries("/proc/self/fd"); }
int Threads() { return CountProcEntries("/proc/self/task"); }

ElementSequence TinyTape(int seed) {
  ElementSequence tape;
  for (int i = 0; i < 4; ++i) {
    tape.push_back(Ins("churn-" + std::to_string(seed) + "-" +
                           std::to_string(i),
                       i + 1, i + 100));
  }
  tape.push_back(Stb(50));
  return tape;
}

// 200 sequential publisher sessions over real TCP sockets through the
// event-loop ServeLoop, then the server drains: every socket, epoll
// instance, eventfd, and IO thread must be gone.
TEST(FdHygieneTest, TcpSessionChurnReturnsToBaseline) {
  const int baseline_fds = OpenFds();
  const int baseline_threads = Threads();
  ASSERT_GT(baseline_fds, 0);
  ASSERT_GT(baseline_threads, 0);

  constexpr int kSessions = 200;
  {
    MergeServer server;
    NullSink sink;
    server.AddOutputSink(&sink);
    std::unique_ptr<Listener> listener;
    ASSERT_TRUE(TcpListen(0, &listener).ok());
    const int port = listener->port();

    ServeLoopOptions loop_options;
    loop_options.drain_publishers = kSessions;
    loop_options.io_threads = 2;
    std::thread serve(
        [&] { ServeLoop(listener.get(), &server, loop_options); });

    for (int s = 0; s < kSessions; ++s) {
      std::unique_ptr<Connection> conn;
      ASSERT_TRUE(TcpConnect("127.0.0.1", port, &conn).ok());
      PublisherClient publisher(std::move(conn));
      WelcomeMessage welcome;
      ASSERT_TRUE(publisher
                      .Handshake(StreamProperties(), kMinTimestamp,
                                 "churn-" + std::to_string(s), &welcome)
                      .ok());
      ASSERT_TRUE(publisher.PublishBatch(TinyTape(s)).ok());
      ASSERT_TRUE(publisher.Finish("done").ok());
    }
    serve.join();
    EXPECT_EQ(server.publishers_seen(), kSessions);
  }

  EXPECT_EQ(OpenFds(), baseline_fds);
  EXPECT_EQ(Threads(), baseline_threads);
}

// Same churn over the loopback transport: its pollability is built from
// eventfds, which are just as leakable as sockets.
TEST(FdHygieneTest, LoopbackSessionChurnReturnsToBaseline) {
  const int baseline_fds = OpenFds();
  const int baseline_threads = Threads();
  ASSERT_GT(baseline_fds, 0);
  ASSERT_GT(baseline_threads, 0);

  constexpr int kSessions = 200;
  {
    MergeServer server;
    NullSink sink;
    server.AddOutputSink(&sink);
    LoopbackListener listener;

    ServeLoopOptions loop_options;
    loop_options.drain_publishers = kSessions;
    std::thread serve([&] { ServeLoop(&listener, &server, loop_options); });

    for (int s = 0; s < kSessions; ++s) {
      std::unique_ptr<Connection> conn =
          listener.Connect("churn-" + std::to_string(s));
      ASSERT_NE(conn, nullptr);
      PublisherClient publisher(std::move(conn));
      WelcomeMessage welcome;
      ASSERT_TRUE(publisher
                      .Handshake(StreamProperties(), kMinTimestamp,
                                 "churn-" + std::to_string(s), &welcome)
                      .ok());
      ASSERT_TRUE(publisher.PublishBatch(TinyTape(s)).ok());
      ASSERT_TRUE(publisher.Finish("done").ok());
    }
    serve.join();
    EXPECT_EQ(server.publishers_seen(), kSessions);
  }

  EXPECT_EQ(OpenFds(), baseline_fds);
  EXPECT_EQ(Threads(), baseline_threads);
}

}  // namespace
}  // namespace lmerge::net
