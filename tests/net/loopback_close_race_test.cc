// Regression test for a data race the thread-safety conversion surfaced:
// LoopbackConnection::closed_ was a plain bool written by Close() on the
// server's session-teardown thread while the peer's transport thread read
// it through closed() and set it from TryReceive().  It is now a
// std::atomic<bool>; this test drives exactly that write/read overlap so
// the TSan job (see .github/workflows/ci.yml) would flag a reintroduction.

#include "net/loopback.h"

#include <atomic>
#include <string>
#include <thread>
#include <utility>

#include "gtest/gtest.h"

namespace lmerge::net {
namespace {

TEST(LoopbackCloseRaceTest, ConcurrentCloseAndClosedPolling) {
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    auto [client, server] = CreateLoopbackPair("client", "server");

    std::atomic<bool> observed_closed{false};
    // Transport-thread side: poll closed() and drain TryReceive on the
    // server endpoint, exactly like MergeServer's session loop does
    // between frames.
    std::thread poller([&] {
      std::string sink;
      while (!server->closed()) {
        ASSERT_TRUE(server->TryReceive(&sink).ok());
      }
      observed_closed.store(true);
    });
    // Teardown side: CloseSession runs on a different thread and closes
    // the SAME endpoint the transport thread is polling — this is the
    // write/read overlap on closed_ that used to race.
    std::thread closer([&] { server->Close(); });

    closer.join();
    poller.join();
    EXPECT_TRUE(observed_closed.load());

    // After the close, sends on either end must fail cleanly rather than
    // buffer into a dead pipe.
    EXPECT_FALSE(client->Send("x", 1).ok());
  }
}

TEST(LoopbackCloseRaceTest, CloseWakesBlockedReceiveAsCleanEof) {
  auto [client, server] = CreateLoopbackPair("client", "server");
  char buffer[16];
  size_t received = 999;
  std::thread reader([&] {
    ASSERT_TRUE(server->Receive(buffer, sizeof(buffer), &received).ok());
  });
  client->Close();
  reader.join();
  EXPECT_EQ(received, 0u);  // closed with nothing buffered: clean EOF
}

}  // namespace
}  // namespace lmerge::net
