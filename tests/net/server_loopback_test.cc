// MergeServer session behaviour over the loopback transport.  Tests drive
// bytes into MergeServer::OnBytes directly and read the server's responses
// (WELCOME / FEEDBACK / BYE / fan-out) from the client end of a loopback
// pair, so every scenario — handshakes, churn, joins, feedback, hostile
// input — is deterministic.

#include "net/server.h"

#include <gtest/gtest.h>

#include <thread>

#include "net/client.h"
#include "net/loopback.h"
#include "stream/validate.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge::net {
namespace {

using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;
using workload::GeneratorConfig;
using workload::GeneratePhysicalVariant;
using workload::GenerateHistory;
using workload::LogicalHistory;
using workload::RenderInOrder;
using workload::VariantOptions;

// One simulated peer: the server end is registered with the MergeServer, the
// client end is where the test reads the server's responses.
struct TestPeer {
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;
  int session_id = -1;
  FrameAssembler assembler;

  // Everything the server has sent this peer so far.
  std::vector<Frame> DrainFrames() {
    std::string bytes;
    EXPECT_TRUE(client->TryReceive(&bytes).ok());
    EXPECT_TRUE(assembler.Feed(bytes).ok());
    std::vector<Frame> frames;
    Frame frame;
    while (assembler.Next(&frame)) frames.push_back(frame);
    return frames;
  }
};

TestPeer ConnectPeer(MergeServer* server, const std::string& name) {
  TestPeer peer;
  auto [client, server_end] =
      CreateLoopbackPair("client:" + name, "server:" + name);
  peer.client = std::move(client);
  peer.server = std::move(server_end);
  peer.session_id = server->OnConnect(peer.server.get());
  return peer;
}

HelloMessage PublisherHello(const std::string& name,
                            StreamProperties properties = StreamProperties(),
                            Timestamp join_time = kMinTimestamp) {
  HelloMessage hello;
  hello.role = PeerRole::kPublisher;
  hello.properties = properties;
  hello.join_time = join_time;
  hello.peer_name = name;
  return hello;
}

// Performs a publisher handshake and returns the WELCOME.
WelcomeMessage Handshake(MergeServer* server, TestPeer* peer,
                         const HelloMessage& hello) {
  EXPECT_TRUE(
      server->OnBytes(peer->session_id, EncodeHelloFrame(hello)).ok());
  const std::vector<Frame> frames = peer->DrainFrames();
  EXPECT_EQ(frames.size(), 1u);
  WelcomeMessage welcome;
  EXPECT_EQ(frames[0].type, FrameType::kWelcome);
  EXPECT_TRUE(DecodeWelcome(frames[0].payload, &welcome).ok());
  return welcome;
}

TEST(ServerLoopbackTest, PublisherAndSubscriberHandshakes) {
  MergeServer server;
  TestPeer pub_a = ConnectPeer(&server, "a");
  TestPeer pub_b = ConnectPeer(&server, "b");
  TestPeer sub = ConnectPeer(&server, "sub");

  const WelcomeMessage welcome_a =
      Handshake(&server, &pub_a, PublisherHello("a"));
  EXPECT_EQ(welcome_a.stream_id, 0);
  EXPECT_NE(welcome_a.algorithm_case, kUnknownAlgorithmCase);

  const WelcomeMessage welcome_b =
      Handshake(&server, &pub_b, PublisherHello("b"));
  EXPECT_EQ(welcome_b.stream_id, 1);

  HelloMessage sub_hello;
  sub_hello.role = PeerRole::kSubscriber;
  sub_hello.peer_name = "sub";
  const WelcomeMessage welcome_sub = Handshake(&server, &sub, sub_hello);
  EXPECT_EQ(welcome_sub.stream_id, -1);

  EXPECT_EQ(server.active_publishers(), 2);
  EXPECT_EQ(server.publishers_seen(), 2);
  EXPECT_EQ(server.subscriber_count(), 1);
  EXPECT_FALSE(server.drained());

  server.OnDisconnect(pub_a.session_id);
  server.OnDisconnect(pub_b.session_id);
  EXPECT_EQ(server.active_publishers(), 0);
  EXPECT_TRUE(server.drained());
}

TEST(ServerLoopbackTest, ElementBeforeHelloIsRejectedWithBye) {
  MergeServer server;
  TestPeer peer = ConnectPeer(&server, "rogue");
  const Status status =
      server.OnBytes(peer.session_id, EncodeElementFrame(Ins("x", 1, 2)));
  EXPECT_FALSE(status.ok());
  const std::vector<Frame> frames = peer.DrainFrames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kBye);
  // The session is gone: further bytes are refused too.
  EXPECT_FALSE(
      server.OnBytes(peer.session_id, EncodeHelloFrame(PublisherHello("x")))
          .ok());
}

TEST(ServerLoopbackTest, GarbageBytesTearDownOnlyThatSession) {
  MergeServer server;
  TestPeer good = ConnectPeer(&server, "good");
  TestPeer evil = ConnectPeer(&server, "evil");
  Handshake(&server, &good, PublisherHello("good"));

  EXPECT_FALSE(
      server.OnBytes(evil.session_id, "\xff\xff\xff\xff garbage").ok());
  const std::vector<Frame> frames = evil.DrainFrames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kBye);

  // The good publisher is unaffected.
  EXPECT_TRUE(server
                  .OnBytes(good.session_id,
                           EncodeElementFrame(Ins("still-alive", 1, 10)))
                  .ok());
  EXPECT_EQ(server.active_publishers(), 1);
}

TEST(ServerLoopbackTest, ClientSendingServerOnlyFrameIsRejected) {
  MergeServer server;
  TestPeer peer = ConnectPeer(&server, "confused");
  Handshake(&server, &peer, PublisherHello("confused"));
  FeedbackMessage feedback;
  EXPECT_FALSE(
      server.OnBytes(peer.session_id, EncodeFeedbackFrame(feedback)).ok());
}

TEST(ServerLoopbackTest, TooOldProtocolVersionIsRejected) {
  MergeServer server;
  TestPeer peer = ConnectPeer(&server, "ancient");
  HelloMessage hello = PublisherHello("ancient");
  hello.version = kMinProtocolVersion - 1;
  EXPECT_FALSE(
      server.OnBytes(peer.session_id, EncodeHelloFrame(hello)).ok());
}

TEST(ServerLoopbackTest, NewerPeerIsNegotiatedDownToServerVersion) {
  // A client from the future offers a higher version; the server answers
  // with its own (the min), and the session proceeds normally.
  MergeServer server;
  TestPeer peer = ConnectPeer(&server, "future");
  HelloMessage hello = PublisherHello("future");
  hello.version = kProtocolVersion + 7;
  const WelcomeMessage welcome = Handshake(&server, &peer, hello);
  EXPECT_EQ(welcome.version, kProtocolVersion);
  EXPECT_TRUE(server
                  .OnBytes(peer.session_id,
                           EncodeElementFrame(Ins("hello", 1, 10)))
                  .ok());
}

TEST(ServerLoopbackTest, V1PeerIsNegotiatedDownAndDictFramesRejected) {
  MergeServer server;
  TestPeer peer = ConnectPeer(&server, "v1");
  HelloMessage hello = PublisherHello("v1");
  hello.version = 1;
  const WelcomeMessage welcome = Handshake(&server, &peer, hello);
  EXPECT_EQ(welcome.version, 1u);
  // Inline frames still work...
  EXPECT_TRUE(server
                  .OnBytes(peer.session_id,
                           EncodeElementFrame(Ins("inline", 1, 10)))
                  .ok());
  // ...but v2 dictionary frames on a v1 session are a protocol violation.
  PayloadDefMessage def;
  def.id = 0;
  def.payload = Row::OfString("sneaky");
  EXPECT_FALSE(
      server.OnBytes(peer.session_id, EncodePayloadDefFrame(def)).ok());
}

HelloMessage MonitorHello(const std::string& name) {
  HelloMessage hello;
  hello.role = PeerRole::kMonitor;
  hello.peer_name = name;
  return hello;
}

TEST(ServerLoopbackTest, MonitorHandshakeAndStatsRoundTrip) {
  MergeServer server;
  // Two publishers feed a few elements so the stats carry real counters.
  TestPeer pub_a = ConnectPeer(&server, "a");
  TestPeer pub_b = ConnectPeer(&server, "b");
  Handshake(&server, &pub_a, PublisherHello("replica-a"));
  Handshake(&server, &pub_b, PublisherHello("replica-b"));
  ASSERT_TRUE(server
                  .OnBytes(pub_a.session_id,
                           EncodeElementsFrame({Ins("x", 1, 10),
                                                Ins("y", 2, 11), Stb(5)},
                                               /*origin_us=*/1000))
                  .ok());
  ASSERT_TRUE(server
                  .OnBytes(pub_b.session_id,
                           EncodeElementsFrame({Ins("x", 1, 10), Stb(2)},
                                               /*origin_us=*/1000))
                  .ok());
  server.Flush();

  TestPeer monitor = ConnectPeer(&server, "mon");
  const WelcomeMessage welcome =
      Handshake(&server, &monitor, MonitorHello("dashboard"));
  EXPECT_EQ(welcome.version, kProtocolVersion);
  EXPECT_EQ(welcome.stream_id, -1);

  ASSERT_TRUE(
      server.OnBytes(monitor.session_id, EncodeStatsRequestFrame()).ok());
  const std::vector<Frame> frames = monitor.DrainFrames();
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, FrameType::kStatsResponse);
  StatsResponseMessage stats;
  ASSERT_TRUE(DecodeStatsResponse(frames[0].payload, &stats).ok());

  EXPECT_EQ(stats.publishers, 2);
  EXPECT_EQ(stats.subscribers, 0);
  // Replicas are redundant copies, so the merged output is stable to the
  // MAX of the replicas' stable points (5), not the min.
  EXPECT_EQ(stats.output_stable, 5);
  ASSERT_EQ(stats.inputs.size(), 2u);
  EXPECT_EQ(stats.inputs[0].peer_name, "replica-a");
  EXPECT_EQ(stats.inputs[1].peer_name, "replica-b");
  EXPECT_TRUE(stats.inputs[0].connected);
  EXPECT_EQ(stats.inputs[0].inserts_in, 2);
  EXPECT_EQ(stats.inputs[0].stables_in, 1);
  EXPECT_EQ(stats.inputs[1].inserts_in, 1);
  EXPECT_EQ(stats.inputs[0].stable_point, 5);
  EXPECT_EQ(stats.inputs[1].stable_point, 2);
  // Redundant delivery: replica-b's copy of "x" was merged away, and the
  // per-input contributions sum to the merged output TDB size.
  EXPECT_EQ(stats.inputs[0].contributed + stats.inputs[1].contributed,
            stats.output_inserts);
  // The embedded registry snapshot carries the wire-layer counters.
  EXPECT_GT(stats.metrics.Value("net.rx.frames"), 0);
  EXPECT_GT(stats.metrics.Value("engine.batches"), 0);
}

TEST(ServerLoopbackTest, StatsBeforeAnyPublisherIsEmptyButValid) {
  MergeServer server;
  TestPeer monitor = ConnectPeer(&server, "early");
  Handshake(&server, &monitor, MonitorHello("early"));
  ASSERT_TRUE(
      server.OnBytes(monitor.session_id, EncodeStatsRequestFrame()).ok());
  const std::vector<Frame> frames = monitor.DrainFrames();
  ASSERT_EQ(frames.size(), 1u);
  StatsResponseMessage stats;
  ASSERT_TRUE(DecodeStatsResponse(frames[0].payload, &stats).ok());
  EXPECT_EQ(stats.algorithm_case, kUnknownAlgorithmCase);
  EXPECT_EQ(stats.publishers, 0);
  EXPECT_TRUE(stats.inputs.empty());
  EXPECT_EQ(stats.output_stable, kMinTimestamp);
}

TEST(ServerLoopbackTest, V2PeerNeverSeesStatsAndMonitorNeedsV3) {
  MergeServer server;
  // A v2 publisher negotiates down and must not be able to poll stats.
  TestPeer v2 = ConnectPeer(&server, "v2");
  HelloMessage hello = PublisherHello("v2-replica");
  hello.version = 2;
  const WelcomeMessage welcome = Handshake(&server, &v2, hello);
  EXPECT_EQ(welcome.version, 2u);
  EXPECT_FALSE(
      server.OnBytes(v2.session_id, EncodeStatsRequestFrame()).ok());

  // A monitor HELLO claiming v2 is a protocol violation, not a downgrade.
  TestPeer old_monitor = ConnectPeer(&server, "old-mon");
  HelloMessage mon_hello = MonitorHello("old-dashboard");
  mon_hello.version = 2;
  EXPECT_FALSE(
      server.OnBytes(old_monitor.session_id, EncodeHelloFrame(mon_hello))
          .ok());
  // The protocol violation cost the v2 publisher its session, and the
  // rejected monitor never became a peer of any kind.
  EXPECT_EQ(server.active_publishers(), 0);
  EXPECT_EQ(server.subscriber_count(), 0);
}

TEST(ServerLoopbackTest, StatsClientPollsOverLoopback) {
  // The StatsClient handshake needs a live responder on the server end of
  // the loopback pair, so pump its bytes into the server from a thread.
  MergeServer server;
  TestPeer pub = ConnectPeer(&server, "p");
  Handshake(&server, &pub, PublisherHello("replica"));
  ASSERT_TRUE(server
                  .OnBytes(pub.session_id,
                           EncodeElementsFrame({Ins("a", 1, 10), Stb(3)},
                                               /*origin_us=*/1000))
                  .ok());
  server.Flush();

  auto [client_end, server_end] = CreateLoopbackPair("mon-c", "mon-s");
  const int session = server.OnConnect(server_end.get());
  Connection* server_conn = server_end.get();
  std::thread pump([&server, server_conn, session] {
    // Forward everything the client sends until it closes — the same
    // Receive -> OnBytes loop ServeLoop runs per session.
    while (true) {
      char buffer[4096];
      size_t received = 0;
      if (!server_conn->Receive(buffer, sizeof(buffer), &received).ok() ||
          received == 0) {
        break;
      }
      if (!server.OnBytes(session, buffer, received).ok()) break;
    }
  });

  StatsClient stats_client(std::move(client_end));
  ASSERT_TRUE(stats_client.Handshake("poller").ok());
  StatsResponseMessage stats;
  ASSERT_TRUE(stats_client.PollStats(&stats).ok());
  EXPECT_EQ(stats.publishers, 1);
  ASSERT_EQ(stats.inputs.size(), 1u);
  EXPECT_EQ(stats.inputs[0].peer_name, "replica");
  (void)stats_client.Finish();
  pump.join();
}

TEST(ServerLoopbackTest, WeakerLatePublisherIsRejectedUnlessVariantForced) {
  MergeServer strict_server;
  TestPeer strong = ConnectPeer(&strict_server, "strong");
  Handshake(&strict_server, &strong,
            PublisherHello("strong", StreamProperties::Strongest()));
  TestPeer weak = ConnectPeer(&strict_server, "weak");
  // A weaker replica would require a more general algorithm than the one
  // already instantiated; the server must refuse rather than emit garbage.
  EXPECT_FALSE(strict_server
                   .OnBytes(weak.session_id,
                            EncodeHelloFrame(PublisherHello(
                                "weak", StreamProperties::None())))
                   .ok());
  EXPECT_EQ(strict_server.active_publishers(), 1);

  // With an operator-forced general variant the same pair is accepted.
  MergeServerOptions options;
  options.variant = MergeVariant::kLMR4;
  MergeServer forced_server(options);
  TestPeer strong2 = ConnectPeer(&forced_server, "strong");
  TestPeer weak2 = ConnectPeer(&forced_server, "weak");
  Handshake(&forced_server, &strong2,
            PublisherHello("strong", StreamProperties::Strongest()));
  const WelcomeMessage welcome =
      Handshake(&forced_server, &weak2,
                PublisherHello("weak", StreamProperties::None()));
  EXPECT_EQ(welcome.stream_id, 1);
}

TEST(ServerLoopbackTest, BatchedElementsReachTheMerge) {
  MergeServer server;
  CollectingSink merged;
  server.AddOutputSink(&merged);
  TestPeer pub = ConnectPeer(&server, "batcher");
  Handshake(&server, &pub, PublisherHello("batcher"));
  const ElementSequence batch = {Ins("a", 1, 10), Ins("b", 2, 11), Stb(5)};
  ASSERT_TRUE(
      server.OnBytes(pub.session_id,
                     EncodeElementsFrame(batch, /*origin_us=*/1000))
          .ok());
  EXPECT_EQ(server.output_stable(), 5);
  EXPECT_FALSE(merged.elements().empty());
}

TEST(ServerLoopbackTest, SubscriberReceivesExactlyTheMergedOutput) {
  MergeServer server;
  CollectingSink merged;
  server.AddOutputSink(&merged);
  TestPeer sub = ConnectPeer(&server, "sub");
  HelloMessage sub_hello;
  sub_hello.role = PeerRole::kSubscriber;
  Handshake(&server, &sub, sub_hello);

  TestPeer pub = ConnectPeer(&server, "pub");
  Handshake(&server, &pub, PublisherHello("pub"));
  const ElementSequence tape = {Ins("a", 1, 10), Ins("b", 3, 12), Stb(4),
                                Ins("c", 5, 20), Stb(30)};
  for (const StreamElement& element : tape) {
    ASSERT_TRUE(
        server.OnBytes(pub.session_id, EncodeElementFrame(element)).ok());
  }

  server.Flush();  // delivery is enqueue-only; quiesce before reading
  // A default (v2) subscriber receives dictionary-coded output: PAYLOAD_DEF
  // frames defining each first-seen payload, then ELEMENTS_DICT batches.
  PayloadDictDecoder dict;
  ElementSequence received;
  for (const Frame& frame : sub.DrainFrames()) {
    if (frame.type == FrameType::kPayloadDef) {
      PayloadDefMessage def;
      ASSERT_TRUE(DecodePayloadDefPayload(frame.payload, &def).ok());
      ASSERT_TRUE(dict.Define(def.id, std::move(def.payload)).ok());
      continue;
    }
    ASSERT_EQ(frame.type, FrameType::kElementsDict);
    ElementSequence batch;
    int64_t origin_us = -1;
    ASSERT_TRUE(
        DecodeElementsDictPayload(frame.payload, dict, &batch, &origin_us)
            .ok());
    // The publisher sent unstamped single-ELEMENT frames, so the v5
    // fan-out carries the stamp trailer with an unknown (0) origin.
    EXPECT_EQ(origin_us, 0);
    for (StreamElement& element : batch) {
      received.push_back(std::move(element));
    }
  }
  EXPECT_EQ(received, merged.elements());
  EXPECT_FALSE(received.empty());
}

TEST(ServerLoopbackTest, V1SubscriberReceivesInlineElementFrames) {
  MergeServer server;
  CollectingSink merged;
  server.AddOutputSink(&merged);
  TestPeer sub = ConnectPeer(&server, "old-sub");
  HelloMessage sub_hello;
  sub_hello.role = PeerRole::kSubscriber;
  sub_hello.version = 1;
  Handshake(&server, &sub, sub_hello);

  TestPeer pub = ConnectPeer(&server, "pub");
  Handshake(&server, &pub, PublisherHello("pub"));
  const ElementSequence tape = {Ins("a", 1, 10), Stb(4), Ins("a", 5, 20),
                                Stb(30)};
  for (const StreamElement& element : tape) {
    ASSERT_TRUE(
        server.OnBytes(pub.session_id, EncodeElementFrame(element)).ok());
  }

  server.Flush();
  ElementSequence received;
  for (const Frame& frame : sub.DrainFrames()) {
    // v1 fan-out is batched: a flush of one element goes out as ELEMENT,
    // anything larger as one ELEMENTS frame — never dictionary frames.
    if (frame.type == FrameType::kElement) {
      StreamElement element;
      ASSERT_TRUE(DecodeElementPayload(frame.payload, &element).ok());
      received.push_back(element);
    } else {
      ASSERT_EQ(frame.type, FrameType::kElements);
      ElementSequence batch;
      ASSERT_TRUE(DecodeElementsPayload(frame.payload, &batch).ok());
      received.insert(received.end(), batch.begin(), batch.end());
    }
  }
  EXPECT_EQ(received, merged.elements());
  EXPECT_FALSE(received.empty());
}

TEST(ServerLoopbackTest, LaggingPublisherReceivesFeedback) {
  MergeServer server;
  TestPeer fast = ConnectPeer(&server, "fast");
  TestPeer slow = ConnectPeer(&server, "slow");
  Handshake(&server, &fast, PublisherHello("fast"));
  Handshake(&server, &slow, PublisherHello("slow"));

  // The slow replica has only shown progress up to vs=2 when the fast one
  // stabilizes 50: the server must push the new horizon to the laggard.
  ASSERT_TRUE(server
                  .OnBytes(slow.session_id,
                           EncodeElementFrame(Ins("early", 1, 100)))
                  .ok());
  ASSERT_TRUE(server
                  .OnBytes(fast.session_id,
                           EncodeElementFrame(Ins("early", 1, 100)))
                  .ok());
  ASSERT_TRUE(
      server.OnBytes(fast.session_id, EncodeElementFrame(Stb(50))).ok());
  ASSERT_EQ(server.output_stable(), 50);

  bool got_feedback = false;
  for (const Frame& frame : slow.DrainFrames()) {
    if (frame.type != FrameType::kFeedback) continue;
    FeedbackMessage feedback;
    ASSERT_TRUE(DecodeFeedback(frame.payload, &feedback).ok());
    EXPECT_EQ(feedback.horizon, 50);
    got_feedback = true;
  }
  EXPECT_TRUE(got_feedback);
  // The fast replica is not lagging; it must not get feedback.
  for (const Frame& frame : fast.DrainFrames()) {
    EXPECT_NE(frame.type, FrameType::kFeedback);
  }
}

TEST(ServerLoopbackTest, FeedbackCanBeDisabled) {
  MergeServerOptions options;
  options.feedback_enabled = false;
  MergeServer server(options);
  TestPeer fast = ConnectPeer(&server, "fast");
  TestPeer slow = ConnectPeer(&server, "slow");
  Handshake(&server, &fast, PublisherHello("fast"));
  Handshake(&server, &slow, PublisherHello("slow"));
  ASSERT_TRUE(
      server.OnBytes(fast.session_id, EncodeElementFrame(Stb(50))).ok());
  for (const Frame& frame : slow.DrainFrames()) {
    EXPECT_NE(frame.type, FrameType::kFeedback);
  }
}

// The churn scenarios of tests/integration/churn_test.cc, replayed through
// network sessions: replicas die (disconnect without BYE) at random points
// and the merged output still reconstitutes the reference TDB.
class ServerChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServerChurnTest, RandomDetachPointsNeverCorruptOutput) {
  const uint64_t seed = GetParam();
  GeneratorConfig config;
  config.num_inserts = 200;
  config.stable_freq = 0.06;
  config.event_duration = 400;
  config.max_gap = 15;
  config.payload_string_bytes = 6;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);

  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < 3; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.3;
    options.split_probability = 0.3;
    options.seed = seed * 31 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }

  MergeServer server;
  CollectingSink merged;
  server.AddOutputSink(&merged);
  std::vector<TestPeer> peers;
  for (int s = 0; s < 3; ++s) {
    peers.push_back(ConnectPeer(&server, "replica-" + std::to_string(s)));
    const WelcomeMessage welcome = Handshake(
        &server, &peers.back(),
        PublisherHello("replica-" + std::to_string(s)));
    ASSERT_EQ(welcome.stream_id, s);
  }

  // Replicas 0 and 1 die at random points; replica 2 survives to the end.
  Rng rng(seed * 7 + 1);
  const size_t kill0 = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(replicas[0].size())));
  const size_t kill1 = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(replicas[1].size())));
  size_t next[3] = {0, 0, 0};
  bool any = true;
  while (any) {
    any = false;
    for (int s = 0; s < 3; ++s) {
      const size_t limit =
          s == 0 ? kill0 : (s == 1 ? kill1 : replicas[2].size());
      const ElementSequence& tape = replicas[static_cast<size_t>(s)];
      size_t& cursor = next[static_cast<size_t>(s)];
      TestPeer& peer = peers[static_cast<size_t>(s)];
      if (cursor < std::min(limit, tape.size())) {
        ASSERT_TRUE(server
                        .OnBytes(peer.session_id,
                                 EncodeElementFrame(tape[cursor++]))
                        .ok());
        any = true;
      } else if (s != 2 && peer.session_id >= 0) {
        server.OnDisconnect(peer.session_id);  // crash: no BYE
        peer.session_id = -1;
      }
    }
  }

  server.Flush();  // delivery is enqueue-only; quiesce before reading
  StreamValidator validator;
  ASSERT_TRUE(validator.ConsumeAll(merged.elements()).ok());
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(RenderInOrder(history))))
      << "seed " << seed << " kills at " << kill0 << "/" << kill1;
}

TEST_P(ServerChurnTest, MidRunJoinerCatchesUpAndTakesOver) {
  const uint64_t seed = GetParam();
  GeneratorConfig config;
  config.num_inserts = 150;
  config.stable_freq = 0.08;
  config.event_duration = 300;
  config.max_gap = 12;
  config.payload_string_bytes = 6;
  config.seed = seed + 1000;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);

  VariantOptions options;
  options.disorder_fraction = 0.25;
  options.seed = seed * 5;
  const ElementSequence original = GeneratePhysicalVariant(history, options);

  MergeServer server;
  CollectingSink merged;
  server.AddOutputSink(&merged);

  TestPeer first = ConnectPeer(&server, "first");
  Handshake(&server, &first, PublisherHello("first"));

  Rng rng(seed * 13 + 3);
  const size_t handoff = static_cast<size_t>(
      rng.UniformInt(static_cast<int64_t>(original.size()) / 4,
                     static_cast<int64_t>(original.size()) * 3 / 4));
  for (size_t i = 0; i < handoff; ++i) {
    ASSERT_TRUE(server
                    .OnBytes(first.session_id,
                             EncodeElementFrame(original[i]))
                    .ok());
  }

  // A fresh replica joins, declaring it is only correct from the current
  // output stable point onward (Sec. V-B), then the original replica dies.
  const Timestamp join_time = server.output_stable();
  TestPeer joiner = ConnectPeer(&server, "joiner");
  const WelcomeMessage welcome = Handshake(
      &server, &joiner,
      PublisherHello("joiner", StreamProperties(), join_time));
  EXPECT_EQ(welcome.output_stable, join_time);
  server.OnDisconnect(first.session_id);

  ElementSequence replay;
  for (const Event& e : history.events) {
    if (e.ve >= join_time) {
      replay.push_back(StreamElement::Insert(e.payload, e.vs, e.ve));
    }
  }
  for (const Timestamp t : history.stable_times) {
    if (t > join_time) replay.push_back(StreamElement::Stable(t));
  }
  ASSERT_TRUE(
      server
          .OnBytes(joiner.session_id,
                   EncodeElementsFrame(replay, /*origin_us=*/1000))
          .ok());

  server.Flush();  // delivery is enqueue-only; quiesce before reading
  StreamValidator validator;
  ASSERT_TRUE(validator.ConsumeAll(merged.elements()).ok());
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(RenderInOrder(history))))
      << "seed " << seed << " handoff " << handoff;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServerChurnTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace lmerge::net
