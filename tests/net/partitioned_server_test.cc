// MergeServer with --merge-threads > 1: the partitioned merge behind the
// session layer.  Proves (1) merge_threads=1 stays byte-identical to the
// plain single-threaded algorithm, (2) a partitioned server converges to
// the same TDB as the reference across redundant disordered publishers,
// (3) a partitioned checkpoint cut certifies every shard frontier and
// restores onto a fresh server, and (4) tampered shard frontiers are
// rejected at adoption.

#include "net/server.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/checkpoint.h"
#include "core/factory.h"
#include "net/loopback.h"
#include "net/protocol.h"
#include "replica/cut_certificate.h"
#include "stream/sink.h"
#include "stream/validate.h"
#include "temporal/tdb.h"
#include "workload/generator.h"

namespace lmerge::net {
namespace {

using workload::GeneratePhysicalVariant;
using workload::GenerateHistory;
using workload::GeneratorConfig;
using workload::LogicalHistory;
using workload::RenderInOrder;
using workload::VariantOptions;

LogicalHistory ClosedHistory(uint64_t seed, int64_t n = 300) {
  GeneratorConfig config;
  config.num_inserts = n;
  config.stable_freq = 0.06;
  config.event_duration = 400;
  config.max_gap = 12;
  config.payload_string_bytes = 8;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);
  return history;
}

struct TestPeer {
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;
  int session_id = -1;
  FrameAssembler assembler;

  std::vector<Frame> DrainFrames() {
    std::string bytes;
    EXPECT_TRUE(client->TryReceive(&bytes).ok());
    EXPECT_TRUE(assembler.Feed(bytes).ok());
    std::vector<Frame> frames;
    Frame frame;
    while (assembler.Next(&frame)) frames.push_back(frame);
    return frames;
  }
};

TestPeer ConnectPeer(MergeServer* server, const std::string& name) {
  TestPeer peer;
  auto [client, server_end] =
      CreateLoopbackPair("client:" + name, "server:" + name);
  peer.client = std::move(client);
  peer.server = std::move(server_end);
  peer.session_id = server->OnConnect(peer.server.get());
  return peer;
}

// Publisher handshake returning the WELCOME.
WelcomeMessage PublisherHandshake(MergeServer* server, TestPeer* peer,
                                  const std::string& name) {
  HelloMessage hello;
  hello.role = PeerRole::kPublisher;
  hello.peer_name = name;
  EXPECT_TRUE(
      server->OnBytes(peer->session_id, EncodeHelloFrame(hello)).ok());
  const std::vector<Frame> frames = peer->DrainFrames();
  EXPECT_EQ(frames.size(), 1u);
  WelcomeMessage welcome;
  EXPECT_EQ(frames[0].type, FrameType::kWelcome);
  EXPECT_TRUE(DecodeWelcome(frames[0].payload, &welcome).ok());
  return welcome;
}

void PublishAll(MergeServer* server, TestPeer* peer,
                const ElementSequence& tape, size_t chunk = 64) {
  for (size_t i = 0; i < tape.size(); i += chunk) {
    ElementSequence batch(tape.begin() + i,
                          tape.begin() + std::min(tape.size(), i + chunk));
    ASSERT_TRUE(
        server
            ->OnBytes(peer->session_id,
                      EncodeElementsFrame(batch, /*origin_us=*/1000))
            .ok());
    std::string drained;
    ASSERT_TRUE(peer->client->TryReceive(&drained).ok());  // feedback
  }
}

TEST(PartitionedServerTest, MergeThreadsOneMatchesDirectAlgorithmByteForByte) {
  // The acceptance guard for the default path: a merge_threads=1 server
  // must emit exactly the elements the plain single-threaded algorithm
  // emits for the same delivery order — not just an equivalent TDB.
  const LogicalHistory history = ClosedHistory(7);
  VariantOptions variant_options;
  variant_options.disorder_fraction = 0.25;
  variant_options.split_probability = 0.2;
  variant_options.seed = 71;
  const ElementSequence tape = GeneratePhysicalVariant(history,
                                                       variant_options);

  CollectingSink reference_out;
  std::unique_ptr<MergeAlgorithm> reference = CreateMergeAlgorithm(
      MergeVariant::kLMR4, /*num_streams=*/1, &reference_out,
      MergePolicy::Default());
  ASSERT_TRUE(reference
                  ->ProcessBatch(0, std::span<const StreamElement>(
                                        tape.data(), tape.size()))
                  .ok());

  MergeServerOptions options;
  options.variant = MergeVariant::kLMR4;
  options.merge_threads = 1;
  MergeServer server(options);
  CollectingSink merged;
  server.AddOutputSink(&merged);
  TestPeer pub = ConnectPeer(&server, "solo");
  PublisherHandshake(&server, &pub, "solo");
  PublishAll(&server, &pub, tape);
  server.Flush();

  EXPECT_EQ(merged.elements(), reference_out.elements());
  EXPECT_FALSE(merged.elements().empty());
  const MergeOutputStats stats = server.merge_stats();
  EXPECT_EQ(stats.inserts_out, reference->stats().inserts_out);
  EXPECT_EQ(stats.adjusts_out, reference->stats().adjusts_out);
  EXPECT_EQ(stats.stables_out, reference->stats().stables_out);
}

TEST(PartitionedServerTest, PartitionedServerConvergesAcrossPublishers) {
  const LogicalHistory history = ClosedHistory(11);
  const Timestamp closing = history.stable_times.back();
  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < 3; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.2;
    options.split_probability = 0.25;
    options.seed = 110 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }

  MergeServerOptions options;
  options.variant = MergeVariant::kLMR4;
  options.merge_threads = 3;
  MergeServer server(options);
  CollectingSink merged;
  server.AddOutputSink(&merged);

  std::vector<TestPeer> peers;
  for (int s = 0; s < 3; ++s) {
    peers.push_back(ConnectPeer(&server, "replica-" + std::to_string(s)));
    const WelcomeMessage welcome = PublisherHandshake(
        &server, &peers.back(), "replica-" + std::to_string(s));
    ASSERT_EQ(welcome.stream_id, s);
    EXPECT_NE(welcome.algorithm_case, kUnknownAlgorithmCase);
  }
  // Interleave the replicas element-wise so every shard sees redundant,
  // disordered delivery from several streams.
  size_t cursor[3] = {0, 0, 0};
  bool any = true;
  while (any) {
    any = false;
    for (int s = 0; s < 3; ++s) {
      const ElementSequence& tape = replicas[static_cast<size_t>(s)];
      size_t& i = cursor[static_cast<size_t>(s)];
      if (i >= tape.size()) continue;
      const size_t end = std::min(tape.size(), i + 7);
      ElementSequence batch(tape.begin() + static_cast<int64_t>(i),
                            tape.begin() + static_cast<int64_t>(end));
      ASSERT_TRUE(server
                      .OnBytes(peers[static_cast<size_t>(s)].session_id,
                               EncodeElementsFrame(batch, /*origin_us=*/1000))
                      .ok());
      i = end;
      any = true;
    }
  }
  server.Flush();

  EXPECT_EQ(server.output_stable(), closing);
  StreamValidator validator;
  ASSERT_TRUE(validator.ConsumeAll(merged.elements()).ok());
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(RenderInOrder(history))));

  // The per-input table aggregates across shards: at quiesce every shard
  // has consumed every broadcast stable, so the min-rule stable_point
  // equals each input's real frontier.
  const StatsResponseMessage stats = server.StatsSnapshot();
  ASSERT_EQ(stats.inputs.size(), 3u);
  for (const StatsInputRow& row : stats.inputs) {
    EXPECT_EQ(row.stable_point, closing);
    EXPECT_TRUE(row.active);
  }
  // First-delivery-wins: contributions across inputs sum to the merged TDB
  // size regardless of sharding.
  int64_t contributed = 0;
  for (const StatsInputRow& row : stats.inputs) {
    contributed += row.contributed;
  }
  EXPECT_EQ(contributed, stats.output_inserts);
  // The registry reports the shard topology.
  EXPECT_EQ(server.MetricsSnapshot().Value("merge.shards"), 3);
}

TEST(PartitionedServerTest, PartitionedSubscriberSeesExactlyTheMergedOutput) {
  const LogicalHistory history = ClosedHistory(13, /*n=*/150);
  VariantOptions variant_options;
  variant_options.disorder_fraction = 0.3;
  variant_options.seed = 131;
  const ElementSequence tape = GeneratePhysicalVariant(history,
                                                       variant_options);

  MergeServerOptions options;
  options.variant = MergeVariant::kLMR4;
  options.merge_threads = 2;
  MergeServer server(options);
  CollectingSink merged;
  server.AddOutputSink(&merged);

  TestPeer sub = ConnectPeer(&server, "sub");
  HelloMessage sub_hello;
  sub_hello.role = PeerRole::kSubscriber;
  ASSERT_TRUE(
      server.OnBytes(sub.session_id, EncodeHelloFrame(sub_hello)).ok());
  (void)sub.DrainFrames();  // WELCOME

  TestPeer pub = ConnectPeer(&server, "pub");
  PublisherHandshake(&server, &pub, "pub");
  PublishAll(&server, &pub, tape);
  server.Flush();

  PayloadDictDecoder dict;
  ElementSequence received;
  for (const Frame& frame : sub.DrainFrames()) {
    switch (frame.type) {
      case FrameType::kElement: {
        StreamElement element;
        ASSERT_TRUE(DecodeElementPayload(frame.payload, &element).ok());
        received.push_back(std::move(element));
        break;
      }
      case FrameType::kElements: {
        ElementSequence batch;
        ASSERT_TRUE(DecodeElementsPayload(frame.payload, &batch).ok());
        for (StreamElement& element : batch) {
          received.push_back(std::move(element));
        }
        break;
      }
      case FrameType::kPayloadDef: {
        PayloadDefMessage def;
        ASSERT_TRUE(DecodePayloadDefPayload(frame.payload, &def).ok());
        ASSERT_TRUE(dict.Define(def.id, std::move(def.payload)).ok());
        break;
      }
      case FrameType::kElementsDict: {
        ElementSequence batch;
        int64_t origin_us = 0;
        ASSERT_TRUE(
            DecodeElementsDictPayload(frame.payload, dict, &batch, &origin_us)
                .ok());
        for (StreamElement& element : batch) {
          received.push_back(std::move(element));
        }
        break;
      }
      default:
        break;
    }
  }
  EXPECT_EQ(received, merged.elements());
  EXPECT_FALSE(received.empty());
}

// Requests a checkpoint through a standby session and returns the parsed
// CUT_CERT plus the reassembled blob.
void RequestCheckpoint(MergeServer* server, TestPeer* standby,
                       CutCertMessage* cut, std::string* blob) {
  ASSERT_TRUE(
      server->OnBytes(standby->session_id, EncodeCheckpointRequestFrame())
          .ok());
  bool have_cert = false;
  uint32_t chunks = 0;
  for (const Frame& frame : standby->DrainFrames()) {
    if (frame.type == FrameType::kCutCert) {
      ASSERT_TRUE(DecodeCutCert(frame.payload, cut).ok());
      have_cert = true;
      continue;
    }
    if (frame.type == FrameType::kCheckpointChunk) {
      ASSERT_TRUE(have_cert);
      CheckpointChunkMessage chunk;
      ASSERT_TRUE(DecodeCheckpointChunk(frame.payload, &chunk).ok());
      ASSERT_EQ(chunk.index, chunks);
      blob->append(chunk.bytes);
      ++chunks;
    }
  }
  ASSERT_TRUE(have_cert);
  ASSERT_EQ(chunks, cut->chunk_count);
  ASSERT_EQ(blob->size(), cut->checkpoint_bytes);
}

TEST(PartitionedServerTest, PartitionedCheckpointCertifiesEveryShard) {
  const LogicalHistory history = ClosedHistory(17);
  VariantOptions variant_options;
  variant_options.disorder_fraction = 0.2;
  variant_options.seed = 171;
  const ElementSequence tape = GeneratePhysicalVariant(history,
                                                       variant_options);

  MergeServerOptions options;
  options.variant = MergeVariant::kLMR4;
  options.merge_threads = 4;
  MergeServer server(options);

  TestPeer standby = ConnectPeer(&server, "standby");
  HelloMessage standby_hello;
  standby_hello.role = PeerRole::kStandby;
  standby_hello.peer_name = "standby";
  ASSERT_TRUE(
      server.OnBytes(standby.session_id, EncodeHelloFrame(standby_hello))
          .ok());
  (void)standby.DrainFrames();  // WELCOME

  TestPeer pub = ConnectPeer(&server, "pub");
  PublisherHandshake(&server, &pub, "pub");
  PublishAll(&server, &pub, tape);
  server.Flush();

  CutCertMessage cut;
  std::string blob;
  RequestCheckpoint(&server, &standby, &cut, &blob);
  ASSERT_TRUE(cut.has_state);
  EXPECT_EQ(cut.cert.variant, MergeVariant::kLMR4);

  // The certificate names all four shard frontiers; the output stable
  // point is their minimum, and at quiesce all frontiers agree (every
  // shard consumed every broadcast stable).
  ASSERT_EQ(cut.cert.shard_stables.size(), 4u);
  Timestamp min_stable = cut.cert.shard_stables[0];
  for (const Timestamp t : cut.cert.shard_stables) {
    min_stable = std::min(min_stable, t);
  }
  EXPECT_EQ(cut.cert.output_stable, min_stable);
  EXPECT_EQ(cut.cert.output_stable, server.output_stable());

  // The blob is an LMPC container of four ordinary checkpoints; the cut
  // certificate rides in shard 0's blob.
  ASSERT_TRUE(IsPartitionedCheckpoint(blob));
  std::vector<std::string> shard_blobs;
  ASSERT_TRUE(SplitPartitionedCheckpoint(blob, &shard_blobs).ok());
  ASSERT_EQ(shard_blobs.size(), 4u);
  CheckpointInfo info;
  ASSERT_TRUE(InspectCheckpoint(shard_blobs[0], &info).ok());
  EXPECT_EQ(info.flags, kCheckpointFlagCutCertificate);
  replica::CutCertificate embedded;
  ASSERT_TRUE(
      replica::ParseCutCertificate(info.cut_certificate, &embedded).ok());
  EXPECT_EQ(embedded.shard_stables, cut.cert.shard_stables);

  // A fresh server adopts the partitioned blob, reconstructing the same
  // shard topology at the same frontier.
  MergeServer adopted;  // default options: shard count comes from the blob
  ASSERT_TRUE(adopted.AdoptCheckpoint(blob, cut.cert).ok());
  EXPECT_EQ(adopted.output_stable(), cut.cert.output_stable);
  EXPECT_STREQ(adopted.algorithm_name(), server.algorithm_name());

  // A certificate whose shard frontier does not match the restored state
  // must be refused — restoring against it would fabricate stable history.
  MergeServer rejecting;
  replica::CutCertificate tampered = cut.cert;
  tampered.shard_stables[1] += 1;
  const Status status = rejecting.AdoptCheckpoint(blob, tampered);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("shard 1"), std::string::npos);
}

TEST(PartitionedServerTest, ShardStablesRoundTripAndStayOptional) {
  replica::CutCertificate cert;
  cert.variant = MergeVariant::kLMR3Plus;
  cert.output_stable = 41;
  cert.elements_sent_at_cut = 9;
  replica::CutInputState in;
  in.stream_id = 0;
  in.active = true;
  in.stable_point = 41;
  in.elements_in = 100;
  cert.inputs.push_back(in);

  // Without shard_stables the encoding is the pre-partitioned layout and
  // parses back with the field empty.
  const std::string single = replica::SerializeCutCertificate(cert);
  replica::CutCertificate parsed;
  ASSERT_TRUE(replica::ParseCutCertificate(single, &parsed).ok());
  EXPECT_TRUE(parsed.shard_stables.empty());
  EXPECT_EQ(parsed.output_stable, 41);

  // With shard_stables the trailing section round-trips.
  cert.shard_stables = {41, 55, 47};
  const std::string partitioned = replica::SerializeCutCertificate(cert);
  ASSERT_GT(partitioned.size(), single.size());
  ASSERT_TRUE(replica::ParseCutCertificate(partitioned, &parsed).ok());
  EXPECT_EQ(parsed.shard_stables, cert.shard_stables);
}

}  // namespace
}  // namespace lmerge::net
