// Framing robustness: the event-loop transport delivers whatever byte
// boundaries the kernel felt like, so the server's frame reassembly must be
// byte-boundary-agnostic — one byte at a time, splits in the middle of a
// length prefix, arbitrary seeded fragmentation.  A peer that goes quiet
// *mid-frame* is indistinguishable from a stalled-forever write and is
// reaped by the ServeLoop idle sweep (net.loop.idle_timeouts); a peer that
// is merely quiet between frames is a healthy idle session and must not be.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/loopback.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "stream/sink.h"
#include "test_util.h"

namespace lmerge::net {
namespace {

using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

ElementSequence SmallTape() {
  ElementSequence tape;
  for (int i = 0; i < 40; ++i) {
    tape.push_back(Ins("frag-" + std::to_string(i), i + 1, i + 100));
    if (i % 10 == 9) tape.push_back(Stb(i - 5));
  }
  return tape;
}

// Publishes `tape` into a fresh server, delivering the encoded bytes in
// chunks produced by `next_chunk(remaining)`; returns the merged output.
ElementSequence PublishFragmented(
    const ElementSequence& tape,
    const std::function<size_t(size_t)>& next_chunk) {
  MergeServer server;
  CollectingSink merged;
  server.AddOutputSink(&merged);

  auto [client, server_end] = CreateLoopbackPair();
  const int session = server.OnConnect(server_end.get());

  HelloMessage hello;
  hello.role = PeerRole::kPublisher;
  hello.peer_name = "fragmented";
  std::string bytes = EncodeHelloFrame(hello);
  for (size_t i = 0; i < tape.size(); i += 8) {
    const ElementSequence batch(
        tape.begin() + static_cast<ElementSequence::difference_type>(i),
        tape.begin() + static_cast<ElementSequence::difference_type>(
                           std::min(i + 8, tape.size())));
    bytes += EncodeElementsFrame(batch, /*origin_us=*/1000);
  }

  size_t offset = 0;
  while (offset < bytes.size()) {
    const size_t n =
        std::min(next_chunk(bytes.size() - offset), bytes.size() - offset);
    EXPECT_TRUE(server.OnBytes(session, bytes.substr(offset, n)).ok());
    offset += n;
    // Keep the response queue (WELCOME/FEEDBACK) drained.
    std::string discard;
    EXPECT_TRUE(client->TryReceive(&discard).ok());
  }
  server.Flush();
  server.OnDisconnect(session);
  return merged.elements();
}

TEST(FramingRobustnessTest, ByteAtATimeDeliveryDecodesIdentically) {
  const ElementSequence tape = SmallTape();
  const ElementSequence whole =
      PublishFragmented(tape, [](size_t) { return size_t{1} << 20; });
  const ElementSequence trickled =
      PublishFragmented(tape, [](size_t) { return size_t{1}; });
  EXPECT_EQ(trickled.size(), whole.size());
  EXPECT_EQ(trickled, whole);
}

TEST(FramingRobustnessTest, SplitWritesMidFrameDecodeIdentically) {
  const ElementSequence tape = SmallTape();
  const ElementSequence whole =
      PublishFragmented(tape, [](size_t) { return size_t{1} << 20; });
  // Fixed awkward split sizes: 2 and 3 land inside the u32 length prefix,
  // 7 straddles the type byte and payload.
  for (const size_t chunk : {size_t{2}, size_t{3}, size_t{7}, size_t{13}}) {
    const ElementSequence split =
        PublishFragmented(tape, [chunk](size_t) { return chunk; });
    EXPECT_EQ(split, whole) << "chunk size " << chunk;
  }
}

// Seeded fuzz entry: random fragmentation, many rounds.  Any divergence
// from the contiguous decode is a reassembly bug; the seed is printed so a
// failure reproduces exactly.
TEST(FramingRobustnessTest, FuzzedFragmentationDecodesIdentically) {
  const ElementSequence tape = SmallTape();
  const ElementSequence whole =
      PublishFragmented(tape, [](size_t) { return size_t{1} << 20; });
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const ElementSequence fuzzed = PublishFragmented(tape, [&rng](size_t) {
      // Mostly tiny chunks, occasionally a large one.
      std::uniform_int_distribution<size_t> dist(1, 9);
      const size_t n = dist(rng);
      return n == 9 ? size_t{4096} : n;
    });
    EXPECT_EQ(fuzzed, whole);
  }
}

// A peer that stops mid-frame holds reassembly state forever; the ServeLoop
// idle sweep must reap it (and count it) while leaving a frame-aligned idle
// session alone.
TEST(FramingRobustnessTest, StallMidFrameHitsIdleTimeout) {
  const int64_t timeouts_before = obs::MetricsRegistry::Global()
                                      .Snapshot()
                                      .Value("net.loop.idle_timeouts");

  MergeServer server;
  NullSink sink;
  server.AddOutputSink(&sink);
  LoopbackListener listener;

  ServeLoopOptions loop_options;
  loop_options.drain_publishers = 1;
  loop_options.idle_timeout_ms = 50;
  std::thread serve([&] { ServeLoop(&listener, &server, loop_options); });

  // A healthy subscriber: handshakes, then goes quiet at a frame boundary.
  std::unique_ptr<Connection> idle_conn = listener.Connect("idle-sub");
  ASSERT_NE(idle_conn, nullptr);
  HelloMessage sub_hello;
  sub_hello.role = PeerRole::kSubscriber;
  sub_hello.peer_name = "idle-sub";
  ASSERT_TRUE(idle_conn->Send(EncodeHelloFrame(sub_hello)).ok());

  // The staller: sends a truncated prefix of a legitimate frame, then
  // nothing (seeded prefix lengths, always mid-frame).
  std::mt19937_64 rng(7);
  const std::string frame = EncodeElementFrame(Ins("stall", 1, 100));
  std::uniform_int_distribution<size_t> dist(1, frame.size() - 1);
  std::unique_ptr<Connection> stalled = listener.Connect("staller");
  ASSERT_NE(stalled, nullptr);
  ASSERT_TRUE(stalled->Send(frame.substr(0, dist(rng))).ok());

  // The sweep runs on the idle-timeout cadence; the stalled session is
  // closed from the server side, which surfaces as EOF on our end.
  std::string discard;
  char byte;
  size_t received = 1;
  Status status = Status::Ok();
  while (status.ok() && received != 0) {
    status = stalled->Receive(&byte, 1, &received);
  }

  // Publish one tape so the loop drains and exits.
  std::unique_ptr<Connection> pub_conn = listener.Connect("publisher");
  ASSERT_NE(pub_conn, nullptr);
  PublisherClient publisher(std::move(pub_conn));
  WelcomeMessage welcome;
  ASSERT_TRUE(publisher
                  .Handshake(StreamProperties(), kMinTimestamp, "publisher",
                             &welcome)
                  .ok());
  ASSERT_TRUE(publisher.PublishBatch(SmallTape()).ok());
  ASSERT_TRUE(publisher.Finish("done").ok());
  serve.join();

  const int64_t timeouts_after = obs::MetricsRegistry::Global()
                                     .Snapshot()
                                     .Value("net.loop.idle_timeouts");
  EXPECT_EQ(timeouts_after - timeouts_before, 1);

  // The frame-aligned idle subscriber was NOT reaped mid-run: it received
  // its WELCOME plus the published fan-out rather than an early EOF.
  ASSERT_TRUE(idle_conn->TryReceive(&discard).ok());
  EXPECT_FALSE(discard.empty());
}

}  // namespace
}  // namespace lmerge::net
