// End-to-end over real sockets: ServeLoop on an ephemeral localhost port,
// PublisherClient / SubscriberClient sessions, crash-and-rejoin.  Timing
// here is real, so assertions are on final outcomes only; the deterministic
// session logic is covered by server_loopback_test.cc.

#include "net/tcp.h"

#include <gtest/gtest.h>

#include <thread>

#include "net/client.h"
#include "net/server.h"
#include "stream/validate.h"
#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge::net {
namespace {

using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

ElementSequence SmallTape() {
  ElementSequence tape;
  for (int i = 0; i < 50; ++i) {
    tape.push_back(Ins("event-" + std::to_string(i), i + 1, i + 100));
    if (i % 10 == 9) tape.push_back(Stb(i - 5));
  }
  tape.push_back(Stb(1000));
  return tape;
}

TEST(TcpTest, ConnectSendReceiveClose) {
  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(TcpListen(0, &listener).ok());
  ASSERT_GT(listener->port(), 0);

  std::unique_ptr<Connection> server_side;
  std::thread accepter(
      [&] { ASSERT_TRUE(listener->Accept(&server_side).ok()); });
  std::unique_ptr<Connection> client;
  ASSERT_TRUE(TcpConnect("127.0.0.1", listener->port(), &client).ok());
  accepter.join();
  ASSERT_NE(server_side, nullptr);

  ASSERT_TRUE(client->Send("ping").ok());
  char buffer[16];
  size_t received = 0;
  ASSERT_TRUE(server_side->Receive(buffer, sizeof(buffer), &received).ok());
  EXPECT_EQ(std::string(buffer, received), "ping");

  // Close on one side surfaces as EOF on the other.
  client->Close();
  received = 99;
  ASSERT_TRUE(server_side->Receive(buffer, sizeof(buffer), &received).ok());
  EXPECT_EQ(received, 0u);
  listener->Close();
}

TEST(TcpTest, PublisherSubscriberRoundTripThroughServeLoop) {
  MergeServer server;
  CollectingSink merged;
  server.AddOutputSink(&merged);
  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(TcpListen(0, &listener).ok());
  const int port = listener->port();

  ServeLoopOptions loop_options;
  loop_options.drain_publishers = 2;
  std::thread serve(
      [&] { ServeLoop(listener.get(), &server, loop_options); });

  // Subscriber connects first so it sees the entire merged stream.
  std::unique_ptr<Connection> sub_conn;
  ASSERT_TRUE(TcpConnect("127.0.0.1", port, &sub_conn).ok());
  SubscriberClient subscriber(std::move(sub_conn));
  ASSERT_TRUE(subscriber.Handshake("sub").ok());
  CollectingSink subscribed;
  std::thread consume(
      [&] { ASSERT_TRUE(subscriber.Consume(&subscribed).ok()); });

  const ElementSequence tape = SmallTape();
  auto publish = [&](const std::string& name) {
    std::unique_ptr<Connection> conn;
    ASSERT_TRUE(TcpConnect("127.0.0.1", port, &conn).ok());
    PublisherClient publisher(std::move(conn));
    WelcomeMessage welcome;
    ASSERT_TRUE(publisher
                    .Handshake(StreamProperties(), kMinTimestamp, name,
                               &welcome)
                    .ok());
    EXPECT_GE(welcome.stream_id, 0);
    ASSERT_TRUE(publisher.PublishBatch(tape).ok());
    ASSERT_TRUE(publisher.Finish("tape complete").ok());
  };
  std::thread pub_a([&] { publish("replica-a"); });
  std::thread pub_b([&] { publish("replica-b"); });
  pub_a.join();
  pub_b.join();

  serve.join();  // drain_publishers=2: returns once both replicas are done
  consume.join();

  // Both replicas carried the same logical stream; the merged output must
  // be a single valid copy of it, and the subscriber saw exactly the
  // merged output.
  StreamValidator validator;
  ASSERT_TRUE(validator.ConsumeAll(merged.elements()).ok());
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(tape)));
  EXPECT_EQ(subscribed.elements(), merged.elements());
}

TEST(TcpTest, CrashedReplicaCanRejoinWithoutCorruptingOutput) {
  MergeServer server;
  CollectingSink merged;
  server.AddOutputSink(&merged);
  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(TcpListen(0, &listener).ok());
  const int port = listener->port();

  // Three publisher connections total: a survivor, a replica that crashes
  // partway (connection dropped, no BYE), and its rejoin replaying the full
  // tape from the start.
  ServeLoopOptions loop_options;
  loop_options.drain_publishers = 3;
  std::thread serve(
      [&] { ServeLoop(listener.get(), &server, loop_options); });

  const ElementSequence tape = SmallTape();

  std::thread survivor([&] {
    std::unique_ptr<Connection> conn;
    ASSERT_TRUE(TcpConnect("127.0.0.1", port, &conn).ok());
    PublisherClient publisher(std::move(conn));
    ASSERT_TRUE(
        publisher.Handshake(StreamProperties(), kMinTimestamp, "survivor")
            .ok());
    ASSERT_TRUE(publisher.PublishBatch(tape).ok());
    ASSERT_TRUE(publisher.Finish().ok());
  });

  std::thread crasher([&] {
    std::unique_ptr<Connection> conn;
    ASSERT_TRUE(TcpConnect("127.0.0.1", port, &conn).ok());
    PublisherClient publisher(std::move(conn));
    ASSERT_TRUE(
        publisher.Handshake(StreamProperties(), kMinTimestamp, "crasher")
            .ok());
    ElementSequence half(tape.begin(),
                         tape.begin() +
                             static_cast<ElementSequence::difference_type>(
                                 tape.size() / 2));
    ASSERT_TRUE(publisher.PublishBatch(half).ok());
    publisher.connection()->Close();  // vanish without BYE
  });
  survivor.join();
  crasher.join();

  std::thread rejoiner([&] {
    std::unique_ptr<Connection> conn;
    ASSERT_TRUE(TcpConnect("127.0.0.1", port, &conn).ok());
    PublisherClient publisher(std::move(conn));
    ASSERT_TRUE(
        publisher.Handshake(StreamProperties(), kMinTimestamp, "rejoin")
            .ok());
    ASSERT_TRUE(publisher.PublishBatch(tape).ok());
    ASSERT_TRUE(publisher.Finish().ok());
  });
  rejoiner.join();
  serve.join();

  StreamValidator validator;
  ASSERT_TRUE(validator.ConsumeAll(merged.elements()).ok());
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(tape)));
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port, then close it so nothing is listening there.
  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(TcpListen(0, &listener).ok());
  const int port = listener->port();
  listener->Close();
  listener.reset();
  std::unique_ptr<Connection> conn;
  EXPECT_FALSE(TcpConnect("127.0.0.1", port, &conn).ok());
}

}  // namespace
}  // namespace lmerge::net
