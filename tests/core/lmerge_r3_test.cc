// LMergeR3 ("LMR3+") — the in2t-based algorithm for disordered streams with
// revisions and the (Vs, payload) key property.

#include "core/lmerge_r3.h"

#include <gtest/gtest.h>

#include "temporal/compat.h"
#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

// Table I's two physical presentations of {A [6,12), B [8,10)}.
ElementSequence Phy1() {
  return {Ins("B", 8, kInfinity), Ins("A", 6, 12),
          Adj("B", 8, kInfinity, 10), Stb(11), Stb(1000)};
}
ElementSequence Phy2() {
  return {Ins("A", 6, 7), Ins("B", 8, 15), Adj("A", 6, 7, 12),
          Adj("B", 8, 15, 10), Stb(1000)};
}

TEST(LMergeR3Test, TableOneMergeProducesEquivalentOutput) {
  CollectingSink collected;
  ValidatingSink sink(StreamProperties::None(), &collected);
  LMergeR3 merge(2, &sink);
  // Deliver Phy2 then Phy1 fully (a legal interleaving).
  for (const auto& e : Phy2()) ASSERT_TRUE(merge.OnElement(1, e).ok());
  for (const auto& e : Phy1()) ASSERT_TRUE(merge.OnElement(0, e).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_TRUE(out.Equals(Tdb::Reconstitute(Phy1())));
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 6, 12)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("B"), 8, 10)), 1);
  EXPECT_EQ(merge.index_node_count(), 0);  // everything frozen and purged
}

TEST(LMergeR3Test, SectionOnePunctuationScenario) {
  // The introduction's pitfall: output followed Phy2's a(A,6,7) and
  // a(B,8,15); then Phy1 reaches f(11).  A correct LMerge must adjust both
  // events *before* propagating the stable — A's end must still be able to
  // reach 12, B's to come down to 10.
  CollectingSink collected;
  LMergeR3 merge(2, &collected);
  const ElementSequence phy2 = Phy2();
  ASSERT_TRUE(merge.OnElement(1, phy2[0]).ok());  // a(A, 6, 7)
  ASSERT_TRUE(merge.OnElement(1, phy2[1]).ok());  // a(B, 8, 15)
  for (const auto& e : Phy1()) ASSERT_TRUE(merge.OnElement(0, e).ok());
  // After Phy1's f(11): A must end at 12, B at 10, in the output TDB.
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 6, 12)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("B"), 8, 10)), 1);
  EXPECT_EQ(out.stable_point(), 1000);
  // The late m(A,6,12) from Phy2 targets an already-frozen event: ignored.
  ASSERT_TRUE(merge.OnElement(1, phy2[2]).ok());
  ASSERT_TRUE(merge.OnElement(1, phy2[3]).ok());
  ASSERT_TRUE(merge.OnElement(1, phy2[4]).ok());
}

TEST(LMergeR3Test, OutputCompatibleAfterEveryStable) {
  // Replay with compatibility verified against the leader at each stable.
  const ElementSequence phy1 = Phy1();
  const ElementSequence phy2 = Phy2();
  CollectingSink collected;
  LMergeR3 merge(2, &collected);
  Tdb in_tdb[2];
  auto deliver = [&](int s, const StreamElement& e) {
    ASSERT_TRUE(merge.OnElement(s, e).ok());
    ASSERT_TRUE(in_tdb[s].Apply(e).ok());
    if (e.is_stable()) {
      const Tdb out = Tdb::Reconstitute(collected.elements());
      const Tdb& leader = in_tdb[s].stable_point() >=
                                  in_tdb[1 - s].stable_point()
                              ? in_tdb[s]
                              : in_tdb[1 - s];
      const Status compat = CheckR3TrackedCompatibility(leader, out);
      EXPECT_TRUE(compat.ok()) << compat.ToString();
      const Status full =
          CheckR3Compatibility({&in_tdb[0], &in_tdb[1]}, out);
      EXPECT_TRUE(full.ok()) << full.ToString();
    }
  };
  // Interleave: phy2 first two, all phy1, rest of phy2.
  deliver(1, phy2[0]);
  deliver(1, phy2[1]);
  for (const auto& e : phy1) deliver(0, e);
  for (size_t i = 2; i < phy2.size(); ++i) deliver(1, phy2[i]);
}

TEST(LMergeR3Test, TheoremOneNonChattiness) {
  // Algorithm R3 outputs no more insert()+adjust() elements than the total
  // number of insert() elements received, and no more stable() elements
  // than received.
  CollectingSink collected;
  LMergeR3 merge(2, &collected);
  for (const auto& e : Phy2()) ASSERT_TRUE(merge.OnElement(1, e).ok());
  for (const auto& e : Phy1()) ASSERT_TRUE(merge.OnElement(0, e).ok());
  const auto& stats = merge.stats();
  EXPECT_LE(stats.inserts_out + stats.adjusts_out, stats.inserts_in);
  EXPECT_LE(stats.stables_out, stats.stables_in);
}

TEST(LMergeR3Test, LateInsertBehindStableDropped) {
  CollectingSink collected;
  LMergeR3 merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 50)).ok());
  ASSERT_TRUE(merge.OnElement(0, Stb(100)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("Z", 7, 60)).ok());  // missed its window
  const auto counts = CountKinds(collected.elements());
  EXPECT_EQ(counts.inserts, 1);
  EXPECT_EQ(merge.stats().dropped, 1);
}

TEST(LMergeR3Test, MissingElementRetractedWhenDriverLacksIt) {
  // Sec. V-C: the output drops an element if the stream that advances
  // MaxStable beyond its Vs never produced it.
  CollectingSink collected;
  LMergeR3 merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("GHOST", 5, 50)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("REAL", 6, 70)).ok());
  // Stream 1 (which lacks GHOST) drives stability past both Vs values.
  ASSERT_TRUE(merge.OnElement(1, Stb(10)).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("GHOST"), 5, 50)), 0);
  EXPECT_EQ(out.EndTimesFor(VsPayload(6, Row::OfString("REAL"))).size(), 1u);
}

TEST(LMergeR3Test, AdjustsAbsorbedUntilStableLazyPolicy) {
  CollectingSink collected;
  LMergeR3 merge(1, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(0, Adj("A", 5, 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(0, Adj("A", 5, 20, 30)).ok());
  EXPECT_EQ(CountKinds(collected.elements()).adjusts, 0);  // absorbed
  // A stable that freezes only the start still defers reconciliation: both
  // the output end (10) and the input end (30) remain adjustable.
  ASSERT_TRUE(merge.OnElement(0, Stb(6)).ok());
  EXPECT_EQ(CountKinds(collected.elements()).adjusts, 0);
  // Once the stable point would freeze the divergence, exactly one
  // reconciling adjust is emitted (10 -> 30 directly, not 10->20->30).
  ASSERT_TRUE(merge.OnElement(0, Stb(40)).ok());
  EXPECT_EQ(CountKinds(collected.elements()).adjusts, 1);
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 30)), 1);
}

TEST(LMergeR3Test, EagerPolicyReflectsAdjustsImmediately) {
  CollectingSink collected;
  LMergeR3 merge(1, &collected, MergePolicy::Eager());
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(0, Adj("A", 5, 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(0, Adj("A", 5, 20, 30)).ok());
  EXPECT_EQ(CountKinds(collected.elements()).adjusts, 2);  // chatty
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 30)), 1);
}

TEST(LMergeR3Test, WaitHalfFrozenPolicyDelaysEmission) {
  CollectingSink collected;
  LMergeR3 merge(2, &collected, MergePolicy::Conservative());
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 50)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 50)).ok());
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 0);  // held back
  ASSERT_TRUE(merge.OnElement(0, Stb(6)).ok());  // A becomes half frozen
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 1);
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 50)), 1);
}

TEST(LMergeR3Test, FractionThresholdPolicyWaitsForQuorum) {
  MergePolicy policy;
  policy.insert_policy = InsertPolicy::kFractionThreshold;
  policy.insert_fraction = 0.6;  // 2 of 3 streams
  CollectingSink collected;
  LMergeR3 merge(3, &collected, policy);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 50)).ok());
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 0);
  ASSERT_TRUE(merge.OnElement(2, Ins("A", 5, 50)).ok());  // quorum reached
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 1);
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 50)).ok());  // duplicate
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 1);
}

TEST(LMergeR3Test, LeadingStreamOnlyPolicy) {
  MergePolicy policy;
  policy.insert_policy = InsertPolicy::kLeadingStreamOnly;
  CollectingSink collected;
  LMergeR3 merge(2, &collected, policy);
  // Stream 1 leads (has the max stable point).
  ASSERT_TRUE(merge.OnElement(1, Stb(3)).ok());
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 50)).ok());   // non-leader: held
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 0);
  ASSERT_TRUE(merge.OnElement(1, Ins("B", 6, 60)).ok());   // leader: emitted
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 1);
  // When the leader's stable passes A's Vs, A (present on stream 1?) — it is
  // not, so A is dropped; B survives.
  ASSERT_TRUE(merge.OnElement(1, Stb(10)).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 50)), 0);
  EXPECT_EQ(out.EndTimesFor(VsPayload(6, Row::OfString("B"))).size(), 1u);
}

TEST(LMergeR3Test, IndexPurgedAndMemoryReclaimed) {
  CollectingSink collected;
  LMergeR3 merge(2, &collected);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        merge.OnElement(0, StreamElement::Insert(Row::OfInt(i), 10 + i,
                                                 20 + i))
            .ok());
  }
  EXPECT_EQ(merge.index_node_count(), 100);
  const int64_t loaded = merge.StateBytes();
  ASSERT_TRUE(merge.OnElement(0, Stb(1000)).ok());
  EXPECT_EQ(merge.index_node_count(), 0);
  EXPECT_LT(merge.StateBytes(), loaded);
}

TEST(LMergeR3Test, PayloadSharedAcrossStreams) {
  // in2t stores the payload once per node no matter how many inputs carry
  // the event: state must grow only marginally with replica count.
  const std::string blob(1000, 'x');
  CollectingSink sink2;
  CollectingSink sink8;
  LMergeR3 two(2, &sink2);
  LMergeR3 eight(8, &sink8);
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(two.OnElement(s, StreamElement::Insert(
                                       Row::OfIntAndString(i, blob), 10 + i,
                                       2000 + i))
                      .ok());
    }
  }
  for (int s = 0; s < 8; ++s) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(eight.OnElement(s, StreamElement::Insert(
                                         Row::OfIntAndString(i, blob),
                                         10 + i, 2000 + i))
                      .ok());
    }
  }
  // 4x the streams must cost far less than 4x the memory (payload shared).
  EXPECT_LT(eight.StateBytes(), two.StateBytes() * 2);
}

TEST(LMergeR3Test, InvalidInsertRejected) {
  CollectingSink collected;
  LMergeR3 merge(1, &collected);
  EXPECT_FALSE(merge.OnElement(0, Ins("A", 10, 5)).ok());  // Ve < Vs
  EXPECT_FALSE(merge.OnElement(0, Adj("A", 10, 12, 5)).ok());
}

TEST(LMergeR3Test, AdjustForUnknownNodeIgnored) {
  CollectingSink collected;
  LMergeR3 merge(1, &collected);
  ASSERT_TRUE(merge.OnElement(0, Adj("A", 5, 10, 20)).ok());
  EXPECT_EQ(collected.elements().size(), 0u);
}

TEST(LMergeR3Test, ThreeStreamsRandomInterleavings) {
  // The same two-event history under several random interleavings of three
  // divergent replicas always converges to the same TDB.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    CollectingSink collected;
    LMergeR3 merge(3, &collected);
    testing_util::InterleaveInto(&merge, {Phy1(), Phy2(), Phy1()}, seed);
    const Tdb out = Tdb::Reconstitute(collected.elements());
    EXPECT_TRUE(out.Equals(Tdb::Reconstitute(Phy1()))) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lmerge
