// LMergeOperator: attach/detach protocol (Sec. V-B) and feedback origin
// (Sec. V-D).

#include "core/lmerge_operator.h"

#include <gtest/gtest.h>

#include "operators/select.h"
#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(LMergeOperatorTest, BasicMergeThroughOperatorInterface) {
  LMergeOperator lm("lm", 2, MergeVariant::kLMR3Plus);
  CollectingSink sink;
  lm.AddSink(&sink);
  lm.Consume(0, Ins("A", 1, 10));
  lm.Consume(1, Ins("A", 1, 10));
  lm.Consume(0, Stb(20));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 1);
  EXPECT_EQ(lm.algorithm().max_stable(), 20);
}

TEST(LMergeOperatorTest, PropertyDrivenConstruction) {
  LMergeOperator lm("lm",
                    std::vector<StreamProperties>{
                        StreamProperties::Strongest(),
                        StreamProperties::Strongest()});
  EXPECT_EQ(lm.algorithm().algorithm_case(), AlgorithmCase::kR0);
}

TEST(LMergeOperatorTest, AttachAddsPort) {
  LMergeOperator lm("lm", 2, MergeVariant::kLMR3Plus);
  CollectingSink sink;
  lm.AddSink(&sink);
  lm.Consume(0, Ins("A", 1, 10));
  const int port = lm.AttachInput(/*join_time=*/0);
  EXPECT_EQ(port, 2);
  EXPECT_EQ(lm.input_count(), 3);
  lm.Consume(port, Ins("A", 1, 10));  // duplicate from the new replica
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 1);
}

TEST(LMergeOperatorTest, LateJoinerCannotDriveStabilityUntilJoined) {
  LMergeOperator lm("lm", 1, MergeVariant::kLMR3Plus);
  CollectingSink sink;
  lm.AddSink(&sink);
  lm.Consume(0, Ins("OLD", 5, 8));  // the joiner will never see this
  // Replica joins promising correctness from t=50 onward.
  const int port = lm.AttachInput(/*join_time=*/50);
  EXPECT_FALSE(lm.InputJoined(port));
  // Its stable(20) would wrongly freeze OLD's absence: held back.
  lm.Consume(port, Stb(20));
  EXPECT_EQ(CountKinds(sink.elements()).stables, 0);
  // The original stream stabilizes past the join time; the joiner is now
  // trustworthy.
  lm.Consume(0, Stb(60));
  EXPECT_TRUE(lm.InputJoined(port));
  lm.Consume(port, Stb(70));
  EXPECT_EQ(CountKinds(sink.elements()).stables, 2);
  // OLD survived (the joiner never contradicted it).
  const Tdb out = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("OLD"), 5, 8)), 1);
}

TEST(LMergeOperatorTest, DetachedInputIgnored) {
  LMergeOperator lm("lm", 2, MergeVariant::kLMR3Plus);
  CollectingSink sink;
  lm.AddSink(&sink);
  lm.Consume(0, Ins("A", 1, 10));
  lm.DetachInput(1);
  EXPECT_FALSE(lm.InputActive(1));
  lm.Consume(1, Ins("Z", 2, 10));  // from the corpse: dropped
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 1);
  EXPECT_EQ(lm.active_input_count(), 1);
}

TEST(LMergeOperatorTest, SurvivesFailureOfAllButOne) {
  // n-1 simultaneous failures: output continues from the last replica.
  LMergeOperator lm("lm", 3, MergeVariant::kLMR3Plus);
  CollectingSink sink;
  lm.AddSink(&sink);
  for (int s = 0; s < 3; ++s) lm.Consume(s, Ins("A", 1, 10));
  lm.DetachInput(0);
  lm.DetachInput(1);
  lm.Consume(2, Ins("B", 2, 10));
  lm.Consume(2, Stb(20));
  const Tdb out = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(out.EventCount(), 2);
  EXPECT_EQ(out.stable_point(), 20);
}

TEST(LMergeOperatorTest, FeedbackSentUpstreamOnStableAdvance) {
  UdfSelect upstream(
      "udf", [](const Row&) { return true; }, [](const Row&) { return 1; });
  LMergeOperator lm("lm", 2, MergeVariant::kLMR3Plus, MergePolicy::Default(),
                    /*feedback_enabled=*/true);
  upstream.AddDownstream(&lm, 0);
  NullSink sink;
  lm.AddSink(&sink);
  EXPECT_EQ(upstream.feedback_horizon(), kMinTimestamp);
  lm.Consume(1, Stb(42));  // stream 1 advances the merge's stable point
  EXPECT_EQ(upstream.feedback_horizon(), 42);
}

TEST(LMergeOperatorTest, NoFeedbackWhenDisabled) {
  UdfSelect upstream(
      "udf", [](const Row&) { return true; }, [](const Row&) { return 1; });
  LMergeOperator lm("lm", 2, MergeVariant::kLMR3Plus);
  upstream.AddDownstream(&lm, 0);
  NullSink sink;
  lm.AddSink(&sink);
  lm.Consume(1, Stb(42));
  EXPECT_EQ(upstream.feedback_horizon(), kMinTimestamp);
}

TEST(LMergeOperatorTest, ReattachAfterFailureRoundTrip) {
  // A replica detaches (failure) and re-attaches later with a join time; the
  // merged output never duplicates or loses events.
  LMergeOperator lm("lm", 2, MergeVariant::kLMR3Plus);
  CollectingSink sink;
  lm.AddSink(&sink);
  lm.Consume(0, Ins("A", 1, 5));
  lm.Consume(1, Ins("A", 1, 5));
  lm.DetachInput(1);
  lm.Consume(0, Ins("B", 10, 15));
  lm.Consume(0, Stb(20));
  // Restarted replica replays from its checkpoint: it regenerates B (already
  // merged) and new C, promising correctness from t=10.
  const int port = lm.AttachInput(/*join_time=*/10);
  lm.Consume(port, Ins("B", 10, 15));  // duplicate: absorbed
  lm.Consume(port, Ins("C", 25, 30));
  lm.Consume(port, Stb(40));
  const Tdb out = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 1, 5)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("B"), 10, 15)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("C"), 25, 30)), 1);
  EXPECT_EQ(out.stable_point(), 40);
}

TEST(LMergeOperatorTest, StateBytesDelegatesToAlgorithm) {
  LMergeOperator lm("lm", 2, MergeVariant::kLMR3Plus);
  NullSink sink;
  lm.AddSink(&sink);
  const int64_t empty = lm.StateBytes();
  lm.Consume(0, Ins("A", 1, 1000));
  EXPECT_GT(lm.StateBytes(), empty);
}

}  // namespace
}  // namespace lmerge
