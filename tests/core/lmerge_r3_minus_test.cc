// LMR3- baseline: same external behaviour as LMR3+ on the R3 workloads, but
// per-input indexes with duplicated payloads.

#include "core/lmerge_r3_minus.h"

#include <gtest/gtest.h>

#include "core/lmerge_r3.h"
#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::InterleaveInto;
using ::lmerge::testing_util::Stb;

ElementSequence Phy1() {
  return {Ins("B", 8, kInfinity), Ins("A", 6, 12),
          Adj("B", 8, kInfinity, 10), Stb(11), Stb(1000)};
}
ElementSequence Phy2() {
  return {Ins("A", 6, 7), Ins("B", 8, 15), Adj("A", 6, 7, 12),
          Adj("B", 8, 15, 10), Stb(1000)};
}

TEST(LMergeR3MinusTest, TableOneMerge) {
  CollectingSink collected;
  LMergeR3Minus merge(2, &collected);
  for (const auto& e : Phy2()) ASSERT_TRUE(merge.OnElement(1, e).ok());
  for (const auto& e : Phy1()) ASSERT_TRUE(merge.OnElement(0, e).ok());
  EXPECT_TRUE(Tdb::Reconstitute(collected.elements())
                  .Equals(Tdb::Reconstitute(Phy1())));
}

TEST(LMergeR3MinusTest, AgreesWithLMR3PlusOnRandomInterleavings) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    CollectingSink minus_sink;
    CollectingSink plus_sink;
    LMergeR3Minus minus(2, &minus_sink);
    LMergeR3 plus(2, &plus_sink);
    InterleaveInto(&minus, {Phy1(), Phy2()}, seed);
    InterleaveInto(&plus, {Phy1(), Phy2()}, seed);
    // Physically they may differ; logically they must agree.
    EXPECT_TRUE(Tdb::Reconstitute(minus_sink.elements())
                    .Equals(Tdb::Reconstitute(plus_sink.elements())))
        << "seed " << seed;
  }
}

TEST(LMergeR3MinusTest, MissingElementDropped) {
  CollectingSink collected;
  LMergeR3Minus merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("GHOST", 5, 50)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("REAL", 6, 70)).ok());
  ASSERT_TRUE(merge.OnElement(1, Stb(10)).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("GHOST"), 5, 50)), 0);
}

TEST(LMergeR3MinusTest, DriverOnlyEventEmittedBeforeFreeze) {
  CollectingSink collected;
  LMergeR3Minus merge(2, &collected);
  // Stream 1 delivers an event and immediately stabilizes past its end;
  // stream 0 never sees it.
  ASSERT_TRUE(merge.OnElement(1, Ins("SOLO", 5, 8)).ok());
  ASSERT_TRUE(merge.OnElement(1, Stb(20)).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("SOLO"), 5, 8)), 1);
}

TEST(LMergeR3MinusTest, MemoryGrowsLinearlyWithInputs) {
  // The defining weakness: payloads are duplicated per input index.
  const std::string blob(1000, 'x');
  auto load = [&blob](int streams) {
    CollectingSink sink;
    LMergeR3Minus merge(streams, &sink);
    for (int s = 0; s < streams; ++s) {
      for (int i = 0; i < 50; ++i) {
        LM_CHECK(merge
                     .OnElement(s, StreamElement::Insert(
                                       Row::OfIntAndString(i, blob), 10 + i,
                                       200000 + i))
                     .ok());
      }
    }
    return merge.StateBytes();
  };
  const int64_t two = load(2);
  const int64_t eight = load(8);
  EXPECT_GT(eight, two * 2);  // roughly 8/3 : 1 in index terms
}

TEST(LMergeR3MinusTest, StatePurgedOnFreeze) {
  CollectingSink collected;
  LMergeR3Minus merge(2, &collected);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(merge
                    .OnElement(0, StreamElement::Insert(Row::OfInt(i),
                                                        10 + i, 100 + i))
                    .ok());
    ASSERT_TRUE(merge
                    .OnElement(1, StreamElement::Insert(Row::OfInt(i),
                                                        10 + i, 100 + i))
                    .ok());
  }
  const int64_t loaded = merge.StateBytes();
  ASSERT_TRUE(merge.OnElement(0, Stb(500)).ok());
  EXPECT_LT(merge.StateBytes(), loaded / 4);
}

TEST(LMergeR3MinusTest, AdjustBeforeInsertIgnored) {
  CollectingSink collected;
  LMergeR3Minus merge(1, &collected);
  ASSERT_TRUE(merge.OnElement(0, Adj("A", 5, 10, 20)).ok());
  EXPECT_TRUE(collected.elements().empty());
}

}  // namespace
}  // namespace lmerge
