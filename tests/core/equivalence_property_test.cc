// Property-based end-to-end correctness: for randomly generated logical
// histories, arbitrary physically divergent presentations, and arbitrary
// interleavings, every LMerge algorithm must
//   (1) emit a well-formed physical stream,
//   (2) reconstitute to exactly the input's logical TDB once all inputs are
//       fully delivered and stabilized, and
//   (3) — for the R3 algorithms — keep the output compatible (conditions
//       C1..C3) with the inputs at every stable point.

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/lmerge_r4.h"
#include "temporal/compat.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using ::lmerge::workload::GeneratorConfig;
using ::lmerge::workload::GeneratePhysicalVariant;
using ::lmerge::workload::GenerateHistory;
using ::lmerge::workload::LogicalHistory;
using ::lmerge::workload::RenderInOrder;
using ::lmerge::workload::VariantOptions;

LogicalHistory SmallHistory(uint64_t seed, bool with_final_stable = true) {
  GeneratorConfig config;
  config.num_inserts = 150;
  config.stable_freq = 0.08;
  config.event_duration = 400;
  config.duration_jitter = 300;
  config.max_gap = 20;
  config.key_range = 30;
  config.payload_string_bytes = 8;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  if (with_final_stable) {
    Timestamp max_ve = 0;
    for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
    history.stable_times.push_back(max_ve + 1);
  }
  return history;
}

Tdb HistoryTdb(const LogicalHistory& history) {
  return Tdb::Reconstitute(RenderInOrder(history));
}

// ---------------------------------------------------------------------------
// Ordered, insert-only, unique timestamps: R0 and R1 and R2 must all merge
// identical replicas delivered at different speeds.
// ---------------------------------------------------------------------------

class OrderedMergeProperty
    : public ::testing::TestWithParam<std::tuple<MergeVariant, uint64_t>> {};

TEST_P(OrderedMergeProperty, ReplicasAtDifferentSpeedsConverge) {
  const auto [variant, seed] = GetParam();
  const LogicalHistory history = SmallHistory(seed);
  const ElementSequence stream = RenderInOrder(history);

  CollectingSink collected;
  StreamProperties out_props;
  out_props.insert_only = true;
  ValidatingSink sink(out_props, &collected);
  auto merge = CreateMergeAlgorithm(variant, 3, &sink);
  testing_util::InterleaveInto(merge.get(), {stream, stream, stream},
                               seed * 31 + 7);
  EXPECT_TRUE(Tdb::Reconstitute(collected.elements())
                  .Equals(HistoryTdb(history)))
      << MergeVariantName(variant) << " seed " << seed;
  // No duplication: output inserts == distinct events.
  EXPECT_EQ(testing_util::CountKinds(collected.elements()).inserts,
            static_cast<int64_t>(history.events.size()));
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, OrderedMergeProperty,
    ::testing::Combine(::testing::Values(MergeVariant::kLMR0,
                                         MergeVariant::kLMR1,
                                         MergeVariant::kLMR2,
                                         MergeVariant::kLMR3Plus,
                                         MergeVariant::kLMR3Minus,
                                         MergeVariant::kLMR4),
                       ::testing::Values(1u, 2u, 3u, 4u)));

// ---------------------------------------------------------------------------
// Disordered presentations with revisions (case R3): LMR3+, LMR3-, LMR4.
// ---------------------------------------------------------------------------

class DivergentMergeProperty
    : public ::testing::TestWithParam<std::tuple<MergeVariant, uint64_t>> {};

TEST_P(DivergentMergeProperty, DivergentVariantsConverge) {
  const auto [variant, seed] = GetParam();
  const LogicalHistory history = SmallHistory(seed);

  std::vector<ElementSequence> inputs;
  for (uint64_t v = 0; v < 3; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.15 + 0.15 * static_cast<double>(v);
    options.max_disorder_elements = 20;
    options.split_probability = 0.25 * static_cast<double>(v);
    options.provisional_open = (v == 2);
    options.seed = seed * 1000 + v;
    inputs.push_back(GeneratePhysicalVariant(history, options));
  }

  CollectingSink collected;
  ValidatingSink sink(StreamProperties::None(), &collected);
  auto merge =
      CreateMergeAlgorithm(variant, static_cast<int>(inputs.size()), &sink);
  testing_util::InterleaveInto(merge.get(), inputs, seed * 17 + 3);

  EXPECT_TRUE(Tdb::Reconstitute(collected.elements())
                  .Equals(HistoryTdb(history)))
      << MergeVariantName(variant) << " seed " << seed;

  if (variant == MergeVariant::kLMR3Plus) {
    // Theorem 1: non-chattiness.
    const auto& stats = merge->stats();
    EXPECT_LE(stats.inserts_out + stats.adjusts_out, stats.inserts_in);
    EXPECT_LE(stats.stables_out, stats.stables_in);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, DivergentMergeProperty,
    ::testing::Combine(::testing::Values(MergeVariant::kLMR3Plus,
                                         MergeVariant::kLMR3Minus,
                                         MergeVariant::kLMR4),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)));

// ---------------------------------------------------------------------------
// Compatibility at every stable point (R3 conditions C1..C3).
// ---------------------------------------------------------------------------

class CompatibilityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompatibilityProperty, OutputCompatibleAtEveryStable) {
  const uint64_t seed = GetParam();
  GeneratorConfig config;
  config.num_inserts = 60;
  config.stable_freq = 0.15;
  config.event_duration = 300;
  config.duration_jitter = 200;
  config.max_gap = 25;
  config.key_range = 20;
  config.payload_string_bytes = 4;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);

  std::vector<ElementSequence> inputs;
  for (uint64_t v = 0; v < 2; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.3;
    options.max_disorder_elements = 10;
    options.split_probability = 0.3;
    options.seed = seed * 77 + v;
    inputs.push_back(GeneratePhysicalVariant(history, options));
  }

  CollectingSink collected;
  auto merge = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 2, &collected);

  // Deliver with a deterministic interleaving while tracking input TDBs.
  Rng rng(seed + 5);
  std::vector<size_t> next(inputs.size(), 0);
  Tdb in_tdb[2];
  while (true) {
    std::vector<int> candidates;
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (next[s] < inputs[s].size()) candidates.push_back(static_cast<int>(s));
    }
    if (candidates.empty()) break;
    const int s = candidates[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    const StreamElement& e = inputs[static_cast<size_t>(s)][next[static_cast<size_t>(s)]];
    ASSERT_TRUE(merge->OnElement(s, e).ok());
    ASSERT_TRUE(in_tdb[s].Apply(e).ok());
    ++next[static_cast<size_t>(s)];
    if (e.is_stable()) {
      const Tdb out = Tdb::Reconstitute(collected.elements());
      const Status compat =
          CheckR3Compatibility({&in_tdb[0], &in_tdb[1]}, out);
      ASSERT_TRUE(compat.ok())
          << "seed " << seed << ": " << compat.ToString();
    }
  }
  EXPECT_TRUE(Tdb::Reconstitute(collected.elements())
                  .Equals(HistoryTdb(history)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompatibilityProperty,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// R4 with duplicate events in the logical multiset.
// ---------------------------------------------------------------------------

class MultisetMergeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultisetMergeProperty, DuplicateEventsSurviveMerge) {
  const uint64_t seed = GetParam();
  LogicalHistory history = SmallHistory(seed, /*with_final_stable=*/false);
  // Duplicate every 7th event (same payload, Vs, and Ve) — a true multiset.
  const size_t original = history.events.size();
  for (size_t i = 0; i < original; i += 7) {
    history.events.push_back(history.events[i]);
  }
  std::sort(history.events.begin(), history.events.end(),
            [](const Event& a, const Event& b) {
              return EventLess()(a, b);
            });
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);

  std::vector<ElementSequence> inputs;
  for (uint64_t v = 0; v < 2; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.25;
    options.max_disorder_elements = 15;
    options.split_probability = 0.2;
    options.seed = seed * 13 + v;
    inputs.push_back(GeneratePhysicalVariant(history, options));
  }

  CollectingSink collected;
  ValidatingSink sink(StreamProperties::None(), &collected);
  LMergeR4* raw = nullptr;
  auto merge = CreateMergeAlgorithm(MergeVariant::kLMR4, 2, &sink);
  raw = static_cast<LMergeR4*>(merge.get());
  testing_util::InterleaveInto(merge.get(), inputs, seed * 3 + 1);

  EXPECT_TRUE(Tdb::Reconstitute(collected.elements())
                  .Equals(HistoryTdb(history)))
      << "seed " << seed;
  EXPECT_EQ(raw->inconsistency_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultisetMergeProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace lmerge
