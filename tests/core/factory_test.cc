#include "core/factory.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

TEST(FactoryTest, VariantForEachCase) {
  EXPECT_EQ(VariantForCase(AlgorithmCase::kR0), MergeVariant::kLMR0);
  EXPECT_EQ(VariantForCase(AlgorithmCase::kR1), MergeVariant::kLMR1);
  EXPECT_EQ(VariantForCase(AlgorithmCase::kR2), MergeVariant::kLMR2);
  EXPECT_EQ(VariantForCase(AlgorithmCase::kR3), MergeVariant::kLMR3Plus);
  EXPECT_EQ(VariantForCase(AlgorithmCase::kR4), MergeVariant::kLMR4);
}

TEST(FactoryTest, CreatesEveryVariant) {
  NullSink sink;
  for (const MergeVariant variant :
       {MergeVariant::kLMR0, MergeVariant::kLMR1, MergeVariant::kLMR2,
        MergeVariant::kLMR3Plus, MergeVariant::kLMR3Minus,
        MergeVariant::kLMR4, MergeVariant::kCounting}) {
    auto algo = CreateMergeAlgorithm(variant, 3, &sink);
    ASSERT_NE(algo, nullptr) << MergeVariantName(variant);
    EXPECT_EQ(algo->stream_count(), 3);
  }
}

TEST(FactoryTest, CreateForPropertiesPicksCheapest) {
  NullSink sink;
  auto algo = CreateMergeAlgorithmForProperties(
      {StreamProperties::Strongest(), StreamProperties::Strongest()}, 2,
      &sink);
  EXPECT_EQ(algo->algorithm_case(), AlgorithmCase::kR0);
  auto general = CreateMergeAlgorithmForProperties(
      {StreamProperties::Strongest(), StreamProperties::None()}, 2, &sink);
  EXPECT_EQ(general->algorithm_case(), AlgorithmCase::kR4);
}

TEST(FactoryTest, PolicyReachesR3) {
  NullSink sink;
  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 2, &sink,
                                   MergePolicy::Eager());
  // Downcast via behaviour: adjusts reflected eagerly imply the policy took.
  using ::lmerge::testing_util::Adj;
  using ::lmerge::testing_util::Ins;
  CollectingSink out;
  auto eager = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 1, &out,
                                    MergePolicy::Eager());
  ASSERT_TRUE(eager->OnElement(0, Ins("A", 1, 5)).ok());
  ASSERT_TRUE(eager->OnElement(0, Adj("A", 1, 5, 9)).ok());
  EXPECT_EQ(testing_util::CountKinds(out.elements()).adjusts, 1);
}

TEST(FactoryTest, VariantNames) {
  EXPECT_STREQ(MergeVariantName(MergeVariant::kLMR3Plus), "LMR3+");
  EXPECT_STREQ(MergeVariantName(MergeVariant::kLMR3Minus), "LMR3-");
  EXPECT_STREQ(MergeVariantName(MergeVariant::kCounting), "Counting");
}

}  // namespace
}  // namespace lmerge
