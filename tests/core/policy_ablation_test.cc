// Ablations of the remaining policy knobs: the stable-lag of Sec. III-D
// ("lagging a bit behind the maximum would avoid some adjust() elements")
// and R4's exact-match vs. count-only reconciliation (Sec. IV-E).

#include <gtest/gtest.h>

#include "core/lmerge_r3.h"
#include "core/lmerge_r4.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(StableLagTest, LagAbsorbsPostStableRevisions) {
  // Scenario (Sec. III-D): the output follows stream 1's short provisional
  // end; stream 0's stable barely freezes it, forcing an adjust to stream
  // 0's (still changing) value — which is then revised again.  With a
  // stable lag, the first stable's effect is delayed past the divergence
  // window and a single reconciling adjust suffices.
  auto run = [](int64_t lag) {
    CollectingSink sink;
    MergePolicy policy;
    policy.stable_lag = lag;
    LMergeR3 merge(2, &sink, policy);
    LM_CHECK(merge.OnElement(1, Ins("A", 10, 50)).ok());   // out end = 50
    LM_CHECK(merge.OnElement(0, Ins("A", 10, 200)).ok());
    LM_CHECK(merge.OnElement(0, Stb(60)).ok());   // would freeze end 50
    LM_CHECK(merge.OnElement(0, Adj("A", 10, 200, 300)).ok());
    LM_CHECK(merge.OnElement(0, Stb(400)).ok());
    return testing_util::CountKinds(sink.elements());
  };
  const auto eager = run(0);
  const auto lagged = run(20);
  EXPECT_EQ(eager.adjusts, 2);   // 50 -> 200 at stable(60), 200 -> 300 later
  EXPECT_EQ(lagged.adjusts, 1);  // stable effect delayed: 50 -> 300 once
}

TEST(StableLagTest, OutputStillConvergesWithLag) {
  using workload::GeneratorConfig;
  using workload::GeneratePhysicalVariant;
  using workload::GenerateHistory;
  using workload::VariantOptions;
  GeneratorConfig config;
  config.num_inserts = 200;
  config.stable_freq = 0.1;
  config.event_duration = 300;
  config.max_gap = 20;
  config.payload_string_bytes = 4;
  config.seed = 77;
  workload::LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  // Final stable far enough out that even the lagged point passes all ends.
  history.stable_times.push_back(max_ve + 1000);

  std::vector<ElementSequence> inputs;
  for (uint64_t v = 0; v < 2; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.3;
    options.split_probability = 0.4;
    options.seed = 40 + v;
    inputs.push_back(GeneratePhysicalVariant(history, options));
  }
  CollectingSink sink;
  MergePolicy policy;
  policy.stable_lag = 100;
  LMergeR3 merge(2, &sink, policy);
  testing_util::InterleaveInto(&merge, inputs, 5);
  EXPECT_TRUE(
      Tdb::Reconstitute(sink.elements())
          .Equals(Tdb::Reconstitute(workload::RenderInOrder(history))));
  // The emitted stable points trail the inputs' by the configured lag.
  EXPECT_EQ(merge.max_stable(), max_ve + 1000 - 100);
}

TEST(R4PolicyTest, CountOnlyIsLessChattyThanExact) {
  // After the key is half frozen, the driver revises an (unfrozen) end
  // time.  A later stable that freezes nothing forces no reconciliation:
  // exact matching rewrites the output anyway, count-only defers.
  auto run = [](bool exact) {
    CollectingSink sink;
    MergePolicy policy;
    policy.r4_exact_match = exact;
    LMergeR4 merge(2, &sink, policy);
    LM_CHECK(merge.OnElement(0, Ins("A", 10, 100)).ok());
    LM_CHECK(merge.OnElement(0, Ins("A", 10, 200)).ok());
    LM_CHECK(merge.OnElement(1, Ins("A", 10, 150)).ok());
    LM_CHECK(merge.OnElement(1, Ins("A", 10, 250)).ok());
    // Stream 1 drives: the key half-freezes, output pinned to {150, 250}
    // under both policies (first-freeze equalizes counts and values).
    LM_CHECK(merge.OnElement(1, Stb(20)).ok());
    // The driver revises one still-unfrozen end, then stabilizes again at a
    // point below every end time.
    LM_CHECK(merge.OnElement(1, Adj("A", 10, 150, 160)).ok());
    LM_CHECK(merge.OnElement(1, Stb(60)).ok());
    return testing_util::CountKinds(sink.elements());
  };
  const auto exact = run(true);
  const auto lazy = run(false);
  EXPECT_EQ(exact.inserts, lazy.inserts);
  EXPECT_EQ(exact.adjusts, 3);  // 2 at half-freeze + eager rewrite 150->160
  EXPECT_EQ(lazy.adjusts, 2);   // the unfrozen divergence is deferred
}

TEST(R4PolicyTest, CountOnlyStillFreezesCorrectly) {
  // Whatever is deferred must be reconciled by the time it fully freezes:
  // final TDBs agree for both policies.
  auto run = [](bool exact) {
    CollectingSink sink;
    MergePolicy policy;
    policy.r4_exact_match = exact;
    LMergeR4 merge(2, &sink, policy);
    LM_CHECK(merge.OnElement(0, Ins("A", 10, 100)).ok());
    LM_CHECK(merge.OnElement(0, Ins("A", 10, 200)).ok());
    LM_CHECK(merge.OnElement(1, Ins("A", 10, 150)).ok());
    LM_CHECK(merge.OnElement(1, Ins("A", 10, 250)).ok());
    LM_CHECK(merge.OnElement(1, Stb(20)).ok());
    LM_CHECK(merge.OnElement(1, Stb(1000)).ok());  // freezes everything
    return Tdb::Reconstitute(sink.elements());
  };
  const Tdb exact = run(true);
  const Tdb lazy = run(false);
  EXPECT_TRUE(exact.Equals(lazy));
  EXPECT_EQ(lazy.CountOf(Event(Row::OfString("A"), 10, 150)), 1);
  EXPECT_EQ(lazy.CountOf(Event(Row::OfString("A"), 10, 250)), 1);
}

TEST(R4PolicyTest, CountOnlyConvergesOnGeneratedWorkloads) {
  using workload::GeneratorConfig;
  using workload::GeneratePhysicalVariant;
  using workload::GenerateHistory;
  using workload::VariantOptions;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorConfig config;
    config.num_inserts = 150;
    config.stable_freq = 0.1;
    config.event_duration = 400;
    config.max_gap = 20;
    config.payload_string_bytes = 4;
    config.seed = seed;
    workload::LogicalHistory history = GenerateHistory(config);
    Timestamp max_ve = 0;
    for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
    history.stable_times.push_back(max_ve + 1);
    std::vector<ElementSequence> inputs;
    for (uint64_t v = 0; v < 2; ++v) {
      VariantOptions options;
      options.disorder_fraction = 0.3;
      options.split_probability = 0.4;
      options.seed = seed * 19 + v;
      inputs.push_back(GeneratePhysicalVariant(history, options));
    }
    CollectingSink sink;
    MergePolicy policy;
    policy.r4_exact_match = false;
    LMergeR4 merge(2, &sink, policy);
    testing_util::InterleaveInto(&merge, inputs, seed);
    EXPECT_TRUE(
        Tdb::Reconstitute(sink.elements())
            .Equals(Tdb::Reconstitute(workload::RenderInOrder(history))))
        << "seed " << seed;
    EXPECT_EQ(merge.inconsistency_count(), 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lmerge
