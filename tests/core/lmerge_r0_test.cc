#include "core/lmerge_r0.h"

#include <gtest/gtest.h>

#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::RoundRobinInto;
using ::lmerge::testing_util::Stb;

TEST(LMergeR0Test, SingleStreamPassesThrough) {
  CollectingSink sink;
  LMergeR0 merge(1, &sink);
  const ElementSequence input = {Ins("A", 1, 10), Ins("B", 2, 10), Stb(3)};
  for (const auto& e : input) ASSERT_TRUE(merge.OnElement(0, e).ok());
  EXPECT_EQ(sink.elements(), input);
}

TEST(LMergeR0Test, DuplicatesFromReplicasDropped) {
  CollectingSink sink;
  LMergeR0 merge(3, &sink);
  const ElementSequence stream = {Ins("A", 1, 10), Ins("B", 2, 10),
                                  Ins("C", 3, 10), Stb(4)};
  RoundRobinInto(&merge, {stream, stream, stream});
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 3);
  EXPECT_EQ(counts.stables, 1);
  EXPECT_EQ(merge.stats().dropped, 6);  // each insert duplicated twice
  EXPECT_TRUE(Tdb::Reconstitute(sink.elements())
                  .Equals(Tdb::Reconstitute(stream)));
}

TEST(LMergeR0Test, FollowsWhicheverStreamIsAhead) {
  CollectingSink sink;
  LMergeR0 merge(2, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 1, 10)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 1, 10)).ok());  // dup dropped
  ASSERT_TRUE(merge.OnElement(1, Ins("B", 2, 10)).ok());  // stream 1 ahead
  ASSERT_TRUE(merge.OnElement(0, Ins("B", 2, 10)).ok());  // dup dropped
  ASSERT_TRUE(merge.OnElement(0, Ins("C", 3, 10)).ok());  // stream 0 ahead
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 3);
  EXPECT_EQ(merge.max_vs(), 3);
}

TEST(LMergeR0Test, StableOnlyAdvances) {
  CollectingSink sink;
  LMergeR0 merge(2, &sink);
  merge.OnStable(0, 10);
  merge.OnStable(1, 5);   // behind: dropped
  merge.OnStable(1, 10);  // equal: dropped
  merge.OnStable(1, 12);
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.stables, 2);
  EXPECT_EQ(merge.max_stable(), 12);
}

TEST(LMergeR0Test, AdjustRejected) {
  CollectingSink sink;
  LMergeR0 merge(1, &sink);
  const Status status = merge.OnElement(0, Adj("A", 1, 10, 12));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(LMergeR0Test, ConstantStateBytes) {
  CollectingSink sink;
  LMergeR0 merge(8, &sink);
  const int64_t before = merge.StateBytes();
  ElementSequence stream;
  for (int i = 1; i <= 1000; ++i) stream.push_back(Ins("X", i, i + 100));
  for (const auto& e : stream) ASSERT_TRUE(merge.OnElement(0, e).ok());
  EXPECT_EQ(merge.StateBytes(), before);  // O(1) space
}

TEST(LMergeR0Test, StatsTrackInputAndOutput) {
  CollectingSink sink;
  LMergeR0 merge(2, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 1, 10)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 1, 10)).ok());
  merge.OnStable(0, 5);
  EXPECT_EQ(merge.stats().inserts_in, 2);
  EXPECT_EQ(merge.stats().inserts_out, 1);
  EXPECT_EQ(merge.stats().stables_out, 1);
  EXPECT_EQ(merge.stats().dropped, 1);
}

}  // namespace
}  // namespace lmerge
