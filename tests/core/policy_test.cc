// Output-policy behaviour (Sec. V-A, Example 2 / Table II): the same inputs
// under different policies produce outputs that trade latency against
// chattiness, while all remaining logically equivalent.

#include <gtest/gtest.h>

#include "core/lmerge_r3.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

// Example 2's inputs In1 and In2 (a/m/f translated to insert/adjust/stable).
ElementSequence In1() {
  return {Ins("A", 6, 10), Adj("A", 6, 10, 12), Ins("B", 7, 14),
          Adj("A", 6, 12, 15), Stb(16)};
}
ElementSequence In2() {
  return {Ins("A", 6, 12), Ins("B", 7, 14), Adj("A", 6, 12, 15), Stb(16)};
}

// Runs both inputs through LMR3 under `policy`, alternating elements.
ElementSequence RunWithPolicy(const MergePolicy& policy) {
  CollectingSink sink;
  LMergeR3 merge(2, &sink, policy);
  const ElementSequence in1 = In1();
  const ElementSequence in2 = In2();
  const size_t n = std::max(in1.size(), in2.size());
  for (size_t i = 0; i < n; ++i) {
    if (i < in1.size()) LM_CHECK(merge.OnElement(0, in1[i]).ok());
    if (i < in2.size()) LM_CHECK(merge.OnElement(1, in2[i]).ok());
  }
  return sink.TakeElements();
}

TEST(PolicyTest, AllPoliciesAgreeLogically) {
  const Tdb reference = Tdb::Reconstitute(In1());
  for (const MergePolicy& policy :
       {MergePolicy::Default(), MergePolicy::Eager(),
        MergePolicy::Conservative()}) {
    const ElementSequence out = RunWithPolicy(policy);
    EXPECT_TRUE(Tdb::Reconstitute(out).Equals(reference));
  }
}

TEST(PolicyTest, EagerIsChattierThanLazy) {
  const auto lazy = CountKinds(RunWithPolicy(MergePolicy::Default()));
  const auto eager = CountKinds(RunWithPolicy(MergePolicy::Eager()));
  EXPECT_GT(eager.adjusts, lazy.adjusts);
  // Out1-style: eager reflects every revision it can.
  EXPECT_GE(eager.inserts + eager.adjusts, lazy.inserts + lazy.adjusts);
}

TEST(PolicyTest, ConservativeEmitsFewerButLater) {
  const ElementSequence lazy = RunWithPolicy(MergePolicy::Default());
  const ElementSequence conservative =
      RunWithPolicy(MergePolicy::Conservative());
  // Out2-style: fewer total elements...
  EXPECT_LE(conservative.size(), lazy.size());
  // ...and the first insert appears later in the run (no output until the
  // first stable arrives and half-freezes the events).
  size_t lazy_first = 0;
  size_t conservative_count_before_stable = 0;
  for (size_t i = 0; i < lazy.size(); ++i) {
    if (lazy[i].is_insert()) {
      lazy_first = i;
      break;
    }
  }
  for (const StreamElement& e : conservative) {
    if (e.is_stable()) break;
    if (e.is_insert()) ++conservative_count_before_stable;
  }
  EXPECT_EQ(lazy_first, 0u);  // first-insert-wins emits immediately
  // Conservative emits all inserts only at the stable (they precede the
  // stable element itself in the output, but nothing earlier).
  EXPECT_EQ(conservative_count_before_stable, 2u);
}

TEST(PolicyTest, TheoremOneHoldsOnGeneratedWorkloads) {
  using workload::GeneratorConfig;
  using workload::GeneratePhysicalVariant;
  using workload::GenerateHistory;
  using workload::VariantOptions;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    GeneratorConfig config;
    config.num_inserts = 300;
    config.stable_freq = 0.05;
    config.event_duration = 500;
    config.max_gap = 15;
    config.payload_string_bytes = 4;
    config.seed = seed;
    const auto history = GenerateHistory(config);
    std::vector<ElementSequence> inputs;
    for (uint64_t v = 0; v < 2; ++v) {
      VariantOptions options;
      options.disorder_fraction = 0.4;
      options.split_probability = 0.5;
      options.seed = seed * 5 + v;
      inputs.push_back(GeneratePhysicalVariant(history, options));
    }
    CollectingSink sink;
    LMergeR3 merge(2, &sink);
    testing_util::InterleaveInto(&merge, inputs, seed);
    const auto& stats = merge.stats();
    EXPECT_LE(stats.inserts_out + stats.adjusts_out, stats.inserts_in)
        << "seed " << seed;
    EXPECT_LE(stats.stables_out, stats.stables_in) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lmerge
