// Differential testing: every general-case algorithm (LMR3+, LMR3-, LMR4)
// fed the *same* inputs in the *same* interleaving must converge to the
// same logical output — and mid-run attachment of an extra replica must not
// change it.

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/lmerge_operator.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using workload::GeneratorConfig;
using workload::GeneratePhysicalVariant;
using workload::GenerateHistory;
using workload::LogicalHistory;
using workload::RenderInOrder;
using workload::VariantOptions;

LogicalHistory ClosedHistory(uint64_t seed) {
  GeneratorConfig config;
  config.num_inserts = 220;
  config.stable_freq = 0.07;
  config.event_duration = 350;
  config.duration_jitter = 150;
  config.max_gap = 14;
  config.key_range = 25;
  config.payload_string_bytes = 6;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);
  return history;
}

std::vector<ElementSequence> Variants(const LogicalHistory& history,
                                      uint64_t seed, int count) {
  std::vector<ElementSequence> out;
  for (int v = 0; v < count; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.2 + 0.1 * v;
    options.split_probability = 0.2 * v;
    options.provisional_open = (v % 2 == 1);
    options.seed = seed * 101 + static_cast<uint64_t>(v);
    out.push_back(GeneratePhysicalVariant(history, options));
  }
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, GeneralVariantsAgreeLogically) {
  const uint64_t seed = GetParam();
  const LogicalHistory history = ClosedHistory(seed);
  const std::vector<ElementSequence> inputs = Variants(history, seed, 3);
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));

  for (const MergeVariant variant :
       {MergeVariant::kLMR3Plus, MergeVariant::kLMR3Minus,
        MergeVariant::kLMR4}) {
    CollectingSink sink;
    auto algo = CreateMergeAlgorithm(variant, 3, &sink);
    testing_util::InterleaveInto(algo.get(), inputs, seed * 3 + 11);
    EXPECT_TRUE(Tdb::Reconstitute(sink.elements()).Equals(reference))
        << MergeVariantName(variant) << " seed " << seed;
  }
}

TEST_P(DifferentialTest, MidRunAttachmentIsTransparent) {
  const uint64_t seed = GetParam();
  const LogicalHistory history = ClosedHistory(seed + 500);
  const std::vector<ElementSequence> inputs = Variants(history, seed, 2);
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));

  LMergeOperator lm("diff", 1, MergeVariant::kLMR3Plus);
  CollectingSink merged;
  lm.AddSink(&merged);

  Rng rng(seed * 17 + 9);
  // Stream 0 delivers some prefix, then a second replica attaches at the
  // current output stable point and races ahead; both then deliver fully.
  const size_t prefix = static_cast<size_t>(rng.UniformInt(
      10, static_cast<int64_t>(inputs[0].size()) / 2));
  for (size_t i = 0; i < prefix; ++i) lm.Consume(0, inputs[0][i]);
  const int port = lm.AttachInput(lm.algorithm().max_stable());

  size_t i0 = prefix;
  size_t i1 = 0;
  while (i0 < inputs[0].size() || i1 < inputs[1].size()) {
    const bool take1 =
        i1 < inputs[1].size() && (i0 >= inputs[0].size() || rng.Bernoulli(0.6));
    if (take1) {
      lm.Consume(port, inputs[1][i1++]);
    } else {
      lm.Consume(0, inputs[0][i0++]);
    }
  }
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements()).Equals(reference))
      << "seed " << seed << " prefix " << prefix;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace lmerge
