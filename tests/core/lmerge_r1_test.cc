#include "core/lmerge_r1.h"

#include <gtest/gtest.h>

#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::RoundRobinInto;
using ::lmerge::testing_util::Stb;

// Top-k style streams: several elements share each Vs, in rank order.
ElementSequence RankedStream() {
  return {Ins("w1r1", 10, 20), Ins("w1r2", 10, 20), Ins("w1r3", 10, 20),
          Stb(11),             Ins("w2r1", 20, 30), Ins("w2r2", 20, 30)};
}

TEST(LMergeR1Test, DuplicateTimestampsMergedByPosition) {
  CollectingSink sink;
  LMergeR1 merge(2, &sink);
  RoundRobinInto(&merge, {RankedStream(), RankedStream()});
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 5);
  EXPECT_EQ(counts.stables, 1);
  EXPECT_TRUE(Tdb::Reconstitute(sink.elements())
                  .Equals(Tdb::Reconstitute(RankedStream())));
}

TEST(LMergeR1Test, FastStreamDrivesOutputSlowIsDropped) {
  CollectingSink sink;
  LMergeR1 merge(2, &sink);
  const ElementSequence fast = RankedStream();
  for (const auto& e : fast) ASSERT_TRUE(merge.OnElement(0, e).ok());
  for (const auto& e : fast) ASSERT_TRUE(merge.OnElement(1, e).ok());
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 5);
  EXPECT_EQ(merge.stats().dropped, 5);
}

TEST(LMergeR1Test, InterleavedWithinSameVs) {
  CollectingSink sink;
  LMergeR1 merge(2, &sink);
  // Stream 0 delivers two ranks, stream 1 delivers three: output takes the
  // longer presentation without duplicating the shared prefix.
  ASSERT_TRUE(merge.OnElement(0, Ins("r1", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("r1", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("r2", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(0, Ins("r2", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("r3", 10, 20)).ok());
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 3);
}

TEST(LMergeR1Test, CountersResetOnNewVs) {
  CollectingSink sink;
  LMergeR1 merge(2, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("a", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(0, Ins("b", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("a2", 20, 30)).ok());  // new Vs
  ASSERT_TRUE(merge.OnElement(0, Ins("a2", 20, 30)).ok());  // dup of position
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 3);
}

TEST(LMergeR1Test, LateElementsBehindMaxVsDropped) {
  CollectingSink sink;
  LMergeR1 merge(2, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("a", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("old", 5, 20)).ok());
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 1);
  EXPECT_EQ(merge.stats().dropped, 1);
}

TEST(LMergeR1Test, AdjustRejected) {
  CollectingSink sink;
  LMergeR1 merge(1, &sink);
  EXPECT_FALSE(merge.OnElement(0, Adj("A", 1, 10, 12)).ok());
}

TEST(LMergeR1Test, DetachDoesNotCauseReemission) {
  CollectingSink sink;
  LMergeR1 merge(2, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("a", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(0, Ins("b", 10, 20)).ok());
  merge.RemoveStream(0);
  // What has been emitted stays emitted: stream 1's copies of a and b are
  // duplicates even though the stream that delivered them first is gone.
  ASSERT_TRUE(merge.OnElement(1, Ins("a", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("b", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("c", 10, 20)).ok());
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 3);  // a, b from stream 0; c new from stream 1
}

TEST(LMergeR1Test, AddStreamGrowsCounters) {
  CollectingSink sink;
  LMergeR1 merge(1, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("a", 10, 20)).ok());
  const int id = merge.AddStream();
  EXPECT_EQ(id, 1);
  ASSERT_TRUE(merge.OnElement(1, Ins("a", 10, 20)).ok());  // dup position
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 1);
}

TEST(LMergeR1Test, StateBytesScaleWithStreamsNotEvents) {
  CollectingSink sink_small;
  CollectingSink sink_large;
  LMergeR1 small(2, &sink_small);
  LMergeR1 large(10, &sink_large);
  EXPECT_LT(small.StateBytes(), large.StateBytes() + 1);
  const int64_t before = small.StateBytes();
  for (int i = 1; i <= 500; ++i) {
    ASSERT_TRUE(small.OnElement(0, Ins("x", i, i + 5)).ok());
  }
  EXPECT_EQ(small.StateBytes(), before);
}

}  // namespace
}  // namespace lmerge
