// LMergeR4 — the fully general algorithm (multiset TDB, duplicate
// (Vs, payload) keys, arbitrary order).

#include "core/lmerge_r4.h"

#include <gtest/gtest.h>

#include "temporal/compat.h"
#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(LMergeR4Test, BasicDeduplication) {
  CollectingSink collected;
  LMergeR4 merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 10)).ok());  // replica copy
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 1);
}

TEST(LMergeR4Test, TrueDuplicatesPreserved) {
  // Two events with identical (payload, Vs, Ve) are *both* part of the
  // logical multiset; a single stream presenting both must yield both.
  CollectingSink collected;
  LMergeR4 merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 2);
  // The replica's copies are duplicates of what is already out.
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 10)).ok());
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 2);
  ASSERT_TRUE(merge.OnElement(0, Stb(100)).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 10)), 2);
}

TEST(LMergeR4Test, SameKeyDifferentEnds) {
  CollectingSink collected;
  LMergeR4 merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 20)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 20)).ok());  // dup by count
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 10)).ok());  // dup by count
  ASSERT_TRUE(merge.OnElement(0, Stb(100)).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 10)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 20)), 1);
  EXPECT_EQ(merge.inconsistency_count(), 0);
}

TEST(LMergeR4Test, StableReconcilesEndTimesToDriver) {
  CollectingSink collected;
  LMergeR4 merge(2, &collected);
  // Output follows stream 0's provisional end; stream 1 knows the real end
  // and drives stability.
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, kInfinity)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 12)).ok());
  ASSERT_TRUE(merge.OnElement(1, Stb(50)).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 12)), 1);
  EXPECT_EQ(out.EventCount(), 1);
}

TEST(LMergeR4Test, StableRemovesEventsDriverLacks) {
  CollectingSink collected;
  LMergeR4 merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());  // two copies
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 10)).ok());  // one copy only
  ASSERT_TRUE(merge.OnElement(1, Stb(50)).ok());          // stream 1 drives
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 10)), 1);
}

TEST(LMergeR4Test, StableAddsEventsOnlyDriverHas) {
  CollectingSink collected;
  LMergeR4 merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 10)).ok());  // extra copy
  ASSERT_TRUE(merge.OnElement(1, Stb(50)).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 10)), 2);
}

TEST(LMergeR4Test, AdjustsTrackedPerStream) {
  CollectingSink collected;
  LMergeR4 merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(0, Adj("A", 5, 10, 30)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 30)).ok());
  ASSERT_TRUE(merge.OnElement(0, Stb(100)).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 30)), 1);
  EXPECT_EQ(out.EventCount(), 1);
  EXPECT_EQ(merge.inconsistency_count(), 0);
}

TEST(LMergeR4Test, AdjustRemovalShrinksMultiset) {
  CollectingSink collected;
  LMergeR4 merge(1, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(0, Adj("A", 5, 10, 5)).ok());  // remove one
  ASSERT_TRUE(merge.OnElement(0, Stb(100)).ok());
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 5, 10)), 1);
}

TEST(LMergeR4Test, CompatibleWithDriverAfterStable) {
  CollectingSink collected;
  LMergeR4 merge(2, &collected);
  Tdb driver;
  const ElementSequence driver_stream = {
      Ins("A", 5, 10), Ins("A", 5, 10), Ins("B", 6, kInfinity),
      Adj("B", 6, kInfinity, 40), Stb(20)};
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 9)).ok());  // will be fixed
  for (const auto& e : driver_stream) {
    ASSERT_TRUE(merge.OnElement(1, e).ok());
    ASSERT_TRUE(driver.Apply(e).ok());
  }
  const Tdb out = Tdb::Reconstitute(collected.elements());
  const Status compat = CheckR4TrackedCompatibility(driver, out);
  EXPECT_TRUE(compat.ok()) << compat.ToString();
}

TEST(LMergeR4Test, NodePurgeAfterFullFreeze) {
  CollectingSink collected;
  LMergeR4 merge(1, &collected);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        merge.OnElement(0, StreamElement::Insert(Row::OfInt(i), 10 + i,
                                                 100 + i))
            .ok());
  }
  EXPECT_EQ(merge.index_node_count(), 50);
  ASSERT_TRUE(merge.OnElement(0, Stb(500)).ok());
  EXPECT_EQ(merge.index_node_count(), 0);
}

TEST(LMergeR4Test, LateInsertForPurgedKeyDropped) {
  CollectingSink collected;
  LMergeR4 merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(0, Stb(100)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 5, 10)).ok());  // replica lag
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 1);
}

TEST(LMergeR4Test, InfiniteLifetimesNeverPurge) {
  CollectingSink collected;
  LMergeR4 merge(1, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, kInfinity)).ok());
  ASSERT_TRUE(merge.OnElement(0, Stb(1000)).ok());
  EXPECT_EQ(merge.index_node_count(), 1);  // half frozen forever
}

TEST(LMergeR4Test, AdjustOfUnknownEndCountsInconsistency) {
  CollectingSink collected;
  LMergeR4 merge(1, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 10)).ok());
  ASSERT_TRUE(merge.OnElement(0, Adj("A", 5, 77, 88)).ok());  // bad Vold
  EXPECT_EQ(merge.inconsistency_count(), 1);
}

}  // namespace
}  // namespace lmerge
