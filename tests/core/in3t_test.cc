#include "core/in3t.h"

#include <gtest/gtest.h>

namespace lmerge {
namespace {

TEST(VeMultisetTest, IncrementDecrementTotals) {
  VeMultiset ends;
  EXPECT_EQ(ends.total(), 0);
  ends.Increment(10);
  ends.Increment(10);
  ends.Increment(20);
  EXPECT_EQ(ends.total(), 3);
  EXPECT_EQ(ends.CountOf(10), 2);
  EXPECT_EQ(ends.CountOf(20), 1);
  EXPECT_TRUE(ends.Decrement(10));
  EXPECT_EQ(ends.CountOf(10), 1);
  EXPECT_TRUE(ends.Decrement(10));
  EXPECT_EQ(ends.CountOf(10), 0);
  EXPECT_FALSE(ends.Decrement(10));  // nothing left
  EXPECT_EQ(ends.total(), 1);
}

TEST(VeMultisetTest, MaxVeAndFallback) {
  VeMultiset ends;
  EXPECT_EQ(ends.MaxVe(42), 42);
  ends.Increment(10);
  ends.Increment(99);
  EXPECT_EQ(ends.MaxVe(42), 99);
  ends.Decrement(99);
  EXPECT_EQ(ends.MaxVe(42), 10);
}

TEST(VeMultisetTest, ForEachAscending) {
  VeMultiset ends;
  ends.Increment(30);
  ends.Increment(10);
  ends.Increment(20);
  ends.Increment(20);
  std::vector<Timestamp> order;
  std::vector<int64_t> counts;
  ends.ForEach([&](Timestamp ve, int64_t count) {
    order.push_back(ve);
    counts.push_back(count);
  });
  EXPECT_EQ(order, (std::vector<Timestamp>{10, 20, 30}));
  EXPECT_EQ(counts, (std::vector<int64_t>{1, 2, 1}));
}

TEST(In3tTest, NodesKeyedByVsPayload) {
  In3t index;
  auto it = index.AddNode(5, Row::OfString("A"));
  it.value()[0].Increment(100);
  it.value()[0].Increment(200);
  it.value()[1].Increment(100);
  EXPECT_EQ(index.SameVsPayload(5, Row::OfString("A")).value()[0].total(),
            2);
  EXPECT_EQ(index.node_count(), 1);
  index.DeleteNode(index.begin());
  EXPECT_TRUE(index.empty());
}

TEST(In3tTest, StateBytesGrowWithDistinctEnds) {
  // StateBytes is O(1) and fed by cached per-node counters; callers re-sync
  // a node after mutating its bottom tiers.
  In3t index;
  auto it = index.AddNode(5, Row::OfString("A"));
  it.value()[0].Increment(1);
  index.SyncAuxBytes(it);
  const int64_t one = index.StateBytes();
  for (Timestamp ve = 2; ve <= 50; ++ve) it.value()[0].Increment(ve);
  index.SyncAuxBytes(it);
  EXPECT_GT(index.StateBytes(), one);
}

TEST(In3tTest, DeleteNodeReclaimsSyncedBytes) {
  In3t index;
  auto it = index.AddNode(5, Row::OfString("A"));
  for (Timestamp ve = 1; ve <= 50; ++ve) it.value()[0].Increment(ve);
  index.SyncAuxBytes(it);
  index.DeleteNode(index.begin());
  EXPECT_EQ(index.StateBytes(), 0);
}

TEST(VeMultisetTest, EqualsComparesContentsNotStructure) {
  VeMultiset a;
  VeMultiset b;
  EXPECT_TRUE(a.Equals(b));
  a.Increment(10, 2);
  a.Increment(20);
  b.Increment(20);
  b.Increment(10);
  EXPECT_FALSE(a.Equals(b));  // counts differ (2 vs 1 at ve=10)
  b.Increment(10);
  EXPECT_TRUE(a.Equals(b));
  b.Decrement(20);
  b.Increment(30);
  EXPECT_FALSE(a.Equals(b));  // same totals, different end times
}

}  // namespace
}  // namespace lmerge
