// ProcessBatch must be a pure performance optimization: for every algorithm
// and every chunking of the same per-stream tapes — including chunk
// boundaries that split a run of same-Vs elements — the batched delivery
// path must produce the exact same output element sequence and the exact
// same stats as element-wise OnElement delivery.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "core/factory.h"
#include "engine/partitioned.h"
#include "temporal/freeze.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using ::lmerge::workload::GeneratorConfig;
using ::lmerge::workload::GeneratePhysicalVariant;
using ::lmerge::workload::GenerateHistory;
using ::lmerge::workload::LogicalHistory;
using ::lmerge::workload::RenderInOrder;
using ::lmerge::workload::VariantOptions;

LogicalHistory ClosedHistory(uint64_t seed) {
  GeneratorConfig config;
  config.num_inserts = 200;
  config.stable_freq = 0.08;
  config.event_duration = 400;
  config.duration_jitter = 250;
  config.max_gap = 15;
  config.key_range = 25;
  config.payload_string_bytes = 8;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);
  return history;
}

bool StatsEqual(const MergeOutputStats& a, const MergeOutputStats& b) {
  return a.inserts_out == b.inserts_out && a.adjusts_out == b.adjusts_out &&
         a.stables_out == b.stables_out && a.inserts_in == b.inserts_in &&
         a.adjusts_in == b.adjusts_in && a.stables_in == b.stables_in &&
         a.dropped == b.dropped;
}

// Requires adjust-free in-order tapes for the ordered algorithms.
bool OrderedVariant(MergeVariant variant) {
  return variant == MergeVariant::kLMR0 || variant == MergeVariant::kLMR1 ||
         variant == MergeVariant::kLMR2;
}

std::vector<ElementSequence> MakeTapes(MergeVariant variant,
                                       const LogicalHistory& history,
                                       uint64_t seed, int num_streams) {
  std::vector<ElementSequence> tapes;
  if (OrderedVariant(variant)) {
    tapes.assign(static_cast<size_t>(num_streams), RenderInOrder(history));
    return tapes;
  }
  for (int v = 0; v < num_streams; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.15 + 0.1 * static_cast<double>(v);
    options.max_disorder_elements = 20;
    options.split_probability = 0.25;  // adjust-heavy: splits same-Vs runs
    options.seed = seed * 1000 + static_cast<uint64_t>(v);
    tapes.push_back(GeneratePhysicalVariant(history, options));
  }
  return tapes;
}

// One interleaving schedule shared by both delivery modes: a sequence of
// (stream, chunk-length) picks.  Chunk lengths of 1..17 land boundaries
// inside same-(Vs,payload) runs and across stable elements routinely.
struct Chunk {
  int stream;
  size_t begin;
  size_t length;
};

std::vector<Chunk> MakeSchedule(const std::vector<ElementSequence>& tapes,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> next(tapes.size(), 0);
  std::vector<Chunk> schedule;
  while (true) {
    std::vector<int> live;
    for (size_t s = 0; s < tapes.size(); ++s) {
      if (next[s] < tapes[s].size()) live.push_back(static_cast<int>(s));
    }
    if (live.empty()) break;
    const int s = live[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
    const size_t remaining = tapes[static_cast<size_t>(s)].size() -
                             next[static_cast<size_t>(s)];
    const size_t length = std::min<size_t>(
        remaining, static_cast<size_t>(rng.UniformInt(1, 17)));
    schedule.push_back({s, next[static_cast<size_t>(s)], length});
    next[static_cast<size_t>(s)] += length;
  }
  return schedule;
}

class BatchEquivalence
    : public ::testing::TestWithParam<std::tuple<MergeVariant, uint64_t>> {};

TEST_P(BatchEquivalence, ChunkedDeliveryMatchesElementWise) {
  const auto [variant, seed] = GetParam();
  const LogicalHistory history = ClosedHistory(seed);
  const int num_streams = 3;
  const std::vector<ElementSequence> tapes =
      MakeTapes(variant, history, seed, num_streams);
  const std::vector<Chunk> schedule = MakeSchedule(tapes, seed * 71 + 5);

  for (const MergePolicy& policy :
       {MergePolicy::Default(), MergePolicy::Eager()}) {
    CollectingSink by_element;
    CollectingSink by_batch;
    auto reference =
        CreateMergeAlgorithm(variant, num_streams, &by_element, policy);
    auto batched =
        CreateMergeAlgorithm(variant, num_streams, &by_batch, policy);

    for (const Chunk& chunk : schedule) {
      const ElementSequence& tape = tapes[static_cast<size_t>(chunk.stream)];
      for (size_t i = chunk.begin; i < chunk.begin + chunk.length; ++i) {
        ASSERT_TRUE(reference->OnElement(chunk.stream, tape[i]).ok());
      }
      ASSERT_TRUE(batched
                      ->ProcessBatch(chunk.stream,
                                     std::span<const StreamElement>(
                                         tape.data() + chunk.begin,
                                         chunk.length))
                      .ok());
      // Identical prefix of output after every chunk, not just at the end:
      // batching must not re-order or defer emissions.
      ASSERT_EQ(by_batch.elements(), by_element.elements())
          << MergeVariantName(variant) << " seed " << seed;
    }

    EXPECT_TRUE(StatsEqual(batched->stats(), reference->stats()))
        << MergeVariantName(variant) << " seed " << seed;
    EXPECT_EQ(batched->max_stable(), reference->max_stable());
    EXPECT_EQ(batched->StateBytes(), reference->StateBytes());
    // And the merged output is still correct, not just self-consistent.
    EXPECT_TRUE(Tdb::Reconstitute(by_batch.elements())
                    .Equals(Tdb::Reconstitute(RenderInOrder(history))))
        << MergeVariantName(variant) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, BatchEquivalence,
    ::testing::Combine(::testing::Values(MergeVariant::kLMR0,
                                         MergeVariant::kLMR1,
                                         MergeVariant::kLMR2,
                                         MergeVariant::kLMR3Plus,
                                         MergeVariant::kLMR3Minus,
                                         MergeVariant::kLMR4),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

// ---------------------------------------------------------------------------
// Partitioned TDB-equivalence (engine/partitioned.h): sharding the merge by
// (payload, Vs) key behind the min-frontier stable-point aggregator must be
// semantically invisible.  Delivery interleavings differ across shard
// threads, so exact output-byte equality with the single-threaded merge is
// not the contract — TDB equivalence at every stable point is:
//   1. the recombined output is a valid physical stream (Tdb::Apply accepts
//      every element — an insert behind the output stable point would fail);
//   2. at every stable(t) the partitioned output emits, the fully-frozen
//      events of its reconstituted prefix equal the ground truth's fully
//      frozen events at t (that set is final once stable(t) is out);
//   3. the final TDB, stable point, and input-side stats match the
//      single-threaded merge of the same tapes.
// ---------------------------------------------------------------------------

std::vector<std::pair<Event, int64_t>> FullyFrozenEvents(const Tdb& tdb,
                                                         Timestamp stable) {
  std::vector<std::pair<Event, int64_t>> frozen;
  tdb.ForEach([&](const Event& event, int64_t count) {
    if (ClassifyFreeze(event.vs, event.ve, stable) ==
        FreezeStatus::kFullyFrozen) {
      frozen.emplace_back(event, count);
    }
  });
  return frozen;
}

class PartitionedEquivalence
    : public ::testing::TestWithParam<
          std::tuple<MergeVariant, uint64_t, int>> {};

TEST_P(PartitionedEquivalence, ShardingIsSemanticallyInvisible) {
  const auto [variant, seed, shards] = GetParam();
  const LogicalHistory history = ClosedHistory(seed);
  const int num_streams = 3;
  const std::vector<ElementSequence> tapes =
      MakeTapes(variant, history, seed, num_streams);
  const Tdb ground_truth = Tdb::Reconstitute(RenderInOrder(history));

  for (const MergePolicy& policy :
       {MergePolicy::Default(), MergePolicy::Eager()}) {
    // Single-threaded reference over the same tapes (deterministic
    // schedule; any schedule yields the same TDB at each stable point).
    CollectingSink single_out;
    auto single =
        CreateMergeAlgorithm(variant, num_streams, &single_out, policy);
    for (const Chunk& chunk : MakeSchedule(tapes, seed * 71 + 5)) {
      const ElementSequence& tape = tapes[static_cast<size_t>(chunk.stream)];
      ASSERT_TRUE(single
                      ->ProcessBatch(chunk.stream,
                                     std::span<const StreamElement>(
                                         tape.data() + chunk.begin,
                                         chunk.length))
                      .ok());
    }

    // Partitioned merge, genuinely threaded (one producer per tape, N
    // shard threads, the aggregator thread).
    CollectingSink partitioned_out;
    PartitionedMergerOptions options;
    options.shards = shards;
    PartitionedMerger merger(
        [&](int, ElementSink* sink) {
          return CreateMergeAlgorithm(variant, num_streams, sink, policy);
        },
        &partitioned_out, options);
    merger.Run(tapes);

    // (1) validity + (2) frozen-prefix equivalence at every stable point.
    Tdb prefix;
    for (const StreamElement& element : partitioned_out.elements()) {
      ASSERT_TRUE(prefix.Apply(element).ok())
          << MergeVariantName(variant) << " seed " << seed << " shards "
          << shards << ": " << element.ToString();
      if (element.is_stable()) {
        ASSERT_EQ(FullyFrozenEvents(prefix, element.stable_time()),
                  FullyFrozenEvents(ground_truth, element.stable_time()))
            << MergeVariantName(variant) << " seed " << seed << " shards "
            << shards << " at stable " << element.stable_time();
      }
    }

    // (3) final-state equivalence with the single-threaded merge.
    EXPECT_EQ(merger.max_stable(), single->max_stable());
    EXPECT_TRUE(prefix.Equals(Tdb::Reconstitute(single_out.elements())));
    EXPECT_TRUE(prefix.Equals(ground_truth))
        << MergeVariantName(variant) << " seed " << seed << " shards "
        << shards;
    const MergeOutputStats stats = merger.StatsSnapshot();
    EXPECT_EQ(stats.inserts_in, single->stats().inserts_in);
    EXPECT_EQ(stats.adjusts_in, single->stats().adjusts_in);
    EXPECT_EQ(stats.stables_in, single->stats().stables_in);
    // First-delivery-wins dedup is interleaving-independent per key, so
    // even the emitted insert count matches the single-threaded merge.
    EXPECT_EQ(stats.inserts_out, single->stats().inserts_out);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsSeedsShards, PartitionedEquivalence,
    ::testing::Combine(::testing::Values(MergeVariant::kLMR0,
                                         MergeVariant::kLMR1,
                                         MergeVariant::kLMR2,
                                         MergeVariant::kLMR3Plus,
                                         MergeVariant::kLMR3Minus,
                                         MergeVariant::kLMR4),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(2, 4)));

// A batch whose tail element is invalid must apply the valid prefix and
// surface the tail's error — same observable behaviour as element-wise
// delivery hitting the same element.
TEST(BatchEquivalenceEdge, ErrorStopsAtFirstInvalidElement) {
  CollectingSink by_element;
  CollectingSink by_batch;
  auto reference = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 1,
                                        &by_element);
  auto batched = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 1, &by_batch);

  const ElementSequence batch = {
      StreamElement::Insert(Row::OfString("ok"), 1, 10),
      StreamElement::Insert(Row::OfString("bad"), 20, 5),  // Ve < Vs
      StreamElement::Insert(Row::OfString("after"), 2, 11),
  };
  Status reference_status;
  for (const StreamElement& element : batch) {
    reference_status = reference->OnElement(0, element);
    if (!reference_status.ok()) break;
  }
  const Status batch_status = batched->ProcessBatch(
      0, std::span<const StreamElement>(batch.data(), batch.size()));
  EXPECT_FALSE(batch_status.ok());
  EXPECT_EQ(batch_status.ToString(), reference_status.ToString());
  EXPECT_EQ(by_batch.elements(), by_element.elements());
}

}  // namespace
}  // namespace lmerge
