#include "core/in2t.h"

#include <gtest/gtest.h>

namespace lmerge {
namespace {

TEST(In2tTest, AddFindDelete) {
  In2t index;
  EXPECT_TRUE(index.empty());
  auto it = index.AddNode(5, Row::OfString("A"));
  EXPECT_EQ(index.node_count(), 1);
  EXPECT_NE(index.SameVsPayload(5, Row::OfString("A")), index.end());
  EXPECT_EQ(index.SameVsPayload(5, Row::OfString("B")), index.end());
  EXPECT_EQ(index.SameVsPayload(6, Row::OfString("A")), index.end());
  index.DeleteNode(it);
  EXPECT_TRUE(index.empty());
}

TEST(In2tTest, OrderedByVsThenPayload) {
  In2t index;
  index.AddNode(7, Row::OfString("B"));
  index.AddNode(5, Row::OfString("Z"));
  index.AddNode(7, Row::OfString("A"));
  index.AddNode(6, Row::OfString("M"));
  std::vector<Timestamp> vs_order;
  for (auto it = index.begin(); it != index.end(); ++it) {
    vs_order.push_back(it.key().vs);
  }
  EXPECT_EQ(vs_order, (std::vector<Timestamp>{5, 6, 7, 7}));
  // Equal Vs ties broken by payload.
  auto it = index.begin();
  ++it;
  ++it;
  EXPECT_EQ(it.key().payload, Row::OfString("A"));
}

TEST(In2tTest, EndTableTracksPerStreamEnds) {
  In2t index;
  auto it = index.AddNode(5, Row::OfString("A"));
  In2t::EndTable& ends = it.value();
  ends.Insert(0, 100);
  ends.Insert(1, 200);
  ends.Insert(kOutputStream, 100);
  EXPECT_EQ(*ends.Find(0), 100);
  EXPECT_EQ(*ends.Find(1), 200);
  EXPECT_EQ(*ends.Find(kOutputStream), 100);
  EXPECT_EQ(ends.Find(2), nullptr);
}

TEST(In2tTest, HalfFrozenScanIsVsPrefix) {
  In2t index;
  for (Timestamp vs = 10; vs < 20; ++vs) {
    index.AddNode(vs, Row::OfInt(vs));
  }
  // Nodes with Vs < 15 form the prefix the stable(15) walk visits.
  int visited = 0;
  for (auto it = index.begin(); it != index.end() && it.key().vs < 15;
       ++it) {
    ++visited;
  }
  EXPECT_EQ(visited, 5);
}

TEST(In2tTest, StateBytesIncludesPayloadOnce) {
  In2t index;
  const std::string blob(1000, 'q');
  auto it = index.AddNode(5, Row::OfIntAndString(1, blob));
  const int64_t one_stream_before = index.StateBytes();
  // Registering ten streams adds hash entries, not payload copies.
  for (int s = 0; s < 10; ++s) it.value().Insert(s, 100 + s);
  const int64_t ten_streams = index.StateBytes();
  EXPECT_LT(ten_streams - one_stream_before, 1000);
  index.DeleteNode(index.begin());
  EXPECT_LT(index.StateBytes(), one_stream_before);
}

}  // namespace
}  // namespace lmerge
