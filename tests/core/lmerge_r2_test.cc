#include "core/lmerge_r2.h"

#include <gtest/gtest.h>

#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(LMergeR2Test, SameVsDifferentOrderDeduplicated) {
  // Grouped-aggregation style: three groups report at Vs=10, but the two
  // replicas enumerate groups in different orders (case R2's defining
  // situation).
  CollectingSink sink;
  LMergeR2 merge(2, &sink);
  const ElementSequence in1 = {Ins("g1", 10, 20), Ins("g2", 10, 20),
                               Ins("g3", 10, 20)};
  const ElementSequence in2 = {Ins("g3", 10, 20), Ins("g1", 10, 20),
                               Ins("g2", 10, 20)};
  // Interleave: 1a 2a 1b 2b ...
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(merge.OnElement(0, in1[i]).ok());
    ASSERT_TRUE(merge.OnElement(1, in2[i]).ok());
  }
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 3);
  EXPECT_TRUE(Tdb::Reconstitute(sink.elements())
                  .Equals(Tdb::Reconstitute(in1)));
}

TEST(LMergeR2Test, HashClearedWhenVsAdvances) {
  CollectingSink sink;
  LMergeR2 merge(2, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("g1", 10, 20)).ok());
  ASSERT_TRUE(merge.OnElement(0, Ins("g1", 20, 30)).ok());
  // Same payload at the new Vs is a fresh event, not a duplicate.
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 2);
  // But a replica's copy of the new one is a duplicate.
  ASSERT_TRUE(merge.OnElement(1, Ins("g1", 20, 30)).ok());
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 2);
}

TEST(LMergeR2Test, LaggardsBehindMaxVsDropped) {
  CollectingSink sink;
  LMergeR2 merge(2, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("g1", 20, 30)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("g9", 10, 30)).ok());  // late
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 1);
  EXPECT_EQ(merge.stats().dropped, 1);
}

TEST(LMergeR2Test, StableMergedByMax) {
  CollectingSink sink;
  LMergeR2 merge(2, &sink);
  ASSERT_TRUE(merge.OnElement(0, Stb(10)).ok());
  ASSERT_TRUE(merge.OnElement(1, Stb(8)).ok());
  ASSERT_TRUE(merge.OnElement(1, Stb(15)).ok());
  EXPECT_EQ(CountKinds(sink.elements()).stables, 2);
  EXPECT_EQ(merge.max_stable(), 15);
}

TEST(LMergeR2Test, AdjustRejected) {
  CollectingSink sink;
  LMergeR2 merge(1, &sink);
  EXPECT_FALSE(merge.OnElement(0, Adj("A", 1, 10, 12)).ok());
}

TEST(LMergeR2Test, MemoryProportionalToCurrentVsCohort) {
  CollectingSink sink;
  LMergeR2 merge(2, &sink);
  // 100 groups at Vs=10.
  for (int g = 0; g < 100; ++g) {
    ASSERT_TRUE(
        merge.OnElement(0, StreamElement::Insert(Row::OfInt(g), 10, 20))
            .ok());
  }
  const int64_t at_ten = merge.StateBytes();
  // Advancing to Vs=20 clears the cohort.
  ASSERT_TRUE(merge.OnElement(0, Ins("fresh", 20, 30)).ok());
  EXPECT_LT(merge.StateBytes(), at_ten);
}

TEST(LMergeR2Test, WorksWithManyStreams) {
  CollectingSink sink;
  LMergeR2 merge(5, &sink);
  for (int s = 0; s < 5; ++s) {
    for (int g = 0; g < 4; ++g) {
      ASSERT_TRUE(
          merge
              .OnElement(s, StreamElement::Insert(
                                Row::OfInt((g * 7 + s) % 4), 10, 20))
              .ok());
    }
  }
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 4);
}

}  // namespace
}  // namespace lmerge
