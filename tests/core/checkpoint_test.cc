// Checkpoint/restore of operator state — the machinery behind query
// jumpstart and cutover (Sec. II-4/5).

#include "common/checkpoint.h"

#include <gtest/gtest.h>

#include "core/lmerge_operator.h"
#include "core/lmerge_r0.h"
#include "core/lmerge_r1.h"
#include "core/lmerge_r2.h"
#include "core/lmerge_r3.h"
#include "core/lmerge_r4.h"
#include "operators/aggregate.h"
#include "replica/cut_certificate.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(CheckpointTest, LMergeR3MidMergeRoundTrip) {
  // Run one merge straight through; run a second one with a checkpoint/
  // restore into a brand-new instance at the halfway point.  The output
  // suffixes must be identical.
  workload::GeneratorConfig config;
  config.num_inserts = 300;
  config.stable_freq = 0.05;
  config.event_duration = 500;
  config.max_gap = 15;
  config.payload_string_bytes = 8;
  config.seed = 21;
  workload::LogicalHistory history = workload::GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);

  std::vector<ElementSequence> inputs;
  for (uint64_t v = 0; v < 2; ++v) {
    workload::VariantOptions options;
    options.disorder_fraction = 0.3;
    options.split_probability = 0.3;
    options.seed = 60 + v;
    inputs.push_back(GeneratePhysicalVariant(history, options));
  }

  // Reference: uninterrupted run, strict alternation.
  CollectingSink reference;
  LMergeR3 uninterrupted(2, &reference);
  const size_t n = std::max(inputs[0].size(), inputs[1].size());
  for (size_t i = 0; i < n; ++i) {
    if (i < inputs[0].size()) {
      ASSERT_TRUE(uninterrupted.OnElement(0, inputs[0][i]).ok());
    }
    if (i < inputs[1].size()) {
      ASSERT_TRUE(uninterrupted.OnElement(1, inputs[1][i]).ok());
    }
  }

  // Interrupted run: checkpoint at the halfway point, restore elsewhere.
  CollectingSink first_half;
  LMergeR3 original(2, &first_half);
  const size_t half = n / 2;
  for (size_t i = 0; i < half; ++i) {
    if (i < inputs[0].size()) {
      ASSERT_TRUE(original.OnElement(0, inputs[0][i]).ok());
    }
    if (i < inputs[1].size()) {
      ASSERT_TRUE(original.OnElement(1, inputs[1][i]).ok());
    }
  }
  const std::string blob = SaveCheckpoint(original);

  CollectingSink second_half;
  LMergeR3 restored(2, &second_half);
  ASSERT_TRUE(LoadCheckpoint(blob, &restored).ok());
  EXPECT_EQ(restored.max_stable(), original.max_stable());
  EXPECT_EQ(restored.index_node_count(), original.index_node_count());
  EXPECT_EQ(restored.StateBytes(), original.StateBytes());
  for (size_t i = half; i < n; ++i) {
    if (i < inputs[0].size()) {
      ASSERT_TRUE(restored.OnElement(0, inputs[0][i]).ok());
    }
    if (i < inputs[1].size()) {
      ASSERT_TRUE(restored.OnElement(1, inputs[1][i]).ok());
    }
  }

  // The concatenated output is exactly the uninterrupted output.
  ElementSequence combined = first_half.elements();
  for (const StreamElement& e : second_half.elements()) {
    combined.push_back(e);
  }
  EXPECT_EQ(combined, reference.elements());
}

TEST(CheckpointTest, AggregateMidWindowRoundTrip) {
  AggregateConfig config;
  config.window_size = 100;
  config.group_column = 0;
  config.mode = AggregateMode::kAggressive;

  GroupedAggregate original("agg", config);
  CollectingSink sink_a;
  original.AddSink(&sink_a);
  original.Consume(0, StreamElement::Insert(Row::OfInt(1), 10, 20));
  original.Consume(0, StreamElement::Insert(Row::OfInt(1), 30, 40));
  original.Consume(0, StreamElement::Insert(Row::OfInt(2), 50, 60));
  const std::string blob = SaveCheckpoint(original);

  GroupedAggregate restored("agg2", config);
  CollectingSink sink_b;
  restored.AddSink(&sink_b);
  ASSERT_TRUE(LoadCheckpoint(blob, &restored).ok());
  EXPECT_EQ(restored.StateBytes(), original.StateBytes());

  // Both continue identically.
  original.Consume(0, StreamElement::Insert(Row::OfInt(1), 70, 80));
  restored.Consume(0, StreamElement::Insert(Row::OfInt(1), 70, 80));
  original.Consume(0, Stb(200));
  restored.Consume(0, Stb(200));
  ASSERT_GE(sink_a.elements().size(), sink_b.elements().size());
  const size_t tail = sink_b.elements().size();
  // Compare the post-checkpoint suffix of the original with the restored
  // instance's full output.
  ElementSequence suffix(sink_a.elements().end() - static_cast<int64_t>(tail),
                         sink_a.elements().end());
  EXPECT_EQ(suffix, sink_b.elements());
}

TEST(CheckpointTest, LMergeR4MidMergeRoundTrip) {
  // R4 multiset state (duplicate keys, several end times per stream)
  // survives a snapshot and the restored instance continues identically.
  auto feed_prefix = [](LMergeR4* merge) {
    LM_CHECK(merge->OnElement(0, Ins("A", 5, 50)).ok());
    LM_CHECK(merge->OnElement(0, Ins("A", 5, 50)).ok());   // duplicate
    LM_CHECK(merge->OnElement(0, Ins("A", 5, 80)).ok());   // same key
    LM_CHECK(merge->OnElement(1, Ins("A", 5, 60)).ok());
    LM_CHECK(merge->OnElement(1, Ins("B", 7, kInfinity)).ok());
    LM_CHECK(merge->OnElement(0, Stb(10)).ok());
  };
  auto feed_suffix = [](LMergeR4* merge) {
    LM_CHECK(merge->OnElement(1, Ins("A", 5, 50)).ok());
    LM_CHECK(merge->OnElement(1, Ins("A", 5, 50)).ok());
    LM_CHECK(merge->OnElement(1, Adj("B", 7, kInfinity, 90)).ok());
    LM_CHECK(merge->OnElement(1, Stb(200)).ok());
  };

  CollectingSink reference;
  LMergeR4 uninterrupted(2, &reference);
  feed_prefix(&uninterrupted);
  feed_suffix(&uninterrupted);

  CollectingSink first_half;
  LMergeR4 original(2, &first_half);
  feed_prefix(&original);
  const std::string blob = SaveCheckpoint(original);
  CollectingSink second_half;
  LMergeR4 restored(2, &second_half);
  ASSERT_TRUE(LoadCheckpoint(blob, &restored).ok());
  EXPECT_EQ(restored.index_node_count(), original.index_node_count());
  EXPECT_EQ(restored.StateBytes(), original.StateBytes());
  feed_suffix(&restored);

  ElementSequence combined = first_half.elements();
  for (const StreamElement& e : second_half.elements()) {
    combined.push_back(e);
  }
  EXPECT_EQ(combined, reference.elements());
}

TEST(CheckpointTest, OperatorLevelMigration) {
  // Checkpoint the whole LMergeOperator (attach registry + merge state),
  // restore it "on another machine", and keep going — the cutover flow.
  LMergeOperator original("lm", 2, MergeVariant::kLMR3Plus);
  CollectingSink out_a;
  original.AddSink(&out_a);
  ASSERT_TRUE(original.SupportsCheckpoint());
  original.Consume(0, Ins("A", 5, 50));
  original.Consume(1, Ins("A", 5, 50));
  original.DetachInput(1);
  original.Consume(0, Stb(10));
  const int late = original.AttachInput(/*join_time=*/100);
  const std::string blob = SaveCheckpoint(original);

  LMergeOperator migrated("lm2", 1, MergeVariant::kLMR3Plus);
  CollectingSink out_b;
  migrated.AddSink(&out_b);
  ASSERT_TRUE(LoadCheckpoint(blob, &migrated).ok());
  EXPECT_EQ(migrated.input_count(), 3);
  EXPECT_FALSE(migrated.InputActive(1));   // detach flag survived
  EXPECT_FALSE(migrated.InputJoined(late));  // pending join survived
  EXPECT_EQ(migrated.algorithm().max_stable(), 10);

  // The migrated operator continues the merge: A's end revision and the
  // final stable behave exactly as on the original.
  migrated.Consume(0, StreamElement::Adjust(Row::OfString("A"), 5, 50, 70));
  migrated.Consume(0, Stb(200));
  ElementSequence consumer_view = out_a.elements();
  for (const StreamElement& e : out_b.elements()) consumer_view.push_back(e);
  const Tdb tdb = Tdb::Reconstitute(consumer_view);
  EXPECT_EQ(tdb.CountOf(Event(Row::OfString("A"), 5, 70)), 1);
  EXPECT_EQ(tdb.stable_point(), 200);
}

TEST(CheckpointTest, OperatorRejectsNonCheckpointableVariant) {
  LMergeOperator lm("lm", 2, MergeVariant::kCounting);
  EXPECT_FALSE(lm.SupportsCheckpoint());
  // RestoreState must fail cleanly rather than crash.
  Encoder encoder;
  encoder.WriteU32(0);
  encoder.WriteI64(kMinTimestamp);
  Decoder payload(encoder.bytes());
  EXPECT_FALSE(lm.RestoreState(&payload).ok());
}

TEST(CheckpointTest, BadMagicRejected) {
  CollectingSink sink;
  LMergeR3 merge(2, &sink);
  std::string blob = SaveCheckpoint(merge);
  blob[0] = 'X';
  LMergeR3 target(2, &sink);
  const Status status = LoadCheckpoint(blob, &target);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST(CheckpointTest, TruncatedCheckpointRejected) {
  CollectingSink sink;
  LMergeR3 merge(2, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 50)).ok());
  const std::string blob = SaveCheckpoint(merge);
  LMergeR3 target(2, &sink);
  EXPECT_FALSE(
      LoadCheckpoint(blob.substr(0, blob.size() - 3), &target).ok());
}

TEST(CheckpointTest, RestoreGrowsStreamRegistry) {
  CollectingSink sink;
  LMergeR3 merge(4, &sink);
  ASSERT_TRUE(merge.OnElement(3, Ins("A", 5, 50)).ok());
  const std::string blob = SaveCheckpoint(merge);
  CollectingSink sink2;
  LMergeR3 restored(1, &sink2);  // fewer streams than the snapshot had
  ASSERT_TRUE(LoadCheckpoint(blob, &restored).ok());
  EXPECT_EQ(restored.stream_count(), 4);
  // Stream 3's state survived: its duplicate is absorbed.
  ASSERT_TRUE(restored.OnElement(3, Ins("A", 5, 50)).ok());
  EXPECT_EQ(testing_util::CountKinds(sink2.elements()).inserts, 0);
}

TEST(CheckpointTest, JumpstartSeedsFromCheckpointBlob) {
  // The Sec. II-4 flow: a running merge checkpoints; a new query instance
  // restores the blob and continues against the live stream.
  CollectingSink running;
  LMergeR3 live(1, &running);
  ASSERT_TRUE(live.OnElement(0, Ins("proc-1", 100, kInfinity)).ok());
  ASSERT_TRUE(live.OnElement(0, Stb(5000)).ok());
  const std::string blob = SaveCheckpoint(live);

  CollectingSink resumed;
  LMergeR3 fresh(1, &resumed);
  ASSERT_TRUE(LoadCheckpoint(blob, &fresh).ok());
  ASSERT_TRUE(
      fresh.OnElement(0, Adj("proc-1", 100, kInfinity, 9000)).ok());
  ASSERT_TRUE(fresh.OnElement(0, Stb(10000)).ok());
  // The long-lived process ends correctly even though the fresh instance
  // never saw its original insert element.  The consumer's view is the
  // original output followed by the resumed instance's output.
  ElementSequence consumer_view = running.elements();
  for (const StreamElement& e : resumed.elements()) {
    consumer_view.push_back(e);
  }
  const Tdb out = Tdb::Reconstitute(consumer_view);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("proc-1"), 100, 9000)), 1);
}

TEST(CheckpointTest, V2PoolsSharedPayloadsAtLeastTwiceSmaller) {
  // Many index entries sharing one interned payload: v2 writes the rep once
  // in the pool section and 4-byte references per entry, v1 writes the full
  // row per entry.  The pooled blob must be at least 2x smaller.
  CollectingSink sink;
  LMergeR3 merge(2, &sink);
  const std::string payload(64, 'p');
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        merge.OnElement(0, Ins(payload, i + 1, i + 100000)).ok());
  }
  const std::string v2 = SaveCheckpoint(merge);
  const std::string v1 = SaveCheckpoint(merge, kCheckpointVersionV1);
  EXPECT_GE(v1.size(), 2 * v2.size())
      << "v1=" << v1.size() << " bytes, v2=" << v2.size() << " bytes";

  // Both formats restore to the same state.
  CollectingSink sink_v1;
  CollectingSink sink_v2;
  LMergeR3 from_v1(2, &sink_v1);
  LMergeR3 from_v2(2, &sink_v2);
  ASSERT_TRUE(LoadCheckpoint(v1, &from_v1).ok());
  ASSERT_TRUE(LoadCheckpoint(v2, &from_v2).ok());
  EXPECT_EQ(from_v1.index_node_count(), merge.index_node_count());
  EXPECT_EQ(from_v2.index_node_count(), merge.index_node_count());
  EXPECT_EQ(from_v1.StateBytes(), from_v2.StateBytes());
}

TEST(CheckpointTest, V1FormatStillRoundTrips) {
  // Old consumers keep working: a v1 blob (inline payloads) written by this
  // build restores and the instance continues identically.
  auto feed_prefix = [](LMergeR3* merge) {
    LM_CHECK(merge->OnElement(0, Ins("A", 5, 50)).ok());
    LM_CHECK(merge->OnElement(1, Ins("B", 7, kInfinity)).ok());
    LM_CHECK(merge->OnElement(0, Stb(10)).ok());
  };
  auto feed_suffix = [](LMergeR3* merge) {
    LM_CHECK(merge->OnElement(1, Ins("A", 5, 50)).ok());
    LM_CHECK(merge->OnElement(0, Adj("B", 7, kInfinity, 90)).ok());
    LM_CHECK(merge->OnElement(1, Stb(200)).ok());
  };
  CollectingSink reference;
  LMergeR3 uninterrupted(2, &reference);
  feed_prefix(&uninterrupted);
  feed_suffix(&uninterrupted);

  CollectingSink first_half;
  LMergeR3 original(2, &first_half);
  feed_prefix(&original);
  const std::string blob = SaveCheckpoint(original, kCheckpointVersionV1);
  CollectingSink second_half;
  LMergeR3 restored(2, &second_half);
  ASSERT_TRUE(LoadCheckpoint(blob, &restored).ok());
  EXPECT_EQ(restored.StateBytes(), original.StateBytes());
  feed_suffix(&restored);

  ElementSequence combined = first_half.elements();
  for (const StreamElement& e : second_half.elements()) {
    combined.push_back(e);
  }
  EXPECT_EQ(combined, reference.elements());
}

TEST(CheckpointTest, EmbeddedCutCertificateRoundTrips) {
  replica::CutCertificate cert;
  cert.variant = MergeVariant::kLMR3Plus;
  cert.policy = MergePolicy::Eager();
  cert.output_stable = 123;
  cert.elements_sent_at_cut = 42;
  cert.inputs.push_back({0, true, 100, 17});
  cert.inputs.push_back({1, false, kMinTimestamp, 0});

  CollectingSink sink;
  LMergeR3 merge(2, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 50)).ok());
  const std::string blob = SaveCheckpoint(
      merge, kCheckpointVersion, replica::SerializeCutCertificate(cert));

  CollectingSink sink2;
  LMergeR3 restored(2, &sink2);
  std::string embedded;
  ASSERT_TRUE(LoadCheckpoint(blob, &restored, &embedded).ok());
  replica::CutCertificate parsed;
  ASSERT_TRUE(replica::ParseCutCertificate(embedded, &parsed).ok());
  EXPECT_EQ(parsed.variant, MergeVariant::kLMR3Plus);
  EXPECT_EQ(parsed.policy.adjust_policy, AdjustPolicy::kEager);
  EXPECT_EQ(parsed.output_stable, 123);
  EXPECT_EQ(parsed.elements_sent_at_cut, 42);
  ASSERT_EQ(parsed.inputs.size(), 2u);
  EXPECT_EQ(parsed.inputs[0].stream_id, 0);
  EXPECT_TRUE(parsed.inputs[0].active);
  EXPECT_EQ(parsed.inputs[0].stable_point, 100);
  EXPECT_EQ(parsed.inputs[0].elements_in, 17);
  EXPECT_FALSE(parsed.inputs[1].active);
}

TEST(CheckpointTest, InspectReportsSectionsWithoutRestoring) {
  replica::CutCertificate cert;
  cert.variant = MergeVariant::kLMR3Plus;
  cert.output_stable = 10;
  CollectingSink sink;
  LMergeR3 merge(1, &sink);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 5, 50)).ok());
  ASSERT_TRUE(merge.OnElement(0, Ins("B", 6, 60)).ok());
  const std::string v2 = SaveCheckpoint(
      merge, kCheckpointVersion, replica::SerializeCutCertificate(cert));

  CheckpointInfo info;
  ASSERT_TRUE(InspectCheckpoint(v2, &info).ok());
  EXPECT_EQ(info.version, kCheckpointVersion);
  EXPECT_EQ(info.flags, kCheckpointFlagCutCertificate);
  EXPECT_EQ(info.total_bytes, v2.size());
  EXPECT_EQ(info.pool_entries, 2u);
  EXPECT_GT(info.pool_bytes, 0u);
  EXPECT_GT(info.body_bytes, 0u);
  replica::CutCertificate parsed;
  ASSERT_TRUE(
      replica::ParseCutCertificate(info.cut_certificate, &parsed).ok());
  EXPECT_EQ(parsed.output_stable, 10);

  const std::string v1 = SaveCheckpoint(merge, kCheckpointVersionV1);
  ASSERT_TRUE(InspectCheckpoint(v1, &info).ok());
  EXPECT_EQ(info.version, kCheckpointVersionV1);
  EXPECT_EQ(info.pool_entries, 0u);
  EXPECT_GT(info.body_bytes, 0u);
  EXPECT_TRUE(info.cut_certificate.empty());

  std::string bad = v2;
  bad[0] = 'X';
  EXPECT_FALSE(InspectCheckpoint(bad, &info).ok());
}

TEST(CheckpointTest, LMergeR0MidMergeRoundTrip) {
  auto feed_prefix = [](LMergeR0* merge) {
    LM_CHECK(merge->OnElement(0, Ins("A", 5, 50)).ok());
    LM_CHECK(merge->OnElement(1, Ins("B", 7, 70)).ok());
    LM_CHECK(merge->OnElement(0, Stb(10)).ok());
  };
  auto feed_suffix = [](LMergeR0* merge) {
    LM_CHECK(merge->OnElement(1, Ins("C", 12, 80)).ok());
    LM_CHECK(merge->OnElement(1, Stb(20)).ok());
    LM_CHECK(merge->OnElement(0, Stb(30)).ok());
  };
  CollectingSink reference;
  LMergeR0 uninterrupted(2, &reference);
  feed_prefix(&uninterrupted);
  feed_suffix(&uninterrupted);

  CollectingSink first_half;
  LMergeR0 original(2, &first_half);
  feed_prefix(&original);
  const std::string blob = SaveCheckpoint(original);
  CollectingSink second_half;
  LMergeR0 restored(2, &second_half);
  ASSERT_TRUE(LoadCheckpoint(blob, &restored).ok());
  EXPECT_EQ(restored.max_stable(), original.max_stable());
  feed_suffix(&restored);

  ElementSequence combined = first_half.elements();
  for (const StreamElement& e : second_half.elements()) {
    combined.push_back(e);
  }
  EXPECT_EQ(combined, reference.elements());
}

TEST(CheckpointTest, LMergeR1MidMergeRoundTrip) {
  // R1's per-stream same-Vs counters must survive: the duplicate in the
  // suffix is only absorbed if the restored counters match.
  auto feed_prefix = [](LMergeR1* merge) {
    LM_CHECK(merge->OnElement(0, Ins("A", 5, 50)).ok());
    LM_CHECK(merge->OnElement(0, Ins("B", 5, 60)).ok());
    LM_CHECK(merge->OnElement(1, Ins("A", 5, 50)).ok());
  };
  auto feed_suffix = [](LMergeR1* merge) {
    LM_CHECK(merge->OnElement(1, Ins("B", 5, 60)).ok());
    LM_CHECK(merge->OnElement(0, Stb(100)).ok());
    LM_CHECK(merge->OnElement(1, Stb(100)).ok());
  };
  CollectingSink reference;
  LMergeR1 uninterrupted(2, &reference);
  feed_prefix(&uninterrupted);
  feed_suffix(&uninterrupted);

  CollectingSink first_half;
  LMergeR1 original(2, &first_half);
  feed_prefix(&original);
  const std::string blob = SaveCheckpoint(original);
  CollectingSink second_half;
  LMergeR1 restored(2, &second_half);
  ASSERT_TRUE(LoadCheckpoint(blob, &restored).ok());
  feed_suffix(&restored);

  ElementSequence combined = first_half.elements();
  for (const StreamElement& e : second_half.elements()) {
    combined.push_back(e);
  }
  EXPECT_EQ(combined, reference.elements());
}

TEST(CheckpointTest, LMergeR2MidMergeRoundTrip) {
  // R2's seen-set (with pooled payload rows in v2) must survive: the
  // suffix replays prefix payloads, which only dedup against restored state.
  auto feed_prefix = [](LMergeR2* merge) {
    LM_CHECK(merge->OnElement(0, Ins("A", 5, 50)).ok());
    LM_CHECK(merge->OnElement(0, Ins("B", 7, 70)).ok());
    LM_CHECK(merge->OnElement(1, Ins("A", 5, 50)).ok());
  };
  auto feed_suffix = [](LMergeR2* merge) {
    LM_CHECK(merge->OnElement(1, Ins("B", 7, 70)).ok());
    LM_CHECK(merge->OnElement(1, Ins("C", 9, 90)).ok());
    LM_CHECK(merge->OnElement(0, Stb(100)).ok());
    LM_CHECK(merge->OnElement(1, Stb(100)).ok());
  };
  CollectingSink reference;
  LMergeR2 uninterrupted(2, &reference);
  feed_prefix(&uninterrupted);
  feed_suffix(&uninterrupted);

  CollectingSink first_half;
  LMergeR2 original(2, &first_half);
  feed_prefix(&original);
  const std::string blob = SaveCheckpoint(original);
  CollectingSink second_half;
  LMergeR2 restored(2, &second_half);
  ASSERT_TRUE(LoadCheckpoint(blob, &restored).ok());
  EXPECT_EQ(restored.StateBytes(), original.StateBytes());
  feed_suffix(&restored);

  ElementSequence combined = first_half.elements();
  for (const StreamElement& e : second_half.elements()) {
    combined.push_back(e);
  }
  EXPECT_EQ(combined, reference.elements());
}

}  // namespace
}  // namespace lmerge
