// CountingMerge: the Sec. I strawman.  Works when inputs are identical
// element-for-element; demonstrably breaks under divergence and failures —
// the motivation for LMerge.

#include "core/counting_merge.h"

#include <gtest/gtest.h>

#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::RoundRobinInto;
using ::lmerge::testing_util::Stb;

TEST(CountingMergeTest, IdenticalStreamsMergeCleanly) {
  CollectingSink collected;
  CountingMerge merge(3, &collected);
  const ElementSequence stream = {Ins("A", 1, 10), Ins("B", 2, 10), Stb(3)};
  RoundRobinInto(&merge, {stream, stream, stream});
  EXPECT_EQ(collected.elements(), stream);
}

TEST(CountingMergeTest, FasterStreamDrives) {
  CollectingSink collected;
  CountingMerge merge(2, &collected);
  const ElementSequence stream = {Ins("A", 1, 10), Ins("B", 2, 10),
                                  Ins("C", 3, 10)};
  for (const auto& e : stream) ASSERT_TRUE(merge.OnElement(0, e).ok());
  for (const auto& e : stream) ASSERT_TRUE(merge.OnElement(1, e).ok());
  EXPECT_EQ(collected.elements(), stream);
  EXPECT_EQ(merge.stats().dropped, 3);
}

TEST(CountingMergeTest, BreaksUnderReordering) {
  // The same logical content in different orders: counting merge emits a
  // mixture that duplicates one event and omits another.
  CollectingSink collected;
  CountingMerge merge(2, &collected);
  ASSERT_TRUE(merge.OnElement(0, Ins("A", 1, 10)).ok());  // out: A
  ASSERT_TRUE(merge.OnElement(1, Ins("B", 2, 10)).ok());  // count 1: dropped
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 1, 10)).ok());  // out: A again!
  const Tdb out = Tdb::Reconstitute(collected.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 1, 10)), 2);  // duplicated
  EXPECT_EQ(out.CountOf(Event(Row::OfString("B"), 2, 10)), 0);  // lost
}

TEST(CountingMergeTest, BreaksUnderRestartReplay) {
  // A replica fails, restarts, and replays its stream from the beginning
  // (Sec. I: "the trivial counting merge does not work correctly when
  // failures exist").
  CollectingSink collected;
  CountingMerge merge(2, &collected);
  const ElementSequence stream = {Ins("A", 1, 10), Ins("B", 2, 10),
                                  Ins("C", 3, 10)};
  for (const auto& e : stream) ASSERT_TRUE(merge.OnElement(0, e).ok());
  // Replica 1 replays from scratch, then continues past replica 0.
  for (const auto& e : stream) ASSERT_TRUE(merge.OnElement(1, e).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("D", 4, 10)).ok());
  ASSERT_TRUE(merge.OnElement(1, Ins("A", 1, 10)).ok());  // duplicate replay
  const Tdb out = Tdb::Reconstitute(collected.elements());
  // The replayed A is emitted a second time: duplication, not a clean merge.
  EXPECT_EQ(out.CountOf(Event(Row::OfString("A"), 1, 10)), 2);
}

TEST(CountingMergeTest, StateIsConstant) {
  CollectingSink collected;
  CountingMerge merge(4, &collected);
  const int64_t before = merge.StateBytes();
  for (int i = 1; i < 1000; ++i) {
    ASSERT_TRUE(merge.OnElement(0, Ins("X", i, i + 1)).ok());
  }
  EXPECT_EQ(merge.StateBytes(), before);
}

}  // namespace
}  // namespace lmerge
