#include "stream/sink.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(SinkTest, CollectingSinkGathersAndReleases) {
  CollectingSink sink;
  sink.OnElement(Ins("A", 1, 5));
  sink.OnElement(Stb(2));
  EXPECT_EQ(sink.elements().size(), 2u);
  const ElementSequence taken = sink.TakeElements();
  EXPECT_EQ(taken.size(), 2u);
  sink.Clear();
  EXPECT_TRUE(sink.elements().empty());
}

TEST(SinkTest, CountingSinkByKindAndForwarding) {
  CollectingSink downstream;
  CountingSink counter(&downstream);
  counter.OnElement(Ins("A", 1, 5));
  counter.OnElement(Adj("A", 1, 5, 7));
  counter.OnElement(Adj("A", 1, 7, 9));
  counter.OnElement(Stb(2));
  EXPECT_EQ(counter.inserts(), 1);
  EXPECT_EQ(counter.adjusts(), 2);
  EXPECT_EQ(counter.stables(), 1);
  EXPECT_EQ(counter.total(), 4);
  EXPECT_EQ(downstream.elements().size(), 4u);
}

TEST(SinkTest, CountingSinkWithoutDownstream) {
  CountingSink counter;
  counter.OnElement(Ins("A", 1, 5));
  EXPECT_EQ(counter.inserts(), 1);
}

TEST(SinkTest, ValidatingSinkForwardsGoodElements) {
  CollectingSink downstream;
  ValidatingSink sink(StreamProperties::None(), &downstream);
  sink.OnElement(Ins("A", 1, 5));
  sink.OnElement(Adj("A", 1, 5, 9));
  EXPECT_EQ(downstream.elements().size(), 2u);
  EXPECT_EQ(sink.validator().tdb().EventCount(), 1);
}

TEST(SinkDeathTest, ValidatingSinkAbortsOnBadStream) {
#ifdef GTEST_FLAG_SET
  GTEST_FLAG_SET(death_test_style, "threadsafe");
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
#endif
  ValidatingSink sink(StreamProperties::None());
  EXPECT_DEATH(sink.OnElement(Adj("ghost", 1, 5, 9)),
               "invalid output element");
}

TEST(SinkTest, NullSinkSwallows) {
  NullSink sink;
  sink.OnElement(Ins("A", 1, 5));  // no observable effect, no crash
}

}  // namespace
}  // namespace lmerge
