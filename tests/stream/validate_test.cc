#include "stream/validate.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(ValidateTest, AcceptsWellFormedStream) {
  StreamValidator v;
  EXPECT_TRUE(v.ConsumeAll({Ins("A", 1, 10), Ins("B", 2, kInfinity),
                            Adj("B", 2, kInfinity, 8), Stb(5), Ins("C", 5, 9)})
                  .ok());
  EXPECT_EQ(v.element_count(), 5);
  EXPECT_EQ(v.tdb().EventCount(), 3);
}

TEST(ValidateTest, RejectsInsertBehindStable) {
  StreamValidator v;
  ASSERT_TRUE(v.Consume(Stb(100)).ok());
  EXPECT_FALSE(v.Consume(Ins("A", 99, 200)).ok());
  // State unchanged: the good insert still works.
  EXPECT_TRUE(v.Consume(Ins("A", 100, 200)).ok());
}

TEST(ValidateTest, RejectsAdjustOfMissingEvent) {
  StreamValidator v;
  EXPECT_FALSE(v.Consume(Adj("A", 1, 5, 7)).ok());
}

TEST(ValidateTest, OrderedPropertyEnforced) {
  StreamProperties props;
  props.ordered = true;
  StreamValidator v(props);
  ASSERT_TRUE(v.Consume(Ins("A", 10, 20)).ok());
  ASSERT_TRUE(v.Consume(Ins("B", 10, 20)).ok());  // equal Vs fine
  EXPECT_FALSE(v.Consume(Ins("C", 9, 20)).ok());
}

TEST(ValidateTest, StrictlyIncreasingRejectsTies) {
  StreamProperties props;
  props.strictly_increasing = true;
  StreamValidator v(props);
  ASSERT_TRUE(v.Consume(Ins("A", 10, 20)).ok());
  EXPECT_FALSE(v.Consume(Ins("B", 10, 20)).ok());
  EXPECT_TRUE(v.Consume(Ins("B", 11, 20)).ok());
}

TEST(ValidateTest, InsertOnlyRejectsAdjust) {
  StreamProperties props;
  props.insert_only = true;
  StreamValidator v(props);
  ASSERT_TRUE(v.Consume(Ins("A", 1, 10)).ok());
  EXPECT_FALSE(v.Consume(Adj("A", 1, 10, 12)).ok());
}

TEST(ValidateTest, KeyPropertyRejectsDuplicateVsPayload) {
  StreamProperties props;
  props.vs_payload_key = true;
  StreamValidator v(props);
  ASSERT_TRUE(v.Consume(Ins("A", 1, 10)).ok());
  ASSERT_TRUE(v.Consume(Ins("A", 2, 10)).ok());  // different Vs, fine
  EXPECT_FALSE(v.Consume(Ins("A", 1, 12)).ok());
  EXPECT_EQ(v.tdb().EventCount(), 2);  // rejected insert rolled back
}

TEST(ValidateTest, TracksMaxVs) {
  StreamValidator v;
  ASSERT_TRUE(v.ConsumeAll({Ins("A", 5, 10), Ins("B", 3, 10)}).ok());
  EXPECT_EQ(v.max_vs(), 5);
}

TEST(ValidateTest, ConsumeAllStopsAtFirstError) {
  StreamValidator v;
  const Status status = v.ConsumeAll(
      {Ins("A", 1, 10), Adj("B", 1, 5, 7), Ins("C", 2, 10)});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(v.element_count(), 1);  // C never consumed
}

}  // namespace
}  // namespace lmerge
