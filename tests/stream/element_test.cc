#include "stream/element.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::P;
using ::lmerge::testing_util::Stb;

TEST(ElementTest, InsertAccessors) {
  const StreamElement e = Ins("A", 5, 10);
  EXPECT_TRUE(e.is_insert());
  EXPECT_EQ(e.vs(), 5);
  EXPECT_EQ(e.ve(), 10);
  EXPECT_EQ(e.payload(), P("A"));
  EXPECT_EQ(e.ToEvent(), Event(P("A"), 5, 10));
}

TEST(ElementTest, AdjustAccessors) {
  const StreamElement e = Adj("A", 5, 10, 12);
  EXPECT_TRUE(e.is_adjust());
  EXPECT_EQ(e.v_old(), 10);
  EXPECT_EQ(e.ve(), 12);
}

TEST(ElementTest, StableAccessors) {
  const StreamElement e = Stb(42);
  EXPECT_TRUE(e.is_stable());
  EXPECT_EQ(e.stable_time(), 42);
}

TEST(ElementTest, Equality) {
  EXPECT_EQ(Ins("A", 1, 2), Ins("A", 1, 2));
  EXPECT_NE(Ins("A", 1, 2), Ins("A", 1, 3));
  EXPECT_NE(Ins("A", 1, 2), Adj("A", 1, 2, 2));
  EXPECT_EQ(Stb(5), Stb(5));
  EXPECT_NE(Stb(5), Stb(6));
}

TEST(ElementTest, ToStringFormats) {
  EXPECT_EQ(Ins("A", 6, kInfinity).ToString(), "insert((\"A\"), 6, inf)");
  EXPECT_EQ(Adj("A", 6, 20, 25).ToString(),
            "adjust((\"A\"), 6, 20 -> 25)");
  EXPECT_EQ(Stb(11).ToString(), "stable(11)");
}

TEST(ElementTest, SequenceToString) {
  const std::string text = ElementSequenceToString({Ins("A", 1, 2), Stb(3)});
  EXPECT_NE(text.find("insert"), std::string::npos);
  EXPECT_NE(text.find("stable(3)"), std::string::npos);
}

TEST(ElementTest, DeepSizeIncludesPayload) {
  const StreamElement small = Ins("A", 1, 2);
  const StreamElement big =
      StreamElement::Insert(Row::OfIntAndString(1, std::string(1000, 'x')),
                            1, 2);
  EXPECT_GE(big.DeepSizeBytes(), small.DeepSizeBytes() + 900);
}

TEST(ElementTest, KindNames) {
  EXPECT_STREQ(ElementKindName(ElementKind::kInsert), "insert");
  EXPECT_STREQ(ElementKindName(ElementKind::kAdjust), "adjust");
  EXPECT_STREQ(ElementKindName(ElementKind::kStable), "stable");
}

}  // namespace
}  // namespace lmerge
