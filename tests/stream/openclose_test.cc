// The open/close element model of Example 3, its equivalence relation, the
// Example 4 compatibility criterion, and lossless conversion to the interval
// model.

#include "stream/openclose.h"

#include <gtest/gtest.h>

#include "temporal/tdb.h"

namespace lmerge {
namespace {

OpenCloseElement Open(const std::string& p, Timestamp t) {
  return OpenCloseElement::Open(Row::OfString(p), t);
}
OpenCloseElement Close(const std::string& p, Timestamp t) {
  return OpenCloseElement::Close(Row::OfString(p), t);
}

// Example 3's three prefixes, all denoting {A[1,4), B[2,5), C[3,inf)}.
OpenCloseSequence S5() {
  return {Open("A", 1), Open("B", 2), Open("C", 3), Close("A", 4),
          Close("B", 5)};
}
OpenCloseSequence U5() {
  return {Open("A", 1), Close("A", 4), Open("B", 2), Close("B", 5),
          Open("C", 3)};
}
OpenCloseSequence W6() {
  // close(B,6) later revised by close(B,5).
  return {Open("B", 2), Close("B", 6), Open("A", 1),
          Open("C", 3), Close("A", 4), Close("B", 5)};
}

TEST(OpenCloseTest, ExampleThreeEquivalence) {
  const OpenCloseTdb s = OpenCloseTdb::Reconstitute(S5());
  const OpenCloseTdb u = OpenCloseTdb::Reconstitute(U5());
  const OpenCloseTdb w = OpenCloseTdb::Reconstitute(W6());
  EXPECT_TRUE(s.Equals(u));
  EXPECT_TRUE(s.Equals(w));
  Timestamp vs = 0;
  Timestamp ve = 0;
  ASSERT_TRUE(s.Lookup(Row::OfString("B"), &vs, &ve));
  EXPECT_EQ(vs, 2);
  EXPECT_EQ(ve, 5);
  ASSERT_TRUE(s.Lookup(Row::OfString("C"), &vs, &ve));
  EXPECT_EQ(ve, kInfinity);
}

TEST(OpenCloseTest, CloseWithoutOpenFails) {
  OpenCloseTdb tdb;
  EXPECT_FALSE(tdb.Apply(Close("A", 5)).ok());
}

TEST(OpenCloseTest, DoubleOpenFails) {
  OpenCloseTdb tdb;
  ASSERT_TRUE(tdb.Apply(Open("A", 1)).ok());
  EXPECT_FALSE(tdb.Apply(Open("A", 2)).ok());
}

TEST(OpenCloseTest, CompatibilitySubsetCriterion) {
  const OpenCloseSequence in1 = S5();
  const OpenCloseSequence in2 = U5();
  // Output drawn entirely from the inputs: compatible.
  const OpenCloseSequence good = {Open("A", 1), Open("B", 2), Close("A", 4)};
  EXPECT_TRUE(CheckOpenCloseCompatibility({&in1, &in2}, good).ok());
  // close(B,9) appears in no input: incompatible (cannot be revised away
  // under at-most-one-close).
  const OpenCloseSequence bad = {Open("B", 2), Close("B", 9)};
  EXPECT_FALSE(CheckOpenCloseCompatibility({&in1, &in2}, bad).ok());
}

TEST(OpenCloseTest, MergeEmitsEachElementOnce) {
  OpenCloseMerge merge;
  OpenCloseSequence out;
  const OpenCloseSequence in1 = S5();
  const OpenCloseSequence in2 = U5();
  // Interleave: in2 first half, then all of in1, then rest of in2.
  for (size_t i = 0; i < 3; ++i) merge.OnElement(1, in2[i], &out);
  for (const auto& e : in1) merge.OnElement(0, e, &out);
  for (size_t i = 3; i < in2.size(); ++i) merge.OnElement(1, in2[i], &out);
  // The merged stream must reconstitute to the same TDB as the inputs and
  // be a subset of their union.
  EXPECT_TRUE(OpenCloseTdb::Reconstitute(out).Equals(
      OpenCloseTdb::Reconstitute(in1)));
  EXPECT_TRUE(CheckOpenCloseCompatibility({&in1, &in2}, out).ok());
  // Exactly 3 opens and 2 closes (no duplicates).
  int opens = 0;
  int closes = 0;
  for (const auto& e : out) {
    (e.kind == OpenCloseElement::Kind::kOpen ? opens : closes) += 1;
  }
  EXPECT_EQ(opens, 3);
  EXPECT_EQ(closes, 2);
}

TEST(OpenCloseTest, MergeHoldsCloseUntilOpenEmitted) {
  OpenCloseMerge merge;
  OpenCloseSequence out;
  // Stream 1 delivers the close before stream 0 delivered the open.
  merge.OnElement(1, Close("A", 4), &out);
  EXPECT_TRUE(out.empty());
  merge.OnElement(0, Open("A", 1), &out);
  merge.OnElement(0, Close("A", 4), &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, OpenCloseElement::Kind::kOpen);
  EXPECT_EQ(out[1].kind, OpenCloseElement::Kind::kClose);
}

TEST(OpenCloseRevisableTest, RevisedClosesPropagate) {
  // Stream W[6]'s situation: close(B,6) later revised to close(B,5).
  OpenCloseMergeRevisable merge;
  OpenCloseSequence out;
  merge.OnElement(0, Open("B", 2), &out);
  merge.OnElement(0, Close("B", 6), &out);
  merge.OnElement(0, Close("B", 5), &out);  // revision
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(OpenCloseTdb::Reconstitute(out).Equals(
      OpenCloseTdb::Reconstitute({Open("B", 2), Close("B", 5)})));
}

TEST(OpenCloseRevisableTest, DuplicateClosesAbsorbed) {
  OpenCloseMergeRevisable merge;
  OpenCloseSequence out;
  merge.OnElement(0, Open("A", 1), &out);
  merge.OnElement(0, Close("A", 4), &out);
  merge.OnElement(1, Close("A", 4), &out);  // replica copy: same value
  EXPECT_EQ(out.size(), 2u);
}

TEST(OpenCloseRevisableTest, MergesSAndWStyleStreams) {
  // S presents final closes directly; W presents a provisional close that
  // it later revises.  Any interleaving converges to the same TDB.
  const OpenCloseSequence s = S5();
  const OpenCloseSequence w = W6();
  for (int phase = 0; phase < 3; ++phase) {
    OpenCloseMergeRevisable merge;
    OpenCloseSequence out;
    size_t si = 0;
    size_t wi = 0;
    // Interleave with different phase offsets.
    while (si < s.size() || wi < w.size()) {
      if (si < s.size() && (phase + static_cast<int>(si + wi)) % 2 == 0) {
        merge.OnElement(0, s[si++], &out);
      } else if (wi < w.size()) {
        merge.OnElement(1, w[wi++], &out);
      } else {
        merge.OnElement(0, s[si++], &out);
      }
    }
    EXPECT_TRUE(OpenCloseTdb::Reconstitute(out).Equals(
        OpenCloseTdb::Reconstitute(s)))
        << "phase " << phase;
  }
}

TEST(OpenCloseRevisableTest, CloseBeforeOpenHeldAndFlushed) {
  OpenCloseMergeRevisable merge;
  OpenCloseSequence out;
  merge.OnElement(1, Close("A", 4), &out);  // racing close
  EXPECT_TRUE(out.empty());
  merge.OnElement(1, Close("A", 3), &out);  // revised while held
  EXPECT_TRUE(out.empty());
  merge.OnElement(0, Open("A", 1), &out);   // open arrives: flush
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, OpenCloseElement::Kind::kOpen);
  EXPECT_EQ(out[1].time, 3);
}

TEST(OpenCloseTest, ConvertToIntervalElements) {
  ElementSequence intervals;
  ASSERT_TRUE(ConvertToIntervalElements(W6(), &intervals).ok());
  const Tdb tdb = Tdb::Reconstitute(intervals);
  EXPECT_EQ(tdb.EventCount(), 3);
  EXPECT_EQ(tdb.CountOf(Event(Row::OfString("B"), 2, 5)), 1);
  EXPECT_EQ(tdb.CountOf(Event(Row::OfString("C"), 3, kInfinity)), 1);
}

TEST(OpenCloseTest, ConvertRejectsCloseWithoutOpen) {
  ElementSequence intervals;
  EXPECT_FALSE(
      ConvertToIntervalElements({Close("A", 4)}, &intervals).ok());
}

TEST(OpenCloseTest, ElementToString) {
  EXPECT_EQ(Open("A", 1).ToString(), "open((\"A\"), 1)");
  EXPECT_EQ(Close("A", 4).ToString(), "close((\"A\"), 4)");
}

}  // namespace
}  // namespace lmerge
