// End-to-end query pipelines: sources through substrate operators into
// LMerge, with compile-time property derivation picking the algorithm.

#include <gtest/gtest.h>

#include "core/lmerge_operator.h"
#include "engine/graph.h"
#include "operators/aggregate.h"
#include "operators/select.h"
#include "operators/union_op.h"
#include "stream/validate.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using workload::GeneratorConfig;
using workload::GeneratePhysicalVariant;
using workload::GenerateHistory;
using workload::LogicalHistory;
using workload::RenderInOrder;
using workload::VariantOptions;

GeneratorConfig PipelineConfig(uint64_t seed) {
  GeneratorConfig config;
  config.num_inserts = 500;
  config.stable_freq = 0.05;
  config.event_duration = 800;
  config.duration_jitter = 300;
  config.max_gap = 10;
  config.key_range = 5;
  config.payload_string_bytes = 8;
  config.seed = seed;
  return config;
}

TEST(PipelineTest, TwoReplicatedAggregatePlansUnderLMerge) {
  // Two copies of "grouped count over a disordered stream", physically
  // divergent, merged by the algorithm the property pass selects (R3).
  const LogicalHistory history = GenerateHistory(PipelineConfig(1));
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);

  QueryGraph graph;
  AggregateConfig agg_config;
  agg_config.window_size = 500;
  agg_config.group_column = 0;
  agg_config.mode = AggregateMode::kAggressive;

  auto* agg1 = graph.Add<GroupedAggregate>("agg1", agg_config);
  auto* agg2 = graph.Add<GroupedAggregate>("agg2", agg_config);

  StreamProperties source_props;
  source_props.insert_only = true;
  source_props.vs_payload_key = true;
  graph.DeclareEntry(agg1, 0, source_props);
  graph.DeclareEntry(agg2, 0, source_props);

  std::map<const Operator*, StreamProperties> derived;
  ASSERT_TRUE(graph.DeriveAll(&derived).ok());
  const AlgorithmCase chosen =
      ChooseAlgorithm({derived[agg1], derived[agg2]});
  EXPECT_EQ(chosen, AlgorithmCase::kR3);

  auto* lmerge = graph.Add<LMergeOperator>(
      "lm", std::vector<StreamProperties>{derived[agg1], derived[agg2]});
  graph.Connect(agg1, lmerge, 0);
  graph.Connect(agg2, lmerge, 1);

  CollectingSink merged;
  ValidatingSink validated(StreamProperties::None(), &merged);
  lmerge->AddSink(&validated);

  // Physically different presentations of the same logical source.
  VariantOptions v1;
  v1.disorder_fraction = 0.2;
  v1.seed = 11;
  VariantOptions v2;
  v2.disorder_fraction = 0.35;
  v2.seed = 22;
  LogicalHistory closed = history;
  closed.stable_times.push_back(max_ve + 1);
  const ElementSequence in1 = GeneratePhysicalVariant(closed, v1);
  const ElementSequence in2 = GeneratePhysicalVariant(closed, v2);
  // Alternate between the two replicas.
  const size_t n = std::max(in1.size(), in2.size());
  for (size_t i = 0; i < n; ++i) {
    if (i < in1.size()) agg1->Consume(0, in1[i]);
    if (i < in2.size()) agg2->Consume(0, in2[i]);
  }

  // Reference: the same aggregate over the canonical in-order stream.
  GroupedAggregate reference_agg("ref", agg_config);
  CollectingSink reference;
  reference_agg.AddSink(&reference);
  for (const StreamElement& e : RenderInOrder(closed)) {
    reference_agg.Consume(0, e);
  }
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(reference.elements())));
}

TEST(PipelineTest, HierarchyOfLMergesForFragmentLevelResilience) {
  // Sec. II-1: "a hierarchy of LMerge operators — one for each replicated
  // query fragment".  Two replicated source fragments, each merged, then
  // unioned and merged again downstream against a replica of the whole.
  const LogicalHistory history = GenerateHistory(PipelineConfig(2));
  LogicalHistory closed = history;
  Timestamp max_ve = 0;
  for (const Event& e : closed.events) max_ve = std::max(max_ve, e.ve);
  closed.stable_times.push_back(max_ve + 1);

  QueryGraph graph;
  auto* inner = graph.Add<LMergeOperator>("inner", 2,
                                          MergeVariant::kLMR3Plus);
  auto* outer = graph.Add<LMergeOperator>("outer", 2,
                                          MergeVariant::kLMR3Plus);
  graph.Connect(inner, outer, 0);

  CollectingSink merged;
  outer->AddSink(&merged);

  VariantOptions v1;
  v1.disorder_fraction = 0.3;
  v1.split_probability = 0.3;
  v1.seed = 7;
  VariantOptions v2 = v1;
  v2.seed = 8;
  VariantOptions v3 = v1;
  v3.seed = 9;
  const ElementSequence in1 = GeneratePhysicalVariant(closed, v1);
  const ElementSequence in2 = GeneratePhysicalVariant(closed, v2);
  const ElementSequence in3 = GeneratePhysicalVariant(closed, v3);
  const size_t n = std::max({in1.size(), in2.size(), in3.size()});
  for (size_t i = 0; i < n; ++i) {
    if (i < in1.size()) inner->Consume(0, in1[i]);
    if (i < in2.size()) inner->Consume(1, in2[i]);
    if (i < in3.size()) outer->Consume(1, in3[i]);
  }
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(RenderInOrder(closed))));
}

TEST(PipelineTest, UnionOfPartitionsThenMerge) {
  // Data-center partitioned sources: each replica unions two machine
  // partitions; the union outputs are disordered, LMerge-R4 combines them.
  QueryGraph graph;
  auto* union1 = graph.Add<UnionOp>("u1", 2);
  auto* union2 = graph.Add<UnionOp>("u2", 2);
  auto* lmerge = graph.Add<LMergeOperator>("lm", 2, MergeVariant::kLMR4);
  graph.Connect(union1, lmerge, 0);
  graph.Connect(union2, lmerge, 1);
  CollectingSink merged;
  lmerge->AddSink(&merged);

  GeneratorConfig part_a = PipelineConfig(3);
  part_a.num_inserts = 150;
  GeneratorConfig part_b = PipelineConfig(4);
  part_b.num_inserts = 150;
  const ElementSequence stream_a = RenderInOrder(GenerateHistory(part_a));
  const ElementSequence stream_b = RenderInOrder(GenerateHistory(part_b));

  // Replica 1 interleaves a-then-b per step; replica 2 b-then-a.
  for (size_t i = 0; i < stream_a.size() || i < stream_b.size(); ++i) {
    if (i < stream_a.size()) {
      union1->Consume(0, stream_a[i]);
    }
    if (i < stream_b.size()) {
      union1->Consume(1, stream_b[i]);
      union2->Consume(1, stream_b[i]);
    }
    if (i < stream_a.size()) {
      union2->Consume(0, stream_a[i]);
    }
  }
  // Both unions carry the same multiset; the merge must reproduce it once.
  Tdb expected;
  for (const auto& e : stream_a) {
    if (e.is_stable()) continue;
    ASSERT_TRUE(expected.Apply(e).ok());
  }
  for (const auto& e : stream_b) {
    if (e.is_stable()) continue;
    ASSERT_TRUE(expected.Apply(e).ok());
  }
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements()).Equals(expected));
}

}  // namespace
}  // namespace lmerge
