// Plan fast-forward via feedback (Sec. II-3, V-D): LMerge over two
// alternative plans signals "elements before t are no longer of interest"
// upstream; the lagging plan skips its expensive UDF for doomed elements.

#include <gtest/gtest.h>

#include "core/lmerge_operator.h"
#include "operators/select.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

// Runs the two-plan merge; plan B lags behind plan A by `lag_elements`.
// Returns total UDF work done by plan B.
int64_t RunTwoPlans(bool feedback, int64_t* out_events = nullptr) {
  // Plans: identical selection queries with different (simulated) costs.
  UdfSelect plan_a(
      "plan_a", [](const Row&) { return true; }, [](const Row&) { return 1; });
  UdfSelect plan_b(
      "plan_b", [](const Row&) { return true; },
      [](const Row&) { return 50; });
  LMergeOperator lm("lm", 2, MergeVariant::kLMR3Plus, MergePolicy::Default(),
                    feedback);
  plan_a.AddDownstream(&lm, 0);
  plan_b.AddDownstream(&lm, 1);
  CollectingSink merged;
  lm.AddSink(&merged);

  workload::GeneratorConfig config;
  config.num_inserts = 500;
  config.stable_freq = 0.1;
  config.event_duration = 60;
  config.duration_jitter = 20;
  config.max_gap = 10;
  config.disorder_fraction = 0.05;
  config.max_disorder_elements = 8;
  config.payload_string_bytes = 4;
  config.seed = 3;
  const ElementSequence stream = workload::GenerateStream(config);

  // Plan A processes promptly; plan B lags by a window of 100 elements —
  // far longer than event lifetimes, so nearly everything B would compute
  // is already stable on the output.
  const size_t lag = 100;
  for (size_t i = 0; i < stream.size() + lag; ++i) {
    if (i < stream.size()) plan_a.Consume(0, stream[i]);
    if (i >= lag) plan_b.Consume(0, stream[i - lag]);
  }
  if (out_events != nullptr) {
    *out_events = static_cast<int64_t>(merged.elements().size());
  }
  return plan_b.work_done();
}

TEST(FeedbackTest, FeedbackSavesLaggingPlanWork) {
  const int64_t without = RunTwoPlans(false);
  const int64_t with = RunTwoPlans(true);
  EXPECT_LT(with, without / 2);  // the bulk of B's UDF work is skipped
}

TEST(FeedbackTest, OutputUnchangedByFeedback) {
  int64_t events_without = 0;
  int64_t events_with = 0;
  RunTwoPlans(false, &events_without);
  RunTwoPlans(true, &events_with);
  EXPECT_EQ(events_with, events_without);
}

TEST(FeedbackTest, HorizonOnlyAdvances) {
  UdfSelect udf(
      "udf", [](const Row&) { return true; }, [](const Row&) { return 1; });
  udf.OnFeedback(100);
  udf.OnFeedback(50);  // stale signal ignored
  EXPECT_EQ(udf.feedback_horizon(), 100);
}

TEST(FeedbackTest, FeedbackChainsThroughMultipleOperators) {
  // source-side select <- mid select <- LMerge: the signal reaches the top.
  UdfSelect top(
      "top", [](const Row&) { return true; }, [](const Row&) { return 1; });
  Select mid("mid", [](const Row&) { return true; });
  LMergeOperator lm("lm", 2, MergeVariant::kLMR3Plus, MergePolicy::Default(),
                    /*feedback_enabled=*/true);
  top.AddDownstream(&mid, 0);
  mid.AddDownstream(&lm, 0);
  NullSink sink;
  lm.AddSink(&sink);
  lm.Consume(1, Stb(77));
  EXPECT_EQ(top.feedback_horizon(), 77);
  EXPECT_EQ(mid.feedback_horizon(), 77);
}

TEST(FeedbackTest, SkippedElementsWereTrulyDoomed) {
  // Everything the lagging plan skips would have been dropped by LMerge
  // anyway: the merged output with feedback reconstitutes identically.
  UdfSelect plan_a(
      "plan_a", [](const Row&) { return true; }, [](const Row&) { return 1; });
  UdfSelect plan_b(
      "plan_b", [](const Row&) { return true; }, [](const Row&) { return 1; });
  LMergeOperator lm("lm", 2, MergeVariant::kLMR3Plus, MergePolicy::Default(),
                    /*feedback_enabled=*/true);
  plan_a.AddDownstream(&lm, 0);
  plan_b.AddDownstream(&lm, 1);
  CollectingSink merged;
  lm.AddSink(&merged);

  const ElementSequence stream = {Ins("A", 10, 20), Ins("B", 30, 40),
                                  Stb(50),          Ins("C", 60, 70),
                                  Stb(100)};
  for (const auto& e : stream) plan_a.Consume(0, e);
  for (const auto& e : stream) plan_b.Consume(0, e);  // all doomed or dups
  EXPECT_GT(plan_b.elements_skipped(), 0);
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(stream)));
}

}  // namespace
}  // namespace lmerge
