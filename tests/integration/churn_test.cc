// Randomized failure churn: replicas detach at random points and fresh
// replicas join mid-run; as long as one input covers the whole stream, the
// merged output converges to the reference TDB (Sec. V-B under stress).

#include <gtest/gtest.h>

#include "core/lmerge_operator.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using workload::GeneratorConfig;
using workload::GeneratePhysicalVariant;
using workload::GenerateHistory;
using workload::LogicalHistory;
using workload::RenderInOrder;
using workload::VariantOptions;

class ChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnTest, RandomDetachPointsNeverCorruptOutput) {
  const uint64_t seed = GetParam();
  GeneratorConfig config;
  config.num_inserts = 250;
  config.stable_freq = 0.06;
  config.event_duration = 400;
  config.max_gap = 15;
  config.payload_string_bytes = 6;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);

  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < 3; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.3;
    options.split_probability = 0.3;
    options.seed = seed * 31 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }

  Rng rng(seed * 7 + 1);
  LMergeOperator lm("churn", 3, MergeVariant::kLMR3Plus);
  CollectingSink merged;
  lm.AddSink(&merged);

  // Replicas 0 and 1 die at random points; replica 2 survives.
  const size_t kill0 = static_cast<size_t>(rng.UniformInt(
      0, static_cast<int64_t>(replicas[0].size())));
  const size_t kill1 = static_cast<size_t>(rng.UniformInt(
      0, static_cast<int64_t>(replicas[1].size())));
  size_t next[3] = {0, 0, 0};
  bool any = true;
  while (any) {
    any = false;
    for (int s = 0; s < 3; ++s) {
      const size_t limit =
          s == 0 ? kill0 : (s == 1 ? kill1 : replicas[2].size());
      if (next[s] < std::min(limit, replicas[static_cast<size_t>(s)].size())) {
        lm.Consume(s, replicas[static_cast<size_t>(s)]
                          [next[static_cast<size_t>(s)]++]);
        any = true;
      } else if (s != 2 && lm.InputActive(s)) {
        lm.DetachInput(s);
      }
    }
  }
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(RenderInOrder(history))))
      << "seed " << seed << " kills at " << kill0 << "/" << kill1;
}

TEST_P(ChurnTest, MidRunJoinerCatchesUpAndTakesOver) {
  const uint64_t seed = GetParam();
  GeneratorConfig config;
  config.num_inserts = 200;
  config.stable_freq = 0.08;
  config.event_duration = 300;
  config.max_gap = 12;
  config.payload_string_bytes = 6;
  config.seed = seed + 1000;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);

  VariantOptions options;
  options.disorder_fraction = 0.25;
  options.seed = seed * 5;
  const ElementSequence original = GeneratePhysicalVariant(history, options);

  Rng rng(seed * 13 + 3);
  LMergeOperator lm("churn", 1, MergeVariant::kLMR3Plus);
  CollectingSink merged;
  lm.AddSink(&merged);

  const size_t handoff = static_cast<size_t>(rng.UniformInt(
      static_cast<int64_t>(original.size()) / 4,
      static_cast<int64_t>(original.size()) * 3 / 4));
  for (size_t i = 0; i < handoff; ++i) lm.Consume(0, original[i]);

  // New replica joins at the current output stable point and replays every
  // event still alive at it, plus the remaining stables.
  const Timestamp join_time = lm.algorithm().max_stable();
  const int port = lm.AttachInput(join_time);
  lm.DetachInput(0);
  for (const Event& e : history.events) {
    if (e.ve >= join_time) {
      lm.Consume(port, StreamElement::Insert(e.payload, e.vs, e.ve));
    }
  }
  for (const Timestamp t : history.stable_times) {
    if (t > join_time) lm.Consume(port, StreamElement::Stable(t));
  }
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(RenderInOrder(history))))
      << "seed " << seed << " handoff " << handoff;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTest, ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace lmerge
