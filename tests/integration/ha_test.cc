// High availability (Sec. II-1): n replicas of a query feed one LMerge;
// the output stream is complete as long as at least one replica survives,
// and a restarted replica can rejoin via the join-time protocol.

#include <gtest/gtest.h>

#include "core/lmerge_operator.h"
#include "temporal/tdb.h"
#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using workload::GeneratorConfig;
using workload::GeneratePhysicalVariant;
using workload::GenerateHistory;
using workload::LogicalHistory;
using workload::RenderInOrder;
using workload::VariantOptions;

LogicalHistory ClosedHistory(uint64_t seed, int64_t n = 300) {
  GeneratorConfig config;
  config.num_inserts = n;
  config.stable_freq = 0.06;
  config.event_duration = 400;
  config.max_gap = 12;
  config.payload_string_bytes = 8;
  config.seed = seed;
  LogicalHistory history = GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);
  return history;
}

TEST(HaTest, OutputCompleteWhenReplicasFailMidStream) {
  const LogicalHistory history = ClosedHistory(1);
  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < 3; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.25;
    options.split_probability = 0.2;
    options.seed = 40 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }

  LMergeOperator lm("ha", 3, MergeVariant::kLMR3Plus);
  CollectingSink merged;
  lm.AddSink(&merged);

  // Deliver round-robin; replica 0 dies after 30% of its stream, replica 1
  // after 70%.
  const size_t kill0 = replicas[0].size() * 3 / 10;
  const size_t kill1 = replicas[1].size() * 7 / 10;
  size_t next[3] = {0, 0, 0};
  bool alive[3] = {true, true, true};
  bool any = true;
  while (any) {
    any = false;
    for (int s = 0; s < 3; ++s) {
      if (!alive[s] && lm.InputActive(s)) lm.DetachInput(s);
      if (alive[s] && next[s] < replicas[s].size()) {
        lm.Consume(s, replicas[s][next[s]++]);
        any = true;
      }
      if (s == 0 && next[0] >= kill0) alive[0] = false;
      if (s == 1 && next[1] >= kill1) alive[1] = false;
    }
  }
  // Replica 2 alone completed: the merged output is the full history.
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(RenderInOrder(history))));
}

TEST(HaTest, SpinUpReplicaJoinsAndTakesOver) {
  // Sec. II-1's 24-hour-window motivation in miniature: replica A runs from
  // the start; replica B spins up later, replaying only events alive after
  // its join time, then A fails and B carries the query to completion.
  const LogicalHistory history = ClosedHistory(2);
  VariantOptions options_a;
  options_a.disorder_fraction = 0.2;
  options_a.seed = 70;
  const ElementSequence full_a = GeneratePhysicalVariant(history, options_a);

  LMergeOperator lm("ha", 1, MergeVariant::kLMR3Plus);
  CollectingSink merged;
  lm.AddSink(&merged);

  // A delivers 60%.
  const size_t handoff = full_a.size() * 6 / 10;
  for (size_t i = 0; i < handoff; ++i) lm.Consume(0, full_a[i]);

  // B joins: it promises correctness for all events alive at or after the
  // current output stable point, and replays its own presentation of the
  // suffix (every event whose lifetime crosses the join time).
  const Timestamp join_time = lm.algorithm().max_stable();
  const int port_b = lm.AttachInput(join_time);
  ElementSequence replay_b;
  for (const Event& e : history.events) {
    if (e.ve >= join_time) {
      replay_b.push_back(StreamElement::Insert(e.payload, e.vs, e.ve));
    }
  }
  for (const Timestamp t : history.stable_times) {
    if (t > join_time) replay_b.push_back(StreamElement::Stable(t));
  }
  // Sort replay to a legal order: inserts before the stables that pass them.
  // (replay_b is already events-then-stables; stables are ascending and all
  // inserts precede them, which is legal.)

  // A dies; B delivers everything it has.
  lm.DetachInput(0);
  for (const StreamElement& e : replay_b) lm.Consume(port_b, e);

  EXPECT_TRUE(lm.InputJoined(port_b));
  // Every event alive after the join time is present exactly once, and all
  // events fully frozen before the join time were already emitted by A.
  EXPECT_TRUE(Tdb::Reconstitute(merged.elements())
                  .Equals(Tdb::Reconstitute(RenderInOrder(history))));
}

TEST(HaTest, JoinerGapDoesNotEraseHistory) {
  // A joiner that never saw early (already frozen) events must not cause
  // their retraction when it later drives the stable point.
  LMergeOperator lm("ha", 1, MergeVariant::kLMR3Plus);
  CollectingSink merged;
  lm.AddSink(&merged);
  using testing_util::Ins;
  using testing_util::Stb;
  lm.Consume(0, Ins("EARLY", 10, 20));
  lm.Consume(0, Stb(30));
  const int port = lm.AttachInput(/*join_time=*/30);
  EXPECT_TRUE(lm.InputJoined(port));  // output stable already at 30
  lm.Consume(port, Ins("LATE", 40, 50));
  lm.Consume(port, Stb(100));  // drives stability without knowing EARLY
  const Tdb out = Tdb::Reconstitute(merged.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("EARLY"), 10, 20)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("LATE"), 40, 50)), 1);
}

}  // namespace
}  // namespace lmerge
