// Query jumpstart and cutover (Sec. II-4/5): LMerge seamlessly merges a
// checkpoint/state-seed stream with the live stream, and cuts over from one
// running plan to a newly instantiated one.

#include <gtest/gtest.h>

#include "core/lmerge_operator.h"
#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(JumpstartTest, CheckpointSeedsLongLivedState) {
  // The process-monitoring example: a join/aggregate holds events for
  // processes running for days.  A fresh query instance starting from the
  // live stream alone would miss them; a checkpoint stream provides them.
  LMergeOperator lm("jumpstart", 2, MergeVariant::kLMR3Plus);
  CollectingSink merged;
  lm.AddSink(&merged);

  // Input 0: checkpoint — long-lived events started long ago, still open.
  lm.Consume(0, Ins("proc-1", 100, kInfinity));
  lm.Consume(0, Ins("proc-2", 500, kInfinity));
  lm.Consume(0, Stb(10000));

  // Input 1: live stream — new processes plus the eventual ends of the old
  // ones (the live source knows current processes).
  lm.Consume(1, Ins("proc-1", 100, kInfinity));  // duplicate of checkpoint
  lm.Consume(1, Ins("proc-3", 10500, 10900));
  lm.Consume(1, StreamElement::Adjust(Row::OfString("proc-1"), 100,
                                      kInfinity, 10700));
  lm.Consume(1, Ins("proc-2", 500, kInfinity));
  lm.Consume(1, Stb(11000));

  const Tdb out = Tdb::Reconstitute(merged.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("proc-1"), 100, 10700)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("proc-2"), 500, kInfinity)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("proc-3"), 10500, 10900)), 1);
  EXPECT_EQ(out.EventCount(), 3);
}

TEST(JumpstartTest, CheckpointThenDetachLeavesLiveStreamInCharge) {
  LMergeOperator lm("jumpstart", 2, MergeVariant::kLMR3Plus);
  CollectingSink merged;
  lm.AddSink(&merged);
  lm.Consume(0, Ins("old", 10, kInfinity));
  lm.Consume(0, Stb(100));
  lm.Consume(1, Ins("old", 10, kInfinity));
  lm.DetachInput(0);  // checkpoint replay finished
  lm.Consume(1, StreamElement::Adjust(Row::OfString("old"), 10, kInfinity,
                                      150));
  lm.Consume(1, Ins("new", 120, 130));
  lm.Consume(1, Stb(200));
  const Tdb out = Tdb::Reconstitute(merged.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("old"), 10, 150)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("new"), 120, 130)), 1);
}

TEST(CutoverTest, PlanSwitchIsInvisibleDownstream) {
  // Sec. II-5: run plan P1; spin up P2 (different physical presentation of
  // the same logical query); detach P1.  The consumer sees one continuous
  // stream.
  LMergeOperator lm("cutover", 1, MergeVariant::kLMR3Plus);
  CollectingSink merged;
  lm.AddSink(&merged);

  // P1 presents events eagerly with provisional ends.
  lm.Consume(0, Ins("e1", 10, kInfinity));
  lm.Consume(0, Ins("e2", 20, kInfinity));
  lm.Consume(0, StreamElement::Adjust(Row::OfString("e1"), 10, kInfinity,
                                      30));
  lm.Consume(0, Stb(35));

  // P2 spins up, guaranteeing correctness for events alive from t=35.
  const int p2 = lm.AttachInput(/*join_time=*/35);
  EXPECT_TRUE(lm.InputJoined(p2));
  // P2's presentation: e2 exact, plus the future.
  lm.Consume(p2, Ins("e2", 20, 50));
  lm.Consume(0, StreamElement::Adjust(Row::OfString("e2"), 20, kInfinity,
                                      50));
  lm.DetachInput(0);  // P1 torn down
  lm.Consume(p2, Ins("e3", 40, 60));
  lm.Consume(p2, Stb(100));

  const Tdb out = Tdb::Reconstitute(merged.elements());
  EXPECT_EQ(out.CountOf(Event(Row::OfString("e1"), 10, 30)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("e2"), 20, 50)), 1);
  EXPECT_EQ(out.CountOf(Event(Row::OfString("e3"), 40, 60)), 1);
  EXPECT_EQ(out.stable_point(), 100);
}

TEST(CutoverTest, RepeatedCutovers) {
  // Migrate the query across three "machines" in sequence.
  LMergeOperator lm("cutover", 1, MergeVariant::kLMR3Plus);
  CollectingSink merged;
  lm.AddSink(&merged);
  int current = 0;
  Timestamp t = 0;
  for (int generation = 0; generation < 3; ++generation) {
    for (int i = 0; i < 5; ++i) {
      t += 10;
      lm.Consume(current, StreamElement::Insert(
                              Row::OfInt(generation * 100 + i), t, t + 5));
    }
    t += 10;
    lm.Consume(current, Stb(t));
    const int next = lm.AttachInput(/*join_time=*/t);
    lm.DetachInput(current);
    current = next;
  }
  const Tdb out = Tdb::Reconstitute(merged.elements());
  EXPECT_EQ(out.EventCount(), 15);
  EXPECT_EQ(out.stable_point(), t);
}

}  // namespace
}  // namespace lmerge
