// Metrics registry: sharded instruments under concurrent writers (the TSan
// job runs this test), log-linear bucket math, snapshot/merge semantics,
// wire round-trip, and deterministic escaped JSON.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/serde.h"

namespace lmerge::obs {
namespace {

// Each test gets a private registry: the global one accumulates state from
// other tests in the same binary.
TEST(MetricsTest, CounterSumsAcrossThreads) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.adds");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Add(3);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Sum(), int64_t{3} * kThreads * kAddsPerThread);
}

TEST(MetricsTest, GetIsIdempotentByName) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("same"), registry.GetCounter("same"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(MetricsTest, KillSwitchFreezesUpdates) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("frozen");
  counter->Add(5);
  MetricsRegistry::set_enabled(false);
  counter->Add(100);
  MetricsRegistry::set_enabled(true);
  EXPECT_EQ(counter->Sum(), 5);
}

TEST(MetricsTest, BucketIndexIsMonotoneAndBounded) {
  int previous = -1;
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{7}, int64_t{8},
                    int64_t{9}, int64_t{100}, int64_t{1000}, int64_t{1} << 20,
                    int64_t{1} << 40, INT64_MAX}) {
    const int index = HistogramBucketIndex(v);
    ASSERT_GE(index, previous) << "value " << v;
    ASSERT_LT(index, kHistogramBuckets);
    // The bucket's lower bound must not exceed the value it holds, and the
    // next bucket must start above it.
    EXPECT_LE(HistogramBucketLowerBound(index), v);
    if (index + 1 < kHistogramBuckets) {
      // Past the top of the representable range the next bound overflows
      // (negative); only check buckets whose successor is representable.
      const int64_t next = HistogramBucketLowerBound(index + 1);
      if (next >= 0) {
        EXPECT_GT(next, v);
      }
    }
    previous = index;
  }
  // Exact buckets below 8.
  for (int64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(HistogramBucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(HistogramBucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(MetricsTest, EveryBucketLowerBoundMapsToItsOwnBucket) {
  for (int i = 0; i < kHistogramBuckets; ++i) {
    const int64_t bound = HistogramBucketLowerBound(i);
    if (bound < 0) break;  // past the representable range
    EXPECT_EQ(HistogramBucketIndex(bound), i) << "bound " << bound;
  }
}

TEST(MetricsTest, HistogramSnapshotUnderConcurrentWriters) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("test.latency");
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 20000;
  std::atomic<bool> stop{false};
  // One reader thread snapshots continuously while writers hammer the
  // shards: TSan verifies the relaxed-atomic protocol, and every observed
  // snapshot must be internally coherent (count == bucket total).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HistogramSnapshot snap = histogram->Snapshot();
      int64_t bucket_total = 0;
      for (const auto& [bound, count] : snap.buckets) bucket_total += count;
      EXPECT_EQ(snap.count, bucket_total);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([histogram, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        histogram->Record((t + 1) * 100 + (i & 63));
      }
    });
  }
  for (std::thread& thread : writers) thread.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const HistogramSnapshot snap = histogram->Snapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kRecordsPerThread);
  EXPECT_GE(snap.min, 100);
  EXPECT_LE(snap.max, kThreads * 100 + 63);
  EXPECT_GT(snap.sum, 0);
}

TEST(MetricsTest, HistogramPercentilesFromBuckets) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("p");
  for (int i = 0; i < 100; ++i) histogram->Record(i < 90 ? 10 : 100000);
  const HistogramSnapshot snap = histogram->Snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_EQ(snap.Percentile(50), 10);
  // p99 lands in the 100000 bucket; log-linear bounds are <= the value.
  EXPECT_GT(snap.Percentile(99), 10);
  EXPECT_LE(snap.Percentile(99), 100000);
}

TEST(MetricsTest, SnapshotMergeAccumulates) {
  MetricsRegistry registry;
  Histogram* a = registry.GetHistogram("a");
  Histogram* b = registry.GetHistogram("b");
  for (int i = 0; i < 10; ++i) a->Record(5);
  for (int i = 0; i < 20; ++i) b->Record(500);
  HistogramSnapshot merged = a->Snapshot();
  merged.Merge(b->Snapshot());
  EXPECT_EQ(merged.count, 30);
  EXPECT_EQ(merged.sum, 10 * 5 + 20 * 500);
  EXPECT_EQ(merged.min, 5);
  EXPECT_EQ(merged.max, 500);
  int64_t bucket_total = 0;
  for (const auto& [bound, count] : merged.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, 30);
}

TEST(MetricsTest, SnapshotIsSortedAndQueryable) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Add(1);
  registry.GetGauge("a.first")->Set(42);
  registry.GetCounter("m.middle")->Add(7);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "a.first");
  EXPECT_EQ(snap.entries[1].name, "m.middle");
  EXPECT_EQ(snap.entries[2].name, "z.last");
  EXPECT_EQ(snap.Value("a.first"), 42);
  EXPECT_EQ(snap.Value("missing", -1), -1);
  EXPECT_EQ(snap.WithPrefix("m.").size(), 1u);
  EXPECT_EQ(snap.Find("z.last")->kind, InstrumentKind::kCounter);
}

TEST(MetricsTest, WireRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(123);
  registry.GetGauge("g")->Set(-5);
  Histogram* histogram = registry.GetHistogram("h");
  histogram->Record(1);
  histogram->Record(1000);
  const MetricsSnapshot snap = registry.Snapshot();

  Encoder encoder;
  EncodeMetricsSnapshot(snap, &encoder);
  Decoder decoder(encoder.bytes());
  MetricsSnapshot decoded;
  ASSERT_TRUE(DecodeMetricsSnapshot(&decoder, &decoded).ok());
  ASSERT_TRUE(decoder.AtEnd());

  ASSERT_EQ(decoded.entries.size(), snap.entries.size());
  EXPECT_EQ(decoded.Value("c"), 123);
  EXPECT_EQ(decoded.Value("g"), -5);
  const MetricValue* h = decoded.Find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram.count, 2);
  EXPECT_EQ(h->histogram.sum, 1001);
  EXPECT_EQ(h->histogram.min, 1);
  EXPECT_EQ(h->histogram.max, 1000);
}

TEST(MetricsTest, WireTruncationFailsCleanly) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(1);
  registry.GetHistogram("h")->Record(9);
  Encoder encoder;
  EncodeMetricsSnapshot(registry.Snapshot(), &encoder);
  const std::string bytes = encoder.bytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string prefix = bytes.substr(0, len);
    Decoder decoder(prefix);
    MetricsSnapshot decoded;
    EXPECT_FALSE(DecodeMetricsSnapshot(&decoder, &decoded).ok())
        << "truncated to " << len;
  }
}

TEST(MetricsTest, JsonIsEscapedAndDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("weird\"name\\with\ncontrol")->Add(1);
  registry.GetGauge("plain")->Set(2);
  // Capture timestamps advance between Snapshot() calls by design; pin
  // them so the comparison below exercises only value determinism.
  const auto normalized = [&registry] {
    MetricsSnapshot snapshot = registry.Snapshot();
    snapshot.captured_wall_ms = 0;
    snapshot.captured_mono_us = 0;
    return snapshot.ToJson();
  };
  const std::string json = normalized();
  // The raw specials must not appear unescaped inside the document.
  EXPECT_NE(json.find("weird\\\"name\\\\with\\ncontrol"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"plain\":2"), std::string::npos) << json;
  EXPECT_EQ(json, normalized());
}

}  // namespace
}  // namespace lmerge::obs
