// Regression: `lmerge_inspect --payload-stats` (ComputePayloadStats) and
// the obs payload exporter charge shared payload bytes through the SAME
// SharedPayloadLedger path, so their bytes-saved figures agree on the same
// set of live payloads.  This test binary holds the only live Rows in the
// process, which makes the store-wide gauges directly comparable to the
// tape-level report.

#include <gtest/gtest.h>

#include "common/payload_ledger.h"
#include "common/payload_store.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "tools/cli.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

// Three replicas of the same logical content: payloads "A".."D" interned
// once each no matter how many elements reference them.
ElementSequence MakeTape() {
  ElementSequence tape;
  for (int replica = 0; replica < 3; ++replica) {
    tape.push_back(Ins("A", 10, 100));
    tape.push_back(Ins("B", 20, 100));
    tape.push_back(Adj("A", 10, 100, 200));
    tape.push_back(Ins("C", 30, 100));
    tape.push_back(Stb(40));
    tape.push_back(Ins("D", 50, 100));
  }
  return tape;
}

TEST(PayloadAccountingTest, ReportAndRegistryAgreeOnSharedBytes) {
  const ElementSequence tape = MakeTape();
  const tools::PayloadStatsReport report = tools::ComputePayloadStats(tape);

  // 15 payload-carrying elements (5 per replica), 4 distinct contents.
  EXPECT_EQ(report.payload_refs, 15);
  EXPECT_EQ(report.distinct_payloads, 4);
  EXPECT_GT(report.shared_bytes, 0);
  EXPECT_GT(report.deep_bytes, report.shared_bytes);

  obs::MetricsRegistry registry;
  obs::ExportPayloadStoreMetrics(PayloadStore::Global(), &registry);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();

  // The tape holds the only live handles, so the store's live entries are
  // exactly the report's distinct payloads and the ledger-charged bytes
  // match (the report's shared_bytes counts the reps once each, without
  // the per-handle sizeof(Row) that deep_bytes adds).
  EXPECT_EQ(snapshot.Value("payload.entries"), report.distinct_payloads);
  EXPECT_EQ(snapshot.Value("payload.bytes_held"), report.shared_bytes);
  // Live sharing: every extra reference beyond the first would have cost a
  // deep copy of its rep.
  EXPECT_GT(snapshot.Value("payload.bytes_shared"), 0);
  EXPECT_GE(snapshot.Value("payload.live_refs"),
            snapshot.Value("payload.entries"));
}

TEST(PayloadAccountingTest, ExporterTracksReleases) {
  obs::MetricsRegistry registry;
  {
    const ElementSequence tape = MakeTape();
    obs::ExportPayloadStoreMetrics(PayloadStore::Global(), &registry);
    EXPECT_EQ(registry.Snapshot().Value("payload.entries"), 4);
  }
  // Tape destroyed: last releases evicted the reps, and a re-export must
  // see an empty store (gauges overwrite, they don't accumulate).
  obs::ExportPayloadStoreMetrics(PayloadStore::Global(), &registry);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Value("payload.entries"), 0);
  EXPECT_EQ(snapshot.Value("payload.bytes_held"), 0);
  EXPECT_EQ(snapshot.Value("payload.bytes_shared"), 0);
  EXPECT_EQ(snapshot.Value("payload.live_refs"), 0);
}

TEST(PayloadAccountingTest, LedgerChargesOncePerIdentity) {
  SharedPayloadLedger ledger;
  const Row row = Row::OfString("shared-payload");
  const Row same = row;  // second handle, same rep
  EXPECT_GT(ledger.AddRef(row), 0);
  EXPECT_EQ(ledger.AddRef(same), 0);
  EXPECT_EQ(ledger.distinct(), 1);
  EXPECT_EQ(ledger.bytes(), row.SharedSizeBytes());
  EXPECT_EQ(ledger.Release(row), 0);
  EXPECT_EQ(ledger.Release(same), same.SharedSizeBytes());
  EXPECT_EQ(ledger.bytes(), 0);
}

}  // namespace
}  // namespace lmerge
