// Trace recorder: spans land in per-thread rings, the Chrome trace JSON is
// well-formed and carries every retained span, disabled recording is a
// no-op, and concurrent recording with a dump in flight is safe (TSan).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace lmerge::obs {
namespace {

// The recorder is process-global; tests restore the disabled default and
// clear retained spans so they compose in any order.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().set_enabled(true);
  }
  void TearDown() override {
    TraceRecorder::Global().set_enabled(false);
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.set_enabled(false);
  const int64_t before = recorder.recorded();
  { LMERGE_TRACE_SPAN("ignored", "test"); }
  EXPECT_EQ(recorder.recorded(), before);
}

TEST_F(TraceTest, SpanIsRecordedWithDuration) {
  TraceRecorder& recorder = TraceRecorder::Global();
  const int64_t before = recorder.recorded();
  { LMERGE_TRACE_SPAN("unit_span", "test"); }
  EXPECT_EQ(recorder.recorded(), before + 1);
  const std::string json = recorder.DumpChromeTraceJson();
  EXPECT_NE(json.find("\"unit_span\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
}

TEST_F(TraceTest, ExplicitRecordKeepsFields) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Record("named", "cat", 1234, 56);
  const std::string json = recorder.DumpChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"named\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"cat\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":1234"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":56"), std::string::npos) << json;
}

TEST_F(TraceTest, RingWrapKeepsTheRecentWindow) {
  TraceRecorder& recorder = TraceRecorder::Global();
  for (size_t i = 0; i < kTraceRingCapacity + 100; ++i) {
    recorder.Record("wrap", "test", static_cast<int64_t>(i), 1);
  }
  // recorded() is monotone and counts overwrites; the dump holds at most
  // one ring's capacity for this thread.
  EXPECT_GE(recorder.recorded(),
            static_cast<int64_t>(kTraceRingCapacity + 100));
  const std::string json = recorder.DumpChromeTraceJson();
  // The oldest span (ts=0) was overwritten; the newest survived.
  EXPECT_EQ(json.find("\"ts\":0,"), std::string::npos);
  EXPECT_NE(
      json.find("\"ts\":" +
                std::to_string(kTraceRingCapacity + 99)),
      std::string::npos);
}

TEST_F(TraceTest, WrappedDumpIsBoundedValidJsonWithMonotoneTimestamps) {
  TraceRecorder& recorder = TraceRecorder::Global();
  // Overfill the calling thread's ring half over capacity with strictly
  // increasing timestamps.
  const size_t total = kTraceRingCapacity + kTraceRingCapacity / 2;
  for (size_t i = 0; i < total; ++i) {
    recorder.Record("wrap", "test", static_cast<int64_t>(i), 1);
  }
  const std::string json = recorder.DumpChromeTraceJson();

  // Exactly one ring of events — the overwritten prefix must not leak into
  // the dump as duplicated or phantom entries.
  size_t events = 0;
  for (size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++events;
  }
  EXPECT_EQ(events, kTraceRingCapacity);

  // Structurally valid JSON: balanced braces/brackets outside strings.
  // (A full parser is overkill; unbalanced nesting is how a torn ring
  // window would surface.)
  int64_t braces = 0;
  int64_t brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);

  // The retained window is exactly the newest kTraceRingCapacity spans,
  // emitted with per-thread monotone microsecond timestamps.
  std::vector<int64_t> ts;
  for (size_t at = json.find("\"ts\":"); at != std::string::npos;
       at = json.find("\"ts\":", at + 1)) {
    ts.push_back(std::stoll(json.substr(at + 5)));
  }
  ASSERT_EQ(ts.size(), kTraceRingCapacity);
  for (size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LT(ts[i - 1], ts[i]) << "timestamps not monotone at " << i;
  }
  EXPECT_EQ(ts.front(),
            static_cast<int64_t>(total - kTraceRingCapacity));
  EXPECT_EQ(ts.back(), static_cast<int64_t>(total - 1));
}

TEST_F(TraceTest, ConcurrentRecordingAndDumpIsSafe) {
  TraceRecorder& recorder = TraceRecorder::Global();
  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = recorder.DumpChromeTraceJson();
      EXPECT_FALSE(json.empty());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder] {
      for (int i = 0; i < 5000; ++i) {
        recorder.Record("concurrent", "test", i, 2);
      }
    });
  }
  for (std::thread& thread : writers) thread.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();
  // Four distinct threads recorded: their spans carry distinct dense tids.
  const std::string json = recorder.DumpChromeTraceJson();
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

TEST_F(TraceTest, ClearDropsRetainedSpans) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Record("gone", "test", 1, 1);
  recorder.Clear();
  const std::string json = recorder.DumpChromeTraceJson();
  EXPECT_EQ(json.find("\"gone\""), std::string::npos) << json;
}

}  // namespace
}  // namespace lmerge::obs
