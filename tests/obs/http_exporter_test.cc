// HTTP metrics endpoint: ephemeral-port startup, the four routes
// (/metrics, /metrics.json, /healthz, /readyz), OpenMetrics rendering
// (including the exported-counter kind fix), and error paths — all over
// real sockets with a raw HTTP/1.1 client so the test exercises the same
// byte stream curl and Prometheus produce.

#include "obs/http_exporter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "net/tcp.h"
#include "obs/metrics.h"

namespace lmerge::obs {
namespace {

// One-shot HTTP exchange: connect, write the request, read to EOF (the
// exporter closes after each response).
std::string HttpExchange(int port, const std::string& request) {
  std::unique_ptr<net::Connection> connection;
  net::TcpConnectOptions options;
  options.connect_timeout_ms = 2000;
  options.retries = 3;
  Status status = net::TcpConnect("127.0.0.1", port, options, &connection);
  EXPECT_TRUE(status.ok()) << status.message();
  if (!status.ok()) return "";
  EXPECT_TRUE(connection->Send(request).ok());
  std::string response;
  char buffer[4096];
  size_t received = 0;
  do {
    status = connection->Receive(buffer, sizeof(buffer), &received);
    EXPECT_TRUE(status.ok()) << status.message();
    if (!status.ok()) break;
    response.append(buffer, received);
  } while (received > 0);
  connection->Close();
  return response;
}

std::string HttpGet(int port, const std::string& target) {
  return HttpExchange(
      port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

// A private registry keeps these tests independent of whatever the rest of
// the test binary pushed into the global one.
class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::set_enabled(true); }
  void TearDown() override { MetricsRegistry::set_enabled(false); }

  MetricsRegistry registry_;

  HttpExporterOptions OptionsForRegistry() {
    HttpExporterOptions options;
    options.port = 0;
    options.snapshot_source = [this] { return registry_.Snapshot(); };
    return options;
  }
};

TEST_F(HttpExporterTest, OpenMetricsNameMapsIllegalCharacters) {
  EXPECT_EQ(OpenMetricsName("latency.rx_to_merge_us"),
            "latency_rx_to_merge_us");
  EXPECT_EQ(OpenMetricsName("in.0.elements_in"), "in_0_elements_in");
  EXPECT_EQ(OpenMetricsName("plain"), "plain");
}

TEST_F(HttpExporterTest, RenderOpenMetricsEmitsAllKinds) {
  registry_.GetCounter("demo.adds")->Add(7);
  registry_.GetGauge("demo.level")->Set(42);
  // The barrier-exported totals must surface as counters, not gauges —
  // that is the whole point of GetExportedCounter.
  registry_.GetExportedCounter("demo.exported")->Set(13);
  Histogram* histogram = registry_.GetHistogram("demo.lat_us");
  histogram->Record(10);
  histogram->Record(1000);

  const std::string text = RenderOpenMetrics(registry_.Snapshot());
  EXPECT_NE(text.find("# TYPE demo_adds counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("demo_adds_total 7"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE demo_level gauge"), std::string::npos);
  EXPECT_NE(text.find("demo_level 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_exported counter"), std::string::npos)
      << "exported-monotone instruments must expose as counters";
  EXPECT_NE(text.find("demo_exported_total 13"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("demo_lat_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("demo_lat_us_sum 1010"), std::string::npos);
  EXPECT_NE(text.find("demo_lat_us_count 2"), std::string::npos);
  // OpenMetrics requires the terminator.
  EXPECT_NE(text.find("# EOF"), std::string::npos);
}

TEST_F(HttpExporterTest, ServesMetricsOnEphemeralPort) {
  registry_.GetCounter("scrape.me")->Add(3);
  std::unique_ptr<HttpExporter> exporter;
  ASSERT_TRUE(HttpExporter::Start(OptionsForRegistry(), &exporter).ok());
  ASSERT_GT(exporter->port(), 0);

  const std::string response = HttpGet(exporter->port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("scrape_me_total 3"), std::string::npos)
      << response;
  EXPECT_NE(response.find("# EOF"), std::string::npos);
  exporter->Stop();
}

TEST_F(HttpExporterTest, ServesJsonSnapshot) {
  registry_.GetGauge("json.gauge")->Set(5);
  std::unique_ptr<HttpExporter> exporter;
  ASSERT_TRUE(HttpExporter::Start(OptionsForRegistry(), &exporter).ok());

  const std::string response = HttpGet(exporter->port(), "/metrics.json");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"json.gauge\":5"), std::string::npos)
      << response;
  exporter->Stop();
}

TEST_F(HttpExporterTest, HealthzIsAliveWhileServing) {
  std::unique_ptr<HttpExporter> exporter;
  ASSERT_TRUE(HttpExporter::Start(OptionsForRegistry(), &exporter).ok());
  const std::string response = HttpGet(exporter->port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("ok"), std::string::npos);
  exporter->Stop();
}

TEST_F(HttpExporterTest, ReadyzReflectsTheProbe) {
  std::atomic<bool> ready{true};
  HttpExporterOptions options = OptionsForRegistry();
  options.ready_check = [&ready](std::chrono::milliseconds deadline) {
    EXPECT_GT(deadline.count(), 0);
    return ready.load();
  };
  std::unique_ptr<HttpExporter> exporter;
  ASSERT_TRUE(HttpExporter::Start(options, &exporter).ok());

  std::string response = HttpGet(exporter->port(), "/readyz");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("ready"), std::string::npos);

  ready.store(false);
  response = HttpGet(exporter->port(), "/readyz");
  EXPECT_NE(response.find("HTTP/1.1 503"), std::string::npos) << response;
  EXPECT_NE(response.find("unready"), std::string::npos);
  exporter->Stop();
}

TEST_F(HttpExporterTest, UnknownPathAndMethodAreRejected) {
  std::unique_ptr<HttpExporter> exporter;
  ASSERT_TRUE(HttpExporter::Start(OptionsForRegistry(), &exporter).ok());

  const std::string missing = HttpGet(exporter->port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos) << missing;

  const std::string post = HttpExchange(
      exporter->port(),
      "POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos) << post;
  exporter->Stop();
}

TEST_F(HttpExporterTest, StopIsIdempotentAndDestructorStops) {
  std::unique_ptr<HttpExporter> exporter;
  ASSERT_TRUE(HttpExporter::Start(OptionsForRegistry(), &exporter).ok());
  const int port = exporter->port();
  exporter->Stop();
  exporter->Stop();
  exporter.reset();  // must not hang or double-join

  // The port is released: a fresh exporter can bind a new ephemeral port
  // and serve again.
  std::unique_ptr<HttpExporter> second;
  ASSERT_TRUE(HttpExporter::Start(OptionsForRegistry(), &second).ok());
  EXPECT_GT(second->port(), 0);
  (void)port;
  second->Stop();
}

}  // namespace
}  // namespace lmerge::obs
