#include "operators/alter_lifetime.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(AlterLifetimeTest, ClipsLongLifetimes) {
  AlterLifetime alter("alter", 100);
  CollectingSink sink;
  alter.AddSink(&sink);
  alter.Consume(0, Ins("A", 10, 500));
  alter.Consume(0, Ins("B", 10, 50));
  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[0].ve(), 110);  // clipped to Vs + 100
  EXPECT_EQ(sink.elements()[1].ve(), 50);   // already short
}

TEST(AlterLifetimeTest, ClipsInfiniteLifetimes) {
  AlterLifetime alter("alter", 100);
  CollectingSink sink;
  alter.AddSink(&sink);
  alter.Consume(0, Ins("A", 10, kInfinity));
  EXPECT_EQ(sink.elements()[0].ve(), 110);
}

TEST(AlterLifetimeTest, AbsorbsAdjustsThatClipAway) {
  AlterLifetime alter("alter", 100);
  CollectingSink sink;
  alter.AddSink(&sink);
  alter.Consume(0, Ins("A", 10, 500));
  // 500 -> 600: both clip to 110; the adjust disappears.
  alter.Consume(0, Adj("A", 10, 500, 600));
  EXPECT_EQ(sink.elements().size(), 1u);
  // 500 -> 60: clipped old 110, new 60; re-emitted.
  alter.Consume(0, Adj("A", 10, 500, 60));
  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[1].v_old(), 110);
  EXPECT_EQ(sink.elements()[1].ve(), 60);
}

TEST(AlterLifetimeTest, OutputIsValidStream) {
  AlterLifetime alter("alter", 100);
  CollectingSink collected;
  ValidatingSink sink(StreamProperties::None(), &collected);
  alter.AddSink(&sink);
  alter.Consume(0, Ins("A", 10, kInfinity));
  alter.Consume(0, Ins("B", 20, 30));
  alter.Consume(0, Stb(25));
  alter.Consume(0, Adj("A", 10, kInfinity, 400));  // clipped: no change
  alter.Consume(0, Ins("C", 25, 1000));
  alter.Consume(0, Stb(500));
  EXPECT_GE(collected.elements().size(), 5u);
}

TEST(AlterLifetimeTest, PreservesOrderProperties) {
  AlterLifetime alter("alter", 100);
  const StreamProperties out =
      alter.DeriveProperties({StreamProperties::Strongest()});
  EXPECT_TRUE(out.ordered);
  EXPECT_TRUE(out.strictly_increasing);
  EXPECT_TRUE(out.vs_payload_key);
}

}  // namespace
}  // namespace lmerge
