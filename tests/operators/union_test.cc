#include "operators/union_op.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(UnionTest, PassesInsertsFromAllInputs) {
  UnionOp u("union", 3);
  CollectingSink sink;
  u.AddSink(&sink);
  u.Consume(0, Ins("a", 1, 5));
  u.Consume(1, Ins("b", 2, 5));
  u.Consume(2, Ins("c", 3, 5));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 3);
}

TEST(UnionTest, StableIsMinAcrossInputs) {
  UnionOp u("union", 2);
  CollectingSink sink;
  u.AddSink(&sink);
  u.Consume(0, Stb(10));
  EXPECT_EQ(CountKinds(sink.elements()).stables, 0);  // input 1 still at -inf
  u.Consume(1, Stb(7));
  ASSERT_EQ(CountKinds(sink.elements()).stables, 1);
  EXPECT_EQ(sink.elements().back().stable_time(), 7);
  u.Consume(1, Stb(20));
  EXPECT_EQ(sink.elements().back().stable_time(), 10);  // min(10, 20)
}

TEST(UnionTest, StableNeverRegresses) {
  UnionOp u("union", 2);
  CollectingSink sink;
  u.AddSink(&sink);
  u.Consume(0, Stb(10));
  u.Consume(1, Stb(10));
  const int64_t emitted = CountKinds(sink.elements()).stables;
  u.Consume(0, Stb(10));  // no progress
  EXPECT_EQ(CountKinds(sink.elements()).stables, emitted);
}

TEST(UnionTest, DuplicatesPreserved) {
  // Union is multiset union: identical events from different inputs are both
  // part of the output (deduplication is LMerge's job, not Union's).
  UnionOp u("union", 2);
  CollectingSink sink;
  u.AddSink(&sink);
  u.Consume(0, Ins("x", 1, 5));
  u.Consume(1, Ins("x", 1, 5));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 2);
}

TEST(UnionTest, BreaksOrderButKeepsInsertOnly) {
  UnionOp u("union", 2);
  const StreamProperties out = u.DeriveProperties(
      {StreamProperties::Strongest(), StreamProperties::Strongest()});
  EXPECT_TRUE(out.insert_only);
  EXPECT_FALSE(out.ordered);
  EXPECT_FALSE(out.vs_payload_key);
}

TEST(UnionTest, UnionOutputIsDisorderedEvenFromOrderedInputs) {
  // The Sec. I observation: interleaving in-order sources yields disorder.
  UnionOp u("union", 2);
  CollectingSink sink;
  u.AddSink(&sink);
  u.Consume(0, Ins("a", 100, 200));
  u.Consume(1, Ins("b", 50, 200));  // arrives later, earlier timestamp
  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_GT(sink.elements()[0].vs(), sink.elements()[1].vs());
}

}  // namespace
}  // namespace lmerge
