#include "operators/cleanse.h"

#include <gtest/gtest.h>

#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(CleanseTest, BuffersUntilStable) {
  Cleanse cleanse("cleanse");
  CollectingSink sink;
  cleanse.AddSink(&sink);
  cleanse.Consume(0, Ins("B", 20, 25));
  cleanse.Consume(0, Ins("A", 10, 15));  // disordered
  EXPECT_TRUE(sink.elements().empty());
  cleanse.Consume(0, Stb(30));
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 2);
  // Released in timestamp order despite arrival order.
  EXPECT_EQ(sink.elements()[0].vs(), 10);
  EXPECT_EQ(sink.elements()[1].vs(), 20);
}

TEST(CleanseTest, OutputSatisfiesOrderedInsertOnly) {
  Cleanse cleanse("cleanse");
  StreamProperties props;
  props.ordered = true;
  props.insert_only = true;
  CollectingSink collected;
  ValidatingSink sink(props, &collected);
  cleanse.AddSink(&sink);
  // Heavily disordered input with revisions.
  cleanse.Consume(0, Ins("C", 30, 35));
  cleanse.Consume(0, Ins("A", 10, kInfinity));
  cleanse.Consume(0, Adj("A", 10, kInfinity, 12));
  cleanse.Consume(0, Ins("B", 20, 22));
  cleanse.Consume(0, Stb(40));
  cleanse.Consume(0, Ins("D", 40, 45));
  cleanse.Consume(0, Stb(100));
  EXPECT_EQ(CountKinds(collected.elements()).inserts, 4);
  EXPECT_EQ(CountKinds(collected.elements()).adjusts, 0);
}

TEST(CleanseTest, HalfFrozenEventBlocksRelease) {
  Cleanse cleanse("cleanse");
  CollectingSink sink;
  cleanse.AddSink(&sink);
  cleanse.Consume(0, Ins("LONG", 10, 1000));  // not frozen at stable(50)
  cleanse.Consume(0, Ins("SHORT", 20, 25));
  cleanse.Consume(0, Stb(50));
  // SHORT is fully frozen but LONG (earlier Vs) is not: releasing SHORT
  // would break output order later, so nothing is released.
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 0);
  // The output stable point is held at LONG's Vs.
  ASSERT_EQ(CountKinds(sink.elements()).stables, 1);
  EXPECT_EQ(sink.elements()[0].stable_time(), 10);
  // Once LONG's end is revised below the stable point, both release.
  cleanse.Consume(0, Adj("LONG", 10, 1000, 30));
  cleanse.Consume(0, Stb(60));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 2);
}

TEST(CleanseTest, AdjustsAppliedInsideBuffer) {
  Cleanse cleanse("cleanse");
  CollectingSink sink;
  cleanse.AddSink(&sink);
  cleanse.Consume(0, Ins("A", 10, kInfinity));
  cleanse.Consume(0, Adj("A", 10, kInfinity, 15));
  cleanse.Consume(0, Stb(20));
  ASSERT_EQ(CountKinds(sink.elements()).inserts, 1);
  EXPECT_EQ(sink.elements()[0].ve(), 15);  // final end, single insert
}

TEST(CleanseTest, RemovalAdjustDropsBufferedEvent) {
  Cleanse cleanse("cleanse");
  CollectingSink sink;
  cleanse.AddSink(&sink);
  cleanse.Consume(0, Ins("A", 10, 15));
  cleanse.Consume(0, Adj("A", 10, 15, 10));  // retract
  cleanse.Consume(0, Stb(20));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 0);
}

TEST(CleanseTest, MemoryGrowsWithBufferedLifetimes) {
  Cleanse cleanse("cleanse");
  NullSink sink;
  cleanse.AddSink(&sink);
  for (int i = 0; i < 100; ++i) {
    cleanse.Consume(
        0, StreamElement::Insert(Row::OfInt(i), 10 + i, 100000 + i));
  }
  const int64_t loaded = cleanse.StateBytes();
  EXPECT_GT(loaded, 0);
  cleanse.Consume(0, Stb(5000));  // nothing fully frozen: all retained
  EXPECT_EQ(cleanse.StateBytes(), loaded);
  EXPECT_EQ(cleanse.buffered_count(), 100);
  cleanse.Consume(0, Stb(200001));  // everything frozen: all released
  EXPECT_EQ(cleanse.StateBytes(), 0);
  EXPECT_EQ(cleanse.buffered_count(), 0);
}

TEST(CleanseTest, OutputEquivalentToInput) {
  Cleanse cleanse("cleanse");
  CollectingSink sink;
  cleanse.AddSink(&sink);
  const ElementSequence input = {
      Ins("C", 30, 35), Ins("A", 10, 40), Ins("B", 20, 22),
      Adj("A", 10, 40, 12), Stb(50)};
  for (const auto& e : input) cleanse.Consume(0, e);
  EXPECT_TRUE(Tdb::Reconstitute(sink.elements())
                  .Equals(Tdb::Reconstitute(input)));
}

TEST(CleanseTest, FeedsR1PropertyShape) {
  Cleanse cleanse("cleanse");
  const StreamProperties out =
      cleanse.DeriveProperties({StreamProperties::None()});
  EXPECT_TRUE(out.insert_only);
  EXPECT_TRUE(out.ordered);
  EXPECT_TRUE(out.deterministic_ties);
}

}  // namespace
}  // namespace lmerge
