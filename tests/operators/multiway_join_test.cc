#include "operators/multiway_join.h"

#include <gtest/gtest.h>

#include "core/factory.h"
#include "operators/join.h"
#include "stream/sink.h"
#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Stb;

StreamElement Ev(int64_t key, int64_t tag, Timestamp vs, Timestamp ve) {
  return StreamElement::Insert(Row({Value(key), Value(tag)}), vs, ve);
}

TEST(MultiwayJoinTest, ThreeWayMatch) {
  MultiwayJoin join("j3", {0, 0, 0});
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, Ev(1, 100, 10, 40));
  join.Consume(1, Ev(1, 200, 20, 50));
  EXPECT_EQ(sink.elements().size(), 0u);  // needs all three sides
  join.Consume(2, Ev(1, 300, 30, 60));
  ASSERT_EQ(CountKinds(sink.elements()).inserts, 1);
  const StreamElement& out = sink.elements()[0];
  EXPECT_EQ(out.vs(), 30);  // max of starts
  EXPECT_EQ(out.ve(), 40);  // min of ends
  ASSERT_EQ(out.payload().field_count(), 6);
  EXPECT_EQ(out.payload().field(1).AsInt64(), 100);
  EXPECT_EQ(out.payload().field(3).AsInt64(), 200);
  EXPECT_EQ(out.payload().field(5).AsInt64(), 300);
}

TEST(MultiwayJoinTest, EmptyIntersectionSuppressed) {
  MultiwayJoin join("j3", {0, 0, 0});
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, Ev(1, 100, 10, 20));
  join.Consume(1, Ev(1, 200, 20, 30));  // touches side 0 at a point
  join.Consume(2, Ev(1, 300, 10, 30));
  EXPECT_EQ(sink.elements().size(), 0u);
}

TEST(MultiwayJoinTest, CrossProductOfMatches) {
  MultiwayJoin join("j3", {0, 0, 0});
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, Ev(1, 100, 10, 90));
  join.Consume(0, Ev(1, 101, 10, 90));
  join.Consume(1, Ev(1, 200, 10, 90));
  join.Consume(2, Ev(1, 300, 10, 90));
  join.Consume(2, Ev(1, 301, 10, 90));
  // 2 (side 0) x 1 (side 1) x 2 (side 2) = 4 combinations; the last insert
  // completes 2 of them, the first side-2 insert the other 2.
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 4);
}

TEST(MultiwayJoinTest, StableIsMinAndPurges) {
  MultiwayJoin join("j3", {0, 0, 0});
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, Ev(1, 100, 10, 20));
  join.Consume(0, Stb(100));
  join.Consume(1, Stb(100));
  EXPECT_EQ(CountKinds(sink.elements()).stables, 0);
  join.Consume(2, Stb(50));
  ASSERT_EQ(CountKinds(sink.elements()).stables, 1);
  EXPECT_EQ(sink.elements().back().stable_time(), 50);
  EXPECT_EQ(join.StateBytes(), 0);  // the [10,20) event purged
}

TEST(MultiwayJoinTest, EquivalentToBinaryJoinCascade) {
  // A ⋈ B ⋈ C as one operator vs. A ⋈ (B ⋈ C): logically identical.
  // Cascade: inner = B ⋈ C (keys col 0 of each); outer joins A (col 0)
  // with inner output whose B-key sits at column 0 of the concat payload.
  MultiwayJoin multi("j3", {0, 0, 0});
  CollectingSink multi_sink;
  multi.AddSink(&multi_sink);

  TemporalJoin inner("bc", 0, 0);
  TemporalJoin outer("a_bc", 0, 0);
  inner.AddDownstream(&outer, 1);
  CollectingSink cascade_sink;
  outer.AddSink(&cascade_sink);

  Rng rng(7);
  std::vector<StreamElement> a_events;
  std::vector<StreamElement> b_events;
  std::vector<StreamElement> c_events;
  for (int i = 0; i < 30; ++i) {
    const int64_t key = rng.UniformInt(0, 3);
    const Timestamp vs = rng.UniformInt(0, 80);
    const Timestamp ve = vs + rng.UniformInt(5, 40);
    const StreamElement e = Ev(key, 1000 + i, vs, ve);
    switch (i % 3) {
      case 0:
        a_events.push_back(e);
        break;
      case 1:
        b_events.push_back(e);
        break;
      default:
        c_events.push_back(e);
    }
  }
  for (const auto& e : a_events) {
    multi.Consume(0, e);
    outer.Consume(0, e);
  }
  for (const auto& e : b_events) {
    multi.Consume(1, e);
    inner.Consume(0, e);
  }
  for (const auto& e : c_events) {
    multi.Consume(2, e);
    inner.Consume(1, e);
  }
  // Payload column orders match: multi emits (A, B, C) and the cascade
  // emits A ++ (B ++ C).
  EXPECT_TRUE(Tdb::Reconstitute(multi_sink.elements())
                  .Equals(Tdb::Reconstitute(cascade_sink.elements())));
  EXPECT_GT(multi_sink.elements().size(), 0u);
}

TEST(MultiwayJoinTest, TwoPlansUnderLMerge) {
  // The Sec. I scenario end-to-end: the one-operator plan and the cascade
  // plan run side by side; LMerge (R4: no key guarantees on join output)
  // produces a single clean stream.
  MultiwayJoin multi("j3", {0, 0, 0});
  TemporalJoin inner("bc", 0, 0);
  TemporalJoin outer("a_bc", 0, 0);
  inner.AddDownstream(&outer, 1);

  auto lmerge_sink = CollectingSink();
  auto lmerge = CreateMergeAlgorithm(MergeVariant::kLMR4, 2, &lmerge_sink);
  struct Feed : ElementSink {
    MergeAlgorithm* algo = nullptr;
    int id = 0;
    void OnElement(const StreamElement& e) override {
      LM_CHECK(algo->OnElement(id, e).ok());
    }
  };
  Feed feed_multi;
  feed_multi.algo = lmerge.get();
  feed_multi.id = 0;
  Feed feed_cascade;
  feed_cascade.algo = lmerge.get();
  feed_cascade.id = 1;
  multi.AddSink(&feed_multi);
  outer.AddSink(&feed_cascade);

  Rng rng(9);
  CollectingSink reference;
  MultiwayJoin ref_join("ref", {0, 0, 0});
  ref_join.AddSink(&reference);
  for (int i = 0; i < 45; ++i) {
    const int64_t key = rng.UniformInt(0, 2);
    const Timestamp vs = rng.UniformInt(0, 60);
    const StreamElement e = Ev(key, 2000 + i, vs, vs + 25);
    const int side = i % 3;
    multi.Consume(side, e);
    ref_join.Consume(side, e);
    if (side == 0) {
      outer.Consume(0, e);
    } else {
      inner.Consume(side - 1, e);
    }
  }
  for (int side = 0; side < 3; ++side) {
    multi.Consume(side, Stb(1000));
    ref_join.Consume(side, Stb(1000));
    if (side == 0) {
      outer.Consume(0, Stb(1000));
    } else {
      inner.Consume(side - 1, Stb(1000));
    }
  }
  EXPECT_TRUE(Tdb::Reconstitute(lmerge_sink.elements())
                  .Equals(Tdb::Reconstitute(reference.elements())));
}

TEST(MultiwayJoinTest, RetractionRemovesStoredEvent) {
  MultiwayJoin join("j3", {0, 0, 0});
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, Ev(1, 100, 10, 40));
  join.Consume(0, StreamElement::Adjust(Row({Value(int64_t{1}),
                                             Value(int64_t{100})}),
                                        10, 40, 10));
  join.Consume(1, Ev(1, 200, 10, 40));
  join.Consume(2, Ev(1, 300, 10, 40));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 0);  // retracted before
}

}  // namespace
}  // namespace lmerge
