// Sliding (hopping) window aggregation: each event contributes to every
// window covering its start time.

#include <gtest/gtest.h>

#include "operators/aggregate.h"
#include "stream/sink.h"
#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Stb;

StreamElement Ev(int64_t key, Timestamp vs) {
  return StreamElement::Insert(Row::OfInt(key), vs, vs + 10);
}

AggregateConfig Sliding(Timestamp window, Timestamp hop, AggregateMode mode) {
  AggregateConfig config;
  config.window_size = window;
  config.hop = hop;
  config.group_column = -1;
  config.mode = mode;
  return config;
}

TEST(SlidingWindowTest, EventContributesToAllCoveringWindows) {
  // Window 100, hop 25: an event at t=60 is covered by windows starting at
  // -25, 0, 25, 50 — the four windows with start in (60-100, 60].
  GroupedAggregate agg("agg",
                       Sliding(100, 25, AggregateMode::kConservative));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 60));
  agg.Consume(0, Stb(1000));
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 4);
  std::vector<Timestamp> starts;
  for (const StreamElement& e : sink.elements()) {
    if (e.is_insert()) starts.push_back(e.vs());
  }
  EXPECT_EQ(starts, (std::vector<Timestamp>{-25, 0, 25, 50}));
  for (const StreamElement& e : sink.elements()) {
    if (e.is_insert()) {
      EXPECT_EQ(e.ve() - e.vs(), 100);  // full window lifetime
      EXPECT_EQ(e.payload().field(0).AsInt64(), 1);  // count 1 everywhere
    }
  }
}

TEST(SlidingWindowTest, OverlapCountsAccumulate) {
  GroupedAggregate agg("agg",
                       Sliding(100, 50, AggregateMode::kConservative));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 10));   // windows -50? no: (10-100,10] -> -50,0...
  agg.Consume(0, Ev(2, 60));   // windows 0 and 50
  agg.Consume(0, Stb(1000));
  // Window 0 covers both events: count 2.  Window -50 covers only t=10,
  // window 50 covers only t=60.
  const Tdb out = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(out.CountOf(Event(Row({Value(int64_t{2})}), 0, 100)), 1);
  EXPECT_EQ(out.CountOf(Event(Row({Value(int64_t{1})}), -50, 50)), 1);
  EXPECT_EQ(out.CountOf(Event(Row({Value(int64_t{1})}), 50, 150)), 1);
}

TEST(SlidingWindowTest, TumblingIsDefaultHop) {
  GroupedAggregate agg("agg", Sliding(100, 0, AggregateMode::kConservative));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 60));
  agg.Consume(0, Stb(1000));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 1);
  EXPECT_EQ(sink.elements()[0].vs(), 0);
}

TEST(SlidingWindowTest, StablePointRespectsOpenWindows) {
  GroupedAggregate agg("agg",
                       Sliding(100, 25, AggregateMode::kConservative));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 60));
  agg.Consume(0, Stb(130));
  // Windows ending at or before 130 are final: starts -25, 0, 25.
  // Start 50 (ends 150) is still open, so the output stable point must not
  // pass 50.
  ASSERT_EQ(CountKinds(sink.elements()).stables, 1);
  EXPECT_EQ(sink.elements().back().stable_time(), 50);
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 3);
}

TEST(SlidingWindowTest, SpeculativeSlidingRevisesStragglers) {
  GroupedAggregate agg("agg",
                       Sliding(100, 50, AggregateMode::kSpeculative));
  CollectingSink collected;
  ValidatingSink sink(StreamProperties::None(), &collected);
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 60));
  agg.Consume(0, Ev(2, 260));  // windows below 150 speculated
  agg.Consume(0, Ev(3, 70));   // straggler: revises windows 0 and 50
  agg.Consume(0, Stb(1000));
  const Tdb out = Tdb::Reconstitute(collected.elements());
  // Window 0 and 50 both saw two events in the end.
  EXPECT_EQ(out.CountOf(Event(Row({Value(int64_t{2})}), 0, 100)), 1);
  EXPECT_EQ(out.CountOf(Event(Row({Value(int64_t{2})}), 50, 150)), 1);
  EXPECT_GT(CountKinds(collected.elements()).adjusts, 0);
}

TEST(SlidingWindowTest, OutputIsValidStreamUnderDisorder) {
  GroupedAggregate agg("agg",
                       Sliding(200, 50, AggregateMode::kSpeculative));
  CollectingSink collected;
  ValidatingSink sink(StreamProperties::None(), &collected);
  agg.AddSink(&sink);
  Rng rng(3);
  Timestamp clock = 0;
  std::vector<StreamElement> pending;
  for (int i = 0; i < 300; ++i) {
    clock += rng.UniformInt(1, 20);
    agg.Consume(0, Ev(rng.UniformInt(0, 3), clock));
    if (i % 40 == 39) agg.Consume(0, Stb(clock - 100));
  }
  agg.Consume(0, Stb(clock + 1000));
  EXPECT_GT(collected.elements().size(), 0u);
}

}  // namespace
}  // namespace lmerge
