#include "operators/aggregate.h"

#include <gtest/gtest.h>

#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Stb;

StreamElement Ev(int64_t machine, Timestamp vs, Timestamp ve) {
  return StreamElement::Insert(Row::OfIntAndString(machine, "m"), vs, ve);
}

AggregateConfig GlobalCount(AggregateMode mode) {
  AggregateConfig config;
  config.window_size = 100;
  config.group_column = -1;
  config.mode = mode;
  return config;
}

AggregateConfig GroupedCount(AggregateMode mode) {
  AggregateConfig config = GlobalCount(mode);
  config.group_column = 0;
  return config;
}

TEST(AggregateTest, ConservativeEmitsFinalCountsOnce) {
  GroupedAggregate agg("agg", GlobalCount(AggregateMode::kConservative));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 10, 20));
  agg.Consume(0, Ev(2, 30, 40));
  agg.Consume(0, Ev(3, 150, 160));
  EXPECT_EQ(sink.elements().size(), 0u);  // nothing final yet
  agg.Consume(0, Stb(200));
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 2);  // window [0,100): count 2; [100,200): 1
  EXPECT_EQ(counts.adjusts, 0);
  EXPECT_EQ(sink.elements()[0].payload().field(0).AsInt64(), 2);
  EXPECT_EQ(sink.elements()[1].payload().field(0).AsInt64(), 1);
  EXPECT_EQ(sink.elements()[0].vs(), 0);
  EXPECT_EQ(sink.elements()[1].vs(), 100);
}

TEST(AggregateTest, AggressiveRevisesOpenWindow) {
  GroupedAggregate agg("agg", GlobalCount(AggregateMode::kAggressive));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 10, 20));   // insert count=1
  agg.Consume(0, Ev(2, 30, 40));   // retract 1, insert 2
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 2);
  EXPECT_EQ(counts.adjusts, 1);
  const Tdb tdb = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(tdb.EventCount(), 1);
  EXPECT_EQ(
      tdb.CountOf(Event(Row({Value(int64_t{2})}), 0, 100)), 1);
}

TEST(AggregateTest, AggressiveHandlesLateArrivals) {
  GroupedAggregate agg("agg", GlobalCount(AggregateMode::kAggressive));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 150, 160));  // window [100,200)
  agg.Consume(0, Ev(2, 10, 20));    // late for window [0,100)
  const Tdb tdb = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(tdb.CountOf(Event(Row({Value(int64_t{1})}), 0, 100)), 1);
  EXPECT_EQ(tdb.CountOf(Event(Row({Value(int64_t{1})}), 100, 200)), 1);
}

TEST(AggregateTest, AggressiveOutputIsValidStream) {
  GroupedAggregate agg("agg", GroupedCount(AggregateMode::kAggressive));
  CollectingSink collected;
  ValidatingSink sink(StreamProperties::None(), &collected);
  agg.AddSink(&sink);
  for (int i = 0; i < 50; ++i) {
    agg.Consume(0, Ev(i % 3, (i * 37) % 500, (i * 37) % 500 + 50));
  }
  agg.Consume(0, Stb(600));
  EXPECT_GT(collected.elements().size(), 0u);
}

TEST(AggregateTest, GroupedCountsPerKey) {
  GroupedAggregate agg("agg", GroupedCount(AggregateMode::kConservative));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(7, 10, 20));
  agg.Consume(0, Ev(7, 30, 40));
  agg.Consume(0, Ev(9, 50, 60));
  agg.Consume(0, Stb(100));
  ASSERT_EQ(CountKinds(sink.elements()).inserts, 2);
  const Tdb tdb = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(tdb.CountOf(Event(
                Row({Value(int64_t{7}), Value(int64_t{2})}), 0, 100)),
            1);
  EXPECT_EQ(tdb.CountOf(Event(
                Row({Value(int64_t{9}), Value(int64_t{1})}), 0, 100)),
            1);
}

TEST(AggregateTest, SumAggregates) {
  AggregateConfig config = GlobalCount(AggregateMode::kConservative);
  config.function = AggregateFunction::kSum;
  config.value_column = 0;
  GroupedAggregate agg("agg", config);
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(5, 10, 20));
  agg.Consume(0, Ev(7, 30, 40));
  agg.Consume(0, Stb(100));
  ASSERT_EQ(sink.elements().size(), 2u);  // insert + stable
  EXPECT_EQ(sink.elements()[0].payload().field(0).AsInt64(), 12);
}

TEST(AggregateTest, RemovalAdjustDecrementsCount) {
  GroupedAggregate agg("agg", GlobalCount(AggregateMode::kAggressive));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 10, 20));
  agg.Consume(0, Ev(2, 30, 40));
  // Source retracts the second event entirely.
  agg.Consume(0, StreamElement::Adjust(Row::OfIntAndString(2, "m"), 30, 40,
                                       30));
  const Tdb tdb = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(tdb.CountOf(Event(Row({Value(int64_t{1})}), 0, 100)), 1);
  EXPECT_EQ(tdb.EventCount(), 1);
}

TEST(AggregateTest, StableEmittedAtWindowGranularity) {
  GroupedAggregate agg("agg", GlobalCount(AggregateMode::kConservative));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 10, 20));
  agg.Consume(0, Stb(250));
  ASSERT_EQ(CountKinds(sink.elements()).stables, 1);
  EXPECT_EQ(sink.elements().back().stable_time(), 200);  // floor(250/100)*100
}

TEST(AggregateTest, StatePurgedOnFinalize) {
  GroupedAggregate agg("agg", GroupedCount(AggregateMode::kConservative));
  NullSink sink;
  agg.AddSink(&sink);
  for (int i = 0; i < 100; ++i) agg.Consume(0, Ev(i, i * 10, i * 10 + 5));
  const int64_t loaded = agg.StateBytes();
  EXPECT_GT(loaded, 0);
  agg.Consume(0, Stb(2000));
  EXPECT_EQ(agg.StateBytes(), 0);
}

TEST(AggregateTest, FeedbackPurgesDoomedWindows) {
  GroupedAggregate agg("agg", GroupedCount(AggregateMode::kConservative));
  NullSink sink;
  agg.AddSink(&sink);
  for (int i = 0; i < 100; ++i) agg.Consume(0, Ev(i, i * 10, i * 10 + 5));
  const int64_t loaded = agg.StateBytes();
  agg.OnFeedback(500);  // windows ending before 500 are moot
  EXPECT_LT(agg.StateBytes(), loaded);
  // Inserts for fast-forwarded windows are skipped entirely.
  agg.Consume(0, Ev(1, 120, 130));
  EXPECT_EQ(agg.StateBytes(),
            agg.StateBytes());  // no growth for a doomed window
}

TEST(AggregateTest, SpeculativeEmitsAtFrontierCrossing) {
  GroupedAggregate agg("agg", GlobalCount(AggregateMode::kSpeculative));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 10, 20));
  agg.Consume(0, Ev(2, 30, 40));
  EXPECT_EQ(sink.elements().size(), 0u);  // frontier window withheld
  agg.Consume(0, Ev(3, 150, 160));  // newer window: [0,100) speculated
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 1);
  EXPECT_EQ(counts.adjusts, 0);
  EXPECT_EQ(sink.elements()[0].payload().field(0).AsInt64(), 2);
}

TEST(AggregateTest, SpeculativeRevisesOnlyOnStragglers) {
  GroupedAggregate agg("agg", GlobalCount(AggregateMode::kSpeculative));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 10, 20));
  agg.Consume(0, Ev(2, 150, 160));  // [0,100) emitted with count 1
  ASSERT_EQ(CountKinds(sink.elements()).inserts, 1);
  agg.Consume(0, Ev(3, 50, 60));  // straggler for the emitted window
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.adjusts, 1);  // retract count 1
  EXPECT_EQ(counts.inserts, 2);  // re-insert count 2
  const Tdb tdb = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(tdb.CountOf(Event(Row({Value(int64_t{2})}), 0, 100)), 1);
}

TEST(AggregateTest, SpeculativeInOrderInputProducesNoAdjusts) {
  GroupedAggregate agg("agg", GroupedCount(AggregateMode::kSpeculative));
  CollectingSink sink;
  agg.AddSink(&sink);
  for (int i = 0; i < 50; ++i) agg.Consume(0, Ev(i % 3, i * 10, i * 10 + 5));
  agg.Consume(0, Stb(600));
  EXPECT_EQ(CountKinds(sink.elements()).adjusts, 0);
  EXPECT_GT(CountKinds(sink.elements()).inserts, 0);
}

TEST(AggregateTest, SpeculativeFinalizesUnspeculatedWindowsOnStable) {
  GroupedAggregate agg("agg", GlobalCount(AggregateMode::kSpeculative));
  CollectingSink sink;
  agg.AddSink(&sink);
  agg.Consume(0, Ev(1, 10, 20));
  agg.Consume(0, Stb(150));  // no newer window ever arrived
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 1);
  EXPECT_EQ(counts.stables, 1);
}

TEST(AggregateTest, SpeculativeOutputIsValidStream) {
  GroupedAggregate agg("agg", GroupedCount(AggregateMode::kSpeculative));
  CollectingSink collected;
  ValidatingSink sink(StreamProperties::None(), &collected);
  agg.AddSink(&sink);
  for (int i = 0; i < 80; ++i) {
    agg.Consume(0, Ev(i % 3, (i * 53) % 700, (i * 53) % 700 + 40));
  }
  agg.Consume(0, Stb(800));
  EXPECT_GT(collected.elements().size(), 0u);
}

TEST(AggregateTest, PropertyDerivation) {
  GroupedAggregate conservative_global(
      "a", GlobalCount(AggregateMode::kConservative));
  const StreamProperties p1 = conservative_global.DeriveProperties(
      {StreamProperties::Strongest()});
  EXPECT_TRUE(p1.strictly_increasing);
  EXPECT_TRUE(p1.insert_only);  // Sec. IV-G example 3 -> R0

  GroupedAggregate conservative_grouped(
      "b", GroupedCount(AggregateMode::kConservative));
  const StreamProperties p2 = conservative_grouped.DeriveProperties(
      {StreamProperties::Strongest()});
  EXPECT_TRUE(p2.ordered);
  EXPECT_FALSE(p2.deterministic_ties);
  EXPECT_TRUE(p2.vs_payload_key);  // example 5 -> R2

  GroupedAggregate aggressive("c", GroupedCount(AggregateMode::kAggressive));
  const StreamProperties p3 =
      aggressive.DeriveProperties({StreamProperties::None()});
  EXPECT_FALSE(p3.insert_only);
  EXPECT_TRUE(p3.vs_payload_key);  // example 6 -> R3
}

}  // namespace
}  // namespace lmerge
