#include "operators/topk.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Stb;

StreamElement Reading(int64_t sensor, int64_t value, Timestamp vs) {
  return StreamElement::Insert(Row({Value(sensor), Value(value)}), vs,
                               vs + 10);
}

TEST(TopKTest, EmitsTopKInRankOrder) {
  TopK topk("topk", /*window_size=*/100, /*k=*/2, /*value_column=*/1);
  CollectingSink sink;
  topk.AddSink(&sink);
  topk.Consume(0, Reading(1, 30, 10));
  topk.Consume(0, Reading(2, 90, 20));
  topk.Consume(0, Reading(3, 60, 30));
  topk.Consume(0, Stb(150));
  const auto counts = CountKinds(sink.elements());
  ASSERT_EQ(counts.inserts, 2);
  EXPECT_EQ(sink.elements()[0].payload().field(1).AsInt64(), 90);  // rank 1
  EXPECT_EQ(sink.elements()[1].payload().field(1).AsInt64(), 60);  // rank 2
  // Both share the window-start timestamp: the R1 situation.
  EXPECT_EQ(sink.elements()[0].vs(), sink.elements()[1].vs());
}

TEST(TopKTest, DeterministicTieBreakByPayload) {
  TopK topk("topk", 100, 2, 1);
  CollectingSink sink;
  topk.AddSink(&sink);
  topk.Consume(0, Reading(5, 50, 10));
  topk.Consume(0, Reading(3, 50, 20));  // same value, smaller sensor id
  topk.Consume(0, Stb(150));
  ASSERT_EQ(CountKinds(sink.elements()).inserts, 2);
  EXPECT_EQ(sink.elements()[0].payload().field(0).AsInt64(), 3);
  EXPECT_EQ(sink.elements()[1].payload().field(0).AsInt64(), 5);
}

TEST(TopKTest, FewerThanKRowsAllEmitted) {
  TopK topk("topk", 100, 5, 1);
  CollectingSink sink;
  topk.AddSink(&sink);
  topk.Consume(0, Reading(1, 10, 10));
  topk.Consume(0, Stb(200));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 1);
}

TEST(TopKTest, RemovalAdjustDropsRow) {
  TopK topk("topk", 100, 1, 1);
  CollectingSink sink;
  topk.AddSink(&sink);
  topk.Consume(0, Reading(1, 90, 10));
  topk.Consume(0, Reading(2, 50, 20));
  // Retract the would-be winner before the window finalizes.
  topk.Consume(0, StreamElement::Adjust(Row({Value(int64_t{1}),
                                             Value(int64_t{90})}),
                                        10, 20, 10));
  topk.Consume(0, Stb(150));
  ASSERT_EQ(CountKinds(sink.elements()).inserts, 1);
  EXPECT_EQ(sink.elements()[0].payload().field(0).AsInt64(), 2);
}

TEST(TopKTest, WindowsFinalizeInOrder) {
  TopK topk("topk", 100, 1, 1);
  CollectingSink sink;
  topk.AddSink(&sink);
  topk.Consume(0, Reading(1, 10, 250));  // window [200,300)
  topk.Consume(0, Reading(2, 20, 50));   // window [0,100)
  topk.Consume(0, Stb(400));
  ASSERT_EQ(CountKinds(sink.elements()).inserts, 2);
  EXPECT_LT(sink.elements()[0].vs(), sink.elements()[1].vs());
}

TEST(TopKTest, DerivePropertiesIsR1Shape) {
  TopK topk("topk", 100, 3, 1);
  const StreamProperties out =
      topk.DeriveProperties({StreamProperties::Strongest()});
  EXPECT_TRUE(out.insert_only);
  EXPECT_TRUE(out.ordered);
  EXPECT_TRUE(out.deterministic_ties);
  EXPECT_FALSE(out.strictly_increasing);  // k events share each window start
}

TEST(TopKTest, StateReclaimedOnFinalize) {
  TopK topk("topk", 100, 2, 1);
  NullSink sink;
  topk.AddSink(&sink);
  for (int i = 0; i < 50; ++i) topk.Consume(0, Reading(i, i, 10 + i));
  EXPECT_GT(topk.StateBytes(), 0);
  topk.Consume(0, Stb(1000));
  EXPECT_EQ(topk.StateBytes(), 0);
}

}  // namespace
}  // namespace lmerge
