#include "operators/select.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Stb;

StreamElement IntIns(int64_t key, Timestamp vs, Timestamp ve) {
  return StreamElement::Insert(Row::OfInt(key), vs, ve);
}

TEST(SelectTest, FiltersByPredicate) {
  Select select("sel", [](const Row& row) {
    return row.field(0).AsInt64() % 2 == 0;
  });
  CollectingSink sink;
  select.AddSink(&sink);
  for (int64_t k = 0; k < 10; ++k) select.Consume(0, IntIns(k, k, k + 10));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 5);
}

TEST(SelectTest, StablesAlwaysPass) {
  Select select("sel", [](const Row&) { return false; });
  CollectingSink sink;
  select.AddSink(&sink);
  select.Consume(0, IntIns(1, 1, 5));
  select.Consume(0, Stb(3));
  EXPECT_EQ(sink.elements().size(), 1u);
  EXPECT_TRUE(sink.elements()[0].is_stable());
}

TEST(SelectTest, AdjustsFilteredConsistentlyWithInserts) {
  Select select("sel", [](const Row& row) {
    return row.field(0).AsInt64() > 5;
  });
  CollectingSink sink;
  select.AddSink(&sink);
  select.Consume(0, IntIns(9, 1, 10));
  select.Consume(0, StreamElement::Adjust(Row::OfInt(9), 1, 10, 20));
  select.Consume(0, StreamElement::Adjust(Row::OfInt(2), 1, 10, 20));
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 1);
  EXPECT_EQ(counts.adjusts, 1);
}

TEST(SelectTest, PreservesProperties) {
  Select select("sel", [](const Row&) { return true; });
  const StreamProperties out =
      select.DeriveProperties({StreamProperties::Strongest()});
  EXPECT_TRUE(out.Equals(StreamProperties::Strongest()));
}

TEST(UdfSelectTest, BurnsWorkPerElement) {
  UdfSelect udf(
      "udf", [](const Row&) { return true; },
      [](const Row&) { return 100; });
  CollectingSink sink;
  udf.AddSink(&sink);
  for (int64_t k = 0; k < 10; ++k) udf.Consume(0, IntIns(k, k, k + 5));
  EXPECT_EQ(udf.work_done(), 1000);
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 10);
}

TEST(UdfSelectTest, FeedbackSkipsDoomedElements) {
  UdfSelect udf(
      "udf", [](const Row&) { return true; },
      [](const Row&) { return 100; });
  CollectingSink sink;
  udf.AddSink(&sink);
  udf.OnFeedback(50);
  udf.Consume(0, IntIns(1, 10, 40));   // ends before horizon: skipped
  udf.Consume(0, IntIns(2, 10, 60));   // still relevant: processed
  EXPECT_EQ(udf.elements_skipped(), 1);
  EXPECT_EQ(udf.work_done(), 100);
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 1);
}

TEST(UdfSelectTest, FeedbackPropagatesUpstream) {
  UdfSelect upstream(
      "up", [](const Row&) { return true; }, [](const Row&) { return 1; });
  UdfSelect downstream(
      "down", [](const Row&) { return true; }, [](const Row&) { return 1; });
  upstream.AddDownstream(&downstream, 0);
  downstream.OnFeedback(42);
  EXPECT_EQ(downstream.feedback_horizon(), 42);
  EXPECT_EQ(upstream.feedback_horizon(), 42);
}

TEST(UdfSelectTest, StableElementsNeverSkipped) {
  UdfSelect udf(
      "udf", [](const Row&) { return true; }, [](const Row&) { return 1; });
  CollectingSink sink;
  udf.AddSink(&sink);
  udf.OnFeedback(100);
  udf.Consume(0, Stb(30));
  EXPECT_EQ(sink.elements().size(), 1u);
}

}  // namespace
}  // namespace lmerge
