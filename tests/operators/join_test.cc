#include "operators/join.h"

#include <gtest/gtest.h>

#include "temporal/tdb.h"
#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Stb;

StreamElement L(int64_t key, int64_t tag, Timestamp vs, Timestamp ve) {
  return StreamElement::Insert(Row({Value(key), Value(tag)}), vs, ve);
}

TEST(JoinTest, OverlappingLifetimesJoin) {
  TemporalJoin join("join", 0, 0);
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, L(1, 100, 10, 30));
  join.Consume(1, L(1, 200, 20, 40));
  ASSERT_EQ(CountKinds(sink.elements()).inserts, 1);
  const StreamElement& out = sink.elements()[0];
  EXPECT_EQ(out.vs(), 20);  // max(10, 20)
  EXPECT_EQ(out.ve(), 30);  // min(30, 40)
  ASSERT_EQ(out.payload().field_count(), 4);
  EXPECT_EQ(out.payload().field(1).AsInt64(), 100);
  EXPECT_EQ(out.payload().field(3).AsInt64(), 200);
}

TEST(JoinTest, DisjointLifetimesDoNot) {
  TemporalJoin join("join", 0, 0);
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, L(1, 100, 10, 20));
  join.Consume(1, L(1, 200, 20, 40));  // touches at 20: empty intersection
  EXPECT_EQ(sink.elements().size(), 0u);
}

TEST(JoinTest, DifferentKeysDoNotJoin) {
  TemporalJoin join("join", 0, 0);
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, L(1, 100, 10, 30));
  join.Consume(1, L(2, 200, 10, 30));
  EXPECT_EQ(sink.elements().size(), 0u);
}

TEST(JoinTest, ManyToManyMatches) {
  TemporalJoin join("join", 0, 0);
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, L(1, 100, 10, 30));
  join.Consume(0, L(1, 101, 10, 30));
  join.Consume(1, L(1, 200, 10, 30));
  join.Consume(1, L(1, 201, 10, 30));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 4);
}

TEST(JoinTest, AdjustGrowsIntersection) {
  TemporalJoin join("join", 0, 0);
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, L(1, 100, 10, 30));
  join.Consume(1, L(1, 200, 20, 40));
  // Left event extends: intersection end moves 30 -> 40.
  join.Consume(0, StreamElement::Adjust(Row({Value(int64_t{1}),
                                             Value(int64_t{100})}),
                                        10, 30, 60));
  const auto counts = CountKinds(sink.elements());
  EXPECT_EQ(counts.inserts, 1);
  EXPECT_EQ(counts.adjusts, 1);
  const Tdb tdb = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(tdb.EventCount(), 1);
  EXPECT_EQ(tdb.ToVector()[0].ve, 40);
}

TEST(JoinTest, AdjustCreatesNewIntersection) {
  TemporalJoin join("join", 0, 0);
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, L(1, 100, 10, 20));
  join.Consume(1, L(1, 200, 20, 40));  // no overlap yet
  EXPECT_EQ(sink.elements().size(), 0u);
  join.Consume(0, StreamElement::Adjust(Row({Value(int64_t{1}),
                                             Value(int64_t{100})}),
                                        10, 20, 35));
  EXPECT_EQ(CountKinds(sink.elements()).inserts, 1);
}

TEST(JoinTest, AdjustRetractsVanishedIntersection) {
  TemporalJoin join("join", 0, 0);
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, L(1, 100, 10, 30));
  join.Consume(1, L(1, 200, 20, 40));
  join.Consume(0, StreamElement::Adjust(Row({Value(int64_t{1}),
                                             Value(int64_t{100})}),
                                        10, 30, 15));  // now ends before 20
  const Tdb tdb = Tdb::Reconstitute(sink.elements());
  EXPECT_EQ(tdb.EventCount(), 0);
}

TEST(JoinTest, StableIsMinOfSides) {
  TemporalJoin join("join", 0, 0);
  CollectingSink sink;
  join.AddSink(&sink);
  join.Consume(0, Stb(100));
  EXPECT_EQ(CountKinds(sink.elements()).stables, 0);
  join.Consume(1, Stb(60));
  ASSERT_EQ(CountKinds(sink.elements()).stables, 1);
  EXPECT_EQ(sink.elements().back().stable_time(), 60);
}

TEST(JoinTest, StatePurgedBelowStable) {
  TemporalJoin join("join", 0, 0);
  NullSink sink;
  join.AddSink(&sink);
  for (int i = 0; i < 50; ++i) join.Consume(0, L(i, i, 10, 20 + i));
  const int64_t loaded = join.StateBytes();
  join.Consume(0, Stb(1000));
  join.Consume(1, Stb(1000));
  EXPECT_LT(join.StateBytes(), loaded);
  EXPECT_EQ(join.StateBytes(), 0);
}

TEST(JoinTest, InsertOnlyPropagates) {
  TemporalJoin join("join", 0, 0);
  StreamProperties strong = StreamProperties::Strongest();
  const StreamProperties out = join.DeriveProperties({strong, strong});
  EXPECT_TRUE(out.insert_only);
  EXPECT_FALSE(out.ordered);
}

}  // namespace
}  // namespace lmerge
