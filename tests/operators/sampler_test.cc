#include "operators/sampler.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Stb;

TEST(SamplerTest, KeepsDeterministicSubset) {
  Sampler sampler("sample", 4);
  CollectingSink sink;
  sampler.AddSink(&sink);
  int64_t kept = 0;
  for (int64_t k = 0; k < 1000; ++k) {
    sampler.Consume(0, StreamElement::Insert(Row::OfInt(k), k, k + 5));
  }
  kept = CountKinds(sink.elements()).inserts;
  EXPECT_GT(kept, 150);
  EXPECT_LT(kept, 350);  // ~ 1/4
}

TEST(SamplerTest, SameDecisionOnEveryCopy) {
  // The property LMerge relies on: physically divergent replicas sample the
  // same logical subset.
  Sampler a("a", 3);
  Sampler b("b", 3);
  CollectingSink sink_a;
  CollectingSink sink_b;
  a.AddSink(&sink_a);
  b.AddSink(&sink_b);
  for (int64_t k = 0; k < 100; ++k) {
    const StreamElement e = StreamElement::Insert(Row::OfInt(k), k, k + 5);
    a.Consume(0, e);
    b.Consume(0, e);
  }
  EXPECT_EQ(sink_a.elements(), sink_b.elements());
}

TEST(SamplerTest, AdjustsFollowTheirInserts) {
  Sampler sampler("sample", 2);
  CollectingSink sink;
  sampler.AddSink(&sink);
  const Row kept_row = Row::OfInt(0);
  // Find a row the sampler keeps and one it drops.
  Row dropped_row = Row::OfInt(1);
  for (int64_t k = 1; k < 100; ++k) {
    if (Row::OfInt(k).hash() % 2 != kept_row.hash() % 2) {
      dropped_row = Row::OfInt(k);
      break;
    }
  }
  const uint64_t residue = kept_row.hash() % 2;
  Sampler tuned("tuned", 2, residue);
  CollectingSink tuned_sink;
  tuned.AddSink(&tuned_sink);
  tuned.Consume(0, StreamElement::Insert(kept_row, 1, 10));
  tuned.Consume(0, StreamElement::Adjust(kept_row, 1, 10, 20));
  tuned.Consume(0, StreamElement::Insert(dropped_row, 2, 10));
  tuned.Consume(0, StreamElement::Adjust(dropped_row, 2, 10, 20));
  const auto counts = CountKinds(tuned_sink.elements());
  EXPECT_EQ(counts.inserts, 1);
  EXPECT_EQ(counts.adjusts, 1);
}

TEST(SamplerTest, StablesPass) {
  Sampler sampler("sample", 1000);
  CollectingSink sink;
  sampler.AddSink(&sink);
  sampler.Consume(0, Stb(5));
  EXPECT_EQ(CountKinds(sink.elements()).stables, 1);
}

TEST(SamplerTest, PreservesAllProperties) {
  Sampler sampler("sample", 4);
  EXPECT_TRUE(sampler.DeriveProperties({StreamProperties::Strongest()})
                  .Equals(StreamProperties::Strongest()));
}

}  // namespace
}  // namespace lmerge
