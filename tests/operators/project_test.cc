#include "operators/project.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::CountKinds;
using ::lmerge::testing_util::Stb;

TEST(ProjectTest, MapsPayloads) {
  Project project("proj", [](const Row& row) {
    return Row::OfInt(row.field(0).AsInt64() * 2);
  });
  CollectingSink sink;
  project.AddSink(&sink);
  project.Consume(0, StreamElement::Insert(Row::OfInt(21), 5, 10));
  ASSERT_EQ(sink.elements().size(), 1u);
  EXPECT_EQ(sink.elements()[0].payload().field(0).AsInt64(), 42);
  EXPECT_EQ(sink.elements()[0].vs(), 5);
  EXPECT_EQ(sink.elements()[0].ve(), 10);
}

TEST(ProjectTest, MapsAdjustPayloadsIdentically) {
  Project project("proj", [](const Row& row) {
    return Row::OfInt(row.field(0).AsInt64() + 1);
  });
  CollectingSink sink;
  project.AddSink(&sink);
  project.Consume(0, StreamElement::Insert(Row::OfInt(1), 5, 10));
  project.Consume(0, StreamElement::Adjust(Row::OfInt(1), 5, 10, 20));
  ASSERT_EQ(sink.elements().size(), 2u);
  // Both map to payload 2, so the adjust still targets the emitted insert.
  EXPECT_EQ(sink.elements()[1].payload().field(0).AsInt64(), 2);
  EXPECT_EQ(sink.elements()[1].v_old(), 10);
}

TEST(ProjectTest, StablePassesThrough) {
  Project project("proj", [](const Row& row) { return row; });
  CollectingSink sink;
  project.AddSink(&sink);
  project.Consume(0, Stb(7));
  ASSERT_EQ(sink.elements().size(), 1u);
  EXPECT_EQ(sink.elements()[0].stable_time(), 7);
}

TEST(ProjectTest, NonInjectiveDropsKeyProperty) {
  Project project("proj", [](const Row& row) { return row; });
  const StreamProperties out =
      project.DeriveProperties({StreamProperties::Strongest()});
  EXPECT_FALSE(out.vs_payload_key);
  EXPECT_TRUE(out.ordered);
  EXPECT_TRUE(out.insert_only);
}

TEST(ProjectTest, InjectiveKeepsKeyProperty) {
  Project project("proj", [](const Row& row) { return row; },
                  /*injective=*/true);
  const StreamProperties out =
      project.DeriveProperties({StreamProperties::Strongest()});
  EXPECT_TRUE(out.vs_payload_key);
  EXPECT_TRUE(out.deterministic_ties);
}

}  // namespace
}  // namespace lmerge
