// Shared helpers for the test suite.

#ifndef LMERGE_TESTS_TEST_UTIL_H_
#define LMERGE_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/row.h"
#include "core/merge_algorithm.h"
#include "stream/element.h"
#include "stream/sink.h"
#include "temporal/tdb.h"

namespace lmerge::testing_util {

// Short payload constructors for hand-built streams ("A", "B", ...).
inline Row P(const std::string& tag) { return Row::OfString(tag); }
inline Row P(int64_t key) { return Row::OfInt(key); }

inline StreamElement Ins(const std::string& tag, Timestamp vs, Timestamp ve) {
  return StreamElement::Insert(P(tag), vs, ve);
}
inline StreamElement Adj(const std::string& tag, Timestamp vs, Timestamp vo,
                         Timestamp ve) {
  return StreamElement::Adjust(P(tag), vs, vo, ve);
}
inline StreamElement Stb(Timestamp t) { return StreamElement::Stable(t); }

// Feeds `inputs[i]` to the algorithm as stream i, interleaving elements in a
// deterministic pseudo-random order (seeded) while preserving each stream's
// internal order.  Elements are delivered through algo->OnElement and must
// all succeed.
inline void InterleaveInto(MergeAlgorithm* algo,
                           const std::vector<ElementSequence>& inputs,
                           uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> next(inputs.size(), 0);
  while (true) {
    // Pick a random stream that still has elements.
    std::vector<int> candidates;
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (next[s] < inputs[s].size()) {
        candidates.push_back(static_cast<int>(s));
      }
    }
    if (candidates.empty()) break;
    const int s = candidates[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(candidates.size()) - 1))];
    const Status status = algo->OnElement(
        s, inputs[static_cast<size_t>(s)][next[static_cast<size_t>(s)]]);
    LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
    ++next[static_cast<size_t>(s)];
  }
}

// Round-robin delivery (stream 0 first at every step).
inline void RoundRobinInto(MergeAlgorithm* algo,
                           const std::vector<ElementSequence>& inputs) {
  size_t max_len = 0;
  for (const auto& input : inputs) max_len = std::max(max_len, input.size());
  for (size_t i = 0; i < max_len; ++i) {
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (i < inputs[s].size()) {
        const Status status =
            algo->OnElement(static_cast<int>(s), inputs[s][i]);
        LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      }
    }
  }
}

// Number of elements of each kind in a sequence.
struct KindCounts {
  int64_t inserts = 0;
  int64_t adjusts = 0;
  int64_t stables = 0;
};

inline KindCounts CountKinds(const ElementSequence& elements) {
  KindCounts counts;
  for (const StreamElement& e : elements) {
    switch (e.kind()) {
      case ElementKind::kInsert:
        ++counts.inserts;
        break;
      case ElementKind::kAdjust:
        ++counts.adjusts;
        break;
      case ElementKind::kStable:
        ++counts.stables;
        break;
    }
  }
  return counts;
}

}  // namespace lmerge::testing_util

#endif  // LMERGE_TESTS_TEST_UTIL_H_
