// Seeded violation: an LM_HOT_PATH function reaches heap allocation
// transitively — a helper growing an unreserved vector and another using
// operator new.  Neither site is allowlisted, so both must be rejected.
#include <vector>

#include "common/thread_annotations.h"

namespace lmerge {

class ToyDrain {
 public:
  void DrainOnce() LM_HOT_PATH {
    Buffer(7);
    Leak();
  }

 private:
  void Buffer(int value) { staged_.push_back(value); }
  void Leak() { scratch_ = new int[16]; }

  std::vector<int> staged_;
  int* scratch_ = nullptr;
};

}  // namespace lmerge
