// Seeded violation: two functions acquire the same pair of mutexes in
// opposite orders — the classic AB/BA deadlock.  lmerge_analyze must find
// the cycle in the acquisition graph regardless of which declaration
// annotations exist.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lmerge {

class CyclePair {
 public:
  void Forward() {
    MutexLock hold_a(a_);
    MutexLock hold_b(b_);
  }
  void Backward() {
    MutexLock hold_b(b_);
    MutexLock hold_a(a_);
  }

 private:
  Mutex a_;
  Mutex b_;
};

}  // namespace lmerge
