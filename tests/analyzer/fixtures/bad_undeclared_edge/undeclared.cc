// Seeded violation: a consistent nesting (inner_ under outer_) that is
// never declared — no LM_ACQUIRED_AFTER on the member, no edge or chain in
// the fixture config.  The analyzer must reject the undeclared edge even
// though the order is acyclic.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lmerge {

class UndeclaredNest {
 public:
  void Nested() {
    MutexLock hold_outer(outer_);
    MutexLock hold_inner(inner_);
  }

 private:
  Mutex outer_;
  Mutex inner_;
};

}  // namespace lmerge
