// Seeded violation: an IO-loop entry point (declared an off-thread root in
// this fixture's analyzer_config.json) reaches an LM_MERGE_THREAD_ONLY
// function through a plain call chain — no CallOnMergeThread hand-off, no
// lambda boundary.  The analyzer must flag the reachability.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lmerge {

class ToyEngine {
 public:
  void MutateMergeState() LM_MERGE_THREAD_ONLY { ++mutations_; }

 private:
  long mutations_ = 0;
};

class ToyServer {
 public:
  explicit ToyServer(ToyEngine* engine) : engine_(engine) {}

  // Off-thread root (see fixture config): decodes bytes on the IO loop and
  // ILLEGALLY mutates merge state in place.
  void OnBytes() { Deliver(); }

 private:
  void Deliver() { engine_->MutateMergeState(); }

  ToyEngine* engine_;
};

}  // namespace lmerge
