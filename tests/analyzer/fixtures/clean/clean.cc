// Clean fixture: every contract holds.  The nesting edge is declared with
// LM_ACQUIRED_AFTER, the merge-thread-only mutator is reached only from an
// unrooted helper, and the hot path touches no allocator.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lmerge {

class CleanEngine {
 public:
  void Control() {
    MutexLock hold_outer(outer_);
    MutexLock hold_inner(inner_);
    ApplyLocked();
  }

  void Mutate() LM_MERGE_THREAD_ONLY { ++applied_; }

  int DrainOnce() LM_HOT_PATH {
    int drained = 0;
    for (int i = 0; i < 4; ++i) drained += Step(i);
    return drained;
  }

 private:
  void ApplyLocked() { ++applied_; }
  int Step(int i) { return i * 2; }

  Mutex outer_;
  Mutex inner_ LM_ACQUIRED_AFTER(outer_);
  int applied_ = 0;
};

}  // namespace lmerge
