// Stream properties, their meet, and algorithm selection (Sec. III-C/IV-G).

#include "properties/properties.h"

#include <gtest/gtest.h>

namespace lmerge {
namespace {

StreamProperties Make(bool insert_only, bool ordered, bool strict,
                      bool det_ties, bool key) {
  StreamProperties p;
  p.insert_only = insert_only;
  p.ordered = ordered;
  p.strictly_increasing = strict;
  p.deterministic_ties = det_ties;
  p.vs_payload_key = key;
  return p;
}

TEST(PropertiesTest, NormalizeImplications) {
  StreamProperties p;
  p.strictly_increasing = true;
  const StreamProperties n = p.Normalized();
  EXPECT_TRUE(n.ordered);
  EXPECT_TRUE(n.deterministic_ties);
}

TEST(PropertiesTest, MeetIsConjunction) {
  const StreamProperties a = Make(true, true, true, true, true);
  const StreamProperties b = Make(true, true, false, false, true);
  const StreamProperties m = a.Meet(b);
  EXPECT_TRUE(m.insert_only);
  EXPECT_TRUE(m.ordered);
  EXPECT_FALSE(m.strictly_increasing);
  EXPECT_FALSE(m.deterministic_ties);
  EXPECT_TRUE(m.vs_payload_key);
}

TEST(PropertiesTest, MeetWithNoneIsNone) {
  const StreamProperties m =
      StreamProperties::Strongest().Meet(StreamProperties::None());
  EXPECT_TRUE(m.Equals(StreamProperties::None()));
}

TEST(PropertiesTest, ChooseR0ForStrictlyIncreasingInsertOnly) {
  EXPECT_EQ(ChooseAlgorithm(Make(true, true, true, true, false)),
            AlgorithmCase::kR0);
}

TEST(PropertiesTest, ChooseR1ForDeterministicTies) {
  // Top-k over an ordered stream: duplicate timestamps in rank order.
  EXPECT_EQ(ChooseAlgorithm(Make(true, true, false, true, false)),
            AlgorithmCase::kR1);
}

TEST(PropertiesTest, ChooseR2ForOrderedKeyedNondeterministicTies) {
  // Grouped aggregation over an ordered stream (Sec. IV-G example 5).
  EXPECT_EQ(ChooseAlgorithm(Make(true, true, false, false, true)),
            AlgorithmCase::kR2);
}

TEST(PropertiesTest, ChooseR3ForDisorderedKeyed) {
  // Grouped aggregation over a disordered stream (example 6).
  EXPECT_EQ(ChooseAlgorithm(Make(false, false, false, false, true)),
            AlgorithmCase::kR3);
}

TEST(PropertiesTest, ChooseR4WhenNothingHolds) {
  EXPECT_EQ(ChooseAlgorithm(StreamProperties::None()), AlgorithmCase::kR4);
  // Ordered but without the key property and with duplicates possible:
  // R2 requires the key, so this degrades to R4.
  EXPECT_EQ(ChooseAlgorithm(Make(true, true, false, false, false)),
            AlgorithmCase::kR4);
}

TEST(PropertiesTest, ChooseOverInputsUsesMeet) {
  const std::vector<StreamProperties> inputs = {
      Make(true, true, true, true, true),   // R0-grade input
      Make(false, false, false, false, true),  // R3-grade input
  };
  EXPECT_EQ(ChooseAlgorithm(inputs), AlgorithmCase::kR3);
}

TEST(PropertiesTest, EmptyInputsChooseR4) {
  EXPECT_EQ(ChooseAlgorithm(std::vector<StreamProperties>{}),
            AlgorithmCase::kR4);
}

TEST(PropertiesTest, ToStringListsFlags) {
  const std::string s = StreamProperties::Strongest().ToString();
  EXPECT_NE(s.find("insert_only"), std::string::npos);
  EXPECT_NE(s.find("strictly_increasing"), std::string::npos);
  EXPECT_EQ(StreamProperties::None().ToString(), "{}");
}

TEST(PropertiesTest, CaseNames) {
  EXPECT_STREQ(AlgorithmCaseName(AlgorithmCase::kR0), "R0");
  EXPECT_STREQ(AlgorithmCaseName(AlgorithmCase::kR4), "R4");
}

}  // namespace
}  // namespace lmerge
