// Runtime statistics and adaptive algorithm recommendation (Sec. IV-F).

#include "properties/runtime_stats.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/generator.h"

namespace lmerge {
namespace {

using ::lmerge::testing_util::Adj;
using ::lmerge::testing_util::Ins;
using ::lmerge::testing_util::Stb;

TEST(RuntimeStatsTest, OrderedUniqueStreamRecommendsR0) {
  StreamStatsCollector stats;
  for (int i = 1; i <= 50; ++i) {
    stats.Observe(StreamElement::Insert(Row::OfInt(i), i * 10, i * 10 + 5));
  }
  stats.Observe(Stb(100));
  EXPECT_EQ(stats.RecommendAlgorithm(), AlgorithmCase::kR0);
  const StreamProperties p = stats.ObservedProperties();
  EXPECT_TRUE(p.insert_only);
  EXPECT_TRUE(p.strictly_increasing);
}

TEST(RuntimeStatsTest, TiesDemoteToR2) {
  StreamStatsCollector stats;
  stats.Observe(StreamElement::Insert(Row::OfInt(1), 10, 20));
  stats.Observe(StreamElement::Insert(Row::OfInt(2), 10, 20));  // tie
  stats.Observe(StreamElement::Insert(Row::OfInt(3), 20, 30));
  // Ties observed, order preserved, key holds, insert-only: R2 (the
  // collector cannot certify deterministic tie order).
  EXPECT_EQ(stats.RecommendAlgorithm(), AlgorithmCase::kR2);
}

TEST(RuntimeStatsTest, DisorderDemotesToR3) {
  StreamStatsCollector stats;
  stats.Observe(Ins("a", 100, 200));
  stats.Observe(Ins("b", 50, 200));  // regression
  EXPECT_TRUE(stats.saw_vs_regression());
  EXPECT_EQ(stats.RecommendAlgorithm(), AlgorithmCase::kR3);
}

TEST(RuntimeStatsTest, AdjustsDemoteToR3) {
  StreamStatsCollector stats;
  stats.Observe(Ins("a", 10, 200));
  stats.Observe(Adj("a", 10, 200, 150));
  EXPECT_TRUE(stats.saw_adjust());
  EXPECT_EQ(stats.RecommendAlgorithm(), AlgorithmCase::kR3);
}

TEST(RuntimeStatsTest, DuplicateKeysDemoteToR4) {
  StreamStatsCollector stats;
  stats.Observe(Ins("a", 10, 200));
  stats.Observe(Ins("a", 10, 300));  // same (Vs, payload)
  EXPECT_TRUE(stats.saw_key_violation());
  EXPECT_EQ(stats.max_duplicates_d(), 2);
  EXPECT_EQ(stats.RecommendAlgorithm(), AlgorithmCase::kR4);
}

TEST(RuntimeStatsTest, TableFourQuantities) {
  StreamStatsCollector stats;
  stats.Observe(Ins("a", 10, 99));
  stats.Observe(Ins("b", 10, 99));
  stats.Observe(Ins("c", 20, 99));
  EXPECT_EQ(stats.live_keys_w(), 3);
  EXPECT_EQ(stats.max_same_vs_g(), 2);
  // A stable past some keys prunes the live set.
  stats.Observe(Stb(15));
  EXPECT_EQ(stats.live_keys_w(), 1);
}

TEST(RuntimeStatsTest, RemovalAdjustShrinksLiveSet) {
  StreamStatsCollector stats;
  stats.Observe(Ins("a", 10, 99));
  stats.Observe(Adj("a", 10, 99, 10));  // retract
  EXPECT_EQ(stats.live_keys_w(), 0);
}

TEST(RuntimeStatsTest, MatchesCompileTimeDerivationOnGeneratedStreams) {
  // The observed recommendation for a generated stream agrees with the
  // static knowledge of how it was generated.
  workload::GeneratorConfig config;
  config.num_inserts = 300;
  config.stable_freq = 0.05;
  config.event_duration = 400;
  config.max_gap = 15;
  config.payload_string_bytes = 4;
  config.seed = 5;
  const workload::LogicalHistory history =
      workload::GenerateHistory(config);

  StreamStatsCollector ordered;
  for (const StreamElement& e : workload::RenderInOrder(history)) {
    ordered.Observe(e);
  }
  EXPECT_EQ(ordered.RecommendAlgorithm(), AlgorithmCase::kR0);

  workload::VariantOptions messy;
  messy.disorder_fraction = 0.4;
  messy.split_probability = 0.4;
  messy.seed = 9;
  StreamStatsCollector disordered;
  for (const StreamElement& e :
       GeneratePhysicalVariant(history, messy)) {
    disordered.Observe(e);
  }
  EXPECT_EQ(disordered.RecommendAlgorithm(), AlgorithmCase::kR3);
}

TEST(RuntimeStatsTest, ToStringMentionsRecommendation) {
  StreamStatsCollector stats;
  stats.Observe(Ins("a", 10, 99));
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("recommend="), std::string::npos);
  EXPECT_NE(s.find("w=1"), std::string::npos);
}

}  // namespace
}  // namespace lmerge
