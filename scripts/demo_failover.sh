#!/usr/bin/env bash
# End-to-end demo of replication and hot failover on localhost:
#
#   * lmerge_served (the primary) merges 2 redundant publishers over TCP;
#   * lmerge_standby attaches from the start as a v4 standby, shadows the
#     primary's merged output, then jumpstarts mid-stream: it receives a
#     snapshot-equivalent checkpoint plus a cut certificate and dedups the
#     already-covered prefix by count;
#   * the primary is killed (SIGKILL, no goodbye) — the standby promotes
#     itself and the surviving publishers reconnect to it, replaying their
#     tapes through the ordinary join protocol;
#   * the standby's view of the whole stream (pre-cut prefix + its own
#     output) must validate and be logically equivalent to a single input
#     tape — zero events lost or duplicated across the failover;
#   * the received checkpoint is archived and inspected with
#     `lmerge_inspect --checkpoint`, and the standby's metrics snapshot
#     must show a real transfer (bytes received, elements deduped).
#
# Usage: scripts/demo_failover.sh [build-dir] [primary-port] [standby-port]

set -euo pipefail

BUILD_DIR=${1:-build}
PRIMARY_PORT=${2:-7664}
STANDBY_PORT=${3:-7665}
TOOLS="$BUILD_DIR/tools"
WORK=$(mktemp -d /tmp/lmerge_failover.XXXXXX)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT

for tool in lmerge_gen lmerge_served lmerge_standby lmerge_publish \
            lmerge_inspect lmerge_stats; do
  [ -x "$TOOLS/$tool" ] || {
    echo "error: $TOOLS/$tool not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  }
done

echo "== generating 2 divergent physical presentations of one stream =="
"$TOOLS/lmerge_gen" "$WORK/a.lmst" --inserts=4000 --variant-seed=1 \
    --disorder=0.3 --split=0.3 --finalize
"$TOOLS/lmerge_gen" "$WORK/b.lmst" --inserts=4000 --variant-seed=2 \
    --disorder=0.3 --split=0.3 --finalize

echo "== starting the primary on port $PRIMARY_PORT =="
# drain-publishers is set unreachably high: this server is not meant to
# exit — it gets killed.
"$TOOLS/lmerge_served" --port="$PRIMARY_PORT" \
    --drain-publishers=99 --quiet &
PRIMARY_PID=$!

echo "== standby attaches, shadows, and jumpstarts mid-stream =="
# The jumpstart delay lets the publishers make progress first, so it
# exercises a real snapshot + non-zero dedup horizon instead of an empty
# from-scratch start.  --retry rides out the primary still binding its
# port: no startup sleep.
"$TOOLS/lmerge_standby" --primary-port="$PRIMARY_PORT" \
    --port="$STANDBY_PORT" --out="$WORK/standby.lmst" \
    --checkpoint-out="$WORK/snapshot.lmck" \
    --metrics-out="$WORK/standby_metrics.json" \
    --jumpstart-delay-ms=1200 --drain-publishers=2 --quiet \
    --retry=40 --connect-timeout-ms=500 &
STANDBY_PID=$!
# Gate on the primary actually reporting the standby's session, so the
# shadow feed covers the whole merged stream before any publisher starts.
until "$TOOLS/lmerge_stats" 127.0.0.1 "$PRIMARY_PORT" --count=1 --json \
      2>/dev/null | grep -q '"subscribers": *[1-9]'; do
  sleep 0.05
done

echo "== publishers stream their tapes to the primary =="
"$TOOLS/lmerge_publish" 127.0.0.1 "$PRIMARY_PORT" "$WORK/a.lmst" \
    --name=replica-a &
A_PID=$!
"$TOOLS/lmerge_publish" 127.0.0.1 "$PRIMARY_PORT" "$WORK/b.lmst" \
    --name=replica-b
wait "$A_PID"
# The standby archives the checkpoint right after its jumpstart completes;
# gate the kill on that file so the snapshot transfer is never cut off
# (the event-loop stack finishes both tapes well inside the 1200ms
# jumpstart delay, so a fixed sleep would race it).
until [ -s "$WORK/snapshot.lmck" ]; do sleep 0.05; done
sleep 0.5   # let the primary's fan-out drain to the standby

echo "== killing the primary (SIGKILL) =="
kill -9 "$PRIMARY_PID" 2>/dev/null
wait "$PRIMARY_PID" 2>/dev/null || true

echo "== survivors reconnect to the promoted standby on port $STANDBY_PORT =="
# The replayed tapes are redundant presentations of everything the standby
# already merged; the restored state absorbs the duplicates.  --retry rides
# out the promotion window instead of a fixed sleep.
"$TOOLS/lmerge_publish" 127.0.0.1 "$STANDBY_PORT" "$WORK/a.lmst" \
    --name=replica-a --retry=40 --connect-timeout-ms=500 &
A2_PID=$!
"$TOOLS/lmerge_publish" 127.0.0.1 "$STANDBY_PORT" "$WORK/b.lmst" \
    --name=replica-b --retry=40 --connect-timeout-ms=500
wait "$A2_PID"
wait "$STANDBY_PID"

echo "== verifying: standby output equivalent to a single input tape =="
"$TOOLS/lmerge_inspect" "$WORK/standby.lmst" --equiv="$WORK/a.lmst"

echo "== verifying: archived checkpoint inspects cleanly =="
"$TOOLS/lmerge_inspect" --checkpoint "$WORK/snapshot.lmck" \
    | tee "$WORK/snapshot_inspect.txt"
grep -q "checkpoint v2" "$WORK/snapshot_inspect.txt"
grep -q "cut:" "$WORK/snapshot_inspect.txt"

echo "== verifying: replication metrics tell the jumpstart story =="
python3 - "$WORK" <<'EOF'
import json, sys

work = sys.argv[1]
metrics = json.load(open(f"{work}/standby_metrics.json"))

rx_bytes = metrics["replica.checkpoint.rx.bytes"]
rx_chunks = metrics["replica.checkpoint.rx.chunks"]
deduped = metrics["replica.dedup.elements"]
feed = metrics["replica.feed.elements"]
replayed = metrics["replica.replay.elements"]

assert rx_bytes > 0 and rx_chunks > 0, (
    f"no checkpoint transfer: {rx_bytes} bytes in {rx_chunks} chunks")
assert deduped > 0, "jumpstart happened before any output; no dedup horizon"
assert feed >= deduped, (feed, deduped)
assert replayed == feed - deduped, (replayed, feed, deduped)
print(f"   jumpstart: {rx_bytes} checkpoint bytes in {rx_chunks} chunks; "
      f"{feed} feed elements = {deduped} deduped + {replayed} replayed")
EOF

echo "DEMO PASSED: the standby jumpstarted from a mid-stream checkpoint,"
echo "survived the primary's SIGKILL, and its reconstituted output equals"
echo "the uninterrupted reference — zero events lost or duplicated."
