#!/usr/bin/env bash
# End-to-end demo of the networked LMerge service on localhost:
#
#   * lmerge_served merges 3 redundant publishers over real TCP;
#   * one replica is killed mid-stream (drops the connection without BYE)
#     and rejoins by replaying its tape;
#   * a subscriber captures the live merged output;
#   * the captured stream must validate and be logically equivalent to a
#     single input tape — zero events lost or duplicated despite the crash.
#
# Usage: scripts/demo_net.sh [build-dir] [port]

set -euo pipefail

BUILD_DIR=${1:-build}
PORT=${2:-7654}
TOOLS="$BUILD_DIR/tools"
WORK=$(mktemp -d /tmp/lmerge_demo.XXXXXX)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT

for tool in lmerge_gen lmerge_served lmerge_publish lmerge_subscribe \
            lmerge_inspect; do
  [ -x "$TOOLS/$tool" ] || {
    echo "error: $TOOLS/$tool not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  }
done

echo "== generating 3 divergent physical presentations of one stream =="
"$TOOLS/lmerge_gen" "$WORK/a.lmst" --inserts=5000 --variant-seed=1 \
    --disorder=0.3 --split=0.3 --finalize
"$TOOLS/lmerge_gen" "$WORK/b.lmst" --inserts=5000 --variant-seed=2 \
    --disorder=0.3 --split=0.3 --finalize
"$TOOLS/lmerge_gen" "$WORK/c.lmst" --inserts=5000 --variant-seed=3 \
    --disorder=0.3 --split=0.3 --finalize

echo "== starting lmerge_served on port $PORT =="
# 4 publisher sessions total: a, b (crashes), b's rejoin, c.
"$TOOLS/lmerge_served" --port="$PORT" --out="$WORK/merged.lmst" \
    --drain-publishers=4 --quiet &
SERVER_PID=$!
sleep 0.3

echo "== subscriber attaches for the live merged stream =="
"$TOOLS/lmerge_subscribe" 127.0.0.1 "$PORT" "$WORK/subscribed.lmst" \
    --validate &
SUBSCRIBER_PID=$!
sleep 0.2

echo "== publishing: replica-b is killed mid-stream, then rejoins =="
"$TOOLS/lmerge_publish" 127.0.0.1 "$PORT" "$WORK/a.lmst" --name=replica-a &
"$TOOLS/lmerge_publish" 127.0.0.1 "$PORT" "$WORK/b.lmst" --name=replica-b \
    --kill-after=2000
"$TOOLS/lmerge_publish" 127.0.0.1 "$PORT" "$WORK/b.lmst" \
    --name=replica-b-rejoin &
"$TOOLS/lmerge_publish" 127.0.0.1 "$PORT" "$WORK/c.lmst" --name=replica-c

wait "$SERVER_PID"
wait "$SUBSCRIBER_PID" || true   # subscriber exits when the server drains

echo "== verifying: merged output equivalent to a single input tape =="
"$TOOLS/lmerge_inspect" "$WORK/merged.lmst" --equiv="$WORK/a.lmst"

echo "DEMO PASSED: merged stream is valid and logically equivalent (no"
echo "events lost or duplicated despite the mid-stream crash + rejoin)."
