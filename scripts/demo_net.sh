#!/usr/bin/env bash
# End-to-end demo of the networked LMerge service on localhost:
#
#   * lmerge_served merges 3 redundant publishers over real TCP;
#   * one replica is killed mid-stream (drops the connection without BYE)
#     and rejoins by replaying its tape;
#   * a subscriber captures the live merged output;
#   * the captured stream must validate and be logically equivalent to a
#     single input tape — zero events lost or duplicated despite the crash;
#   * lmerge_stats monitors the live server throughout: the crashed
#     replica's lag must spike while it is down and recover via the rejoin,
#     and the per-input contributions must sum to the merged output TDB
#     size (checked against both the final metrics snapshot and the tape);
#   * the HTTP endpoint is scraped mid-run: /healthz and /readyz answer,
#     /metrics parses as OpenMetrics with nonzero end-to-end latency
#     samples, and /metrics.json reports the live publish->fanout
#     p50/p99;
#   * the subscriber measures publish->delivery latency externally from
#     the v5 wire stamps (--latency).
#
# Usage: scripts/demo_net.sh [build-dir] [port] [http-port]

set -euo pipefail

BUILD_DIR=${1:-build}
PORT=${2:-7654}
HTTP_PORT=${3:-$((PORT + 1))}
TOOLS="$BUILD_DIR/tools"
WORK=$(mktemp -d /tmp/lmerge_demo.XXXXXX)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT

for tool in lmerge_gen lmerge_served lmerge_publish lmerge_subscribe \
            lmerge_inspect lmerge_stats; do
  [ -x "$TOOLS/$tool" ] || {
    echo "error: $TOOLS/$tool not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  }
done

echo "== generating 3 divergent physical presentations of one stream =="
"$TOOLS/lmerge_gen" "$WORK/a.lmst" --inserts=5000 --variant-seed=1 \
    --disorder=0.3 --split=0.3 --finalize
"$TOOLS/lmerge_gen" "$WORK/b.lmst" --inserts=5000 --variant-seed=2 \
    --disorder=0.3 --split=0.3 --finalize
"$TOOLS/lmerge_gen" "$WORK/c.lmst" --inserts=5000 --variant-seed=3 \
    --disorder=0.3 --split=0.3 --finalize

echo "== starting lmerge_served on port $PORT =="
# 4 publisher sessions total: a, b (crashes), b's rejoin, c.
"$TOOLS/lmerge_served" --port="$PORT" --out="$WORK/merged.lmst" \
    --metrics-out="$WORK/metrics.json" --http-port="$HTTP_PORT" \
    --drain-publishers=4 --quiet &
SERVER_PID=$!

echo "== subscriber attaches for the live merged stream =="
# --retry rides out the server still binding its port: no startup sleep.
"$TOOLS/lmerge_subscribe" 127.0.0.1 "$PORT" "$WORK/subscribed.lmst" \
    --validate --latency --retry=40 --connect-timeout-ms=500 \
    2> "$WORK/subscriber.log" &
SUBSCRIBER_PID=$!

echo "== lmerge_stats monitor polls the live server in the background =="
( i=0
  while "$TOOLS/lmerge_stats" 127.0.0.1 "$PORT" --count=1 --json \
        > "$WORK/poll_$(printf '%04d' "$i").json" 2>/dev/null; do
    i=$((i + 1))
    sleep 0.05
  done ) &
POLLER_PID=$!
# Gate on the server actually reporting the subscriber session, so the
# capture covers the whole merged stream (instead of sleeping and hoping
# the handshake won the race against the publishers below).
until "$TOOLS/lmerge_stats" 127.0.0.1 "$PORT" --count=1 --json 2>/dev/null \
      | grep -q '"subscribers": *[1-9]'; do
  sleep 0.05
done

echo "== publishing: replica-b is killed mid-stream, then rejoins =="
"$TOOLS/lmerge_publish" 127.0.0.1 "$PORT" "$WORK/a.lmst" --name=replica-a &
A_PID=$!
"$TOOLS/lmerge_publish" 127.0.0.1 "$PORT" "$WORK/b.lmst" --name=replica-b \
    --kill-after=2000
# Let replica-a finish its full tape so the leader's stable point is final,
# then capture the dead replica-b's lag spike before the rejoin starts.
wait "$A_PID"
sleep 0.2
"$TOOLS/lmerge_stats" 127.0.0.1 "$PORT" --count=1 --json \
    > "$WORK/stats_after_crash.json"
"$TOOLS/lmerge_publish" 127.0.0.1 "$PORT" "$WORK/b.lmst" \
    --name=replica-b-rejoin &
# The event-loop transport serves a replayed (fully fast-forwarded) tape
# faster than the 50ms poll cadence, so deterministically record one poll
# that saw the fresh input before moving on (inputs persist in the stats
# table, so this converges as soon as the rejoin handshake lands).
until "$TOOLS/lmerge_stats" 127.0.0.1 "$PORT" --count=1 --json \
      > "$WORK/poll_rejoin.json" 2>/dev/null && \
      grep -q '"peer": *"replica-b-rejoin"' "$WORK/poll_rejoin.json"; do
  sleep 0.02
done
echo "== scraping the live HTTP metrics/health endpoints =="
python3 - "$HTTP_PORT" <<'EOF'
import json, re, sys, urllib.request

base = f"http://127.0.0.1:{sys.argv[1]}"

health = urllib.request.urlopen(f"{base}/healthz", timeout=5).read().decode()
assert health.strip() == "ok", health
ready = urllib.request.urlopen(f"{base}/readyz", timeout=5).read().decode()
assert ready.strip() == "ready", ready

text = urllib.request.urlopen(f"{base}/metrics", timeout=5).read().decode()
assert text.rstrip("\n").endswith("# EOF"), "missing OpenMetrics terminator"
line_re = re.compile(
    r"^(# TYPE [a-zA-Z_][a-zA-Z0-9_]* (counter|gauge|histogram)"
    r"|[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? -?[0-9]+"
    r"|# EOF)$")
for line in text.rstrip("\n").split("\n"):
    assert line_re.match(line), f"unparseable OpenMetrics line: {line!r}"
count = int(re.search(r"^latency_publish_to_fanout_us_count (\d+)$",
                      text, re.M).group(1))
assert count > 0, "no end-to-end latency samples in the live scrape"

snap = json.load(urllib.request.urlopen(f"{base}/metrics.json", timeout=5))
e2e = snap["latency.publish_to_fanout_us"]
for stage in ("latency.rx_to_merge_us", "latency.merge_us",
              "latency.merge_to_fanout_us", "latency.fanout_us"):
    assert snap[stage]["count"] > 0, f"{stage} recorded nothing"
print(f"   live /metrics: {count} end-to-end samples, publish->fanout "
      f"p50={e2e['p50']}us p99={e2e['p99']}us")
EOF
"$TOOLS/lmerge_publish" 127.0.0.1 "$PORT" "$WORK/c.lmst" --name=replica-c

wait "$SERVER_PID"
wait "$SUBSCRIBER_PID" || true   # subscriber exits when the server drains
wait "$POLLER_PID" || true       # poller exits once the server is gone

echo "== verifying: merged output equivalent to a single input tape =="
"$TOOLS/lmerge_inspect" "$WORK/merged.lmst" --equiv="$WORK/a.lmst"

echo "== verifying: per-input attribution and crash/rejoin lag story =="
"$TOOLS/lmerge_inspect" "$WORK/merged.lmst" > "$WORK/merged_inspect.txt"
python3 - "$WORK" <<'EOF'
import glob, json, re, sys

work = sys.argv[1]
metrics = json.load(open(f"{work}/metrics.json"))

# 1. Per-input contributions sum to the merged output TDB size, and the
#    final exact snapshot agrees with the tape lmerge_inspect read back.
contributed = {name: value for name, value in metrics.items()
               if re.fullmatch(r"merge\.input\.\d+\.contributed", name)}
out_inserts = metrics["merge.out.inserts"]
assert len(contributed) == 4, f"expected 4 merge inputs: {contributed}"
assert sum(contributed.values()) == out_inserts, (contributed, out_inserts)
tape_inserts = int(re.search(r"(\d+) inserts",
                             open(f"{work}/merged_inspect.txt").read())
                   .group(1))
assert out_inserts == tape_inserts, (out_inserts, tape_inserts)
print(f"   attribution: {sorted(contributed.values())} inputs sum to the "
      f"merged TDB size ({out_inserts} inserts, tape agrees)")

# 2. Lag spike: while replica-b was down it was disconnected and strictly
#    behind the leading replica's stable point.
crash = json.load(open(f"{work}/stats_after_crash.json"))
rows = {r["peer"]: r for r in crash["inputs"]}
leader = max(r["stable_point"] for r in crash["inputs"])
b = rows["replica-b"]
assert not b["connected"], "replica-b should be disconnected after the kill"
lag = leader - b["stable_point"]
assert lag > 0, f"expected a lag spike on the dead replica, got {lag}"
print(f"   crash: replica-b died {lag} behind the leader")

# 3. Recovery: the rejoin replayed the tape and caught back up — in the
#    final snapshot only the dead replica-b input is still behind the
#    merged stable point.
stable = metrics["merge.stable"]
points = {name: value for name, value in metrics.items()
          if re.fullmatch(r"merge\.input\.\d+\.stable_point", name)}
behind = [name for name, value in points.items() if value < stable]
assert len(behind) == 1, f"only the crashed input should lag: {behind}"
# The live polls must have seen the rejoin appear as a 5th peer-session
# view (4 merge inputs; the rejoin is a fresh input, the dead one stays).
polls = [json.load(open(p)) for p in sorted(glob.glob(f"{work}/poll_*.json"))
         if open(p).read(1)]
assert any(any(r["peer"] == "replica-b-rejoin" for r in poll["inputs"])
           for poll in polls), "no poll observed the rejoined replica"
print(f"   rejoin: {len(polls)} live polls; lag recovered, only the dead "
      f"input remains behind (stable {stable})")
EOF

echo "== subscriber-side publish->delivery latency (v5 wire stamps) =="
grep "publish->delivery" "$WORK/subscriber.log"

echo "DEMO PASSED: merged stream is valid and logically equivalent (no"
echo "events lost or duplicated despite the mid-stream crash + rejoin),"
echo "and the live stats told the same story: contributions sum to the"
echo "merged TDB size, lag spiked at the crash and recovered on rejoin;"
echo "the HTTP endpoint served health and end-to-end latency live."
