#!/usr/bin/env python3
"""LMerge project lint: repo-specific invariants clang-tidy cannot express.

Rules (each with a machine-readable id, enforced over comment-stripped
source so documentation may mention the forbidden names):

  raw-mutex          No raw std::mutex / std::lock_guard / std::unique_lock /
                     std::scoped_lock / std::condition_variable / std::
                     shared_mutex (or their includes) in src/, tools/,
                     bench/, or examples/.  Every lock must be an annotated
                     lmerge::Mutex (src/common/mutex.h) so the Clang
                     thread-safety build can see it — examples double as
                     copy-paste templates, so they follow the same
                     discipline as the library.

  deep-copy          Row::DeepCopy() only in the Row implementation, the
                     LMR3- baseline (whose per-input duplication is the
                     paper's comparison point), and tests.  Everything else
                     (bench/ and examples/ included) must share interned
                     reps through the PayloadStore.

  registry-mutation  MetricsRegistry::Global() / TraceRecorder::Global()
                     only from the blessed instrumentation sites in src/
                     and the bench harness's read-side snapshot/dump
                     helpers (allowlisted).  Ad-hoc registry access invents
                     unreviewed metric names and bypasses the cached-handle
                     hot-path discipline (docs/OBSERVABILITY.md).

Exceptions live in scripts/lint_allowlist.json (paths or fnmatch globs).
Exit status: 0 clean, 1 violations, 2 usage/config error.

  scripts/lint.py                 lint the repo
  scripts/lint.py --self-test     verify each rule rejects a seeded
                                  violation and honors its allowlist
"""

import argparse
import fnmatch
import json
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# (rule id, compiled pattern, scanned top-level dirs, human message)
RULES = [
    (
        "raw-mutex",
        re.compile(
            r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
            r"lock_guard|unique_lock|scoped_lock|condition_variable)\b"
            r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
        ),
        ("src", "tools", "bench", "examples"),
        "raw standard-library lock primitive; use lmerge::Mutex / MutexLock "
        "/ CondVar from src/common/mutex.h so the clang -Wthread-safety "
        "build can check the locking discipline",
    ),
    (
        "deep-copy",
        re.compile(r"\bDeepCopy\s*\("),
        ("src", "tools", "bench", "examples"),
        "Row::DeepCopy duplicates the payload per call; outside the LMR3- "
        "baseline (and tests) payloads must stay interned in the "
        "PayloadStore",
    ),
    (
        "registry-mutation",
        re.compile(r"\b(MetricsRegistry|TraceRecorder)::Global\s*\("),
        ("src", "bench", "examples"),
        "direct obs registry access outside the blessed instrumentation "
        "sites; cache instrument handles at an allowlisted site or extend "
        "obs/export.h",
    ),
]

SOURCE_EXTENSIONS = (".cc", ".h", ".cpp")

LINE_COMMENT = re.compile(r"//[^\n]*")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_LITERAL = re.compile(r'"(?:[^"\\\n]|\\.)*"')


def strip_comments(text):
    """Blanks comments and string literals, preserving line numbers."""

    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    text = BLOCK_COMMENT.sub(blank, text)
    text = LINE_COMMENT.sub(blank, text)
    return STRING_LITERAL.sub(blank, text)


def load_allowlist(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"lint.py: cannot read allowlist {path}: {e}", file=sys.stderr)
        sys.exit(2)
    known = {rule_id for rule_id, _, _, _ in RULES}
    unknown = set(data) - known - {"_comment"}
    if unknown:
        print(
            f"lint.py: allowlist names unknown rules: {sorted(unknown)}",
            file=sys.stderr,
        )
        sys.exit(2)
    return data


def allowed(rel_path, patterns):
    rel_path = rel_path.replace(os.sep, "/")
    for pattern in patterns:
        if rel_path == pattern or fnmatch.fnmatch(rel_path, pattern):
            return True
        # `dir/**` should also match direct children on Pythons where
        # fnmatch treats ** like *.
        if pattern.endswith("/**") and rel_path.startswith(pattern[:-2]):
            return True
    return False


def iter_sources(root, top_dirs):
    for top in top_dirs:
        base = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def run_lint(root, allowlist):
    violations = []
    for rule_id, pattern, top_dirs, message in RULES:
        rule_allow = allowlist.get(rule_id, [])
        for path in iter_sources(root, top_dirs):
            rel = os.path.relpath(path, root)
            if allowed(rel, rule_allow):
                continue
            try:
                with open(path, encoding="utf-8") as f:
                    text = f.read()
            except OSError as e:
                print(f"lint.py: cannot read {rel}: {e}", file=sys.stderr)
                sys.exit(2)
            stripped = strip_comments(text)
            for match in pattern.finditer(stripped):
                line = stripped.count("\n", 0, match.start()) + 1
                violations.append((rule_id, rel, line, message))
    return violations


def report(violations):
    for rule_id, rel, line, message in violations:
        print(f"{rel}:{line}: [{rule_id}] {message}")
    if violations:
        print(
            f"lint.py: {len(violations)} violation(s).  Legitimate "
            "exceptions go in scripts/lint_allowlist.json (with review); "
            "see docs/STATIC_ANALYSIS.md.",
            file=sys.stderr,
        )


# --- Self-test: each rule must reject a seeded violation ------------------

NEGATIVE_FIXTURES = {
    "raw-mutex": (
        "src/negative_fixture.cc",
        "#include <mutex>\nstd::mutex bad_lock;\n",
    ),
    "deep-copy": (
        "src/core/negative_fixture.cc",
        "void F(Row& row) { auto copy = row.DeepCopy(); }\n",
    ),
    "registry-mutation": (
        "src/core/negative_fixture.cc",
        "void G() { obs::MetricsRegistry::Global(); }\n",
    ),
}


def self_test(allowlist_path):
    allowlist = load_allowlist(allowlist_path)
    failures = []
    for rule_id, _, _, _ in RULES:
        rel, body = NEGATIVE_FIXTURES[rule_id]
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(body)
            hits = [v for v in run_lint(tmp, allowlist) if v[0] == rule_id]
            if not hits:
                failures.append(f"{rule_id}: seeded violation NOT rejected")
            # The same content inside a comment must not fire.
            commented = "".join(f"// {line}\n" for line in body.splitlines())
            with open(path, "w", encoding="utf-8") as f:
                f.write(commented)
            hits = [v for v in run_lint(tmp, allowlist) if v[0] == rule_id]
            if hits:
                failures.append(f"{rule_id}: fired inside a comment")
            # And an allowlisted copy must pass.
            allow_rel = next(
                (p for p in allowlist.get(rule_id, []) if "*" not in p), None
            )
            if allow_rel is not None:
                allow_path = os.path.join(tmp, allow_rel)
                os.makedirs(os.path.dirname(allow_path), exist_ok=True)
                with open(allow_path, "w", encoding="utf-8") as f:
                    f.write(body)
                hits = [
                    v
                    for v in run_lint(tmp, allowlist)
                    if v[0] == rule_id and v[1].replace(os.sep, "/") == allow_rel
                ]
                if hits:
                    failures.append(f"{rule_id}: allowlist not honored")
    if failures:
        for failure in failures:
            print(f"lint.py self-test FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"lint.py self-test OK ({len(RULES)} rules verified)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=REPO_ROOT)
    parser.add_argument(
        "--allowlist",
        default=os.path.join(REPO_ROOT, "scripts", "lint_allowlist.json"),
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test(args.allowlist))

    violations = run_lint(args.root, load_allowlist(args.allowlist))
    report(violations)
    sys.exit(1 if violations else 0)


if __name__ == "__main__":
    main()
