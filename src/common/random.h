// Deterministic pseudo-random number generation for workload synthesis.
//
// All experiments in the paper use a parameterised synthetic generator; to
// make every figure reproducible bit-for-bit we route all randomness through
// an explicitly seeded xoshiro256** generator (seeded via splitmix64, per the
// reference implementation's recommendation).

#ifndef LMERGE_COMMON_RANDOM_H_
#define LMERGE_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace lmerge {

// splitmix64 step; used to expand a single seed into generator state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** — fast, high-quality, 2^256-1 period.  Deterministic given a
// seed; copyable so a workload can fork independent sub-streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(&sm);
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    LM_DCHECK(lo <= hi);
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    // Bounded rejection sampling (Lemire-style without multiplication trick;
    // the simple modulo bias is eliminated by rejecting the tail).
    const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    uint64_t v = Next();
    while (v >= limit) v = Next();
    return lo + static_cast<int64_t>(v % range);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Standard normal via Box-Muller.
  double Normal(double mean, double stddev) {
    // Discard the second variate for simplicity; determinism is what matters.
    double u1 = UniformDouble();
    while (u1 == 0.0) u1 = UniformDouble();
    const double u2 = UniformDouble();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

  // Normal truncated to [lo, hi] by rejection; used for the burst-delay model
  // of Sec. VI-E ("truncated normal distribution with mean 20 and standard
  // deviation 5").
  double TruncatedNormal(double mean, double stddev, double lo, double hi) {
    LM_DCHECK(lo < hi);
    for (int i = 0; i < 1000; ++i) {
      const double v = Normal(mean, stddev);
      if (v >= lo && v <= hi) return v;
    }
    return mean < lo ? lo : (mean > hi ? hi : mean);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_RANDOM_H_
