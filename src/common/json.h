// Minimal JSON emission: correct string escaping and deterministic key
// order, nothing else.
//
// Consumers are the machine-readable outputs scattered across the repo —
// BENCH_*.json (bench/bench_util.h), metrics snapshots
// (obs/metrics.h ToJson), `lmerge_served --metrics-out` — which are parsed
// by the CI python steps and embedded into each other.  Hand-rolled
// fprintf-style emission broke both guarantees (benchmark names containing
// quotes or backslashes corrupted the document, and map-driven sections
// serialized in hash order), so every JSON byte the repo writes now goes
// through this writer.  Emission only; parsing stays in python.

#ifndef LMERGE_COMMON_JSON_H_
#define LMERGE_COMMON_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace lmerge {

// Escapes `s` for use inside a JSON string literal (quotes not included).
// Control characters, quotes, and backslashes become escape sequences;
// everything else (including UTF-8 bytes) passes through untouched.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Streaming writer for objects/arrays: handles commas and escaping; the
// caller supplies keys in the order it wants them to appear (emit sorted
// keys for deterministic documents).
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Prefix();
    out_ += '{';
    fresh_ = true;
    return *this;
  }
  JsonWriter& EndObject() {
    out_ += '}';
    fresh_ = false;
    return *this;
  }
  JsonWriter& BeginArray() {
    Prefix();
    out_ += '[';
    fresh_ = true;
    return *this;
  }
  JsonWriter& EndArray() {
    out_ += ']';
    fresh_ = false;
    return *this;
  }

  // Emits the key and leaves the writer expecting its value next.
  JsonWriter& Key(const std::string& key) {
    Prefix();
    out_ += '"';
    out_ += JsonEscape(key);
    out_ += "\":";
    fresh_ = true;  // the value must not get a comma
    return *this;
  }

  JsonWriter& String(const std::string& value) {
    Prefix();
    out_ += '"';
    out_ += JsonEscape(value);
    out_ += '"';
    return *this;
  }
  JsonWriter& Int(int64_t value) {
    Prefix();
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Double(double value) {
    Prefix();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out_ += buf;
    return *this;
  }
  JsonWriter& Bool(bool value) {
    Prefix();
    out_ += value ? "true" : "false";
    return *this;
  }
  // Splices an already-serialized JSON value (e.g. a nested document from
  // another writer) in as-is.  The caller vouches for its validity.
  JsonWriter& Raw(const std::string& json) {
    Prefix();
    out_ += json;
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Prefix() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_JSON_H_
