// Checkpointing: snapshot and restore of operator state.
//
// Backs query jumpstart and cutover (Sec. II-4/5): a running query's
// operator state is serialized, shipped (e.g., to a new machine in a cloud
// migration), and restored into a fresh instance that continues exactly
// where the original stood.  Checkpoints carry a magic and version so stale
// or foreign blobs are rejected rather than misinterpreted.

#ifndef LMERGE_COMMON_CHECKPOINT_H_
#define LMERGE_COMMON_CHECKPOINT_H_

#include <string>

#include "common/serde.h"
#include "common/status.h"

namespace lmerge {

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  // Serializes the complete operational state.
  virtual void SaveState(Encoder* encoder) const = 0;
  // Replaces this instance's state with the serialized one.  On error the
  // instance must be treated as unusable.
  virtual Status RestoreState(Decoder* decoder) = 0;
};

inline constexpr uint32_t kCheckpointMagic = 0x4c4d4347;  // "LMCG"
inline constexpr uint32_t kCheckpointVersion = 1;

// Wraps SaveState with a header.
inline std::string SaveCheckpoint(const Checkpointable& target) {
  Encoder encoder;
  encoder.WriteU32(kCheckpointMagic);
  encoder.WriteU32(kCheckpointVersion);
  target.SaveState(&encoder);
  return encoder.TakeBytes();
}

// Verifies the header and restores.
inline Status LoadCheckpoint(const std::string& bytes,
                             Checkpointable* target) {
  Decoder decoder(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  Status status = decoder.ReadU32(&magic);
  if (!status.ok()) return status;
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a checkpoint (bad magic)");
  }
  status = decoder.ReadU32(&version);
  if (!status.ok()) return status;
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  status = target->RestoreState(&decoder);
  if (!status.ok()) return status;
  if (!decoder.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }
  return Status::Ok();
}

}  // namespace lmerge

#endif  // LMERGE_COMMON_CHECKPOINT_H_
