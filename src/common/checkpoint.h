// Checkpointing: snapshot and restore of operator state.
//
// Backs query jumpstart and cutover (Sec. II-4/5): a running query's
// operator state is serialized, shipped (e.g., to a new machine in a cloud
// migration or to a hot standby over the wire), and restored into a fresh
// instance that continues exactly where the original stood.  Checkpoints
// carry a magic and version so stale or foreign blobs are rejected rather
// than misinterpreted.
//
// Format v1:  u32 magic, u32 version, SaveState bytes (payload rows inline
//             per index entry).
// Format v2:  u32 magic, u32 version, u8 flags,
//             [string cut_certificate]   (iff flags bit 0)
//             string pool_section        (u32 count, rows in id order)
//             string body                (SaveState bytes with WriteRowRef
//                                         emitting u32 pool references)
// v2 writes each distinct interned rep exactly once: index entries carry
// 4-byte references into the pool section instead of a full row each — the
// shared-ledger ratio of BENCH_state_bytes.json, applied to snapshots.
// Both versions load; SaveCheckpoint can still emit v1 for old consumers.

#ifndef LMERGE_COMMON_CHECKPOINT_H_
#define LMERGE_COMMON_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"

namespace lmerge {

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  // Serializes the complete operational state.
  virtual void SaveState(Encoder* encoder) const = 0;
  // Replaces this instance's state with the serialized one.  On error the
  // instance must be treated as unusable.
  virtual Status RestoreState(Decoder* decoder) = 0;
};

inline constexpr uint32_t kCheckpointMagic = 0x4c4d4347;  // "LMCG"
inline constexpr uint32_t kCheckpointVersionV1 = 1;
inline constexpr uint32_t kCheckpointVersion = 2;

// v2 flags byte: bit 0 marks an embedded cut-certificate section (the
// replication subsystem's virtual-cut descriptor, src/replica/).
inline constexpr uint8_t kCheckpointFlagCutCertificate = 1u << 0;

// Wraps SaveState with a header.  `version` selects the format;
// `cut_certificate`, when non-empty, is embedded as an opaque section
// (v2 only — the caller must not pass one with a v1 version).
std::string SaveCheckpoint(const Checkpointable& target,
                           uint32_t version = kCheckpointVersion,
                           const std::string& cut_certificate = std::string());

// Verifies the header and restores either format.  When `cut_certificate`
// is non-null it receives the embedded section (empty if absent).
Status LoadCheckpoint(const std::string& bytes, Checkpointable* target,
                      std::string* cut_certificate = nullptr);

// Parsed header and section sizes of a checkpoint blob, computed without
// restoring any state — what `lmerge_inspect --checkpoint` prints.
struct CheckpointInfo {
  uint32_t version = 0;
  uint8_t flags = 0;
  size_t total_bytes = 0;
  size_t cut_certificate_bytes = 0;  // embedded cut cert section (v2)
  size_t pool_bytes = 0;             // payload pool section (v2; 0 for v1)
  size_t body_bytes = 0;             // SaveState body
  uint32_t pool_entries = 0;         // distinct pooled payload reps (v2)
  // The embedded cut-certificate section verbatim (empty when absent), so
  // inspectors can decode it without restoring any operator state.
  std::string cut_certificate;
};
Status InspectCheckpoint(const std::string& bytes, CheckpointInfo* info);

// ---------------------------------------------------------------------------
// Partitioned checkpoint container (engine/partitioned.h).
//
// A partitioned merge's state is N independent shard algorithms; its
// checkpoint is N ordinary blobs (one per shard, each in the v1/v2 format
// above) wrapped in a container:
//
//   u32 magic "LMPC", u32 version, u32 shard_count,
//   string shard_blob[0] ... string shard_blob[shard_count-1]
//
// The cut certificate is embedded in shard_blob[0] exactly as in the
// single-threaded case; its shard_stables section records every shard's
// stable frontier at the barrier.  Shard routing is deterministic and
// unseeded (PartitionedMerger::RouteShard), so a restore with the recorded
// shard count reproduces the exact per-shard key partition.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kPartitionedCheckpointMagic = 0x4c4d5043;  // "LMPC"
inline constexpr uint32_t kPartitionedCheckpointVersion = 1;

// True when `bytes` starts with the partitioned container magic — how
// AdoptCheckpoint dispatches between the single and partitioned restore
// paths without a separate wire signal.
bool IsPartitionedCheckpoint(const std::string& bytes);

// Wraps per-shard checkpoint blobs (shard order) into one container.
std::string CombinePartitionedCheckpoint(
    const std::vector<std::string>& shard_blobs);

// Unwraps a container into its per-shard blobs.
Status SplitPartitionedCheckpoint(const std::string& bytes,
                                  std::vector<std::string>* shard_blobs);

}  // namespace lmerge

#endif  // LMERGE_COMMON_CHECKPOINT_H_
