// Annotated mutex / condition-variable wrappers: the only lock primitives
// this codebase uses.
//
// lmerge::Mutex is a std::mutex carrying the Clang thread-safety capability
// attribute, so members can be declared LM_GUARDED_BY(mu_) and functions
// LM_REQUIRES(mu_), and `clang++ -Wthread-safety -Werror=thread-safety`
// rejects any access that does not provably hold the lock
// (common/thread_annotations.h).  Raw std::mutex / std::lock_guard /
// std::condition_variable are banned outside this header by
// scripts/lint.py (rule `raw-mutex`) precisely so no lock can exist that
// the analysis cannot see.
//
// MutexLock is the RAII guard (scoped capability).  It is relockable:
// Unlock()/Lock() are annotated, so early-release idioms (drop the shard
// lock before a delete) stay visible to the analysis.
//
// CondVar wraps std::condition_variable.  Wait/WaitFor take the MutexLock;
// as in every annotated-mutex library (absl::Mutex included), the analysis
// treats the capability as held across the wait even though it is
// physically released and reacquired — guarded reads in the wait loop are
// exactly the accesses the lock protects on wakeup.  Write wait loops as
// explicit `while (!predicate) cv.Wait(lock);` so the predicate's guarded
// reads are analyzed in the locked scope (a predicate lambda would be
// analyzed as a separate, lock-free function).

#ifndef LMERGE_COMMON_MUTEX_H_
#define LMERGE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace lmerge {

class CondVar;

class LM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LM_ACQUIRE() { mu_.lock(); }
  void Unlock() LM_RELEASE() { mu_.unlock(); }
  bool TryLock() LM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// RAII guard over an lmerge::Mutex.  Construction acquires, destruction
// releases (if still held).  Unlock()/Lock() allow annotated early release
// and reacquisition within the scope.
class LM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LM_ACQUIRE(mu) : lock_(mu.mu_) {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // The member unique_lock releases (when still held) after the body runs.
  ~MutexLock() LM_RELEASE() {}

  // Early release / reacquire (e.g. unlink under the lock, delete outside).
  void Unlock() LM_RELEASE() { lock_.unlock(); }
  void Lock() LM_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable bound to MutexLock-guarded waits.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until notified (spurious wakeups possible: always wait in a
  // `while (!predicate)` loop).  `lock` must hold the mutex guarding the
  // predicate state.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  // Timed wait; returns false on timeout.  Used as a lost-wakeup backstop
  // by the engine's parking paths.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_MUTEX_H_
