// Portable Clang Thread Safety Analysis annotations.
//
// The locking disciplines in this codebase (per-shard PayloadStore mutexes,
// the MergeServer session/fanout split, the obs registries, the engine's
// control-op queue) are *compile-time checked* invariants, not comments:
// every mutex is an annotated lmerge::Mutex (common/mutex.h), every member
// it protects carries LM_GUARDED_BY, and every function that expects a lock
// held carries LM_REQUIRES.  Building with
//
//   clang++ -Wthread-safety -Werror=thread-safety
//
// (the `static-analysis` CI job; enabled automatically whenever the compiler
// is Clang) turns any unlocked access, double-acquire, or forgotten release
// into a build error on every path — including interleavings TSan never
// schedules.  Under GCC the macros expand to nothing and the annotations
// are pure documentation.
//
// Naming follows the Clang attribute names with an LM_ prefix; see
// docs/STATIC_ANALYSIS.md for the how-to and
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.

#ifndef LMERGE_COMMON_THREAD_ANNOTATIONS_H_
#define LMERGE_COMMON_THREAD_ANNOTATIONS_H_

// 1 when the compiler implements the analysis (Clang), 0 otherwise.  Tests
// assert this tracks the compiler so a toolchain change cannot silently turn
// the annotations off.
#if defined(__clang__) && !defined(SWIG)
#define LMERGE_THREAD_SAFETY_ENABLED 1
#else
#define LMERGE_THREAD_SAFETY_ENABLED 0
#endif

#if LMERGE_THREAD_SAFETY_ENABLED
#define LM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define LM_THREAD_ANNOTATION__(x)  // no-op
#endif

// --- Capability (mutex) declarations ---

// Marks a class as a capability ("mutex" names it in diagnostics).
#define LM_CAPABILITY(x) LM_THREAD_ANNOTATION__(capability(x))

// Marks an RAII class whose lifetime acquires/releases a capability.
#define LM_SCOPED_CAPABILITY LM_THREAD_ANNOTATION__(scoped_lockable)

// --- Data annotations ---

// Member access requires holding capability `x`.
#define LM_GUARDED_BY(x) LM_THREAD_ANNOTATION__(guarded_by(x))

// Dereferencing this pointer member requires holding capability `x` (the
// pointer itself may be read freely).
#define LM_PT_GUARDED_BY(x) LM_THREAD_ANNOTATION__(pt_guarded_by(x))

// --- Lock-ordering annotations (checked with -Wthread-safety-beta) ---

#define LM_ACQUIRED_BEFORE(...) \
  LM_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define LM_ACQUIRED_AFTER(...) \
  LM_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

// --- Function annotations ---

// Caller must hold the capability (exclusively / shared) on entry; it is
// still held on return.
#define LM_REQUIRES(...) \
  LM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define LM_REQUIRES_SHARED(...) \
  LM_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability itself.
#define LM_ACQUIRE(...) \
  LM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define LM_ACQUIRE_SHARED(...) \
  LM_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define LM_RELEASE(...) \
  LM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define LM_RELEASE_SHARED(...) \
  LM_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `b`.
#define LM_TRY_ACQUIRE(...) \
  LM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (deadlock prevention: e.g. the merge
// thread's fan-out path must never hold the server session lock).
#define LM_EXCLUDES(...) LM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Function returns a reference to the named capability.
#define LM_RETURN_CAPABILITY(x) LM_THREAD_ANNOTATION__(lock_returned(x))

// Runtime assertion that the capability is held (informs the analysis).
#define LM_ASSERT_CAPABILITY(x) \
  LM_THREAD_ANNOTATION__(assert_capability(x))

// Escape hatch: disables the analysis for one function.  Every use must
// carry a comment explaining why the discipline cannot be expressed.
#define LM_NO_THREAD_SAFETY_ANALYSIS \
  LM_THREAD_ANNOTATION__(no_thread_safety_analysis)

// --- Whole-program contracts checked by tools/analyzer/lmerge_analyze ---
//
// Clang's per-function thread-safety pass cannot see call-graph-wide
// properties; these annotations feed the project analyzer instead
// (tools/analyzer/, the `analyzer` / `analyzer_self_test` ctest entries).
// Under Clang they become `annotate` attributes the LibTooling extractor
// reads from the AST; the fallback frontend matches the macro tokens, so
// both backends see the same contract.  Under GCC they compile to nothing.

// The function mutates merge state owned by the merge thread and may only
// be reached from ConcurrentMerger::MergeLoop (directly or through a
// control op / CallOnMergeThread callee).  The analyzer proves no IO-loop,
// session, fanout, or HttpExporter entry point reaches it; legitimate
// pre-thread exceptions (checkpoint restore before the merge thread
// exists) are declared in tools/analyzer/analyzer_config.json with a
// reason.
#define LM_MERGE_THREAD_ONLY \
  LM_THREAD_ANNOTATION__(annotate("lmerge::merge_thread_only"))

// The function is on the per-element hot path (ProcessBatch, ring drains,
// the aggregator forward loop, serialize-once encode).  The analyzer
// rejects transitive heap allocation (operator new, malloc-family,
// unreserved container growth) reachable from it unless the site is in the
// machine-readable allowlist with a justification (amortized index growth,
// once-per-batch buffers).
#define LM_HOT_PATH LM_THREAD_ANNOTATION__(annotate("lmerge::hot_path"))

#endif  // LMERGE_COMMON_THREAD_ANNOTATIONS_H_
