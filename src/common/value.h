// A dynamically typed relational value: the atom of event payloads.
//
// The paper models a payload as a relational tuple p.  Value is one field of
// such a tuple; Row (row.h) is the tuple itself.

#ifndef LMERGE_COMMON_VALUE_H_
#define LMERGE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"

namespace lmerge {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

// Returns a human-readable name for `type` ("int64", "string", ...).
const char* ValueTypeName(ValueType type);

// A single typed field value.  Values are totally ordered (first by type tag,
// then by content) so that payload tuples can key ordered indexes such as the
// in2t/in3t top tier.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  // Typed accessors; LM_CHECK-fail on type mismatch.
  bool AsBool() const;
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Total order: type tag first, then content.
  int Compare(const Value& other) const;

  uint64_t Hash() const;

  // Bytes attributable to this value for operator state accounting
  // (sizeof(Value) plus string heap storage).
  int64_t DeepSizeBytes() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_VALUE_H_
