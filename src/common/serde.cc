#include "common/serde.h"

#include <cstring>

#include "common/check.h"

namespace lmerge {

void Encoder::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Encoder::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Encoder::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void Encoder::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  bytes_.append(s);
}

void Encoder::WriteValue(const Value& value) {
  WriteU8(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      WriteU8(value.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt64:
      WriteI64(value.AsInt64());
      break;
    case ValueType::kDouble:
      WriteDouble(value.AsDouble());
      break;
    case ValueType::kString:
      WriteString(value.AsString());
      break;
  }
}

void Encoder::WriteRow(const Row& row) {
  WriteU32(static_cast<uint32_t>(row.field_count()));
  for (int64_t i = 0; i < row.field_count(); ++i) WriteValue(row.field(i));
}

Status Decoder::Need(size_t n) {
  if (offset_ + n > bytes_.size()) {
    return Status::OutOfRange("decode past end of buffer");
  }
  return Status::Ok();
}

Status Decoder::ReadU8(uint8_t* v) {
  Status status = Need(1);
  if (!status.ok()) return status;
  *v = static_cast<uint8_t>(bytes_[offset_++]);
  return Status::Ok();
}

Status Decoder::ReadU32(uint32_t* v) {
  Status status = Need(4);
  if (!status.ok()) return status;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(
              bytes_[offset_++]))
          << (8 * i);
  }
  return Status::Ok();
}

Status Decoder::ReadU64(uint64_t* v) {
  Status status = Need(8);
  if (!status.ok()) return status;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(
              bytes_[offset_++]))
          << (8 * i);
  }
  return Status::Ok();
}

Status Decoder::ReadDouble(double* v) {
  uint64_t bits = 0;
  Status status = ReadU64(&bits);
  if (!status.ok()) return status;
  std::memcpy(v, &bits, sizeof(*v));
  return Status::Ok();
}

Status Decoder::ReadString(std::string* s) {
  uint32_t len = 0;
  Status status = ReadU32(&len);
  if (!status.ok()) return status;
  status = Need(len);
  if (!status.ok()) return status;
  s->assign(bytes_, offset_, len);
  offset_ += len;
  return Status::Ok();
}

Status Decoder::ReadValue(Value* value) {
  uint8_t tag = 0;
  Status status = ReadU8(&tag);
  if (!status.ok()) return status;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *value = Value::Null();
      return Status::Ok();
    case ValueType::kBool: {
      uint8_t b = 0;
      status = ReadU8(&b);
      if (!status.ok()) return status;
      *value = Value(b != 0);
      return Status::Ok();
    }
    case ValueType::kInt64: {
      int64_t v = 0;
      status = ReadI64(&v);
      if (!status.ok()) return status;
      *value = Value(v);
      return Status::Ok();
    }
    case ValueType::kDouble: {
      double v = 0;
      status = ReadDouble(&v);
      if (!status.ok()) return status;
      *value = Value(v);
      return Status::Ok();
    }
    case ValueType::kString: {
      std::string s;
      status = ReadString(&s);
      if (!status.ok()) return status;
      *value = Value(std::move(s));
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown value tag " + std::to_string(tag));
}

void Encoder::WriteRowRef(const Row& row) {
  if (row_pool_ == nullptr) {
    WriteRow(row);
    return;
  }
  if (row.identity() == nullptr) {
    WriteU32(kInlineRowRef);
    WriteRow(row);
    return;
  }
  WriteU32(row_pool_->Intern(row));
}

Status Decoder::ReadRowRef(Row* row) {
  if (row_pool_ == nullptr) return ReadRow(row);
  uint32_t id = 0;
  Status status = ReadU32(&id);
  if (!status.ok()) return status;
  if (id == kInlineRowRef) return ReadRow(row);
  return row_pool_->Resolve(id, row);
}

uint32_t RowPoolEncoder::Intern(const Row& row) {
  LM_DCHECK(row.identity() != nullptr);
  const auto [id, inserted] =
      ids_.Insert(row.identity(), static_cast<uint32_t>(rows_.size()));
  if (inserted) rows_.push_back(row);
  return *id;
}

void RowPoolEncoder::EncodeTo(Encoder* encoder) const {
  encoder->WriteU32(static_cast<uint32_t>(rows_.size()));
  for (const Row& row : rows_) encoder->WriteRow(row);
}

Status RowPoolDecoder::DecodeFrom(Decoder* decoder) {
  uint32_t count = 0;
  Status status = decoder->ReadU32(&count);
  if (!status.ok()) return status;
  // Each pooled row takes at least its 4-byte field count; reject counts
  // the buffer cannot hold (hostile-input bound).
  if (count > decoder->remaining() / 4 + 1) {
    return Status::InvalidArgument("row pool count exceeds buffer");
  }
  rows_.clear();
  rows_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Row row;
    status = decoder->ReadRow(&row);
    if (!status.ok()) return status;
    rows_.push_back(std::move(row));
  }
  return Status::Ok();
}

Status RowPoolDecoder::Resolve(uint32_t id, Row* row) const {
  if (id >= rows_.size()) {
    return Status::InvalidArgument("row pool reference " + std::to_string(id) +
                                   " out of range");
  }
  *row = rows_[id];
  return Status::Ok();
}

Status Decoder::ReadRow(Row* row) {
  uint32_t count = 0;
  Status status = ReadU32(&count);
  if (!status.ok()) return status;
  if (count > remaining()) {  // each field takes at least one byte
    return Status::InvalidArgument("row field count exceeds buffer");
  }
  std::vector<Value> fields;
  fields.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Value value;
    status = ReadValue(&value);
    if (!status.ok()) return status;
    fields.push_back(std::move(value));
  }
  *row = Row(std::move(fields));
  return Status::Ok();
}

}  // namespace lmerge
