#include "common/checkpoint.h"

#include "common/check.h"

namespace lmerge {

namespace {

// Reads and validates the magic + version prefix shared by all formats.
Status ReadHeader(Decoder* decoder, uint32_t* version) {
  uint32_t magic = 0;
  Status status = decoder->ReadU32(&magic);
  if (!status.ok()) return status;
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a checkpoint (bad magic)");
  }
  status = decoder->ReadU32(version);
  if (!status.ok()) return status;
  if (*version != kCheckpointVersionV1 && *version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(*version));
  }
  return Status::Ok();
}

// Reads the v2 sections following the header.  Any output may be null when
// the caller does not need it.
Status ReadV2Sections(Decoder* decoder, uint8_t* flags_out,
                      std::string* cut_certificate, std::string* pool_section,
                      std::string* body) {
  uint8_t flags = 0;
  Status status = decoder->ReadU8(&flags);
  if (!status.ok()) return status;
  if ((flags & ~kCheckpointFlagCutCertificate) != 0) {
    return Status::InvalidArgument("unknown checkpoint flags " +
                                   std::to_string(flags));
  }
  if (flags_out != nullptr) *flags_out = flags;
  std::string cut;
  if ((flags & kCheckpointFlagCutCertificate) != 0) {
    if (!(status = decoder->ReadString(&cut)).ok()) return status;
  }
  if (cut_certificate != nullptr) *cut_certificate = std::move(cut);
  std::string pool;
  if (!(status = decoder->ReadString(&pool)).ok()) return status;
  if (pool_section != nullptr) *pool_section = std::move(pool);
  std::string state;
  if (!(status = decoder->ReadString(&state)).ok()) return status;
  if (body != nullptr) *body = std::move(state);
  if (!decoder->AtEnd()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }
  return Status::Ok();
}

}  // namespace

std::string SaveCheckpoint(const Checkpointable& target, uint32_t version,
                           const std::string& cut_certificate) {
  LM_CHECK(version == kCheckpointVersionV1 || version == kCheckpointVersion);
  if (version == kCheckpointVersionV1) {
    LM_CHECK(cut_certificate.empty());
    Encoder encoder;
    encoder.WriteU32(kCheckpointMagic);
    encoder.WriteU32(kCheckpointVersionV1);
    target.SaveState(&encoder);
    return encoder.TakeBytes();
  }
  // Two-phase encode: the body first (interning payloads into the pool as
  // WriteRowRef encounters them), then the assembled blob with the pool
  // section ahead of the body so restore can resolve references in one pass.
  RowPoolEncoder pool;
  Encoder body;
  body.set_row_pool(&pool);
  target.SaveState(&body);
  Encoder pool_section;
  pool.EncodeTo(&pool_section);

  Encoder out;
  out.Reserve(body.bytes().size() + pool_section.bytes().size() + 32);
  out.WriteU32(kCheckpointMagic);
  out.WriteU32(kCheckpointVersion);
  const uint8_t flags =
      cut_certificate.empty() ? 0 : kCheckpointFlagCutCertificate;
  out.WriteU8(flags);
  if (!cut_certificate.empty()) out.WriteString(cut_certificate);
  out.WriteString(pool_section.bytes());
  out.WriteString(body.bytes());
  return out.TakeBytes();
}

Status LoadCheckpoint(const std::string& bytes, Checkpointable* target,
                      std::string* cut_certificate) {
  if (cut_certificate != nullptr) cut_certificate->clear();
  Decoder decoder(bytes);
  uint32_t version = 0;
  Status status = ReadHeader(&decoder, &version);
  if (!status.ok()) return status;

  if (version == kCheckpointVersionV1) {
    status = target->RestoreState(&decoder);
    if (!status.ok()) return status;
    if (!decoder.AtEnd()) {
      return Status::InvalidArgument("trailing bytes after checkpoint");
    }
    return Status::Ok();
  }

  std::string pool_section;
  std::string body;
  status = ReadV2Sections(&decoder, nullptr, cut_certificate, &pool_section,
                          &body);
  if (!status.ok()) return status;

  RowPoolDecoder pool;
  {
    Decoder pool_decoder(pool_section);
    status = pool.DecodeFrom(&pool_decoder);
    if (!status.ok()) return status;
    if (!pool_decoder.AtEnd()) {
      return Status::InvalidArgument("trailing bytes after row pool");
    }
  }
  Decoder body_decoder(body);
  body_decoder.set_row_pool(&pool);
  status = target->RestoreState(&body_decoder);
  if (!status.ok()) return status;
  if (!body_decoder.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }
  return Status::Ok();
}

Status InspectCheckpoint(const std::string& bytes, CheckpointInfo* info) {
  *info = CheckpointInfo();
  info->total_bytes = bytes.size();
  Decoder decoder(bytes);
  Status status = ReadHeader(&decoder, &info->version);
  if (!status.ok()) return status;

  if (info->version == kCheckpointVersionV1) {
    info->body_bytes = decoder.remaining();
    return Status::Ok();
  }

  std::string cut;
  std::string pool_section;
  std::string body;
  status = ReadV2Sections(&decoder, &info->flags, &cut, &pool_section, &body);
  if (!status.ok()) return status;
  info->cut_certificate_bytes = cut.size();
  info->cut_certificate = std::move(cut);
  info->pool_bytes = pool_section.size();
  info->body_bytes = body.size();

  Decoder pool_decoder(pool_section);
  status = pool_decoder.ReadU32(&info->pool_entries);
  if (!status.ok()) return status;
  return Status::Ok();
}

bool IsPartitionedCheckpoint(const std::string& bytes) {
  Decoder decoder(bytes);
  uint32_t magic = 0;
  return decoder.ReadU32(&magic).ok() && magic == kPartitionedCheckpointMagic;
}

std::string CombinePartitionedCheckpoint(
    const std::vector<std::string>& shard_blobs) {
  LM_CHECK(!shard_blobs.empty());
  size_t total = 16;
  for (const std::string& blob : shard_blobs) total += blob.size() + 8;
  Encoder out;
  out.Reserve(total);
  out.WriteU32(kPartitionedCheckpointMagic);
  out.WriteU32(kPartitionedCheckpointVersion);
  out.WriteU32(static_cast<uint32_t>(shard_blobs.size()));
  for (const std::string& blob : shard_blobs) out.WriteString(blob);
  return out.TakeBytes();
}

Status SplitPartitionedCheckpoint(const std::string& bytes,
                                  std::vector<std::string>* shard_blobs) {
  shard_blobs->clear();
  Decoder decoder(bytes);
  uint32_t magic = 0;
  Status status = decoder.ReadU32(&magic);
  if (!status.ok()) return status;
  if (magic != kPartitionedCheckpointMagic) {
    return Status::InvalidArgument(
        "not a partitioned checkpoint (bad magic)");
  }
  uint32_t version = 0;
  if (!(status = decoder.ReadU32(&version)).ok()) return status;
  if (version != kPartitionedCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported partitioned checkpoint version " +
        std::to_string(version));
  }
  uint32_t shard_count = 0;
  if (!(status = decoder.ReadU32(&shard_count)).ok()) return status;
  if (shard_count == 0 || shard_count > decoder.remaining() + 1) {
    return Status::InvalidArgument("partitioned shard count invalid");
  }
  shard_blobs->reserve(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    std::string blob;
    if (!(status = decoder.ReadString(&blob)).ok()) return status;
    shard_blobs->push_back(std::move(blob));
  }
  if (!decoder.AtEnd()) {
    return Status::InvalidArgument(
        "trailing bytes after partitioned checkpoint");
  }
  return Status::Ok();
}

}  // namespace lmerge
