// Hashing primitives shared by payload hashing and the open-addressing hash
// table in src/container.

#ifndef LMERGE_COMMON_HASH_H_
#define LMERGE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lmerge {

// Finalization mix from MurmurHash3; turns a weakly mixed 64-bit value into a
// well distributed one.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Combines an accumulated hash with the hash of another component.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

// FNV-1a over raw bytes; used for string payload fields.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

// Identity (pointer-equality) hash for interned rep pointers; shared by the
// payload ledger, the wire payload dictionary, and the checkpoint row pool.
struct PointerIdentityHash {
  uint64_t operator()(const void* p) const {
    return Mix64(reinterpret_cast<uint64_t>(p));
  }
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_HASH_H_
