// Lightweight assertion macros used throughout the library.
//
// The library does not use C++ exceptions (errors that callers are expected
// to handle are reported through lmerge::Status).  LM_CHECK is for invariant
// violations and programming errors: it logs the failing condition with its
// source location and aborts.  LM_DCHECK compiles away in NDEBUG builds and
// is used on hot paths (e.g., per-element index maintenance).

#ifndef LMERGE_COMMON_CHECK_H_
#define LMERGE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace lmerge::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "LM_CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::fflush(stderr);
  std::abort();
}

}  // namespace lmerge::internal_check

// Aborts the process when `condition` evaluates to false.
#define LM_CHECK(condition)                                              \
  do {                                                                   \
    if (!(condition)) {                                                  \
      ::lmerge::internal_check::CheckFailed(__FILE__, __LINE__,          \
                                            #condition);                 \
    }                                                                    \
  } while (false)

// Like LM_CHECK, with a printf-style message appended to the diagnostics.
#define LM_CHECK_MSG(condition, ...)                                     \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "LM_CHECK message: " __VA_ARGS__);            \
      std::fprintf(stderr, "\n");                                        \
      ::lmerge::internal_check::CheckFailed(__FILE__, __LINE__,          \
                                            #condition);                 \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define LM_DCHECK(condition) \
  do {                       \
  } while (false)
#else
#define LM_DCHECK(condition) LM_CHECK(condition)
#endif

#endif  // LMERGE_COMMON_CHECK_H_
