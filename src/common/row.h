// Row: an event payload — a relational tuple of Values.
//
// Rows are value types: copyable, totally ordered, hashable.  The LMerge
// algorithms key their indexes on (Vs, payload), so cheap comparison and
// hashing of Rows is on the hot path; the precomputed hash is cached.

#ifndef LMERGE_COMMON_ROW_H_
#define LMERGE_COMMON_ROW_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/value.h"

namespace lmerge {

class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> fields) : fields_(std::move(fields)) {
    RecomputeHash();
  }
  Row(std::initializer_list<Value> fields)
      : fields_(fields) {
    RecomputeHash();
  }

  // Convenience factories for common payload shapes.
  static Row OfInt(int64_t v) { return Row({Value(v)}); }
  static Row OfString(std::string v) { return Row({Value(std::move(v))}); }
  // The paper's generated payloads: an integer in [0,400] plus a string blob.
  static Row OfIntAndString(int64_t v, std::string s) {
    return Row({Value(v), Value(std::move(s))});
  }

  int64_t field_count() const { return static_cast<int64_t>(fields_.size()); }
  const Value& field(int64_t i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Value>& fields() const { return fields_; }

  // Returns a new row with `value` replacing field `i`.
  Row WithField(int64_t i, Value value) const;

  uint64_t hash() const { return hash_; }

  int Compare(const Row& other) const;

  // Bytes attributable to this row for operator state accounting.
  int64_t DeepSizeBytes() const;

  std::string ToString() const;

  friend bool operator==(const Row& a, const Row& b) {
    return a.hash_ == b.hash_ && a.Compare(b) == 0;
  }
  friend bool operator!=(const Row& a, const Row& b) { return !(a == b); }
  friend bool operator<(const Row& a, const Row& b) {
    return a.Compare(b) < 0;
  }

 private:
  void RecomputeHash();

  std::vector<Value> fields_;
  uint64_t hash_ = 0;
};

struct RowHash {
  uint64_t operator()(const Row& row) const { return row.hash(); }
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_ROW_H_
