// Row: an event payload — a relational tuple of Values.
//
// A Row is a pointer-sized handle onto an immutable, ref-counted payload
// representation interned in the process-wide PayloadStore.  Copying a Row
// copies a pointer and bumps an atomic count — never the fields — so the
// same allocation flows from wire decode through the SPSC rings, the
// in2t/in3t indexes, and subscriber fan-out.  Two interned rows with equal
// content share one rep, which gives Compare/operator== an O(1)
// compare-by-identity fast path (falling back to deep field comparison for
// private copies or cross-store handles).
//
// The LMerge algorithms key their indexes on (Vs, payload), so cheap
// comparison and hashing of Rows is on the hot path; the hash is computed
// once at intern time and cached in the rep.

#ifndef LMERGE_COMMON_ROW_H_
#define LMERGE_COMMON_ROW_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/payload_store.h"
#include "common/value.h"

namespace lmerge {

class Row {
 public:
  // The empty row is the null handle: no allocation, no refcount traffic
  // (important — default-constructed payloads travel inside every stable()
  // element, and a shared empty rep would be a contended cache line).
  Row() = default;
  explicit Row(std::vector<Value> fields);
  Row(std::initializer_list<Value> fields)
      : Row(std::vector<Value>(fields)) {}

  Row(const Row& other) : rep_(other.rep_) { PayloadStore::AddRef(rep_); }
  Row(Row&& other) noexcept : rep_(std::exchange(other.rep_, nullptr)) {}
  Row& operator=(const Row& other) {
    if (rep_ != other.rep_) {
      PayloadStore::AddRef(other.rep_);
      PayloadStore::Release(rep_);
      rep_ = other.rep_;
    }
    return *this;
  }
  Row& operator=(Row&& other) noexcept {
    if (this != &other) {
      PayloadStore::Release(rep_);
      rep_ = std::exchange(other.rep_, nullptr);
    }
    return *this;
  }
  ~Row() { PayloadStore::Release(rep_); }

  // Convenience factories for common payload shapes.
  static Row OfInt(int64_t v) { return Row({Value(v)}); }
  static Row OfString(std::string v) { return Row({Value(std::move(v))}); }
  // The paper's generated payloads: an integer in [0,400] plus a string blob.
  static Row OfIntAndString(int64_t v, std::string s) {
    return Row({Value(v), Value(std::move(s))});
  }

  int64_t field_count() const {
    return rep_ == nullptr ? 0 : static_cast<int64_t>(rep_->fields.size());
  }
  const Value& field(int64_t i) const {
    return fields()[static_cast<size_t>(i)];
  }
  const std::vector<Value>& fields() const {
    static const std::vector<Value> kEmpty;
    return rep_ == nullptr ? kEmpty : rep_->fields;
  }

  // Returns a new row with `value` replacing field `i`.
  Row WithField(int64_t i, Value value) const;

  uint64_t hash() const { return rep_ == nullptr ? kEmptyHash : rep_->hash; }

  // The shared rep this handle points at.  Two handles with the same
  // identity are equal; accounting code uses identity to charge a shared
  // payload's bytes once per store entry instead of once per reference.
  const void* identity() const { return rep_; }
  // True when the rep lives in a PayloadStore (equal content is guaranteed
  // to share); false for the empty row and for private deep copies.
  bool interned() const { return rep_ != nullptr && rep_->store != nullptr; }

  // A private, non-interned copy of this row's content: equal by value but
  // sharing no storage with any other handle.  The LMR3- baseline uses
  // this so its per-input indexes really duplicate payloads the way the
  // paper's memory comparison assumes.
  Row DeepCopy() const;

  int Compare(const Row& other) const {
    if (rep_ == other.rep_) return 0;  // identity fast path
    return CompareSlow(other);
  }

  // Bytes attributable to this row when charged in full: the handle plus
  // the shared rep (header, field slots, string heap storage).
  int64_t DeepSizeBytes() const {
    return static_cast<int64_t>(sizeof(Row)) + SharedSizeBytes();
  }
  // Bytes of the shared rep alone — what a PayloadStore entry holds once no
  // matter how many handles reference it.
  int64_t SharedSizeBytes() const {
    return rep_ == nullptr ? 0 : rep_->deep_bytes;
  }

  std::string ToString() const;

  friend bool operator==(const Row& a, const Row& b) {
    if (a.rep_ == b.rep_) return true;  // identity fast path
    return a.hash() == b.hash() && a.CompareSlow(b) == 0;
  }
  friend bool operator!=(const Row& a, const Row& b) { return !(a == b); }
  friend bool operator<(const Row& a, const Row& b) {
    return a.Compare(b) < 0;
  }

 private:
  // Hash of the empty field tuple; matches the intern-time hash seed so
  // hashing is consistent across empty and non-empty rows.
  static constexpr uint64_t kEmptyHash = 0x51ed270b9f1c2b5dULL;

  explicit Row(RowRep* adopted) : rep_(adopted) {}

  int CompareSlow(const Row& other) const;

  static uint64_t HashFields(const std::vector<Value>& fields);

  RowRep* rep_ = nullptr;
};

struct RowHash {
  uint64_t operator()(const Row& row) const { return row.hash(); }
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_ROW_H_
