// Binary serialization of the library's value types.
//
// Used by the checkpoint facility (engine/checkpoint.h) that backs the
// query-jumpstart application (Sec. II-4: "seed query state using checkpoint
// information stored on disk"), and usable as a wire format for shipping
// stream elements between processes.
//
// Format: little-endian, length-prefixed, no alignment.  Integers are
// varint-free fixed width (simplicity over compactness).  Every Decode
// validates bounds and returns a Status instead of crashing on corrupt
// input.

#ifndef LMERGE_COMMON_SERDE_H_
#define LMERGE_COMMON_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "common/value.h"

namespace lmerge {

// An append-only byte buffer with typed writers.
class Encoder {
 public:
  // Pre-size for `n` more bytes of writes (an estimate is fine; the buffer
  // still grows as needed).
  void Reserve(size_t n) { bytes_.reserve(bytes_.size() + n); }

  void WriteU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);
  void WriteString(const std::string& s);

  void WriteValue(const Value& value);
  void WriteRow(const Row& row);

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

// A bounds-checked reader over a byte span.
class Decoder {
 public:
  explicit Decoder(const std::string& bytes) : bytes_(bytes) {}
  // The decoder only borrows the buffer; a temporary would dangle.
  explicit Decoder(std::string&&) = delete;

  Status ReadU8(uint8_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadI64(int64_t* v) {
    return ReadU64(reinterpret_cast<uint64_t*>(v));
  }
  Status ReadDouble(double* v);
  Status ReadString(std::string* s);

  Status ReadValue(Value* value);
  Status ReadRow(Row* row);

  bool AtEnd() const { return offset_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  Status Need(size_t n);

  const std::string& bytes_;
  size_t offset_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_SERDE_H_
