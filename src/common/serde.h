// Binary serialization of the library's value types.
//
// Used by the checkpoint facility (engine/checkpoint.h) that backs the
// query-jumpstart application (Sec. II-4: "seed query state using checkpoint
// information stored on disk"), and usable as a wire format for shipping
// stream elements between processes.
//
// Format: little-endian, length-prefixed, no alignment.  Integers are
// varint-free fixed width (simplicity over compactness).  Every Decode
// validates bounds and returns a Status instead of crashing on corrupt
// input.

#ifndef LMERGE_COMMON_SERDE_H_
#define LMERGE_COMMON_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/row.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "common/value.h"
#include "container/hash_table.h"

namespace lmerge {

class RowPoolEncoder;
class RowPoolDecoder;

// Sentinel id on the wire for a row written inline after the reference
// (rows without a rep identity — the empty row — cannot be pooled).
inline constexpr uint32_t kInlineRowRef = 0xffffffffu;

// An append-only byte buffer with typed writers.
class Encoder {
 public:
  // Pre-size for `n` more bytes of writes (an estimate is fine; the buffer
  // still grows as needed).
  void Reserve(size_t n) { bytes_.reserve(bytes_.size() + n); }

  void WriteU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);
  void WriteString(const std::string& s);

  void WriteValue(const Value& value);
  void WriteRow(const Row& row);

  // Pooled row references (checkpoint format v2): with a pool attached,
  // WriteRowRef emits a u32 — the row's pool id, or kInlineRowRef followed
  // by the row inline when it has no rep identity.  Each distinct rep is
  // then serialized exactly once, in the pool section, no matter how many
  // index entries reference it.  Without a pool it degrades to WriteRow,
  // so the same SaveState code produces the v1 encoding unchanged.
  void set_row_pool(RowPoolEncoder* pool) { row_pool_ = pool; }
  void WriteRowRef(const Row& row);

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
  RowPoolEncoder* row_pool_ = nullptr;
};

// A bounds-checked reader over a byte span.
class Decoder {
 public:
  explicit Decoder(const std::string& bytes) : bytes_(bytes) {}
  // The decoder only borrows the buffer; a temporary would dangle.
  explicit Decoder(std::string&&) = delete;

  Status ReadU8(uint8_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadI64(int64_t* v) {
    return ReadU64(reinterpret_cast<uint64_t*>(v));
  }
  Status ReadDouble(double* v);
  Status ReadString(std::string* s);

  Status ReadValue(Value* value);
  Status ReadRow(Row* row);

  // Counterpart of Encoder::WriteRowRef.  With a pool attached, resolves
  // u32 references against it (kInlineRowRef reads the row inline); without
  // one it degrades to ReadRow, matching the poolless encoding.
  void set_row_pool(const RowPoolDecoder* pool) { row_pool_ = pool; }
  Status ReadRowRef(Row* row);

  bool AtEnd() const { return offset_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  Status Need(size_t n);

  const std::string& bytes_;
  size_t offset_ = 0;
  const RowPoolDecoder* row_pool_ = nullptr;
};

// Deduplicating row pool for WriteRowRef.  Intern() keys on the rep
// identity (pointer equality, like the payload ledger) and holds a Row
// handle per entry so reps stay alive until the pool is encoded.
class RowPoolEncoder {
 public:
  // Returns the pool id for `row`, interning it on first sight.  The row
  // must have a rep identity (callers route identity-less rows inline).
  uint32_t Intern(const Row& row);

  int64_t entries() const { return static_cast<int64_t>(rows_.size()); }

  // The pool section: u32 entry count, then each row inline in id order.
  void EncodeTo(Encoder* encoder) const;

 private:
  HashTable<const void*, uint32_t, PointerIdentityHash> ids_;
  std::vector<Row> rows_;
};

class RowPoolDecoder {
 public:
  // Parses a pool section as written by RowPoolEncoder::EncodeTo.
  Status DecodeFrom(Decoder* decoder);

  // Resolves a pool id from a row reference; fails on out-of-range ids.
  Status Resolve(uint32_t id, Row* row) const;

  int64_t entries() const { return static_cast<int64_t>(rows_.size()); }

 private:
  std::vector<Row> rows_;
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_SERDE_H_
