// Error reporting without exceptions.
//
// Functions whose failure a caller is expected to handle (stream validation,
// attach/detach protocol violations, malformed element sequences) return a
// Status.  Invariant violations use LM_CHECK instead.

#ifndef LMERGE_COMMON_STATUS_H_
#define LMERGE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace lmerge {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInternal,
};

// A success-or-error result; cheap to copy on the success path.
//
// [[nodiscard]]: every producer of a Status (decoders, transports, delivery
// paths) reports failures the caller must either handle or *visibly* waive.
// Silently dropping one hides exactly the errors the merge-correctness story
// depends on surfacing (a lost FEEDBACK push, a fire-and-forget Send).  The
// build treats discards as errors (-Werror=unused-result); waive with a
// `(void)` cast plus a comment saying why best-effort is correct there.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + std::string(": ") + message_;
  }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "INVALID_ARGUMENT";
      case StatusCode::kFailedPrecondition:
        return "FAILED_PRECONDITION";
      case StatusCode::kNotFound:
        return "NOT_FOUND";
      case StatusCode::kAlreadyExists:
        return "ALREADY_EXISTS";
      case StatusCode::kOutOfRange:
        return "OUT_OF_RANGE";
      case StatusCode::kInternal:
        return "INTERNAL";
    }
    return "UNKNOWN";
  }

  StatusCode code_;
  std::string message_;
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_STATUS_H_
