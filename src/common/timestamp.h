// Application-time timestamps.
//
// Following the interval-based temporal model of Sec. III of the paper, every
// event carries a validity interval [Vs, Ve) in application time.  Ve may be
// +infinity (kInfinity).  Timestamps are 64-bit signed "ticks"; the library
// does not interpret their unit (benchmarks use microseconds).

#ifndef LMERGE_COMMON_TIMESTAMP_H_
#define LMERGE_COMMON_TIMESTAMP_H_

#include <cstdint>
#include <limits>
#include <string>

namespace lmerge {

using Timestamp = int64_t;

// The +infinity validity end time: an event that has started but whose end is
// not yet known (e.g., a still-running OS process in the paper's data-center
// example).
inline constexpr Timestamp kInfinity = std::numeric_limits<int64_t>::max();

// The minimum timestamp; used as the initial value of watermarks such as
// MaxStable and MaxVs ("-infinity" in the paper's pseudocode).
inline constexpr Timestamp kMinTimestamp = std::numeric_limits<int64_t>::min();

// Renders `t` for diagnostics ("inf" / "-inf" for the sentinels).
inline std::string TimestampToString(Timestamp t) {
  if (t == kInfinity) return "inf";
  if (t == kMinTimestamp) return "-inf";
  return std::to_string(t);
}

}  // namespace lmerge

#endif  // LMERGE_COMMON_TIMESTAMP_H_
