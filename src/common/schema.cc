#include "common/schema.h"

namespace lmerge {

int64_t Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int64_t>(i);
  }
  return -1;
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.field_count() != column_count()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.field_count()) +
        " does not match schema arity " + std::to_string(column_count()));
  }
  for (int64_t i = 0; i < column_count(); ++i) {
    const Value& v = row.field(i);
    if (!v.is_null() && v.type() != column(i).type) {
      return Status::InvalidArgument(
          "column '" + column(i).name + "' expects " +
          ValueTypeName(column(i).type) + " but row has " +
          ValueTypeName(v.type()));
    }
  }
  return Status::Ok();
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

bool Schema::Equals(const Schema& other) const {
  if (column_count() != other.column_count()) return false;
  for (int64_t i = 0; i < column_count(); ++i) {
    if (column(i).name != other.column(i).name ||
        column(i).type != other.column(i).type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  out += "]";
  return out;
}

}  // namespace lmerge
