// SharedPayloadLedger: identity-based byte accounting for index structures
// holding interned Row handles.
//
// With payloads interned (common/payload_store.h), many index nodes may
// reference one shared rep.  Charging every node the payload's deep size
// would double-count: the process holds those bytes once per store entry,
// not once per referencing node.  The ledger tracks, per distinct rep
// identity, how many nodes of ONE data structure reference it, and charges
// the rep's bytes exactly once — on the first reference — releasing them on
// the last.  (The LMR3- baseline bypasses the ledger entirely: its indexes
// hold private deep copies, so per-copy accounting stays honest.)

#ifndef LMERGE_COMMON_PAYLOAD_LEDGER_H_
#define LMERGE_COMMON_PAYLOAD_LEDGER_H_

#include <cstdint>

#include "common/check.h"
#include "common/hash.h"
#include "common/row.h"
#include "container/hash_table.h"

namespace lmerge {

// Historical name; the functor itself lives in common/hash.h so serde's
// checkpoint row pool can share it without depending on the ledger.
using PayloadIdentityHash = PointerIdentityHash;

class SharedPayloadLedger {
 public:
  // Registers one reference to `payload`; returns the bytes newly charged
  // (the rep's shared size on the first reference, 0 on repeats).
  int64_t AddRef(const Row& payload) {
    if (payload.identity() == nullptr) return 0;  // empty row holds nothing
    return AddRefIdentity(payload.identity(), payload.SharedSizeBytes());
  }

  // Low-level form of AddRef for callers that already hold the rep identity
  // and its shared byte size (the payload-stats report in tools/cli.cc and
  // the obs payload exporter both account through this single path, so
  // "bytes saved" can never diverge between them).
  int64_t AddRefIdentity(const void* identity, int64_t shared_bytes) {
    LM_DCHECK(identity != nullptr);
    auto [entry, inserted] = refs_.Insert(identity, Entry{});
    if (entry->count++ == 0) {
      entry->bytes = shared_bytes;
      bytes_ += entry->bytes;
      return entry->bytes;
    }
    return 0;
  }

  // Drops one reference; returns the bytes released (the rep's shared size
  // when this was the last reference, 0 otherwise).
  int64_t Release(const Row& payload) {
    if (payload.identity() == nullptr) return 0;
    Entry* entry = refs_.Find(payload.identity());
    LM_DCHECK(entry != nullptr && entry->count > 0);
    if (--entry->count > 0) return 0;
    const int64_t released = entry->bytes;
    bytes_ -= released;
    refs_.Erase(payload.identity());
    return released;
  }

  // Bytes currently charged: each referenced rep counted once.
  int64_t bytes() const { return bytes_; }
  // Distinct reps currently referenced.
  int64_t distinct() const { return refs_.size(); }
  // Heap bytes of the ledger's own bookkeeping table.  Zero while empty so
  // an emptied index reports no residual state (matching the tree and the
  // per-node tables, whose bytes are charged only for live nodes).
  int64_t OverheadBytes() const {
    return refs_.size() == 0 ? 0 : refs_.SlotBytes();
  }

 private:
  struct Entry {
    int64_t count = 0;
    int64_t bytes = 0;
  };

  HashTable<const void*, Entry, PayloadIdentityHash> refs_;
  int64_t bytes_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_PAYLOAD_LEDGER_H_
