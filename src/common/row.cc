#include "common/row.h"

#include "common/check.h"
#include "common/hash.h"

namespace lmerge {

uint64_t Row::HashFields(const std::vector<Value>& fields) {
  uint64_t h = kEmptyHash;
  for (const Value& v : fields) h = HashCombine(h, v.Hash());
  return h;
}

Row::Row(std::vector<Value> fields) {
  if (fields.empty()) return;  // empty row = null handle
  const uint64_t hash = HashFields(fields);
  rep_ = PayloadStore::Global().Intern(std::move(fields), hash);
}

Row Row::WithField(int64_t i, Value value) const {
  LM_CHECK(i >= 0 && i < field_count());
  std::vector<Value> fields = this->fields();
  fields[static_cast<size_t>(i)] = std::move(value);
  return Row(std::move(fields));
}

Row Row::DeepCopy() const {
  if (rep_ == nullptr) return Row();
  return Row(PayloadStore::MakePrivate(rep_->fields, rep_->hash));
}

int Row::CompareSlow(const Row& other) const {
  const std::vector<Value>& a = fields();
  const std::vector<Value>& b = other.fields();
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

std::string Row::ToString() const {
  std::string out = "(";
  const std::vector<Value>& fs = fields();
  for (size_t i = 0; i < fs.size(); ++i) {
    if (i > 0) out += ", ";
    out += fs[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace lmerge
