#include "common/row.h"

#include "common/check.h"
#include "common/hash.h"

namespace lmerge {

Row Row::WithField(int64_t i, Value value) const {
  LM_CHECK(i >= 0 && i < field_count());
  std::vector<Value> fields = fields_;
  fields[static_cast<size_t>(i)] = std::move(value);
  return Row(std::move(fields));
}

int Row::Compare(const Row& other) const {
  const size_t n = fields_.size() < other.fields_.size()
                       ? fields_.size()
                       : other.fields_.size();
  for (size_t i = 0; i < n; ++i) {
    const int c = fields_[i].Compare(other.fields_[i]);
    if (c != 0) return c;
  }
  if (fields_.size() == other.fields_.size()) return 0;
  return fields_.size() < other.fields_.size() ? -1 : 1;
}

int64_t Row::DeepSizeBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(Row));
  for (const Value& v : fields_) bytes += v.DeepSizeBytes();
  return bytes;
}

std::string Row::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].ToString();
  }
  out += ")";
  return out;
}

void Row::RecomputeHash() {
  uint64_t h = 0x51ed270b9f1c2b5dULL;
  for (const Value& v : fields_) h = HashCombine(h, v.Hash());
  hash_ = h;
}

}  // namespace lmerge
