// PayloadStore: the process-wide interning arena behind Row handles.
//
// The paper's central memory argument (Sec. IV, Fig. 8) is that the R3/R4
// indexes store each payload once across all inputs while the LMR3- baseline
// duplicates it per input.  PayloadStore extends that idea to the whole
// process: every payload is an immutable, ref-counted RowRep owned by a
// sharded intern table, and a Row is just a pointer-sized handle.  Decoding
// the same payload from N redundant publishers, enqueueing it into N rings,
// indexing it, and fanning it out to M subscribers all reference one
// allocation instead of materializing O(inputs x layers) deep copies.
//
// Concurrency: interning and eviction are guarded by per-shard mutexes
// (shard chosen by payload hash; compile-time enforced via LM_GUARDED_BY,
// see common/thread_annotations.h); reference counts are atomics, so handle
// copies between the session threads, the merge thread, and the fan-out
// path never take a lock.  The last release of an interned rep evicts it
// from its shard.  A rep can also live *outside* the store (store == null):
// that is a private deep copy, used by the LMR3- baseline to keep the
// paper's per-input duplication honest (see Row::DeepCopy).
//
// Tuning: shard count is fixed at construction (default 16, power of two).
// More shards reduce intern contention with many publisher threads; the
// per-shard maps grow on demand and shrink as payloads are evicted.

#ifndef LMERGE_COMMON_PAYLOAD_STORE_H_
#define LMERGE_COMMON_PAYLOAD_STORE_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/value.h"

namespace lmerge {

class PayloadStore;

// One immutable payload: the fields, their precomputed hash, and the
// reference count.  Never mutated after construction (only `refs` moves),
// so concurrent readers need no synchronization.
struct RowRep {
  std::vector<Value> fields;
  uint64_t hash = 0;
  // Heap bytes attributable to this rep (sizeof(RowRep) + field storage);
  // precomputed so accounting paths never walk the fields.
  int64_t deep_bytes = 0;
  // Owning store, or null for a private (non-interned) deep copy.
  PayloadStore* store = nullptr;
  std::atomic<int64_t> refs{1};
};

class PayloadStore {
 public:
  struct Options {
    // Number of intern shards; rounded up to a power of two.
    int shard_count = 16;
  };

  // Snapshot of the store's contents and lifetime counters.
  struct Stats {
    int64_t entries = 0;        // live interned payloads
    int64_t live_refs = 0;      // sum of live entries' reference counts
    int64_t payload_bytes = 0;  // deep bytes held, once per entry
    int64_t intern_calls = 0;   // lifetime Intern() calls
    int64_t hits = 0;           // calls resolved to an existing entry
    int64_t bytes_saved = 0;    // cumulative deep bytes avoided via hits
    int shard_count = 0;

    double DedupRatio() const {
      return intern_calls == 0
                 ? 1.0
                 : static_cast<double>(intern_calls) /
                       static_cast<double>(intern_calls - hits == 0
                                               ? 1
                                               : intern_calls - hits);
    }
  };

  PayloadStore() : PayloadStore(Options{}) {}
  explicit PayloadStore(Options options);
  ~PayloadStore();

  PayloadStore(const PayloadStore&) = delete;
  PayloadStore& operator=(const PayloadStore&) = delete;

  // The process-wide store every Row interns into by default.  Leaked on
  // purpose: handles held by statics may be released during teardown.
  static PayloadStore& Global();

  // Interns `fields` (whose combined hash is `hash`): returns the unique
  // live rep with this content, creating it if needed.  The returned rep
  // carries one reference owned by the caller.
  RowRep* Intern(std::vector<Value> fields, uint64_t hash);

  // Creates a private rep that is NOT in any store: equal content compares
  // equal to interned reps but shares no storage and dies with its last
  // handle.  The deep-copy escape hatch for the LMR3- baseline.
  static RowRep* MakePrivate(std::vector<Value> fields, uint64_t hash);

  Stats GetStats() const;

  // Invokes fn(const RowRep&, int64_t refs) for every live entry, shard by
  // shard (each shard locked while visited).  Order is unspecified.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int i = 0; i < shard_count_; ++i) {
      const Shard& shard = shards_[static_cast<size_t>(i)];
      MutexLock lock(shard.mu);
      for (const auto& [hash, rep] : shard.map) {
        fn(static_cast<const RowRep&>(*rep),
           rep->refs.load(std::memory_order_relaxed));
      }
    }
  }

  // --- Handle reference counting (used by Row) ---

  static void AddRef(RowRep* rep) {
    if (rep != nullptr) rep->refs.fetch_add(1, std::memory_order_relaxed);
  }

  // Drops one reference; the last release of an interned rep evicts it from
  // its store, the last release of a private rep deletes it.
  static void Release(RowRep* rep);

 private:
  struct Shard {
    mutable Mutex mu;
    // hash -> rep; a multimap tolerates hash collisions between distinct
    // payloads (content is compared on every probe).
    std::unordered_multimap<uint64_t, RowRep*> map LM_GUARDED_BY(mu);
    int64_t payload_bytes LM_GUARDED_BY(mu) = 0;
    int64_t intern_calls LM_GUARDED_BY(mu) = 0;
    int64_t hits LM_GUARDED_BY(mu) = 0;
    int64_t bytes_saved LM_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t hash) {
    return shards_[static_cast<size_t>(hash) & shard_mask_];
  }

  // Slow path of Release: the caller observed a count of 1, so this may be
  // the last reference.  The decrement happens under the shard lock, which
  // is what makes eviction race-free against concurrent revival by Intern.
  void ReleaseMaybeLast(RowRep* rep);

  static int64_t RepDeepBytes(const std::vector<Value>& fields);

  std::vector<Shard> shards_;
  size_t shard_mask_ = 0;
  int shard_count_ = 0;

  friend struct RowRep;
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_PAYLOAD_STORE_H_
