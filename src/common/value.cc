#include "common/value.h"

#include <cstring>

#include "common/check.h"

namespace lmerge {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

bool Value::AsBool() const {
  LM_CHECK(type() == ValueType::kBool);
  return std::get<bool>(data_);
}

int64_t Value::AsInt64() const {
  LM_CHECK(type() == ValueType::kInt64);
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  LM_CHECK(type() == ValueType::kDouble);
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  LM_CHECK(type() == ValueType::kString);
  return std::get<std::string>(data_);
}

int Value::Compare(const Value& other) const {
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      const bool a = std::get<bool>(data_);
      const bool b = std::get<bool>(other.data_);
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInt64: {
      const int64_t a = std::get<int64_t>(data_);
      const int64_t b = std::get<int64_t>(other.data_);
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kDouble: {
      const double a = std::get<double>(data_);
      const double b = std::get<double>(other.data_);
      if (a == b) return 0;
      return a < b ? -1 : 1;
    }
    case ValueType::kString: {
      const std::string& a = std::get<std::string>(data_);
      const std::string& b = std::get<std::string>(other.data_);
      const int c = a.compare(b);
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
  return 0;
}

uint64_t Value::Hash() const {
  const uint64_t tag = static_cast<uint64_t>(type());
  switch (type()) {
    case ValueType::kNull:
      return Mix64(tag);
    case ValueType::kBool:
      return HashCombine(tag, std::get<bool>(data_) ? 1 : 0);
    case ValueType::kInt64:
      return HashCombine(tag,
                         static_cast<uint64_t>(std::get<int64_t>(data_)));
    case ValueType::kDouble: {
      const double d = std::get<double>(data_);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      // Normalize -0.0 to +0.0 so equal values hash equally.
      if (d == 0.0) bits = 0;
      return HashCombine(tag, bits);
    }
    case ValueType::kString:
      return HashCombine(tag, HashString(std::get<std::string>(data_)));
  }
  return 0;
}

int64_t Value::DeepSizeBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(Value));
  if (type() == ValueType::kString) {
    const std::string& s = std::get<std::string>(data_);
    // Count heap storage only when the string does not fit the SSO buffer.
    if (s.capacity() > sizeof(std::string) - 1) {
      bytes += static_cast<int64_t>(s.capacity());
    }
  }
  return bytes;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return std::get<bool>(data_) ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return std::to_string(std::get<double>(data_));
    case ValueType::kString:
      return "\"" + std::get<std::string>(data_) + "\"";
  }
  return "?";
}

}  // namespace lmerge
