// Schema: named, typed columns for Rows flowing through a query graph.
//
// Operators use schemas to resolve column names to indexes at plan-build time
// (e.g., GroupedAggregate groups by a named column) and to validate that
// connected operators agree on payload shape.

#ifndef LMERGE_COMMON_SCHEMA_H_
#define LMERGE_COMMON_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "common/value.h"

namespace lmerge {

struct Column {
  std::string name;
  ValueType type;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  int64_t column_count() const {
    return static_cast<int64_t>(columns_.size());
  }
  const Column& column(int64_t i) const {
    return columns_[static_cast<size_t>(i)];
  }
  const std::vector<Column>& columns() const { return columns_; }

  // Returns the index of the column named `name`, or -1 if absent.
  int64_t IndexOf(const std::string& name) const;

  // Verifies that `row` has the right arity and field types (null is allowed
  // in any column).
  Status ValidateRow(const Row& row) const;

  // Schema of rows produced by concatenating rows of `this` and `other`
  // (used by the temporal join).
  Schema Concat(const Schema& other) const;

  bool Equals(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace lmerge

#endif  // LMERGE_COMMON_SCHEMA_H_
