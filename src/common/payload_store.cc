#include "common/payload_store.h"

#include "common/check.h"
#include "common/mutex.h"

namespace lmerge {

PayloadStore::PayloadStore(Options options) {
  int count = 1;
  while (count < options.shard_count) count <<= 1;
  shard_count_ = count;
  shard_mask_ = static_cast<size_t>(count - 1);
  shards_ = std::vector<Shard>(static_cast<size_t>(count));
}

PayloadStore::~PayloadStore() {
  // Entries still present are owned by live handles; orphan them so their
  // last Release does not touch the dead store.  (The global store is
  // leaked and never gets here; per-test stores destroy after their rows.)
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (auto& [hash, rep] : shard.map) rep->store = nullptr;
    shard.map.clear();
  }
}

PayloadStore& PayloadStore::Global() {
  static PayloadStore* store = new PayloadStore();
  return *store;
}

int64_t PayloadStore::RepDeepBytes(const std::vector<Value>& fields) {
  int64_t bytes = static_cast<int64_t>(sizeof(RowRep)) +
                  static_cast<int64_t>(fields.capacity() * sizeof(Value));
  for (const Value& v : fields) {
    bytes += v.DeepSizeBytes() - static_cast<int64_t>(sizeof(Value));
  }
  return bytes;
}

RowRep* PayloadStore::Intern(std::vector<Value> fields, uint64_t hash) {
  Shard& shard = ShardFor(hash);
  MutexLock lock(shard.mu);
  ++shard.intern_calls;
  auto [begin, end] = shard.map.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    RowRep* rep = it->second;
    if (rep->fields == fields) {
      // Revival is safe: eviction decrements under this same lock, so a rep
      // reachable from the map has not been deleted and an in-flight
      // evictor will observe the revived count and back off.
      rep->refs.fetch_add(1, std::memory_order_relaxed);
      ++shard.hits;
      shard.bytes_saved += rep->deep_bytes;
      return rep;
    }
  }
  RowRep* rep = new RowRep();
  rep->fields = std::move(fields);
  rep->hash = hash;
  rep->deep_bytes = RepDeepBytes(rep->fields);
  rep->store = this;
  shard.map.emplace(hash, rep);
  shard.payload_bytes += rep->deep_bytes;
  return rep;
}

RowRep* PayloadStore::MakePrivate(std::vector<Value> fields, uint64_t hash) {
  RowRep* rep = new RowRep();
  rep->fields = std::move(fields);
  rep->hash = hash;
  rep->deep_bytes = RepDeepBytes(rep->fields);
  rep->store = nullptr;
  return rep;
}

void PayloadStore::Release(RowRep* rep) {
  if (rep == nullptr) return;
  // Fast path: not the last reference — decrement without any lock.  The
  // CAS never lets the count cross 1 -> 0 here, so the slow path below is
  // the only place a rep can die.
  int64_t current = rep->refs.load(std::memory_order_relaxed);
  while (current > 1) {
    if (rep->refs.compare_exchange_weak(current, current - 1,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
  PayloadStore* store = rep->store;
  if (store == nullptr) {
    // Private rep: plain shared-ptr-style teardown.
    if (rep->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete rep;
    return;
  }
  store->ReleaseMaybeLast(rep);
}

void PayloadStore::ReleaseMaybeLast(RowRep* rep) {
  Shard& shard = ShardFor(rep->hash);
  MutexLock lock(shard.mu);
  if (rep->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // The count hit zero while we hold the shard lock; Intern revives under
  // the same lock, so nobody can resurrect this rep anymore — unlink it.
  auto [begin, end] = shard.map.equal_range(rep->hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second == rep) {
      shard.map.erase(it);
      break;
    }
  }
  shard.payload_bytes -= rep->deep_bytes;
  lock.Unlock();
  delete rep;
}

PayloadStore::Stats PayloadStore::GetStats() const {
  Stats stats;
  stats.shard_count = shard_count_;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    stats.entries += static_cast<int64_t>(shard.map.size());
    stats.payload_bytes += shard.payload_bytes;
    stats.intern_calls += shard.intern_calls;
    stats.hits += shard.hits;
    stats.bytes_saved += shard.bytes_saved;
    for (const auto& [hash, rep] : shard.map) {
      stats.live_refs += rep->refs.load(std::memory_order_relaxed);
    }
  }
  return stats;
}

}  // namespace lmerge
