// Runtime stream statistics (Sec. IV-F): the quantities Table IV's
// complexity analysis is phrased in, measured from a live stream, plus a
// runtime recommendation of the cheapest safe LMerge algorithm.
//
// "These properties can be measured as statistics during runtime, although
// some may be determined statically based on operators in the plan."
// Compile-time derivation (QueryGraph::DeriveAll) is preferred when plan
// knowledge exists; this collector is for opaque sources: observe a prefix,
// then instantiate (or re-instantiate) the right variant.
//
// Measured quantities (live = not fully frozen under the latest stable):
//   w — live distinct (Vs, payload) keys;
//   d — max elements sharing one (Vs, payload);
//   g — max events sharing one Vs;
//   observed violations of ordering / insert-only / key-ness.

#ifndef LMERGE_PROPERTIES_RUNTIME_STATS_H_
#define LMERGE_PROPERTIES_RUNTIME_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/timestamp.h"
#include "properties/properties.h"
#include "stream/element.h"
#include "temporal/event.h"

namespace lmerge {

class StreamStatsCollector {
 public:
  // Observes one element.  Unlike the validator this never rejects; it
  // records what the stream *actually does*.
  void Observe(const StreamElement& element);

  int64_t elements_observed() const { return elements_; }
  int64_t inserts() const { return inserts_; }
  int64_t adjusts() const { return adjusts_; }
  int64_t stables() const { return stables_; }

  // Sec. IV-F quantities.
  int64_t live_keys_w() const {
    return static_cast<int64_t>(live_.size());
  }
  int64_t max_duplicates_d() const { return max_duplicates_; }
  int64_t max_same_vs_g() const { return max_same_vs_; }

  // Progress watermarks of the observed stream: its own stable point and the
  // largest insert Vs seen.  The network server reads these per publisher
  // session to decide who is lagging the merged output (Sec. V-D feedback).
  Timestamp stable_point() const { return stable_point_; }
  Timestamp max_vs() const { return max_vs_; }

  bool saw_adjust() const { return adjusts_ > 0; }
  bool saw_vs_regression() const { return vs_regressions_ > 0; }
  bool saw_vs_tie() const { return vs_ties_ > 0; }
  bool saw_key_violation() const { return key_violations_ > 0; }

  // The strongest property set consistent with everything observed so far.
  // Deterministic tie order cannot be observed from a single stream, so it
  // is claimed only when no ties occurred at all.
  StreamProperties ObservedProperties() const;

  // Cheapest algorithm safe for streams shaped like the observations
  // (== ChooseAlgorithm(ObservedProperties())).
  AlgorithmCase RecommendAlgorithm() const {
    return ChooseAlgorithm(ObservedProperties());
  }

  std::string ToString() const;

 private:
  // live (Vs, payload) -> multiplicity.
  std::map<VsPayload, int64_t, VsPayloadLess> live_;
  std::map<Timestamp, int64_t> per_vs_;  // live events per Vs

  int64_t elements_ = 0;
  int64_t inserts_ = 0;
  int64_t adjusts_ = 0;
  int64_t stables_ = 0;
  int64_t vs_regressions_ = 0;
  int64_t vs_ties_ = 0;
  int64_t key_violations_ = 0;
  int64_t max_duplicates_ = 1;
  int64_t max_same_vs_ = 0;
  Timestamp max_vs_ = kMinTimestamp;
  Timestamp stable_point_ = kMinTimestamp;
  bool any_insert_ = false;
};

}  // namespace lmerge

#endif  // LMERGE_PROPERTIES_RUNTIME_STATS_H_
