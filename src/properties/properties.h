// Compile-time stream properties and LMerge algorithm selection (Sec. III-C,
// IV-G).
//
// Properties may be stipulated by sources or derived by pushing them through
// operator transfer functions (each Operator implements DeriveProperties).
// ChooseAlgorithm maps the properties of LMerge's inputs to the cheapest
// correct algorithm case R0..R4:
//
//   R0: insert/stable only, strictly increasing Vs.
//   R1: insert/stable only, non-decreasing Vs, deterministic same-Vs order.
//   R2: insert/stable only, non-decreasing Vs, (Vs,payload) key.
//   R3: any elements/order, (Vs,payload) key.
//   R4: no restrictions (multiset TDB).

#ifndef LMERGE_PROPERTIES_PROPERTIES_H_
#define LMERGE_PROPERTIES_PROPERTIES_H_

#include <string>
#include <vector>

namespace lmerge {

struct StreamProperties {
  // No adjust elements ever appear.
  bool insert_only = false;
  // Vs values of insert elements are non-decreasing.
  bool ordered = false;
  // Vs values of insert elements are strictly increasing (implies ordered).
  bool strictly_increasing = false;
  // Elements with equal Vs appear in the same (deterministic) order on every
  // physically divergent copy of the stream (e.g., rank order from Top-k).
  bool deterministic_ties = false;
  // (Vs, payload) is a key of every prefix TDB.
  bool vs_payload_key = false;

  // The weakest (fully general) stream: nothing guaranteed.
  static StreamProperties None() { return StreamProperties(); }

  // An ordered, insert-only source with strictly increasing timestamps and
  // unique payload keys — the strongest common case.
  static StreamProperties Strongest() {
    StreamProperties p;
    p.insert_only = true;
    p.ordered = true;
    p.strictly_increasing = true;
    p.deterministic_ties = true;
    p.vs_payload_key = true;
    return p;
  }

  // The meet (conjunction) of two property sets: what is guaranteed when a
  // stream may have come from either description (used when LMerge combines
  // inputs with differing annotations).
  StreamProperties Meet(const StreamProperties& other) const;

  // Normalizes implications (strictly_increasing => ordered;
  // strictly_increasing => deterministic_ties).
  StreamProperties Normalized() const;

  bool Equals(const StreamProperties& other) const;

  std::string ToString() const;
};

enum class AlgorithmCase {
  kR0,
  kR1,
  kR2,
  kR3,
  kR4,
};

const char* AlgorithmCaseName(AlgorithmCase algorithm_case);

// Picks the cheapest LMerge algorithm that is correct for inputs with the
// given (already met/normalized) properties.
AlgorithmCase ChooseAlgorithm(const StreamProperties& properties);

// Convenience: meet over all inputs, then choose.
AlgorithmCase ChooseAlgorithm(const std::vector<StreamProperties>& inputs);

}  // namespace lmerge

#endif  // LMERGE_PROPERTIES_PROPERTIES_H_
