#include "properties/properties.h"

namespace lmerge {

StreamProperties StreamProperties::Meet(const StreamProperties& other) const {
  StreamProperties out;
  out.insert_only = insert_only && other.insert_only;
  out.ordered = ordered && other.ordered;
  out.strictly_increasing = strictly_increasing && other.strictly_increasing;
  out.deterministic_ties = deterministic_ties && other.deterministic_ties;
  out.vs_payload_key = vs_payload_key && other.vs_payload_key;
  return out.Normalized();
}

StreamProperties StreamProperties::Normalized() const {
  StreamProperties out = *this;
  if (out.strictly_increasing) {
    out.ordered = true;
    // With unique timestamps there are no ties to order.
    out.deterministic_ties = true;
  }
  return out;
}

bool StreamProperties::Equals(const StreamProperties& other) const {
  return insert_only == other.insert_only && ordered == other.ordered &&
         strictly_increasing == other.strictly_increasing &&
         deterministic_ties == other.deterministic_ties &&
         vs_payload_key == other.vs_payload_key;
}

std::string StreamProperties::ToString() const {
  std::string out = "{";
  auto add = [&out](bool flag, const char* name) {
    if (!flag) return;
    if (out.size() > 1) out += ", ";
    out += name;
  };
  add(insert_only, "insert_only");
  add(ordered, "ordered");
  add(strictly_increasing, "strictly_increasing");
  add(deterministic_ties, "deterministic_ties");
  add(vs_payload_key, "vs_payload_key");
  out += "}";
  return out;
}

const char* AlgorithmCaseName(AlgorithmCase algorithm_case) {
  switch (algorithm_case) {
    case AlgorithmCase::kR0:
      return "R0";
    case AlgorithmCase::kR1:
      return "R1";
    case AlgorithmCase::kR2:
      return "R2";
    case AlgorithmCase::kR3:
      return "R3";
    case AlgorithmCase::kR4:
      return "R4";
  }
  return "?";
}

AlgorithmCase ChooseAlgorithm(const StreamProperties& properties) {
  const StreamProperties p = properties.Normalized();
  if (p.insert_only && p.strictly_increasing) return AlgorithmCase::kR0;
  if (p.insert_only && p.ordered && p.deterministic_ties) {
    return AlgorithmCase::kR1;
  }
  if (p.insert_only && p.ordered && p.vs_payload_key) {
    return AlgorithmCase::kR2;
  }
  if (p.vs_payload_key) return AlgorithmCase::kR3;
  return AlgorithmCase::kR4;
}

AlgorithmCase ChooseAlgorithm(const std::vector<StreamProperties>& inputs) {
  if (inputs.empty()) return AlgorithmCase::kR4;
  StreamProperties met = inputs[0];
  for (size_t i = 1; i < inputs.size(); ++i) met = met.Meet(inputs[i]);
  return ChooseAlgorithm(met);
}

}  // namespace lmerge
