#include "properties/runtime_stats.h"

#include <algorithm>

namespace lmerge {

void StreamStatsCollector::Observe(const StreamElement& element) {
  ++elements_;
  switch (element.kind()) {
    case ElementKind::kInsert: {
      ++inserts_;
      if (any_insert_) {
        if (element.vs() < max_vs_) ++vs_regressions_;
        if (element.vs() == max_vs_) ++vs_ties_;
      }
      any_insert_ = true;
      max_vs_ = std::max(max_vs_, element.vs());
      int64_t& multiplicity =
          live_[VsPayload(element.vs(), element.payload())];
      ++multiplicity;
      if (multiplicity > 1) {
        ++key_violations_;
        max_duplicates_ = std::max(max_duplicates_, multiplicity);
      }
      int64_t& at_vs = per_vs_[element.vs()];
      ++at_vs;
      max_same_vs_ = std::max(max_same_vs_, at_vs);
      break;
    }
    case ElementKind::kAdjust: {
      ++adjusts_;
      auto it = live_.find(VsPayload(element.vs(), element.payload()));
      if (it != live_.end() && element.ve() == element.vs()) {
        // Full removal.
        if (--it->second == 0) live_.erase(it);
        auto vs_it = per_vs_.find(element.vs());
        if (vs_it != per_vs_.end() && --vs_it->second == 0) {
          per_vs_.erase(vs_it);
        }
      }
      break;
    }
    case ElementKind::kStable: {
      ++stables_;
      stable_point_ = std::max(stable_point_, element.stable_time());
      // Only an approximation of full freezing is possible without end
      // times per key; prune keys whose Vs precedes the stable point and
      // whose events cannot change population (kept simple: prune by Vs —
      // the live count is an upper bound used for sizing, not correctness).
      auto it = live_.begin();
      while (it != live_.end() && it->first.vs < stable_point_) {
        auto vs_it = per_vs_.find(it->first.vs);
        if (vs_it != per_vs_.end()) {
          vs_it->second -= it->second;
          if (vs_it->second <= 0) per_vs_.erase(vs_it);
        }
        it = live_.erase(it);
      }
      break;
    }
  }
}

StreamProperties StreamStatsCollector::ObservedProperties() const {
  StreamProperties p;
  p.insert_only = adjusts_ == 0;
  p.ordered = vs_regressions_ == 0;
  p.strictly_increasing = vs_regressions_ == 0 && vs_ties_ == 0;
  p.deterministic_ties = vs_ties_ == 0;  // unobservable; claim only if moot
  p.vs_payload_key = key_violations_ == 0;
  return p.Normalized();
}

std::string StreamStatsCollector::ToString() const {
  std::string out = "StreamStats{elements=" + std::to_string(elements_) +
                    ", inserts=" + std::to_string(inserts_) +
                    ", adjusts=" + std::to_string(adjusts_) +
                    ", stables=" + std::to_string(stables_) +
                    ", w=" + std::to_string(live_keys_w()) +
                    ", d=" + std::to_string(max_duplicates_) +
                    ", g=" + std::to_string(max_same_vs_) + ", observed=" +
                    ObservedProperties().ToString() + ", recommend=" +
                    AlgorithmCaseName(RecommendAlgorithm()) + "}";
  return out;
}

}  // namespace lmerge
