#include "tools/cli.h"

#include <cstdio>
#include <cstdlib>

#include "common/payload_ledger.h"
#include "stream/element_serde.h"

namespace lmerge::tools {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

Status WriteStreamFile(const std::string& path,
                       const ElementSequence& elements) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  const std::string body = SerializeSequence(elements);
  bool ok = std::fwrite(kStreamFileMagic, 1, sizeof(kStreamFileMagic),
                        file) == sizeof(kStreamFileMagic);
  ok = ok && std::fwrite(body.data(), 1, body.size(), file) == body.size();
  ok = std::fclose(file) == 0 && ok;
  if (!ok) return Status::Internal("short write to " + path);
  return Status::Ok();
}

Status ReadStreamFile(const std::string& path, ElementSequence* elements) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::string bytes;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, n);
  }
  std::fclose(file);
  if (bytes.size() < sizeof(kStreamFileMagic) ||
      bytes.compare(0, sizeof(kStreamFileMagic), kStreamFileMagic,
                    sizeof(kStreamFileMagic)) != 0) {
    return Status::InvalidArgument("not a stream file: " + path);
  }
  return DeserializeSequence(bytes.substr(sizeof(kStreamFileMagic)),
                             elements);
}

PayloadStatsReport ComputePayloadStats(const ElementSequence& elements) {
  // One SharedPayloadLedger replay over the tape: the same accounting path
  // the obs payload exporter uses (AddRef charges a rep's shared bytes
  // exactly once), so this report and the registry's payload.* gauges can
  // never disagree on what sharing saves.
  PayloadStatsReport report;
  SharedPayloadLedger ledger;
  for (const StreamElement& element : elements) {
    if (element.is_stable()) continue;
    const Row& payload = element.payload();
    if (payload.identity() == nullptr) continue;
    ++report.payload_refs;
    report.deep_bytes += payload.DeepSizeBytes();
    ledger.AddRef(payload);
  }
  report.distinct_payloads = ledger.distinct();
  report.shared_bytes = ledger.bytes();
  return report;
}

std::string FormatPayloadStats(const PayloadStatsReport& report,
                               const PayloadStore::Stats& store) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "  payloads: %lld references -> %lld distinct "
                "(dedup %.2fx)\n",
                static_cast<long long>(report.payload_refs),
                static_cast<long long>(report.distinct_payloads),
                report.DedupRatio());
  out += line;
  std::snprintf(line, sizeof(line),
                "  bytes: %lld shared vs %lld copied (%lld saved)\n",
                static_cast<long long>(report.shared_bytes),
                static_cast<long long>(report.deep_bytes),
                static_cast<long long>(report.BytesSaved()));
  out += line;
  std::snprintf(line, sizeof(line),
                "  store: %lld entries, %lld live refs, %lld bytes, "
                "%d shards\n",
                static_cast<long long>(store.entries),
                static_cast<long long>(store.live_refs),
                static_cast<long long>(store.payload_bytes),
                store.shard_count);
  out += line;
  std::snprintf(line, sizeof(line),
                "  store lifetime: %lld interns, %lld hits "
                "(dedup %.2fx), %lld bytes saved\n",
                static_cast<long long>(store.intern_calls),
                static_cast<long long>(store.hits), store.DedupRatio(),
                static_cast<long long>(store.bytes_saved));
  out += line;
  return out;
}

}  // namespace lmerge::tools
