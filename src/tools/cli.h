// Tiny flag parser and stream-file helpers shared by the command-line
// tools (tools/lmerge_gen, tools/lmerge_merge, tools/lmerge_inspect).
//
// Stream files are the serde wire format of stream/element_serde.h with a
// short header, so tapes written by lmerge_gen can be merged or inspected
// offline — the file-based analogue of shipping a checkpoint (Sec. II-4).

#ifndef LMERGE_TOOLS_CLI_H_
#define LMERGE_TOOLS_CLI_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/element.h"

namespace lmerge::tools {

// Parses "--key=value" and "--flag" arguments; positional arguments are
// collected in order.  Unknown flags are fine (callers validate).
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

// Magic prefix of stream files ("LMST" + version byte).
inline constexpr char kStreamFileMagic[5] = {'L', 'M', 'S', 'T', '\x01'};

// Writes `elements` to `path` in the stream-file format.
Status WriteStreamFile(const std::string& path,
                       const ElementSequence& elements);

// Reads a stream file written by WriteStreamFile.
Status ReadStreamFile(const std::string& path, ElementSequence* elements);

}  // namespace lmerge::tools

#endif  // LMERGE_TOOLS_CLI_H_
