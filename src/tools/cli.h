// Tiny flag parser and stream-file helpers shared by the command-line
// tools (tools/lmerge_gen, tools/lmerge_merge, tools/lmerge_inspect).
//
// Stream files are the serde wire format of stream/element_serde.h with a
// short header, so tapes written by lmerge_gen can be merged or inspected
// offline — the file-based analogue of shipping a checkpoint (Sec. II-4).

#ifndef LMERGE_TOOLS_CLI_H_
#define LMERGE_TOOLS_CLI_H_

#include <map>
#include <string>
#include <vector>

#include "common/payload_store.h"
#include "common/status.h"
#include "stream/element.h"

namespace lmerge::tools {

// Parses "--key=value" and "--flag" arguments; positional arguments are
// collected in order.  Unknown flags are fine (callers validate).
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

// Magic prefix of stream files ("LMST" + version byte).
inline constexpr char kStreamFileMagic[5] = {'L', 'M', 'S', 'T', '\x01'};

// Writes `elements` to `path` in the stream-file format.
Status WriteStreamFile(const std::string& path,
                       const ElementSequence& elements);

// Reads a stream file written by WriteStreamFile.
Status ReadStreamFile(const std::string& path, ElementSequence* elements);

// --- Payload interning statistics (lmerge_inspect --payload-stats) ---

// Dedup summary over one tape's insert/adjust payloads: how many handles
// reference how many distinct interned reps, and what that sharing saves
// relative to the private-copy model.
struct PayloadStatsReport {
  int64_t payload_refs = 0;       // insert/adjust elements carrying payloads
  int64_t distinct_payloads = 0;  // distinct rep identities among them
  int64_t deep_bytes = 0;         // bytes if every reference owned a copy
  int64_t shared_bytes = 0;       // bytes actually held, once per rep

  double DedupRatio() const {
    return distinct_payloads == 0
               ? 1.0
               : static_cast<double>(payload_refs) /
                     static_cast<double>(distinct_payloads);
  }
  int64_t BytesSaved() const { return deep_bytes - shared_bytes; }
};

PayloadStatsReport ComputePayloadStats(const ElementSequence& elements);

// Renders the report plus the process-wide store's counters as the text
// block lmerge_inspect prints (unit-testable; tests/tools/cli_test.cc).
std::string FormatPayloadStats(const PayloadStatsReport& report,
                               const PayloadStore::Stats& store);

}  // namespace lmerge::tools

#endif  // LMERGE_TOOLS_CLI_H_
