#include "obs/http_exporter.h"

#include <sys/epoll.h>

#include <utility>
#include <vector>

#include "common/check.h"
#include "net/tcp.h"

namespace lmerge {
namespace obs {

namespace {

// One request's header block may not exceed this; anything larger is a
// client bug or an attack, and either way not a scraper.
constexpr size_t kMaxRequestBytes = 16 * 1024;

const char* StatusText(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
  }
  return "Internal Server Error";
}

}  // namespace

std::string OpenMetricsName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    out.push_back(alpha || (digit && i > 0) ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.entries.size() * 64);
  for (const MetricValue& entry : snapshot.entries) {
    const std::string name = OpenMetricsName(entry.name);
    out += "# TYPE " + name + " " + InstrumentKindName(entry.kind) + "\n";
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        out += name + "_total " + std::to_string(entry.value) + "\n";
        break;
      case InstrumentKind::kGauge:
        out += name + " " + std::to_string(entry.value) + "\n";
        break;
      case InstrumentKind::kHistogram: {
        const HistogramSnapshot& h = entry.histogram;
        // The sparse (lower bound, count) buckets become the cumulative
        // `le` (inclusive upper bound) form Prometheus expects.  A bucket
        // whose lower bound is L spans [L, next-bound); over integers its
        // inclusive upper bound is next-bound - 1.
        int64_t cumulative = 0;
        for (const auto& [bound, count] : h.buckets) {
          cumulative += count;
          const int index = HistogramBucketIndex(bound);
          if (index + 1 >= kHistogramBuckets) continue;  // +Inf covers it
          const int64_t le = HistogramBucketLowerBound(index + 1) - 1;
          out += name + "_bucket{le=\"" + std::to_string(le) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) +
               "\n";
        out += name + "_sum " + std::to_string(h.sum) + "\n";
        out += name + "_count " + std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  out += "# EOF\n";
  return out;
}

Status HttpExporter::Start(const HttpExporterOptions& options,
                          std::unique_ptr<HttpExporter>* exporter) {
  LM_CHECK(exporter != nullptr);
  std::unique_ptr<HttpExporter> built(new HttpExporter());
  built->options_ = options;
  Status status = net::TcpListen(options.port, &built->listener_,
                                 options.bind_address);
  if (!status.ok()) return status;
  built->port_ = built->listener_->port();
  HttpExporter* self = built.get();
  status = built->loop_.Add(built->listener_->pollable_fd(), EPOLLIN,
                            [self](uint32_t) { self->OnAccept(); });
  if (!status.ok()) return status;
  built->thread_ = std::thread([self] { self->loop_.Run(); });
  *exporter = std::move(built);
  return Status::Ok();
}

HttpExporter::~HttpExporter() { Stop(); }

void HttpExporter::Stop() {
  if (stopped_) return;
  stopped_ = true;
  loop_.Stop();
  if (thread_.joinable()) thread_.join();
  // The loop thread is gone; teardown owns all connection state now.
  for (auto& [fd, client] : clients_) {
    loop_.Remove(fd);
    client.connection->Close();
  }
  clients_.clear();
  if (listener_ != nullptr) {
    loop_.Remove(listener_->pollable_fd());
    listener_->Close();
  }
}

void HttpExporter::OnAccept() {
  while (true) {
    std::unique_ptr<net::Connection> connection;
    if (!listener_->TryAccept(&connection).ok() || connection == nullptr) {
      return;
    }
    const int fd = connection->readable_fd();
    if (fd < 0) {
      connection->Close();
      continue;
    }
    Client& client = clients_[fd];
    client.connection = std::move(connection);
    const Status added = loop_.Add(
        fd, EPOLLIN, [this, fd](uint32_t events) { OnClient(fd, events); });
    if (!added.ok()) {
      client.connection->Close();
      clients_.erase(fd);
    }
  }
}

void HttpExporter::OnClient(int fd, uint32_t) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  Client& client = it->second;
  std::string bytes;
  const Status status = client.connection->TryReceive(&bytes);
  client.request += bytes;
  const bool have_request =
      client.request.find("\r\n\r\n") != std::string::npos ||
      client.request.find("\n\n") != std::string::npos;
  if (have_request) {
    Respond(&client);
  } else if (status.ok() && !client.connection->closed() &&
             client.request.size() <= kMaxRequestBytes) {
    return;  // headers still incomplete; wait for more bytes
  }
  loop_.Remove(fd);
  client.connection->Close();
  clients_.erase(it);
}

void HttpExporter::Respond(Client* client) {
  // Request line: METHOD SP TARGET SP VERSION.  Headers are ignored.
  const size_t line_end = client->request.find_first_of("\r\n");
  const std::string line = client->request.substr(
      0, line_end == std::string::npos ? client->request.size() : line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  int code = 400;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body = "bad request\n";
  if (sp2 != std::string::npos) {
    const std::string method = line.substr(0, sp1);
    const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    body = HandleRequest(method, target, &code, &content_type);
  }
  std::string response = "HTTP/1.1 " + std::to_string(code) + " " +
                         StatusText(code) +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  // Responses are a few KiB of text to a scraper that just asked for them;
  // a blocking send here is bounded by the socket buffer in practice and
  // only ever stalls the exporter loop, never the data plane.
  // A peer that vanished mid-response is its own problem.
  (void)client->connection->Send(response);
}

std::string HttpExporter::HandleRequest(const std::string& method,
                                        const std::string& target,
                                        int* status_code,
                                        std::string* content_type) {
  if (method != "GET") {
    *status_code = 405;
    return "method not allowed\n";
  }
  // Strip any query string: /metrics?x=y routes like /metrics.
  const std::string path = target.substr(0, target.find('?'));
  if (path == "/healthz") {
    *status_code = 200;
    return "ok\n";
  }
  if (path == "/readyz") {
    const bool ready = options_.ready_check == nullptr ||
                       options_.ready_check(options_.ready_deadline);
    *status_code = ready ? 200 : 503;
    return ready ? "ready\n" : "unready\n";
  }
  if (path == "/metrics" || path == "/metrics.json") {
    const MetricsSnapshot snapshot = options_.snapshot_source != nullptr
                                         ? options_.snapshot_source()
                                         : MetricsRegistry::Global().Snapshot();
    *status_code = 200;
    if (path == "/metrics.json") {
      *content_type = "application/json";
      return snapshot.ToJson();
    }
    *content_type =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    return RenderOpenMetrics(snapshot);
  }
  *status_code = 404;
  return "not found\n";
}

}  // namespace obs
}  // namespace lmerge
