#include "obs/export.h"

#include <cstdint>

#include "common/payload_ledger.h"
#include "common/payload_store.h"
#include "obs/metrics.h"

namespace lmerge {
namespace obs {

void ExportPayloadStoreMetrics(const PayloadStore& store,
                               MetricsRegistry* registry) {
  const PayloadStore::Stats stats = store.GetStats();
  registry->GetGauge("payload.entries")->Set(stats.entries);
  registry->GetGauge("payload.live_refs")->Set(stats.live_refs);
  registry->GetGauge("payload.payload_bytes")->Set(stats.payload_bytes);
  registry->GetExportedCounter("payload.intern_calls")->Set(stats.intern_calls);
  registry->GetExportedCounter("payload.hits")->Set(stats.hits);
  registry->GetExportedCounter("payload.misses")
      ->Set(stats.intern_calls - stats.hits);
  // Evictions = payloads created minus payloads still live; every miss
  // created an entry, and entries not present anymore were evicted on their
  // last release.
  registry->GetExportedCounter("payload.evictions")
      ->Set(stats.intern_calls - stats.hits - stats.entries);
  registry->GetExportedCounter("payload.bytes_saved")->Set(stats.bytes_saved);

  // Live sharing: charge each live rep once through the ledger (the same
  // accounting `lmerge_inspect --payload-stats` performs over a tape), then
  // compare against the per-reference deep-copy cost.
  SharedPayloadLedger ledger;
  int64_t deep_if_copied = 0;
  store.ForEach([&](const RowRep& rep, int64_t refs) {
    ledger.AddRefIdentity(&rep, rep.deep_bytes);
    deep_if_copied += rep.deep_bytes * refs;
  });
  registry->GetGauge("payload.bytes_held")->Set(ledger.bytes());
  registry->GetGauge("payload.bytes_shared")
      ->Set(deep_if_copied - ledger.bytes());
}

}  // namespace obs
}  // namespace lmerge
