// Low-overhead metrics registry: named counters, gauges, and log-linear
// histograms shared by every layer of the service (see docs/OBSERVABILITY.md
// for the instrument catalog).
//
// Design constraints, in order:
//   1. A hot-path update (Counter::Add, Histogram::Record) must never take a
//      lock or touch a contended cache line: each instrument stripes its
//      state across kShards cache-line-padded cells and a thread picks its
//      cell once (thread-local), so concurrent writers from the session
//      threads, the merge thread, and the fan-out path proceed with relaxed
//      atomic adds on distinct lines.
//   2. Snapshots are wait-free for writers: a reader sums the stripes with
//      relaxed loads.  A snapshot is therefore *consistent per instrument*
//      but not across instruments — exactly the Prometheus/StatsD contract,
//      and all the lmerge_stats renderer needs.
//   3. Instruments are registered once by name and live for the registry's
//      lifetime; Get* is a cold-path mutex + map lookup, so callers cache
//      the returned pointer.
//
// The process-wide kill switch (set_enabled) turns every update into one
// relaxed load + branch; `lmerge_served --no-metrics` and the CI A/B bench
// use it to measure the instrumentation overhead itself.

#ifndef LMERGE_OBS_METRICS_H_
#define LMERGE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lmerge {

class Encoder;
class Decoder;
class Status;

namespace obs {

enum class InstrumentKind : uint8_t {
  kCounter = 0,    // monotone sum
  kGauge = 1,      // last-written value
  kHistogram = 2,  // log-linear value distribution
};

const char* InstrumentKindName(InstrumentKind kind);

// Number of stripes per instrument.  16 covers the deployment shape (a few
// session threads + one merge thread) without measurable collision cost.
inline constexpr int kMetricShards = 16;

namespace internal {

// One striped cell on its own cache line.
struct alignas(64) Cell {
  std::atomic<int64_t> value{0};
};

// The stripe this thread writes; assigned round-robin on first use so the
// common deployment (≤ 16 live threads) gets collision-free stripes.
int ThreadShard();

// Process-wide enable flag shared by all registries (see set_enabled).
extern std::atomic<bool> g_metrics_enabled;

inline bool Enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

}  // namespace internal

class Counter {
 public:
  void Add(int64_t delta) {
    if (!internal::Enabled()) return;
    cells_[static_cast<size_t>(internal::ThreadShard())].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Sum() const {
    int64_t sum = 0;
    for (const internal::Cell& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  internal::Cell cells_[kMetricShards];
};

class Gauge {
 public:
  void Set(int64_t value) {
    if (!internal::Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!internal::Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-linear bucketing (HdrHistogram-style): values 0..7 get exact buckets,
// then every power-of-two octave is split into 4 linear sub-buckets, giving
// <= 25% relative bucket width over the full non-negative int64 range in
// kHistogramBuckets buckets.  Negative values clamp to 0.
inline constexpr int kHistogramSubBits = 2;  // 4 sub-buckets per octave
inline constexpr int kHistogramBuckets = 256;

int HistogramBucketIndex(int64_t value);
// Smallest value mapping to bucket `index` (the bucket's lower bound).
int64_t HistogramBucketLowerBound(int index);

// Merged, point-in-time view of one histogram (also the wire/JSON form).
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  // 0 when count == 0
  int64_t max = 0;
  // (bucket lower bound, count), ascending, zero-count buckets omitted.
  std::vector<std::pair<int64_t, int64_t>> buckets;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Percentile estimate from the bucket lower bounds (p in [0, 100]).
  int64_t Percentile(double p) const;
  // Accumulates `other` into this snapshot (bucket-wise merge).
  void Merge(const HistogramSnapshot& other);
};

class Histogram {
 public:
  void Record(int64_t value) {
    if (!internal::Enabled()) return;
    if (value < 0) value = 0;
    Shard& shard = shards_[static_cast<size_t>(internal::ThreadShard())];
    shard.buckets[static_cast<size_t>(HistogramBucketIndex(value))]
        .fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    UpdateMin(shard.min, value);
    UpdateMax(shard.max, value);
  }

  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> buckets[kHistogramBuckets] = {};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
  };

  static void UpdateMin(std::atomic<int64_t>& slot, int64_t value) {
    int64_t seen = slot.load(std::memory_order_relaxed);
    while (value < seen &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }
  static void UpdateMax(std::atomic<int64_t>& slot, int64_t value) {
    int64_t seen = slot.load(std::memory_order_relaxed);
    while (value > seen &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  Shard shards_[kMetricShards];
};

// One named instrument's value in a snapshot.
struct MetricValue {
  std::string name;
  InstrumentKind kind = InstrumentKind::kCounter;
  int64_t value = 0;  // counter sum / gauge value; histograms use `histogram`
  HistogramSnapshot histogram;
};

// Point-in-time view of a whole registry, sorted by instrument name (the
// stable order every serialization emits).
struct MetricsSnapshot {
  std::vector<MetricValue> entries;
  // When the snapshot was captured: wall clock (ms since the Unix epoch,
  // for humans and absolute alignment) and the monotonic clock (µs, for
  // honest rate math between two snapshots of the same process — wall time
  // can step, the monotonic clock cannot).  0 = unknown (pre-v5 wire peer).
  int64_t captured_wall_ms = 0;
  int64_t captured_mono_us = 0;

  const MetricValue* Find(const std::string& name) const;
  // Counter/gauge value by name; `fallback` when absent.
  int64_t Value(const std::string& name, int64_t fallback = 0) const;
  // Instruments whose name starts with `prefix`, in name order.
  std::vector<const MetricValue*> WithPrefix(const std::string& prefix) const;

  // Deterministic JSON object: {"name": value, ...} with histograms as
  // {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p99":..}.  Keys are
  // escaped and emitted in sorted order (common/json.h); the capture
  // timestamps lead as "snapshot.captured_wall_ms"/"snapshot.captured_mono_us".
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry all production layers register into.  Leaked
  // on purpose: instrument handles are cached in objects with static
  // lifetime.
  static MetricsRegistry& Global();

  // Idempotent by name: the first call creates the instrument, later calls
  // return the same pointer (which stays valid for the registry's
  // lifetime).  Registering one name as two different kinds aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // A monotone total that is *exported* (Set whole, from one thread at a
  // time) rather than accumulated with striped Adds — the shape of the
  // barrier-exported merge totals, whose authoritative counts live in
  // algorithm state and are copied out under quiescence.  Mechanically a
  // Gauge, but registered as InstrumentKind::kCounter so snapshots and the
  // OpenMetrics exposition report the truth: a monotone counter.
  Gauge* GetExportedCounter(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Process-wide kill switch (affects every registry): when disabled, all
  // updates early-return after one relaxed load; existing values freeze.
  static void set_enabled(bool enabled) {
    internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
  }
  static bool enabled() { return internal::Enabled(); }

 private:
  struct Instrument {
    InstrumentKind kind = InstrumentKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // Cold path only (instrument registration + snapshots); hot-path updates
  // go through the returned instrument pointers, which are lock-free.
  mutable Mutex mutex_;
  std::map<std::string, Instrument> instruments_ LM_GUARDED_BY(mutex_);
};

// --- Wire form (STATS frames, net/protocol.h) ---

void EncodeMetricsSnapshot(const MetricsSnapshot& snapshot, Encoder* encoder);
Status DecodeMetricsSnapshot(Decoder* decoder, MetricsSnapshot* snapshot);

}  // namespace obs
}  // namespace lmerge

#endif  // LMERGE_OBS_METRICS_H_
