// End-to-end latency plumbing: the ingest stamp a batch of elements carries
// from the wire to the fan-out, and the per-stage histograms it feeds
// (docs/OBSERVABILITY.md "Latency pipeline").
//
// An IngestStamp names two points on the monotonic clock:
//   origin_us  when the *publisher* serialized the batch (protocol v5 sends
//              it on the wire; 0 for v4-and-older peers, which negotiate the
//              stamp away).  Publisher and server clocks are only comparable
//              on the same host — cross-machine, origin-relative latencies
//              include the clock offset and should be read as trends.
//   rx_us      when the server's IO thread read the bytes off the socket.
//              Always stamped, so rx-relative stage latencies work for every
//              peer version.
//
// The stamp is deliberately NOT a StreamElement field: elements are the hot
// currency of the whole engine and widening them taxes every ring, index,
// and checkpoint.  Instead the stamp rides *beside* batches (per-input stamp
// rings in engine/concurrent.cc) and is republished per merge batch through
// a thread-local, which the fan-out sink reads synchronously on the same
// thread.  Losing a stamp under overload drops a latency *sample*, never an
// element.
//
// Stamps always flow (two int64 copies per batch) even when metrics are
// disabled: `lmerge_subscribe --latency` measures publish→delivery from the
// wire stamp alone, with the registry off.

#ifndef LMERGE_OBS_LATENCY_H_
#define LMERGE_OBS_LATENCY_H_

#include <chrono>
#include <cstdint>

namespace lmerge {
namespace obs {

struct IngestStamp {
  int64_t origin_us = 0;  // publisher steady clock at send; 0 = unknown
  int64_t rx_us = 0;      // server steady clock at socket read; 0 = unknown

  bool empty() const { return origin_us == 0 && rx_us == 0; }

  friend bool operator==(const IngestStamp&, const IngestStamp&) = default;

  // Componentwise fold toward the *oldest* known stamp: an output batch
  // that coalesces several ingest batches is charged the age of its
  // earliest-ingested element, so latency percentiles report the worst
  // element in the batch, not the luckiest.  0 (unknown) never wins.
  void FoldOldest(const IngestStamp& other) {
    if (other.origin_us != 0 &&
        (origin_us == 0 || other.origin_us < origin_us)) {
      origin_us = other.origin_us;
    }
    if (other.rx_us != 0 && (rx_us == 0 || other.rx_us < rx_us)) {
      rx_us = other.rx_us;
    }
  }
};

// Microseconds on the steady clock, the time base of every stamp.
inline int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The stamp of the batch the calling thread is currently processing.  The
// merger sets it (always — to the empty stamp when unknown, so a previous
// batch's stamp can never leak) immediately before running the algorithm;
// any sink invoked synchronously downstream on the same thread may read it.
void SetCurrentIngestStamp(const IngestStamp& stamp);
const IngestStamp& CurrentIngestStamp();

}  // namespace obs
}  // namespace lmerge

#endif  // LMERGE_OBS_LATENCY_H_
