// A minimal HTTP endpoint exposing the process's observability surface for
// scrapers and orchestrators — the pull half of the obs story, next to the
// push paths (STATS frames, --metrics-out snapshots):
//
//   GET /metrics       OpenMetrics text exposition rendered from
//                      MetricsRegistry::Snapshot() (Prometheus-scrapeable;
//                      instrument names have '.' mapped to '_').
//   GET /metrics.json  the same snapshot as MetricsSnapshot::ToJson().
//   GET /healthz       liveness: 200 while the exporter thread serves.
//   GET /readyz        readiness: runs the configured probe (merge thread
//                      responsive + no wedged IO loop, via posted pings
//                      with a deadline); 200 "ready" or 503 "unready".
//
// The exporter runs one EventLoop of its own on a dedicated thread — scrape
// traffic never shares a loop with the merge fan-out, so a slow scraper
// cannot wedge the data plane and a wedged data plane stays observable.
// It speaks just enough HTTP/1.x for curl and Prometheus: GET only, one
// request per connection, `Connection: close`.

#ifndef LMERGE_OBS_HTTP_EXPORTER_H_
#define LMERGE_OBS_HTTP_EXPORTER_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace lmerge {
namespace obs {

// Renders a snapshot in OpenMetrics text format (exposed for tests and any
// future push-gateway path).  Counters get the `_total` sample suffix,
// histograms the cumulative `_bucket{le=...}` / `_sum` / `_count` triple;
// the document ends with `# EOF`.
std::string RenderOpenMetrics(const MetricsSnapshot& snapshot);

// Prometheus-legal sample name for an instrument: '.' and every other
// illegal character become '_'.
std::string OpenMetricsName(const std::string& name);

struct HttpExporterOptions {
  int port = 0;  // 0 picks an ephemeral port; see HttpExporter::port()
  std::string bind_address = "127.0.0.1";
  // Readiness probe for /readyz, called on the exporter thread with the
  // deadline it may spend.  Null = always ready.
  std::function<bool(std::chrono::milliseconds)> ready_check;
  std::chrono::milliseconds ready_deadline{250};
  // Snapshot source for /metrics and /metrics.json.  Null = the global
  // registry.
  std::function<MetricsSnapshot()> snapshot_source;
};

class HttpExporter {
 public:
  // Binds the port and starts the serving thread.
  static Status Start(const HttpExporterOptions& options,
                      std::unique_ptr<HttpExporter>* exporter);

  ~HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  // Stops the loop and joins the serving thread.  Idempotent.
  void Stop();

  int port() const { return port_; }

 private:
  // One in-flight request: bytes accumulate until the header block is
  // complete, then the response is written and the connection closed.
  struct Client {
    std::unique_ptr<net::Connection> connection;
    std::string request;
  };

  HttpExporter() = default;

  // All on the loop thread:
  void OnAccept();
  void OnClient(int fd, uint32_t events);
  void Respond(Client* client);
  std::string HandleRequest(const std::string& method,
                            const std::string& target, int* status_code,
                            std::string* content_type);

  HttpExporterOptions options_;
  std::unique_ptr<net::Listener> listener_;
  net::EventLoop loop_;
  std::thread thread_;
  int port_ = -1;
  bool stopped_ = false;
  std::map<int, Client> clients_;  // loop-thread-only
};

}  // namespace obs
}  // namespace lmerge

#endif  // LMERGE_OBS_HTTP_EXPORTER_H_
