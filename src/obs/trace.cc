#include "obs/trace.h"

#include <algorithm>

#include "common/json.h"

namespace lmerge {
namespace obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::Ring* TraceRecorder::RingForThisThread() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    MutexLock lock(registry_mutex_);
    ring = new Ring(next_tid_++);
    rings_.push_back(ring);
  }
  return ring;
}

void TraceRecorder::Record(const char* name, const char* category,
                           int64_t start_us, int64_t duration_us) {
  Ring* ring = RingForThisThread();
  MutexLock lock(ring->mutex);
  TraceEvent& slot = ring->events[ring->next];
  slot.name = name;
  slot.category = category;
  slot.start_us = start_us;
  slot.duration_us = duration_us;
  slot.tid = ring->tid;
  ring->next = (ring->next + 1) % kTraceRingCapacity;
  if (ring->count < kTraceRingCapacity) ++ring->count;
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::string TraceRecorder::DumpChromeTraceJson() const {
  // Collect a stable copy of every ring first so JSON emission doesn't hold
  // any ring mutex longer than a memcpy.
  std::vector<TraceEvent> events;
  {
    MutexLock registry_lock(registry_mutex_);
    for (Ring* ring : rings_) {
      MutexLock ring_lock(ring->mutex);
      const size_t start =
          ring->count < kTraceRingCapacity ? 0 : ring->next;
      for (size_t i = 0; i < ring->count; ++i) {
        events.push_back(
            ring->events[(start + i) % kTraceRingCapacity]);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Key("name").String(e.name == nullptr ? "" : e.name);
    w.Key("cat").String(e.category == nullptr ? "" : e.category);
    w.Key("ph").String("X");
    w.Key("ts").Int(e.start_us);
    w.Key("dur").Int(e.duration_us);
    w.Key("pid").Int(1);
    w.Key("tid").Int(e.tid);
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.Take();
}

void TraceRecorder::Clear() {
  MutexLock registry_lock(registry_mutex_);
  for (Ring* ring : rings_) {
    MutexLock ring_lock(ring->mutex);
    ring->next = 0;
    ring->count = 0;
  }
}

}  // namespace obs
}  // namespace lmerge
