#include "obs/latency.h"

namespace lmerge {
namespace obs {

namespace {
thread_local IngestStamp t_current_stamp;
}  // namespace

void SetCurrentIngestStamp(const IngestStamp& stamp) {
  t_current_stamp = stamp;
}

const IngestStamp& CurrentIngestStamp() { return t_current_stamp; }

}  // namespace obs
}  // namespace lmerge
