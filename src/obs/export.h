// Exporters that publish state owned by other subsystems into the metrics
// registry at snapshot time.
//
// The payload store keeps its own counters (common/payload_store.h Stats);
// rather than double-bookkeeping on the intern hot path, the obs layer
// re-derives the registry view from the store on demand.  Byte accounting
// goes through SharedPayloadLedger::AddRefIdentity — the same path
// `lmerge_inspect --payload-stats` uses — so the two reports agree by
// construction.

#ifndef LMERGE_OBS_EXPORT_H_
#define LMERGE_OBS_EXPORT_H_

namespace lmerge {

class PayloadStore;

namespace obs {

class MetricsRegistry;

// Publishes the store's stats as gauges under "payload." (entries,
// live_refs, payload_bytes, intern_calls, hits, evictions, bytes_saved,
// bytes_shared).  `bytes_shared` is ledger-derived: the bytes the live refs
// would occupy if deep-copied, minus the bytes actually held.
void ExportPayloadStoreMetrics(const PayloadStore& store,
                               MetricsRegistry* registry);

}  // namespace obs
}  // namespace lmerge

#endif  // LMERGE_OBS_EXPORT_H_
