#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/json.h"
#include "common/serde.h"
#include "common/status.h"

namespace lmerge {
namespace obs {

const char* InstrumentKindName(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return "counter";
    case InstrumentKind::kGauge:
      return "gauge";
    case InstrumentKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

namespace internal {

std::atomic<bool> g_metrics_enabled{true};

namespace {
std::atomic<int> g_next_shard{0};
}  // namespace

int ThreadShard() {
  thread_local const int shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

int HistogramBucketIndex(int64_t value) {
  const uint64_t u = static_cast<uint64_t>(value < 0 ? 0 : value);
  if (u < 8) return static_cast<int>(u);
  // Highest set bit >= 3 here.  The octave [2^msb, 2^(msb+1)) is split into
  // 4 linear sub-buckets selected by the two bits below the msb.
  const int msb = 63 - __builtin_clzll(u);
  const int sub = static_cast<int>((u >> (msb - kHistogramSubBits)) &
                                   ((1 << kHistogramSubBits) - 1));
  const int index = (msb - kHistogramSubBits + 1) * (1 << kHistogramSubBits) +
                    sub;
  return index < kHistogramBuckets ? index : kHistogramBuckets - 1;
}

int64_t HistogramBucketLowerBound(int index) {
  LM_CHECK(index >= 0 && index < kHistogramBuckets);
  if (index < 8) return index;
  const int octave = index / (1 << kHistogramSubBits) - 1;
  const int sub = index % (1 << kHistogramSubBits);
  return static_cast<int64_t>(
      (static_cast<uint64_t>((1 << kHistogramSubBits) + sub)) << octave);
}

int64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target observation, 1-based.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(p / 100.0 * static_cast<double>(count) + 0.5));
  int64_t seen = 0;
  for (const auto& [bound, n] : buckets) {
    seen += n;
    if (seen >= rank) {
      // Clamp to the observed extremes so p0/p100 are exact.
      return std::min(std::max(bound, min), max);
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  // Merge two sorted sparse bucket lists.
  std::vector<std::pair<int64_t, int64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t i = 0, j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j == other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i == buckets.size() ||
               other.buckets[j].first < buckets[i].first) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first,
                          buckets[i].second + other.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  int64_t totals[kHistogramBuckets] = {};
  int64_t min_seen = INT64_MAX;
  int64_t max_seen = INT64_MIN;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      totals[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    min_seen = std::min(min_seen, shard.min.load(std::memory_order_relaxed));
    max_seen = std::max(max_seen, shard.max.load(std::memory_order_relaxed));
  }
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (totals[b] == 0) continue;
    snap.count += totals[b];
    snap.buckets.emplace_back(HistogramBucketLowerBound(b), totals[b]);
  }
  if (snap.count != 0) {
    // The exact extremes can lag the bucket totals under concurrent writers;
    // fall back to bucket bounds if a racing Record hasn't stored them yet.
    snap.min = min_seen == INT64_MAX ? snap.buckets.front().first : min_seen;
    snap.max = max_seen == INT64_MIN ? snap.buckets.back().first : max_seen;
  }
  return snap;
}

const MetricValue* MetricsSnapshot::Find(const std::string& name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const MetricValue& e, const std::string& n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

int64_t MetricsSnapshot::Value(const std::string& name,
                               int64_t fallback) const {
  const MetricValue* entry = Find(name);
  return entry == nullptr ? fallback : entry->value;
}

std::vector<const MetricValue*> MetricsSnapshot::WithPrefix(
    const std::string& prefix) const {
  std::vector<const MetricValue*> out;
  for (const MetricValue& entry : entries) {
    if (entry.name.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(&entry);
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  if (captured_wall_ms != 0 || captured_mono_us != 0) {
    w.Key("snapshot.captured_wall_ms").Int(captured_wall_ms);
    w.Key("snapshot.captured_mono_us").Int(captured_mono_us);
  }
  for (const MetricValue& entry : entries) {
    w.Key(entry.name);
    if (entry.kind == InstrumentKind::kHistogram) {
      const HistogramSnapshot& h = entry.histogram;
      w.BeginObject();
      w.Key("count").Int(h.count);
      w.Key("sum").Int(h.sum);
      w.Key("min").Int(h.min);
      w.Key("max").Int(h.max);
      w.Key("mean").Double(h.Mean());
      w.Key("p50").Int(h.Percentile(50));
      w.Key("p90").Int(h.Percentile(90));
      w.Key("p99").Int(h.Percentile(99));
      w.EndObject();
    } else {
      w.Int(entry.value);
    }
  }
  w.EndObject();
  return w.Take();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  Instrument& inst = instruments_[name];
  if (inst.counter == nullptr) {
    LM_CHECK(inst.gauge == nullptr && inst.histogram == nullptr);
    inst.kind = InstrumentKind::kCounter;
    inst.counter = std::make_unique<Counter>();
  }
  return inst.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  Instrument& inst = instruments_[name];
  if (inst.gauge == nullptr) {
    LM_CHECK(inst.counter == nullptr && inst.histogram == nullptr);
    inst.kind = InstrumentKind::kGauge;
    inst.gauge = std::make_unique<Gauge>();
  }
  // A gauge-backed instrument registered via GetExportedCounter is a
  // *counter* to every consumer; asking for it as a gauge is kind drift.
  LM_CHECK(inst.kind == InstrumentKind::kGauge);
  return inst.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mutex_);
  Instrument& inst = instruments_[name];
  if (inst.histogram == nullptr) {
    LM_CHECK(inst.counter == nullptr && inst.gauge == nullptr);
    inst.kind = InstrumentKind::kHistogram;
    inst.histogram = std::make_unique<Histogram>();
  }
  return inst.histogram.get();
}

Gauge* MetricsRegistry::GetExportedCounter(const std::string& name) {
  MutexLock lock(mutex_);
  Instrument& inst = instruments_[name];
  if (inst.gauge == nullptr) {
    LM_CHECK(inst.counter == nullptr && inst.histogram == nullptr);
    inst.kind = InstrumentKind::kCounter;
    inst.gauge = std::make_unique<Gauge>();
  }
  // A plain-gauge registration under the same name is still kind drift.
  LM_CHECK(inst.kind == InstrumentKind::kCounter);
  return inst.gauge.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.captured_wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  snap.captured_mono_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  snap.entries.reserve(instruments_.size());
  // std::map iterates in name order, which is the snapshot's sort contract.
  for (const auto& [name, inst] : instruments_) {
    MetricValue value;
    value.name = name;
    value.kind = inst.kind;
    switch (inst.kind) {
      case InstrumentKind::kCounter:
        // Exported counters (GetExportedCounter) are gauge-backed.
        value.value =
            inst.counter != nullptr ? inst.counter->Sum() : inst.gauge->Get();
        break;
      case InstrumentKind::kGauge:
        value.value = inst.gauge->Get();
        break;
      case InstrumentKind::kHistogram:
        value.histogram = inst.histogram->Snapshot();
        value.value = value.histogram.count;
        break;
    }
    snap.entries.push_back(std::move(value));
  }
  return snap;
}

// Wire form: u32 entry count, then per entry: string name, u8 kind,
// i64 value, and for histograms: i64 count/sum/min/max + u32 bucket count +
// (i64 bound, i64 count) pairs.
void EncodeMetricsSnapshot(const MetricsSnapshot& snapshot, Encoder* encoder) {
  encoder->WriteU32(static_cast<uint32_t>(snapshot.entries.size()));
  for (const MetricValue& entry : snapshot.entries) {
    encoder->WriteString(entry.name);
    encoder->WriteU8(static_cast<uint8_t>(entry.kind));
    encoder->WriteI64(entry.value);
    if (entry.kind != InstrumentKind::kHistogram) continue;
    const HistogramSnapshot& h = entry.histogram;
    encoder->WriteI64(h.count);
    encoder->WriteI64(h.sum);
    encoder->WriteI64(h.min);
    encoder->WriteI64(h.max);
    encoder->WriteU32(static_cast<uint32_t>(h.buckets.size()));
    for (const auto& [bound, n] : h.buckets) {
      encoder->WriteI64(bound);
      encoder->WriteI64(n);
    }
  }
}

Status DecodeMetricsSnapshot(Decoder* decoder, MetricsSnapshot* snapshot) {
  snapshot->entries.clear();
  uint32_t n = 0;
  Status s = decoder->ReadU32(&n);
  if (!s.ok()) return s;
  // Each entry is at least name-len(4) + kind(1) + value(8) bytes: bound the
  // claimed count by what the buffer could possibly hold.
  if (n > decoder->remaining() / 13 + 1) {
    return Status::InvalidArgument("metrics snapshot entry count too large");
  }
  snapshot->entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MetricValue entry;
    s = decoder->ReadString(&entry.name);
    if (!s.ok()) return s;
    uint8_t kind = 0;
    s = decoder->ReadU8(&kind);
    if (!s.ok()) return s;
    if (kind > static_cast<uint8_t>(InstrumentKind::kHistogram)) {
      return Status::InvalidArgument("metrics snapshot: bad instrument kind");
    }
    entry.kind = static_cast<InstrumentKind>(kind);
    s = decoder->ReadI64(&entry.value);
    if (!s.ok()) return s;
    if (entry.kind == InstrumentKind::kHistogram) {
      HistogramSnapshot& h = entry.histogram;
      if (!(s = decoder->ReadI64(&h.count)).ok()) return s;
      if (!(s = decoder->ReadI64(&h.sum)).ok()) return s;
      if (!(s = decoder->ReadI64(&h.min)).ok()) return s;
      if (!(s = decoder->ReadI64(&h.max)).ok()) return s;
      uint32_t nb = 0;
      if (!(s = decoder->ReadU32(&nb)).ok()) return s;
      if (nb > decoder->remaining() / 16) {
        return Status::InvalidArgument(
            "metrics snapshot: bucket count too large");
      }
      h.buckets.reserve(nb);
      for (uint32_t b = 0; b < nb; ++b) {
        int64_t bound = 0, cnt = 0;
        if (!(s = decoder->ReadI64(&bound)).ok()) return s;
        if (!(s = decoder->ReadI64(&cnt)).ok()) return s;
        h.buckets.emplace_back(bound, cnt);
      }
    }
    snapshot->entries.push_back(std::move(entry));
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace lmerge
