// Scoped-span trace recorder with per-thread ring buffers, dumped as Chrome
// trace_event JSON (load the file in Perfetto / chrome://tracing).
//
// A span is recorded at scope exit as a complete "X" event: {name, category,
// start microseconds, duration}.  Each thread appends to its own fixed-size
// ring buffer, so recording is lock-free with respect to other threads; when
// a ring wraps, the oldest spans are overwritten (tracing keeps the *recent*
// window, which is what you want when a stall finally happens after an hour
// of traffic).
//
// Two gates, cheapest first:
//   - Compile-time: build with -DLMERGE_TRACING_ENABLED=0 and
//     LMERGE_TRACE_SPAN compiles to nothing.
//   - Runtime: TraceRecorder::Global().set_enabled(false) (the default) makes
//     an enabled build's span constructor one relaxed load + branch.
//
// Span names and categories must be string literals (or otherwise outlive
// the recorder): events store the pointers, not copies.

#ifndef LMERGE_OBS_TRACE_H_
#define LMERGE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#ifndef LMERGE_TRACING_ENABLED
#define LMERGE_TRACING_ENABLED 1
#endif

namespace lmerge {
namespace obs {

struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  int64_t start_us = 0;  // steady-clock microseconds (process-relative)
  int64_t duration_us = 0;
  int tid = 0;  // recorder-assigned dense thread id
};

// Spans retained per thread before the ring wraps.
inline constexpr size_t kTraceRingCapacity = 1 << 14;

class TraceRecorder {
 public:
  static TraceRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Appends one complete span for the calling thread.
  void Record(const char* name, const char* category, int64_t start_us,
              int64_t duration_us);

  // Microseconds since the recorder was created (steady clock).
  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  // All retained events from every thread's ring, in one Chrome trace_event
  // JSON document ({"traceEvents":[...]}).  Safe to call while other threads
  // record; spans written during the dump may or may not appear.
  std::string DumpChromeTraceJson() const;

  // Drops all retained events (rings stay registered).
  void Clear();

  // Total spans recorded since creation (monotone, includes overwritten).
  int64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

 private:
  struct Ring {
    explicit Ring(int tid_in) : tid(tid_in) {
      events.resize(kTraceRingCapacity);
    }
    // Guards the ring against a concurrent dump; uncontended in steady
    // state, so the fast path is one cheap lock on the thread's own mutex.
    Mutex mutex;
    std::vector<TraceEvent> events LM_GUARDED_BY(mutex);
    size_t next LM_GUARDED_BY(mutex) = 0;
    size_t count LM_GUARDED_BY(mutex) = 0;  // saturates at capacity
    const int tid;  // immutable after construction
  };

  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  Ring* RingForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> recorded_{0};
  const std::chrono::steady_clock::time_point epoch_;

  mutable Mutex registry_mutex_;
  // Owned; leaked with the recorder.  The vector is guarded; each pointed-to
  // Ring carries its own lock.
  std::vector<Ring*> rings_ LM_GUARDED_BY(registry_mutex_);
  int next_tid_ LM_GUARDED_BY(registry_mutex_) = 0;
};

// RAII span: measures construction→destruction and records it.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : name_(name), category_(category) {
    TraceRecorder& recorder = TraceRecorder::Global();
    if (recorder.enabled()) {
      start_us_ = recorder.NowMicros();
    }
  }
  ~TraceSpan() {
    if (start_us_ < 0) return;
    TraceRecorder& recorder = TraceRecorder::Global();
    if (!recorder.enabled()) return;
    recorder.Record(name_, category_, start_us_,
                    recorder.NowMicros() - start_us_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  int64_t start_us_ = -1;
};

#if LMERGE_TRACING_ENABLED
#define LMERGE_TRACE_CONCAT_INNER(a, b) a##b
#define LMERGE_TRACE_CONCAT(a, b) LMERGE_TRACE_CONCAT_INNER(a, b)
// Records a span covering the rest of the enclosing scope.  `name` and
// `category` must be string literals.
#define LMERGE_TRACE_SPAN(name, category)                 \
  ::lmerge::obs::TraceSpan LMERGE_TRACE_CONCAT(           \
      lmerge_trace_span_, __LINE__)((name), (category))
#else
#define LMERGE_TRACE_SPAN(name, category) \
  do {                                    \
  } while (false)
#endif

}  // namespace obs
}  // namespace lmerge

#endif  // LMERGE_OBS_TRACE_H_
