#include "net/server.h"

#include <cstdio>
#include <thread>

namespace lmerge::net {

MergeServer::MergeServer(MergeServerOptions options)
    : options_(std::move(options)),
      fan_out_(this),
      met_properties_(StreamProperties::Strongest()) {}

MergeServer::~MergeServer() = default;

void MergeServer::FanOutSink::OnElement(const StreamElement& element) {
  // Runs inside the merge delivery path: the server lock is already held by
  // the OnBytes call that triggered the merge output.
  std::string frame;
  for (auto& [id, session] : server_->sessions_) {
    if (session.state != SessionState::kSubscriber) continue;
    if (frame.empty()) frame = EncodeElementFrame(element);
    if (!session.connection->Send(frame).ok()) {
      // A dead subscriber must not take the merge down; the transport loop
      // will observe the broken connection and call OnDisconnect.
      session.state = SessionState::kClosed;
      session.connection->Close();
    }
  }
  for (ElementSink* sink : server_->output_sinks_) sink->OnElement(element);
}

int MergeServer::OnConnect(Connection* connection) {
  LM_CHECK(connection != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = next_session_id_++;
  Session& session = sessions_[id];
  session.connection = connection;
  session.name = connection->peer();
  if (options_.verbose) Log(session, "connected");
  return id;
}

void MergeServer::OnDisconnect(int session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  CloseSession(it->second, "peer disconnected", /*send_bye=*/false);
  sessions_.erase(it);
}

Status MergeServer::OnBytes(int session_id, const char* data, size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  Session& session = it->second;
  if (session.state == SessionState::kClosed) {
    return Status::FailedPrecondition("session already closed");
  }
  Status status = session.assembler.Feed(data, size);
  Frame frame;
  while (status.ok() && session.assembler.Next(&frame)) {
    status = HandleFrame(session, frame);
    if (session.state == SessionState::kClosed) break;
  }
  if (status.ok() && session.assembler.poisoned()) {
    status = Status::InvalidArgument("malformed frame stream");
  }
  if (!status.ok()) {
    CloseSession(session, status.ToString(), /*send_bye=*/true);
  }
  return status;
}

Status MergeServer::HandleFrame(Session& session, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      if (session.state != SessionState::kAwaitHello) {
        return Status::FailedPrecondition("duplicate HELLO");
      }
      HelloMessage hello;
      Status status = DecodeHello(frame.payload, &hello);
      if (!status.ok()) return status;
      return HandleHello(session, hello);
    }
    case FrameType::kElement: {
      if (session.state != SessionState::kPublisher) {
        return Status::FailedPrecondition(
            "ELEMENT from a non-publisher session");
      }
      StreamElement element;
      Status status = DecodeElementPayload(frame.payload, &element);
      if (!status.ok()) return status;
      return DeliverElement(session, element);
    }
    case FrameType::kElements: {
      if (session.state != SessionState::kPublisher) {
        return Status::FailedPrecondition(
            "ELEMENTS from a non-publisher session");
      }
      ElementSequence elements;
      Status status = DecodeElementsPayload(frame.payload, &elements);
      if (!status.ok()) return status;
      for (const StreamElement& element : elements) {
        status = DeliverElement(session, element);
        if (!status.ok()) return status;
      }
      return Status::Ok();
    }
    case FrameType::kBye: {
      ByeMessage bye;
      (void)DecodeBye(frame.payload, &bye);
      CloseSession(session, bye.reason.empty() ? "bye" : bye.reason,
                   /*send_bye=*/false);
      return Status::Ok();
    }
    case FrameType::kWelcome:
    case FrameType::kFeedback:
      return Status::FailedPrecondition(
          std::string("client sent server-only frame ") +
          FrameTypeName(frame.type));
  }
  return Status::Internal("unhandled frame type");
}

Status MergeServer::EnsureAlgorithm(const StreamProperties& first) {
  if (algorithm_ != nullptr) return Status::Ok();
  const MergeVariant variant =
      options_.variant.has_value()
          ? *options_.variant
          : VariantForCase(ChooseAlgorithm(first));
  algorithm_ =
      CreateMergeAlgorithm(variant, /*num_streams=*/1, &fan_out_,
                           options_.policy);
  merger_ = std::make_unique<ConcurrentMerger>(algorithm_.get());
  met_properties_ = first;
  if (options_.verbose) {
    std::fprintf(stderr, "[lmerge_served] algorithm %s (case %s) selected\n",
                 MergeVariantName(variant),
                 AlgorithmCaseName(algorithm_->algorithm_case()));
  }
  return Status::Ok();
}

Status MergeServer::HandleHello(Session& session, const HelloMessage& hello) {
  if (hello.version != kProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(hello.version));
  }
  if (!hello.peer_name.empty()) session.name = hello.peer_name;
  WelcomeMessage welcome;
  if (hello.role == PeerRole::kSubscriber) {
    session.state = SessionState::kSubscriber;
    welcome.stream_id = -1;
  } else {
    Status status = EnsureAlgorithm(hello.properties);
    if (!status.ok()) return status;
    if (publishers_seen_ == 0) {
      // First publisher occupies the stream the algorithm was born with.
      session.stream_id = 0;
    } else {
      // A weaker replica joining later must not silently break the selected
      // algorithm's correctness preconditions (Sec. IV-G): reject it unless
      // the operator forced a variant explicitly.
      const StreamProperties met =
          met_properties_.Meet(hello.properties);
      if (!options_.variant.has_value() &&
          ChooseAlgorithm(met) > algorithm_->algorithm_case()) {
        return Status::FailedPrecondition(
            std::string("stream properties require algorithm case ") +
            AlgorithmCaseName(ChooseAlgorithm(met)) +
            " but the server selected " +
            AlgorithmCaseName(algorithm_->algorithm_case()));
      }
      met_properties_ = met;
      session.stream_id = merger_->AddStream();
    }
    session.state = SessionState::kPublisher;
    session.declared = hello.properties;
    session.join_time = hello.join_time;
    session.joined = merger_->max_stable() >= hello.join_time;
    ++publishers_seen_;
    ++active_publishers_;
    welcome.stream_id = session.stream_id;
  }
  welcome.algorithm_case =
      algorithm_ == nullptr
          ? kUnknownAlgorithmCase
          : static_cast<uint8_t>(algorithm_->algorithm_case());
  welcome.output_stable =
      merger_ == nullptr ? kMinTimestamp : merger_->max_stable();
  if (options_.verbose) {
    Log(session, std::string(PeerRoleName(hello.role)) + " hello, stream " +
                     std::to_string(welcome.stream_id) + ", join time " +
                     TimestampToString(session.join_time));
  }
  return session.connection->Send(EncodeWelcomeFrame(welcome));
}

Status MergeServer::DeliverElement(Session& session,
                                   const StreamElement& element) {
  // Progress watermarks feed the feedback policy even for held-back
  // elements.
  session.stats.Observe(element);
  if (element.is_stable() && !session.joined) {
    // The joining-stream protocol (Sec. V-B): a stream that declared join
    // time t may miss events that died before t, so until the output stable
    // point reaches t its stable() elements must not drive the output
    // stable point (they could freeze the absence of those events).
    session.joined = merger_->max_stable() >= session.join_time;
    if (!session.joined) return Status::Ok();
  }
  const Status status = merger_->TryDeliver(session.stream_id, element);
  if (!status.ok()) return status;
  const Timestamp stable = merger_->max_stable();
  if (stable > last_output_stable_) {
    last_output_stable_ = stable;
    AfterStableAdvance();
  }
  return Status::Ok();
}

void MergeServer::AfterStableAdvance() {
  const Timestamp stable = last_output_stable_;
  for (auto& [id, session] : sessions_) {
    if (session.state != SessionState::kPublisher) continue;
    if (!session.joined && stable >= session.join_time) {
      session.joined = true;
      if (options_.verbose) Log(session, "joined");
    }
    if (options_.feedback_enabled &&
        session.stats.stable_point() < stable &&
        session.last_feedback < stable) {
      // This publisher is behind the merged output: everything it would
      // send about events dead before `stable` will be dropped anyway, so
      // tell it to fast-forward (Sec. V-D).
      FeedbackMessage feedback;
      feedback.horizon = stable;
      if (session.connection->Send(EncodeFeedbackFrame(feedback)).ok()) {
        session.last_feedback = stable;
      }
    }
  }
}

void MergeServer::CloseSession(Session& session, const std::string& reason,
                               bool send_bye) {
  if (session.state == SessionState::kClosed) return;
  if (session.state == SessionState::kPublisher) {
    merger_->RemoveStream(session.stream_id);
    --active_publishers_;
  }
  if (send_bye) {
    ByeMessage bye;
    bye.reason = reason;
    (void)session.connection->Send(EncodeByeFrame(bye));
  }
  if (options_.verbose) Log(session, "closed: " + reason);
  session.state = SessionState::kClosed;
}

void MergeServer::AddOutputSink(ElementSink* sink) {
  LM_CHECK(sink != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  output_sinks_.push_back(sink);
}

Timestamp MergeServer::output_stable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return merger_ == nullptr ? kMinTimestamp : merger_->max_stable();
}

int MergeServer::active_publishers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_publishers_;
}

int MergeServer::publishers_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return publishers_seen_;
}

int MergeServer::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const auto& [id, session] : sessions_) {
    n += session.state == SessionState::kSubscriber ? 1 : 0;
  }
  return n;
}

bool MergeServer::drained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return publishers_seen_ > 0 && active_publishers_ == 0;
}

MergeOutputStats MergeServer::merge_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return algorithm_ == nullptr ? MergeOutputStats() : algorithm_->stats();
}

const char* MergeServer::algorithm_name() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return algorithm_ == nullptr
             ? "none"
             : AlgorithmCaseName(algorithm_->algorithm_case());
}

void MergeServer::Log(const Session& session,
                      const std::string& message) const {
  std::fprintf(stderr, "[lmerge_served] %s: %s\n", session.name.c_str(),
               message.c_str());
}

void ServeLoop(Listener* listener, MergeServer* server,
               const ServeLoopOptions& options) {
  std::vector<std::unique_ptr<Connection>> connections;
  std::vector<std::thread> threads;
  while (true) {
    std::unique_ptr<Connection> accepted;
    if (!listener->Accept(&accepted).ok()) break;
    Connection* connection = accepted.get();
    connections.push_back(std::move(accepted));
    threads.emplace_back([server, listener, connection, options] {
      const int id = server->OnConnect(connection);
      char buffer[64 * 1024];
      while (true) {
        size_t received = 0;
        if (!connection->Receive(buffer, sizeof(buffer), &received).ok()) {
          break;
        }
        if (received == 0) break;  // EOF
        if (!server->OnBytes(id, buffer, received).ok()) break;
      }
      server->OnDisconnect(id);
      connection->Close();
      if (options.drain_publishers > 0 &&
          server->publishers_seen() >= options.drain_publishers &&
          server->active_publishers() == 0) {
        // Service drained: unblock the accept loop so ServeLoop returns.
        listener->Close();
      }
    });
  }
  // Wake sessions still blocked in Receive (e.g. subscribers), then drain.
  for (auto& connection : connections) connection->Close();
  for (auto& thread : threads) thread.join();
}

}  // namespace lmerge::net
