#include "net/server.h"

#include <sys/epoll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <span>
#include <thread>
#include <utility>

#include "common/payload_store.h"
#include "engine/partitioned.h"
#include "net/event_loop.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace lmerge::net {

MergeServer::MergeServer(MergeServerOptions options)
    : options_(std::move(options)),
      fan_out_(this),
      met_properties_(StreamProperties::Strongest()) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  rx_bytes_metric_ = registry.GetCounter("net.rx.bytes");
  rx_frames_metric_ = registry.GetCounter("net.rx.frames");
  tx_fanout_frames_metric_ = registry.GetCounter("net.tx.fanout.frames");
  tx_fanout_bytes_metric_ = registry.GetCounter("net.tx.fanout.bytes");
  tx_feedback_metric_ = registry.GetCounter("net.tx.feedback.frames");
  decode_errors_metric_ = registry.GetCounter("net.decode_errors");
  stats_requests_metric_ = registry.GetCounter("net.stats_requests");
  checkpoint_requests_metric_ =
      registry.GetCounter("net.checkpoint.requests");
  checkpoint_tx_bytes_metric_ = registry.GetCounter("net.checkpoint.tx.bytes");
  checkpoint_tx_chunks_metric_ =
      registry.GetCounter("net.checkpoint.tx.chunks");
  fanout_encoded_bytes_metric_ =
      registry.GetCounter("net.fanout.encoded_bytes");
  fanout_encoded_frames_metric_ =
      registry.GetCounter("net.fanout.encoded_frames");
  fanout_batches_metric_ = registry.GetCounter("net.fanout.batches");
  merge_to_fanout_metric_ =
      registry.GetHistogram("latency.merge_to_fanout_us");
  fanout_us_metric_ = registry.GetHistogram("latency.fanout_us");
  publish_to_fanout_metric_ =
      registry.GetHistogram("latency.publish_to_fanout_us");
}

MergeServer::~MergeServer() {
  // Drain and join the merge thread while the fan-out registry (and the
  // sessions that own its connections) is still alive; the default member
  // destruction order would tear sessions_ down first.
  merger_.reset();
}

void MergeServer::FanOutSink::OnElement(const StreamElement& element) {
  // Merger-output-thread context; the buffer is thread-local to it.  The
  // merger's after_batch hook flushes at every batch boundary — this size
  // trip only bounds memory when one ProcessBatch emits a huge output.
  if (batch_.empty() && obs::MetricsRegistry::enabled()) {
    first_append_us_ = obs::MonotonicMicros();
  }
  // Fold the producing thread's current batch stamp; always, so the origin
  // keeps flowing to v5 subscribers even with metrics off.
  batch_stamp_.FoldOldest(obs::CurrentIngestStamp());
  batch_.push_back(element);
  if (batch_.size() >= server_->options_.max_batch) Flush();
}

void MergeServer::FanOutSink::Flush() {
  // Only the leaf fanout_mutex_ may be taken here: a session thread blocked
  // on ring backpressure holds the server lock, and it unblocks only if
  // this thread keeps draining.
  if (batch_.empty()) return;
  LMERGE_TRACE_SPAN("fanout", "net");
  MergeServer* server = server_;
  const bool timed = obs::MetricsRegistry::enabled();
  int64_t flush_start = 0;
  if (timed) {
    flush_start = obs::MonotonicMicros();
    if (first_append_us_ != 0) {
      // Age of the oldest buffered element: how long merged output sat in
      // this buffer before the flush.
      server->merge_to_fanout_metric_->Record(flush_start - first_append_us_);
    }
  }
  {
    MutexLock lock(server->fanout_mutex_);
    server->FanOutBatchLocked(batch_, batch_stamp_.origin_us);
  }
  if (timed) {
    const int64_t flush_end = obs::MonotonicMicros();
    server->fanout_us_metric_->Record(flush_end - flush_start);
    if (batch_stamp_.origin_us != 0) {
      // End-to-end inside the server: publisher serialization to fan-out
      // completion.  Same-host clocks only (obs/latency.h).
      const int64_t e2e = flush_end - batch_stamp_.origin_us;
      server->publish_to_fanout_metric_->Record(e2e > 0 ? e2e : 0);
    }
  }
  batch_.clear();
  batch_stamp_ = obs::IngestStamp();
  first_append_us_ = 0;
}

void MergeServer::FanOutBatchLocked(const ElementSequence& batch,
                                    int64_t origin_us) {
  for (ElementSink* sink : output_sinks_) {
    for (const StreamElement& element : batch) sink->OnElement(element);
  }
  if (subscribers_.empty()) return;
  fanout_batches_metric_->Increment();
  // Serialize once per protocol class, share by refcount: every v1
  // subscriber pins the same inline buffer, every v2..v4 subscriber the
  // same dictionary buffer, every v5+ subscriber the same stamped
  // dictionary buffer.  The two dictionary classes share ONE intern pass
  // (EncodeDictBatchPartsLocked) — only the final frame assembly differs —
  // so encode cost stays flat in subscriber count and the v5 stamp costs
  // eight bytes, not a second encoding.
  std::shared_ptr<const std::string> inline_frame;
  std::shared_ptr<const std::string> dict_frame;
  std::shared_ptr<const std::string> dict_frame_v5;
  bool parts_built = false;
  DictBatchParts parts;
  for (auto it = subscribers_.begin(); it != subscribers_.end();) {
    std::shared_ptr<const std::string> frame;
    if (it->version >= kPayloadDictVersion) {
      if (!parts_built) {
        parts = EncodeDictBatchPartsLocked(batch);
        parts_built = true;
      }
      std::shared_ptr<const std::string>& slot =
          it->version >= kLatencyVersion ? dict_frame_v5 : dict_frame;
      if (slot == nullptr) {
        std::string body = parts.body;
        if (it->version >= kLatencyVersion) {
          Encoder stamp;
          stamp.WriteI64(origin_us);
          body += stamp.TakeBytes();
        }
        auto built = std::make_shared<std::string>(parts.defs);
        AppendFrame(FrameType::kElementsDict, body, built.get());
        slot = std::move(built);
        fanout_encoded_frames_metric_->Increment();
        fanout_encoded_bytes_metric_->Add(static_cast<int64_t>(slot->size()));
      }
      frame = slot;
    } else {
      if (inline_frame == nullptr) {
        inline_frame = std::make_shared<const std::string>(
            batch.size() == 1 ? EncodeElementFrame(batch[0])
                              : EncodeElementsFrame(batch));
        fanout_encoded_frames_metric_->Increment();
        fanout_encoded_bytes_metric_->Add(
            static_cast<int64_t>(inline_frame->size()));
      }
      frame = inline_frame;
    }
    const size_t frame_bytes = frame->size();
    const Status sent = it->connection->SendShared(std::move(frame));
    if (sent.ok()) {
      tx_fanout_frames_metric_->Increment();
      tx_fanout_bytes_metric_->Add(static_cast<int64_t>(frame_bytes));
      it->elements_sent += static_cast<int64_t>(batch.size());
      ++it;
    } else {
      // A dead (or slow-consumer-disconnected) subscriber must not take
      // the merge down: unregister it here; the transport loop observes
      // the closed connection and the eventual OnDisconnect finds it
      // already gone from the registry.
      it->connection->Close();
      it = subscribers_.erase(it);
    }
  }
}

DictBatchParts MergeServer::EncodeDictBatchPartsLocked(
    const ElementSequence& batch) {
  if (broadcast_dict_ == nullptr) {
    broadcast_dict_ =
        std::make_unique<PayloadDictEncoder>(options_.dict_capacity);
  }
  DictBatchParts parts = EncodeDictBatchParts(batch, broadcast_dict_.get());
  // The tape records every def ever broadcast, in order: replaying it
  // into a fresh decoder of the same capacity reproduces the broadcast
  // dictionary state exactly (including evictions), which is what makes
  // a late v2+ joiner decodable against the shared id space.
  defs_tape_ += parts.defs;
  return parts;
}

int MergeServer::OnConnect(Connection* connection) {
  LM_CHECK(connection != nullptr);
  MutexLock lock(mutex_);
  const int id = next_session_id_++;
  Session& session = sessions_[id];
  session.id = id;
  session.connection = connection;
  session.name = connection->peer();
  if (options_.verbose) Log(session, "connected");
  return id;
}

void MergeServer::OnDisconnect(int session_id) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  CloseSessionLocked(it->second, "peer disconnected", /*send_bye=*/false);
  sessions_.erase(it);
}

Status MergeServer::OnBytes(int session_id, const char* data, size_t size) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  Session& session = it->second;
  if (session.state == SessionState::kClosed) {
    return Status::FailedPrecondition("session already closed");
  }
  rx_bytes_metric_->Add(static_cast<int64_t>(size));
  // Stamp receive time once per socket read (one steady-clock call), before
  // frame reassembly: every batch decoded from these bytes is charged this
  // rx instant.  Unconditional — v4 peers still get rx-relative latencies.
  session.last_rx_us = obs::MonotonicMicros();
  Status status = session.assembler.Feed(data, size);
  Frame frame;
  while (status.ok() && session.assembler.Next(&frame)) {
    rx_frames_metric_->Increment();
    status = HandleFrameLocked(session, frame);
    if (session.state == SessionState::kClosed) break;
  }
  if (status.ok() && session.assembler.poisoned()) {
    status = Status::InvalidArgument("malformed frame stream");
  }
  if (!status.ok()) {
    decode_errors_metric_->Increment();
    CloseSessionLocked(session, status.ToString(), /*send_bye=*/true);
  }
  return status;
}

Status MergeServer::HandleFrameLocked(Session& session, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      if (session.state != SessionState::kAwaitHello) {
        return Status::FailedPrecondition("duplicate HELLO");
      }
      HelloMessage hello;
      Status status = DecodeHello(frame.payload, &hello);
      if (!status.ok()) return status;
      return HandleHelloLocked(session, hello);
    }
    case FrameType::kElement: {
      if (session.state != SessionState::kPublisher) {
        return Status::FailedPrecondition(
            "ELEMENT from a non-publisher session");
      }
      StreamElement element;
      Status status = DecodeElementPayload(frame.payload, &element);
      if (!status.ok()) return status;
      return DeliverElementLocked(session, element);
    }
    case FrameType::kElements: {
      if (session.state != SessionState::kPublisher) {
        return Status::FailedPrecondition(
            "ELEMENTS from a non-publisher session");
      }
      ElementSequence elements;
      int64_t origin_us = 0;
      Status status =
          session.version >= kLatencyVersion
              ? DecodeElementsPayload(frame.payload, &elements, &origin_us)
              : DecodeElementsPayload(frame.payload, &elements);
      if (!status.ok()) return status;
      return DeliverBatchLocked(session, std::move(elements), origin_us);
    }
    case FrameType::kPayloadDef: {
      if (session.state != SessionState::kPublisher) {
        return Status::FailedPrecondition(
            "PAYLOAD_DEF from a non-publisher session");
      }
      if (session.version < kPayloadDictVersion) {
        return Status::FailedPrecondition(
            "PAYLOAD_DEF on a v1-negotiated session");
      }
      PayloadDefMessage def;
      Status status = DecodePayloadDefPayload(frame.payload, &def);
      if (!status.ok()) return status;
      if (session.dict_in == nullptr) {
        session.dict_in =
            std::make_unique<PayloadDictDecoder>(options_.dict_capacity);
      }
      return session.dict_in->Define(def.id, std::move(def.payload));
    }
    case FrameType::kElementsDict: {
      if (session.state != SessionState::kPublisher) {
        return Status::FailedPrecondition(
            "ELEMENTS_DICT from a non-publisher session");
      }
      if (session.version < kPayloadDictVersion) {
        return Status::FailedPrecondition(
            "ELEMENTS_DICT on a v1-negotiated session");
      }
      if (session.dict_in == nullptr) {
        session.dict_in =
            std::make_unique<PayloadDictDecoder>(options_.dict_capacity);
      }
      ElementSequence elements;
      int64_t origin_us = 0;
      Status status =
          session.version >= kLatencyVersion
              ? DecodeElementsDictPayload(frame.payload, *session.dict_in,
                                          &elements, &origin_us)
              : DecodeElementsDictPayload(frame.payload, *session.dict_in,
                                          &elements);
      if (!status.ok()) return status;
      return DeliverBatchLocked(session, std::move(elements), origin_us);
    }
    case FrameType::kStatsRequest: {
      if (session.state == SessionState::kAwaitHello) {
        return Status::FailedPrecondition("STATS_REQUEST before HELLO");
      }
      if (session.version < kStatsVersion) {
        return Status::FailedPrecondition(
            "STATS_REQUEST on a pre-v3 session");
      }
      Status status = DecodeStatsRequest(frame.payload);
      if (!status.ok()) return status;
      stats_requests_metric_->Increment();
      return session.connection->Send(EncodeStatsResponseFrame(
          BuildStatsResponseLocked(), session.version));
    }
    case FrameType::kCheckpointRequest: {
      if (session.state != SessionState::kStandby) {
        return Status::FailedPrecondition(
            "CHECKPOINT_REQUEST from a non-standby session");
      }
      Status status = DecodeCheckpointRequest(frame.payload);
      if (!status.ok()) return status;
      checkpoint_requests_metric_->Increment();
      return SendCheckpointLocked(session);
    }
    case FrameType::kBye: {
      ByeMessage bye;
      // Best effort: a BYE that fails to decode just yields an empty
      // reason; the session outcome is the same either way.
      (void)DecodeBye(frame.payload, &bye);
      CloseSessionLocked(session, bye.reason.empty() ? "bye" : bye.reason,
                   /*send_bye=*/false);
      return Status::Ok();
    }
    case FrameType::kWelcome:
    case FrameType::kFeedback:
    case FrameType::kStatsResponse:
    case FrameType::kCheckpointChunk:
    case FrameType::kCutCert:
      return Status::FailedPrecondition(
          std::string("client sent server-only frame ") +
          FrameTypeName(frame.type));
  }
  return Status::Internal("unhandled frame type");
}

Status MergeServer::EnsureAlgorithmLocked(const StreamProperties& first) {
  if (merger_ != nullptr) return Status::Ok();
  const MergeVariant variant =
      options_.variant.has_value()
          ? *options_.variant
          : VariantForCase(ChooseAlgorithm(first));
  variant_ = variant;
  if (options_.merge_threads <= 1) {
    // Single-threaded path: the exact pre-partitioned pipeline (and
    // byte-identical output, see tests/net/partitioned_server_test.cc).
    algorithm_ =
        CreateMergeAlgorithm(variant, /*num_streams=*/1, &fan_out_,
                             options_.policy);
    ConcurrentMergerOptions merger_options;
    merger_options.ring_capacity = options_.ring_capacity;
    merger_options.max_batch = options_.max_batch;
    merger_options.after_batch = [this] { fan_out_.Flush(); };
    merger_ = std::make_unique<ConcurrentMerger>(algorithm_.get(),
                                                 std::move(merger_options));
  } else {
    // Partitioned path: merge_threads shard algorithms behind the
    // min-frontier aggregator.  The shard instances are owned by the
    // merger (algorithm_ stays null); every inspection goes through the
    // Merger interface.
    PartitionedMergerOptions merger_options;
    merger_options.shards = options_.merge_threads;
    merger_options.ring_capacity = options_.ring_capacity;
    merger_options.max_batch = options_.max_batch;
    merger_options.after_batch = [this] { fan_out_.Flush(); };
    const MergePolicy policy = options_.policy;
    merger_ = std::make_unique<PartitionedMerger>(
        [variant, policy](int /*shard*/, ElementSink* sink) {
          return CreateMergeAlgorithm(variant, /*num_streams=*/1, sink,
                                      policy);
        },
        &fan_out_, std::move(merger_options));
  }
  met_properties_ = first;
  if (options_.verbose) {
    std::fprintf(stderr,
                 "[lmerge_served] algorithm %s (case %s) selected, "
                 "%d merge thread(s)\n",
                 MergeVariantName(variant),
                 AlgorithmCaseName(merger_->algorithm_case()),
                 merger_->shard_count());
  }
  return Status::Ok();
}

Status MergeServer::HandleHelloLocked(Session& session, const HelloMessage& hello) {
  if (hello.version < kMinProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(hello.version));
  }
  // Negotiate down to the highest version both sides speak; the WELCOME
  // echoes it and the session sticks to that encoding from then on.
  session.version = std::min(hello.version, kProtocolVersion);
  // Quiesce before answering: WELCOME's output_stable, the joiner's join
  // decision, and a new subscriber's registration point must all reflect
  // every delivery that happened-before this HELLO.
  FlushLocked();
  if (!hello.peer_name.empty()) session.name = hello.peer_name;
  WelcomeMessage welcome;
  if (hello.role == PeerRole::kMonitor) {
    // Monitors only exchange STATS frames; old clients can never have sent
    // this role (it post-dates v3), so a pre-v3 HELLO carrying it is a
    // protocol violation rather than something to negotiate down.
    if (session.version < kStatsVersion) {
      return Status::InvalidArgument(
          "monitor role requires protocol v3");
    }
    session.state = SessionState::kMonitor;
    welcome.stream_id = -1;
  } else if (hello.role == PeerRole::kStandby) {
    // Like monitors, the standby role post-dates its version gate: a
    // pre-v4 HELLO carrying it is a protocol violation.
    if (session.version < kReplicationVersion) {
      return Status::InvalidArgument("standby role requires protocol v4");
    }
    session.state = SessionState::kStandby;
    welcome.stream_id = -1;
  } else if (hello.role == PeerRole::kSubscriber) {
    session.state = SessionState::kSubscriber;
    welcome.stream_id = -1;
  } else {
    Status status = EnsureAlgorithmLocked(hello.properties);
    if (!status.ok()) return status;
    if (publishers_seen_ == 0 && !adopted_) {
      // First publisher occupies the stream the algorithm was born with.
      session.stream_id = 0;
    } else {
      // A weaker replica joining later must not silently break the selected
      // algorithm's correctness preconditions (Sec. IV-G): reject it unless
      // the operator forced a variant explicitly.
      const StreamProperties met =
          met_properties_.Meet(hello.properties);
      if (!options_.variant.has_value() &&
          ChooseAlgorithm(met) > merger_->algorithm_case()) {
        return Status::FailedPrecondition(
            std::string("stream properties require algorithm case ") +
            AlgorithmCaseName(ChooseAlgorithm(met)) +
            " but the server selected " +
            AlgorithmCaseName(merger_->algorithm_case()));
      }
      met_properties_ = met;
      session.stream_id = merger_->AddStream();
      if (adopt_output_pending_) {
        // Standby jumpstart: this first post-restore stream carries the
        // dead primary's merged output, i.e. the continuation of the
        // snapshot's own output stream — seed its per-input views from the
        // output's (docs/REPLICATION.md), on every shard at one barrier.
        adopt_output_pending_ = false;
        const Status adopt_status =
            merger_->AdoptOutputView(session.stream_id);
        if (!adopt_status.ok()) return adopt_status;
      }
    }
    session.state = SessionState::kPublisher;
    session.declared = hello.properties;
    session.join_time = hello.join_time;
    session.joined = merger_->max_stable() >= hello.join_time;
    ++publishers_seen_;
    ++active_publishers_;
    stream_names_[session.stream_id] = session.name;
    welcome.stream_id = session.stream_id;
  }
  welcome.version = session.version;
  welcome.algorithm_case =
      merger_ == nullptr
          ? kUnknownAlgorithmCase
          : static_cast<uint8_t>(merger_->algorithm_case());
  welcome.output_stable =
      merger_ == nullptr ? kMinTimestamp : merger_->max_stable();
  if (options_.verbose) {
    Log(session, std::string(PeerRoleName(hello.role)) + " hello, stream " +
                     std::to_string(welcome.stream_id) + ", join time " +
                     TimestampToString(session.join_time));
  }
  const Status sent = session.connection->Send(EncodeWelcomeFrame(welcome));
  if (sent.ok() && (session.state == SessionState::kSubscriber ||
                    session.state == SessionState::kStandby)) {
    // Register only after the WELCOME is on the wire, so the subscriber
    // never sees merged output ahead of its handshake response.
    Subscriber subscriber;
    subscriber.session_id = session.id;
    subscriber.connection = session.connection;
    subscriber.version = session.version;
    MutexLock fanout_lock(fanout_mutex_);
    if (session.version >= kPayloadDictVersion && !defs_tape_.empty()) {
      // Catch the joiner up on the broadcast dictionary before it can see
      // a dict-coded batch referencing ids defined before it arrived.
      // Under fanout_mutex_, so no fan-out interleaves mid-replay.
      const Status replay = session.connection->Send(defs_tape_);
      if (!replay.ok()) return replay;
    }
    subscribers_.push_back(std::move(subscriber));
  }
  return sent;
}

Status MergeServer::SendCheckpointLocked(Session& session) {
  CutCertMessage cut;
  std::string blob;
  if (merger_ != nullptr) {
    // Snapshot at a barrier: every shard stands between two elements of ONE
    // cut (for merge_threads == 1 this is the familiar merge-thread call),
    // so the state, the per-input frontiers, the per-shard stable
    // frontiers, and the subscription's sent count all describe the SAME
    // cut.  The lambda is analyzed lock-free (its own function): it reaches
    // everything through captured raw pointers/copies, and the only lock it
    // takes is the leaf fanout_mutex_ — which the fan-out thread already
    // takes for every emission, never while holding another lock.
    MergeServer* server = this;
    const MergeVariant variant = variant_;
    const MergePolicy policy = options_.policy;
    const int session_id = session.id;
    merger_->CallAtBarrier([&, server, variant, policy, session_id](
                               std::span<MergeAlgorithm* const> shards) {
      for (MergeAlgorithm* shard : shards) {
        if (shard->checkpointable() == nullptr) {
          return;  // variant without snapshots
        }
      }
      cut.has_state = true;
      cut.cert.variant = variant;
      cut.cert.policy = policy;
      if (shards.size() == 1) {
        cut.cert.output_stable = shards[0]->max_stable();
      } else {
        // With the aggregator quiesced each shard's frontier equals its
        // algorithm's max_stable(); the output stable point is their min,
        // and the certificate records every frontier so a restore can
        // verify each shard individually.
        Timestamp min_stable = shards[0]->max_stable();
        cut.cert.shard_stables.reserve(shards.size());
        for (MergeAlgorithm* shard : shards) {
          cut.cert.shard_stables.push_back(shard->max_stable());
          min_stable = std::min(min_stable, shard->max_stable());
        }
        cut.cert.output_stable = min_stable;
      }
      // Per-input frontiers aggregated with the sum/min rules: the recorded
      // stable_point is the min across shards — the replay-safe frontier no
      // shard has run ahead of (core/merge_algorithm.h).
      const std::vector<PerInputStats> per_input =
          AggregateShardPerInputStats(shards);
      cut.cert.inputs.reserve(per_input.size());
      for (size_t s = 0; s < per_input.size(); ++s) {
        replica::CutInputState in;
        in.stream_id = static_cast<int32_t>(s);
        in.active = shards[0]->stream_active(static_cast<int>(s));
        in.stable_point = per_input[s].stable_point;
        in.elements_in = per_input[s].elements_in();
        cut.cert.inputs.push_back(in);
      }
      {
        MutexLock fanout_lock(server->fanout_mutex_);
        for (const Subscriber& subscriber : server->subscribers_) {
          if (subscriber.session_id == session_id) {
            cut.cert.elements_sent_at_cut = subscriber.elements_sent;
            break;
          }
        }
      }
      const std::string cert_bytes =
          replica::SerializeCutCertificate(cut.cert);
      if (shards.size() == 1) {
        blob = SaveCheckpoint(*shards[0]->checkpointable(),
                              kCheckpointVersion, cert_bytes);
      } else {
        // One ordinary blob per shard, wrapped in the LMPC container; the
        // certificate rides in shard 0's blob (common/checkpoint.h).
        std::vector<std::string> shard_blobs;
        shard_blobs.reserve(shards.size());
        for (size_t k = 0; k < shards.size(); ++k) {
          shard_blobs.push_back(SaveCheckpoint(
              *shards[k]->checkpointable(), kCheckpointVersion,
              k == 0 ? cert_bytes : std::string()));
        }
        blob = CombinePartitionedCheckpoint(shard_blobs);
      }
    });
  }
  cut.checkpoint_bytes = blob.size();
  cut.chunk_count = static_cast<uint32_t>(
      (blob.size() + kCheckpointChunkBytes - 1) / kCheckpointChunkBytes);
  // CUT_CERT and every chunk go out under fanout_mutex_ so the merge
  // thread's live ELEMENT fan-out interleaves between frames, never inside
  // one (mutex_ -> fanout_mutex_ is the declared lock order).
  Status sent;
  {
    MutexLock fanout_lock(fanout_mutex_);
    sent = session.connection->Send(EncodeCutCertFrame(cut));
  }
  if (!sent.ok()) return sent;
  for (uint32_t i = 0; i < cut.chunk_count; ++i) {
    CheckpointChunkMessage chunk;
    chunk.index = i;
    chunk.bytes = blob.substr(
        static_cast<size_t>(i) * kCheckpointChunkBytes, kCheckpointChunkBytes);
    checkpoint_tx_chunks_metric_->Increment();
    checkpoint_tx_bytes_metric_->Add(static_cast<int64_t>(chunk.bytes.size()));
    MutexLock fanout_lock(fanout_mutex_);
    sent = session.connection->Send(EncodeCheckpointChunkFrame(chunk));
    if (!sent.ok()) return sent;
  }
  if (options_.verbose) {
    Log(session, "checkpoint sent: " + std::to_string(blob.size()) +
                     " bytes in " + std::to_string(cut.chunk_count) +
                     " chunks");
  }
  return Status::Ok();
}

Status MergeServer::AdoptCheckpoint(const std::string& blob,
                                    const replica::CutCertificate& cert) {
  MutexLock lock(mutex_);
  if (merger_ != nullptr || publishers_seen_ > 0) {
    return Status::FailedPrecondition(
        "AdoptCheckpoint on a server that is already merging");
  }
  if (IsPartitionedCheckpoint(blob)) {
    return AdoptPartitionedCheckpointLocked(blob, cert);
  }
  std::unique_ptr<MergeAlgorithm> algorithm = CreateMergeAlgorithm(
      cert.variant, /*num_streams=*/1, &fan_out_, cert.policy);
  Checkpointable* checkpointable = algorithm->checkpointable();
  if (checkpointable == nullptr) {
    return Status::InvalidArgument(
        std::string("variant ") + MergeVariantName(cert.variant) +
        " does not support checkpoints");
  }
  // No merge thread exists yet, so restoring directly is race-free; the
  // merger constructed below sizes its rings and seeds its stable point
  // from the restored state.
  Status status = LoadCheckpoint(blob, checkpointable);
  if (!status.ok()) return status;
  if (algorithm->max_stable() != cert.output_stable) {
    return Status::InvalidArgument(
        "checkpoint stable point " + TimestampToString(algorithm->max_stable()) +
        " does not match cut certificate " +
        TimestampToString(cert.output_stable));
  }
  // The snapshot's input streams belong to the primary's publishers, which
  // this server will never hear from; detach them all.  The feed stream
  // (the primary's merged output) joins as a NEW stream and adopts the
  // output's views on its first HELLO.
  for (int s = 0; s < algorithm->stream_count(); ++s) {
    if (algorithm->stream_active(s)) algorithm->RemoveStream(s);
  }
  // Anything those detaches released goes out now; no merge thread exists
  // yet, so this is the only flush point for them.
  fan_out_.Flush();
  // Pin variant + policy so later publishers cannot re-select an algorithm
  // incompatible with the restored state.
  options_.variant = cert.variant;
  options_.policy = cert.policy;
  variant_ = cert.variant;
  algorithm_ = std::move(algorithm);
  ConcurrentMergerOptions merger_options;
  merger_options.ring_capacity = options_.ring_capacity;
  merger_options.max_batch = options_.max_batch;
  merger_options.after_batch = [this] { fan_out_.Flush(); };
  merger_ = std::make_unique<ConcurrentMerger>(algorithm_.get(),
                                               std::move(merger_options));
  last_output_stable_ = merger_->max_stable();
  adopted_ = true;
  adopt_output_pending_ = true;
  return Status::Ok();
}

Status MergeServer::AdoptPartitionedCheckpointLocked(
    const std::string& blob, const replica::CutCertificate& cert) {
  std::vector<std::string> shard_blobs;
  Status status = SplitPartitionedCheckpoint(blob, &shard_blobs);
  if (!status.ok()) return status;
  if (!cert.shard_stables.empty() &&
      cert.shard_stables.size() != shard_blobs.size()) {
    return Status::InvalidArgument(
        "cut certificate names " +
        std::to_string(cert.shard_stables.size()) +
        " shards but the checkpoint holds " +
        std::to_string(shard_blobs.size()));
  }
  // Each shard restores inside its factory call: the shard's own merge
  // thread does not exist yet at that point, and nothing is delivered until
  // the constructor returns, so the restore is race-free.  Restore failures
  // are latched and checked after construction (the factory signature
  // cannot return a Status).
  Status restore_status = Status::Ok();
  std::vector<Timestamp> restored_stables(shard_blobs.size(), kMinTimestamp);
  PartitionedMergerOptions merger_options;
  merger_options.shards = static_cast<int>(shard_blobs.size());
  merger_options.ring_capacity = options_.ring_capacity;
  merger_options.max_batch = options_.max_batch;
  merger_options.after_batch = [this] { fan_out_.Flush(); };
  auto merger = std::make_unique<PartitionedMerger>(
      [&](int shard, ElementSink* sink) {
        std::unique_ptr<MergeAlgorithm> algorithm = CreateMergeAlgorithm(
            cert.variant, /*num_streams=*/1, sink, cert.policy);
        if (!restore_status.ok()) return algorithm;
        Checkpointable* checkpointable = algorithm->checkpointable();
        if (checkpointable == nullptr) {
          restore_status = Status::InvalidArgument(
              std::string("variant ") + MergeVariantName(cert.variant) +
              " does not support checkpoints");
          return algorithm;
        }
        restore_status = LoadCheckpoint(
            shard_blobs[static_cast<size_t>(shard)], checkpointable);
        restored_stables[static_cast<size_t>(shard)] =
            algorithm->max_stable();
        return algorithm;
      },
      &fan_out_, std::move(merger_options));
  if (!restore_status.ok()) return restore_status;
  Timestamp min_stable = restored_stables[0];
  for (size_t k = 0; k < restored_stables.size(); ++k) {
    min_stable = std::min(min_stable, restored_stables[k]);
    if (!cert.shard_stables.empty() &&
        restored_stables[k] != cert.shard_stables[k]) {
      return Status::InvalidArgument(
          "shard " + std::to_string(k) + " restored stable point " +
          TimestampToString(restored_stables[k]) +
          " does not match cut certificate " +
          TimestampToString(cert.shard_stables[k]));
    }
  }
  if (min_stable != cert.output_stable) {
    return Status::InvalidArgument(
        "checkpoint stable point " + TimestampToString(min_stable) +
        " does not match cut certificate " +
        TimestampToString(cert.output_stable));
  }
  // As on the single-threaded path: the snapshot's input streams belong to
  // the dead primary's publishers — detach them all (a fan-out barrier per
  // stream), and pin variant + policy so later publishers cannot re-select.
  const MergerInputSnapshot snapshot = merger->InputSnapshot();
  for (size_t s = 0; s < snapshot.active.size(); ++s) {
    if (snapshot.active[s]) merger->RemoveStream(static_cast<int>(s));
  }
  options_.variant = cert.variant;
  options_.policy = cert.policy;
  options_.merge_threads = static_cast<int>(shard_blobs.size());
  variant_ = cert.variant;
  merger_ = std::move(merger);
  last_output_stable_ = merger_->max_stable();
  adopted_ = true;
  adopt_output_pending_ = true;
  return Status::Ok();
}

Status MergeServer::DeliverElementLocked(Session& session,
                                   const StreamElement& element) {
  // Progress watermarks feed the feedback policy even for held-back
  // elements.
  session.stats.Observe(element);
  if (element.is_stable() && !session.joined) {
    // The joining-stream protocol (Sec. V-B): a stream that declared join
    // time t may miss events that died before t, so until the output stable
    // point reaches t its stable() elements must not drive the output
    // stable point (they could freeze the absence of those events).
    session.joined = merger_->max_stable() >= session.join_time;
    if (!session.joined) return Status::Ok();
  }
  const Status status = merger_->TryDeliver(session.stream_id, element);
  if (!status.ok()) return status;
  NoteProgressLocked(session);
  MaybeStableAdvanceLocked();
  return Status::Ok();
}

Status MergeServer::DeliverBatchLocked(Session& session,
                                       ElementSequence elements,
                                       int64_t origin_us) {
  // Filter in place: every element feeds the progress watermarks, held-back
  // stables from a not-yet-joined stream are dropped (Sec. V-B, same rule
  // as the single-element path), and the survivors reach the merge as ONE
  // ring batch instead of per-element handoffs.
  size_t kept = 0;
  for (size_t i = 0; i < elements.size(); ++i) {
    StreamElement& element = elements[i];
    session.stats.Observe(element);
    if (element.is_stable() && !session.joined) {
      session.joined = merger_->max_stable() >= session.join_time;
      if (!session.joined) continue;
    }
    if (kept != i) elements[kept] = std::move(element);
    ++kept;
  }
  obs::IngestStamp stamp;
  stamp.origin_us = origin_us;
  stamp.rx_us = session.last_rx_us;
  const Status status = merger_->TryDeliverBatch(
      session.stream_id, std::span<StreamElement>(elements.data(), kept),
      stamp);
  if (!status.ok()) return status;
  NoteProgressLocked(session);
  MaybeStableAdvanceLocked();
  return Status::Ok();
}

void MergeServer::NoteProgressLocked(Session& session) {
  if (!obs::MetricsRegistry::enabled()) return;
  const Timestamp watermark = session.stats.stable_point();
  if (!session.progress_marks.empty() &&
      watermark <= session.progress_marks.back().watermark) {
    return;
  }
  WatermarkMark mark;
  mark.watermark = watermark;
  mark.mono_ms = obs::MonotonicMicros() / 1000;
  session.progress_marks.push_back(mark);
  if (session.progress_marks.size() > kWatermarkWindow) {
    session.progress_marks.pop_front();
  }
}

int64_t MergeServer::StableLagMsLocked() {
  if (merger_ == nullptr) return 0;
  // How stale is the merged output relative to its *leading* input?  For
  // each publisher, the earliest retained moment its watermark already
  // covered the current output stable point S bounds when the output
  // could first have reached S; the oldest such moment across publishers
  // is when the *merge* (not any one input) started owing S.  The gauge is
  // the age of that moment — 0 when no publisher's window covers S yet.
  const Timestamp stable = merger_->max_stable();
  const int64_t now_ms = obs::MonotonicMicros() / 1000;
  int64_t earliest_covering_ms = 0;
  for (auto& [id, session] : sessions_) {
    if (session.state != SessionState::kPublisher) continue;
    auto& marks = session.progress_marks;
    // Marks below the (monotone) output stable point can never cover a
    // future S either; drop them so the window holds only useful history.
    while (!marks.empty() && marks.front().watermark < stable) {
      marks.pop_front();
    }
    if (marks.empty()) continue;
    const int64_t covered_ms = marks.front().mono_ms;
    if (earliest_covering_ms == 0 || covered_ms < earliest_covering_ms) {
      earliest_covering_ms = covered_ms;
    }
  }
  if (earliest_covering_ms == 0) return 0;
  const int64_t lag = now_ms - earliest_covering_ms;
  return lag > 0 ? lag : 0;
}

void MergeServer::MaybeStableAdvanceLocked() {
  // max_stable() is a snapshot that may trail in-flight batches; Flush()
  // and the flushing getters run the exact version.
  const Timestamp stable = merger_->max_stable();
  if (stable > last_output_stable_) {
    last_output_stable_ = stable;
    AfterStableAdvanceLocked();
  }
}

void MergeServer::FlushLocked() {
  if (merger_ == nullptr) return;
  merger_->WaitIdle();
  MaybeStableAdvanceLocked();
}

void MergeServer::Flush() {
  MutexLock lock(mutex_);
  FlushLocked();
}

void MergeServer::AfterStableAdvanceLocked() {
  const Timestamp stable = last_output_stable_;
  for (auto& [id, session] : sessions_) {
    if (session.state != SessionState::kPublisher) continue;
    if (!session.joined && stable >= session.join_time) {
      session.joined = true;
      if (options_.verbose) Log(session, "joined");
    }
    if (options_.feedback_enabled &&
        session.stats.stable_point() < stable &&
        session.last_feedback < stable) {
      // This publisher is behind the merged output: everything it would
      // send about events dead before `stable` will be dropped anyway, so
      // tell it to fast-forward (Sec. V-D).
      FeedbackMessage feedback;
      feedback.horizon = stable;
      if (session.connection->Send(EncodeFeedbackFrame(feedback)).ok()) {
        session.last_feedback = stable;
        tx_feedback_metric_->Increment();
      }
    }
  }
}

void MergeServer::CloseSessionLocked(Session& session, const std::string& reason,
                               bool send_bye) {
  if (session.state == SessionState::kClosed) return;
  if (session.state == SessionState::kPublisher) {
    // Blocking: drains the departing publisher's ring, then detaches the
    // stream on the merge thread — its in-flight elements are never lost.
    merger_->RemoveStream(session.stream_id);
    --active_publishers_;
  }
  if (session.state == SessionState::kSubscriber ||
      session.state == SessionState::kStandby) {
    MutexLock fanout_lock(fanout_mutex_);
    std::erase_if(subscribers_, [&](const Subscriber& s) {
      return s.session_id == session.id;
    });
  }
  if (send_bye) {
    ByeMessage bye;
    bye.reason = reason;
    // Best effort: the session is being torn down regardless; a peer that
    // already vanished simply misses its goodbye.
    (void)session.connection->Send(EncodeByeFrame(bye));
  }
  if (options_.verbose) Log(session, "closed: " + reason);
  session.state = SessionState::kClosed;
  // Actively close the transport: an orderly peer drains its receive side
  // until this EOF before closing its own end (see PublisherClient::Finish)
  // — closing with unread data (e.g. FEEDBACK pushes) would RST the
  // connection and discard the peer's own in-flight bytes.  Also unblocks
  // the ServeLoop read thread for this session.
  session.connection->Close();
}

void MergeServer::AddOutputSink(ElementSink* sink) {
  LM_CHECK(sink != nullptr);
  MutexLock lock(fanout_mutex_);
  output_sinks_.push_back(sink);
}

Timestamp MergeServer::output_stable() const {
  // The flushing getters mutate (FlushLocked advances join/feedback state),
  // so they run on a non-const view; the lock discipline is identical.
  MergeServer* self = const_cast<MergeServer*>(this);
  MutexLock lock(self->mutex_);
  self->FlushLocked();
  return self->merger_ == nullptr ? kMinTimestamp
                                  : self->merger_->max_stable();
}

int MergeServer::active_publishers() const {
  MutexLock lock(mutex_);
  return active_publishers_;
}

int MergeServer::publishers_seen() const {
  MutexLock lock(mutex_);
  return publishers_seen_;
}

int MergeServer::subscriber_count() const {
  MutexLock lock(mutex_);
  int n = 0;
  for (const auto& [id, session] : sessions_) {
    n += session.state == SessionState::kSubscriber ||
                 session.state == SessionState::kStandby
             ? 1
             : 0;
  }
  return n;
}

bool MergeServer::SessionMidFrame(int session_id) const {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return false;
  return it->second.assembler.pending_bytes() > 0;
}

bool MergeServer::drained() const {
  MutexLock lock(mutex_);
  return publishers_seen_ > 0 && active_publishers_ == 0;
}

MergeOutputStats MergeServer::merge_stats() const {
  MergeServer* self = const_cast<MergeServer*>(this);
  MutexLock lock(self->mutex_);
  if (self->merger_ == nullptr) return MergeOutputStats();
  self->FlushLocked();
  // Snapshot at a barrier: the only race-free reader of algorithm state
  // while other sessions may still be delivering; for a partitioned merge
  // the totals are aggregated across shards with the sum/min rules.
  return self->merger_->StatsSnapshot();
}

const char* MergeServer::algorithm_name() const {
  MutexLock lock(mutex_);
  return merger_ == nullptr
             ? "none"
             : AlgorithmCaseName(merger_->algorithm_case());
}

obs::MetricsSnapshot MergeServer::MetricsSnapshotLocked() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::ExportPayloadStoreMetrics(PayloadStore::Global(), &registry);
  {
    MutexLock fanout_lock(fanout_mutex_);
    registry.GetGauge("net.subscribers")
        ->Set(static_cast<int64_t>(subscribers_.size()));
    // One broadcast dictionary now serves every v2+ subscriber.
    registry.GetGauge("net.tx.dict.entries")
        ->Set(broadcast_dict_ == nullptr
                  ? 0
                  : static_cast<int64_t>(broadcast_dict_->entries()));
  }
  if (merger_ != nullptr) {
    registry.GetGauge("merge.stable_lag_ms")->Set(StableLagMsLocked());
    // Exports the algorithm's counters on the merge thread, then snapshots.
    return merger_->MetricsSnapshot();
  }
  return registry.Snapshot();
}

obs::MetricsSnapshot MergeServer::MetricsSnapshot() {
  MutexLock lock(mutex_);
  return MetricsSnapshotLocked();
}

bool MergeServer::Ready(std::chrono::milliseconds timeout) {
  // Posts a no-op onto the merge thread and waits: a wedged merge (or, for
  // the partitioned engine, any wedged shard or aggregator) misses the
  // deadline.  The merge thread never takes mutex_, so holding it here
  // cannot deadlock with the probe.
  MutexLock lock(mutex_);
  if (merger_ == nullptr) return true;
  return merger_->Responsive(timeout);
}

StatsResponseMessage MergeServer::BuildStatsResponseLocked() {
  StatsResponseMessage stats;
  stats.output_stable =
      merger_ == nullptr ? kMinTimestamp : merger_->max_stable();
  if (merger_ != nullptr) {
    stats.algorithm_case =
        static_cast<uint8_t>(merger_->algorithm_case());
  }
  for (const auto& [id, session] : sessions_) {
    if (session.state == SessionState::kPublisher) ++stats.publishers;
    if (session.state == SessionState::kSubscriber ||
        session.state == SessionState::kStandby) {
      ++stats.subscribers;
    }
  }
  stats.metrics = MetricsSnapshotLocked();
  if (merger_ != nullptr) {
    // Per-input counters, copied at a barrier (race-free against in-flight
    // deliveries, one consistent cut across shards), then joined with the
    // session registry.
    const MergerInputSnapshot snapshot = merger_->InputSnapshot();
    stats.output_inserts = snapshot.totals.inserts_out;
    stats.output_adjusts = snapshot.totals.adjusts_out;
    stats.inputs.reserve(snapshot.per_input.size());
    for (size_t s = 0; s < snapshot.per_input.size(); ++s) {
      StatsInputRow row;
      row.stream_id = static_cast<int32_t>(s);
      // Departed publishers keep their name (the live-session join below
      // only flips `connected` back on).
      const auto name = stream_names_.find(static_cast<int>(s));
      if (name != stream_names_.end()) row.peer_name = name->second;
      row.active = snapshot.active[s];
      row.inserts_in = snapshot.per_input[s].inserts_in;
      row.adjusts_in = snapshot.per_input[s].adjusts_in;
      row.stables_in = snapshot.per_input[s].stables_in;
      row.dropped = snapshot.per_input[s].dropped;
      row.contributed = snapshot.per_input[s].contributed;
      row.stable_point = snapshot.per_input[s].stable_point;
      stats.inputs.push_back(std::move(row));
    }
    for (const auto& [id, session] : sessions_) {
      if (session.state != SessionState::kPublisher) continue;
      if (session.stream_id < 0 ||
          session.stream_id >= static_cast<int>(stats.inputs.size())) {
        continue;
      }
      StatsInputRow& row =
          stats.inputs[static_cast<size_t>(session.stream_id)];
      row.peer_name = session.name;
      row.connected = true;
    }
  }
  return stats;
}

StatsResponseMessage MergeServer::StatsSnapshot() {
  MutexLock lock(mutex_);
  return BuildStatsResponseLocked();
}

void MergeServer::Log(const Session& session,
                      const std::string& message) const {
  std::fprintf(stderr, "[lmerge_served] %s: %s\n", session.name.c_str(),
               message.c_str());
}

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A connection owned by an event loop.  Every write funnels through an
// outbound queue of refcounted frame buffers: Send (handshake, feedback,
// checkpoint frames — callers that must not fail spuriously) enqueues
// without bound, SendShared (fan-out) enforces max_outbound_bytes and
// disconnects the peer on overflow — the slow-consumer policy.  Both
// opportunistically flush through the transport's non-blocking TrySend;
// EPOLLOUT is armed only while a backlog exists, so an idle connection
// costs the loop nothing.
//
// The queue mutex is a LEAF below every other lock (DESIGN.md "Lock
// order"): the merge thread reaches it via fanout_mutex_ -> SendShared,
// the IO thread via its dispatch (no lock), and neither path acquires
// anything under it.
class IoConnection : public Connection {
 public:
  IoConnection(std::unique_ptr<Connection> inner, EventLoop* loop,
               size_t max_outbound_bytes, obs::Counter* slow_disconnects)
      : inner_(std::move(inner)),
        loop_(loop),
        max_outbound_bytes_(max_outbound_bytes),
        slow_disconnects_(slow_disconnects) {}

  // Called once after the fd is registered with the loop; until then
  // Interest() would fail with ENOENT, so arming is suppressed.
  void set_registered() {
    registered_.store(true, std::memory_order_release);
  }

  Status Send(const char* data, size_t size) override {
    return Enqueue(std::make_shared<const std::string>(data, size),
                   /*bounded=*/false);
  }

  Status SendShared(std::shared_ptr<const std::string> frame) override {
    return Enqueue(std::move(frame), /*bounded=*/true);
  }

  Status Receive(char* buffer, size_t capacity, size_t* received) override {
    return inner_->Receive(buffer, capacity, received);
  }

  Status TryReceive(std::string* out) override {
    return inner_->TryReceive(out);
  }

  int readable_fd() const override { return inner_->readable_fd(); }
  void Close() override { inner_->Close(); }
  bool closed() const override { return inner_->closed(); }
  std::string peer() const override { return inner_->peer(); }

  // EPOLLOUT dispatch: drain as much backlog as the transport accepts.
  void HandleWritable() {
    MutexLock lock(mutex_);
    (void)FlushLocked();
  }

 private:
  Status Enqueue(std::shared_ptr<const std::string> frame, bool bounded) {
    bool overflow = false;
    Status status;
    {
      MutexLock lock(mutex_);
      if (send_failed_) {
        return Status::FailedPrecondition("connection closed");
      }
      if (bounded && queued_bytes_ + frame->size() > max_outbound_bytes_) {
        overflow = true;
        send_failed_ = true;
      } else {
        queued_bytes_ += frame->size();
        queue_.push_back(std::move(frame));
        status = FlushLocked();
      }
    }
    if (overflow) {
      slow_disconnects_->Increment();
      // Close outside the queue lock; the IO thread observes the closed
      // transport and tears the session down.
      inner_->Close();
      return Status::Internal("slow consumer: outbound queue would exceed " +
                              std::to_string(max_outbound_bytes_) + " bytes");
    }
    return status;
  }

  Status FlushLocked() LM_REQUIRES(mutex_) {
    while (!queue_.empty()) {
      const std::string& front = *queue_.front();
      size_t sent = 0;
      const Status status = inner_->TrySend(
          front.data() + front_offset_, front.size() - front_offset_, &sent);
      if (!status.ok()) {
        send_failed_ = true;
        queue_.clear();
        queued_bytes_ = 0;
        front_offset_ = 0;
        UpdateInterestLocked();
        return status;
      }
      front_offset_ += sent;
      queued_bytes_ -= sent;
      if (front_offset_ < front.size()) break;  // transport full for now
      queue_.pop_front();
      front_offset_ = 0;
    }
    UpdateInterestLocked();
    return Status::Ok();
  }

  void UpdateInterestLocked() LM_REQUIRES(mutex_) {
    if (!registered_.load(std::memory_order_acquire)) return;
    const bool want_out = !queue_.empty() && !send_failed_;
    if (want_out == epollout_armed_) return;
    const int fd = inner_->readable_fd();
    if (fd < 0) return;
    const uint32_t events =
        EPOLLIN | (want_out ? static_cast<uint32_t>(EPOLLOUT) : 0);
    if (loop_->Interest(fd, events).ok()) epollout_armed_ = want_out;
  }

  std::unique_ptr<Connection> inner_;
  EventLoop* loop_;
  const size_t max_outbound_bytes_;
  obs::Counter* slow_disconnects_;
  std::atomic<bool> registered_{false};

  mutable Mutex mutex_;
  std::deque<std::shared_ptr<const std::string>> queue_ LM_GUARDED_BY(mutex_);
  size_t queued_bytes_ LM_GUARDED_BY(mutex_) = 0;
  // Bytes of queue_.front() already written to the transport.
  size_t front_offset_ LM_GUARDED_BY(mutex_) = 0;
  bool send_failed_ LM_GUARDED_BY(mutex_) = false;
  bool epollout_armed_ LM_GUARDED_BY(mutex_) = false;
};

// One served connection: the event callbacks and the idle sweep both hold
// a shared_ptr, so the IoConnection outlives whichever path tears it down.
struct ServedSession {
  int id = 0;
  std::unique_ptr<IoConnection> connection;
  EventLoop* loop = nullptr;
  int loop_index = 0;
  int fd = -1;
  std::atomic<int64_t> last_rx_ms{0};
};

// Session registry shared between the accept path (loop 0), each session's
// owning loop (teardown), and the idle sweeps.
struct ServeState {
  Mutex mutex;
  std::map<int, std::shared_ptr<ServedSession>> sessions
      LM_GUARDED_BY(mutex);
};

}  // namespace

void LoopPingRegistry::Set(std::vector<EventLoop*> loops) {
  MutexLock lock(mutex_);
  loops_ = std::move(loops);
}

void LoopPingRegistry::Clear() {
  MutexLock lock(mutex_);
  loops_.clear();
}

bool LoopPingRegistry::Ping(std::chrono::milliseconds timeout) {
  // Holds the mutex across the whole probe so Clear() (ServeLoop teardown)
  // cannot invalidate a loop pointer mid-ping; Clear then blocks until the
  // probe finishes, which is bounded by `timeout`.
  MutexLock lock(mutex_);
  if (loops_.empty()) return true;
  std::vector<std::future<void>> done;
  done.reserve(loops_.size());
  for (EventLoop* loop : loops_) {
    auto signal = std::make_shared<std::promise<void>>();
    done.push_back(signal->get_future());
    loop->Post([signal] { signal->set_value(); });
  }
  // One shared deadline: a loop that is busy-but-alive borrows slack from
  // the loops that answered instantly.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (auto& future : done) {
    if (future.wait_until(deadline) != std::future_status::ready) {
      return false;
    }
  }
  return true;
}

void ServeLoop(Listener* listener, MergeServer* server,
               const ServeLoopOptions& options) {
  // The event-loop transport requires pollable endpoints; both shipped
  // transports (tcp, loopback) are.
  LM_CHECK(listener->pollable_fd() >= 0);
  const int io_threads = std::max(1, options.io_threads);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* slow_disconnects =
      registry.GetCounter("net.loop.slow_consumer_disconnects");
  obs::Counter* idle_timeouts = registry.GetCounter("net.loop.idle_timeouts");
  registry.GetGauge("net.loop.io_threads")->Set(io_threads);

  std::vector<std::unique_ptr<EventLoop>> loops;
  loops.reserve(static_cast<size_t>(io_threads));
  for (int i = 0; i < io_threads; ++i) {
    loops.push_back(std::make_unique<EventLoop>());
  }
  if (options.loop_pings != nullptr) {
    std::vector<EventLoop*> raw;
    raw.reserve(loops.size());
    for (auto& loop : loops) raw.push_back(loop.get());
    options.loop_pings->Set(std::move(raw));
  }
  auto state = std::make_shared<ServeState>();

  const auto stop_all = [&loops] {
    for (auto& loop : loops) loop->Stop();
  };

  // Tears one session down.  Runs on the session's owning loop thread (its
  // read callback or its loop's idle sweep), or on the ServeLoop thread
  // after every loop has stopped — never concurrently with a dispatch for
  // the same fd.
  const auto teardown = [server, listener, state,
                         &options](const std::shared_ptr<ServedSession>&
                                       session) {
    {
      MutexLock lock(state->mutex);
      if (state->sessions.erase(session->id) == 0) return;  // already down
    }
    session->loop->Remove(session->fd);
    server->OnDisconnect(session->id);
    session->connection->Close();
    if (options.drain_publishers > 0 &&
        server->publishers_seen() >= options.drain_publishers &&
        server->active_publishers() == 0) {
      // Service drained: poke the accept callback (loop 0), which stops
      // every loop so ServeLoop returns.
      listener->Close();
    }
  };

  const auto on_conn_event = [server, teardown](
                                 const std::shared_ptr<ServedSession>& session,
                                 uint32_t events) {
    IoConnection* connection = session->connection.get();
    if ((events & EPOLLOUT) != 0) connection->HandleWritable();
    bool dead = false;
    std::string bytes;
    if (!connection->TryReceive(&bytes).ok()) dead = true;
    if (!bytes.empty()) {
      session->last_rx_ms.store(NowMs(), std::memory_order_relaxed);
      if (!server->OnBytes(session->id, bytes).ok()) dead = true;
    }
    if (connection->closed()) dead = true;  // EOF or error observed
    if (dead) teardown(session);
  };

  // Accept path, on loop 0.  `next_loop` is callback-local state: the
  // accept callback only ever runs on loop 0's thread.
  auto next_loop = std::make_shared<int>(0);
  const auto on_accept = [listener, server, state, &loops, &options,
                          io_threads, next_loop, slow_disconnects,
                          on_conn_event, teardown, stop_all](uint32_t) {
    while (true) {
      std::unique_ptr<Connection> accepted;
      if (!listener->TryAccept(&accepted).ok()) {
        // Listener closed (drain or external shutdown): stop every loop.
        stop_all();
        return;
      }
      if (accepted == nullptr) return;  // nothing pending right now
      const int loop_index = *next_loop;
      *next_loop = (*next_loop + 1) % io_threads;
      EventLoop* loop = loops[static_cast<size_t>(loop_index)].get();
      auto session = std::make_shared<ServedSession>();
      session->connection = std::make_unique<IoConnection>(
          std::move(accepted), loop, options.max_outbound_bytes,
          slow_disconnects);
      session->loop = loop;
      session->loop_index = loop_index;
      session->fd = session->connection->readable_fd();
      if (session->fd < 0) {
        // Non-pollable connection from a pollable listener: cannot serve.
        session->connection->Close();
        continue;
      }
      session->last_rx_ms.store(NowMs(), std::memory_order_relaxed);
      session->id = server->OnConnect(session->connection.get());
      {
        MutexLock lock(state->mutex);
        state->sessions[session->id] = session;
      }
      const Status added =
          loop->Add(session->fd, EPOLLIN, [session, on_conn_event](
                                              uint32_t events) {
            on_conn_event(session, events);
          });
      if (!added.ok()) {
        teardown(session);
        continue;
      }
      session->connection->set_registered();
    }
  };
  LM_CHECK(loops[0]->Add(listener->pollable_fd(), EPOLLIN, on_accept).ok());

  // Idle sweep: each loop ticks over ITS sessions and kills peers that have
  // been silent past the timeout while mid-frame.  Quiet but frame-aligned
  // sessions (an idle subscriber, a paused publisher between batches) are
  // never touched.
  const auto make_tick = [state, server, idle_timeouts, teardown,
                          &options](int loop_index) {
    return [state, server, idle_timeouts, teardown, &options, loop_index] {
      const int64_t cutoff = NowMs() - options.idle_timeout_ms;
      std::vector<std::shared_ptr<ServedSession>> quiet;
      {
        MutexLock lock(state->mutex);
        for (const auto& [id, session] : state->sessions) {
          if (session->loop_index != loop_index) continue;
          if (session->last_rx_ms.load(std::memory_order_relaxed) <=
              cutoff) {
            quiet.push_back(session);
          }
        }
      }
      for (const auto& session : quiet) {
        if (server->SessionMidFrame(session->id)) {
          idle_timeouts->Increment();
          teardown(session);
        }
      }
    };
  };

  // Loop 0 runs on the calling thread; extra IO threads only when asked
  // for — the whole transport costs io_threads threads, not one per
  // session.
  const int tick_ms =
      options.idle_timeout_ms > 0
          ? std::max(1, std::min(options.idle_timeout_ms / 4, 50))
          : -1;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(io_threads - 1));
  for (int i = 1; i < io_threads; ++i) {
    EventLoop* loop = loops[static_cast<size_t>(i)].get();
    threads.emplace_back([loop, tick_ms, tick = make_tick(i)] {
      loop->Run(tick_ms, tick_ms > 0 ? tick : std::function<void()>());
    });
  }
  loops[0]->Run(tick_ms,
                tick_ms > 0 ? make_tick(0) : std::function<void()>());
  for (auto& thread : threads) thread.join();

  // Unpublish the loops before destroying them: a concurrent readiness
  // Ping() either finishes against live loops first (Clear blocks on its
  // mutex) or sees the empty registry.
  if (options.loop_pings != nullptr) options.loop_pings->Clear();

  // Every loop has stopped; tear down whatever sessions remain (typically
  // subscribers at drain — their peers see EOF, as before).
  std::vector<std::shared_ptr<ServedSession>> leftover;
  {
    MutexLock lock(state->mutex);
    for (const auto& [id, session] : state->sessions) {
      leftover.push_back(session);
    }
  }
  for (const auto& session : leftover) teardown(session);
}

}  // namespace lmerge::net
