#include "net/tcp.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/errno_string.h"

namespace lmerge::net {

namespace {

std::string SockaddrToString(const sockaddr_storage& addr) {
  char host[NI_MAXHOST];
  char port[NI_MAXSERV];
  if (getnameinfo(reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                  host, sizeof(host), port, sizeof(port),
                  NI_NUMERICHOST | NI_NUMERICSERV) != 0) {
    return "unknown";
  }
  return std::string(host) + ":" + port;
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

class TcpConnection : public Connection {
 public:
  TcpConnection(int fd, std::string peer)
      : fd_(fd), peer_(std::move(peer)) {}

  ~TcpConnection() override {
    Close();
    ::close(fd_);
  }

  Status Send(const char* data, size_t size) override {
    size_t sent = 0;
    while (sent < size) {
      const ssize_t n =
          ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        closed_.store(true, std::memory_order_relaxed);
        return Status::Internal(ErrnoMessage("send", errno));
      }
      sent += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Receive(char* buffer, size_t capacity, size_t* received) override {
    while (true) {
      const ssize_t n = ::recv(fd_, buffer, capacity, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        closed_.store(true, std::memory_order_relaxed);
        return Status::Internal(ErrnoMessage("recv", errno));
      }
      if (n == 0) closed_.store(true, std::memory_order_relaxed);
      *received = static_cast<size_t>(n);
      return Status::Ok();
    }
  }

  Status TryReceive(std::string* out) override {
    char buffer[16 * 1024];
    while (true) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT);
      if (n > 0) {
        out->append(buffer, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        closed_.store(true, std::memory_order_relaxed);
        return Status::Ok();
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
      if (errno == EINTR) continue;
      closed_.store(true, std::memory_order_relaxed);
      return Status::Internal(ErrnoMessage("recv", errno));
    }
  }

  Status TrySend(const char* data, size_t size, size_t* sent) override {
    *sent = 0;
    while (*sent < size) {
      const ssize_t n = ::send(fd_, data + *sent, size - *sent,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
        closed_.store(true, std::memory_order_relaxed);
        return Status::Internal(ErrnoMessage("send", errno));
      }
      *sent += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  int readable_fd() const override { return fd_; }

  void Close() override {
    closed_.store(true, std::memory_order_relaxed);
    // closed_ may already be set by a Send/Receive error; the shutdown flag
    // keeps the syscall itself once-only.
    if (!shutdown_done_.exchange(true, std::memory_order_relaxed)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  bool closed() const override {
    return closed_.load(std::memory_order_relaxed);
  }

  std::string peer() const override { return peer_; }

 private:
  int fd_;
  std::string peer_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> shutdown_done_{false};
};

class TcpListener : public Listener {
 public:
  TcpListener(int fd, int port) : fd_(fd), port_(port) {}

  ~TcpListener() override {
    Close();
    ::close(fd_);
  }

  Status Accept(std::unique_ptr<Connection>* connection) override {
    sockaddr_storage addr;
    socklen_t addr_len = sizeof(addr);
    while (true) {
      const int fd =
          ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // The listen fd went non-blocking (a TryAccept user also calls
          // the blocking API, e.g. in tests): park on poll until ready.
          pollfd pfd{fd_, POLLIN, 0};
          if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) {
            return Status::Internal(ErrnoMessage("poll", errno));
          }
          continue;
        }
        return Status::Internal(ErrnoMessage("accept", errno));
      }
      SetNoDelay(fd);
      *connection = std::make_unique<TcpConnection>(
          fd, SockaddrToString(addr));
      return Status::Ok();
    }
  }

  Status TryAccept(std::unique_ptr<Connection>* connection) override {
    connection->reset();
    // Flip the listen fd non-blocking on first use; the blocking Accept
    // above handles the resulting EAGAINs via poll.
    if (!nonblocking_.exchange(true, std::memory_order_relaxed)) {
      const int flags = ::fcntl(fd_, F_GETFL, 0);
      (void)::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    }
    sockaddr_storage addr;
    socklen_t addr_len = sizeof(addr);
    while (true) {
      const int fd =
          ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
        return Status::Internal(ErrnoMessage("accept", errno));
      }
      SetNoDelay(fd);
      *connection = std::make_unique<TcpConnection>(
          fd, SockaddrToString(addr));
      return Status::Ok();
    }
  }

  int pollable_fd() const override { return fd_; }

  void Close() override {
    if (!closed_.exchange(true, std::memory_order_relaxed)) {
      // Wakes a blocked accept() on Linux (returns EINVAL).
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  int port() const override { return port_; }

 private:
  int fd_;
  int port_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> nonblocking_{false};
};

Status Resolve(const std::string& host, int port, bool passive,
               addrinfo** result) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  const std::string service = std::to_string(port);
  const int rc = getaddrinfo(host.empty() ? nullptr : host.c_str(),
                             service.c_str(), &hints, result);
  if (rc != 0) {
    return Status::InvalidArgument("resolve " + host + ": " +
                                   gai_strerror(rc));
  }
  return Status::Ok();
}

}  // namespace

Status TcpListen(int port, std::unique_ptr<Listener>* listener,
                 const std::string& bind_address) {
  addrinfo* addrs = nullptr;
  Status status = Resolve(bind_address, port, /*passive=*/true, &addrs);
  if (!status.ok()) return status;
  status = Status::Internal("no usable address for listen");
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      status = Status::Internal(ErrnoMessage("socket", errno));
      continue;
    }
    int one = 1;
    (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, SOMAXCONN) != 0) {
      status = Status::Internal(ErrnoMessage("bind/listen", errno));
      ::close(fd);
      continue;
    }
    sockaddr_storage bound;
    socklen_t bound_len = sizeof(bound);
    int bound_port = port;
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
        0) {
      if (bound.ss_family == AF_INET) {
        bound_port = ntohs(
            reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        bound_port = ntohs(
            reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    *listener = std::make_unique<TcpListener>(fd, bound_port);
    status = Status::Ok();
    break;
  }
  freeaddrinfo(addrs);
  return status;
}

namespace {

// connect() with an optional per-attempt timeout: non-blocking connect,
// park on poll(POLLOUT), then read SO_ERROR for the real outcome.  The fd
// is restored to blocking mode on success.
Status ConnectFd(int fd, const sockaddr* addr, socklen_t addr_len,
                 int timeout_ms) {
  if (timeout_ms <= 0) {
    if (::connect(fd, addr, addr_len) != 0) {
      return Status::Internal(ErrnoMessage("connect", errno));
    }
    return Status::Ok();
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, addr, addr_len) != 0) {
    if (errno != EINPROGRESS) {
      return Status::Internal(ErrnoMessage("connect", errno));
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) return Status::Internal(ErrnoMessage("poll", errno));
    if (ready == 0) {
      return Status::Internal("connect timed out after " +
                              std::to_string(timeout_ms) + " ms");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    (void)getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      return Status::Internal(ErrnoMessage("connect", err));
    }
  }
  (void)::fcntl(fd, F_SETFL, flags);
  return Status::Ok();
}

Status TcpConnectOnce(const std::string& host, int port, int timeout_ms,
                      std::unique_ptr<Connection>* connection) {
  addrinfo* addrs = nullptr;
  Status status = Resolve(host, port, /*passive=*/false, &addrs);
  if (!status.ok()) return status;
  status = Status::Internal("no usable address for connect");
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      status = Status::Internal(ErrnoMessage("socket", errno));
      continue;
    }
    status = ConnectFd(fd, ai->ai_addr, ai->ai_addrlen, timeout_ms);
    if (!status.ok()) {
      status = Status::Internal("connect " + host + ":" +
                                std::to_string(port) + ": " +
                                status.message());
      ::close(fd);
      continue;
    }
    SetNoDelay(fd);
    sockaddr_storage peer_addr;
    std::memset(&peer_addr, 0, sizeof(peer_addr));
    socklen_t peer_len = sizeof(peer_addr);
    (void)getpeername(fd, reinterpret_cast<sockaddr*>(&peer_addr),
                      &peer_len);
    *connection = std::make_unique<TcpConnection>(
        fd, SockaddrToString(peer_addr));
    status = Status::Ok();
    break;
  }
  freeaddrinfo(addrs);
  return status;
}

}  // namespace

Status TcpConnect(const std::string& host, int port,
                  std::unique_ptr<Connection>* connection) {
  return TcpConnectOnce(host, port, /*timeout_ms=*/0, connection);
}

Status TcpConnect(const std::string& host, int port,
                  const TcpConnectOptions& options,
                  std::unique_ptr<Connection>* connection) {
  Status status;
  int backoff_ms = options.backoff_initial_ms;
  for (int attempt = 0; attempt <= options.retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options.backoff_max_ms);
    }
    status = TcpConnectOnce(host, port, options.connect_timeout_ms,
                            connection);
    if (status.ok()) return status;
  }
  return status;
}

}  // namespace lmerge::net
