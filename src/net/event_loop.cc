#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "net/errno_string.h"

namespace lmerge::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  LM_CHECK(epoll_fd_ >= 0);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  LM_CHECK(wake_fd_ >= 0);
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  LM_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) == 0);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  wakeups_metric_ = registry.GetCounter("net.loop.wakeups");
  dispatches_metric_ = registry.GetCounter("net.loop.dispatches");
  posted_metric_ = registry.GetCounter("net.loop.posted");
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, Callback callback) {
  {
    MutexLock lock(mutex_);
    callbacks_[fd] = std::move(callback);
  }
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    MutexLock lock(mutex_);
    callbacks_.erase(fd);
    return Status::Internal(ErrnoMessage("epoll_ctl add", errno));
  }
  return Status::Ok();
}

Status EventLoop::Interest(int fd, uint32_t events) {
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Status::Internal(ErrnoMessage("epoll_ctl mod", errno));
  }
  return Status::Ok();
}

void EventLoop::Remove(int fd) {
  // Deregister from the kernel first so no further events can surface,
  // then drop the callback.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  MutexLock lock(mutex_);
  callbacks_.erase(fd);
}

void EventLoop::Post(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    posted_.push_back(std::move(task));
  }
  posted_metric_->Increment();
  Wake();
}

void EventLoop::Stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  Wake();
}

int EventLoop::registered() const {
  MutexLock lock(mutex_);
  return static_cast<int>(callbacks_.size());
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  // The eventfd counter saturating (EAGAIN) still leaves it readable, so a
  // failed write cannot lose the wakeup.
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> tasks;
  {
    MutexLock lock(mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Run() { Run(/*tick_interval_ms=*/-1, nullptr); }

void EventLoop::Run(int tick_interval_ms, std::function<void()> tick) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point next_tick;
  if (tick_interval_ms > 0) {
    next_tick = Clock::now() + std::chrono::milliseconds(tick_interval_ms);
  }
  epoll_event events[64];
  while (true) {
    {
      MutexLock lock(mutex_);
      if (stop_) break;
    }
    int timeout_ms = -1;
    if (tick_interval_ms > 0) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
          next_tick - Clock::now());
      timeout_ms = static_cast<int>(std::max<int64_t>(0, until.count()));
    }
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)),
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken; nothing recoverable
    }
    wakeups_metric_->Increment();
    if (tick_interval_ms > 0 && Clock::now() >= next_tick) {
      next_tick = Clock::now() + std::chrono::milliseconds(tick_interval_ms);
      if (tick) tick();
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      // Look the callback up per event: an earlier callback in this same
      // round may have Remove()d this fd (e.g. a session teardown closing
      // a peer), and a stale dispatch must not fire.  The copy keeps the
      // lock out of the callback itself.
      Callback callback;
      {
        MutexLock lock(mutex_);
        auto it = callbacks_.find(fd);
        if (it == callbacks_.end()) continue;
        callback = it->second;
      }
      dispatches_metric_->Increment();
      callback(events[i].events);
    }
    RunPosted();
  }
  RunPosted();
}

}  // namespace lmerge::net
