#include "net/frame.h"

#include <cstring>

namespace lmerge::net {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kWelcome:
      return "WELCOME";
    case FrameType::kElement:
      return "ELEMENT";
    case FrameType::kElements:
      return "ELEMENTS";
    case FrameType::kFeedback:
      return "FEEDBACK";
    case FrameType::kBye:
      return "BYE";
    case FrameType::kPayloadDef:
      return "PAYLOAD_DEF";
    case FrameType::kElementsDict:
      return "ELEMENTS_DICT";
    case FrameType::kStatsRequest:
      return "STATS_REQUEST";
    case FrameType::kStatsResponse:
      return "STATS_RESPONSE";
    case FrameType::kCheckpointRequest:
      return "CHECKPOINT_REQUEST";
    case FrameType::kCheckpointChunk:
      return "CHECKPOINT_CHUNK";
    case FrameType::kCutCert:
      return "CUT_CERT";
  }
  return "UNKNOWN";
}

bool IsKnownFrameType(uint8_t tag) {
  return tag >= static_cast<uint8_t>(FrameType::kHello) &&
         tag <= static_cast<uint8_t>(FrameType::kCutCert);
}

void AppendFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char header[kFrameHeaderBytes];
  header[0] = static_cast<char>(length & 0xff);
  header[1] = static_cast<char>((length >> 8) & 0xff);
  header[2] = static_cast<char>((length >> 16) & 0xff);
  header[3] = static_cast<char>((length >> 24) & 0xff);
  header[4] = static_cast<char>(type);
  out->append(header, kFrameHeaderBytes);
  out->append(payload);
}

std::string EncodeFrame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(type, payload, &out);
  return out;
}

Status FrameAssembler::CheckFront() {
  if (pending_bytes() < kFrameHeaderBytes) return Status::Ok();
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
  const uint32_t length = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  if (length > max_payload_) {
    return Status::InvalidArgument(
        "frame payload length " + std::to_string(length) +
        " exceeds limit " + std::to_string(max_payload_));
  }
  if (!IsKnownFrameType(p[4])) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(p[4]));
  }
  return Status::Ok();
}

Status FrameAssembler::Feed(const char* data, size_t size) {
  if (poisoned_) {
    return Status::FailedPrecondition("assembler poisoned by earlier error");
  }
  // Compact the consumed prefix before growing the buffer.
  if (consumed_ > 0 && (consumed_ == buffer_.size() ||
                        consumed_ >= 64 * 1024)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
  // Validate eagerly so hostile length prefixes are rejected before any
  // caller waits for 4 GiB that will never arrive.
  const Status status = CheckFront();
  if (!status.ok()) poisoned_ = true;
  return status;
}

bool FrameAssembler::Next(Frame* frame) {
  if (poisoned_) return false;
  if (pending_bytes() < kFrameHeaderBytes) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
  const uint32_t length = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  if (pending_bytes() < kFrameHeaderBytes + length) return false;
  frame->type = static_cast<FrameType>(p[4]);
  frame->payload.assign(buffer_, consumed_ + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  // The header of the *next* frame (if buffered) was already validated by
  // Feed only when it was at the front; re-check so poisoning is prompt.
  const Status status = CheckFront();
  if (!status.ok()) poisoned_ = true;
  return true;
}

}  // namespace lmerge::net
