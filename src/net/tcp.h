// POSIX TCP implementation of the transport abstraction.
//
// IPv4/IPv6 via getaddrinfo; TCP_NODELAY on every connection (the protocol
// frames its own writes, Nagle only adds latency).  Close() uses shutdown()
// so a blocked Receive/Accept on another thread wakes immediately; the file
// descriptor itself is released in the destructor, which keeps fd-reuse
// races out of concurrent teardown.

#ifndef LMERGE_NET_TCP_H_
#define LMERGE_NET_TCP_H_

#include <memory>
#include <string>

#include "net/transport.h"

namespace lmerge::net {

// Binds and listens on `port` (0 picks an ephemeral port; see port()).
// `bind_address` is a numeric host or name; the default stays off external
// interfaces, which is the right posture for a merge daemon behind a load
// balancer.
Status TcpListen(int port, std::unique_ptr<Listener>* listener,
                 const std::string& bind_address = "127.0.0.1");

// Connects to host:port (blocking).
Status TcpConnect(const std::string& host, int port,
                  std::unique_ptr<Connection>* connection);

// Client-side connect tuning for tools/scripts that race server startup
// (scripts/demo_net.sh): a per-attempt timeout plus retries with
// exponential backoff replaces "sleep and hope".
struct TcpConnectOptions {
  // Per-attempt connect timeout; <= 0 uses the OS default (blocking).
  int connect_timeout_ms = 0;
  // Additional attempts after a failed first one.  Backoff starts at
  // backoff_initial_ms and doubles per retry, capped at backoff_max_ms.
  int retries = 0;
  int backoff_initial_ms = 100;
  int backoff_max_ms = 2000;
};
Status TcpConnect(const std::string& host, int port,
                  const TcpConnectOptions& options,
                  std::unique_ptr<Connection>* connection);

}  // namespace lmerge::net

#endif  // LMERGE_NET_TCP_H_
