// In-process loopback transport: a pair of Connections joined by two
// in-memory byte queues.
//
// Exists so that every server session behaviour — handshakes, join/leave,
// feedback, error teardown — can be unit-tested deterministically, with the
// test driving bytes into MergeServer::OnBytes by hand and reading the
// server's responses out of the client end.  Queues are mutex+condvar
// protected, so the same transport also works across real threads (the
// throughput bench drives it from publisher threads).

#ifndef LMERGE_NET_LOOPBACK_H_
#define LMERGE_NET_LOOPBACK_H_

#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "net/transport.h"

namespace lmerge::net {

// Creates two connected endpoints; bytes sent on `.first` arrive on
// `.second` and vice versa.  The names label peer() for diagnostics.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
CreateLoopbackPair(const std::string& first_name = "loopback:a",
                   const std::string& second_name = "loopback:b");

// A Listener over loopback pairs: Connect() returns the client endpoint and
// queues the matching server endpoint for Accept().
class LoopbackListener : public Listener {
 public:
  LoopbackListener();
  ~LoopbackListener() override;

  // Creates a connection to this listener; never blocks.  Returns nullptr
  // after Close().
  std::unique_ptr<Connection> Connect(const std::string& client_name);

  Status Accept(std::unique_ptr<Connection>* connection) override;
  Status TryAccept(std::unique_ptr<Connection>* connection) override;
  int pollable_fd() const override;
  void Close() override;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace lmerge::net

#endif  // LMERGE_NET_LOOPBACK_H_
