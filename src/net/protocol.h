// Typed messages of the LMerge wire protocol, one per frame type.
//
// Payload layouts (all via common/serde.h, little-endian, length-prefixed
// strings; see docs/SERVICE.md for the byte-level tables):
//
//   HELLO     u32 version, u8 role, u8 property bits, i64 join_time,
//             string peer_name
//   WELCOME   u32 version, i32 stream_id (-1 for subscribers),
//             u8 algorithm_case (kUnknownAlgorithmCase before selection),
//             i64 output_stable
//   ELEMENT   one EncodeElement payload (stream/element_serde.h)
//   ELEMENTS  one EncodeSequence payload
//   FEEDBACK  i64 horizon
//   BYE       string reason
//   PAYLOAD_DEF    u32 id, row          (v2; defines a dictionary entry)
//   ELEMENTS_DICT  one EncodeSequenceDict payload (v2)
//   STATS_REQUEST  (empty)              (v3; poll the server's stats)
//   STATS_RESPONSE server summary + per-input table + metrics snapshot (v3)
//   CHECKPOINT_REQUEST  (empty)         (v4; standby asks for a snapshot)
//   CHECKPOINT_CHUNK    u32 index, string bytes (v4; one blob chunk)
//   CUT_CERT       u8 has_state, u64 checkpoint_bytes, u32 chunk_count,
//                  cut certificate (src/replica/cut_certificate.h)   (v4)
//
// Version negotiation: HELLO carries the client's highest supported
// version; WELCOME answers with min(client, server).  The negotiated
// version governs the session: dictionary frames (PAYLOAD_DEF /
// ELEMENTS_DICT) may only be sent on v2 sessions; STATS frames and the
// monitor role require v3; CHECKPOINT_* / CUT_CERT frames and the standby
// role require v4.  v1 peers keep the inline ELEMENTS encoding and v2
// peers never see a STATS frame, so old and new binaries interoperate.
//
// Every Decode* consumes exactly one message and rejects trailing bytes, so
// a frame is either a whole valid message or a Status error.

#ifndef LMERGE_NET_PROTOCOL_H_
#define LMERGE_NET_PROTOCOL_H_

#include <cstdint>
#include <string>

#include <vector>

#include "common/status.h"
#include "common/timestamp.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "properties/properties.h"
#include "replica/cut_certificate.h"
#include "stream/element.h"
#include "stream/element_serde.h"

namespace lmerge::net {

// v2 added the session payload dictionary (PAYLOAD_DEF / ELEMENTS_DICT);
// v3 added STATS_REQUEST / STATS_RESPONSE and the monitor role;
// v4 added CHECKPOINT_REQUEST / CHECKPOINT_CHUNK / CUT_CERT and the standby
// role (docs/REPLICATION.md);
// v5 added the per-batch origin timestamp: on a v5 session every ELEMENTS /
// ELEMENTS_DICT payload ends with `i64 origin_us` (the sender's steady
// clock in microseconds at serialization; 0 = unknown), and STATS_RESPONSE
// ends with the snapshot capture timestamps (`i64 captured_wall_ms`,
// `i64 captured_mono_us`).  Single-ELEMENT frames stay unstamped at every
// version.  v4-and-older peers negotiate down and the stamp never appears
// on their sessions (docs/OBSERVABILITY.md "Latency pipeline").
inline constexpr uint32_t kProtocolVersion = 5;
// Oldest version this build still speaks (inline-only encoding).
inline constexpr uint32_t kMinProtocolVersion = 1;
// First version allowed to carry dictionary frames.
inline constexpr uint32_t kPayloadDictVersion = 2;
// First version allowed to carry STATS frames (and the monitor role).
inline constexpr uint32_t kStatsVersion = 3;
// First version allowed to carry CHECKPOINT_* / CUT_CERT frames (and the
// standby role).
inline constexpr uint32_t kReplicationVersion = 4;
// First version whose batch frames carry the origin timestamp.
inline constexpr uint32_t kLatencyVersion = 5;

// Checkpoint blobs are streamed in chunks of this size so live ELEMENT
// fan-out interleaves with the transfer instead of stalling behind one
// multi-megabyte frame.
inline constexpr size_t kCheckpointChunkBytes = 256 * 1024;

// WELCOME algorithm_case value when the server has not yet instantiated a
// merge algorithm (no publisher has connected).
inline constexpr uint8_t kUnknownAlgorithmCase = 0xff;

enum class PeerRole : uint8_t {
  kPublisher = 0,   // one redundant input replica (Sec. II-2)
  kSubscriber = 1,  // receives the merged output stream
  // v3: observes stats only — no elements flow in either direction, so a
  // dashboard never competes with subscribers for fan-out bandwidth.
  kMonitor = 2,
  // v4: a subscriber that may additionally request the server's checkpoint
  // and cut certificate to jumpstart a hot replica (docs/REPLICATION.md).
  kStandby = 3,
};

const char* PeerRoleName(PeerRole role);

// Compact wire form of StreamProperties (one bit per flag).
uint8_t PropertiesToBits(const StreamProperties& properties);
StreamProperties PropertiesFromBits(uint8_t bits);

struct HelloMessage {
  uint32_t version = kProtocolVersion;
  PeerRole role = PeerRole::kPublisher;
  // Publisher: compile-time properties of the stream it will send, used for
  // factory algorithm selection (Sec. IV-G) on the server.
  StreamProperties properties;
  // Publisher: the stream is a correct presentation of the logical input for
  // every event alive at or after this time (Sec. V-B join protocol).
  Timestamp join_time = kMinTimestamp;
  std::string peer_name;
};

struct WelcomeMessage {
  uint32_t version = kProtocolVersion;
  int32_t stream_id = -1;
  uint8_t algorithm_case = kUnknownAlgorithmCase;
  Timestamp output_stable = kMinTimestamp;
};

struct FeedbackMessage {
  Timestamp horizon = kMinTimestamp;
};

struct ByeMessage {
  std::string reason;
};

struct PayloadDefMessage {
  uint32_t id = 0;
  Row payload;
};

// One input stream's row in a STATS_RESPONSE: the merge algorithm's
// per-input counters joined with the server's session registry.
struct StatsInputRow {
  int32_t stream_id = -1;
  std::string peer_name;  // empty when the publisher has disconnected
  bool connected = false;
  bool active = false;  // still attached to the merge algorithm
  int64_t inserts_in = 0;
  int64_t adjusts_in = 0;
  int64_t stables_in = 0;
  int64_t dropped = 0;
  int64_t contributed = 0;  // output inserts this input triggered
  Timestamp stable_point = kMinTimestamp;
};

// One chunk of a checkpoint blob in flight to a standby.  Chunks carry a
// dense index so reassembly can verify none was lost or reordered.
struct CheckpointChunkMessage {
  uint32_t index = 0;
  std::string bytes;
};

// Answer to CHECKPOINT_REQUEST, sent *before* the chunks: the cut
// certificate plus the framing the standby needs to reassemble the blob.
// The certificate is also embedded in the blob itself (checkpoint v2 flags
// bit 0); the wire copy lets the standby validate the transfer and learn
// its dedup horizon without waiting for the last chunk.
struct CutCertMessage {
  // False when the server has no checkpointable state to offer (no
  // algorithm yet, or a variant without snapshot support); no chunks follow
  // and the standby simply subscribes from scratch.
  bool has_state = false;
  uint64_t checkpoint_bytes = 0;
  uint32_t chunk_count = 0;
  replica::CutCertificate cert;
};

struct StatsResponseMessage {
  uint8_t algorithm_case = kUnknownAlgorithmCase;
  Timestamp output_stable = kMinTimestamp;
  int64_t output_inserts = 0;  // merged output TDB event count
  int64_t output_adjusts = 0;
  int32_t publishers = 0;   // connected publisher sessions
  int32_t subscribers = 0;  // connected subscriber sessions
  std::vector<StatsInputRow> inputs;
  // Full registry snapshot (engine/net/payload instruments and more).
  obs::MetricsSnapshot metrics;
};

// Encoders produce a complete frame (header + payload), ready to Send.
std::string EncodeHelloFrame(const HelloMessage& hello);
std::string EncodeWelcomeFrame(const WelcomeMessage& welcome);
std::string EncodeElementFrame(const StreamElement& element);
std::string EncodeElementsFrame(const ElementSequence& elements);
// v5 form: the payload ends with the i64 origin stamp.
std::string EncodeElementsFrame(const ElementSequence& elements,
                                int64_t origin_us);
std::string EncodeFeedbackFrame(const FeedbackMessage& feedback);
std::string EncodeByeFrame(const ByeMessage& bye);
std::string EncodePayloadDefFrame(const PayloadDefMessage& def);
std::string EncodeStatsRequestFrame();
// `version` is the session's negotiated protocol version: at
// kLatencyVersion and above the frame carries the metrics snapshot's
// capture timestamps after the snapshot; older sessions get the v3 layout
// byte-for-byte.
std::string EncodeStatsResponseFrame(const StatsResponseMessage& stats,
                                     uint32_t version = kProtocolVersion);
std::string EncodeCheckpointRequestFrame();
std::string EncodeCheckpointChunkFrame(const CheckpointChunkMessage& chunk);
std::string EncodeCutCertFrame(const CutCertMessage& cut);

// Dictionary-encodes `elements` against `dict`, emitting any PAYLOAD_DEF
// frames for newly seen payloads followed by one ELEMENTS_DICT frame —
// all concatenated into one buffer so a single Send keeps definitions
// ordered before the first reference.  v2 sessions only.
std::string EncodeElementsDictFrame(const ElementSequence& elements,
                                    PayloadDictEncoder* dict);
// v5 form: the ELEMENTS_DICT payload ends with the i64 origin stamp.
std::string EncodeElementsDictFrame(const ElementSequence& elements,
                                    PayloadDictEncoder* dict,
                                    int64_t origin_us);

// The shared pieces of one dictionary-coded batch, for senders that must
// assemble several protocol classes of the same batch (the serialize-once
// fan-out): exactly one intern pass against `dict` produces the PAYLOAD_DEF
// frames and the ELEMENTS_DICT payload bytes; v2..v4 and v5 frames are then
// built from the same parts without re-interning (a second pass would see
// every payload as already defined and emit no PAYLOAD_DEFs).
struct DictBatchParts {
  std::string defs;  // zero or more complete PAYLOAD_DEF frames
  std::string body;  // ELEMENTS_DICT payload bytes, unstamped, no header
};
DictBatchParts EncodeDictBatchParts(const ElementSequence& elements,
                                    PayloadDictEncoder* dict);

// Decoders parse a frame *payload* (as yielded by FrameAssembler).
Status DecodeHello(const std::string& payload, HelloMessage* hello);
Status DecodeWelcome(const std::string& payload, WelcomeMessage* welcome);
Status DecodeElementPayload(const std::string& payload,
                            StreamElement* element);
Status DecodeElementsPayload(const std::string& payload,
                             ElementSequence* elements);
// v5 form: the trailing i64 origin stamp is mandatory on the wire (the
// session version, not sniffing, decides which decoder runs).
Status DecodeElementsPayload(const std::string& payload,
                             ElementSequence* elements, int64_t* origin_us);
Status DecodeFeedback(const std::string& payload, FeedbackMessage* feedback);
Status DecodeBye(const std::string& payload, ByeMessage* bye);
Status DecodePayloadDefPayload(const std::string& payload,
                               PayloadDefMessage* def);
Status DecodeElementsDictPayload(const std::string& payload,
                                 const PayloadDictDecoder& dict,
                                 ElementSequence* elements);
// v5 form: the trailing i64 origin stamp is mandatory on the wire.
Status DecodeElementsDictPayload(const std::string& payload,
                                 const PayloadDictDecoder& dict,
                                 ElementSequence* elements,
                                 int64_t* origin_us);
Status DecodeStatsRequest(const std::string& payload);
Status DecodeStatsResponse(const std::string& payload,
                           StatsResponseMessage* stats);
Status DecodeCheckpointRequest(const std::string& payload);
Status DecodeCheckpointChunk(const std::string& payload,
                             CheckpointChunkMessage* chunk);
Status DecodeCutCert(const std::string& payload, CutCertMessage* cut);

}  // namespace lmerge::net

#endif  // LMERGE_NET_PROTOCOL_H_
