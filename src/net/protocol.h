// Typed messages of the LMerge wire protocol, one per frame type.
//
// Payload layouts (all via common/serde.h, little-endian, length-prefixed
// strings; see docs/SERVICE.md for the byte-level tables):
//
//   HELLO     u32 version, u8 role, u8 property bits, i64 join_time,
//             string peer_name
//   WELCOME   u32 version, i32 stream_id (-1 for subscribers),
//             u8 algorithm_case (kUnknownAlgorithmCase before selection),
//             i64 output_stable
//   ELEMENT   one EncodeElement payload (stream/element_serde.h)
//   ELEMENTS  one EncodeSequence payload
//   FEEDBACK  i64 horizon
//   BYE       string reason
//   PAYLOAD_DEF    u32 id, row          (v2; defines a dictionary entry)
//   ELEMENTS_DICT  one EncodeSequenceDict payload (v2)
//
// Version negotiation: HELLO carries the client's highest supported
// version; WELCOME answers with min(client, server).  The negotiated
// version governs the session: dictionary frames (PAYLOAD_DEF /
// ELEMENTS_DICT) may only be sent on v2 sessions; v1 peers keep the inline
// ELEMENTS encoding, so old and new binaries interoperate.
//
// Every Decode* consumes exactly one message and rejects trailing bytes, so
// a frame is either a whole valid message or a Status error.

#ifndef LMERGE_NET_PROTOCOL_H_
#define LMERGE_NET_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/timestamp.h"
#include "net/frame.h"
#include "properties/properties.h"
#include "stream/element.h"
#include "stream/element_serde.h"

namespace lmerge::net {

// v2 added the session payload dictionary (PAYLOAD_DEF / ELEMENTS_DICT).
inline constexpr uint32_t kProtocolVersion = 2;
// Oldest version this build still speaks (inline-only encoding).
inline constexpr uint32_t kMinProtocolVersion = 1;
// First version allowed to carry dictionary frames.
inline constexpr uint32_t kPayloadDictVersion = 2;

// WELCOME algorithm_case value when the server has not yet instantiated a
// merge algorithm (no publisher has connected).
inline constexpr uint8_t kUnknownAlgorithmCase = 0xff;

enum class PeerRole : uint8_t {
  kPublisher = 0,   // one redundant input replica (Sec. II-2)
  kSubscriber = 1,  // receives the merged output stream
};

const char* PeerRoleName(PeerRole role);

// Compact wire form of StreamProperties (one bit per flag).
uint8_t PropertiesToBits(const StreamProperties& properties);
StreamProperties PropertiesFromBits(uint8_t bits);

struct HelloMessage {
  uint32_t version = kProtocolVersion;
  PeerRole role = PeerRole::kPublisher;
  // Publisher: compile-time properties of the stream it will send, used for
  // factory algorithm selection (Sec. IV-G) on the server.
  StreamProperties properties;
  // Publisher: the stream is a correct presentation of the logical input for
  // every event alive at or after this time (Sec. V-B join protocol).
  Timestamp join_time = kMinTimestamp;
  std::string peer_name;
};

struct WelcomeMessage {
  uint32_t version = kProtocolVersion;
  int32_t stream_id = -1;
  uint8_t algorithm_case = kUnknownAlgorithmCase;
  Timestamp output_stable = kMinTimestamp;
};

struct FeedbackMessage {
  Timestamp horizon = kMinTimestamp;
};

struct ByeMessage {
  std::string reason;
};

struct PayloadDefMessage {
  uint32_t id = 0;
  Row payload;
};

// Encoders produce a complete frame (header + payload), ready to Send.
std::string EncodeHelloFrame(const HelloMessage& hello);
std::string EncodeWelcomeFrame(const WelcomeMessage& welcome);
std::string EncodeElementFrame(const StreamElement& element);
std::string EncodeElementsFrame(const ElementSequence& elements);
std::string EncodeFeedbackFrame(const FeedbackMessage& feedback);
std::string EncodeByeFrame(const ByeMessage& bye);
std::string EncodePayloadDefFrame(const PayloadDefMessage& def);

// Dictionary-encodes `elements` against `dict`, emitting any PAYLOAD_DEF
// frames for newly seen payloads followed by one ELEMENTS_DICT frame —
// all concatenated into one buffer so a single Send keeps definitions
// ordered before the first reference.  v2 sessions only.
std::string EncodeElementsDictFrame(const ElementSequence& elements,
                                    PayloadDictEncoder* dict);

// Decoders parse a frame *payload* (as yielded by FrameAssembler).
Status DecodeHello(const std::string& payload, HelloMessage* hello);
Status DecodeWelcome(const std::string& payload, WelcomeMessage* welcome);
Status DecodeElementPayload(const std::string& payload,
                            StreamElement* element);
Status DecodeElementsPayload(const std::string& payload,
                             ElementSequence* elements);
Status DecodeFeedback(const std::string& payload, FeedbackMessage* feedback);
Status DecodeBye(const std::string& payload, ByeMessage* bye);
Status DecodePayloadDefPayload(const std::string& payload,
                               PayloadDefMessage* def);
Status DecodeElementsDictPayload(const std::string& payload,
                                 const PayloadDictDecoder& dict,
                                 ElementSequence* elements);

}  // namespace lmerge::net

#endif  // LMERGE_NET_PROTOCOL_H_
