#include "net/protocol.h"

#include "common/serde.h"
#include "stream/element_serde.h"

namespace lmerge::net {

namespace {

// Bit positions of PropertiesToBits; kept stable across protocol versions.
constexpr uint8_t kBitInsertOnly = 1u << 0;
constexpr uint8_t kBitOrdered = 1u << 1;
constexpr uint8_t kBitStrictlyIncreasing = 1u << 2;
constexpr uint8_t kBitDeterministicTies = 1u << 3;
constexpr uint8_t kBitVsPayloadKey = 1u << 4;

Status FinishDecode(const Decoder& decoder) {
  if (!decoder.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after message");
  }
  return Status::Ok();
}

}  // namespace

const char* PeerRoleName(PeerRole role) {
  switch (role) {
    case PeerRole::kPublisher:
      return "publisher";
    case PeerRole::kSubscriber:
      return "subscriber";
    case PeerRole::kMonitor:
      return "monitor";
    case PeerRole::kStandby:
      return "standby";
  }
  return "unknown";
}

uint8_t PropertiesToBits(const StreamProperties& properties) {
  uint8_t bits = 0;
  if (properties.insert_only) bits |= kBitInsertOnly;
  if (properties.ordered) bits |= kBitOrdered;
  if (properties.strictly_increasing) bits |= kBitStrictlyIncreasing;
  if (properties.deterministic_ties) bits |= kBitDeterministicTies;
  if (properties.vs_payload_key) bits |= kBitVsPayloadKey;
  return bits;
}

StreamProperties PropertiesFromBits(uint8_t bits) {
  StreamProperties p;
  p.insert_only = (bits & kBitInsertOnly) != 0;
  p.ordered = (bits & kBitOrdered) != 0;
  p.strictly_increasing = (bits & kBitStrictlyIncreasing) != 0;
  p.deterministic_ties = (bits & kBitDeterministicTies) != 0;
  p.vs_payload_key = (bits & kBitVsPayloadKey) != 0;
  return p.Normalized();
}

std::string EncodeHelloFrame(const HelloMessage& hello) {
  Encoder encoder;
  encoder.WriteU32(hello.version);
  encoder.WriteU8(static_cast<uint8_t>(hello.role));
  encoder.WriteU8(PropertiesToBits(hello.properties));
  encoder.WriteI64(hello.join_time);
  encoder.WriteString(hello.peer_name);
  return EncodeFrame(FrameType::kHello, encoder.TakeBytes());
}

Status DecodeHello(const std::string& payload, HelloMessage* hello) {
  Decoder decoder(payload);
  Status status;
  uint8_t role = 0;
  uint8_t bits = 0;
  if (!(status = decoder.ReadU32(&hello->version)).ok()) return status;
  if (!(status = decoder.ReadU8(&role)).ok()) return status;
  if (role > static_cast<uint8_t>(PeerRole::kStandby)) {
    return Status::InvalidArgument("unknown peer role " +
                                   std::to_string(role));
  }
  hello->role = static_cast<PeerRole>(role);
  if (!(status = decoder.ReadU8(&bits)).ok()) return status;
  hello->properties = PropertiesFromBits(bits);
  if (!(status = decoder.ReadI64(&hello->join_time)).ok()) return status;
  if (!(status = decoder.ReadString(&hello->peer_name)).ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodeWelcomeFrame(const WelcomeMessage& welcome) {
  Encoder encoder;
  encoder.WriteU32(welcome.version);
  encoder.WriteU32(static_cast<uint32_t>(welcome.stream_id));
  encoder.WriteU8(welcome.algorithm_case);
  encoder.WriteI64(welcome.output_stable);
  return EncodeFrame(FrameType::kWelcome, encoder.TakeBytes());
}

Status DecodeWelcome(const std::string& payload, WelcomeMessage* welcome) {
  Decoder decoder(payload);
  Status status;
  uint32_t stream_id = 0;
  if (!(status = decoder.ReadU32(&welcome->version)).ok()) return status;
  if (!(status = decoder.ReadU32(&stream_id)).ok()) return status;
  welcome->stream_id = static_cast<int32_t>(stream_id);
  if (!(status = decoder.ReadU8(&welcome->algorithm_case)).ok()) {
    return status;
  }
  if (!(status = decoder.ReadI64(&welcome->output_stable)).ok()) {
    return status;
  }
  return FinishDecode(decoder);
}

std::string EncodeElementFrame(const StreamElement& element) {
  Encoder encoder;
  EncodeElement(element, &encoder);
  return EncodeFrame(FrameType::kElement, encoder.TakeBytes());
}

Status DecodeElementPayload(const std::string& payload,
                            StreamElement* element) {
  Decoder decoder(payload);
  const Status status = DecodeElement(&decoder, element);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodeElementsFrame(const ElementSequence& elements) {
  Encoder encoder;
  EncodeSequence(elements, &encoder);
  return EncodeFrame(FrameType::kElements, encoder.TakeBytes());
}

std::string EncodeElementsFrame(const ElementSequence& elements,
                                int64_t origin_us) {
  Encoder encoder;
  EncodeSequence(elements, &encoder);
  encoder.WriteI64(origin_us);
  return EncodeFrame(FrameType::kElements, encoder.TakeBytes());
}

Status DecodeElementsPayload(const std::string& payload,
                             ElementSequence* elements) {
  Decoder decoder(payload);
  const Status status = DecodeSequence(&decoder, elements);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

Status DecodeElementsPayload(const std::string& payload,
                             ElementSequence* elements, int64_t* origin_us) {
  Decoder decoder(payload);
  Status status = DecodeSequence(&decoder, elements);
  if (!status.ok()) return status;
  if (!(status = decoder.ReadI64(origin_us)).ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodeFeedbackFrame(const FeedbackMessage& feedback) {
  Encoder encoder;
  encoder.WriteI64(feedback.horizon);
  return EncodeFrame(FrameType::kFeedback, encoder.TakeBytes());
}

Status DecodeFeedback(const std::string& payload, FeedbackMessage* feedback) {
  Decoder decoder(payload);
  const Status status = decoder.ReadI64(&feedback->horizon);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodeByeFrame(const ByeMessage& bye) {
  Encoder encoder;
  encoder.WriteString(bye.reason);
  return EncodeFrame(FrameType::kBye, encoder.TakeBytes());
}

Status DecodeBye(const std::string& payload, ByeMessage* bye) {
  Decoder decoder(payload);
  const Status status = decoder.ReadString(&bye->reason);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodePayloadDefFrame(const PayloadDefMessage& def) {
  Encoder encoder;
  EncodePayloadDef(def.id, def.payload, &encoder);
  return EncodeFrame(FrameType::kPayloadDef, encoder.TakeBytes());
}

DictBatchParts EncodeDictBatchParts(const ElementSequence& elements,
                                    PayloadDictEncoder* dict) {
  Encoder body;
  std::vector<std::pair<uint32_t, Row>> new_defs;
  EncodeSequenceDict(elements, dict, &new_defs, &body);
  DictBatchParts parts;
  for (const auto& [id, payload] : new_defs) {
    Encoder def;
    EncodePayloadDef(id, payload, &def);
    AppendFrame(FrameType::kPayloadDef, def.TakeBytes(), &parts.defs);
  }
  parts.body = body.TakeBytes();
  return parts;
}

std::string EncodeElementsDictFrame(const ElementSequence& elements,
                                    PayloadDictEncoder* dict) {
  DictBatchParts parts = EncodeDictBatchParts(elements, dict);
  std::string out = std::move(parts.defs);
  AppendFrame(FrameType::kElementsDict, parts.body, &out);
  return out;
}

std::string EncodeElementsDictFrame(const ElementSequence& elements,
                                    PayloadDictEncoder* dict,
                                    int64_t origin_us) {
  DictBatchParts parts = EncodeDictBatchParts(elements, dict);
  Encoder stamp;
  stamp.WriteI64(origin_us);
  parts.body += stamp.TakeBytes();
  std::string out = std::move(parts.defs);
  AppendFrame(FrameType::kElementsDict, parts.body, &out);
  return out;
}

Status DecodePayloadDefPayload(const std::string& payload,
                               PayloadDefMessage* def) {
  Decoder decoder(payload);
  const Status status = DecodePayloadDef(&decoder, &def->id, &def->payload);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

Status DecodeElementsDictPayload(const std::string& payload,
                                 const PayloadDictDecoder& dict,
                                 ElementSequence* elements) {
  Decoder decoder(payload);
  const Status status = DecodeSequenceDict(&decoder, dict, elements);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

Status DecodeElementsDictPayload(const std::string& payload,
                                 const PayloadDictDecoder& dict,
                                 ElementSequence* elements,
                                 int64_t* origin_us) {
  Decoder decoder(payload);
  Status status = DecodeSequenceDict(&decoder, dict, elements);
  if (!status.ok()) return status;
  if (!(status = decoder.ReadI64(origin_us)).ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodeStatsRequestFrame() {
  return EncodeFrame(FrameType::kStatsRequest, std::string());
}

Status DecodeStatsRequest(const std::string& payload) {
  if (!payload.empty()) {
    return Status::InvalidArgument("STATS_REQUEST carries no payload");
  }
  return Status::Ok();
}

std::string EncodeStatsResponseFrame(const StatsResponseMessage& stats,
                                     uint32_t version) {
  Encoder encoder;
  encoder.WriteU8(stats.algorithm_case);
  encoder.WriteI64(stats.output_stable);
  encoder.WriteI64(stats.output_inserts);
  encoder.WriteI64(stats.output_adjusts);
  encoder.WriteU32(static_cast<uint32_t>(stats.publishers));
  encoder.WriteU32(static_cast<uint32_t>(stats.subscribers));
  encoder.WriteU32(static_cast<uint32_t>(stats.inputs.size()));
  for (const StatsInputRow& row : stats.inputs) {
    encoder.WriteU32(static_cast<uint32_t>(row.stream_id));
    encoder.WriteString(row.peer_name);
    encoder.WriteU8(static_cast<uint8_t>((row.connected ? 1 : 0) |
                                         (row.active ? 2 : 0)));
    encoder.WriteI64(row.inserts_in);
    encoder.WriteI64(row.adjusts_in);
    encoder.WriteI64(row.stables_in);
    encoder.WriteI64(row.dropped);
    encoder.WriteI64(row.contributed);
    encoder.WriteI64(row.stable_point);
  }
  obs::EncodeMetricsSnapshot(stats.metrics, &encoder);
  if (version >= kLatencyVersion) {
    encoder.WriteI64(stats.metrics.captured_wall_ms);
    encoder.WriteI64(stats.metrics.captured_mono_us);
  }
  return EncodeFrame(FrameType::kStatsResponse, encoder.TakeBytes());
}

Status DecodeStatsResponse(const std::string& payload,
                           StatsResponseMessage* stats) {
  Decoder decoder(payload);
  Status status;
  if (!(status = decoder.ReadU8(&stats->algorithm_case)).ok()) return status;
  if (!(status = decoder.ReadI64(&stats->output_stable)).ok()) return status;
  if (!(status = decoder.ReadI64(&stats->output_inserts)).ok()) return status;
  if (!(status = decoder.ReadI64(&stats->output_adjusts)).ok()) return status;
  uint32_t publishers = 0;
  uint32_t subscribers = 0;
  uint32_t input_count = 0;
  if (!(status = decoder.ReadU32(&publishers)).ok()) return status;
  if (!(status = decoder.ReadU32(&subscribers)).ok()) return status;
  stats->publishers = static_cast<int32_t>(publishers);
  stats->subscribers = static_cast<int32_t>(subscribers);
  if (!(status = decoder.ReadU32(&input_count)).ok()) return status;
  // Each row is at least 4 + 4 + 1 + 6*8 bytes; reject counts the buffer
  // cannot hold (hostile-input bound, same pattern as the serde decoders).
  if (input_count > decoder.remaining() / 57 + 1) {
    return Status::InvalidArgument("stats input row count too large");
  }
  stats->inputs.clear();
  stats->inputs.reserve(input_count);
  for (uint32_t i = 0; i < input_count; ++i) {
    StatsInputRow row;
    uint32_t stream_id = 0;
    uint8_t flags = 0;
    if (!(status = decoder.ReadU32(&stream_id)).ok()) return status;
    row.stream_id = static_cast<int32_t>(stream_id);
    if (!(status = decoder.ReadString(&row.peer_name)).ok()) return status;
    if (!(status = decoder.ReadU8(&flags)).ok()) return status;
    row.connected = (flags & 1) != 0;
    row.active = (flags & 2) != 0;
    if (!(status = decoder.ReadI64(&row.inserts_in)).ok()) return status;
    if (!(status = decoder.ReadI64(&row.adjusts_in)).ok()) return status;
    if (!(status = decoder.ReadI64(&row.stables_in)).ok()) return status;
    if (!(status = decoder.ReadI64(&row.dropped)).ok()) return status;
    if (!(status = decoder.ReadI64(&row.contributed)).ok()) return status;
    if (!(status = decoder.ReadI64(&row.stable_point)).ok()) return status;
    stats->inputs.push_back(std::move(row));
  }
  if (!(status = obs::DecodeMetricsSnapshot(&decoder, &stats->metrics))
           .ok()) {
    return status;
  }
  // v5 sessions append the snapshot capture timestamps; a v3/v4 response
  // ends here.  Anything else is trailing garbage either way.
  if (!decoder.AtEnd()) {
    if (!(status = decoder.ReadI64(&stats->metrics.captured_wall_ms)).ok()) {
      return status;
    }
    if (!(status = decoder.ReadI64(&stats->metrics.captured_mono_us)).ok()) {
      return status;
    }
  }
  return FinishDecode(decoder);
}

std::string EncodeCheckpointRequestFrame() {
  return EncodeFrame(FrameType::kCheckpointRequest, std::string());
}

Status DecodeCheckpointRequest(const std::string& payload) {
  if (!payload.empty()) {
    return Status::InvalidArgument("CHECKPOINT_REQUEST carries no payload");
  }
  return Status::Ok();
}

std::string EncodeCheckpointChunkFrame(const CheckpointChunkMessage& chunk) {
  Encoder encoder;
  encoder.Reserve(chunk.bytes.size() + 16);
  encoder.WriteU32(chunk.index);
  encoder.WriteString(chunk.bytes);
  return EncodeFrame(FrameType::kCheckpointChunk, encoder.TakeBytes());
}

Status DecodeCheckpointChunk(const std::string& payload,
                             CheckpointChunkMessage* chunk) {
  Decoder decoder(payload);
  Status status;
  if (!(status = decoder.ReadU32(&chunk->index)).ok()) return status;
  if (!(status = decoder.ReadString(&chunk->bytes)).ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodeCutCertFrame(const CutCertMessage& cut) {
  Encoder encoder;
  encoder.WriteU8(cut.has_state ? 1 : 0);
  encoder.WriteU64(cut.checkpoint_bytes);
  encoder.WriteU32(cut.chunk_count);
  replica::EncodeCutCertificate(cut.cert, &encoder);
  return EncodeFrame(FrameType::kCutCert, encoder.TakeBytes());
}

Status DecodeCutCert(const std::string& payload, CutCertMessage* cut) {
  Decoder decoder(payload);
  Status status;
  uint8_t has_state = 0;
  if (!(status = decoder.ReadU8(&has_state)).ok()) return status;
  cut->has_state = has_state != 0;
  if (!(status = decoder.ReadU64(&cut->checkpoint_bytes)).ok()) return status;
  if (!(status = decoder.ReadU32(&cut->chunk_count)).ok()) return status;
  if (!(status = replica::DecodeCutCertificate(&decoder, &cut->cert)).ok()) {
    return status;
  }
  if (!cut->has_state && (cut->checkpoint_bytes != 0 || cut->chunk_count != 0)) {
    return Status::InvalidArgument(
        "CUT_CERT announces chunks without checkpoint state");
  }
  if (cut->checkpoint_bytes >
      static_cast<uint64_t>(cut->chunk_count) * kMaxFramePayload) {
    return Status::InvalidArgument("CUT_CERT checkpoint size exceeds chunks");
  }
  return FinishDecode(decoder);
}

}  // namespace lmerge::net
