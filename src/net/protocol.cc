#include "net/protocol.h"

#include "common/serde.h"
#include "stream/element_serde.h"

namespace lmerge::net {

namespace {

// Bit positions of PropertiesToBits; kept stable across protocol versions.
constexpr uint8_t kBitInsertOnly = 1u << 0;
constexpr uint8_t kBitOrdered = 1u << 1;
constexpr uint8_t kBitStrictlyIncreasing = 1u << 2;
constexpr uint8_t kBitDeterministicTies = 1u << 3;
constexpr uint8_t kBitVsPayloadKey = 1u << 4;

Status FinishDecode(const Decoder& decoder) {
  if (!decoder.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after message");
  }
  return Status::Ok();
}

}  // namespace

const char* PeerRoleName(PeerRole role) {
  switch (role) {
    case PeerRole::kPublisher:
      return "publisher";
    case PeerRole::kSubscriber:
      return "subscriber";
  }
  return "unknown";
}

uint8_t PropertiesToBits(const StreamProperties& properties) {
  uint8_t bits = 0;
  if (properties.insert_only) bits |= kBitInsertOnly;
  if (properties.ordered) bits |= kBitOrdered;
  if (properties.strictly_increasing) bits |= kBitStrictlyIncreasing;
  if (properties.deterministic_ties) bits |= kBitDeterministicTies;
  if (properties.vs_payload_key) bits |= kBitVsPayloadKey;
  return bits;
}

StreamProperties PropertiesFromBits(uint8_t bits) {
  StreamProperties p;
  p.insert_only = (bits & kBitInsertOnly) != 0;
  p.ordered = (bits & kBitOrdered) != 0;
  p.strictly_increasing = (bits & kBitStrictlyIncreasing) != 0;
  p.deterministic_ties = (bits & kBitDeterministicTies) != 0;
  p.vs_payload_key = (bits & kBitVsPayloadKey) != 0;
  return p.Normalized();
}

std::string EncodeHelloFrame(const HelloMessage& hello) {
  Encoder encoder;
  encoder.WriteU32(hello.version);
  encoder.WriteU8(static_cast<uint8_t>(hello.role));
  encoder.WriteU8(PropertiesToBits(hello.properties));
  encoder.WriteI64(hello.join_time);
  encoder.WriteString(hello.peer_name);
  return EncodeFrame(FrameType::kHello, encoder.TakeBytes());
}

Status DecodeHello(const std::string& payload, HelloMessage* hello) {
  Decoder decoder(payload);
  Status status;
  uint8_t role = 0;
  uint8_t bits = 0;
  if (!(status = decoder.ReadU32(&hello->version)).ok()) return status;
  if (!(status = decoder.ReadU8(&role)).ok()) return status;
  if (role > static_cast<uint8_t>(PeerRole::kSubscriber)) {
    return Status::InvalidArgument("unknown peer role " +
                                   std::to_string(role));
  }
  hello->role = static_cast<PeerRole>(role);
  if (!(status = decoder.ReadU8(&bits)).ok()) return status;
  hello->properties = PropertiesFromBits(bits);
  if (!(status = decoder.ReadI64(&hello->join_time)).ok()) return status;
  if (!(status = decoder.ReadString(&hello->peer_name)).ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodeWelcomeFrame(const WelcomeMessage& welcome) {
  Encoder encoder;
  encoder.WriteU32(welcome.version);
  encoder.WriteU32(static_cast<uint32_t>(welcome.stream_id));
  encoder.WriteU8(welcome.algorithm_case);
  encoder.WriteI64(welcome.output_stable);
  return EncodeFrame(FrameType::kWelcome, encoder.TakeBytes());
}

Status DecodeWelcome(const std::string& payload, WelcomeMessage* welcome) {
  Decoder decoder(payload);
  Status status;
  uint32_t stream_id = 0;
  if (!(status = decoder.ReadU32(&welcome->version)).ok()) return status;
  if (!(status = decoder.ReadU32(&stream_id)).ok()) return status;
  welcome->stream_id = static_cast<int32_t>(stream_id);
  if (!(status = decoder.ReadU8(&welcome->algorithm_case)).ok()) {
    return status;
  }
  if (!(status = decoder.ReadI64(&welcome->output_stable)).ok()) {
    return status;
  }
  return FinishDecode(decoder);
}

std::string EncodeElementFrame(const StreamElement& element) {
  Encoder encoder;
  EncodeElement(element, &encoder);
  return EncodeFrame(FrameType::kElement, encoder.TakeBytes());
}

Status DecodeElementPayload(const std::string& payload,
                            StreamElement* element) {
  Decoder decoder(payload);
  const Status status = DecodeElement(&decoder, element);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodeElementsFrame(const ElementSequence& elements) {
  Encoder encoder;
  EncodeSequence(elements, &encoder);
  return EncodeFrame(FrameType::kElements, encoder.TakeBytes());
}

Status DecodeElementsPayload(const std::string& payload,
                             ElementSequence* elements) {
  Decoder decoder(payload);
  const Status status = DecodeSequence(&decoder, elements);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodeFeedbackFrame(const FeedbackMessage& feedback) {
  Encoder encoder;
  encoder.WriteI64(feedback.horizon);
  return EncodeFrame(FrameType::kFeedback, encoder.TakeBytes());
}

Status DecodeFeedback(const std::string& payload, FeedbackMessage* feedback) {
  Decoder decoder(payload);
  const Status status = decoder.ReadI64(&feedback->horizon);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodeByeFrame(const ByeMessage& bye) {
  Encoder encoder;
  encoder.WriteString(bye.reason);
  return EncodeFrame(FrameType::kBye, encoder.TakeBytes());
}

Status DecodeBye(const std::string& payload, ByeMessage* bye) {
  Decoder decoder(payload);
  const Status status = decoder.ReadString(&bye->reason);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

std::string EncodePayloadDefFrame(const PayloadDefMessage& def) {
  Encoder encoder;
  EncodePayloadDef(def.id, def.payload, &encoder);
  return EncodeFrame(FrameType::kPayloadDef, encoder.TakeBytes());
}

std::string EncodeElementsDictFrame(const ElementSequence& elements,
                                    PayloadDictEncoder* dict) {
  Encoder body;
  std::vector<std::pair<uint32_t, Row>> new_defs;
  EncodeSequenceDict(elements, dict, &new_defs, &body);
  std::string out;
  for (const auto& [id, payload] : new_defs) {
    Encoder def;
    EncodePayloadDef(id, payload, &def);
    AppendFrame(FrameType::kPayloadDef, def.TakeBytes(), &out);
  }
  AppendFrame(FrameType::kElementsDict, body.TakeBytes(), &out);
  return out;
}

Status DecodePayloadDefPayload(const std::string& payload,
                               PayloadDefMessage* def) {
  Decoder decoder(payload);
  const Status status = DecodePayloadDef(&decoder, &def->id, &def->payload);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

Status DecodeElementsDictPayload(const std::string& payload,
                                 const PayloadDictDecoder& dict,
                                 ElementSequence* elements) {
  Decoder decoder(payload);
  const Status status = DecodeSequenceDict(&decoder, dict, elements);
  if (!status.ok()) return status;
  return FinishDecode(decoder);
}

}  // namespace lmerge::net
