// Byte transport abstraction under the LMerge wire protocol.
//
// Two implementations ship with the library:
//   * net/tcp.h      — real POSIX sockets (the deployment path);
//   * net/loopback.h — in-process byte queues, so every session behaviour of
//     the server is deterministically unit-testable without sockets, timing,
//     or port allocation (tests/net/server_loopback_test.cc).
//
// Connections carry opaque bytes; framing is layered on top (net/frame.h).
// All errors are Status — a transport failure tears down one session, never
// the process.

#ifndef LMERGE_NET_TRANSPORT_H_
#define LMERGE_NET_TRANSPORT_H_

#include <memory>
#include <string>

#include "common/status.h"

namespace lmerge::net {

// A bidirectional byte pipe.  Send/Receive may be called from different
// threads; concurrent Sends from multiple threads must be externally
// serialized (the MergeServer sends under its session lock).
class Connection {
 public:
  virtual ~Connection() = default;

  // Writes all of `size` bytes (handling partial writes internally).
  virtual Status Send(const char* data, size_t size) = 0;
  Status Send(const std::string& bytes) {
    return Send(bytes.data(), bytes.size());
  }

  // Blocks until at least one byte arrives, the peer closes, or an error
  // occurs.  On success `*received` holds the byte count; 0 means a clean
  // end-of-stream.
  virtual Status Receive(char* buffer, size_t capacity, size_t* received) = 0;

  // Appends whatever bytes are immediately available to `*out` without
  // blocking (possibly none).  A peer close observed here marks the
  // connection closed() but still returns Ok with the final bytes.
  virtual Status TryReceive(std::string* out) = 0;

  // Half-close for shutdown: wakes any blocked Receive on either end.
  // Idempotent.
  virtual void Close() = 0;
  virtual bool closed() const = 0;

  // Human-readable peer identity for logs ("127.0.0.1:52114", "loopback:a").
  virtual std::string peer() const = 0;
};

// Accepts inbound connections.
class Listener {
 public:
  virtual ~Listener() = default;

  // Blocks until a connection arrives or the listener is closed (which
  // surfaces as a Status error).
  virtual Status Accept(std::unique_ptr<Connection>* connection) = 0;

  // Unblocks pending and future Accepts.  Idempotent.
  virtual void Close() = 0;

  // Bound port for TCP listeners (useful with ephemeral port 0); -1 when
  // the transport has no port concept.
  virtual int port() const { return -1; }
};

}  // namespace lmerge::net

#endif  // LMERGE_NET_TRANSPORT_H_
