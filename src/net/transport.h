// Byte transport abstraction under the LMerge wire protocol.
//
// Two implementations ship with the library:
//   * net/tcp.h      — real POSIX sockets (the deployment path);
//   * net/loopback.h — in-process byte queues, so every session behaviour of
//     the server is deterministically unit-testable without sockets, timing,
//     or port allocation (tests/net/server_loopback_test.cc).
//
// Connections carry opaque bytes; framing is layered on top (net/frame.h).
// All errors are Status — a transport failure tears down one session, never
// the process.

#ifndef LMERGE_NET_TRANSPORT_H_
#define LMERGE_NET_TRANSPORT_H_

#include <memory>
#include <string>
#include <utility>

#include "common/status.h"

namespace lmerge::net {

// A bidirectional byte pipe.  Send/Receive may be called from different
// threads; concurrent Sends from multiple threads must be externally
// serialized (the MergeServer sends under its session lock).
class Connection {
 public:
  virtual ~Connection() = default;

  // Writes all of `size` bytes (handling partial writes internally).
  virtual Status Send(const char* data, size_t size) = 0;
  Status Send(const std::string& bytes) {
    return Send(bytes.data(), bytes.size());
  }

  // Blocks until at least one byte arrives, the peer closes, or an error
  // occurs.  On success `*received` holds the byte count; 0 means a clean
  // end-of-stream.
  virtual Status Receive(char* buffer, size_t capacity, size_t* received) = 0;

  // Appends whatever bytes are immediately available to `*out` without
  // blocking (possibly none).  A peer close observed here marks the
  // connection closed() but still returns Ok with the final bytes.
  virtual Status TryReceive(std::string* out) = 0;

  // Sends a refcounted immutable frame buffer.  The default copies through
  // the blocking Send; the event-loop connection (net/server.cc) overrides
  // it to enqueue the shared buffer on a bounded outbound queue instead —
  // the serialize-once fan-out path, where one encoded batch is pinned by
  // every subscriber's queue rather than copied per subscriber.  A
  // non-blocking overrider returns an error (and closes) when the bound is
  // exceeded: the slow-consumer policy.
  virtual Status SendShared(std::shared_ptr<const std::string> frame) {
    return Send(frame->data(), frame->size());
  }

  // Writes as many of `size` bytes as the transport accepts right now
  // without blocking; `*sent` may be 0 when the peer's receive window is
  // full.  The default forwards to the blocking Send — transports that can
  // really short-write (TCP) override it; the event loop re-arms on
  // writability for the remainder.
  virtual Status TrySend(const char* data, size_t size, size_t* sent) {
    const Status status = Send(data, size);
    *sent = status.ok() ? size : 0;
    return status;
  }

  // A file descriptor that polls readable (epoll/poll) whenever Receive
  // or TryReceive would make progress — the socket itself for TCP, an
  // eventfd signalled on writes for loopback.  -1 when the transport is
  // not pollable (such a connection needs a pump thread).
  virtual int readable_fd() const { return -1; }

  // Half-close for shutdown: wakes any blocked Receive on either end.
  // Idempotent.
  virtual void Close() = 0;
  virtual bool closed() const = 0;

  // Human-readable peer identity for logs ("127.0.0.1:52114", "loopback:a").
  virtual std::string peer() const = 0;
};

// Accepts inbound connections.
class Listener {
 public:
  virtual ~Listener() = default;

  // Blocks until a connection arrives or the listener is closed (which
  // surfaces as a Status error).
  virtual Status Accept(std::unique_ptr<Connection>* connection) = 0;

  // Non-blocking accept: on Ok, `*connection` holds the new connection or
  // stays null when none is pending right now.  An error means the
  // listener is closed.  Only meaningful on pollable listeners.
  virtual Status TryAccept(std::unique_ptr<Connection>* connection) {
    connection->reset();
    return Status::FailedPrecondition("listener is not pollable");
  }

  // Polls readable whenever TryAccept would yield a connection (or the
  // listener closed); -1 when not pollable.
  virtual int pollable_fd() const { return -1; }

  // Unblocks pending and future Accepts.  Idempotent.
  virtual void Close() = 0;

  // Bound port for TCP listeners (useful with ephemeral port 0); -1 when
  // the transport has no port concept.
  virtual int port() const { return -1; }
};

}  // namespace lmerge::net

#endif  // LMERGE_NET_TRANSPORT_H_
