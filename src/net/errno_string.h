// Thread-safe errno formatting.
//
// std::strerror writes into a static buffer, so two threads reporting
// socket errors can interleave messages (clang-tidy concurrency-mt-unsafe,
// enabled in .clang-tidy, rejects it).  ErrnoString copies out of
// strerror_r's caller-supplied buffer instead, handling both the XSI and
// GNU variants so the header works regardless of _GNU_SOURCE.

#ifndef LMERGE_NET_ERRNO_STRING_H_
#define LMERGE_NET_ERRNO_STRING_H_

#include <cstring>
#include <string>

namespace lmerge::net {

namespace internal {
// XSI strerror_r: message already in buf; report failure generically.
inline const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
// GNU strerror_r: returns the message (buf may be unused).
inline const char* StrerrorResult(const char* msg, const char* /*buf*/) {
  return msg;
}
}  // namespace internal

// Returns the message for `err` (an errno value).
inline std::string ErrnoString(int err) {
  char buf[256];
  buf[0] = '\0';
  return internal::StrerrorResult(::strerror_r(err, buf, sizeof(buf)), buf);
}

// "what: message" — the common Status payload shape.
inline std::string ErrnoMessage(const char* what, int err) {
  return std::string(what) + ": " + ErrnoString(err);
}

}  // namespace lmerge::net

#endif  // LMERGE_NET_ERRNO_STRING_H_
