// Length-prefixed framing for the LMerge wire protocol.
//
// Every protocol message travels as one frame:
//
//   [u32 payload_length (LE)] [u8 frame_type] [payload bytes ...]
//
// The payload is a serde byte string (common/serde.h) whose layout depends
// on the frame type (net/protocol.h).  Framing is the only part of the
// protocol that touches raw transport bytes: a FrameAssembler is fed
// arbitrary chunks as they arrive from a Connection and yields complete
// frames.  Every malformed input — oversized length prefix, unknown type,
// truncation — surfaces as a Status error, never a crash (the same contract
// as the serde decoders, tests/net/frame_test.cc).

#ifndef LMERGE_NET_FRAME_H_
#define LMERGE_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace lmerge::net {

enum class FrameType : uint8_t {
  kHello = 1,     // client -> server: role, stream properties, join time
  kWelcome = 2,   // server -> client: assigned stream id, algorithm, stable
  kElement = 3,   // one stream element (publisher -> server -> subscribers)
  kElements = 4,  // a batched element sequence (same direction as kElement)
  kFeedback = 5,  // server -> publisher: stable-point horizon (Sec. V-D)
  kBye = 6,       // either direction: orderly close with a reason
  // Protocol v2 payload dictionary (docs/SERVICE.md): a session-scoped,
  // per-direction mapping id -> payload, so repeated payloads cross the
  // wire as 4-byte ids instead of full rows.
  kPayloadDef = 7,     // defines one (id, payload) dictionary entry
  kElementsDict = 8,   // batched sequence with dictionary-coded payloads
  // Protocol v3 live stats (docs/OBSERVABILITY.md): a monitor or any
  // connected peer polls the server's metrics registry over the session.
  kStatsRequest = 9,   // client -> server: ask for a stats snapshot
  kStatsResponse = 10, // server -> client: server state + metrics snapshot
  // Protocol v4 replication (docs/REPLICATION.md): a standby subscribes,
  // streams the primary's checkpoint under live traffic, and replays its
  // feed from the certified cut.
  kCheckpointRequest = 11,  // standby -> server: ask for checkpoint + cut
  kCheckpointChunk = 12,    // server -> standby: one checkpoint blob chunk
  kCutCert = 13,            // server -> standby: cut certificate + framing
};

const char* FrameTypeName(FrameType type);
bool IsKnownFrameType(uint8_t tag);

// Upper bound on a frame payload; a length prefix beyond this is treated as
// a protocol violation (protects the assembler from hostile 4 GiB prefixes).
inline constexpr uint32_t kMaxFramePayload = 16u * 1024u * 1024u;

// Frame header size on the wire: u32 length + u8 type.
inline constexpr size_t kFrameHeaderBytes = 5;

struct Frame {
  FrameType type = FrameType::kBye;
  std::string payload;
};

// Appends one encoded frame to `*out` (which may already hold frames).
void AppendFrame(FrameType type, const std::string& payload,
                 std::string* out);

// Convenience: a single encoded frame.
std::string EncodeFrame(FrameType type, const std::string& payload);

// Incremental frame parser.  Feed() accepts transport chunks of any size
// (including partial headers); Next() pops the earliest complete frame.
// After Feed() returns an error the assembler is poisoned — the connection
// carries garbage and must be torn down.
class FrameAssembler {
 public:
  explicit FrameAssembler(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  Status Feed(const char* data, size_t size);
  Status Feed(const std::string& bytes) {
    return Feed(bytes.data(), bytes.size());
  }

  // Moves the next complete frame into `*frame`; false when more bytes are
  // needed first.
  bool Next(Frame* frame);

  // Bytes buffered but not yet consumed as complete frames.
  size_t pending_bytes() const { return buffer_.size() - consumed_; }
  bool poisoned() const { return poisoned_; }

 private:
  // Validates the header at the front of the buffer (if present).
  Status CheckFront();

  uint32_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool poisoned_ = false;
};

}  // namespace lmerge::net

#endif  // LMERGE_NET_FRAME_H_
