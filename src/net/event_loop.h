// A non-blocking epoll event loop: one thread owning many file
// descriptors, the substrate of the multiplexed ServeLoop (net/server.h).
//
// The loop is level-triggered.  Each registered fd carries a callback that
// fires with the ready epoll event mask; callbacks run on the loop thread,
// one at a time, so per-connection state touched only from callbacks needs
// no lock.  Cross-thread work is injected with Post() (an eventfd wakes the
// loop), and Interest() re-arms a registered fd's event mask — the
// writability dance of a connection with queued output: EPOLLOUT is armed
// only while a backlog exists, so an idle socket costs nothing per tick.
//
// Why epoll and not a thread per connection: a million-user deployment
// means thousands of subscribers per server, and a pump thread each burns
// ~8 MiB of stack and a scheduler slot apiece for sessions that are idle
// almost always.  One loop thread multiplexes them all; --io-threads=N
// shards connections across N loops when one core of syscall work is not
// enough (tools/lmerge_served).
//
// Instrumented under net.loop.* (docs/OBSERVABILITY.md): wakeups, events
// dispatched, posted tasks, registered fds.

#ifndef LMERGE_NET_EVENT_LOOP_H_
#define LMERGE_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace lmerge::net {

class EventLoop {
 public:
  // Ready-event callback: `events` is the epoll event mask (EPOLLIN,
  // EPOLLOUT, EPOLLHUP, ...).  Runs on the loop thread.
  using Callback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` with the given interest mask.  The callback stays
  // registered until Remove(fd).  Any thread.
  Status Add(int fd, uint32_t events, Callback callback);

  // Re-arms the interest mask of a registered fd.  Any thread; epoll_ctl
  // is atomic with respect to a concurrent epoll_wait.
  Status Interest(int fd, uint32_t events);

  // Unregisters `fd`.  Must not be called from another thread while the
  // loop may still be dispatching this fd's callback — in practice:
  // callbacks remove their own fd, and foreign threads Post() the removal.
  void Remove(int fd);

  // Runs `task` on the loop thread before the next dispatch round.  The
  // only way for non-loop threads to touch loop-owned state.
  void Post(std::function<void()> task);

  // Dispatches until Stop().  `tick` (and `tick_interval_ms` > 0) adds a
  // periodic timer callback on the loop thread — the idle-timeout sweep.
  void Run();
  void Run(int tick_interval_ms, std::function<void()> tick);

  // Signals Run() to return after the current dispatch round.  Any thread.
  void Stop();

  // Registered fd count (excluding the internal wake eventfd).
  int registered() const;

 private:
  void Wake();
  void RunPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Post()/Stop() wake a blocked epoll_wait

  mutable Mutex mutex_;
  std::map<int, Callback> callbacks_ LM_GUARDED_BY(mutex_);
  std::vector<std::function<void()>> posted_ LM_GUARDED_BY(mutex_);
  bool stop_ LM_GUARDED_BY(mutex_) = false;

  obs::Counter* wakeups_metric_;
  obs::Counter* dispatches_metric_;
  obs::Counter* posted_metric_;
};

}  // namespace lmerge::net

#endif  // LMERGE_NET_EVENT_LOOP_H_
