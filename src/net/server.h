// MergeServer: the session layer of the networked LMerge service.
//
// Accepts N redundant publisher connections (identical query replicas on
// physically independent machines, Sec. II-2) and any number of subscriber
// connections.  Per session it:
//
//   * parses frames (net/frame.h) and enforces the handshake state machine
//     HELLO -> WELCOME -> {ELEMENT|ELEMENTS|BYE};
//   * instantiates the merge algorithm on the first publisher HELLO from
//     the declared stream properties (factory selection, Sec. IV-G) unless
//     an explicit variant is forced;
//   * maps publisher connect/disconnect to MergeAlgorithm::AddStream /
//     RemoveStream — the paper's joining/leaving-stream protocol
//     (Sec. V-B/C), including holding back stable() elements from streams
//     that have not yet reached their declared join time;
//   * delivers elements through a Merger: each publisher session enqueues
//     into its own SPSC ring (a decoded ELEMENTS frame goes in as one
//     batch) and merge threads drain them through
//     MergeAlgorithm::ProcessBatch — delivery is enqueue-only, so call
//     Flush() (or the flushing getters) before inspecting merged output.
//     With merge_threads == 1 this is the single-threaded ConcurrentMerger
//     (byte-identical to the pre-partitioned server); with more it is a
//     PartitionedMerger sharding the algorithm across that many threads
//     behind a min-frontier stable-point aggregator (engine/partitioned.h);
//   * fans the merged output out to every subscriber and to registered
//     in-process sinks.  Fan-out is serialize-once: the merger's output
//     thread buffers each batch and flushes it (after_batch) as ONE encoded
//     frame buffer per protocol class — a v1 ELEMENT/ELEMENTS frame and a
//     v2+ dictionary frame built against a server-wide broadcast dictionary
//     — shared by reference with every same-class subscriber, so encode
//     cost is independent of subscriber count (PERFORMANCE.md);
//   * pushes FEEDBACK frames carrying the output stable point to lagging
//     publishers (Sec. V-D), judged by per-session progress watermarks from
//     properties/runtime_stats.
//
// The server is transport-agnostic and passive: transports call OnConnect /
// OnBytes / OnDisconnect.  With the loopback transport those calls are made
// directly by tests, which makes every session behaviour deterministic;
// ServeLoop drives the same entry points from listener/connection threads
// for real TCP deployments.

#ifndef LMERGE_NET_SERVER_H_
#define LMERGE_NET_SERVER_H_

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/checkpoint.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/factory.h"
#include "engine/concurrent.h"
#include "engine/merger.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "obs/latency.h"
#include "properties/runtime_stats.h"
#include "stream/sink.h"

namespace lmerge::net {

class EventLoop;

struct MergeServerOptions {
  // Forced algorithm variant; unset selects from the first publisher's
  // declared properties.
  std::optional<MergeVariant> variant;
  MergePolicy policy = MergePolicy::Default();
  // Push FEEDBACK frames to lagging publishers as the output stable point
  // advances.
  bool feedback_enabled = true;
  // Log session events to stderr.
  bool verbose = false;
  // Ingestion tuning, forwarded to ConcurrentMergerOptions: per-publisher
  // ring capacity (full ring = backpressure on that session's transport
  // thread) and the drain batch size handed to ProcessBatch.
  size_t ring_capacity = 4096;
  size_t max_batch = 1024;
  // Merge threads.  1 (the default) runs the single-threaded
  // ConcurrentMerger, byte-identical to the pre-partitioned server; N > 1
  // shards the merge algorithm N ways by (payload, Vs) key hash behind a
  // min-frontier stable-point aggregator (engine/partitioned.h).  The
  // merged output is TDB-equivalent at every stable point either way.
  int merge_threads = 1;
  // Cap on payload-dictionary entries per v2 session direction; bounds the
  // per-session decoder memory and the per-subscriber encoder pin set.
  uint32_t dict_capacity = kDefaultPayloadDictCapacity;
};

class MergeServer {
 public:
  explicit MergeServer(MergeServerOptions options = MergeServerOptions());
  ~MergeServer();

  MergeServer(const MergeServer&) = delete;
  MergeServer& operator=(const MergeServer&) = delete;

  // Registers a transport connection and returns its session id.  The
  // connection must stay valid until OnDisconnect(id) returns; the server
  // only ever writes to it (responses, fan-out, feedback).
  int OnConnect(Connection* connection);

  // Feeds received bytes into the session.  A returned error means the
  // session was terminated (BYE already sent when possible); the transport
  // should drop the connection.
  Status OnBytes(int session_id, const char* data, size_t size);
  Status OnBytes(int session_id, const std::string& bytes) {
    return OnBytes(session_id, bytes.data(), bytes.size());
  }

  // Connection went away (EOF, error, or after an OnBytes failure).
  // Idempotent; detaches the publisher's stream.
  void OnDisconnect(int session_id);

  // In-process tap on the merged output (daemon --out capture, tests).
  // Invoked on the internal merge thread; must not call back into the
  // server.
  void AddOutputSink(ElementSink* sink);

  // Quiesces the merge: blocks until every element delivered so far has
  // been merged and fanned out, then refreshes join flags and pushes any
  // due FEEDBACK.  Call before inspecting output in tests/benchmarks —
  // delivery is enqueue-only, so OnBytes returning does not mean merged.
  void Flush();

  // Introspection (thread-safe).  output_stable() and merge_stats() flush
  // first, so they reflect every delivery that happened-before the call.
  Timestamp output_stable() const;
  int active_publishers() const;
  int publishers_seen() const;
  int subscriber_count() const;
  // True once every publisher that ever connected has gone away again (and
  // at least one did connect): the service has drained.
  bool drained() const;
  // Stats snapshot of the wrapped algorithm (zeroes before the first
  // publisher instantiates it).
  MergeOutputStats merge_stats() const;
  const char* algorithm_name() const;

  // True when the session's frame assembler holds a partial frame — the
  // peer stopped mid-frame.  The ServeLoop idle sweep uses this to
  // distinguish a stalled peer (kill after idle_timeout_ms) from one that
  // is merely quiet between complete frames (fine forever).
  bool SessionMidFrame(int session_id) const;

  // The STATS_RESPONSE payload: server summary, per-input table (merge
  // counters joined with session names), and the full metrics-registry
  // snapshot.  A live view — it does NOT quiesce the pipeline; call Flush()
  // first when exactness matters (e.g. after drain).
  StatsResponseMessage StatsSnapshot();

  // Refreshes the registry (algorithm export on the merge thread + payload
  // store gauges) and returns its snapshot; what `--metrics-interval`
  // serializes.  Same liveness caveat as StatsSnapshot().
  obs::MetricsSnapshot MetricsSnapshot();

  // Readiness probe for /readyz: true when the merge pipeline answers a
  // posted no-op within `timeout` (Merger::Responsive on every merge
  // thread), or trivially when no publisher has instantiated a merger yet.
  // Briefly holds the session lock, so a server wedged behind it also
  // (correctly) reports unready once the lock wait exceeds the caller's
  // patience.
  bool Ready(std::chrono::milliseconds timeout);

  // Seeds this server from another server's checkpoint: reconstructs the
  // certified variant + policy, restores the blob into it, detaches the
  // snapshot's input streams (their publishers live on the dead primary),
  // and starts the merger on the restored state.  The first publisher to
  // connect afterwards additionally adopts the snapshot's *output* views
  // (MergeAlgorithm::AdoptOutputView) — the standby jumpstart wiring, which
  // feeds the primary's merged output in as that first stream
  // (docs/REPLICATION.md).  Must be called before any publisher connects.
  Status AdoptCheckpoint(const std::string& blob,
                         const replica::CutCertificate& cert);

 private:
  enum class SessionState {
    kAwaitHello,
    kPublisher,
    kSubscriber,
    kMonitor,
    kStandby,
    kClosed,
  };

  // When a publisher's stable point first reached `watermark` (monotonic
  // ms).  A short per-session history of these marks is what prices the
  // merge.stable_lag_ms gauge: the output stable point S is as old as the
  // moment the leading input first covered S.
  struct WatermarkMark {
    Timestamp watermark = kMinTimestamp;
    int64_t mono_ms = 0;
  };

  struct Session {
    int id = 0;
    Connection* connection = nullptr;
    SessionState state = SessionState::kAwaitHello;
    FrameAssembler assembler;
    std::string name;
    // Negotiated protocol version: min(peer HELLO, kProtocolVersion).
    uint32_t version = kProtocolVersion;
    // Inbound payload dictionary (v2 publishers), built by PAYLOAD_DEF
    // frames; created on first use.
    std::unique_ptr<PayloadDictDecoder> dict_in;
    // Monotonic µs when the transport last handed this session bytes — the
    // rx half of the batch ingest stamp (obs/latency.h).
    int64_t last_rx_us = 0;
    // Publisher fields.
    int stream_id = -1;
    bool joined = false;
    Timestamp join_time = kMinTimestamp;
    StreamProperties declared;
    StreamStatsCollector stats;  // progress watermarks for feedback
    Timestamp last_feedback = kMinTimestamp;
    // Stable-lag history, appended per batch while metrics are on; bounded
    // (kWatermarkWindow), oldest marks fall off.
    std::deque<WatermarkMark> progress_marks;
  };

  // Buffers merged output on the merger's output thread (the merge thread
  // for merge_threads == 1, the aggregator thread for a partitioned merge)
  // and flushes it as whole batches through FanOutBatchLocked.  That thread
  // must NEVER take the server lock (a producer blocked on ring
  // backpressure may hold it) — Flush takes only the leaf fanout_mutex_.
  // The buffer itself is output-thread-only state and needs no lock; the
  // merger invokes Flush via its after_batch hook before any idle/barrier
  // waiter is released, so MergeServer::Flush() implies fanned-out.
  class FanOutSink : public ElementSink {
   public:
    explicit FanOutSink(MergeServer* server) : server_(server) {}
    void OnElement(const StreamElement& element) override LM_HOT_PATH;
    // Encodes the buffered batch once per protocol class and hands the
    // shared buffers to every subscriber (and sinks).  No-op when empty.
    // Records the fan-out stages of the latency pipeline
    // (latency.{merge_to_fanout,fanout,publish_to_fanout}_us).
    void Flush() LM_HOT_PATH;

   private:
    MergeServer* server_;
    ElementSequence batch_;  // output-thread-only
    // Oldest ingest stamp folded over the buffered batch (read per element
    // from the merge/aggregator thread-local, obs/latency.h) and the
    // monotonic µs of the first buffered element; both output-thread-only.
    obs::IngestStamp batch_stamp_;
    int64_t first_append_us_ = 0;
  };

  struct Subscriber {
    int session_id = 0;
    Connection* connection = nullptr;
    uint32_t version = kMinProtocolVersion;
    // Output elements successfully sent on this subscription; the standby's
    // dedup horizon when a cut certificate is taken mid-stream.
    int64_t elements_sent = 0;
  };

  // Session-lock protocol: every `...Locked()` method runs with mutex_
  // held (compiler-enforced via LM_REQUIRES); the public entry points
  // acquire it.  See DESIGN.md "Lock order" for the mutex_ -> fanout_mutex_
  // discipline.
  Status HandleFrameLocked(Session& session, const Frame& frame)
      LM_REQUIRES(mutex_);
  Status HandleHelloLocked(Session& session, const HelloMessage& hello)
      LM_REQUIRES(mutex_);
  // Assembles the STATS_RESPONSE message.
  StatsResponseMessage BuildStatsResponseLocked() LM_REQUIRES(mutex_);
  // Refreshes registry-exported state and snapshots it.
  obs::MetricsSnapshot MetricsSnapshotLocked() LM_REQUIRES(mutex_);
  Status DeliverElementLocked(Session& session, const StreamElement& element)
      LM_REQUIRES(mutex_);
  // ELEMENTS path: observe watermarks, drop held-back stables, hand the
  // survivors to the merge as one batch carrying its ingest stamp
  // (origin_us from a v5 frame, 0 otherwise; rx from the session).
  Status DeliverBatchLocked(Session& session, ElementSequence elements,
                            int64_t origin_us) LM_REQUIRES(mutex_);
  // Instantiates algorithm + merger for the first publisher.
  Status EnsureAlgorithmLocked(const StreamProperties& first_properties)
      LM_REQUIRES(mutex_);
  // Snapshots the merge state at a barrier (a consistent cut between
  // elements on every shard), then streams CUT_CERT + CHECKPOINT_CHUNK
  // frames to the standby session's connection.
  Status SendCheckpointLocked(Session& session) LM_REQUIRES(mutex_);
  // AdoptCheckpoint's restore path for an LMPC container: reconstructs a
  // PartitionedMerger with the blob's shard count, loads each shard's
  // state, and verifies the restored frontiers against the certificate.
  Status AdoptPartitionedCheckpointLocked(const std::string& blob,
                                          const replica::CutCertificate& cert)
      LM_REQUIRES(mutex_);
  // Delivers one flushed output batch: in-process sinks per element, then
  // each subscriber gets the shared once-encoded frame buffer for its
  // protocol class — v1 inline, v2..v4 dictionary, v5 dictionary + origin
  // stamp — built lazily (a v1-only server never touches the dictionary
  // and vice versa).  `origin_us` is the batch's folded origin stamp (0 =
  // unknown), re-broadcast on every v5 subscriber frame so downstream
  // `lmerge_subscribe --latency` can price publish→delivery.  Dead
  // subscribers are unregistered inline.
  void FanOutBatchLocked(const ElementSequence& batch, int64_t origin_us)
      LM_REQUIRES(fanout_mutex_) LM_HOT_PATH;
  // Dictionary-encodes `batch` against the server-wide broadcast dictionary
  // in ONE intern pass; new PAYLOAD_DEF frames land in the returned parts
  // AND on defs_tape_ so later v2+ joiners can be replayed into sync.  The
  // caller assembles the v2..v4 and v5 frame classes from the same parts.
  DictBatchParts EncodeDictBatchPartsLocked(const ElementSequence& batch)
      LM_REQUIRES(fanout_mutex_) LM_HOT_PATH;
  // Sends BYE (best effort) and releases the session's resources.
  void CloseSessionLocked(Session& session, const std::string& reason,
                          bool send_bye) LM_REQUIRES(mutex_);
  // WaitIdle on the merger, then run the stable-advance hooks if the
  // output stable point moved.
  void FlushLocked() LM_REQUIRES(mutex_);
  // Cheap snapshot check of the merger's stable point.
  void MaybeStableAdvanceLocked() LM_REQUIRES(mutex_);
  // After the output stable point advances: refresh join flags and push
  // feedback to publishers whose own progress is behind it.
  void AfterStableAdvanceLocked() LM_REQUIRES(mutex_);
  // Appends a {stable point, now} mark to the session's progress history
  // when its stable point advanced (metrics on only).
  void NoteProgressLocked(Session& session) LM_REQUIRES(mutex_);
  // Prices merge.stable_lag_ms: now minus the moment the leading publisher
  // first covered the current output stable point (0 when uncovered).
  int64_t StableLagMsLocked() LM_REQUIRES(mutex_);
  void Log(const Session& session, const std::string& message) const;

  // Stable-lag history bound per session (see WatermarkMark).
  static constexpr size_t kWatermarkWindow = 64;

  MergeServerOptions options_;
  mutable Mutex mutex_;
  FanOutSink fan_out_;
  // The pointers are guarded by mutex_; the pointees (algorithm state) are
  // owned by the merger's internal merge thread(s) — snapshot them via
  // Merger::CallAtBarrier / the snapshot helpers, never directly.
  // algorithm_ is only set on the single-threaded path (merge_threads == 1);
  // a PartitionedMerger owns its shard algorithms itself, so all access
  // goes through the Merger interface.
  std::unique_ptr<MergeAlgorithm> algorithm_ LM_GUARDED_BY(mutex_);
  std::unique_ptr<Merger> merger_ LM_GUARDED_BY(mutex_);
  // Meet over all publisher HELLOs.
  StreamProperties met_properties_ LM_GUARDED_BY(mutex_);
  std::map<int, Session> sessions_ LM_GUARDED_BY(mutex_);
  // Publisher name per merge input, kept after the session is gone so
  // STATS rows for crashed/departed replicas stay attributable.
  std::map<int, std::string> stream_names_ LM_GUARDED_BY(mutex_);
  int next_session_id_ LM_GUARDED_BY(mutex_) = 1;
  int publishers_seen_ LM_GUARDED_BY(mutex_) = 0;
  int active_publishers_ LM_GUARDED_BY(mutex_) = 0;
  Timestamp last_output_stable_ LM_GUARDED_BY(mutex_) = kMinTimestamp;
  // Variant actually instantiated (what a cut certificate must certify).
  MergeVariant variant_ LM_GUARDED_BY(mutex_) = MergeVariant::kLMR4;
  // Set by AdoptCheckpoint: the algorithm was restored from a snapshot, and
  // the next publisher stream must adopt the snapshot's output views.
  bool adopted_ LM_GUARDED_BY(mutex_) = false;
  bool adopt_output_pending_ LM_GUARDED_BY(mutex_) = false;

  // Fan-out registry, shared between session threads (register/unregister)
  // and the merge thread (emit).  Leaf lock: nothing is acquired while it
  // is held; mutex_ -> fanout_mutex_ is the only nesting order (see
  // DESIGN.md "Lock order"), declared so the analysis' -beta lock-order
  // checks can verify it.
  mutable Mutex fanout_mutex_ LM_ACQUIRED_AFTER(mutex_);
  std::vector<Subscriber> subscribers_ LM_GUARDED_BY(fanout_mutex_);
  std::vector<ElementSink*> output_sinks_ LM_GUARDED_BY(fanout_mutex_);
  // Server-wide outbound payload dictionary: PAYLOAD_DEF interning is paid
  // once per new payload, not once per subscriber.  All v2+ subscribers
  // decode against the same id space, which is sound because every one of
  // them receives the same frame sequence — late joiners first get
  // defs_tape_ (every def broadcast so far, in order) replayed at
  // registration, which reconstructs the dictionary state a from-the-start
  // subscriber would hold (same capacity, same eviction order).
  std::unique_ptr<PayloadDictEncoder> broadcast_dict_
      LM_GUARDED_BY(fanout_mutex_);
  std::string defs_tape_ LM_GUARDED_BY(fanout_mutex_);

  // Cached instrument handles (obs/metrics.h); see docs/OBSERVABILITY.md.
  obs::Counter* rx_bytes_metric_;
  obs::Counter* rx_frames_metric_;
  obs::Counter* tx_fanout_frames_metric_;
  obs::Counter* tx_fanout_bytes_metric_;
  obs::Counter* tx_feedback_metric_;
  obs::Counter* decode_errors_metric_;
  obs::Counter* stats_requests_metric_;
  obs::Counter* checkpoint_requests_metric_;
  obs::Counter* checkpoint_tx_bytes_metric_;
  obs::Counter* checkpoint_tx_chunks_metric_;
  // Serialize-once instrumentation: encoded_bytes/frames count each fan-out
  // encode ONCE regardless of subscriber count (the invariant CI asserts),
  // while tx.fanout.bytes above still counts per-subscriber wire bytes.
  obs::Counter* fanout_encoded_bytes_metric_;
  obs::Counter* fanout_encoded_frames_metric_;
  obs::Counter* fanout_batches_metric_;
  // Latency-pipeline fan-out stages (docs/OBSERVABILITY.md).
  obs::Histogram* merge_to_fanout_metric_;
  obs::Histogram* fanout_us_metric_;
  obs::Histogram* publish_to_fanout_metric_;
};

// Lets /readyz ping the serve loops: ServeLoop registers its event loops
// here (when given a registry) and clears them before teardown.  Ping posts
// a no-op to every registered loop and reports whether all of them ran it
// within the deadline — a wedged or stopped loop times out.  The mutex is
// held for the whole ping so Clear() (and the loop teardown behind it)
// cannot race a ping in flight.
class LoopPingRegistry {
 public:
  void Set(std::vector<EventLoop*> loops);
  void Clear();
  bool Ping(std::chrono::milliseconds timeout);

 private:
  mutable Mutex mutex_;
  std::vector<EventLoop*> loops_ LM_GUARDED_BY(mutex_);
};

// Drives a MergeServer from a Listener on a small pool of epoll event
// loops (net/event_loop.h): the listener and every connection register
// with a loop, reads dispatch TryReceive -> OnBytes, and writes drain
// bounded per-connection outbound queues on writability.  No per-session
// threads — 256 subscribers cost io_threads + merge threads total.
// Returns once the listener errors/closes and every loop has stopped.
// When `drain_publishers` > 0, the loop additionally closes the listener
// and returns after at least that many publishers connected and all of
// them disconnected again — the scripted-demo and test mode.
struct ServeLoopOptions {
  int drain_publishers = 0;
  // IO threads sharing the connection population (round-robin).  1 is
  // right until a single core of syscall work saturates.
  int io_threads = 1;
  // Per-subscriber outbound queue bound.  A subscriber whose unsent
  // backlog would exceed it is disconnected (slow-consumer policy,
  // net.loop.slow_consumer_disconnects) rather than allowed to grow the
  // queue without limit or stall the merge.
  size_t max_outbound_bytes = 64 * 1024 * 1024;
  // Kill sessions that stall mid-frame for longer than this (0 disables).
  // Complete-frame-aligned quiet is never a timeout.
  int idle_timeout_ms = 0;
  // When set, ServeLoop registers its event loops here on startup and
  // clears them before returning, so an HTTP /readyz probe can ping the IO
  // plane (see LoopPingRegistry).
  LoopPingRegistry* loop_pings = nullptr;
};
void ServeLoop(Listener* listener, MergeServer* server,
               const ServeLoopOptions& options = ServeLoopOptions());

}  // namespace lmerge::net

#endif  // LMERGE_NET_SERVER_H_
