// MergeServer: the session layer of the networked LMerge service.
//
// Accepts N redundant publisher connections (identical query replicas on
// physically independent machines, Sec. II-2) and any number of subscriber
// connections.  Per session it:
//
//   * parses frames (net/frame.h) and enforces the handshake state machine
//     HELLO -> WELCOME -> {ELEMENT|ELEMENTS|BYE};
//   * instantiates the merge algorithm on the first publisher HELLO from
//     the declared stream properties (factory selection, Sec. IV-G) unless
//     an explicit variant is forced;
//   * maps publisher connect/disconnect to MergeAlgorithm::AddStream /
//     RemoveStream — the paper's joining/leaving-stream protocol
//     (Sec. V-B/C), including holding back stable() elements from streams
//     that have not yet reached their declared join time;
//   * delivers elements through a Merger: each publisher session enqueues
//     into its own SPSC ring (a decoded ELEMENTS frame goes in as one
//     batch) and merge threads drain them through
//     MergeAlgorithm::ProcessBatch — delivery is enqueue-only, so call
//     Flush() (or the flushing getters) before inspecting merged output.
//     With merge_threads == 1 this is the single-threaded ConcurrentMerger
//     (byte-identical to the pre-partitioned server); with more it is a
//     PartitionedMerger sharding the algorithm across that many threads
//     behind a min-frontier stable-point aggregator (engine/partitioned.h);
//   * fans the merged output out to every subscriber as ELEMENT frames and
//     to registered in-process sinks, from the merge thread;
//   * pushes FEEDBACK frames carrying the output stable point to lagging
//     publishers (Sec. V-D), judged by per-session progress watermarks from
//     properties/runtime_stats.
//
// The server is transport-agnostic and passive: transports call OnConnect /
// OnBytes / OnDisconnect.  With the loopback transport those calls are made
// directly by tests, which makes every session behaviour deterministic;
// ServeLoop drives the same entry points from listener/connection threads
// for real TCP deployments.

#ifndef LMERGE_NET_SERVER_H_
#define LMERGE_NET_SERVER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/checkpoint.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/factory.h"
#include "engine/concurrent.h"
#include "engine/merger.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "properties/runtime_stats.h"
#include "stream/sink.h"

namespace lmerge::net {

struct MergeServerOptions {
  // Forced algorithm variant; unset selects from the first publisher's
  // declared properties.
  std::optional<MergeVariant> variant;
  MergePolicy policy = MergePolicy::Default();
  // Push FEEDBACK frames to lagging publishers as the output stable point
  // advances.
  bool feedback_enabled = true;
  // Log session events to stderr.
  bool verbose = false;
  // Ingestion tuning, forwarded to ConcurrentMergerOptions: per-publisher
  // ring capacity (full ring = backpressure on that session's transport
  // thread) and the drain batch size handed to ProcessBatch.
  size_t ring_capacity = 4096;
  size_t max_batch = 1024;
  // Merge threads.  1 (the default) runs the single-threaded
  // ConcurrentMerger, byte-identical to the pre-partitioned server; N > 1
  // shards the merge algorithm N ways by (payload, Vs) key hash behind a
  // min-frontier stable-point aggregator (engine/partitioned.h).  The
  // merged output is TDB-equivalent at every stable point either way.
  int merge_threads = 1;
  // Cap on payload-dictionary entries per v2 session direction; bounds the
  // per-session decoder memory and the per-subscriber encoder pin set.
  uint32_t dict_capacity = kDefaultPayloadDictCapacity;
};

class MergeServer {
 public:
  explicit MergeServer(MergeServerOptions options = MergeServerOptions());
  ~MergeServer();

  MergeServer(const MergeServer&) = delete;
  MergeServer& operator=(const MergeServer&) = delete;

  // Registers a transport connection and returns its session id.  The
  // connection must stay valid until OnDisconnect(id) returns; the server
  // only ever writes to it (responses, fan-out, feedback).
  int OnConnect(Connection* connection);

  // Feeds received bytes into the session.  A returned error means the
  // session was terminated (BYE already sent when possible); the transport
  // should drop the connection.
  Status OnBytes(int session_id, const char* data, size_t size);
  Status OnBytes(int session_id, const std::string& bytes) {
    return OnBytes(session_id, bytes.data(), bytes.size());
  }

  // Connection went away (EOF, error, or after an OnBytes failure).
  // Idempotent; detaches the publisher's stream.
  void OnDisconnect(int session_id);

  // In-process tap on the merged output (daemon --out capture, tests).
  // Invoked on the internal merge thread; must not call back into the
  // server.
  void AddOutputSink(ElementSink* sink);

  // Quiesces the merge: blocks until every element delivered so far has
  // been merged and fanned out, then refreshes join flags and pushes any
  // due FEEDBACK.  Call before inspecting output in tests/benchmarks —
  // delivery is enqueue-only, so OnBytes returning does not mean merged.
  void Flush();

  // Introspection (thread-safe).  output_stable() and merge_stats() flush
  // first, so they reflect every delivery that happened-before the call.
  Timestamp output_stable() const;
  int active_publishers() const;
  int publishers_seen() const;
  int subscriber_count() const;
  // True once every publisher that ever connected has gone away again (and
  // at least one did connect): the service has drained.
  bool drained() const;
  // Stats snapshot of the wrapped algorithm (zeroes before the first
  // publisher instantiates it).
  MergeOutputStats merge_stats() const;
  const char* algorithm_name() const;

  // The STATS_RESPONSE payload: server summary, per-input table (merge
  // counters joined with session names), and the full metrics-registry
  // snapshot.  A live view — it does NOT quiesce the pipeline; call Flush()
  // first when exactness matters (e.g. after drain).
  StatsResponseMessage StatsSnapshot();

  // Refreshes the registry (algorithm export on the merge thread + payload
  // store gauges) and returns its snapshot; what `--metrics-interval`
  // serializes.  Same liveness caveat as StatsSnapshot().
  obs::MetricsSnapshot MetricsSnapshot();

  // Seeds this server from another server's checkpoint: reconstructs the
  // certified variant + policy, restores the blob into it, detaches the
  // snapshot's input streams (their publishers live on the dead primary),
  // and starts the merger on the restored state.  The first publisher to
  // connect afterwards additionally adopts the snapshot's *output* views
  // (MergeAlgorithm::AdoptOutputView) — the standby jumpstart wiring, which
  // feeds the primary's merged output in as that first stream
  // (docs/REPLICATION.md).  Must be called before any publisher connects.
  Status AdoptCheckpoint(const std::string& blob,
                         const replica::CutCertificate& cert);

 private:
  enum class SessionState {
    kAwaitHello,
    kPublisher,
    kSubscriber,
    kMonitor,
    kStandby,
    kClosed,
  };

  struct Session {
    int id = 0;
    Connection* connection = nullptr;
    SessionState state = SessionState::kAwaitHello;
    FrameAssembler assembler;
    std::string name;
    // Negotiated protocol version: min(peer HELLO, kProtocolVersion).
    uint32_t version = kProtocolVersion;
    // Inbound payload dictionary (v2 publishers), built by PAYLOAD_DEF
    // frames; created on first use.
    std::unique_ptr<PayloadDictDecoder> dict_in;
    // Publisher fields.
    int stream_id = -1;
    bool joined = false;
    Timestamp join_time = kMinTimestamp;
    StreamProperties declared;
    StreamStatsCollector stats;  // progress watermarks for feedback
    Timestamp last_feedback = kMinTimestamp;
  };

  // Routes merged output to subscribers + registered sinks.  Runs on the
  // merger's output thread (the merge thread for merge_threads == 1, the
  // aggregator thread for a partitioned merge), which must NEVER take the
  // server lock (a producer blocked on ring backpressure may hold it) — so
  // the fan-out targets live in their own registry under fanout_mutex_.
  class FanOutSink : public ElementSink {
   public:
    explicit FanOutSink(MergeServer* server) : server_(server) {}
    void OnElement(const StreamElement& element) override;

   private:
    MergeServer* server_;
    // Merge-thread scratch for single-element dictionary batches (avoids a
    // vector allocation per element per v2 subscriber).
    ElementSequence scratch_;
  };

  struct Subscriber {
    int session_id = 0;
    Connection* connection = nullptr;
    uint32_t version = kMinProtocolVersion;
    // Outbound payload dictionary, one per v2 subscriber (ids are session
    // scoped).  Guarded by fanout_mutex_ like the registry itself.
    std::unique_ptr<PayloadDictEncoder> dict;
    // Output elements successfully sent on this subscription; the standby's
    // dedup horizon when a cut certificate is taken mid-stream.
    int64_t elements_sent = 0;
  };

  // Session-lock protocol: every `...Locked()` method runs with mutex_
  // held (compiler-enforced via LM_REQUIRES); the public entry points
  // acquire it.  See DESIGN.md "Lock order" for the mutex_ -> fanout_mutex_
  // discipline.
  Status HandleFrameLocked(Session& session, const Frame& frame)
      LM_REQUIRES(mutex_);
  Status HandleHelloLocked(Session& session, const HelloMessage& hello)
      LM_REQUIRES(mutex_);
  // Assembles the STATS_RESPONSE message.
  StatsResponseMessage BuildStatsResponseLocked() LM_REQUIRES(mutex_);
  // Refreshes registry-exported state and snapshots it.
  obs::MetricsSnapshot MetricsSnapshotLocked() LM_REQUIRES(mutex_);
  Status DeliverElementLocked(Session& session, const StreamElement& element)
      LM_REQUIRES(mutex_);
  // ELEMENTS path: observe watermarks, drop held-back stables, hand the
  // survivors to the merge as one batch.
  Status DeliverBatchLocked(Session& session, ElementSequence elements)
      LM_REQUIRES(mutex_);
  // Instantiates algorithm + merger for the first publisher.
  Status EnsureAlgorithmLocked(const StreamProperties& first_properties)
      LM_REQUIRES(mutex_);
  // Snapshots the merge state at a barrier (a consistent cut between
  // elements on every shard), then streams CUT_CERT + CHECKPOINT_CHUNK
  // frames to the standby session's connection.
  Status SendCheckpointLocked(Session& session) LM_REQUIRES(mutex_);
  // AdoptCheckpoint's restore path for an LMPC container: reconstructs a
  // PartitionedMerger with the blob's shard count, loads each shard's
  // state, and verifies the restored frontiers against the certificate.
  Status AdoptPartitionedCheckpointLocked(const std::string& blob,
                                          const replica::CutCertificate& cert)
      LM_REQUIRES(mutex_);
  // Sends BYE (best effort) and releases the session's resources.
  void CloseSessionLocked(Session& session, const std::string& reason,
                          bool send_bye) LM_REQUIRES(mutex_);
  // WaitIdle on the merger, then run the stable-advance hooks if the
  // output stable point moved.
  void FlushLocked() LM_REQUIRES(mutex_);
  // Cheap snapshot check of the merger's stable point.
  void MaybeStableAdvanceLocked() LM_REQUIRES(mutex_);
  // After the output stable point advances: refresh join flags and push
  // feedback to publishers whose own progress is behind it.
  void AfterStableAdvanceLocked() LM_REQUIRES(mutex_);
  void Log(const Session& session, const std::string& message) const;

  MergeServerOptions options_;
  mutable Mutex mutex_;
  FanOutSink fan_out_;
  // The pointers are guarded by mutex_; the pointees (algorithm state) are
  // owned by the merger's internal merge thread(s) — snapshot them via
  // Merger::CallAtBarrier / the snapshot helpers, never directly.
  // algorithm_ is only set on the single-threaded path (merge_threads == 1);
  // a PartitionedMerger owns its shard algorithms itself, so all access
  // goes through the Merger interface.
  std::unique_ptr<MergeAlgorithm> algorithm_ LM_GUARDED_BY(mutex_);
  std::unique_ptr<Merger> merger_ LM_GUARDED_BY(mutex_);
  // Meet over all publisher HELLOs.
  StreamProperties met_properties_ LM_GUARDED_BY(mutex_);
  std::map<int, Session> sessions_ LM_GUARDED_BY(mutex_);
  // Publisher name per merge input, kept after the session is gone so
  // STATS rows for crashed/departed replicas stay attributable.
  std::map<int, std::string> stream_names_ LM_GUARDED_BY(mutex_);
  int next_session_id_ LM_GUARDED_BY(mutex_) = 1;
  int publishers_seen_ LM_GUARDED_BY(mutex_) = 0;
  int active_publishers_ LM_GUARDED_BY(mutex_) = 0;
  Timestamp last_output_stable_ LM_GUARDED_BY(mutex_) = kMinTimestamp;
  // Variant actually instantiated (what a cut certificate must certify).
  MergeVariant variant_ LM_GUARDED_BY(mutex_) = MergeVariant::kLMR4;
  // Set by AdoptCheckpoint: the algorithm was restored from a snapshot, and
  // the next publisher stream must adopt the snapshot's output views.
  bool adopted_ LM_GUARDED_BY(mutex_) = false;
  bool adopt_output_pending_ LM_GUARDED_BY(mutex_) = false;

  // Fan-out registry, shared between session threads (register/unregister)
  // and the merge thread (emit).  Leaf lock: nothing is acquired while it
  // is held; mutex_ -> fanout_mutex_ is the only nesting order (see
  // DESIGN.md "Lock order"), declared so the analysis' -beta lock-order
  // checks can verify it.
  mutable Mutex fanout_mutex_ LM_ACQUIRED_AFTER(mutex_);
  std::vector<Subscriber> subscribers_ LM_GUARDED_BY(fanout_mutex_);
  std::vector<ElementSink*> output_sinks_ LM_GUARDED_BY(fanout_mutex_);

  // Cached instrument handles (obs/metrics.h); see docs/OBSERVABILITY.md.
  obs::Counter* rx_bytes_metric_;
  obs::Counter* rx_frames_metric_;
  obs::Counter* tx_fanout_frames_metric_;
  obs::Counter* tx_fanout_bytes_metric_;
  obs::Counter* tx_feedback_metric_;
  obs::Counter* decode_errors_metric_;
  obs::Counter* stats_requests_metric_;
  obs::Counter* checkpoint_requests_metric_;
  obs::Counter* checkpoint_tx_bytes_metric_;
  obs::Counter* checkpoint_tx_chunks_metric_;
};

// Drives a MergeServer from a Listener: accepts connections, spawns one
// thread per session pumping Receive -> OnBytes, and returns once the
// listener errors/closes and all session threads have drained.  When
// `drain_publishers` > 0, the loop additionally closes the listener and
// returns after at least that many publishers connected and all of them
// disconnected again — the scripted-demo and test mode.
struct ServeLoopOptions {
  int drain_publishers = 0;
};
void ServeLoop(Listener* listener, MergeServer* server,
               const ServeLoopOptions& options = ServeLoopOptions());

}  // namespace lmerge::net

#endif  // LMERGE_NET_SERVER_H_
