// Client-side session helpers: a publisher that ships a physical stream to
// an lmerge_served instance, and a subscriber that receives the merged
// output.  Both wrap any Connection (TCP in the tools, loopback in tests).

#ifndef LMERGE_NET_CLIENT_H_
#define LMERGE_NET_CLIENT_H_

#include <functional>
#include <memory>
#include <string>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "stream/sink.h"

namespace lmerge::net {

// Blocks on `connection` until `assembler` yields a frame, EOF, or error.
// The building block of every client below, exported for sessions with
// bespoke frame flows (the standby replica's checkpoint transfer).
Status ReceiveFrame(Connection* connection, FrameAssembler* assembler,
                    Frame* frame);

// One redundant input replica (Sec. II-2).  Usage:
//   PublisherClient pub(std::move(connection));
//   pub.Handshake(properties, join_time, "replica-a", &welcome);
//   for (...) pub.Publish(element);     // or PublishBatch
//   pub.Finish("done");
//
// Between publishes, Poll() drains server frames without blocking; FEEDBACK
// advances feedback_horizon(), letting the caller fast-forward past
// elements whose lifetime ended before the merged output's stable point
// (Sec. V-D) — see ShouldSkip.
class PublisherClient {
 public:
  explicit PublisherClient(std::unique_ptr<Connection> connection);
  ~PublisherClient();

  // Sends HELLO and blocks for the server's WELCOME (or BYE -> error).
  Status Handshake(const StreamProperties& properties, Timestamp join_time,
                   const std::string& name,
                   WelcomeMessage* welcome = nullptr);

  Status Publish(const StreamElement& element);
  Status PublishBatch(const ElementSequence& elements);

  // Drains pending server->client traffic without blocking.
  Status Poll();

  // True when `element` no longer matters to the merged output: its
  // lifetime ends before the feedback horizon, so the server would drop it.
  bool ShouldSkip(const StreamElement& element) const;

  // Orderly close: sends BYE.  Dropping the client without Finish models a
  // crashed replica (the server detaches the stream on EOF).
  Status Finish(const std::string& reason = "done");

  Timestamp feedback_horizon() const { return feedback_horizon_; }
  bool server_said_bye() const { return server_said_bye_; }
  const std::string& bye_reason() const { return bye_reason_; }
  // Version agreed in the WELCOME; kMinProtocolVersion before Handshake.
  uint32_t negotiated_version() const { return version_; }
  Connection* connection() { return connection_.get(); }

 private:
  Status ProcessFrame(const Frame& frame);
  Status DrainAssembler();

  std::unique_ptr<Connection> connection_;
  FrameAssembler assembler_;
  Timestamp feedback_horizon_ = kMinTimestamp;
  bool server_said_bye_ = false;
  std::string bye_reason_;
  uint32_t version_ = kMinProtocolVersion;
  // Outbound payload dictionary; non-null once a v2 session is negotiated.
  // PublishBatch then ships repeated payloads as 4-byte ids.
  std::unique_ptr<PayloadDictEncoder> dict_;
};

// v3 monitor session: polls the server's live stats (per-input merge
// counters + metrics-registry snapshot) without joining the element flow.
// What lmerge_stats is built on.  Usage:
//   StatsClient mon(std::move(connection));
//   mon.Handshake("dashboard");
//   StatsResponseMessage stats;
//   while (...) mon.PollStats(&stats);   // blocking request/response
class StatsClient {
 public:
  explicit StatsClient(std::unique_ptr<Connection> connection);
  ~StatsClient();

  // Sends HELLO with the monitor role; fails (with the server's BYE reason)
  // against pre-v3 servers, which cannot answer STATS_REQUEST.
  Status Handshake(const std::string& name,
                   WelcomeMessage* welcome = nullptr);

  // One STATS_REQUEST -> STATS_RESPONSE round trip; blocks for the reply.
  Status PollStats(StatsResponseMessage* stats);

  Status Finish(const std::string& reason = "done");

  const std::string& bye_reason() const { return bye_reason_; }
  uint32_t negotiated_version() const { return version_; }
  Connection* connection() { return connection_.get(); }

 private:
  std::unique_ptr<Connection> connection_;
  FrameAssembler assembler_;
  std::string bye_reason_;
  uint32_t version_ = kMinProtocolVersion;
};

// Receives the merged output stream.
class SubscriberClient {
 public:
  explicit SubscriberClient(std::unique_ptr<Connection> connection);
  ~SubscriberClient();

  Status Handshake(const std::string& name,
                   WelcomeMessage* welcome = nullptr);

  // Called once per stamped batch (v5 sessions; origin_us != 0), before the
  // batch's elements reach the sink.  `origin_us` is the publisher's steady
  // clock at send: on the same host, now - origin_us is the end-to-end
  // publish->delivery latency (what lmerge_subscribe --latency reports).
  void set_stamp_observer(
      std::function<void(int64_t origin_us, size_t count)> observer) {
    stamp_observer_ = std::move(observer);
  }

  // Blocks, delivering each merged element to `sink`, until the server says
  // BYE or closes the connection; both are a clean end of stream.
  Status Consume(ElementSink* sink);

  int64_t elements_received() const { return elements_received_; }
  const std::string& bye_reason() const { return bye_reason_; }
  uint32_t negotiated_version() const { return version_; }
  Connection* connection() { return connection_.get(); }

 private:
  void NoteBatchStamp(int64_t origin_us, size_t count);

  std::unique_ptr<Connection> connection_;
  FrameAssembler assembler_;
  int64_t elements_received_ = 0;
  std::string bye_reason_;
  uint32_t version_ = kMinProtocolVersion;
  // Inbound payload dictionary for v2 sessions, fed by PAYLOAD_DEF frames.
  std::unique_ptr<PayloadDictDecoder> dict_;
  std::function<void(int64_t, size_t)> stamp_observer_;
};

}  // namespace lmerge::net

#endif  // LMERGE_NET_CLIENT_H_
