#include "net/client.h"

#include "obs/latency.h"

namespace lmerge::net {

Status ReceiveFrame(Connection* connection, FrameAssembler* assembler,
                    Frame* frame) {
  while (true) {
    if (assembler->Next(frame)) return Status::Ok();
    if (assembler->poisoned()) {
      return Status::InvalidArgument("malformed frame stream from server");
    }
    char buffer[64 * 1024];
    size_t received = 0;
    Status status = connection->Receive(buffer, sizeof(buffer), &received);
    if (!status.ok()) return status;
    if (received == 0) {
      return Status::FailedPrecondition("connection closed by server");
    }
    status = assembler->Feed(buffer, received);
    if (!status.ok()) return status;
  }
}

PublisherClient::PublisherClient(std::unique_ptr<Connection> connection)
    : connection_(std::move(connection)) {
  LM_CHECK(connection_ != nullptr);
}

PublisherClient::~PublisherClient() = default;

Status PublisherClient::Handshake(const StreamProperties& properties,
                                  Timestamp join_time,
                                  const std::string& name,
                                  WelcomeMessage* welcome) {
  HelloMessage hello;
  hello.role = PeerRole::kPublisher;
  hello.properties = properties;
  hello.join_time = join_time;
  hello.peer_name = name;
  Status status = connection_->Send(EncodeHelloFrame(hello));
  if (!status.ok()) return status;
  Frame frame;
  status = ReceiveFrame(connection_.get(), &assembler_, &frame);
  if (!status.ok()) return status;
  if (frame.type == FrameType::kBye) {
    ByeMessage bye;
    // Best effort: a BYE that fails to decode just yields an empty
    // reason; the session outcome is the same either way.
    (void)DecodeBye(frame.payload, &bye);
    server_said_bye_ = true;
    bye_reason_ = bye.reason;
    return Status::FailedPrecondition("server rejected session: " +
                                      bye.reason);
  }
  if (frame.type != FrameType::kWelcome) {
    return Status::InvalidArgument(
        std::string("expected WELCOME, got ") + FrameTypeName(frame.type));
  }
  WelcomeMessage parsed;
  status = DecodeWelcome(frame.payload, &parsed);
  if (!status.ok()) return status;
  // The server answers with min(our version, its version); anything above
  // what we offered (or below the floor) is a broken negotiation.
  if (parsed.version < kMinProtocolVersion ||
      parsed.version > kProtocolVersion) {
    return Status::InvalidArgument("server protocol version mismatch");
  }
  version_ = parsed.version;
  if (version_ >= kPayloadDictVersion) {
    dict_ = std::make_unique<PayloadDictEncoder>();
  }
  if (welcome != nullptr) *welcome = parsed;
  return Status::Ok();
}

Status PublisherClient::ProcessFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kFeedback: {
      FeedbackMessage feedback;
      const Status status = DecodeFeedback(frame.payload, &feedback);
      if (!status.ok()) return status;
      feedback_horizon_ = std::max(feedback_horizon_, feedback.horizon);
      return Status::Ok();
    }
    case FrameType::kBye: {
      ByeMessage bye;
      // Best effort: a BYE that fails to decode just yields an empty
      // reason; the session outcome is the same either way.
      (void)DecodeBye(frame.payload, &bye);
      server_said_bye_ = true;
      bye_reason_ = bye.reason;
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument(
          std::string("unexpected frame from server: ") +
          FrameTypeName(frame.type));
  }
}

Status PublisherClient::DrainAssembler() {
  Frame frame;
  while (assembler_.Next(&frame)) {
    const Status status = ProcessFrame(frame);
    if (!status.ok()) return status;
  }
  if (assembler_.poisoned()) {
    return Status::InvalidArgument("malformed frame stream from server");
  }
  return Status::Ok();
}

Status PublisherClient::Poll() {
  std::string bytes;
  Status status = connection_->TryReceive(&bytes);
  if (!status.ok()) return status;
  if (!bytes.empty()) {
    status = assembler_.Feed(bytes);
    if (!status.ok()) return status;
  }
  return DrainAssembler();
}

bool PublisherClient::ShouldSkip(const StreamElement& element) const {
  if (element.is_stable()) return false;
  return element.ve() < feedback_horizon_ &&
         (!element.is_adjust() || element.v_old() < feedback_horizon_);
}

Status PublisherClient::Publish(const StreamElement& element) {
  if (server_said_bye_) {
    return Status::FailedPrecondition("server closed session: " +
                                      bye_reason_);
  }
  return connection_->Send(EncodeElementFrame(element));
}

Status PublisherClient::PublishBatch(const ElementSequence& elements) {
  if (server_said_bye_) {
    return Status::FailedPrecondition("server closed session: " +
                                      bye_reason_);
  }
  if (version_ >= kLatencyVersion) {
    // v5: the batch carries its origin stamp (our steady clock at send);
    // the server folds it into the end-to-end latency histograms and
    // forwards it to --latency subscribers.
    const int64_t origin_us = obs::MonotonicMicros();
    if (dict_ != nullptr) {
      return connection_->Send(
          EncodeElementsDictFrame(elements, dict_.get(), origin_us));
    }
    return connection_->Send(EncodeElementsFrame(elements, origin_us));
  }
  if (dict_ != nullptr) {
    // v2: one Send carrying PAYLOAD_DEFs for first-seen payloads followed
    // by the dictionary-coded batch.
    return connection_->Send(EncodeElementsDictFrame(elements, dict_.get()));
  }
  return connection_->Send(EncodeElementsFrame(elements));
}

Status PublisherClient::Finish(const std::string& reason) {
  ByeMessage bye;
  bye.reason = reason;
  const Status status = connection_->Send(EncodeByeFrame(bye));
  if (status.ok()) {
    // Drain whatever the server pushed (FEEDBACK, a BYE reply) until it
    // closes the session in response to our BYE.  Closing with unread
    // receive data would RST the connection, and the reset discards our
    // own still-in-flight elements on the server side.
    char buffer[4096];
    size_t received = 0;
    while (connection_->Receive(buffer, sizeof(buffer), &received).ok() &&
           received > 0) {
    }
  }
  connection_->Close();
  return status;
}

StatsClient::StatsClient(std::unique_ptr<Connection> connection)
    : connection_(std::move(connection)) {
  LM_CHECK(connection_ != nullptr);
}

StatsClient::~StatsClient() = default;

Status StatsClient::Handshake(const std::string& name,
                              WelcomeMessage* welcome) {
  HelloMessage hello;
  hello.role = PeerRole::kMonitor;
  hello.peer_name = name;
  Status status = connection_->Send(EncodeHelloFrame(hello));
  if (!status.ok()) return status;
  Frame frame;
  status = ReceiveFrame(connection_.get(), &assembler_, &frame);
  if (!status.ok()) return status;
  if (frame.type == FrameType::kBye) {
    // Pre-v3 servers (or ones built without stats) reject the monitor role
    // with a BYE; surface their reason instead of a generic decode error.
    ByeMessage bye;
    // Best effort: a BYE that fails to decode just yields an empty
    // reason; the session outcome is the same either way.
    (void)DecodeBye(frame.payload, &bye);
    bye_reason_ = bye.reason;
    return Status::FailedPrecondition("server rejected monitor session: " +
                                      bye.reason);
  }
  if (frame.type != FrameType::kWelcome) {
    return Status::InvalidArgument(
        std::string("expected WELCOME, got ") + FrameTypeName(frame.type));
  }
  WelcomeMessage parsed;
  status = DecodeWelcome(frame.payload, &parsed);
  if (!status.ok()) return status;
  if (parsed.version < kStatsVersion || parsed.version > kProtocolVersion) {
    return Status::InvalidArgument(
        "server negotiated v" + std::to_string(parsed.version) +
        "; STATS needs v" + std::to_string(kStatsVersion));
  }
  version_ = parsed.version;
  if (welcome != nullptr) *welcome = parsed;
  return Status::Ok();
}

Status StatsClient::PollStats(StatsResponseMessage* stats) {
  LM_CHECK(stats != nullptr);
  Status status = connection_->Send(EncodeStatsRequestFrame());
  if (!status.ok()) return status;
  Frame frame;
  status = ReceiveFrame(connection_.get(), &assembler_, &frame);
  if (!status.ok()) return status;
  if (frame.type == FrameType::kBye) {
    ByeMessage bye;
    // Best effort: a BYE that fails to decode just yields an empty
    // reason; the session outcome is the same either way.
    (void)DecodeBye(frame.payload, &bye);
    bye_reason_ = bye.reason;
    return Status::FailedPrecondition("server closed session: " +
                                      bye.reason);
  }
  if (frame.type != FrameType::kStatsResponse) {
    return Status::InvalidArgument(
        std::string("expected STATS_RESPONSE, got ") +
        FrameTypeName(frame.type));
  }
  return DecodeStatsResponse(frame.payload, stats);
}

Status StatsClient::Finish(const std::string& reason) {
  ByeMessage bye;
  bye.reason = reason;
  const Status status = connection_->Send(EncodeByeFrame(bye));
  connection_->Close();
  return status;
}

SubscriberClient::SubscriberClient(std::unique_ptr<Connection> connection)
    : connection_(std::move(connection)) {
  LM_CHECK(connection_ != nullptr);
}

SubscriberClient::~SubscriberClient() = default;

Status SubscriberClient::Handshake(const std::string& name,
                                   WelcomeMessage* welcome) {
  HelloMessage hello;
  hello.role = PeerRole::kSubscriber;
  hello.peer_name = name;
  Status status = connection_->Send(EncodeHelloFrame(hello));
  if (!status.ok()) return status;
  Frame frame;
  status = ReceiveFrame(connection_.get(), &assembler_, &frame);
  if (!status.ok()) return status;
  if (frame.type != FrameType::kWelcome) {
    return Status::InvalidArgument(
        std::string("expected WELCOME, got ") + FrameTypeName(frame.type));
  }
  WelcomeMessage parsed;
  status = DecodeWelcome(frame.payload, &parsed);
  if (!status.ok()) return status;
  if (parsed.version < kMinProtocolVersion ||
      parsed.version > kProtocolVersion) {
    return Status::InvalidArgument("server protocol version mismatch");
  }
  version_ = parsed.version;
  if (version_ >= kPayloadDictVersion) {
    dict_ = std::make_unique<PayloadDictDecoder>();
  }
  if (welcome != nullptr) *welcome = parsed;
  return Status::Ok();
}

void SubscriberClient::NoteBatchStamp(int64_t origin_us, size_t count) {
  if (stamp_observer_ && origin_us != 0 && count > 0) {
    stamp_observer_(origin_us, count);
  }
}

Status SubscriberClient::Consume(ElementSink* sink) {
  LM_CHECK(sink != nullptr);
  while (true) {
    Frame frame;
    const Status status =
        ReceiveFrame(connection_.get(), &assembler_, &frame);
    if (!status.ok()) {
      // EOF without BYE still ends the stream cleanly: the daemon may have
      // been torn down by the transport rather than the protocol.
      if (status.code() == StatusCode::kFailedPrecondition) {
        return Status::Ok();
      }
      return status;
    }
    switch (frame.type) {
      case FrameType::kElement: {
        StreamElement element;
        const Status decode = DecodeElementPayload(frame.payload, &element);
        if (!decode.ok()) return decode;
        ++elements_received_;
        sink->OnElement(element);
        break;
      }
      case FrameType::kElements: {
        ElementSequence elements;
        int64_t origin_us = 0;
        const Status decode =
            version_ >= kLatencyVersion
                ? DecodeElementsPayload(frame.payload, &elements, &origin_us)
                : DecodeElementsPayload(frame.payload, &elements);
        if (!decode.ok()) return decode;
        NoteBatchStamp(origin_us, elements.size());
        for (const StreamElement& element : elements) {
          ++elements_received_;
          sink->OnElement(element);
        }
        break;
      }
      case FrameType::kPayloadDef: {
        if (dict_ == nullptr) {
          return Status::FailedPrecondition(
              "PAYLOAD_DEF on a v1-negotiated session");
        }
        PayloadDefMessage def;
        const Status decode = DecodePayloadDefPayload(frame.payload, &def);
        if (!decode.ok()) return decode;
        const Status defined = dict_->Define(def.id, std::move(def.payload));
        if (!defined.ok()) return defined;
        break;
      }
      case FrameType::kElementsDict: {
        if (dict_ == nullptr) {
          return Status::FailedPrecondition(
              "ELEMENTS_DICT on a v1-negotiated session");
        }
        ElementSequence elements;
        int64_t origin_us = 0;
        const Status decode =
            version_ >= kLatencyVersion
                ? DecodeElementsDictPayload(frame.payload, *dict_, &elements,
                                            &origin_us)
                : DecodeElementsDictPayload(frame.payload, *dict_, &elements);
        if (!decode.ok()) return decode;
        NoteBatchStamp(origin_us, elements.size());
        for (const StreamElement& element : elements) {
          ++elements_received_;
          sink->OnElement(element);
        }
        break;
      }
      case FrameType::kBye: {
        ByeMessage bye;
        // Best effort: a BYE that fails to decode just yields an empty
        // reason; the session outcome is the same either way.
        (void)DecodeBye(frame.payload, &bye);
        bye_reason_ = bye.reason;
        return Status::Ok();
      }
      default:
        return Status::InvalidArgument(
            std::string("unexpected frame from server: ") +
            FrameTypeName(frame.type));
    }
  }
}

}  // namespace lmerge::net
