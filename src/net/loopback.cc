#include "net/loopback.h"

#include <atomic>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lmerge::net {

namespace {

// One direction of a loopback pair: a byte queue with its own lock.
struct Pipe {
  Mutex mutex;
  CondVar readable;
  std::string bytes LM_GUARDED_BY(mutex);
  bool closed LM_GUARDED_BY(mutex) = false;  // no further writes will arrive

  void Write(const char* data, size_t size) LM_EXCLUDES(mutex) {
    {
      MutexLock lock(mutex);
      bytes.append(data, size);
    }
    readable.NotifyAll();
  }

  void Close() LM_EXCLUDES(mutex) {
    {
      MutexLock lock(mutex);
      closed = true;
    }
    readable.NotifyAll();
  }
};

// Shared state of one connected pair: pipe[0] carries first->second bytes,
// pipe[1] second->first.
struct PairState {
  Pipe pipe[2];
};

class LoopbackConnection : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<PairState> state, int side,
                     std::string name)
      : state_(std::move(state)), side_(side), name_(std::move(name)) {}

  ~LoopbackConnection() override { Close(); }

  Status Send(const char* data, size_t size) override {
    Pipe& out = state_->pipe[side_];
    {
      MutexLock lock(out.mutex);
      if (out.closed) {
        return Status::FailedPrecondition("loopback connection closed");
      }
      out.bytes.append(data, size);
    }
    out.readable.NotifyAll();
    return Status::Ok();
  }

  Status Receive(char* buffer, size_t capacity, size_t* received) override {
    Pipe& in = state_->pipe[1 - side_];
    MutexLock lock(in.mutex);
    while (in.bytes.empty() && !in.closed) in.readable.Wait(lock);
    const size_t n = std::min(capacity, in.bytes.size());
    std::copy(in.bytes.begin(),
              in.bytes.begin() + static_cast<ptrdiff_t>(n), buffer);
    in.bytes.erase(0, n);
    *received = n;  // 0 only when closed with nothing buffered: clean EOF
    return Status::Ok();
  }

  Status TryReceive(std::string* out) override {
    Pipe& in = state_->pipe[1 - side_];
    MutexLock lock(in.mutex);
    out->append(in.bytes);
    in.bytes.clear();
    if (in.closed) closed_.store(true, std::memory_order_relaxed);
    return Status::Ok();
  }

  void Close() override {
    closed_.store(true, std::memory_order_relaxed);
    // Half-close both directions: the peer sees EOF, and our own blocked
    // Receive (if any) wakes.
    state_->pipe[0].Close();
    state_->pipe[1].Close();
  }

  bool closed() const override {
    return closed_.load(std::memory_order_relaxed);
  }

  std::string peer() const override { return name_; }

 private:
  std::shared_ptr<PairState> state_;
  int side_;
  std::string name_;
  // Atomic: the server tears a session down (Close) from its own thread
  // while the peer's transport thread polls closed()/TryReceive.
  std::atomic<bool> closed_{false};
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
CreateLoopbackPair(const std::string& first_name,
                   const std::string& second_name) {
  auto state = std::make_shared<PairState>();
  // Each endpoint's peer() reports the *other* side's name.
  auto first =
      std::make_unique<LoopbackConnection>(state, 0, second_name);
  auto second =
      std::make_unique<LoopbackConnection>(state, 1, first_name);
  return {std::move(first), std::move(second)};
}

struct LoopbackListener::State {
  Mutex mutex;
  CondVar acceptable;
  std::deque<std::unique_ptr<Connection>> pending LM_GUARDED_BY(mutex);
  bool closed LM_GUARDED_BY(mutex) = false;
};

LoopbackListener::LoopbackListener() : state_(std::make_shared<State>()) {}

LoopbackListener::~LoopbackListener() { Close(); }

std::unique_ptr<Connection> LoopbackListener::Connect(
    const std::string& client_name) {
  auto pair = CreateLoopbackPair(client_name, "loopback:server");
  {
    MutexLock lock(state_->mutex);
    if (state_->closed) return nullptr;
    state_->pending.push_back(std::move(pair.second));
  }
  state_->acceptable.NotifyOne();
  return std::move(pair.first);
}

Status LoopbackListener::Accept(std::unique_ptr<Connection>* connection) {
  MutexLock lock(state_->mutex);
  while (state_->pending.empty() && !state_->closed) {
    state_->acceptable.Wait(lock);
  }
  if (state_->pending.empty()) {
    return Status::FailedPrecondition("listener closed");
  }
  *connection = std::move(state_->pending.front());
  state_->pending.pop_front();
  return Status::Ok();
}

void LoopbackListener::Close() {
  {
    MutexLock lock(state_->mutex);
    state_->closed = true;
  }
  state_->acceptable.NotifyAll();
}

}  // namespace lmerge::net
