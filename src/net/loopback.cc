#include "net/loopback.h"

#include <condition_variable>
#include <mutex>

#include "common/check.h"

namespace lmerge::net {

namespace {

// One direction of a loopback pair: a byte queue with its own lock.
struct Pipe {
  std::mutex mutex;
  std::condition_variable readable;
  std::string bytes;
  bool closed = false;  // no further writes will arrive

  void Write(const char* data, size_t size) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      bytes.append(data, size);
    }
    readable.notify_all();
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      closed = true;
    }
    readable.notify_all();
  }
};

// Shared state of one connected pair: pipe[0] carries first->second bytes,
// pipe[1] second->first.
struct PairState {
  Pipe pipe[2];
};

class LoopbackConnection : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<PairState> state, int side,
                     std::string name)
      : state_(std::move(state)), side_(side), name_(std::move(name)) {}

  ~LoopbackConnection() override { Close(); }

  Status Send(const char* data, size_t size) override {
    Pipe& out = state_->pipe[side_];
    {
      std::lock_guard<std::mutex> lock(out.mutex);
      if (out.closed) {
        return Status::FailedPrecondition("loopback connection closed");
      }
      out.bytes.append(data, size);
    }
    out.readable.notify_all();
    return Status::Ok();
  }

  Status Receive(char* buffer, size_t capacity, size_t* received) override {
    Pipe& in = state_->pipe[1 - side_];
    std::unique_lock<std::mutex> lock(in.mutex);
    in.readable.wait(lock, [&in] { return !in.bytes.empty() || in.closed; });
    const size_t n = std::min(capacity, in.bytes.size());
    std::copy(in.bytes.begin(),
              in.bytes.begin() + static_cast<ptrdiff_t>(n), buffer);
    in.bytes.erase(0, n);
    *received = n;  // 0 only when closed with nothing buffered: clean EOF
    return Status::Ok();
  }

  Status TryReceive(std::string* out) override {
    Pipe& in = state_->pipe[1 - side_];
    std::lock_guard<std::mutex> lock(in.mutex);
    out->append(in.bytes);
    in.bytes.clear();
    if (in.closed) closed_ = true;
    return Status::Ok();
  }

  void Close() override {
    closed_ = true;
    // Half-close both directions: the peer sees EOF, and our own blocked
    // Receive (if any) wakes.
    state_->pipe[0].Close();
    state_->pipe[1].Close();
  }

  bool closed() const override { return closed_; }

  std::string peer() const override { return name_; }

 private:
  std::shared_ptr<PairState> state_;
  int side_;
  std::string name_;
  bool closed_ = false;
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
CreateLoopbackPair(const std::string& first_name,
                   const std::string& second_name) {
  auto state = std::make_shared<PairState>();
  // Each endpoint's peer() reports the *other* side's name.
  auto first =
      std::make_unique<LoopbackConnection>(state, 0, second_name);
  auto second =
      std::make_unique<LoopbackConnection>(state, 1, first_name);
  return {std::move(first), std::move(second)};
}

struct LoopbackListener::State {
  std::mutex mutex;
  std::condition_variable acceptable;
  std::deque<std::unique_ptr<Connection>> pending;
  bool closed = false;
};

LoopbackListener::LoopbackListener() : state_(std::make_shared<State>()) {}

LoopbackListener::~LoopbackListener() { Close(); }

std::unique_ptr<Connection> LoopbackListener::Connect(
    const std::string& client_name) {
  auto pair = CreateLoopbackPair(client_name, "loopback:server");
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->closed) return nullptr;
    state_->pending.push_back(std::move(pair.second));
  }
  state_->acceptable.notify_one();
  return std::move(pair.first);
}

Status LoopbackListener::Accept(std::unique_ptr<Connection>* connection) {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->acceptable.wait(lock, [this] {
    return !state_->pending.empty() || state_->closed;
  });
  if (state_->pending.empty()) {
    return Status::FailedPrecondition("listener closed");
  }
  *connection = std::move(state_->pending.front());
  state_->pending.pop_front();
  return Status::Ok();
}

void LoopbackListener::Close() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->closed = true;
  }
  state_->acceptable.notify_all();
}

}  // namespace lmerge::net
