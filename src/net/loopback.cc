#include "net/loopback.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lmerge::net {

namespace {

// Signals an eventfd (saturating add; a full counter still polls readable).
void SignalEvent(int fd) {
  const uint64_t one = 1;
  (void)!::write(fd, &one, sizeof(one));
}

// One direction of a loopback pair: a byte queue with its own lock.  The
// eventfd mirrors "bytes or close pending" so an epoll loop can multiplex
// loopback connections exactly like sockets (readers clear it FIRST, then
// drain bytes, so a write between the two steps re-signals and is never
// lost).
struct Pipe {
  Mutex mutex;
  CondVar readable;
  std::string bytes LM_GUARDED_BY(mutex);
  bool closed LM_GUARDED_BY(mutex) = false;  // no further writes will arrive
  int event_fd = -1;

  Pipe() {
    event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    LM_CHECK(event_fd >= 0);
  }
  ~Pipe() { ::close(event_fd); }

  void Write(const char* data, size_t size) LM_EXCLUDES(mutex) {
    {
      MutexLock lock(mutex);
      bytes.append(data, size);
    }
    readable.NotifyAll();
    SignalEvent(event_fd);
  }

  void Close() LM_EXCLUDES(mutex) {
    {
      MutexLock lock(mutex);
      closed = true;
    }
    readable.NotifyAll();
    SignalEvent(event_fd);
  }

  // Clears the eventfd; call before draining bytes under the lock.
  void ClearEvent() {
    uint64_t drained;
    (void)!::read(event_fd, &drained, sizeof(drained));
  }
};

// Shared state of one connected pair: pipe[0] carries first->second bytes,
// pipe[1] second->first.
struct PairState {
  Pipe pipe[2];
};

class LoopbackConnection : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<PairState> state, int side,
                     std::string name)
      : state_(std::move(state)), side_(side), name_(std::move(name)) {}

  ~LoopbackConnection() override { Close(); }

  Status Send(const char* data, size_t size) override {
    Pipe& out = state_->pipe[side_];
    {
      MutexLock lock(out.mutex);
      if (out.closed) {
        return Status::FailedPrecondition("loopback connection closed");
      }
      out.bytes.append(data, size);
    }
    out.readable.NotifyAll();
    SignalEvent(out.event_fd);
    return Status::Ok();
  }

  Status Receive(char* buffer, size_t capacity, size_t* received) override {
    Pipe& in = state_->pipe[1 - side_];
    MutexLock lock(in.mutex);
    while (in.bytes.empty() && !in.closed) in.readable.Wait(lock);
    const size_t n = std::min(capacity, in.bytes.size());
    std::copy(in.bytes.begin(),
              in.bytes.begin() + static_cast<ptrdiff_t>(n), buffer);
    in.bytes.erase(0, n);
    *received = n;  // 0 only when closed with nothing buffered: clean EOF
    return Status::Ok();
  }

  Status TryReceive(std::string* out) override {
    Pipe& in = state_->pipe[1 - side_];
    // Clear-then-drain: a Write landing between the two steps re-signals
    // the eventfd, so the next epoll round still sees it.
    in.ClearEvent();
    MutexLock lock(in.mutex);
    out->append(in.bytes);
    in.bytes.clear();
    if (in.closed) closed_.store(true, std::memory_order_relaxed);
    return Status::Ok();
  }

  int readable_fd() const override {
    return state_->pipe[1 - side_].event_fd;
  }

  void Close() override {
    closed_.store(true, std::memory_order_relaxed);
    // Half-close both directions: the peer sees EOF, and our own blocked
    // Receive (if any) wakes.
    state_->pipe[0].Close();
    state_->pipe[1].Close();
  }

  bool closed() const override {
    return closed_.load(std::memory_order_relaxed);
  }

  std::string peer() const override { return name_; }

 private:
  std::shared_ptr<PairState> state_;
  int side_;
  std::string name_;
  // Atomic: the server tears a session down (Close) from its own thread
  // while the peer's transport thread polls closed()/TryReceive.
  std::atomic<bool> closed_{false};
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
CreateLoopbackPair(const std::string& first_name,
                   const std::string& second_name) {
  auto state = std::make_shared<PairState>();
  // Each endpoint's peer() reports the *other* side's name.
  auto first =
      std::make_unique<LoopbackConnection>(state, 0, second_name);
  auto second =
      std::make_unique<LoopbackConnection>(state, 1, first_name);
  return {std::move(first), std::move(second)};
}

struct LoopbackListener::State {
  Mutex mutex;
  CondVar acceptable;
  std::deque<std::unique_ptr<Connection>> pending LM_GUARDED_BY(mutex);
  bool closed LM_GUARDED_BY(mutex) = false;
  int event_fd = -1;  // signalled on Connect and Close, cleared in TryAccept

  State() {
    event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    LM_CHECK(event_fd >= 0);
  }
  ~State() { ::close(event_fd); }
};

LoopbackListener::LoopbackListener() : state_(std::make_shared<State>()) {}

LoopbackListener::~LoopbackListener() { Close(); }

std::unique_ptr<Connection> LoopbackListener::Connect(
    const std::string& client_name) {
  auto pair = CreateLoopbackPair(client_name, "loopback:server");
  {
    MutexLock lock(state_->mutex);
    if (state_->closed) return nullptr;
    state_->pending.push_back(std::move(pair.second));
  }
  state_->acceptable.NotifyOne();
  SignalEvent(state_->event_fd);
  return std::move(pair.first);
}

Status LoopbackListener::Accept(std::unique_ptr<Connection>* connection) {
  MutexLock lock(state_->mutex);
  while (state_->pending.empty() && !state_->closed) {
    state_->acceptable.Wait(lock);
  }
  if (state_->pending.empty()) {
    return Status::FailedPrecondition("listener closed");
  }
  *connection = std::move(state_->pending.front());
  state_->pending.pop_front();
  return Status::Ok();
}

Status LoopbackListener::TryAccept(std::unique_ptr<Connection>* connection) {
  connection->reset();
  // Clear-then-drain, mirroring LoopbackConnection::TryReceive.
  uint64_t drained;
  (void)!::read(state_->event_fd, &drained, sizeof(drained));
  MutexLock lock(state_->mutex);
  if (!state_->pending.empty()) {
    *connection = std::move(state_->pending.front());
    state_->pending.pop_front();
    // More pending: keep the fd readable for the next round.
    if (!state_->pending.empty()) SignalEvent(state_->event_fd);
    return Status::Ok();
  }
  if (state_->closed) return Status::FailedPrecondition("listener closed");
  return Status::Ok();
}

int LoopbackListener::pollable_fd() const { return state_->event_fd; }

void LoopbackListener::Close() {
  {
    MutexLock lock(state_->mutex);
    state_->closed = true;
  }
  state_->acceptable.NotifyAll();
  SignalEvent(state_->event_fd);
}

}  // namespace lmerge::net
