#include "operators/aggregate.h"

#include <algorithm>

namespace lmerge {

StreamProperties GroupedAggregate::DeriveProperties(
    const std::vector<StreamProperties>& inputs) const {
  LM_CHECK(inputs.size() == 1);
  StreamProperties out;
  out.vs_payload_key = true;  // one result per (window, group), group in key
  if (config_.mode == AggregateMode::kConservative) {
    out.insert_only = true;
    out.ordered = true;  // windows finalize in ascending order
    if (config_.group_column < 0) {
      out.strictly_increasing = true;  // one event per window
    } else {
      // Equivalent plans may enumerate groups of a window differently.
      out.deterministic_ties = false;
    }
  } else {
    // Aggressive/speculative modes revise emitted windows (retract +
    // re-insert), and with disordered input the revisions land at earlier
    // Vs values: neither insert-only nor ordered can be claimed.
    out.insert_only = false;
    out.ordered = false;
  }
  return out.Normalized();
}

void GroupedAggregate::EmitOrRevise(Timestamp w, const Row& group,
                                    GroupState* state) {
  const int64_t value = CurrentValue(*state);
  const Timestamp we = w + config_.window_size;
  if (state->emitted) {
    if (value == state->emitted_value && state->count > 0) return;
    // Retract the previous result and re-insert the new one.  The value is
    // part of the payload, so a revision is retract + insert rather than a
    // lifetime adjust.
    EmitAdjust(OutputRow(group, state->emitted_value), w, we, w);
    if (state->count > 0) {
      EmitInsert(OutputRow(group, value), w, we);
      state->emitted_value = value;
    } else {
      state->emitted = false;
    }
    return;
  }
  if (state->count > 0) {
    EmitInsert(OutputRow(group, value), w, we);
    state->emitted = true;
    state->emitted_value = value;
  }
}

void GroupedAggregate::EmitSpeculativeBelow(Timestamp frontier) {
  if (frontier <= spec_horizon_) return;
  for (auto it = windows_.begin();
       it != windows_.end() && it->first < frontier; ++it) {
    for (auto& [group, state] : it->second) {
      if (!state.emitted) EmitOrRevise(it->first, group, &state);
    }
  }
  spec_horizon_ = frontier;
}

void GroupedAggregate::ApplyDelta(const Row& payload, Timestamp vs,
                                  int64_t sign) {
  if (config_.mode == AggregateMode::kSpeculative && sign > 0) {
    // Seeing a newer window: speculate that every window that can no longer
    // gain in-order input (everything before the earliest window this
    // element touches) is complete.
    EmitSpeculativeBelow(FirstWindowStart(vs));
  }
  // The event contributes to every window covering its start time.
  for (Timestamp w = FirstWindowStart(vs); w <= WindowStart(vs); w += hop()) {
    ApplyDeltaToWindow(w, payload, sign);
  }
}

void GroupedAggregate::ApplyDeltaToWindow(Timestamp w, const Row& payload,
                                          int64_t sign) {
  const Row group = GroupKey(payload);
  GroupState& state = windows_[w][group];
  if (state.count == 0 && state.sum == 0 && !state.emitted && sign > 0) {
    state_bytes_ += group.DeepSizeBytes() +
                    static_cast<int64_t>(sizeof(GroupState)) + 48;
  }
  state.count += sign;
  if (config_.function == AggregateFunction::kSum) {
    state.sum += sign * payload.field(config_.value_column).AsInt64();
  }
  switch (config_.mode) {
    case AggregateMode::kAggressive:
      EmitOrRevise(w, group, &state);
      break;
    case AggregateMode::kSpeculative:
      // Only revise results already speculated; the frontier window waits.
      if (state.emitted || w < spec_horizon_) EmitOrRevise(w, group, &state);
      break;
    case AggregateMode::kConservative:
      break;
  }
}

void GroupedAggregate::FinalizeBelow(Timestamp t) {
  // Windows whose end is <= t have seen all their input.
  auto it = windows_.begin();
  while (it != windows_.end() && it->first + config_.window_size <= t) {
    if (config_.mode == AggregateMode::kConservative) {
      for (const auto& [group, state] : it->second) {
        if (state.count > 0) {
          EmitInsert(OutputRow(group, CurrentValue(state)), it->first,
                     it->first + config_.window_size);
        }
      }
    } else if (config_.mode == AggregateMode::kSpeculative) {
      // Results never speculated (no newer window arrived before the
      // stable) are final now; emit them before dropping the state.
      for (auto& [group, state] : it->second) {
        if (!state.emitted) EmitOrRevise(it->first, group, &state);
      }
    }
    for (const auto& [group, state] : it->second) {
      state_bytes_ -= group.DeepSizeBytes() +
                      static_cast<int64_t>(sizeof(GroupState)) + 48;
    }
    it = windows_.erase(it);
  }
}

void GroupedAggregate::OnElement(int port, const StreamElement& element) {
  (void)port;
  switch (element.kind()) {
    case ElementKind::kInsert:
      if (element.ve() <= feedback_horizon_) return;  // fast-forwarded
      ApplyDelta(element.payload(), element.vs(), +1);
      break;
    case ElementKind::kAdjust:
      // Count/sum aggregate by Vs: only a full removal (Ve collapsing onto
      // Vs) changes the result.
      if (element.ve() == element.vs()) {
        ApplyDelta(element.payload(), element.vs(), -1);
      }
      break;
    case ElementKind::kStable: {
      const Timestamp t = element.stable_time();
      FinalizeBelow(t);
      // No future output can start before the earliest still-open window
      // (equal to WindowStart(t) for tumbling windows, earlier for sliding
      // ones).
      const Timestamp ws = FirstWindowStart(t);
      if (ws > out_stable_) {
        out_stable_ = ws;
        EmitStable(ws);
      }
      break;
    }
  }
}

void GroupedAggregate::SaveState(Encoder* encoder) const {
  encoder->WriteI64(out_stable_);
  encoder->WriteI64(spec_horizon_);
  encoder->WriteU32(static_cast<uint32_t>(windows_.size()));
  for (const auto& [window, groups] : windows_) {
    encoder->WriteI64(window);
    encoder->WriteU32(static_cast<uint32_t>(groups.size()));
    for (const auto& [group, state] : groups) {
      encoder->WriteRow(group);
      encoder->WriteI64(state.count);
      encoder->WriteI64(state.sum);
      encoder->WriteU8(state.emitted ? 1 : 0);
      encoder->WriteI64(state.emitted_value);
    }
  }
}

Status GroupedAggregate::RestoreState(Decoder* decoder) {
  Status status = decoder->ReadI64(&out_stable_);
  if (!status.ok()) return status;
  if (!(status = decoder->ReadI64(&spec_horizon_)).ok()) return status;
  windows_.clear();
  state_bytes_ = 0;
  uint32_t window_count = 0;
  if (!(status = decoder->ReadU32(&window_count)).ok()) return status;
  for (uint32_t w = 0; w < window_count; ++w) {
    int64_t window = 0;
    if (!(status = decoder->ReadI64(&window)).ok()) return status;
    uint32_t group_count = 0;
    if (!(status = decoder->ReadU32(&group_count)).ok()) return status;
    auto& groups = windows_[window];
    for (uint32_t g = 0; g < group_count; ++g) {
      Row group;
      GroupState state;
      uint8_t emitted = 0;
      if (!(status = decoder->ReadRow(&group)).ok()) return status;
      if (!(status = decoder->ReadI64(&state.count)).ok()) return status;
      if (!(status = decoder->ReadI64(&state.sum)).ok()) return status;
      if (!(status = decoder->ReadU8(&emitted)).ok()) return status;
      state.emitted = emitted != 0;
      if (!(status = decoder->ReadI64(&state.emitted_value)).ok()) {
        return status;
      }
      state_bytes_ += group.DeepSizeBytes() +
                      static_cast<int64_t>(sizeof(GroupState)) + 48;
      groups.emplace(std::move(group), state);
    }
  }
  return Status::Ok();
}

void GroupedAggregate::OnFeedback(Timestamp horizon) {
  if (horizon <= feedback_horizon_) return;
  // Results for windows ending before the horizon are no longer of
  // interest; drop their state without emitting (the consumer already has
  // equivalent output from a faster plan).
  auto it = windows_.begin();
  while (it != windows_.end() && it->first + config_.window_size <= horizon) {
    for (const auto& [group, state] : it->second) {
      state_bytes_ -= group.DeepSizeBytes() +
                      static_cast<int64_t>(sizeof(GroupState)) + 48;
    }
    it = windows_.erase(it);
  }
  Operator::OnFeedback(horizon);
}

}  // namespace lmerge
