// Sampler: deterministic hash-based sampling — one of the "data-reducing
// operators" Sec. I cites as the reason to push elements through a plan
// without ordering them first.
//
// Keeps an insert (and the adjusts that target it) iff
// hash(payload) % modulus == residue.  Because the decision is a pure
// function of the payload, every physically divergent copy of a stream
// samples identically, so all input stream properties are preserved.

#ifndef LMERGE_OPERATORS_SAMPLER_H_
#define LMERGE_OPERATORS_SAMPLER_H_

#include <utility>

#include "operators/operator.h"

namespace lmerge {

class Sampler : public Operator {
 public:
  Sampler(std::string name, uint64_t modulus, uint64_t residue = 0)
      : Operator(std::move(name), 1), modulus_(modulus), residue_(residue) {
    LM_CHECK(modulus >= 1);
    LM_CHECK(residue < modulus);
  }

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override {
    LM_CHECK(inputs.size() == 1);
    return inputs[0];
  }

 protected:
  void OnElement(int port, const StreamElement& element) override {
    (void)port;
    if (element.is_stable() ||
        element.payload().hash() % modulus_ == residue_) {
      Emit(element);
    }
  }

 private:
  uint64_t modulus_;
  uint64_t residue_;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_SAMPLER_H_
