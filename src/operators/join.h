// TemporalJoin: equi-join of two temporal streams.
//
// Output semantics: for every pair of input events L, R with equal join-key
// columns and overlapping lifetimes, emit an event whose payload is the
// concatenation of the two payloads and whose lifetime is the intersection
// [max(VsL, VsR), min(VeL, VeR)).
//
// Revisions: an adjust on either side changes the intersections it
// participates in; the operator re-derives the affected outputs (emit,
// adjust, or retract).  Stable: the output stable point is the minimum of
// the two inputs'; events whose Ve precedes it can no longer join anything
// and are purged.
//
// This is the substrate operator behind the multi-way join plans of Sec. I
// ("a temporal join of three streams A, B, C can be processed as A ⋈ (B ⋈ C),
// B ⋈ (A ⋈ C), ..."): different association orders produce physically
// different but logically equivalent streams for LMerge to combine.

#ifndef LMERGE_OPERATORS_JOIN_H_
#define LMERGE_OPERATORS_JOIN_H_

#include <map>
#include <utility>
#include <vector>

#include "operators/operator.h"

namespace lmerge {

class TemporalJoin : public Operator {
 public:
  TemporalJoin(std::string name, int64_t left_key_column,
               int64_t right_key_column)
      : Operator(std::move(name), 2),
        key_column_{left_key_column, right_key_column} {}

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override {
    LM_CHECK(inputs.size() == 2);
    StreamProperties out;
    // Join output interleaves matches discovered in arrival order: no order
    // or key guarantees survive in general; adjusts appear when inputs have
    // them or when intersections shrink.
    out.insert_only = inputs[0].insert_only && inputs[1].insert_only;
    return out;
  }

  int64_t StateBytes() const override { return state_bytes_; }

 protected:
  void OnElement(int port, const StreamElement& element) override;

 private:
  struct StoredEvent {
    Row payload;
    Timestamp vs;
    Timestamp ve;
  };
  // join key value -> events with that key, per side.
  using SideIndex = std::map<Value, std::vector<StoredEvent>>;

  static Timestamp IntersectEnd(const StoredEvent& a, const StoredEvent& b) {
    return a.ve < b.ve ? a.ve : b.ve;
  }
  static Timestamp IntersectStart(const StoredEvent& a,
                                  const StoredEvent& b) {
    return a.vs > b.vs ? a.vs : b.vs;
  }

  Row JoinRow(const StoredEvent& left, const StoredEvent& right) const {
    std::vector<Value> fields = left.payload.fields();
    for (const Value& v : right.payload.fields()) fields.push_back(v);
    return Row(std::move(fields));
  }

  // Emits output deltas for the pairing of `mine` (new/changed on `port`)
  // against every match on the other side.  old_ve is the event's previous
  // end (== vs for a fresh insert).
  void PairAgainstOtherSide(int port, const StoredEvent& mine,
                            Timestamp old_ve);

  void PurgeBelow(SideIndex& side, Timestamp t);

  int64_t key_column_[2];
  SideIndex sides_[2];
  Timestamp stables_[2] = {kMinTimestamp, kMinTimestamp};
  Timestamp out_stable_ = kMinTimestamp;
  int64_t state_bytes_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_JOIN_H_
