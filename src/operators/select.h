// Select: temporal filter.  Passes insert/adjust elements whose payload
// satisfies a predicate; stable() elements always pass.  Stateless, so every
// input stream property is preserved except strictly-increasing degrades to
// ordered only in spirit — dropping elements cannot create ties, so it is in
// fact preserved too.
//
// UdfSelect is the expensive user-defined-function variant used by the
// dynamic plan-selection experiments (Sec. VI-E): its per-element cost is
// supplied by a cost function, and a feedback signal lets it *skip the UDF
// entirely* for elements whose lifetime ends before the feedback horizon —
// the "fast-forward" work saving.

#ifndef LMERGE_OPERATORS_SELECT_H_
#define LMERGE_OPERATORS_SELECT_H_

#include <functional>
#include <utility>

#include "operators/operator.h"

namespace lmerge {

class Select : public Operator {
 public:
  using Predicate = std::function<bool(const Row&)>;

  Select(std::string name, Predicate predicate)
      : Operator(std::move(name), 1), predicate_(std::move(predicate)) {}

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override {
    LM_CHECK(inputs.size() == 1);
    return inputs[0];  // filtering preserves order, keys, and insert-only
  }

 protected:
  void OnElement(int port, const StreamElement& element) override {
    (void)port;
    if (element.is_stable()) {
      Emit(element);
      return;
    }
    if (predicate_(element.payload())) Emit(element);
  }

 private:
  Predicate predicate_;
};

class UdfSelect : public Operator {
 public:
  using Predicate = std::function<bool(const Row&)>;
  // Returns the number of work units the UDF burns for this row.
  using CostModel = std::function<int64_t(const Row&)>;

  UdfSelect(std::string name, Predicate predicate, CostModel cost)
      : Operator(std::move(name), 1),
        predicate_(std::move(predicate)),
        cost_(std::move(cost)) {}

  // Total UDF work performed; the quantity feedback fast-forwarding saves.
  int64_t work_done() const { return work_done_; }
  int64_t elements_skipped() const { return elements_skipped_; }

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override {
    LM_CHECK(inputs.size() == 1);
    return inputs[0];
  }

 protected:
  void OnElement(int port, const StreamElement& element) override {
    (void)port;
    if (element.is_stable()) {
      Emit(element);
      return;
    }
    // Fast-forward: an element whose lifetime ends before the feedback
    // horizon can never influence output past the horizon; skip the UDF.
    if (element.ve() <= feedback_horizon_ &&
        (!element.is_adjust() || element.v_old() <= feedback_horizon_)) {
      ++elements_skipped_;
      return;
    }
    work_done_ += BurnWork(element.payload());
    if (predicate_(element.payload())) Emit(element);
  }

 private:
  // Spends `cost_(row)` work units on a computation the optimizer cannot
  // elide, so wall-clock benchmarks reflect the skipped work.
  int64_t BurnWork(const Row& row) {
    const int64_t units = cost_(row);
    uint64_t acc = 0x9e3779b97f4a7c15ULL;
    for (int64_t i = 0; i < units; ++i) {
      acc ^= acc >> 33;
      acc *= 0xff51afd7ed558ccdULL + static_cast<uint64_t>(i);
    }
    sink_ = sink_ ^ acc;  // publish so the loop is not dead code
    return units;
  }

  Predicate predicate_;
  CostModel cost_;
  int64_t work_done_ = 0;
  int64_t elements_skipped_ = 0;
  volatile uint64_t sink_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_SELECT_H_
