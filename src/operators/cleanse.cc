#include "operators/cleanse.h"

#include <algorithm>

namespace lmerge {

void Cleanse::OnElement(int port, const StreamElement& element) {
  (void)port;
  switch (element.kind()) {
    case ElementKind::kInsert: {
      auto [it, inserted] = buffer_.emplace(
          VsPayload(element.vs(), element.payload()), element.ve());
      if (inserted) {
        state_bytes_ += element.payload().DeepSizeBytes() + 64;
      } else {
        it->second = element.ve();
      }
      break;
    }
    case ElementKind::kAdjust: {
      auto it = buffer_.find(VsPayload(element.vs(), element.payload()));
      if (it == buffer_.end()) break;
      if (element.ve() == element.vs()) {
        state_bytes_ -= it->first.payload.DeepSizeBytes() + 64;
        buffer_.erase(it);
      } else {
        it->second = element.ve();
      }
      break;
    }
    case ElementKind::kStable: {
      const Timestamp t = element.stable_time();
      // Release the maximal in-order prefix of fully frozen events.  An
      // event blocks the scan as soon as its Ve is not yet frozen: anything
      // after it may still shrink below it, but nothing can move before it.
      auto it = buffer_.begin();
      Timestamp release_bound = t;  // output stable point candidate
      while (it != buffer_.end() && it->first.vs < t) {
        if (it->second >= t) {
          // Not fully frozen: future adjusts may still change it, so it —
          // and everything ordered after it — must wait.
          release_bound = std::min(release_bound, it->first.vs);
          break;
        }
        EmitInsert(it->first.payload, it->first.vs, it->second);
        state_bytes_ -= it->first.payload.DeepSizeBytes() + 64;
        it = buffer_.erase(it);
      }
      if (release_bound > out_stable_) {
        out_stable_ = release_bound;
        EmitStable(release_bound);
      }
      break;
    }
  }
}

}  // namespace lmerge
