// MultiwayJoin: a single N-ary temporal equi-join operator.
//
// Sec. I motivates LMerge with plan diversity: "a temporal join of three
// streams A, B, and C can be processed using two-way joins as A ⋈ (B ⋈ C),
// B ⋈ (A ⋈ C), etc. or using one three-way join operator".  This operator is
// the one-operator plan; together with cascades of TemporalJoin it gives
// physically divergent but logically equivalent plans for the same query —
// exactly what LMerge combines.
//
// Semantics: for every combination of events, one per input, with equal
// join-key values and a non-empty common lifetime intersection, emit an
// event whose payload concatenates the input payloads (in input order) and
// whose lifetime is the intersection.  Insert-only inputs (revisions are
// rejected; plans that need them use binary-join cascades).  The output
// stable point is the minimum across inputs; state below it is purged.

#ifndef LMERGE_OPERATORS_MULTIWAY_JOIN_H_
#define LMERGE_OPERATORS_MULTIWAY_JOIN_H_

#include <map>
#include <utility>
#include <vector>

#include "operators/operator.h"

namespace lmerge {

class MultiwayJoin : public Operator {
 public:
  // key_columns[i] is the join-key column of input i.
  MultiwayJoin(std::string name, std::vector<int64_t> key_columns)
      : Operator(std::move(name), static_cast<int>(key_columns.size())),
        key_columns_(std::move(key_columns)),
        sides_(key_columns_.size()),
        stables_(key_columns_.size(), kMinTimestamp) {
    LM_CHECK(key_columns_.size() >= 2);
  }

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override {
    LM_CHECK(inputs.size() == key_columns_.size());
    StreamProperties out;
    out.insert_only = true;
    for (const StreamProperties& p : inputs) {
      out.insert_only = out.insert_only && p.insert_only;
    }
    return out;
  }

  int64_t StateBytes() const override { return state_bytes_; }

 protected:
  void OnElement(int port, const StreamElement& element) override;

 private:
  struct StoredEvent {
    Row payload;
    Timestamp vs;
    Timestamp ve;
  };
  using SideIndex = std::map<Value, std::vector<StoredEvent>>;

  // Recursively enumerates one match per remaining side and emits the
  // combined event.  `chosen[i]` points at the match for side i (the new
  // event for `new_port`).
  void Enumerate(const Value& key, int new_port, size_t side,
                 std::vector<const StoredEvent*>* chosen);
  void EmitCombination(const std::vector<const StoredEvent*>& chosen);

  std::vector<int64_t> key_columns_;
  std::vector<SideIndex> sides_;
  std::vector<Timestamp> stables_;
  Timestamp out_stable_ = kMinTimestamp;
  int64_t state_bytes_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_MULTIWAY_JOIN_H_
