// Cleanse: the property-enforcing operator of Sec. VI-D.
//
// Accepts a disordered stream with revisions and buffers everything until a
// stable() element arrives, then releases — in (Vs, payload) order — the
// maximal prefix of fully frozen events that cannot be overtaken by any
// later element.  Its output is ordered, insert-only, and deterministic on
// ties, so it can feed LMergeR1 (the C+LMR1 strategy).  The cost is exactly
// what Fig. 7 shows: the buffer holds every event until the stable point
// crosses its Ve, so memory scales with lifetimes and disorder, latency with
// event lifetime, and each input stream pays for its own private buffer.

#ifndef LMERGE_OPERATORS_CLEANSE_H_
#define LMERGE_OPERATORS_CLEANSE_H_

#include <map>
#include <utility>

#include "operators/operator.h"
#include "temporal/event.h"

namespace lmerge {

class Cleanse : public Operator {
 public:
  explicit Cleanse(std::string name) : Operator(std::move(name), 1) {}

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override {
    LM_CHECK(inputs.size() == 1);
    StreamProperties out;
    out.insert_only = true;
    out.ordered = true;
    out.deterministic_ties = true;  // released in (Vs, payload) order
    out.vs_payload_key = inputs[0].vs_payload_key;
    return out.Normalized();
  }

  int64_t StateBytes() const override { return state_bytes_; }
  int64_t buffered_count() const {
    return static_cast<int64_t>(buffer_.size());
  }

 protected:
  void OnElement(int port, const StreamElement& element) override;

 private:
  // (Vs, payload) -> current Ve.  Assumes the (Vs, payload) key property
  // (duplicates would need a count; the evaluation streams satisfy it).
  std::map<VsPayload, Timestamp, VsPayloadLess> buffer_;
  int64_t state_bytes_ = 0;
  Timestamp out_stable_ = kMinTimestamp;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_CLEANSE_H_
