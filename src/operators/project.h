// Project: payload transformation (map).  Applies a row function to every
// insert/adjust payload; lifetimes and stable() elements pass through.
//
// Property transfer: order and insert-only are preserved; (Vs, payload)
// uniqueness and deterministic tie order are *not* (the mapping may collapse
// distinct payloads), unless the caller declares the function injective.

#ifndef LMERGE_OPERATORS_PROJECT_H_
#define LMERGE_OPERATORS_PROJECT_H_

#include <functional>
#include <utility>

#include "operators/operator.h"

namespace lmerge {

class Project : public Operator {
 public:
  using RowFn = std::function<Row(const Row&)>;

  Project(std::string name, RowFn fn, bool injective = false)
      : Operator(std::move(name), 1),
        fn_(std::move(fn)),
        injective_(injective) {}

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override {
    LM_CHECK(inputs.size() == 1);
    StreamProperties out = inputs[0];
    if (!injective_) {
      out.vs_payload_key = false;
      out.deterministic_ties = false;
    }
    return out.Normalized();
  }

 protected:
  void OnElement(int port, const StreamElement& element) override {
    (void)port;
    switch (element.kind()) {
      case ElementKind::kInsert:
        EmitInsert(fn_(element.payload()), element.vs(), element.ve());
        break;
      case ElementKind::kAdjust:
        EmitAdjust(fn_(element.payload()), element.vs(), element.v_old(),
                   element.ve());
        break;
      case ElementKind::kStable:
        Emit(element);
        break;
    }
  }

 private:
  RowFn fn_;
  bool injective_;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_PROJECT_H_
