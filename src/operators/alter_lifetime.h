// AlterLifetime: rewrites event lifetimes — the "lifetime modification"
// step the paper composes after an aggregate to synthesize streams with
// adjust() traffic (Sec. VI-B).
//
// The operator clips every lifetime to at most `max_duration` ticks from Vs
// (Ve' = min(Ve, Vs + d)).  Because the mapping depends only on (Vs, Ve), an
// input adjust translates deterministically: if the clipped old and new ends
// coincide the adjust is absorbed, otherwise it is re-emitted clipped.
// Stable() elements pass through unchanged (clipping can only shorten
// lifetimes, which never violates an input-stable guarantee... shortening
// produces Ve' <= Ve, and a stable(Vc) forbids future Ve < Vc — so a clipped
// end could fall below an already-announced stable point.  To stay well
// formed the operator never clips an end below the latest stable point it
// has forwarded).

#ifndef LMERGE_OPERATORS_ALTER_LIFETIME_H_
#define LMERGE_OPERATORS_ALTER_LIFETIME_H_

#include <algorithm>
#include <utility>

#include "operators/operator.h"

namespace lmerge {

class AlterLifetime : public Operator {
 public:
  AlterLifetime(std::string name, Timestamp max_duration)
      : Operator(std::move(name), 1), max_duration_(max_duration) {
    LM_CHECK(max_duration > 0);
  }

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override {
    LM_CHECK(inputs.size() == 1);
    StreamProperties out = inputs[0];
    // Vs values are untouched, so ordering properties survive; so does the
    // (Vs, payload) key.  Clipping cannot introduce adjusts on an
    // insert-only stream.
    return out;
  }

 protected:
  void OnElement(int port, const StreamElement& element) override {
    (void)port;
    switch (element.kind()) {
      case ElementKind::kInsert:
        EmitInsert(element.payload(), element.vs(),
                   Clip(element.vs(), element.ve()));
        break;
      case ElementKind::kAdjust: {
        const Timestamp old_clipped = Clip(element.vs(), element.v_old());
        const Timestamp new_clipped = Clip(element.vs(), element.ve());
        if (old_clipped != new_clipped) {
          EmitAdjust(element.payload(), element.vs(), old_clipped,
                     new_clipped);
        }
        break;
      }
      case ElementKind::kStable:
        last_stable_ = std::max(last_stable_, element.stable_time());
        Emit(element);
        break;
    }
  }

 private:
  Timestamp Clip(Timestamp vs, Timestamp ve) const {
    const Timestamp clipped =
        std::min(ve, vs > kInfinity - max_duration_ ? kInfinity
                                                    : vs + max_duration_);
    // Never clip below the stable point already announced downstream.
    return std::max(clipped, std::min(ve, last_stable_));
  }

  Timestamp max_duration_;
  Timestamp last_stable_ = kMinTimestamp;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_ALTER_LIFETIME_H_
