#include "operators/multiway_join.h"

#include <algorithm>

namespace lmerge {

void MultiwayJoin::EmitCombination(
    const std::vector<const StoredEvent*>& chosen) {
  Timestamp start = kMinTimestamp;
  Timestamp end = kInfinity;
  std::vector<Value> fields;
  for (const StoredEvent* event : chosen) {
    start = std::max(start, event->vs);
    end = std::min(end, event->ve);
    for (const Value& v : event->payload.fields()) fields.push_back(v);
  }
  if (end > start) {
    EmitInsert(Row(std::move(fields)), start, end);
  }
}

void MultiwayJoin::Enumerate(const Value& key, int new_port, size_t side,
                             std::vector<const StoredEvent*>* chosen) {
  if (side == sides_.size()) {
    EmitCombination(*chosen);
    return;
  }
  if (static_cast<int>(side) == new_port) {
    // The new event is already pinned in `chosen`.
    Enumerate(key, new_port, side + 1, chosen);
    return;
  }
  auto it = sides_[side].find(key);
  if (it == sides_[side].end()) return;
  for (const StoredEvent& candidate : it->second) {
    (*chosen)[side] = &candidate;
    Enumerate(key, new_port, side + 1, chosen);
  }
}

void MultiwayJoin::OnElement(int port, const StreamElement& element) {
  switch (element.kind()) {
    case ElementKind::kInsert: {
      const Value key = element.payload().field(
          key_columns_[static_cast<size_t>(port)]);
      StoredEvent stored{element.payload(), element.vs(), element.ve()};
      // Join the new event against every combination from the other sides
      // *before* adding it (no self-pairing).
      std::vector<const StoredEvent*> chosen(sides_.size(), nullptr);
      chosen[static_cast<size_t>(port)] = &stored;
      Enumerate(key, port, 0, &chosen);
      sides_[static_cast<size_t>(port)][key].push_back(stored);
      state_bytes_ += element.payload().DeepSizeBytes() + 32;
      break;
    }
    case ElementKind::kAdjust:
      // Insert-only by contract; see the header.  Tolerate full removals by
      // dropping the stored event (needed if an upstream retracts).
      if (element.ve() == element.vs()) {
        const Value key = element.payload().field(
            key_columns_[static_cast<size_t>(port)]);
        auto it = sides_[static_cast<size_t>(port)].find(key);
        if (it == sides_[static_cast<size_t>(port)].end()) break;
        auto& events = it->second;
        for (size_t i = 0; i < events.size(); ++i) {
          if (events[i].vs == element.vs() &&
              events[i].ve == element.v_old() &&
              events[i].payload == element.payload()) {
            state_bytes_ -= events[i].payload.DeepSizeBytes() + 32;
            events[i] = events.back();
            events.pop_back();
            break;
          }
        }
      } else {
        LM_CHECK_MSG(false,
                     "MultiwayJoin does not support lifetime revisions; "
                     "use a cascade of TemporalJoin operators");
      }
      break;
    case ElementKind::kStable: {
      stables_[static_cast<size_t>(port)] =
          std::max(stables_[static_cast<size_t>(port)],
                   element.stable_time());
      const Timestamp merged =
          *std::min_element(stables_.begin(), stables_.end());
      if (merged > out_stable_) {
        out_stable_ = merged;
        for (SideIndex& side : sides_) {
          auto it = side.begin();
          while (it != side.end()) {
            auto& events = it->second;
            for (size_t i = 0; i < events.size();) {
              if (events[i].ve < merged) {
                state_bytes_ -= events[i].payload.DeepSizeBytes() + 32;
                events[i] = events.back();
                events.pop_back();
              } else {
                ++i;
              }
            }
            if (events.empty()) {
              it = side.erase(it);
            } else {
              ++it;
            }
          }
        }
        EmitStable(merged);
      }
      break;
    }
  }
}

}  // namespace lmerge
