// Union: multiset union of N input streams (the operator whose output "can
// be disordered even if each input stream arrives in order" — Sec. I).
//
// Insert/adjust elements pass straight through.  Stable() elements are
// merged conservatively: the output stable point is the minimum of the
// latest stable points across inputs (an event may still arrive on a slower
// input before that).  Property transfer: insert-only survives; ordering and
// key properties do not (interleaving breaks them).

#ifndef LMERGE_OPERATORS_UNION_OP_H_
#define LMERGE_OPERATORS_UNION_OP_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "operators/operator.h"

namespace lmerge {

class UnionOp : public Operator {
 public:
  UnionOp(std::string name, int input_count)
      : Operator(std::move(name), input_count),
        stables_(static_cast<size_t>(input_count), kMinTimestamp) {
    LM_CHECK(input_count >= 1);
  }

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override {
    LM_CHECK(static_cast<int>(inputs.size()) == input_count());
    StreamProperties out;
    out.insert_only = true;
    for (const StreamProperties& p : inputs) {
      out.insert_only = out.insert_only && p.insert_only;
    }
    // Interleaving arbitrary inputs preserves neither order nor keys.
    return out;
  }

 protected:
  void OnElement(int port, const StreamElement& element) override {
    if (!element.is_stable()) {
      Emit(element);
      return;
    }
    Timestamp& mine = stables_[static_cast<size_t>(port)];
    mine = std::max(mine, element.stable_time());
    const Timestamp merged =
        *std::min_element(stables_.begin(), stables_.end());
    if (merged > emitted_stable_) {
      emitted_stable_ = merged;
      EmitStable(merged);
    }
  }

 private:
  std::vector<Timestamp> stables_;
  Timestamp emitted_stable_ = kMinTimestamp;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_UNION_OP_H_
