// Operator: base class of the push-based temporal query operators.
//
// Operators form a dataflow graph (engine/graph.h).  Each operator has a
// fixed-arity set of input ports and one logical output that fans out to any
// number of downstream (operator, port) targets and terminal ElementSinks.
// Delivery is synchronous: Consume() runs the operator and pushes its output
// downstream in the same call.
//
// Feedback (Sec. V-D): a downstream operator (LMerge) may announce that
// elements whose lifetime ends before time t are no longer of interest.
// OnFeedback records the horizon, lets the operator purge state or skip
// work, and by default propagates the signal further upstream — the
// "fast-forward" channel used for dynamic plan selection.

#ifndef LMERGE_OPERATORS_OPERATOR_H_
#define LMERGE_OPERATORS_OPERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/timestamp.h"
#include "properties/properties.h"
#include "stream/element.h"
#include "stream/sink.h"

namespace lmerge {

class Operator {
 public:
  Operator(std::string name, int input_count)
      : name_(std::move(name)), input_count_(input_count) {
    LM_CHECK(input_count >= 0);
  }
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const std::string& name() const { return name_; }
  int input_count() const { return input_count_; }

  // Delivers one element to input `port`.
  void Consume(int port, const StreamElement& element) {
    LM_DCHECK(port >= 0 && port < input_count_);
    OnElement(port, element);
  }

  // Wires this operator's output to `downstream`'s input `port`, and
  // registers the reverse edge for feedback propagation.
  void AddDownstream(Operator* downstream, int port) {
    LM_CHECK(downstream != nullptr);
    LM_CHECK(port >= 0 && port < downstream->input_count());
    targets_.push_back({downstream, port});
    downstream->upstreams_.push_back(this);
  }

  // Registers a terminal sink for this operator's output.
  void AddSink(ElementSink* sink) {
    LM_CHECK(sink != nullptr);
    sinks_.push_back(sink);
  }

  // Receives a feedback signal from downstream: elements whose lifetime ends
  // before `horizon` are no longer of interest.  Default behaviour records
  // the horizon and propagates upstream; stateful operators override to also
  // purge state, then call the base implementation.
  virtual void OnFeedback(Timestamp horizon) {
    if (horizon <= feedback_horizon_) return;
    feedback_horizon_ = horizon;
    PropagateFeedback(horizon);
  }

  // Output stream properties given the properties of each input (transfer
  // function of Sec. IV-G).  Default: nothing guaranteed.
  virtual StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const {
    (void)inputs;
    return StreamProperties::None();
  }

  // Bytes of operator state (indexes, buffers, payload copies).
  virtual int64_t StateBytes() const { return 0; }

  Timestamp feedback_horizon() const { return feedback_horizon_; }

 protected:
  // Implemented by concrete operators.
  virtual void OnElement(int port, const StreamElement& element) = 0;

  // Pushes an output element to every downstream target and sink.
  void Emit(const StreamElement& element) {
    for (ElementSink* sink : sinks_) sink->OnElement(element);
    for (const Target& target : targets_) {
      target.op->Consume(target.port, element);
    }
  }

  void EmitInsert(const Row& payload, Timestamp vs, Timestamp ve) {
    Emit(StreamElement::Insert(payload, vs, ve));
  }
  void EmitAdjust(const Row& payload, Timestamp vs, Timestamp v_old,
                  Timestamp ve) {
    Emit(StreamElement::Adjust(payload, vs, v_old, ve));
  }
  void EmitStable(Timestamp t) { Emit(StreamElement::Stable(t)); }

  // Sends feedback to every upstream operator.
  void PropagateFeedback(Timestamp horizon) {
    for (Operator* upstream : upstreams_) upstream->OnFeedback(horizon);
  }

  // Allows subclasses with dynamic arity (LMerge attach) to grow.
  void GrowInputs() { ++input_count_; }

  Timestamp feedback_horizon_ = kMinTimestamp;

 private:
  struct Target {
    Operator* op;
    int port;
  };

  std::string name_;
  int input_count_;
  std::vector<Target> targets_;
  std::vector<ElementSink*> sinks_;
  std::vector<Operator*> upstreams_;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_OPERATOR_H_
