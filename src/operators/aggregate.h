// Windowed (optionally grouped) aggregation — the paper's workhorse
// substrate operator ("a running aggregate of successful process counts",
// "a count for every machine in a data center").
//
// Events are assigned to tumbling windows of `window_size` ticks by their
// Vs.  Per window (and group), the operator maintains a count or sum and
// emits one output event with lifetime [window_start, window_end).
//
// Two operating modes mirror Sec. I's discussion:
//  * kAggressive: emits an updated result as soon as input arrives, and
//    *revises* previously emitted results (retract + re-insert) when late
//    (disordered) input changes a window — this is the sub-query the
//    evaluation uses to generate adjust() traffic (Fig. 4, Fig. 7).
//  * kConservative: holds results until the input stable point passes the
//    window end, then emits each final result exactly once, in window order.
//
// Property transfer implements the Sec. IV-G examples:
//  * conservative + global     -> strictly increasing, insert-only  (R0)
//  * conservative + grouped    -> ordered, duplicates with nondeterministic
//                                 cross-plan order, (Vs,payload) key (R2)
//  * aggressive (any grouping) -> revisions + disorder, (Vs,payload) key (R3)

#ifndef LMERGE_OPERATORS_AGGREGATE_H_
#define LMERGE_OPERATORS_AGGREGATE_H_

#include <map>
#include <string>
#include <utility>

#include "common/checkpoint.h"
#include "operators/operator.h"

namespace lmerge {

enum class AggregateMode {
  // Emits an updated result on every arrival (maximally chatty).
  kAggressive,
  // Emits each window's final result once, when the input stable point
  // passes the window end.
  kConservative,
  // Emits a window's results as soon as a *newer* window is seen (an early
  // answer assuming completeness), then revises when disordered stragglers
  // arrive for an already-emitted window.  Adjust traffic is proportional
  // to input disorder — the sub-query shape behind Fig. 4 and Fig. 7.
  kSpeculative,
};

enum class AggregateFunction {
  kCount,
  kSum,
};

struct AggregateConfig {
  Timestamp window_size = 1000;
  // Hop between window starts; 0 (default) means tumbling (hop ==
  // window_size).  A hop smaller than the window size yields sliding
  // windows: each event contributes to window_size/hop overlapping results
  // (the "sliding window multi-valued aggregate" family of Sec. IV-G).
  Timestamp hop = 0;
  // Column of the grouping key, or -1 for a single global group.
  int64_t group_column = -1;
  AggregateFunction function = AggregateFunction::kCount;
  // Column summed by kSum (must hold int64 values).
  int64_t value_column = 0;
  AggregateMode mode = AggregateMode::kAggressive;
};

class GroupedAggregate : public Operator, public Checkpointable {
 public:
  GroupedAggregate(std::string name, AggregateConfig config)
      : Operator(std::move(name), 1), config_(config) {
    LM_CHECK(config.window_size > 0);
  }

  // Checkpointable: snapshots all open windows plus watermarks, letting a
  // migrated plan resume mid-window (Sec. II-4 jumpstart).
  void SaveState(Encoder* encoder) const override;
  Status RestoreState(Decoder* decoder) override;

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override;

  int64_t StateBytes() const override { return state_bytes_; }

  // Feedback fast-forward: windows ending before the horizon can no longer
  // influence interesting output; purge them and skip their input.
  void OnFeedback(Timestamp horizon) override;

 protected:
  void OnElement(int port, const StreamElement& element) override;

 private:
  struct GroupState {
    int64_t count = 0;
    int64_t sum = 0;
    bool emitted = false;
    int64_t emitted_value = 0;
  };
  // window start -> group key row -> state
  using WindowMap = std::map<Timestamp, std::map<Row, GroupState>>;

  Timestamp hop() const {
    return config_.hop > 0 ? config_.hop : config_.window_size;
  }
  static Timestamp FloorDiv(Timestamp a, Timestamp b) {
    Timestamp q = a / b;
    if (a % b != 0 && (a < 0) != (b < 0)) --q;
    return q;
  }
  // Start of the latest window containing vs (window starts are multiples
  // of hop()).
  Timestamp WindowStart(Timestamp vs) const {
    return FloorDiv(vs, hop()) * hop();
  }
  // Start of the earliest window containing vs: the smallest multiple of
  // hop() strictly greater than vs - window_size.
  Timestamp FirstWindowStart(Timestamp vs) const {
    return (FloorDiv(vs - config_.window_size, hop()) + 1) * hop();
  }
  Row GroupKey(const Row& payload) const {
    if (config_.group_column < 0) return Row();
    return Row({payload.field(config_.group_column)});
  }
  int64_t CurrentValue(const GroupState& state) const {
    return config_.function == AggregateFunction::kCount ? state.count
                                                         : state.sum;
  }
  Row OutputRow(const Row& group, int64_t value) const {
    if (config_.group_column < 0) return Row({Value(value)});
    return Row({group.field(0), Value(value)});
  }

  void ApplyDelta(const Row& payload, Timestamp vs, int64_t sign);
  void ApplyDeltaToWindow(Timestamp w, const Row& payload, int64_t sign);
  void FinalizeBelow(Timestamp t);
  // kSpeculative: emits every not-yet-emitted result for windows strictly
  // before `frontier`, then advances the speculation horizon.
  void EmitSpeculativeBelow(Timestamp frontier);
  // Emits or revises one (window, group) result from its current state.
  void EmitOrRevise(Timestamp w, const Row& group, GroupState* state);

  AggregateConfig config_;
  WindowMap windows_;
  int64_t state_bytes_ = 0;
  Timestamp out_stable_ = kMinTimestamp;
  Timestamp spec_horizon_ = kMinTimestamp;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_AGGREGATE_H_
