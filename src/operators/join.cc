#include "operators/join.h"

#include <algorithm>

namespace lmerge {

void TemporalJoin::PairAgainstOtherSide(int port, const StoredEvent& mine,
                                        Timestamp old_ve) {
  const int other = 1 - port;
  auto it = sides_[other].find(
      mine.payload.field(key_column_[static_cast<size_t>(port)]));
  if (it == sides_[other].end()) return;
  for (const StoredEvent& theirs : it->second) {
    const Timestamp start = IntersectStart(mine, theirs);
    const Timestamp old_end =
        std::min(old_ve, theirs.ve) > start ? std::min(old_ve, theirs.ve)
                                            : start;
    const Timestamp new_end =
        IntersectEnd(mine, theirs) > start ? IntersectEnd(mine, theirs)
                                           : start;
    if (old_end == new_end) continue;  // intersection unchanged
    const Row out_row =
        port == 0 ? JoinRow(mine, theirs) : JoinRow(theirs, mine);
    if (old_end == start) {
      // No previous intersection: a new join result appears.
      EmitInsert(out_row, start, new_end);
    } else if (new_end == start) {
      // The intersection vanished: retract.
      EmitAdjust(out_row, start, old_end, start);
    } else {
      EmitAdjust(out_row, start, old_end, new_end);
    }
  }
}

void TemporalJoin::PurgeBelow(SideIndex& side, Timestamp t) {
  auto it = side.begin();
  while (it != side.end()) {
    auto& events = it->second;
    for (size_t i = 0; i < events.size();) {
      if (events[i].ve < t) {
        state_bytes_ -= events[i].payload.DeepSizeBytes() + 32;
        events[i] = events.back();
        events.pop_back();
      } else {
        ++i;
      }
    }
    if (events.empty()) {
      it = side.erase(it);
    } else {
      ++it;
    }
  }
}

void TemporalJoin::OnElement(int port, const StreamElement& element) {
  LM_DCHECK(port == 0 || port == 1);
  SideIndex& mine = sides_[port];
  switch (element.kind()) {
    case ElementKind::kInsert: {
      StoredEvent stored{element.payload(), element.vs(), element.ve()};
      PairAgainstOtherSide(port, stored, /*old_ve=*/element.vs());
      mine[element.payload().field(key_column_[static_cast<size_t>(port)])]
          .push_back(stored);
      state_bytes_ += element.payload().DeepSizeBytes() + 32;
      break;
    }
    case ElementKind::kAdjust: {
      auto it = mine.find(
          element.payload().field(key_column_[static_cast<size_t>(port)]));
      if (it == mine.end()) break;
      for (size_t i = 0; i < it->second.size(); ++i) {
        StoredEvent& stored = it->second[i];
        if (stored.vs == element.vs() && stored.ve == element.v_old() &&
            stored.payload == element.payload()) {
          stored.ve = element.ve();
          PairAgainstOtherSide(port, stored, /*old_ve=*/element.v_old());
          if (stored.ve == stored.vs) {
            state_bytes_ -= stored.payload.DeepSizeBytes() + 32;
            it->second[i] = it->second.back();
            it->second.pop_back();
            if (it->second.empty()) mine.erase(it);
          }
          break;
        }
      }
      break;
    }
    case ElementKind::kStable: {
      stables_[port] = std::max(stables_[port], element.stable_time());
      const Timestamp merged = std::min(stables_[0], stables_[1]);
      if (merged > out_stable_) {
        out_stable_ = merged;
        PurgeBelow(sides_[0], merged);
        PurgeBelow(sides_[1], merged);
        EmitStable(merged);
      }
      break;
    }
  }
}

}  // namespace lmerge
