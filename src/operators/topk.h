// TopK: per tumbling window, the k rows with the largest value in a chosen
// column, emitted in rank order when the window finalizes.
//
// This is the Sec. IV-G example for case R1: every output window produces up
// to k events sharing the same Vs (the window start), and every equivalent
// plan presents them in the same deterministic order (descending value,
// payload as tie-break).

#ifndef LMERGE_OPERATORS_TOPK_H_
#define LMERGE_OPERATORS_TOPK_H_

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "operators/operator.h"

namespace lmerge {

class TopK : public Operator {
 public:
  TopK(std::string name, Timestamp window_size, int64_t k,
       int64_t value_column)
      : Operator(std::move(name), 1),
        window_size_(window_size),
        k_(k),
        value_column_(value_column) {
    LM_CHECK(window_size > 0);
    LM_CHECK(k >= 1);
  }

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override {
    LM_CHECK(inputs.size() == 1);
    StreamProperties out;
    out.insert_only = true;
    out.ordered = true;
    out.deterministic_ties = true;  // rank order is the same on every plan
    out.vs_payload_key = inputs[0].vs_payload_key;
    return out.Normalized();
  }

  int64_t StateBytes() const override { return state_bytes_; }

 protected:
  void OnElement(int port, const StreamElement& element) override {
    (void)port;
    switch (element.kind()) {
      case ElementKind::kInsert: {
        const Timestamp w = WindowStart(element.vs());
        windows_[w].push_back(element.payload());
        state_bytes_ += element.payload().DeepSizeBytes() + 16;
        break;
      }
      case ElementKind::kAdjust:
        // Removal drops the row from its window; other adjusts are
        // irrelevant to a Vs-keyed ranking.
        if (element.ve() == element.vs()) {
          const Timestamp w = WindowStart(element.vs());
          auto it = windows_.find(w);
          if (it == windows_.end()) break;
          auto& rows = it->second;
          for (size_t i = 0; i < rows.size(); ++i) {
            if (rows[i] == element.payload()) {
              state_bytes_ -= rows[i].DeepSizeBytes() + 16;
              rows.erase(rows.begin() + static_cast<int64_t>(i));
              break;
            }
          }
        }
        break;
      case ElementKind::kStable: {
        const Timestamp t = element.stable_time();
        auto it = windows_.begin();
        while (it != windows_.end() && it->first + window_size_ <= t) {
          EmitWindow(it->first, it->second);
          for (const Row& row : it->second) {
            state_bytes_ -= row.DeepSizeBytes() + 16;
          }
          it = windows_.erase(it);
        }
        const Timestamp ws = WindowStart(t);
        if (ws > out_stable_) {
          out_stable_ = ws;
          EmitStable(ws);
        }
        break;
      }
    }
  }

 private:
  Timestamp WindowStart(Timestamp vs) const {
    Timestamp w = vs / window_size_;
    if (vs < 0 && vs % window_size_ != 0) --w;
    return w * window_size_;
  }

  void EmitWindow(Timestamp w, std::vector<Row>& rows) {
    std::sort(rows.begin(), rows.end(), [this](const Row& a, const Row& b) {
      const int64_t va = a.field(value_column_).AsInt64();
      const int64_t vb = b.field(value_column_).AsInt64();
      if (va != vb) return va > vb;          // descending by value
      return a.Compare(b) < 0;               // deterministic tie-break
    });
    const size_t n = std::min(rows.size(), static_cast<size_t>(k_));
    for (size_t i = 0; i < n; ++i) {
      EmitInsert(rows[i], w, w + window_size_);
    }
  }

  Timestamp window_size_;
  int64_t k_;
  int64_t value_column_;
  std::map<Timestamp, std::vector<Row>> windows_;
  int64_t state_bytes_ = 0;
  Timestamp out_stable_ = kMinTimestamp;
};

}  // namespace lmerge

#endif  // LMERGE_OPERATORS_TOPK_H_
