// Merger: the engine-side delivery interface shared by the single-threaded
// ConcurrentMerger and the sharded PartitionedMerger.
//
// Producers (network sessions, test drivers) deliver per-stream elements and
// never touch algorithm state; how the merge itself is scheduled — one merge
// thread (engine/concurrent.h) or N shard threads behind a stable-point
// aggregator (engine/partitioned.h) — is an implementation choice hidden
// behind this interface.  MergeServer programs against it so
// `--merge-threads=N` is a pure configuration switch.
//
// Algorithm state is only ever touched by merge threads.  Callers that need
// a consistent view (stats, checkpoints, output-view adoption) go through
// CallAtBarrier / the snapshot helpers, which run between batches on every
// shard at once — the sharded generalization of
// ConcurrentMerger::CallOnMergeThread.

#ifndef LMERGE_ENGINE_MERGER_H_
#define LMERGE_ENGINE_MERGER_H_

#include <chrono>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "core/merge_algorithm.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "stream/element.h"

namespace lmerge {

// Race-free copy of the per-input state a merger exposes: the per-input
// counter table, each input's active flag, and the output totals — what
// the server's STATS_RESPONSE table is built from.
struct MergerInputSnapshot {
  std::vector<PerInputStats> per_input;
  std::vector<bool> active;
  MergeOutputStats totals;
};

class Merger {
 public:
  virtual ~Merger() = default;

  // Thread-safe single-element delivery for trusted callers; blocks on
  // backpressure.  At most one thread may deliver to a given stream at a
  // time (SPSC contract).
  virtual void Deliver(int stream, const StreamElement& element) = 0;

  // Validates first and reports failure instead of aborting — the entry
  // point for untrusted inputs.  Enqueue-only: Ok means accepted, not yet
  // merged (see WaitIdle).
  virtual Status TryDeliver(int stream, const StreamElement& element) = 0;

  // Batched TryDeliver: validates and enqueues in order, moving elements
  // out of `batch`.  On a validation failure the elements before the
  // failing one stay enqueued (prefix semantics) and the error is returned.
  virtual Status TryDeliverBatch(int stream,
                                 std::span<StreamElement> batch) = 0;

  // Stamped delivery: like TryDeliverBatch, additionally attaching the
  // batch's ingest stamp for the latency pipeline
  // (docs/OBSERVABILITY.md).  The stamp is observability side-channel
  // data: implementations may drop it under pressure (a lost latency
  // sample), never the elements.  The default ignores it, so mergers
  // without latency plumbing stay correct.
  virtual Status TryDeliverBatch(int stream, std::span<StreamElement> batch,
                                 const obs::IngestStamp& stamp) {
    (void)stamp;
    return TryDeliverBatch(stream, batch);
  }

  // Runtime stream registry (the paper's join/leave hooks, Sec. V-B/C).
  // Both block until every shard has applied the change; RemoveStream first
  // drains everything already enqueued for the stream.
  virtual int AddStream() = 0;
  virtual void RemoveStream(int stream) = 0;

  // Blocks until every element enqueued so far has been merged and emitted.
  virtual void WaitIdle() = 0;

  // The merged output's stable point: a possibly slightly stale snapshot
  // while deliveries are in flight, exact after WaitIdle().  For a
  // partitioned merger this is the min across shard frontiers.
  virtual Timestamp max_stable() const = 0;

  virtual int64_t delivered_count() const = 0;

  // First asynchronous delivery error; Ok when none.  Once set, subsequent
  // batches are discarded.
  virtual Status error() const = 0;

  // Number of algorithm shards (1 for the single-threaded merger).
  virtual int shard_count() const = 0;

  // The wrapped algorithm's case (identical across shards).
  virtual AlgorithmCase algorithm_case() const = 0;

  // Runs `fn` at a point where NO shard is mid-batch — the race-free way to
  // observe or mutate algorithm state while deliveries are in flight.  The
  // span holds every shard's algorithm (size 1 for the single-threaded
  // merger); all of them stand between two elements of one consistent cut,
  // so cross-shard state (checkpoints, cut certificates) describes a single
  // barrier.  `fn` must not call back into this merger.
  virtual void CallAtBarrier(
      std::function<void(std::span<MergeAlgorithm* const>)> fn) = 0;

  // Seeds stream `stream`'s per-input views from the output's own views on
  // every shard (MergeAlgorithm::AdoptOutputView at one barrier).
  virtual Status AdoptOutputView(int stream) = 0;

  // Output totals, aggregated across shards at a barrier.
  virtual MergeOutputStats StatsSnapshot() = 0;

  // Per-input counters + active flags + totals, one consistent barrier copy.
  virtual MergerInputSnapshot InputSnapshot() = 0;

  // Exports algorithm + engine instruments into the global registry and
  // returns its snapshot.  Safe to call while deliveries are in flight.
  virtual obs::MetricsSnapshot MetricsSnapshot() = 0;

  // Liveness probe for /readyz: posts a no-op onto every merge thread and
  // waits up to `timeout` for all of them to run it.  False means some
  // thread did not come around — wedged in a batch, deadlocked, or dead —
  // while true means each one reached its control-op point.  The default
  // (no threads to probe) is trivially responsive.
  virtual bool Responsive(std::chrono::milliseconds timeout) {
    (void)timeout;
    return true;
  }

  // Spawns one thread per input, each delivering its sequence in order
  // (cross-stream interleaving is up to the scheduler), joins them, and
  // waits until everything is merged.  Aborts on delivery errors (inputs
  // are trusted replicas).
  void Run(const std::vector<ElementSequence>& inputs) {
    std::vector<std::thread> threads;
    threads.reserve(inputs.size());
    for (size_t s = 0; s < inputs.size(); ++s) {
      threads.emplace_back([this, s, &inputs] {
        for (const StreamElement& element : inputs[s]) {
          Deliver(static_cast<int>(s), element);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    WaitIdle();
    const Status status = error();
    LM_CHECK_MSG(status.ok(), "concurrent delivery failed: %s",
                 status.ToString().c_str());
  }
};

}  // namespace lmerge

#endif  // LMERGE_ENGINE_MERGER_H_
