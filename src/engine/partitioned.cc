#include "engine/partitioned.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <utility>

#include "obs/latency.h"
#include "obs/trace.h"

namespace lmerge {

PartitionedMerger::PartitionedMerger(ShardAlgorithmFactory factory,
                                     ElementSink* sink,
                                     PartitionedMergerOptions options)
    : num_shards_(options.shards),
      options_(std::move(options)),
      sink_(sink) {
  LM_CHECK(num_shards_ >= 1);
  LM_CHECK(sink != nullptr);
  LM_CHECK(options_.out_ring_capacity >= 2);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  agg_batches_metric_ = registry.GetCounter("merge.agg.batches");
  agg_stalls_metric_ = registry.GetCounter("merge.agg.backpressure_stalls");
  shards_.reserve(static_cast<size_t>(num_shards_));
  algorithms_.reserve(static_cast<size_t>(num_shards_));
  for (int i = 0; i < num_shards_; ++i) {
    auto shard = std::make_unique<Shard>(options_.out_ring_capacity);
    shard->sink.parent_ = this;
    shard->sink.shard_ = i;
    // Restore-style factories rebuild state without emitting, so the sink
    // is quiescent until the shard's merge thread starts below.
    shard->algorithm = factory(i, &shard->sink);
    LM_CHECK(shard->algorithm != nullptr);
    shard->frontier = shard->algorithm->max_stable();
    const std::string scope = "merge.shard." + std::to_string(i);
    shard->elements_metric = registry.GetCounter(scope + ".elements");
    shard->routed_batch_metric = registry.GetHistogram(scope + ".routed_batch");
    ConcurrentMergerOptions shard_options;
    shard_options.ring_capacity = options_.ring_capacity;
    shard_options.max_batch = options_.max_batch;
    shard_options.metrics_scope = scope;
    shard->merger = std::make_unique<ConcurrentMerger>(
        shard->algorithm.get(), std::move(shard_options));
    algorithms_.push_back(shard->algorithm.get());
    shards_.push_back(std::move(shard));
  }
  for (int i = 1; i < num_shards_; ++i) {
    LM_CHECK(algorithms_[static_cast<size_t>(i)]->stream_count() ==
             algorithms_[0]->stream_count());
    LM_CHECK(algorithms_[static_cast<size_t>(i)]->algorithm_case() ==
             algorithms_[0]->algorithm_case());
  }
  const int n = algorithms_[0]->stream_count();
  LM_CHECK(static_cast<size_t>(n) <= kMaxStreams);
  active_.reserve(kMaxStreams);
  for (int s = 0; s < n; ++s) {
    active_.push_back(std::make_unique<std::atomic<bool>>(
        algorithms_[0]->stream_active(s)));
  }
  stream_count_.store(n, std::memory_order_release);
  Timestamp global = shards_[0]->frontier;
  for (int i = 1; i < num_shards_; ++i) {
    global = std::min(global, shards_[static_cast<size_t>(i)]->frontier);
  }
  output_stable_.store(global, std::memory_order_release);
  agg_thread_ = std::thread([this] { AggregatorLoop(); });
}

PartitionedMerger::~PartitionedMerger() {
  // Stop the shard mergers first: each drains its remaining input into the
  // still-running aggregator (a full output ring would otherwise deadlock
  // the shard's final drain).  Only then stop the aggregator, which exits
  // after forwarding everything the shards emitted.
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->merger.reset();
  }
  agg_stop_.store(true, std::memory_order_release);
  WakeAggregator();
  if (agg_thread_.joinable()) agg_thread_.join();
}

Status PartitionedMerger::Precheck(int stream,
                                   const StreamElement& element) const {
  if (stream < 0 || stream >= stream_count_.load(std::memory_order_acquire) ||
      !active_[static_cast<size_t>(stream)]->load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("delivery on inactive stream " +
                                      std::to_string(stream));
  }
  if (AnyShardPoisoned()) return error();
  // Stateless, shared across shards — validating once on shard 0's
  // algorithm covers every shard (they are identically configured).
  return algorithms_[0]->ValidateElement(element);
}

bool PartitionedMerger::AnyShardPoisoned() const {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->merger->poisoned()) return true;
  }
  return false;
}

void PartitionedMerger::Deliver(int stream, const StreamElement& element) {
  LM_CHECK(stream >= 0 &&
           stream < stream_count_.load(std::memory_order_acquire));
  StreamElement copy = element;
  RouteBatch(stream, std::span<StreamElement>(&copy, 1));
}

Status PartitionedMerger::TryDeliver(int stream,
                                     const StreamElement& element) {
  const Status status = Precheck(stream, element);
  if (!status.ok()) return status;
  StreamElement copy = element;
  RouteBatch(stream, std::span<StreamElement>(&copy, 1));
  return Status::Ok();
}

Status PartitionedMerger::TryDeliverBatch(int stream,
                                          std::span<StreamElement> batch) {
  // Validation is stateless, so validating the whole batch up front and
  // then routing the valid prefix is equivalent to element-wise
  // validate-then-enqueue — the prefix before a failing element stays
  // delivered, exactly ConcurrentMerger's semantics.
  size_t valid = batch.size();
  Status failure = Status::Ok();
  for (size_t i = 0; i < batch.size(); ++i) {
    const Status status = Precheck(stream, batch[i]);
    if (!status.ok()) {
      valid = i;
      failure = status;
      break;
    }
  }
  RouteBatch(stream, batch.subspan(0, valid));
  return failure;
}

Status PartitionedMerger::TryDeliverBatch(int stream,
                                          std::span<StreamElement> batch,
                                          const obs::IngestStamp& stamp) {
  // Same valid-prefix routing as the unstamped overload, with the stamp
  // attached to every shard sub-batch.
  size_t valid = batch.size();
  Status failure = Status::Ok();
  for (size_t i = 0; i < batch.size(); ++i) {
    const Status status = Precheck(stream, batch[i]);
    if (!status.ok()) {
      valid = i;
      failure = status;
      break;
    }
  }
  RouteBatch(stream, batch.subspan(0, valid), stamp);
  return failure;
}

void PartitionedMerger::RouteBatch(int stream,
                                   std::span<StreamElement> batch,
                                   const obs::IngestStamp& stamp) {
  if (batch.empty()) return;
  // Stack-local split buffers: concurrent producers (one per stream) each
  // route independently; per-stream order is preserved inside every
  // shard's sub-batch because elements append in batch order.
  std::vector<std::vector<StreamElement>> per_shard(
      static_cast<size_t>(num_shards_));
  for (StreamElement& element : batch) {
    if (element.is_stable()) {
      // stable(Vc) constrains every key: broadcast to all shards.
      for (int i = 0; i + 1 < num_shards_; ++i) {
        per_shard[static_cast<size_t>(i)].push_back(element);
      }
      per_shard[static_cast<size_t>(num_shards_ - 1)].push_back(
          std::move(element));
    } else {
      const int shard = options_.route_override
                            ? options_.route_override(element, num_shards_)
                            : RouteShard(element, num_shards_);
      LM_CHECK(shard >= 0 && shard < num_shards_);
      per_shard[static_cast<size_t>(shard)].push_back(std::move(element));
    }
  }
  delivered_.fetch_add(static_cast<int64_t>(batch.size()),
                       std::memory_order_release);
  for (int i = 0; i < num_shards_; ++i) {
    std::vector<StreamElement>& sub = per_shard[static_cast<size_t>(i)];
    if (sub.empty()) continue;
    Shard& shard = *shards_[static_cast<size_t>(i)];
    shard.elements_metric->Add(static_cast<int64_t>(sub.size()));
    shard.routed_batch_metric->Record(static_cast<int64_t>(sub.size()));
    shard.merger->DeliverBatch(
        stream, std::span<StreamElement>(sub.data(), sub.size()), stamp);
  }
}

int PartitionedMerger::AddStream() {
  MutexLock lock(control_mutex_);
  int id = -1;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const int shard_id = shard->merger->AddStream();
    if (id < 0) {
      id = shard_id;
    } else {
      LM_CHECK(shard_id == id);
    }
  }
  LM_CHECK(id == stream_count_.load(std::memory_order_acquire));
  LM_CHECK(active_.size() < kMaxStreams);
  active_.push_back(std::make_unique<std::atomic<bool>>(true));
  stream_count_.store(id + 1, std::memory_order_release);
  return id;
}

void PartitionedMerger::RemoveStream(int stream) {
  MutexLock lock(control_mutex_);
  if (stream < 0 || stream >= stream_count_.load(std::memory_order_acquire)) {
    return;
  }
  // Close the producer side first (idempotent), then drain + detach the
  // stream on every shard.
  if (!active_[static_cast<size_t>(stream)]->exchange(false)) return;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->merger->RemoveStream(stream);
  }
}

void PartitionedMerger::WaitIdle() {
  // Everything enqueued before this call sits in some shard's input rings;
  // per-shard WaitIdle covers all of it, and the out_pending_ wait covers
  // the aggregator's forwarding of the resulting output.  The aggregator
  // emits stable(g) BEFORE decrementing pending for the stable element
  // that advanced g, so pending == 0 implies all stables are out too.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->merger->WaitIdle();
  }
  MutexLock lock(out_idle_mutex_);
  while (out_pending_.load(std::memory_order_acquire) != 0) {
    out_idle_cv_.Wait(lock);
  }
}

Status PartitionedMerger::error() const {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    Status status = shard->merger->error();
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

void PartitionedMerger::CallAtBarrier(
    std::function<void(std::span<MergeAlgorithm* const>)> fn) {
  MutexLock lock(control_mutex_);
  barrier_release_.store(false, std::memory_order_release);
  barrier_arrived_.store(0, std::memory_order_release);
  // Park every shard's merge thread between two batches.  Posting must be
  // async: a blocking post to shard 0 would wait for its park fn to return,
  // which only happens after the release below — deadlock.
  std::vector<std::future<int>> parked;
  parked.reserve(static_cast<size_t>(num_shards_));
  for (const std::unique_ptr<Shard>& shard : shards_) {
    parked.push_back(shard->merger->CallOnMergeThreadAsync([this] {
      barrier_arrived_.fetch_add(1, std::memory_order_acq_rel);
      MutexLock barrier_lock(barrier_mutex_);
      barrier_cv_.NotifyAll();
      while (!barrier_release_.load(std::memory_order_acquire)) {
        barrier_cv_.Wait(barrier_lock);
      }
    }));
  }
  {
    MutexLock barrier_lock(barrier_mutex_);
    while (barrier_arrived_.load(std::memory_order_acquire) < num_shards_) {
      barrier_cv_.Wait(barrier_lock);
    }
  }
  // All shards stand between batches; nothing new can enter the output
  // rings, so once the aggregator's books hit zero its state (frontiers,
  // output stable, stables_out) is frozen and fully applied.  A shard that
  // was blocked on a full output ring mid-batch finished that batch before
  // parking — the aggregator kept draining throughout.
  {
    MutexLock idle_lock(out_idle_mutex_);
    while (out_pending_.load(std::memory_order_acquire) != 0) {
      out_idle_cv_.Wait(idle_lock);
    }
  }
  fn(std::span<MergeAlgorithm* const>(algorithms_.data(),
                                      algorithms_.size()));
  {
    MutexLock barrier_lock(barrier_mutex_);
    barrier_release_.store(true, std::memory_order_release);
    barrier_cv_.NotifyAll();
  }
  for (std::future<int>& f : parked) f.get();
}

Status PartitionedMerger::AdoptOutputView(int stream) {
  Status status = Status::Ok();
  CallAtBarrier([stream, &status](std::span<MergeAlgorithm* const> shards) {
    for (MergeAlgorithm* algorithm : shards) {
      const Status shard_status = algorithm->AdoptOutputView(stream);
      if (status.ok() && !shard_status.ok()) status = shard_status;
    }
  });
  return status;
}

MergeOutputStats PartitionedMerger::StatsSnapshot() {
  MergeOutputStats stats;
  CallAtBarrier([this, &stats](std::span<MergeAlgorithm* const> shards) {
    stats = AggregateShardStats(
        shards, stables_out_.load(std::memory_order_relaxed));
  });
  return stats;
}

MergerInputSnapshot PartitionedMerger::InputSnapshot() {
  MergerInputSnapshot snapshot;
  CallAtBarrier([this, &snapshot](std::span<MergeAlgorithm* const> shards) {
    snapshot.per_input = AggregateShardPerInputStats(shards);
    snapshot.active.resize(snapshot.per_input.size());
    for (size_t s = 0; s < snapshot.per_input.size(); ++s) {
      snapshot.active[s] = shards[0]->stream_active(static_cast<int>(s));
    }
    snapshot.totals = AggregateShardStats(
        shards, stables_out_.load(std::memory_order_relaxed));
  });
  return snapshot;
}

obs::MetricsSnapshot PartitionedMerger::MetricsSnapshot() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  CallAtBarrier([this, &registry](std::span<MergeAlgorithm* const> shards) {
    ExportAggregatedMergeMetrics(shards,
                                 stables_out_.load(std::memory_order_relaxed),
                                 output_stable_.load(std::memory_order_relaxed),
                                 &registry);
  });
  int64_t pending = out_pending_.load(std::memory_order_acquire);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    pending += shard->merger->pending_count();
  }
  registry.GetExportedCounter("engine.delivered")->Set(delivered_count());
  registry.GetGauge("engine.pending")->Set(pending);
  registry.GetGauge("engine.streams")
      ->Set(stream_count_.load(std::memory_order_acquire));
  return registry.Snapshot();
}

bool PartitionedMerger::Responsive(std::chrono::milliseconds timeout) {
  // One concurrent ping per shard against a shared deadline, so the probe
  // costs max(shard latencies), not their sum.
  std::vector<std::future<int>> pings;
  pings.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    pings.push_back(shard->merger->CallOnMergeThreadAsync([] {}));
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (std::future<int>& ping : pings) {
    if (ping.wait_until(deadline) != std::future_status::ready) return false;
  }
  return true;
}

void PartitionedMerger::EnqueueOutput(int shard, const StreamElement& element) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  // Stamp relay, shard half: the shard's merge thread republishes its
  // input batch's stamp thread-locally (engine/concurrent.cc); record it
  // into the side ring whenever it changes, keyed by the cumulative output
  // position, so the aggregator can re-derive "which stamp was in force"
  // for each drained element.  A full side ring drops the change (lost
  // sample) and retries at the next change.
  const obs::IngestStamp& current = obs::CurrentIngestStamp();
  if (!(current == s.out_last_stamp)) {
    OutStamp entry;
    entry.begin_count = s.out_enqueued;
    entry.stamp = current;
    if (s.out_stamp_ring.TryPush(entry)) s.out_last_stamp = current;
  }
  s.out_enqueued += 1;
  // Commit to the books before the push so out_pending_ never transiently
  // reads 0 while output is in flight (same protocol as
  // ConcurrentMerger::EnqueueBlocking).
  out_pending_.fetch_add(1, std::memory_order_relaxed);
  StreamElement copy = element;
  int spins = 0;
  while (!s.out_ring.TryPush(copy)) {
    if (++spins < 64) continue;
    if (spins == 64) agg_stalls_metric_->Increment();
    WakeAggregator();
    MutexLock lock(s.wait_mutex);
    s.producer_waiting.store(true, std::memory_order_release);
    (void)s.wait_cv.WaitFor(lock, std::chrono::milliseconds(1));
    s.producer_waiting.store(false, std::memory_order_release);
  }
  WakeAggregator();
}

void PartitionedMerger::WakeAggregator() {
  if (agg_sleeping_.load(std::memory_order_acquire)) {
    {
      MutexLock lock(agg_wake_mutex_);
    }
    agg_wake_cv_.NotifyOne();
  }
}

void PartitionedMerger::AggregatorLoop() {
  std::vector<StreamElement> scratch;
  scratch.reserve(options_.max_batch);
  int idle_rounds = 0;
  while (true) {
    size_t work = 0;
    for (int i = 0; i < num_shards_; ++i) {
      work += DrainShardOutput(i, &scratch);
    }
    if (work > 0) {
      idle_rounds = 0;
      continue;
    }
    if (agg_stop_.load(std::memory_order_acquire) &&
        out_pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
    // Same idle backoff as ConcurrentMerger::MergeLoop; the 1ms timeout is
    // the lost-wakeup backstop for WakeAggregator's unlocked check.
    ++idle_rounds;
    if (idle_rounds < 128) continue;
    if (idle_rounds < 160) {
      std::this_thread::yield();
      continue;
    }
    MutexLock lock(agg_wake_mutex_);
    agg_sleeping_.store(true, std::memory_order_release);
    (void)agg_wake_cv_.WaitFor(lock, std::chrono::milliseconds(1));
    agg_sleeping_.store(false, std::memory_order_release);
  }
}

size_t PartitionedMerger::DrainShardOutput(int shard,
                                           std::vector<StreamElement>* scratch) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  scratch->clear();
  const size_t n = s.out_ring.Pop(scratch, options_.max_batch);
  if (n == 0) return 0;
  agg_batches_metric_->Increment();
  // Stamp relay, aggregator half: elements drained here carry the stamp in
  // force at their position.  Fold the carried-over stamp with every relay
  // entry that began inside this chunk (the chunk is charged its oldest
  // element) and republish thread-locally for the downstream sink; the last
  // entry stays in force for the next chunk.
  s.out_drained += n;
  obs::IngestStamp chunk_stamp = s.agg_stamp;
  while (OutStamp* entry = s.out_stamp_ring.Peek()) {
    if (entry->begin_count >= s.out_drained) break;
    s.agg_stamp = entry->stamp;
    chunk_stamp.FoldOldest(entry->stamp);
    s.out_stamp_ring.PopFront();
  }
  obs::SetCurrentIngestStamp(chunk_stamp);
  {
    LMERGE_TRACE_SPAN("agg_batch", "engine");
    for (size_t i = 0; i < n; ++i) ForwardElement(shard, (*scratch)[i]);
  }
  if (options_.after_batch) options_.after_batch();
  // Decrement only after after_batch so WaitIdle/barrier waiters observe a
  // flushed sink, not just delivered-to-a-buffer elements.
  if (out_pending_.fetch_sub(static_cast<int64_t>(n),
                             std::memory_order_acq_rel) ==
      static_cast<int64_t>(n)) {
    MutexLock lock(out_idle_mutex_);
    out_idle_cv_.NotifyAll();
  }
  if (s.producer_waiting.load(std::memory_order_acquire)) {
    {
      MutexLock lock(s.wait_mutex);
    }
    s.wait_cv.NotifyAll();
  }
  return n;
}

void PartitionedMerger::ForwardElement(int shard, StreamElement& element) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  if (element.is_stable()) {
    // A shard's stable only promises quiescence of its own keys: fold it
    // into the shard frontier and emit the global minimum when it advances.
    if (element.stable_time() > s.frontier) {
      s.frontier = element.stable_time();
      Timestamp global = shards_[0]->frontier;
      for (int i = 1; i < num_shards_; ++i) {
        global = std::min(global, shards_[static_cast<size_t>(i)]->frontier);
      }
      if (global > output_stable_.load(std::memory_order_relaxed)) {
        output_stable_.store(global, std::memory_order_release);
        stables_out_.fetch_add(1, std::memory_order_relaxed);
        sink_->OnElement(StreamElement::Stable(global));
      }
    }
  } else {
    sink_->OnElement(element);
  }
  // out_pending_ is decremented by the caller (DrainShardOutput) after the
  // whole chunk and its after_batch flush, so idle waiters see flushed data.
}

}  // namespace lmerge
