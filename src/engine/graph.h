// QueryGraph: owns a dataflow of Operators and derives stream properties
// across it (Sec. IV-G: "how such properties may be derived from query
// plans").
//
// Entry ports are the graph's external inputs; each carries a declared
// StreamProperties annotation (what the source guarantees).  DeriveAll()
// pushes annotations through every operator's transfer function in
// topological order, yielding the output properties of each operator — the
// input to ChooseAlgorithm when an LMerge is placed on top.

#ifndef LMERGE_ENGINE_GRAPH_H_
#define LMERGE_ENGINE_GRAPH_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "operators/operator.h"

namespace lmerge {

class QueryGraph {
 public:
  QueryGraph() = default;

  // Constructs and owns an operator.
  template <typename Op, typename... Args>
  Op* Add(Args&&... args) {
    auto op = std::make_unique<Op>(std::forward<Args>(args)...);
    Op* raw = op.get();
    operators_.push_back(std::move(op));
    return raw;
  }

  // Wires `from`'s output into `to`'s input `port` (also registers the edge
  // for property propagation and feedback).
  void Connect(Operator* from, Operator* to, int port) {
    from->AddDownstream(to, port);
    edges_.push_back(Edge{from, to, port});
  }

  // Declares `op`'s input `port` as a graph entry with the given source
  // guarantees.
  void DeclareEntry(Operator* op, int port, StreamProperties properties) {
    entries_.push_back(Entry{op, port, properties});
  }

  // Derived output properties for every operator, or an error if some input
  // port is neither connected nor declared (or the graph is cyclic).
  Status DeriveAll(std::map<const Operator*, StreamProperties>* out) const;

  // Convenience: derived output properties of one operator.
  Status DeriveFor(const Operator* op, StreamProperties* out) const;

  const std::vector<std::unique_ptr<Operator>>& operators() const {
    return operators_;
  }

  // Total state bytes across all owned operators.
  int64_t TotalStateBytes() const {
    int64_t bytes = 0;
    for (const auto& op : operators_) bytes += op->StateBytes();
    return bytes;
  }

 private:
  struct Edge {
    Operator* from;
    Operator* to;
    int port;
  };
  struct Entry {
    Operator* op;
    int port;
    StreamProperties properties;
  };

  std::vector<std::unique_ptr<Operator>> operators_;
  std::vector<Edge> edges_;
  std::vector<Entry> entries_;
};

}  // namespace lmerge

#endif  // LMERGE_ENGINE_GRAPH_H_
