#include "engine/graph.h"

namespace lmerge {

Status QueryGraph::DeriveAll(
    std::map<const Operator*, StreamProperties>* out) const {
  out->clear();
  // Input-port properties resolved so far: (op, port) -> properties.
  std::map<std::pair<const Operator*, int>, StreamProperties> ports;
  for (const Entry& entry : entries_) {
    ports[{entry.op, entry.port}] = entry.properties;
  }

  // Fixed-point: resolve any operator whose input ports are all known.
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& op : operators_) {
      if (out->count(op.get()) > 0) continue;
      std::vector<StreamProperties> inputs;
      bool ready = true;
      for (int port = 0; port < op->input_count(); ++port) {
        auto it = ports.find({op.get(), port});
        if (it == ports.end()) {
          ready = false;
          break;
        }
        inputs.push_back(it->second);
      }
      if (!ready) continue;
      const StreamProperties derived = op->DeriveProperties(inputs);
      (*out)[op.get()] = derived;
      for (const Edge& edge : edges_) {
        if (edge.from == op.get()) ports[{edge.to, edge.port}] = derived;
      }
      progress = true;
    }
  }

  for (const auto& op : operators_) {
    if (out->count(op.get()) == 0) {
      return Status::FailedPrecondition(
          "operator '" + op->name() +
          "' has undeclared/unconnected inputs or sits on a cycle");
    }
  }
  return Status::Ok();
}

Status QueryGraph::DeriveFor(const Operator* op,
                             StreamProperties* out) const {
  std::map<const Operator*, StreamProperties> all;
  const Status status = DeriveAll(&all);
  if (!status.ok()) return status;
  auto it = all.find(op);
  if (it == all.end()) {
    return Status::NotFound("operator not owned by this graph");
  }
  *out = it->second;
  return Status::Ok();
}

}  // namespace lmerge
