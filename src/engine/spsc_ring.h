// A bounded single-producer/single-consumer ring buffer.
//
// The ingestion lane of ConcurrentMerger: each input stream (one session
// thread on the network path) owns the producer side of one ring; the single
// merge thread owns the consumer side of all of them.  Synchronization is
// two atomic cursors — no locks on the hot path.  Capacity is fixed at
// construction (rounded up to a power of two), so a full ring is the
// backpressure signal bounding ingestion memory.

#ifndef LMERGE_ENGINE_SPSC_RING_H_
#define LMERGE_ENGINE_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace lmerge {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    LM_CHECK(capacity >= 2);
    size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  // Producer only.  Moves `item` in and returns true, or returns false with
  // `item` untouched when the ring is full.
  bool TryPush(T& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer only.  Moves up to `max` items into `out` (appending); returns
  // how many were taken.
  size_t Pop(std::vector<T>* out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t avail = tail_.load(std::memory_order_acquire) - head;
    const size_t n = static_cast<size_t>(avail < max ? avail : max);
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(slots_[(head + i) & mask_]));
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  // Consumer only.  Oldest item without consuming it; nullptr when empty.
  // The pointer stays valid until the consumer's next PopFront.
  T* Peek() {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return nullptr;
    return &slots_[head & mask_];
  }

  // Consumer only.  Discards the oldest item, which must exist (see Peek).
  void PopFront() {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    LM_CHECK(tail_.load(std::memory_order_acquire) != head);
    slots_[head & mask_] = T();
    head_.store(head + 1, std::memory_order_release);
  }

  // Approximate (exact from the owning side).
  size_t size() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer cursor
};

}  // namespace lmerge

#endif  // LMERGE_ENGINE_SPSC_RING_H_
