#include "engine/concurrent.h"

#include <chrono>
#include <string>
#include <utility>

namespace lmerge {

ConcurrentMerger::ConcurrentMerger(MergeAlgorithm* algorithm,
                                   ConcurrentMergerOptions options)
    : algorithm_(algorithm),
      options_(std::move(options)),
      max_stable_(algorithm == nullptr ? kMinTimestamp
                                       : algorithm->max_stable()) {
  LM_CHECK(algorithm != nullptr);
  LM_CHECK(options_.ring_capacity >= 2);
  LM_CHECK(options_.max_batch >= 1);
  slots_.reserve(kMaxStreams);
  const int n = algorithm_->stream_count();
  LM_CHECK(static_cast<size_t>(n) <= kMaxStreams);
  for (int s = 0; s < n; ++s) {
    slots_.push_back(std::make_unique<InputSlot>(options_.ring_capacity));
  }
  slot_count_.store(n, std::memory_order_release);
  scratch_.reserve(options_.max_batch);
  merge_thread_ = std::thread([this] { MergeLoop(); });
}

ConcurrentMerger::~ConcurrentMerger() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();
  if (merge_thread_.joinable()) merge_thread_.join();
}

Status ConcurrentMerger::Precheck(int stream,
                                  const StreamElement& element) const {
  if (stream < 0 || stream >= slot_count_.load(std::memory_order_acquire) ||
      !slots_[static_cast<size_t>(stream)]->active.load(
          std::memory_order_acquire)) {
    return Status::FailedPrecondition("delivery on inactive stream " +
                                      std::to_string(stream));
  }
  if (poisoned_.load(std::memory_order_acquire)) return error();
  // Stateless element validation (the exact error OnElement would return),
  // so an accepted element never fails later on the merge thread.
  return algorithm_->ValidateElement(element);
}

void ConcurrentMerger::EnqueueBlocking(int stream, StreamElement element) {
  InputSlot& slot = *slots_[static_cast<size_t>(stream)];
  // Commit the element to the books before it becomes visible, so pending_
  // never transiently reads 0 while work is in flight.
  pending_.fetch_add(1, std::memory_order_relaxed);
  int spins = 0;
  while (!slot.ring.TryPush(element)) {
    if (++spins < 64) continue;
    WakeMerge();
    std::unique_lock<std::mutex> lock(slot.wait_mutex);
    slot.producer_waiting.store(true, std::memory_order_release);
    // Timed wait: a notify can race the flag, so the timeout is the
    // lost-wakeup backstop; backpressure latency stays bounded at ~1ms.
    slot.wait_cv.wait_for(lock, std::chrono::milliseconds(1));
    slot.producer_waiting.store(false, std::memory_order_release);
  }
  delivered_.fetch_add(1, std::memory_order_release);
  WakeMerge();
}

void ConcurrentMerger::WakeMerge() {
  if (merge_sleeping_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
    }
    wake_cv_.notify_one();
  }
}

void ConcurrentMerger::Deliver(int stream, const StreamElement& element) {
  LM_CHECK(stream >= 0 &&
           stream < slot_count_.load(std::memory_order_acquire));
  EnqueueBlocking(stream, element);
}

Status ConcurrentMerger::TryDeliver(int stream, const StreamElement& element) {
  const Status status = Precheck(stream, element);
  if (!status.ok()) return status;
  EnqueueBlocking(stream, element);
  return Status::Ok();
}

Status ConcurrentMerger::TryDeliverBatch(int stream,
                                         std::span<StreamElement> batch) {
  for (StreamElement& element : batch) {
    const Status status = Precheck(stream, element);
    if (!status.ok()) return status;
    EnqueueBlocking(stream, std::move(element));
  }
  return Status::Ok();
}

int ConcurrentMerger::AddStream() {
  ControlOp op;
  op.kind = ControlOp::kAddStream;
  std::future<int> result = op.result.get_future();
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    control_ops_.push_back(std::move(op));
    has_control_ops_.store(true, std::memory_order_release);
  }
  WakeMerge();
  return result.get();
}

void ConcurrentMerger::RemoveStream(int stream) {
  if (stream < 0 || stream >= slot_count_.load(std::memory_order_acquire)) {
    return;
  }
  // Close the producer side first (new TryDeliver calls fail immediately);
  // idempotent, so a second RemoveStream is a no-op.
  if (!slots_[static_cast<size_t>(stream)]->active.exchange(false)) return;
  ControlOp op;
  op.kind = ControlOp::kRemoveStream;
  op.stream = stream;
  std::future<int> result = op.result.get_future();
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    control_ops_.push_back(std::move(op));
    has_control_ops_.store(true, std::memory_order_release);
  }
  WakeMerge();
  result.get();
}

void ConcurrentMerger::CallOnMergeThread(std::function<void()> fn) {
  ControlOp op;
  op.kind = ControlOp::kCall;
  op.fn = std::move(fn);
  std::future<int> result = op.result.get_future();
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    control_ops_.push_back(std::move(op));
    has_control_ops_.store(true, std::memory_order_release);
  }
  WakeMerge();
  result.get();
}

void ConcurrentMerger::WaitIdle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

Status ConcurrentMerger::error() const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  return error_;
}

void ConcurrentMerger::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  if (error_.ok()) error_ = status;
  poisoned_.store(true, std::memory_order_release);
}

size_t ConcurrentMerger::DrainRing(int stream) {
  InputSlot& slot = *slots_[static_cast<size_t>(stream)];
  scratch_.clear();
  const size_t n = slot.ring.Pop(&scratch_, options_.max_batch);
  if (n == 0) return 0;
  if (!poisoned_.load(std::memory_order_relaxed)) {
    const Status status = algorithm_->ProcessBatch(
        stream, std::span<const StreamElement>(scratch_.data(), n));
    if (!status.ok()) RecordError(status);
    max_stable_.store(algorithm_->max_stable(), std::memory_order_release);
    if (options_.after_batch) options_.after_batch();
  }
  if (slot.producer_waiting.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(slot.wait_mutex);
    }
    slot.wait_cv.notify_all();
  }
  // Notify idle waiters under the lock only when this drain emptied the
  // books (cheap check: the fetch_sub returned exactly n).
  if (pending_.fetch_sub(static_cast<int64_t>(n),
                         std::memory_order_acq_rel) ==
      static_cast<int64_t>(n)) {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_cv_.notify_all();
  }
  return n;
}

size_t ConcurrentMerger::ProcessControlOps() {
  if (!has_control_ops_.load(std::memory_order_acquire)) return 0;
  std::deque<ControlOp> ops;
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    ops.swap(control_ops_);
    has_control_ops_.store(false, std::memory_order_release);
  }
  for (ControlOp& op : ops) {
    if (op.kind == ControlOp::kAddStream) {
      const int id = algorithm_->AddStream();
      LM_CHECK(slots_.size() < kMaxStreams);
      slots_.push_back(std::make_unique<InputSlot>(options_.ring_capacity));
      slot_count_.store(static_cast<int>(slots_.size()),
                        std::memory_order_release);
      LM_CHECK(id == static_cast<int>(slots_.size()) - 1);
      op.result.set_value(id);
    } else if (op.kind == ControlOp::kCall) {
      op.fn();
      op.result.set_value(0);
    } else {
      // Drain everything the departing stream already enqueued, then detach
      // it — its elements are merged, never dropped.
      while (DrainRing(op.stream) > 0) {
      }
      if (op.stream < algorithm_->stream_count() &&
          algorithm_->stream_active(op.stream)) {
        algorithm_->RemoveStream(op.stream);
      }
      op.result.set_value(0);
    }
  }
  return ops.size();
}

void ConcurrentMerger::MergeLoop() {
  int idle_rounds = 0;
  while (true) {
    size_t work = ProcessControlOps();
    const int n = slot_count_.load(std::memory_order_acquire);
    for (int s = 0; s < n; ++s) work += DrainRing(s);
    if (work > 0) {
      idle_rounds = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0 &&
        !has_control_ops_.load(std::memory_order_acquire)) {
      break;
    }
    // Idle backoff: spin briefly (fresh work usually arrives within a few
    // hundred ns), then yield, then park on a 1ms timed wait — the timeout
    // doubles as the lost-wakeup backstop for WakeMerge's unlocked check.
    ++idle_rounds;
    if (idle_rounds < 128) continue;
    if (idle_rounds < 160) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    merge_sleeping_.store(true, std::memory_order_release);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
    merge_sleeping_.store(false, std::memory_order_release);
  }
}

void ConcurrentMerger::Run(const std::vector<ElementSequence>& inputs) {
  LM_CHECK(static_cast<int>(inputs.size()) <=
           slot_count_.load(std::memory_order_acquire));
  std::vector<std::thread> threads;
  threads.reserve(inputs.size());
  for (size_t s = 0; s < inputs.size(); ++s) {
    threads.emplace_back([this, s, &inputs] {
      for (const StreamElement& element : inputs[s]) {
        Deliver(static_cast<int>(s), element);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  WaitIdle();
  const Status status = error();
  LM_CHECK_MSG(status.ok(), "concurrent delivery failed: %s",
               status.ToString().c_str());
}

}  // namespace lmerge
