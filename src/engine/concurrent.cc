#include "engine/concurrent.h"

#include <thread>

namespace lmerge {

void ConcurrentMerger::Deliver(int stream, const StreamElement& element) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Status status = algorithm_->OnElement(stream, element);
  LM_CHECK_MSG(status.ok(), "concurrent delivery failed: %s",
               status.ToString().c_str());
  ++delivered_;
}

Status ConcurrentMerger::TryDeliver(int stream, const StreamElement& element) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream < 0 || stream >= algorithm_->stream_count() ||
      !algorithm_->stream_active(stream)) {
    return Status::FailedPrecondition("delivery on inactive stream " +
                                      std::to_string(stream));
  }
  const Status status = algorithm_->OnElement(stream, element);
  if (status.ok()) ++delivered_;
  return status;
}

int ConcurrentMerger::AddStream() {
  std::lock_guard<std::mutex> lock(mutex_);
  return algorithm_->AddStream();
}

void ConcurrentMerger::RemoveStream(int stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream >= 0 && stream < algorithm_->stream_count() &&
      algorithm_->stream_active(stream)) {
    algorithm_->RemoveStream(stream);
  }
}

Timestamp ConcurrentMerger::max_stable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return algorithm_->max_stable();
}

void ConcurrentMerger::Run(const std::vector<ElementSequence>& inputs) {
  std::vector<std::thread> threads;
  threads.reserve(inputs.size());
  for (size_t s = 0; s < inputs.size(); ++s) {
    threads.emplace_back([this, s, &inputs] {
      for (const StreamElement& element : inputs[s]) {
        Deliver(static_cast<int>(s), element);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace lmerge
