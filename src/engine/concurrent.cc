#include "engine/concurrent.h"

#include <thread>

namespace lmerge {

void ConcurrentMerger::Deliver(int stream, const StreamElement& element) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Status status = algorithm_->OnElement(stream, element);
  LM_CHECK_MSG(status.ok(), "concurrent delivery failed: %s",
               status.ToString().c_str());
  ++delivered_;
}

void ConcurrentMerger::Run(const std::vector<ElementSequence>& inputs) {
  std::vector<std::thread> threads;
  threads.reserve(inputs.size());
  for (size_t s = 0; s < inputs.size(); ++s) {
    threads.emplace_back([this, s, &inputs] {
      for (const StreamElement& element : inputs[s]) {
        Deliver(static_cast<int>(s), element);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace lmerge
